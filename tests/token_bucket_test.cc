#include "src/net/token_bucket.h"

#include <gtest/gtest.h>

#include "src/net/units.h"

namespace saba {
namespace {

TEST(TokenBucketTest, StartsFull) {
  TokenBucket bucket(Mbps64(100), Kilobytes(64));
  EXPECT_DOUBLE_EQ(bucket.AvailableAt(0), Kilobytes(64));
  EXPECT_TRUE(bucket.TryConsume(Kilobytes(64), 0));
  EXPECT_FALSE(bucket.TryConsume(Bytes(1), 0));
}

TEST(TokenBucketTest, RefillsAtConfiguredRate) {
  TokenBucket bucket(Bps64Of(1000), Bits(500));
  ASSERT_TRUE(bucket.TryConsume(Bits(500), 0));
  EXPECT_FALSE(bucket.TryConsume(Bits(100), 0.05));  // Only 50 bits refilled.
  EXPECT_TRUE(bucket.TryConsume(Bits(100), 0.1));    // 100 bits refilled.
}

TEST(TokenBucketTest, NeverExceedsDepth) {
  TokenBucket bucket(Bps64Of(1000), Bits(500));
  ASSERT_TRUE(bucket.TryConsume(Bits(500), 0));
  EXPECT_DOUBLE_EQ(bucket.AvailableAt(100.0), Bits(500));  // Capped at depth.
}

TEST(TokenBucketTest, NextAdmissionTimeExact) {
  TokenBucket bucket(Bps64Of(1000), Bits(500));
  ASSERT_TRUE(bucket.TryConsume(Bits(500), 0));
  // Needs 200 bits: refill rate 1000 b/s -> 0.2 s.
  EXPECT_NEAR(bucket.NextAdmissionTime(Bits(200), 0), 0.2, 1e-12);
  // Already admittable once tokens suffice.
  EXPECT_DOUBLE_EQ(bucket.NextAdmissionTime(Bits(100), 0.5), 0.5);
}

TEST(TokenBucketTest, OversizedBurstNeverAdmits) {
  TokenBucket bucket(Bps64Of(1000), Bits(500));
  EXPECT_EQ(bucket.NextAdmissionTime(Bits(501), 0), kNeverTime);
}

TEST(TokenBucketTest, LongRunRateConvergesToConfigured) {
  // Send fixed-size packets as fast as the bucket allows; the long-run
  // throughput must equal the token rate (the §7.1 throttling contract).
  const Bps64 rate = Mbps64(10);
  TokenBucket bucket(rate, Kilobytes(10));
  const double packet = Kilobytes(1.5);
  double now = 0;
  double sent = 0;
  while (now < 10.0) {
    const SimTime next = bucket.NextAdmissionTime(packet, now);
    ASSERT_NE(next, kNeverTime);
    now = next;
    if (now >= 10.0) {
      break;
    }
    ASSERT_TRUE(bucket.TryConsume(packet, now));
    sent += packet;
  }
  EXPECT_NEAR(sent / 10.0, BpsToDouble(rate), BpsToDouble(rate) * 0.02);
}

TEST(TokenBucketTest, SetRateTakesEffect) {
  TokenBucket bucket(Bps64Of(1000), Bits(1000));
  ASSERT_TRUE(bucket.TryConsume(Bits(1000), 0));
  bucket.SetRate(Bps64Of(2000));
  EXPECT_TRUE(bucket.TryConsume(Bits(200), 0.1));  // 2000*0.1 = 200 refilled.
}

TEST(TokenBucketTest, BurstAfterIdlePeriod) {
  // After idling, a full burst is admitted instantly — the behaviour that
  // motivates the profiler's throttle floor at very low nominal rates.
  TokenBucket bucket(Bps64Of(100), Bits(1000));
  ASSERT_TRUE(bucket.TryConsume(Bits(1000), 0));
  EXPECT_TRUE(bucket.TryConsume(Bits(1000), 10.0));
}

}  // namespace
}  // namespace saba
