// Failure injection: jobs aborted mid-run must leave the fabric and the
// controller in a clean state, and the survivors must reclaim bandwidth.

#include <gtest/gtest.h>

#include "src/core/controller.h"
#include "src/core/saba_client.h"
#include "src/net/units.h"
#include "src/sim/event_scheduler.h"
#include "src/workload/app_runtime.h"
#include "src/workload/workload_catalog.h"

namespace saba {
namespace {

class AbortTest : public ::testing::Test {
 protected:
  AbortTest()
      : network_(BuildSingleSwitchStar(8, Gbps64(56)), 8),
        flow_sim_(&scheduler_, &network_, &allocator_) {
    SensitivityEntry lr;
    lr.model = SensitivityModel{Polynomial({5.0, -4.0})};
    table_.Put("LR", lr);
    SensitivityEntry pr;
    pr.model = SensitivityModel{Polynomial({1.4, -0.4})};
    table_.Put("PR", pr);
  }

  EventScheduler scheduler_;
  Network network_;
  WfqMaxMinAllocator allocator_;
  FlowSimulator flow_sim_;
  SensitivityTable table_;
};

TEST_F(AbortTest, AbortCancelsFlowsAndSkipsDoneCallback) {
  NullNetworkPolicy policy;
  Application app(&scheduler_, &flow_sim_, *FindWorkload("LR"),
                  network_.topology().Hosts(), 0, &policy);
  bool done_fired = false;
  app.Start([&](AppId, SimTime) { done_fired = true; });
  scheduler_.RunUntil(10.0);  // Mid-run: LR is deep in its first stages.
  EXPECT_GT(flow_sim_.active_flow_count() + flow_sim_.completed_flow_count(), 0u);

  app.Abort();
  EXPECT_TRUE(app.aborted());
  EXPECT_TRUE(app.finished());
  scheduler_.Run();
  EXPECT_FALSE(done_fired);
  EXPECT_EQ(flow_sim_.active_flow_count(), 0u);
}

TEST_F(AbortTest, AbortIsIdempotentAndSafeBeforeStartOrAfterFinish) {
  NullNetworkPolicy policy;
  Application app(&scheduler_, &flow_sim_, *FindWorkload("PR"),
                  network_.topology().Hosts(), 0, &policy);
  app.Abort();  // Not started: no-op.
  EXPECT_FALSE(app.aborted());
  bool done = false;
  app.Start([&](AppId, SimTime) { done = true; });
  scheduler_.Run();
  EXPECT_TRUE(done);
  app.Abort();  // Finished: no-op.
  EXPECT_FALSE(app.aborted());
}

TEST_F(AbortTest, ControllerStateCleanAfterAbort) {
  ControllerOptions options;
  options.num_pls = 4;
  CentralizedController controller(&network_, &flow_sim_, &table_, options);
  SabaClient client(&controller);

  Application lr(&scheduler_, &flow_sim_, *FindWorkload("LR"), network_.topology().Hosts(), 0,
                 &client);
  Application pr(&scheduler_, &flow_sim_, *FindWorkload("PR"), network_.topology().Hosts(), 1,
                 &client);
  lr.Start(nullptr);
  pr.Start(nullptr);
  scheduler_.RunUntil(10.0);
  ASSERT_EQ(controller.registered_app_count(), 2u);

  lr.Abort();
  scheduler_.RunUntil(10.5);
  EXPECT_EQ(controller.registered_app_count(), 1u);
  // The survivor finishes normally, and by then every connection anybody
  // ever opened has been closed again.
  scheduler_.Run();
  EXPECT_TRUE(pr.finished());
  EXPECT_FALSE(pr.aborted());
  EXPECT_EQ(controller.registered_app_count(), 0u);
  EXPECT_EQ(controller.stats().conn_creates, controller.stats().conn_destroys);
}

TEST_F(AbortTest, SurvivorReclaimsBandwidth) {
  NullNetworkPolicy policy;
  // Two identical LR jobs sharing all hosts; abort one at t=20.
  Application a(&scheduler_, &flow_sim_, *FindWorkload("LR"), network_.topology().Hosts(), 0,
                &policy);
  Application b(&scheduler_, &flow_sim_, *FindWorkload("LR"), network_.topology().Hosts(), 1,
                &policy);
  SimTime b_done = -1;
  a.Start(nullptr);
  b.Start([&](AppId, SimTime t) { b_done = t; });
  scheduler_.ScheduleAt(20.0, [&a] { a.Abort(); });
  scheduler_.Run();

  // Solo LR takes ~140 s; contended the whole way it would take much longer.
  // With the competitor gone at t=20 the survivor must land close to solo.
  EXPECT_GT(b_done, 0);
  EXPECT_LT(b_done, 200.0);
}

}  // namespace
}  // namespace saba
