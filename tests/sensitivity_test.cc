#include "src/core/sensitivity.h"

#include <gtest/gtest.h>

namespace saba {
namespace {

TEST(SensitivityModelTest, DefaultIsInsensitive) {
  SensitivityModel model;
  EXPECT_DOUBLE_EQ(model.SlowdownAt(0.1), 1.0);
  EXPECT_DOUBLE_EQ(model.SlowdownAt(1.0), 1.0);
}

TEST(SensitivityModelTest, EvaluationClampsInputs) {
  // D(b) = 5 - 4b: D(1) = 1, D(0.5) = 3.
  SensitivityModel model{Polynomial({5.0, -4.0})};
  EXPECT_DOUBLE_EQ(model.SlowdownAt(0.5), 3.0);
  // Below kMinBandwidthFraction, evaluation clamps to the floor.
  EXPECT_DOUBLE_EQ(model.SlowdownAt(0.0), model.SlowdownAt(kMinBandwidthFraction));
  // Above 1 clamps to 1.
  EXPECT_DOUBLE_EQ(model.SlowdownAt(2.0), 1.0);
}

TEST(SensitivityModelTest, OutputsNeverBelowOne) {
  // A fit can dip below 1 at the right edge; evaluation clamps it.
  SensitivityModel model{Polynomial({0.5})};
  EXPECT_DOUBLE_EQ(model.SlowdownAt(0.5), 1.0);
}

TEST(SensitivityModelTest, CoefficientVectorPadsWithZeros) {
  SensitivityModel model{Polynomial({2.0, -1.0})};
  const std::vector<double> v = model.CoefficientVector(4);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_DOUBLE_EQ(v[0], 2.0);
  EXPECT_DOUBLE_EQ(v[1], -1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.0);
  EXPECT_DOUBLE_EQ(v[3], 0.0);
}

TEST(SensitivityTableTest, PutFindAndDefault) {
  SensitivityTable table;
  EXPECT_EQ(table.Find("LR"), nullptr);
  SensitivityEntry entry;
  entry.model = SensitivityModel{Polynomial({4.0, -3.0})};
  entry.r_squared = 0.97;
  entry.base_completion_seconds = 140;
  table.Put("LR", entry);
  ASSERT_NE(table.Find("LR"), nullptr);
  EXPECT_DOUBLE_EQ(table.Find("LR")->r_squared, 0.97);
  EXPECT_DOUBLE_EQ(table.ModelOrDefault("LR").SlowdownAt(0.5), 2.5);
  // Unknown workloads fall back to the insensitive default.
  EXPECT_DOUBLE_EQ(table.ModelOrDefault("unknown").SlowdownAt(0.1), 1.0);
}

TEST(SensitivityTableTest, CsvRoundTrip) {
  SensitivityTable table;
  SensitivityEntry lr;
  lr.model = SensitivityModel{Polynomial({8.1, -17.3, 14.2, -4.0})};
  lr.r_squared = 0.98;
  lr.base_completion_seconds = 140.25;
  table.Put("LR", lr);
  SensitivityEntry sort;
  sort.model = SensitivityModel{Polynomial({1.5, -0.5})};
  sort.r_squared = 0.91;
  sort.base_completion_seconds = 156;
  table.Put("Sort", sort);

  const std::string csv = table.ToCsv();
  const auto parsed = SensitivityTable::FromCsv(csv);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 2u);
  for (const char* name : {"LR", "Sort"}) {
    const SensitivityEntry* a = table.Find(name);
    const SensitivityEntry* b = parsed->Find(name);
    ASSERT_NE(b, nullptr);
    EXPECT_DOUBLE_EQ(a->r_squared, b->r_squared);
    EXPECT_DOUBLE_EQ(a->base_completion_seconds, b->base_completion_seconds);
    for (double x : {0.1, 0.33, 0.7, 1.0}) {
      EXPECT_DOUBLE_EQ(a->model.SlowdownAt(x), b->model.SlowdownAt(x));
    }
  }
}

TEST(SensitivityTableTest, FromCsvRejectsMalformedRows) {
  EXPECT_FALSE(SensitivityTable::FromCsv("just-a-name").has_value());
  EXPECT_FALSE(SensitivityTable::FromCsv("name,0.9").has_value());
  EXPECT_FALSE(SensitivityTable::FromCsv("name,0.9,100").has_value());  // No coefficients.
  EXPECT_TRUE(SensitivityTable::FromCsv("name,0.9,100,1.0").has_value());
  EXPECT_TRUE(SensitivityTable::FromCsv("").has_value());  // Empty table is fine.
}

}  // namespace
}  // namespace saba
