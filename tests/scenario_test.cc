#include "src/exp/scenario.h"

#include <gtest/gtest.h>

#include "src/core/profiler.h"
#include "src/workload/workload_catalog.h"

namespace saba {
namespace {

constexpr const char* kValidScenario = R"(
# two jobs on a small star
topology star servers=8 capacity_gbps=56
policy saba
seed 9
gamma 0.25
queues 4
job LR nodes=8
job PR nodes=8 dataset=1 start=1.5
)";

TEST(ScenarioParserTest, ParsesValidScenario) {
  std::string error;
  const auto scenario = ParseScenario(kValidScenario, &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->topology.Hosts().size(), 8u);
  EXPECT_EQ(scenario->options.policy, PolicyKind::kSaba);
  EXPECT_EQ(scenario->seed, 9u);
  EXPECT_DOUBLE_EQ(scenario->options.fecn_gamma, 0.25);
  EXPECT_EQ(scenario->options.queues_per_port, 4);
  ASSERT_EQ(scenario->jobs.size(), 2u);
  EXPECT_EQ(scenario->jobs[0].workload, "LR");
  EXPECT_DOUBLE_EQ(scenario->jobs[1].start_at, 1.5);
}

TEST(ScenarioParserTest, ParsesFloorDirective) {
  const auto scenario = ParseScenario("floor 0.5\njob LR nodes=4\n");
  ASSERT_TRUE(scenario.has_value());
  EXPECT_DOUBLE_EQ(scenario->options.relative_min_weight, 0.5);
  EXPECT_FALSE(ParseScenario("floor 1.5\njob LR\n").has_value());
}

TEST(ScenarioParserTest, ParsesSpineLeafTopology) {
  std::string error;
  const auto scenario = ParseScenario(
      "topology spineleaf spine=2 leaf=4 tor=4 hosts_per_tor=3 pods=2\njob LR nodes=4\n",
      &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->topology.Hosts().size(), 12u);
}

TEST(ScenarioParserTest, DefaultsWhenOmitted) {
  const auto scenario = ParseScenario("job Sort nodes=4\n");
  ASSERT_TRUE(scenario.has_value());
  EXPECT_EQ(scenario->topology.Hosts().size(), 32u);  // Default star.
  EXPECT_EQ(scenario->options.policy, PolicyKind::kBaseline);
  EXPECT_EQ(scenario->jobs[0].nodes, 4);
  EXPECT_DOUBLE_EQ(scenario->jobs[0].dataset_scale, 1.0);
}

struct BadCase {
  const char* name;
  const char* text;
};

class ScenarioParserErrorTest : public ::testing::TestWithParam<BadCase> {};

TEST_P(ScenarioParserErrorTest, RejectsWithMessage) {
  std::string error;
  EXPECT_FALSE(ParseScenario(GetParam().text, &error).has_value());
  EXPECT_FALSE(error.empty());
}

INSTANTIATE_TEST_SUITE_P(
    BadScenarios, ScenarioParserErrorTest,
    ::testing::Values(
        BadCase{"no_jobs", "topology star servers=4\n"},
        BadCase{"unknown_directive", "jobs LR\n"},
        BadCase{"unknown_workload", "job NotAWorkload nodes=4\n"},
        BadCase{"unknown_policy", "policy tcp\njob LR\n"},
        BadCase{"bad_topology_kind", "topology ring servers=4\njob LR\n"},
        BadCase{"bad_kv", "job LR nodes\n"},
        BadCase{"bad_nodes", "job LR nodes=1\n"},
        BadCase{"negative_start", "job LR start=-2\n"},
        BadCase{"oversized_job", "topology star servers=4\njob LR nodes=8\n"},
        BadCase{"bad_pods", "topology spineleaf tor=3 pods=2\njob LR nodes=2\n"}),
    [](const ::testing::TestParamInfo<BadCase>& info) { return info.param.name; });

TEST(ScenarioJobsTest, PlacementRespectsNodeCountsAndDistinctHosts) {
  const auto scenario = ParseScenario(
      "topology star servers=8\njob LR nodes=8\njob PR nodes=4\njob Sort nodes=2\n");
  ASSERT_TRUE(scenario.has_value());
  const std::vector<JobSpec> jobs = BuildScenarioJobs(*scenario);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].hosts.size(), 8u);
  EXPECT_EQ(jobs[1].hosts.size(), 4u);
  EXPECT_EQ(jobs[2].hosts.size(), 2u);
  for (const JobSpec& job : jobs) {
    std::set<NodeId> distinct(job.hosts.begin(), job.hosts.end());
    EXPECT_EQ(distinct.size(), job.hosts.size());
  }
}

TEST(ScenarioJobsTest, DeterministicPlacementGivenSeed) {
  const auto scenario = ParseScenario("seed 5\njob LR nodes=8\njob PR nodes=8\n");
  ASSERT_TRUE(scenario.has_value());
  const auto a = BuildScenarioJobs(*scenario);
  const auto b = BuildScenarioJobs(*scenario);
  for (size_t j = 0; j < a.size(); ++j) {
    EXPECT_EQ(a[j].hosts, b[j].hosts);
  }
}

TEST(ScenarioRunTest, EndToEndSabaScenarioCompletes) {
  const auto scenario = ParseScenario(kValidScenario);
  ASSERT_TRUE(scenario.has_value());
  ProfilerOptions options;
  options.noise_sigma = 0;
  OfflineProfiler profiler(options);
  const SensitivityTable table =
      profiler.ProfileAll({*FindWorkload("LR"), *FindWorkload("PR")});
  const CoRunResult result = RunScenario(*scenario, table);
  ASSERT_EQ(result.completion_seconds.size(), 2u);
  EXPECT_GT(result.completion_seconds[0], 0);
  EXPECT_GT(result.completion_seconds[1], 0);
}

}  // namespace
}  // namespace saba
