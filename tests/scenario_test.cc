#include "src/exp/scenario.h"

#include <gtest/gtest.h>

#include "src/core/profiler.h"
#include "src/workload/workload_catalog.h"

namespace saba {
namespace {

constexpr const char* kValidScenario = R"(
# two jobs on a small star
topology star servers=8 capacity_gbps=56
policy saba
seed 9
gamma 0.25
queues 4
job LR nodes=8
job PR nodes=8 dataset=1 start=1.5
)";

TEST(ScenarioParserTest, ParsesValidScenario) {
  std::string error;
  const auto scenario = ParseScenario(kValidScenario, &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->topology.Hosts().size(), 8u);
  EXPECT_EQ(scenario->options.policy, PolicyKind::kSaba);
  EXPECT_EQ(scenario->seed, 9u);
  EXPECT_DOUBLE_EQ(scenario->options.fecn_gamma, 0.25);
  EXPECT_EQ(scenario->options.queues_per_port, 4);
  ASSERT_EQ(scenario->jobs.size(), 2u);
  EXPECT_EQ(scenario->jobs[0].workload, "LR");
  EXPECT_DOUBLE_EQ(scenario->jobs[1].start_at, 1.5);
}

TEST(ScenarioParserTest, ParsesFloorDirective) {
  const auto scenario = ParseScenario("floor 0.5\njob LR nodes=4\n");
  ASSERT_TRUE(scenario.has_value());
  EXPECT_DOUBLE_EQ(scenario->options.relative_min_weight, 0.5);
  EXPECT_FALSE(ParseScenario("floor 1.5\njob LR\n").has_value());
}

TEST(ScenarioParserTest, ParsesSpineLeafTopology) {
  std::string error;
  const auto scenario = ParseScenario(
      "topology spineleaf spine=2 leaf=4 tor=4 hosts_per_tor=3 pods=2\njob LR nodes=4\n",
      &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->topology.Hosts().size(), 12u);
}

TEST(ScenarioParserTest, ParsesFatTreeTopology) {
  std::string error;
  const auto scenario = ParseScenario(
      "topology fattree k=4 capacity_gbps=40 core_gbps=20\njob LR nodes=4\n", &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->topology.Hosts().size(), 16u);
  // Host and edge-agg links carry capacity_gbps; agg-core links carry
  // core_gbps (node layout: hosts 0-15, edge0 = 16, agg0 = 24, core0 = 32).
  const LinkId host_link = scenario->topology.FindLink(0, 16);
  ASSERT_NE(host_link, kInvalidLink);
  EXPECT_EQ(scenario->topology.link(host_link).capacity_bps, Gbps64(40));
  const LinkId up_link = scenario->topology.FindLink(24, 32);
  ASSERT_NE(up_link, kInvalidLink);
  EXPECT_EQ(scenario->topology.link(up_link).capacity_bps, Gbps64(20));
}

TEST(ScenarioParserTest, ParsesFailureDirectivesBeforeTopology) {
  // Failure lines may precede the topology line: endpoint validation is
  // deferred until the fabric is resolved.
  std::string error;
  const auto scenario = ParseScenario(
      "fail link a=16 b=24 at=1.5 until=4.0\n"
      "fail switch id=24 at=2.0\n"
      "degrade link a=24 b=32 at=1.0 factor=0.5 until=3.0\n"
      "topology fattree k=4\n"
      "job LR nodes=4\n",
      &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  ASSERT_EQ(scenario->options.failures.size(), 3u);
  const FailureEvent& link = scenario->options.failures[0];
  EXPECT_EQ(link.kind, FailureEvent::Kind::kLinkDown);
  EXPECT_EQ(link.a, 16);
  EXPECT_EQ(link.b, 24);
  EXPECT_DOUBLE_EQ(link.at, 1.5);
  EXPECT_DOUBLE_EQ(link.until, 4.0);
  const FailureEvent& node = scenario->options.failures[1];
  EXPECT_EQ(node.kind, FailureEvent::Kind::kNodeDown);
  EXPECT_EQ(node.a, 24);
  EXPECT_LT(node.until, 0) << "no until= means permanent";
  const FailureEvent& degrade = scenario->options.failures[2];
  EXPECT_EQ(degrade.kind, FailureEvent::Kind::kLinkDegrade);
  EXPECT_DOUBLE_EQ(degrade.capacity_factor, 0.5);
}

TEST(ScenarioParserTest, DefaultsWhenOmitted) {
  const auto scenario = ParseScenario("job Sort nodes=4\n");
  ASSERT_TRUE(scenario.has_value());
  EXPECT_EQ(scenario->topology.Hosts().size(), 32u);  // Default star.
  EXPECT_EQ(scenario->options.policy, PolicyKind::kBaseline);
  EXPECT_EQ(scenario->jobs[0].nodes, 4);
  EXPECT_DOUBLE_EQ(scenario->jobs[0].dataset_scale, 1.0);
}

struct BadCase {
  const char* name;
  const char* text;
};

class ScenarioParserErrorTest : public ::testing::TestWithParam<BadCase> {};

TEST_P(ScenarioParserErrorTest, RejectsWithMessage) {
  std::string error;
  EXPECT_FALSE(ParseScenario(GetParam().text, &error).has_value());
  EXPECT_FALSE(error.empty());
}

INSTANTIATE_TEST_SUITE_P(
    BadScenarios, ScenarioParserErrorTest,
    ::testing::Values(
        BadCase{"no_jobs", "topology star servers=4\n"},
        BadCase{"unknown_directive", "jobs LR\n"},
        BadCase{"unknown_workload", "job NotAWorkload nodes=4\n"},
        BadCase{"unknown_policy", "policy tcp\njob LR\n"},
        BadCase{"bad_topology_kind", "topology ring servers=4\njob LR\n"},
        BadCase{"bad_kv", "job LR nodes\n"},
        BadCase{"bad_nodes", "job LR nodes=1\n"},
        BadCase{"negative_start", "job LR start=-2\n"},
        BadCase{"oversized_job", "topology star servers=4\njob LR nodes=8\n"},
        BadCase{"bad_pods", "topology spineleaf tor=3 pods=2\njob LR nodes=2\n"},
        BadCase{"fattree_odd_k", "topology fattree k=5\njob LR nodes=4\n"},
        BadCase{"fail_unknown_target", "topology fattree k=4\nfail host a=0 at=1\njob LR nodes=4\n"},
        BadCase{"fail_link_missing_b", "topology fattree k=4\nfail link a=16 at=1\njob LR nodes=4\n"},
        BadCase{"fail_missing_at", "topology fattree k=4\nfail link a=16 b=24\njob LR nodes=4\n"},
        BadCase{"fail_until_before_at",
                "topology fattree k=4\nfail link a=16 b=24 at=2 until=1\njob LR nodes=4\n"},
        BadCase{"fail_no_such_link",
                "topology fattree k=4\nfail link a=16 b=17 at=1\njob LR nodes=4\n"},
        BadCase{"fail_switch_on_host", "topology fattree k=4\nfail switch id=0 at=1\njob LR nodes=4\n"},
        BadCase{"fail_node_out_of_range",
                "topology fattree k=4\nfail switch id=99 at=1\njob LR nodes=4\n"},
        BadCase{"degrade_missing_factor",
                "topology fattree k=4\ndegrade link a=16 b=24 at=1\njob LR nodes=4\n"},
        BadCase{"degrade_bad_factor",
                "topology fattree k=4\ndegrade link a=16 b=24 at=1 factor=1.5\njob LR nodes=4\n"}),
    [](const ::testing::TestParamInfo<BadCase>& info) { return info.param.name; });

TEST(ScenarioJobsTest, PlacementRespectsNodeCountsAndDistinctHosts) {
  const auto scenario = ParseScenario(
      "topology star servers=8\njob LR nodes=8\njob PR nodes=4\njob Sort nodes=2\n");
  ASSERT_TRUE(scenario.has_value());
  const std::vector<JobSpec> jobs = BuildScenarioJobs(*scenario);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].hosts.size(), 8u);
  EXPECT_EQ(jobs[1].hosts.size(), 4u);
  EXPECT_EQ(jobs[2].hosts.size(), 2u);
  for (const JobSpec& job : jobs) {
    std::set<NodeId> distinct(job.hosts.begin(), job.hosts.end());
    EXPECT_EQ(distinct.size(), job.hosts.size());
  }
}

TEST(ScenarioJobsTest, DeterministicPlacementGivenSeed) {
  const auto scenario = ParseScenario("seed 5\njob LR nodes=8\njob PR nodes=8\n");
  ASSERT_TRUE(scenario.has_value());
  const auto a = BuildScenarioJobs(*scenario);
  const auto b = BuildScenarioJobs(*scenario);
  for (size_t j = 0; j < a.size(); ++j) {
    EXPECT_EQ(a[j].hosts, b[j].hosts);
  }
}

TEST(ScenarioRunTest, EndToEndSabaScenarioCompletes) {
  const auto scenario = ParseScenario(kValidScenario);
  ASSERT_TRUE(scenario.has_value());
  ProfilerOptions options;
  options.noise_sigma = 0;
  OfflineProfiler profiler(options);
  const SensitivityTable table =
      profiler.ProfileAll({*FindWorkload("LR"), *FindWorkload("PR")});
  const CoRunResult result = RunScenario(*scenario, table);
  ASSERT_EQ(result.completion_seconds.size(), 2u);
  EXPECT_GT(result.completion_seconds[0], 0);
  EXPECT_GT(result.completion_seconds[1], 0);
}

// The ISSUE's reroute-determinism criterion end to end: a mid-run link
// failure on a fat-tree must leave job completion times bit-identical for
// any SABA_SOLVE_JOBS setting, with the same flows re-pinned.
TEST(ScenarioRunTest, RerouteDeterminismAcrossSolveJobs) {
  std::string error;
  auto scenario = ParseScenario(
      "topology fattree k=4\npolicy saba\nseed 3\nqueues 8\n"
      "job LR nodes=8\njob Sort nodes=8 start=0.5\n"
      "fail link a=16 b=24 at=2.0 until=400.0\n",
      &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  ProfilerOptions options;
  options.noise_sigma = 0;
  const SensitivityTable table =
      OfflineProfiler(options).ProfileAll({*FindWorkload("LR"), *FindWorkload("Sort")});

  scenario->options.solve_jobs = 1;
  const CoRunResult serial = RunScenario(*scenario, table);
  scenario->options.solve_jobs = 4;
  const CoRunResult parallel = RunScenario(*scenario, table);

  EXPECT_GT(serial.rerouted_flows, 0u) << "the failed link must cut through live flows";
  EXPECT_EQ(serial.rerouted_flows, parallel.rerouted_flows);
  ASSERT_EQ(serial.completion_seconds.size(), parallel.completion_seconds.size());
  for (size_t j = 0; j < serial.completion_seconds.size(); ++j) {
    EXPECT_EQ(serial.completion_seconds[j], parallel.completion_seconds[j])
        << "job " << j << " diverged across solve_jobs";
  }
}

}  // namespace
}  // namespace saba
