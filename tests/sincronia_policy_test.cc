#include "src/baselines/sincronia_policy.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/net/units.h"
#include "src/sim/event_scheduler.h"

namespace saba {
namespace {

TEST(BssiOrderTest, SingleCoflowTrivial) {
  const std::vector<AppId> order = ComputeBssiOrder({{1, {{0, 100.0}}}});
  EXPECT_EQ(order, std::vector<AppId>{1});
}

TEST(BssiOrderTest, SmallerCoflowScheduledFirstOnSharedBottleneck) {
  // Two coflows on one port: scheduling the smaller first minimizes average
  // CCT; BSSI places the larger last.
  std::vector<CoflowDemand> coflows = {
      {1, {{0, 1000.0}}},
      {2, {{0, 10.0}}},
  };
  const std::vector<AppId> order = ComputeBssiOrder(coflows);
  EXPECT_EQ(order.front(), 2);
  EXPECT_EQ(order.back(), 1);
}

TEST(BssiOrderTest, OrderIsPermutationOfInputs) {
  std::vector<CoflowDemand> coflows;
  for (AppId a = 0; a < 7; ++a) {
    CoflowDemand c;
    c.app = a;
    c.port_demand[a % 3] = 100.0 * (a + 1);
    c.port_demand[(a + 1) % 3] = 50.0;
    coflows.push_back(c);
  }
  std::vector<AppId> order = ComputeBssiOrder(coflows);
  ASSERT_EQ(order.size(), 7u);
  std::sort(order.begin(), order.end());
  for (AppId a = 0; a < 7; ++a) {
    EXPECT_EQ(order[static_cast<size_t>(a)], a);
  }
}

TEST(BssiOrderTest, BottleneckAware) {
  // Port 0 is heavily loaded; coflow 1 dominates it and must go last even
  // though coflow 2 has more total bytes spread thinly.
  std::vector<CoflowDemand> coflows = {
      {1, {{0, 900.0}}},
      {2, {{1, 400.0}, {2, 400.0}, {3, 300.0}}},
  };
  const std::vector<AppId> order = ComputeBssiOrder(coflows);
  EXPECT_EQ(order.back(), 1);
}

TEST(BssiOrderTest, EmptyDemandsHandled) {
  std::vector<CoflowDemand> coflows = {{1, {}}, {2, {{0, 5.0}}}};
  const std::vector<AppId> order = ComputeBssiOrder(coflows);
  EXPECT_EQ(order.size(), 2u);
}

class SincroniaSchedulerTest : public ::testing::Test {
 protected:
  SincroniaSchedulerTest()
      : network_(BuildSingleSwitchStar(4, Gbps64(10)), 8),
        flow_sim_(&scheduler_, &network_, &allocator_) {}

  EventScheduler scheduler_;
  Network network_;
  StrictPriorityAllocator allocator_;
  FlowSimulator flow_sim_;
};

TEST_F(SincroniaSchedulerTest, SmallCoflowPreemptsLargeOne) {
  SincroniaScheduler sincronia(&flow_sim_, {});
  SimTime small_done = -1;
  SimTime large_done = -1;
  int large_left = 2;
  int small_left = 1;
  // Large coflow: two 10 Gb flows into host 1 and 2.
  flow_sim_.StartFlow(0, 0, 1, Gbps(10), 0, 0, [&](FlowId) {
    if (--large_left == 0) {
      large_done = scheduler_.Now();
    }
  });
  flow_sim_.StartFlow(0, 3, 2, Gbps(10), 0, 0, [&](FlowId) {
    if (--large_left == 0) {
      large_done = scheduler_.Now();
    }
  });
  // Small coflow: 1 Gb into host 1, same bottleneck as the first large flow.
  flow_sim_.StartFlow(1, 2, 1, Gbps(1), 0, 0, [&](FlowId) {
    if (--small_left == 0) {
      small_done = scheduler_.Now();
    }
  });
  scheduler_.Run();
  // Sincronia orders the small coflow first: it finishes in ~0.1 s; the
  // large one takes ~1.1 s on the shared port (serialized), 1 s elsewhere.
  EXPECT_NEAR(small_done, 0.1, 0.02);
  EXPECT_NEAR(large_done, 1.1, 0.05);
}

TEST_F(SincroniaSchedulerTest, AverageCoflowCompletionBeatsFairSharing) {
  // One large + three small coflows on one bottleneck: serializing by BSSI
  // gives a lower average CCT than max-min fair sharing would.
  SincroniaScheduler sincronia(&flow_sim_, {});
  std::vector<SimTime> done(4, -1);
  flow_sim_.StartFlow(0, 0, 1, Gbps(9), 0, 0, [&](FlowId) { done[0] = scheduler_.Now(); });
  for (AppId a = 1; a <= 3; ++a) {
    flow_sim_.StartFlow(a, 2, 1, Gbps(1), 0, static_cast<uint64_t>(a),
                        [&, a](FlowId) { done[static_cast<size_t>(a)] = scheduler_.Now(); });
  }
  scheduler_.Run();
  double avg = 0;
  for (SimTime t : done) {
    ASSERT_GT(t, 0);
    avg += t;
  }
  avg /= 4.0;
  // Fair sharing: every coflow finishes around 1.2 s -> average ~1.2.
  // BSSI: smalls at 0.1/0.2/0.3, large at 1.2 -> average ~0.45.
  EXPECT_LT(avg, 0.8);
}

TEST_F(SincroniaSchedulerTest, RecomputesOrderAsCoflowsFinish) {
  SincroniaScheduler sincronia(&flow_sim_, {});
  // After the small coflow drains, the large one must get full rate.
  SimTime large_done = -1;
  flow_sim_.StartFlow(0, 0, 1, Gbps(10), 0, 0, [&](FlowId) { large_done = scheduler_.Now(); });
  flow_sim_.StartFlow(1, 2, 1, Gbps(2), 0, 0, nullptr);
  scheduler_.Run();
  EXPECT_NEAR(large_done, 1.2, 0.05);
}

}  // namespace
}  // namespace saba
