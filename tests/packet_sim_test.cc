// Packet-level reference simulator tests, including the multi-hop
// cross-validation against the fluid WFQ allocator.

#include "src/net/packet_sim.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/net/allocator.h"
#include "src/net/units.h"
#include "src/sim/rng.h"

namespace saba {
namespace {

constexpr double kHorizon = 0.5;

TEST(PacketSimTest, SingleFlowSaturatesPath) {
  Network network(BuildSingleSwitchStar(4, Gbps64(1)), 8);
  PacketSimConfig config;
  config.horizon_seconds = kHorizon;
  const PacketSimResult result = RunPacketSim(&network, {{0, 1, 0, 1.0, -1, 0}}, config);
  // Two store-and-forward hops pipeline: throughput ~ line rate.
  EXPECT_NEAR(result.delivered_bits[0], Gbps(1) * kHorizon, Gbps(1) * kHorizon * 0.02);
}

TEST(PacketSimTest, FiniteFlowDeliversExactlyItsBits) {
  Network network(BuildSingleSwitchStar(4, Gbps64(1)), 8);
  PacketSimConfig config;
  config.horizon_seconds = kHorizon;
  const double bits = config.packet_bits * 100;
  const PacketSimResult result = RunPacketSim(&network, {{0, 1, 0, 1.0, bits, 0}}, config);
  EXPECT_DOUBLE_EQ(result.delivered_bits[0], bits);
  EXPECT_EQ(result.packets_in_flight, 0);
}

TEST(PacketSimTest, TwoFlowsShareABottleneckEqually) {
  Network network(BuildSingleSwitchStar(4, Gbps64(1)), 8);
  PacketSimConfig config;
  config.horizon_seconds = kHorizon;
  const PacketSimResult result =
      RunPacketSim(&network, {{0, 1, 0, 1.0, -1, 0}, {2, 1, 0, 1.0, -1, 0}}, config);
  const double total = result.delivered_bits[0] + result.delivered_bits[1];
  EXPECT_NEAR(total, Gbps(1) * kHorizon, Gbps(1) * kHorizon * 0.02);
  EXPECT_NEAR(result.delivered_bits[0] / total, 0.5, 0.02);
}

TEST(PacketSimTest, QueueWeightsShapeSharing) {
  Network network(BuildSingleSwitchStar(4, Gbps64(1)), 8);
  network.MapSlToQueueEverywhere(1, 1);
  for (size_t l = 0; l < network.topology().num_links(); ++l) {
    network.port(static_cast<LinkId>(l)).queue_weights[0] = 3.0;
    network.port(static_cast<LinkId>(l)).queue_weights[1] = 1.0;
  }
  PacketSimConfig config;
  config.horizon_seconds = kHorizon;
  const PacketSimResult result =
      RunPacketSim(&network, {{0, 1, 0, 1.0, -1, 0}, {2, 1, 1, 1.0, -1, 0}}, config);
  const double total = result.delivered_bits[0] + result.delivered_bits[1];
  EXPECT_NEAR(result.delivered_bits[0] / total, 0.75, 0.03);
}

TEST(PacketSimTest, BackpressureDoesNotDeadlockOrOverflow) {
  // Tiny buffers on a 3-hop path with heavy cross traffic: credits must keep
  // everything moving and bounded.
  Network network(BuildSpineLeaf({.num_spine = 1,
                                  .num_leaf = 2,
                                  .num_tor = 2,
                                  .hosts_per_tor = 2,
                                  .num_pods = 2,
                                  .host_link_bps = Gbps64(1),
                                  .tor_leaf_bps = Gbps64(1),
                                  .leaf_spine_bps = Gbps64(1)}),
                  8);
  PacketSimConfig config;
  config.horizon_seconds = kHorizon;
  config.buffer_packets = 3;
  const PacketSimResult result = RunPacketSim(
      &network, {{0, 3, 0, 1.0, -1, 1}, {1, 2, 0, 1.0, -1, 2}, {2, 1, 0, 1.0, -1, 3}}, config);
  double total = 0;
  for (double bits : result.delivered_bits) {
    EXPECT_GT(bits, 0.0) << "a flow starved";
    total += bits;
  }
  EXPECT_GT(total, Gbps(1) * kHorizon * 0.5);
}

// The headline: multi-hop fluid rates track packet-level truth. Random small
// fabrics, random flows in two weighted queues.
class FluidVsPacketMultiHopTest : public ::testing::TestWithParam<int> {};

TEST_P(FluidVsPacketMultiHopTest, ThroughputSharesAgree) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 6700417 + 5);
  Network network(BuildSpineLeaf({.num_spine = 2,
                                  .num_leaf = 2,
                                  .num_tor = 2,
                                  .hosts_per_tor = 3,
                                  .num_pods = 2,
                                  .host_link_bps = Gbps64(1),
                                  .tor_leaf_bps = Gbps64(1),
                                  .leaf_spine_bps = Gbps64(1)}),
                  2);
  network.MapSlToQueueEverywhere(1, 1);
  const double w0 = rng.Uniform(1.0, 3.0);
  const double w1 = rng.Uniform(1.0, 3.0);
  for (size_t l = 0; l < network.topology().num_links(); ++l) {
    network.port(static_cast<LinkId>(l)).queue_weights = {w0, w1};
  }

  const std::vector<NodeId> hosts = network.topology().Hosts();
  const int num_flows = static_cast<int>(rng.UniformInt(2, 5));
  std::vector<PacketFlowSpec> packet_flows;
  std::vector<std::unique_ptr<ActiveFlow>> storage;
  std::vector<ActiveFlow*> fluid_flows;
  for (int f = 0; f < num_flows; ++f) {
    NodeId src = rng.Choice(hosts);
    NodeId dst = rng.Choice(hosts);
    while (dst == src) {
      dst = rng.Choice(hosts);
    }
    const int sl = static_cast<int>(rng.UniformInt(0, 1));
    packet_flows.push_back({src, dst, sl, 1.0, -1, static_cast<uint64_t>(f)});

    auto flow = std::make_unique<ActiveFlow>();
    flow->id = f;
    flow->app = f;
    flow->sl = sl;
    flow->remaining_bits = Gigabytes(10);
    flow->path = &network.router().Route(src, dst, static_cast<uint64_t>(f));
    storage.push_back(std::move(flow));
    fluid_flows.push_back(storage.back().get());
  }

  WfqMaxMinAllocator allocator;
  allocator.Allocate(fluid_flows, network);

  PacketSimConfig config;
  config.horizon_seconds = 1.0;
  config.buffer_packets = 24;
  const PacketSimResult packets = RunPacketSim(&network, packet_flows, config);

  for (int f = 0; f < num_flows; ++f) {
    const double fluid_share = fluid_flows[static_cast<size_t>(f)]->rate / Gbps(1);
    const double packet_share =
        packets.delivered_bits[static_cast<size_t>(f)] / (Gbps(1) * config.horizon_seconds);
    // Packet effects (store-and-forward pipelining, credit stalls, quantized
    // service) justify a modest tolerance.
    EXPECT_NEAR(fluid_share, packet_share, 0.08)
        << "flow " << f << " of " << num_flows << " (weights " << w0 << "/" << w1 << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomFabrics, FluidVsPacketMultiHopTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace saba
