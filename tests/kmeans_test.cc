#include "src/numerics/kmeans.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/numerics/linalg.h"

namespace saba {
namespace {

TEST(KMeansTest, SinglePointSingleCluster) {
  Rng rng(1);
  const auto result = KMeans({{1.0, 2.0}}, 1, &rng);
  EXPECT_EQ(result.centroids.size(), 1u);
  EXPECT_EQ(result.assignment[0], 0u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, KLargerThanPointsClampsToPointCount) {
  Rng rng(1);
  const auto result = KMeans({{0.0}, {10.0}}, 5, &rng);
  EXPECT_EQ(result.centroids.size(), 2u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, SeparatesObviousClusters) {
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 10; ++i) {
    points.push_back({0.0 + i * 0.01, 0.0});
    points.push_back({100.0 + i * 0.01, 0.0});
  }
  Rng rng(7);
  const auto result = KMeans(points, 2, &rng);
  // Even-indexed points are near 0, odd near 100; they must land in
  // different clusters, consistently.
  for (size_t i = 2; i < points.size(); ++i) {
    EXPECT_EQ(result.assignment[i], result.assignment[i % 2]);
  }
  EXPECT_NE(result.assignment[0], result.assignment[1]);
}

TEST(KMeansTest, EveryClusterNonEmpty) {
  std::vector<std::vector<double>> points;
  Rng data_rng(3);
  for (int i = 0; i < 40; ++i) {
    points.push_back({data_rng.Uniform(0, 1), data_rng.Uniform(0, 1)});
  }
  Rng rng(11);
  const auto result = KMeans(points, 8, &rng);
  std::vector<int> counts(result.centroids.size(), 0);
  for (size_t a : result.assignment) {
    ASSERT_LT(a, result.centroids.size());
    ++counts[a];
  }
  for (int c : counts) {
    EXPECT_GT(c, 0);
  }
}

TEST(KMeansTest, CentroidIsMeanOfMembers) {
  std::vector<std::vector<double>> points = {{0, 0}, {2, 0}, {100, 100}, {102, 100}};
  Rng rng(5);
  const auto result = KMeans(points, 2, &rng);
  for (size_t c = 0; c < result.centroids.size(); ++c) {
    std::vector<std::vector<double>> members;
    for (size_t i = 0; i < points.size(); ++i) {
      if (result.assignment[i] == c) {
        members.push_back(points[i]);
      }
    }
    ASSERT_FALSE(members.empty());
    const std::vector<double> mean = MeanVector(members);
    EXPECT_NEAR(EuclideanDistance(mean, result.centroids[c]), 0.0, 1e-9);
  }
}

TEST(KMeansTest, AssignmentIsToNearestCentroid) {
  std::vector<std::vector<double>> points;
  Rng data_rng(13);
  for (int i = 0; i < 30; ++i) {
    points.push_back({data_rng.Uniform(0, 10)});
  }
  Rng rng(17);
  const auto result = KMeans(points, 4, &rng);
  for (size_t i = 0; i < points.size(); ++i) {
    const double own = SquaredDistance(points[i], result.centroids[result.assignment[i]]);
    for (const auto& centroid : result.centroids) {
      EXPECT_LE(own, SquaredDistance(points[i], centroid) + 1e-9);
    }
  }
}

TEST(KMeansTest, DeterministicGivenSeed) {
  std::vector<std::vector<double>> points;
  Rng data_rng(19);
  for (int i = 0; i < 25; ++i) {
    points.push_back({data_rng.Uniform(0, 1), data_rng.Uniform(0, 1)});
  }
  Rng rng_a(23);
  Rng rng_b(23);
  const auto a = KMeans(points, 5, &rng_a);
  const auto b = KMeans(points, 5, &rng_b);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeansTest, DuplicatePointsHandled) {
  std::vector<std::vector<double>> points(10, {1.0, 1.0});
  Rng rng(29);
  const auto result = KMeans(points, 3, &rng);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, MoreClustersLowerInertia) {
  std::vector<std::vector<double>> points;
  Rng data_rng(31);
  for (int i = 0; i < 50; ++i) {
    points.push_back({data_rng.Uniform(0, 100)});
  }
  double prev = 1e300;
  for (size_t k : {1u, 2u, 4u, 8u}) {
    Rng rng(37);
    const auto result = KMeans(points, k, &rng);
    EXPECT_LE(result.inertia, prev + 1e-9);
    prev = result.inertia;
  }
}

}  // namespace
}  // namespace saba
