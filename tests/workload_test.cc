#include "src/workload/workload_spec.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/net/allocator.h"
#include "src/net/flow_simulator.h"
#include "src/net/network.h"
#include "src/net/units.h"
#include "src/sim/event_scheduler.h"
#include "src/workload/app_runtime.h"
#include "src/workload/workload_catalog.h"

namespace saba {
namespace {

WorkloadSpec TinySpec(int stages, double compute_s, double bits_per_peer, double overlap) {
  WorkloadSpec spec;
  spec.name = "tiny";
  spec.fanout = 1;
  spec.reference_nodes = 2;
  StageSpec stage;
  stage.compute_seconds = compute_s;
  stage.bits_per_peer = bits_per_peer;
  stage.overlap = overlap;
  spec.stages.assign(static_cast<size_t>(stages), stage);
  return spec;
}

// Runs `spec` alone on a 2..n-host star and returns completion seconds.
double RunAlone(const WorkloadSpec& spec, int hosts, double link_bps) {
  EventScheduler scheduler;
  Network network(BuildSingleSwitchStar(hosts, RoundBps(link_bps)), 8);
  WfqMaxMinAllocator allocator;
  FlowSimulator flow_sim(&scheduler, &network, &allocator);
  NullNetworkPolicy policy;
  Application app(&scheduler, &flow_sim, spec, network.topology().Hosts(), 0, &policy);
  double completion = -1;
  app.Start([&](AppId, SimTime seconds) { completion = seconds; });
  scheduler.Run();
  return completion;
}

TEST(ApplicationTest, ComputeOnlyWorkloadTakesSumOfStages) {
  const WorkloadSpec spec = TinySpec(3, 2.0, 0.0, 0.0);
  EXPECT_NEAR(RunAlone(spec, 2, Gbps(10)), 6.0, 1e-9);
}

TEST(ApplicationTest, CommOnlyWorkloadMatchesVolumeOverRate) {
  // 2 hosts, fanout 1: each host sends 10 Gb to the other per stage; both
  // links carry exactly one flow at 10 Gb/s -> 1 s per stage.
  const WorkloadSpec spec = TinySpec(2, 0.0, Gbps(10), 0.0);
  EXPECT_NEAR(RunAlone(spec, 2, Gbps(10)), 2.0, 1e-6);
}

TEST(ApplicationTest, SequentialStageIsComputePlusComm) {
  const WorkloadSpec spec = TinySpec(1, 2.0, Gbps(10), 0.0);
  EXPECT_NEAR(RunAlone(spec, 2, Gbps(10)), 3.0, 1e-6);
}

TEST(ApplicationTest, FullOverlapHidesCommBehindCompute) {
  // Comm takes 1 s, compute 2 s, fully overlapped: stage is 2 s.
  const WorkloadSpec spec = TinySpec(1, 2.0, Gbps(10), 1.0);
  EXPECT_NEAR(RunAlone(spec, 2, Gbps(10)), 2.0, 1e-6);
}

TEST(ApplicationTest, PartialOverlapMatchesAnalyticModel) {
  // overlap 0.5: max(2, 0.5*1) + 0.5*1 = 2.5 s.
  const WorkloadSpec spec = TinySpec(1, 2.0, Gbps(10), 0.5);
  const double simulated = RunAlone(spec, 2, Gbps(10));
  EXPECT_NEAR(simulated, AnalyticCompletionSeconds(spec, Gbps(10)), 0.05);
  EXPECT_NEAR(simulated, 2.5, 1e-6);
}

TEST(ApplicationTest, SlowdownIsMonotoneInBandwidth) {
  const WorkloadSpec& lr = *FindWorkload("LR");
  double previous = 0;
  for (double fraction : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    const double t = RunAlone(lr, 8, Gbps(56) * fraction);
    EXPECT_GT(t, 0);
    if (previous > 0) {
      EXPECT_LE(t, previous * (1 + 1e-9)) << "more bandwidth must not slow the job down";
    }
    previous = t;
  }
}

TEST(ApplicationTest, SimulatorTracksAnalyticModelInIsolation) {
  // In isolation on a star, each instance's aggregate rate is the NIC rate;
  // the BSP simulation should match the closed form within a few percent.
  for (const char* name : {"LR", "PR", "SQL", "Sort"}) {
    const WorkloadSpec& spec = *FindWorkload(name);
    const double simulated = RunAlone(spec, 8, Gbps(56));
    const double analytic = AnalyticCompletionSeconds(spec, Gbps(56));
    EXPECT_NEAR(simulated / analytic, 1.0, 0.05) << name;
  }
}

TEST(ApplicationTest, IsComputingReflectsStagePhase) {
  EventScheduler scheduler;
  Network network(BuildSingleSwitchStar(2, Gbps64(10)), 8);
  WfqMaxMinAllocator allocator;
  FlowSimulator flow_sim(&scheduler, &network, &allocator);
  NullNetworkPolicy policy;
  const WorkloadSpec spec = TinySpec(1, 2.0, Gbps(10), 0.0);
  Application app(&scheduler, &flow_sim, spec, network.topology().Hosts(), 0, &policy);
  app.Start(nullptr);
  scheduler.RunUntil(1.0);
  EXPECT_TRUE(app.IsComputing());
  scheduler.RunUntil(2.5);
  EXPECT_FALSE(app.IsComputing());  // In the shuffle phase now.
  EXPECT_FALSE(app.finished());
  scheduler.Run();
  EXPECT_TRUE(app.finished());
  EXPECT_NEAR(app.CompletionSeconds(), 3.0, 1e-6);
}

TEST(ApplicationTest, ElasticPrefetchIsEmittedAndAbandonedAtBarriers) {
  // PR ships elastic prefetch traffic it never waits for; under a throttled
  // NIC the prefetcher cannot finish within a stage, so stage barriers must
  // cancel leftovers rather than stall.
  EventScheduler scheduler;
  Network network(BuildSingleSwitchStar(8, RoundBps(Gbps(56) * 0.25)), 8);
  WfqMaxMinAllocator allocator;
  FlowSimulator flow_sim(&scheduler, &network, &allocator);
  NullNetworkPolicy policy;
  Application app(&scheduler, &flow_sim, *FindWorkload("PR"), network.topology().Hosts(), 0,
                  &policy);
  double completion = -1;
  app.Start([&](AppId, SimTime t) { completion = t; });
  scheduler.Run();
  EXPECT_GT(completion, 0);
  EXPECT_GT(flow_sim.cancelled_flow_count(), 0u)
      << "throttled PR must abandon stale prefetches at stage barriers";
  EXPECT_EQ(flow_sim.active_flow_count(), 0u);
}

TEST(ApplicationTest, ElasticPrefetchDoesNotDelayCompletion) {
  // Removing the elastic traffic must not change PR's completion time in
  // isolation (it is never on the critical path).
  WorkloadSpec pr = *FindWorkload("PR");
  WorkloadSpec no_elastic = pr;
  for (StageSpec& stage : no_elastic.stages) {
    stage.elastic_bits_per_peer = 0;
  }
  const double with = RunAlone(pr, 8, Gbps(56));
  const double without = RunAlone(no_elastic, 8, Gbps(56));
  EXPECT_NEAR(with, without, without * 0.02);
}

TEST(ScaleWorkloadTest, IdentityScalingIsNoOp) {
  const WorkloadSpec& lr = *FindWorkload("LR");
  const WorkloadSpec scaled = ScaleWorkload(lr, 1.0, lr.reference_nodes);
  ASSERT_EQ(scaled.stages.size(), lr.stages.size());
  for (size_t i = 0; i < scaled.stages.size(); ++i) {
    EXPECT_NEAR(scaled.stages[i].compute_seconds, lr.stages[i].compute_seconds, 1e-12);
    EXPECT_NEAR(scaled.stages[i].bits_per_peer, lr.stages[i].bits_per_peer, 1e-3);
    EXPECT_NEAR(scaled.stages[i].overlap, lr.stages[i].overlap, 1e-12);
  }
}

TEST(ScaleWorkloadTest, DatasetScalingGrowsWork) {
  const WorkloadSpec& lr = *FindWorkload("LR");
  const WorkloadSpec big = ScaleWorkload(lr, 10.0, lr.reference_nodes);
  EXPECT_GT(big.TotalComputeSeconds(), lr.TotalComputeSeconds() * 5);
  EXPECT_GT(big.TotalBitsPerInstance(), lr.TotalBitsPerInstance() * 5);
}

TEST(ScaleWorkloadTest, MoreNodesShrinkPerInstanceWork) {
  const WorkloadSpec& lr = *FindWorkload("LR");
  const WorkloadSpec wide = ScaleWorkload(lr, 1.0, 32);
  EXPECT_LT(wide.TotalComputeSeconds(), lr.TotalComputeSeconds());
  EXPECT_LT(wide.TotalBitsPerInstance(), lr.TotalBitsPerInstance());
}

TEST(ScaleWorkloadTest, OverlapStaysInUnitInterval) {
  for (const WorkloadSpec& spec : HiBenchCatalog()) {
    for (double dataset : {0.1, 10.0}) {
      for (int nodes : {4, 32}) {
        const WorkloadSpec scaled = ScaleWorkload(spec, dataset, nodes);
        for (const StageSpec& stage : scaled.stages) {
          EXPECT_GE(stage.overlap, 0.0);
          EXPECT_LE(stage.overlap, 1.0);
        }
      }
    }
  }
}

TEST(WorkloadCatalogTest, HasAllTenWorkloads) {
  EXPECT_EQ(HiBenchCatalog().size(), 10u);
  for (const char* name : {"LR", "RF", "GBT", "SVM", "NI", "NW", "PR", "SQL", "WC", "Sort"}) {
    EXPECT_NE(FindWorkload(name), nullptr) << name;
  }
  EXPECT_EQ(FindWorkload("nope"), nullptr);
  EXPECT_EQ(Table1Datasets().size(), 10u);
}

TEST(WorkloadCatalogTest, SyntheticGeneratorIsDeterministicAndDiverse) {
  Rng rng_a(5);
  Rng rng_b(5);
  const auto a = GenerateSyntheticWorkloads(20, &rng_a);
  const auto b = GenerateSyntheticWorkloads(20, &rng_b);
  ASSERT_EQ(a.size(), 20u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stages.size(), b[i].stages.size());
    EXPECT_DOUBLE_EQ(a[i].stages[0].compute_seconds, b[i].stages[0].compute_seconds);
  }
  // Diversity: comm/compute ratios should span a wide range.
  double min_ratio = 1e9;
  double max_ratio = 0;
  for (const WorkloadSpec& spec : a) {
    const double ratio = spec.TotalBitsPerInstance() / Gbps(56) / spec.TotalComputeSeconds();
    min_ratio = std::min(min_ratio, ratio);
    max_ratio = std::max(max_ratio, ratio);
  }
  EXPECT_LT(min_ratio, 0.3);
  EXPECT_GT(max_ratio, 1.0);
}

}  // namespace
}  // namespace saba
