// Integration tests of the co-run executor across all policies.

#include "src/exp/corun.h"

#include <gtest/gtest.h>

#include "src/core/profiler.h"
#include "src/exp/cluster_setup.h"
#include "src/net/units.h"
#include "src/numerics/stats.h"
#include "src/workload/workload_catalog.h"

namespace saba {
namespace {

class CoRunTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ProfilerOptions options;
    options.noise_sigma = 0;  // Deterministic models for the integration tests.
    OfflineProfiler profiler(options);
    table_ = new SensitivityTable(profiler.ProfileAll(HiBenchCatalog()));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }

  // LR and PR co-located on all 8 hosts — the paper's §2.2 experiment.
  static std::vector<JobSpec> LrPrJobs() {
    std::vector<NodeId> hosts;
    for (NodeId h = 0; h < 8; ++h) {
      hosts.push_back(h);
    }
    std::vector<JobSpec> jobs;
    jobs.push_back({*FindWorkload("LR"), hosts, 0.0});
    jobs.push_back({*FindWorkload("PR"), hosts, 0.0});
    return jobs;
  }

  static SensitivityTable* table_;
};

// saba-lint: shared-state-ok(gtest fixture static: written once in SetUpTestSuite before any
// test body runs; test bodies run serially on one thread)
SensitivityTable* CoRunTest::table_ = nullptr;

TEST_F(CoRunTest, AllPoliciesCompleteAllJobs) {
  const Topology topo = BuildSingleSwitchStar(8, Gbps64(56));
  const std::vector<JobSpec> jobs = LrPrJobs();
  for (PolicyKind policy :
       {PolicyKind::kBaseline, PolicyKind::kSaba, PolicyKind::kSabaDistributed,
        PolicyKind::kSabaUnlimited, PolicyKind::kIdealMaxMin, PolicyKind::kHoma,
        PolicyKind::kSincronia, PolicyKind::kPFabric}) {
    CoRunOptions options;
    options.policy = policy;
    options.table = table_;
    const CoRunResult result = RunCoRun(topo, jobs, options);
    ASSERT_EQ(result.completion_seconds.size(), 2u) << PolicyName(policy);
    for (double t : result.completion_seconds) {
      EXPECT_GT(t, 0) << PolicyName(policy);
    }
  }
}

TEST_F(CoRunTest, SabaFavoursTheSensitiveJob) {
  // §2.2 / Fig 1b: under skewed (sensitivity-aware) allocation LR improves a
  // lot while PR degrades a little, relative to equal sharing.
  const Topology topo = BuildSingleSwitchStar(8, Gbps64(56));
  const std::vector<JobSpec> jobs = LrPrJobs();

  CoRunOptions baseline_options;
  baseline_options.policy = PolicyKind::kBaseline;
  const CoRunResult baseline = RunCoRun(topo, jobs, baseline_options);

  CoRunOptions saba_options;
  saba_options.policy = PolicyKind::kSaba;
  saba_options.table = table_;
  const CoRunResult saba = RunCoRun(topo, jobs, saba_options);

  const std::vector<double> speedups = Speedups(baseline, saba);
  EXPECT_GT(speedups[0], 1.25) << "LR (sensitive) must gain substantially";
  EXPECT_GT(speedups[1], 0.85) << "PR (insensitive) must lose at most mildly";
  EXPECT_GT(GeometricMean(speedups), 1.08);
}

TEST_F(CoRunTest, SabaBeatsBaselineOnRandomClusterSetup) {
  const Topology topo = BuildSingleSwitchStar(32, Gbps64(56));
  Rng rng(123);
  ClusterSetupOptions setup_options;
  const std::vector<JobSpec> jobs =
      GenerateClusterSetup(HiBenchCatalog(), setup_options, &rng);
  ASSERT_EQ(jobs.size(), 16u);

  CoRunOptions baseline_options;
  baseline_options.policy = PolicyKind::kBaseline;
  const CoRunResult baseline = RunCoRun(topo, jobs, baseline_options);

  CoRunOptions saba_options;
  saba_options.policy = PolicyKind::kSaba;
  saba_options.table = table_;
  const CoRunResult saba = RunCoRun(topo, jobs, saba_options);

  EXPECT_GT(GeometricMean(Speedups(baseline, saba)), 1.15);
  EXPECT_GT(saba.controller_stats.registrations, 0u);
  EXPECT_GT(saba.controller_stats.port_reconfigurations, 0u);
}

TEST_F(CoRunTest, DeterministicAcrossRuns) {
  const Topology topo = BuildSingleSwitchStar(8, Gbps64(56));
  const std::vector<JobSpec> jobs = LrPrJobs();
  CoRunOptions options;
  options.policy = PolicyKind::kSaba;
  options.table = table_;
  const CoRunResult a = RunCoRun(topo, jobs, options);
  const CoRunResult b = RunCoRun(topo, jobs, options);
  ASSERT_EQ(a.completion_seconds.size(), b.completion_seconds.size());
  for (size_t i = 0; i < a.completion_seconds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.completion_seconds[i], b.completion_seconds[i]);
  }
}

TEST(ClusterSetupTest, RespectsPlacementConstraints) {
  Rng rng(7);
  ClusterSetupOptions options;
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<JobSpec> jobs =
        GenerateClusterSetup(HiBenchCatalog(), options, &rng);
    std::vector<int> load(static_cast<size_t>(options.num_servers), 0);
    for (const JobSpec& job : jobs) {
      std::vector<bool> seen(static_cast<size_t>(options.num_servers), false);
      for (NodeId host : job.hosts) {
        ASSERT_GE(host, 0);
        ASSERT_LT(host, options.num_servers);
        EXPECT_FALSE(seen[static_cast<size_t>(host)])
            << "two instances of one job on a server";
        seen[static_cast<size_t>(host)] = true;
        load[static_cast<size_t>(host)] += 1;
      }
      EXPECT_GE(static_cast<int>(job.hosts.size()), 2);
      EXPECT_LE(static_cast<int>(job.hosts.size()), options.num_servers);
    }
    for (int l : load) {
      EXPECT_LE(l, options.max_jobs_per_server);
    }
  }
}

TEST(ClusterSetupTest, DrawsSpanCatalogOverTrials) {
  Rng rng(11);
  ClusterSetupOptions options;
  std::set<std::string> names;
  for (int trial = 0; trial < 10; ++trial) {
    for (const JobSpec& job : GenerateClusterSetup(HiBenchCatalog(), options, &rng)) {
      names.insert(job.spec.name);
    }
  }
  EXPECT_GE(names.size(), 9u);
}

}  // namespace
}  // namespace saba
