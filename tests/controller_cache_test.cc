#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/controller.h"
#include "src/net/network.h"
#include "src/net/topology.h"
#include "src/net/units.h"
#include "src/sim/rng.h"

namespace saba {
namespace {

// The solve cache is an exactness-preserving memo (DESIGN.md §7.2): a
// cache-enabled controller and a cache-disabled one fed the same event
// stream must produce bit-identical weights, SL-to-queue tables, and queue
// weights at every port, at every step. This churn test is the §7.1-style
// oracle check for the control plane.

class CacheProbeController : public CentralizedController {
 public:
  using CentralizedController::CentralizedController;

  // Mirrors the controller's member type; only compared with operator==,
  // which is iteration-order-insensitive for unordered containers.
  // saba-lint: unordered-iter-ok(order-insensitive operator== comparison only)
  const std::unordered_map<LinkId, std::vector<std::pair<AppId, double>>>& port_weights() const {
    return port_weights_;
  }
  const QueueMapper* queue_mapper() const {
    return solve_ctx_.mapper.has_value() ? &*solve_ctx_.mapper : nullptr;
  }
};

Network MakeNetwork() {
  return Network(BuildSpineLeaf({.num_spine = 2,
                                 .num_leaf = 4,
                                 .num_tor = 4,
                                 .hosts_per_tor = 3,
                                 .num_pods = 2,
                                 .host_link_bps = Gbps64(10),
                                 .tor_leaf_bps = Gbps64(10),
                                 .leaf_spine_bps = Gbps64(10)}),
                 /*default_queues=*/4);
}

SensitivityTable MakeTable() {
  SensitivityTable table;
  const std::vector<std::pair<std::string, Polynomial>> entries = {
      {"steep", Polynomial({5.0, -4.0})},
      {"flat", Polynomial({1.2, -0.2})},
      {"quad", Polynomial({3.0, -2.5, 0.6})},
      // Non-convex on the feasible box (second derivative negative near
      // w = 1), so ports carrying it take the projected-gradient path and
      // exercise the signature-seeded Rng stream.
      {"bursty", Polynomial({2.0, -1.2, 0.3, -0.25, 0.05})},
  };
  for (const auto& [name, poly] : entries) {
    SensitivityEntry entry;
    entry.model = SensitivityModel{poly};
    table.Put(name, entry);
  }
  return table;
}

struct Conn {
  AppId app;
  NodeId src;
  NodeId dst;
  uint64_t salt;
};

void ExpectIdenticalState(const CacheProbeController& cached,
                          const CacheProbeController& uncached, const Network& net_cached,
                          const Network& net_uncached, int event) {
  ASSERT_EQ(cached.registered_app_count(), uncached.registered_app_count()) << "event " << event;
  // Solved per-app weights: exact double equality, per port.
  EXPECT_EQ(cached.port_weights(), uncached.port_weights()) << "event " << event;
  // Programmed switch state: SL tables and queue weights at every port.
  const size_t num_links = net_cached.topology().num_links();
  ASSERT_EQ(num_links, net_uncached.topology().num_links());
  for (LinkId link = 0; link < static_cast<LinkId>(num_links); ++link) {
    const PortConfig& a = net_cached.port(link);
    const PortConfig& b = net_uncached.port(link);
    ASSERT_EQ(a.sl_to_queue, b.sl_to_queue) << "link " << link << " event " << event;
    ASSERT_EQ(a.queue_weights, b.queue_weights) << "link " << link << " event " << event;
  }
}

void RunChurn(uint64_t seed) {
  SCOPED_TRACE(::testing::Message() << "seed " << seed);
  Network net_cached = MakeNetwork();
  Network net_uncached = MakeNetwork();
  const SensitivityTable table = MakeTable();

  ControllerOptions options;  // solve_cache defaults to true.
  CacheProbeController cached(&net_cached, /*flow_sim=*/nullptr, &table, options);
  options.solve_cache = false;
  CacheProbeController uncached(&net_uncached, /*flow_sim=*/nullptr, &table, options);

  const std::vector<NodeId> hosts = net_cached.topology().Hosts();
  const std::vector<std::string> workloads = {"steep", "flat", "quad", "bursty"};

  Rng rng(seed);
  std::vector<AppId> apps;
  std::vector<Conn> conns;
  AppId next_app = 1;

  constexpr int kEvents = 600;
  for (int e = 0; e < kEvents; ++e) {
    // Register-heavy until a working set exists, then connection churn.
    const double reg_w = apps.size() < 12 ? 0.50 : 0.04;
    const size_t op = apps.empty() ? 0 : rng.WeightedIndex({reg_w, 0.50, 0.36, 0.04});
    switch (op) {
      case 0: {  // Register an application.
        const AppId app = next_app++;
        const std::string& workload = rng.Choice(workloads);
        cached.AppRegister(app, workload);
        uncached.AppRegister(app, workload);
        apps.push_back(app);
        break;
      }
      case 1: {  // Create a connection.
        if (conns.size() > 300) {
          continue;
        }
        Conn conn;
        conn.app = rng.Choice(apps);
        conn.src = rng.Choice(hosts);
        conn.dst = rng.Choice(hosts);
        while (conn.dst == conn.src) {
          conn.dst = rng.Choice(hosts);
        }
        conn.salt = rng.Next();
        cached.ConnCreate(conn.app, conn.src, conn.dst, conn.salt);
        uncached.ConnCreate(conn.app, conn.src, conn.dst, conn.salt);
        conns.push_back(conn);
        break;
      }
      case 2: {  // Destroy a connection.
        if (conns.empty()) {
          continue;
        }
        const size_t pick =
            static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(conns.size()) - 1));
        const Conn conn = conns[pick];
        conns[pick] = conns.back();
        conns.pop_back();
        cached.ConnDestroy(conn.app, conn.src, conn.dst, conn.salt);
        uncached.ConnDestroy(conn.app, conn.src, conn.dst, conn.salt);
        break;
      }
      default: {  // Tear down an application (drains its connections first).
        const size_t pick =
            static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(apps.size()) - 1));
        const AppId app = apps[pick];
        apps[pick] = apps.back();
        apps.pop_back();
        for (size_t i = conns.size(); i-- > 0;) {
          if (conns[i].app != app) {
            continue;
          }
          const Conn conn = conns[i];
          conns[i] = conns.back();
          conns.pop_back();
          cached.ConnDestroy(conn.app, conn.src, conn.dst, conn.salt);
          uncached.ConnDestroy(conn.app, conn.src, conn.dst, conn.salt);
        }
        cached.AppDeregister(app);
        uncached.AppDeregister(app);
        break;
      }
    }
    ExpectIdenticalState(cached, uncached, net_cached, net_uncached, e);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }

  // The run must have actually exercised both memo layers.
  EXPECT_GT(cached.stats().eq2_cache_hits, 0u);
  EXPECT_GT(cached.stats().eq2_cache_misses, 0u);
  EXPECT_EQ(uncached.stats().eq2_cache_hits, 0u);
  ASSERT_NE(cached.queue_mapper(), nullptr);
  EXPECT_GT(cached.queue_mapper()->memo_hits(), 0u);
  EXPECT_EQ(uncached.queue_mapper()->memo_hits(), 0u);
  // Same churn, same solves: the cache only changes how often Eq 2 runs.
  EXPECT_LT(cached.stats().eq2_cache_misses,
            uncached.stats().eq2_cache_hits + uncached.stats().eq2_cache_misses);
}

TEST(ControllerCacheTest, CachedMatchesUncachedBitExactUnderChurn) {
  RunChurn(11);
  RunChurn(29);
}

}  // namespace
}  // namespace saba
