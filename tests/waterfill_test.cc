#include "src/net/waterfill.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/net/units.h"
#include "src/sim/rng.h"

namespace saba {
namespace {

Bps64 Sum(const std::vector<Bps64>& rates) {
  Bps64 total = 0;
  for (Bps64 r : rates) {
    total += r;
  }
  return total;
}

WaterfillOptions FullSort() {
  WaterfillOptions options;
  options.mode = WaterfillMode::kFullSort;
  return options;
}

TEST(WaterfillTest, AllElasticIsClosedFormFairShare) {
  const std::vector<WaterfillEntry> entries(4);  // Unit weights, elastic.
  std::vector<Bps64> rates;
  const WaterLevel level = SolveWaterfill(Gbps64(1), entries, &rates);
  ASSERT_EQ(rates.size(), 4u);
  for (Bps64 r : rates) {
    EXPECT_EQ(r, Gbps64(1) / 4);
  }
  EXPECT_FALSE(level.unbounded());
}

TEST(WaterfillTest, WeightedElasticSharesAreExactFloors) {
  // Weights 1:3 on 1 Gb/s: grants are floor(w_i * cap / w_sum).
  std::vector<WaterfillEntry> entries(2);
  entries[0].weight = WeightUnits(1.0);
  entries[1].weight = WeightUnits(3.0);
  std::vector<Bps64> rates;
  SolveWaterfill(Gbps64(1), entries, &rates);
  EXPECT_EQ(rates[0], Gbps64(1) / 4);
  EXPECT_EQ(rates[1], 3 * (Gbps64(1) / 4));
}

TEST(WaterfillTest, SmallDemandsGrantedOutrightRestSplitsRemainder) {
  std::vector<WaterfillEntry> entries(3);
  entries[0].demand = Mbps64(100);  // Below fair share: granted in full.
  // entries[1], entries[2] elastic.
  std::vector<Bps64> rates;
  SolveWaterfill(Gbps64(1), entries, &rates);
  EXPECT_EQ(rates[0], Mbps64(100));
  EXPECT_EQ(rates[1], Mbps64(450));
  EXPECT_EQ(rates[2], Mbps64(450));
}

TEST(WaterfillTest, UnboundedLevelWhenCapacityExceedsDemand) {
  std::vector<WaterfillEntry> entries(2);
  entries[0].demand = Mbps64(100);
  entries[1].demand = Mbps64(200);
  std::vector<Bps64> rates;
  const WaterLevel level = SolveWaterfill(Gbps64(1), entries, &rates);
  EXPECT_TRUE(level.unbounded());
  EXPECT_EQ(rates[0], Mbps64(100));
  EXPECT_EQ(rates[1], Mbps64(200));
}

TEST(WaterfillTest, ZeroCapacityGrantsNothing) {
  std::vector<WaterfillEntry> entries(3);
  std::vector<Bps64> rates;
  SolveWaterfill(0, entries, &rates);
  for (Bps64 r : rates) {
    EXPECT_EQ(r, 0);
  }
}

// Partial selection, full sort, and the tiny-flow fast path are three routes
// to the same integer answer. Cross-validate them bit-for-bit on randomized
// instances, and check exact conservation (sum of grants never exceeds
// capacity; with any elastic entry present, the shortfall is only the
// per-entry floor dust).
TEST(WaterfillTest, StrategiesAgreeBitForBitUnderRandomInstances) {
  Rng rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(1, 64));
    std::vector<WaterfillEntry> entries(static_cast<size_t>(n));
    int elastic = 0;
    for (WaterfillEntry& e : entries) {
      e.weight = WeightUnits(rng.Uniform(0.1, 2.0));
      if (rng.Bernoulli(0.3)) {
        ++elastic;  // Keep the elastic demand.
      } else {
        e.demand = RoundBps(rng.Uniform(0, Gbps(2)));
      }
    }
    const Bps64 capacity = RoundBps(rng.Uniform(Mbps(1), Gbps(8)));

    std::vector<Bps64> partial;
    std::vector<Bps64> sorted;
    std::vector<Bps64> no_tiny;
    SolveWaterfill(capacity, entries, &partial);
    SolveWaterfill(capacity, entries, &sorted, FullSort());
    WaterfillOptions no_tiny_opt;
    no_tiny_opt.enable_tiny_flow_opt = false;
    SolveWaterfill(capacity, entries, &no_tiny, no_tiny_opt);
    ASSERT_EQ(partial, sorted) << "trial " << trial;
    ASSERT_EQ(partial, no_tiny) << "trial " << trial;

    const Bps64 granted = Sum(partial);
    ASSERT_LE(granted, capacity) << "trial " << trial;
    if (elastic > 0) {
      // Rate-limited entries lose < 1 unit each to the floor.
      ASSERT_GE(granted, capacity - static_cast<Bps64>(n)) << "trial " << trial;
    }
    for (size_t i = 0; i < entries.size(); ++i) {
      ASSERT_LE(partial[i], entries[i].demand) << "trial " << trial;
      ASSERT_GE(partial[i], 0) << "trial " << trial;
    }
  }
}

// The grant is a function of the entry multiset: permuting the entries
// permutes the rates identically.
TEST(WaterfillTest, OrderIndependent) {
  Rng rng(7);
  std::vector<WaterfillEntry> entries(17);
  for (WaterfillEntry& e : entries) {
    e.weight = WeightUnits(rng.Uniform(0.1, 2.0));
    if (!rng.Bernoulli(0.5)) {
      e.demand = RoundBps(rng.Uniform(0, Gbps(1)));
    }
  }
  const Bps64 capacity = Gbps64(3);
  std::vector<Bps64> base;
  SolveWaterfill(capacity, entries, &base);

  std::vector<size_t> perm(entries.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    perm[i] = i;
  }
  for (int trial = 0; trial < 20; ++trial) {
    for (size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[static_cast<size_t>(rng.UniformInt(
                                 0, static_cast<int64_t>(i) - 1))]);
    }
    std::vector<WaterfillEntry> shuffled(entries.size());
    for (size_t i = 0; i < perm.size(); ++i) {
      shuffled[i] = entries[perm[i]];
    }
    std::vector<Bps64> rates;
    SolveWaterfill(capacity, shuffled, &rates);
    for (size_t i = 0; i < perm.size(); ++i) {
      ASSERT_EQ(rates[i], base[perm[i]]) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace saba
