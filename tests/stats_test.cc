#include "src/numerics/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace saba {
namespace {

TEST(StatsTest, Mean) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({7}), 7.0);
}

TEST(StatsTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(GeometricMean({4, 1}), 2.0);
  EXPECT_NEAR(GeometricMean({2, 8}), 4.0, 1e-12);
  // Geomean <= arithmetic mean.
  const std::vector<double> xs = {1.2, 3.4, 0.5, 2.0};
  EXPECT_LE(GeometricMean(xs), Mean(xs));
}

TEST(StatsTest, StdDev) {
  EXPECT_DOUBLE_EQ(StdDev({5}), 0.0);
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138089935299395, 1e-12);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 10), 1.4);
}

TEST(StatsTest, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(Percentile({5, 1, 3, 2, 4}, 50), 3.0);
}

TEST(StatsTest, MinMax) {
  EXPECT_DOUBLE_EQ(Min({3, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(Max({3, 1, 2}), 3.0);
}

TEST(StatsTest, EmpiricalCdfEndpointsAndMonotone) {
  const std::vector<double> xs = {5, 1, 3, 2, 4};
  const auto cdf = EmpiricalCdf(xs, 11);
  ASSERT_EQ(cdf.size(), 11u);
  EXPECT_DOUBLE_EQ(cdf.front().first, 1.0);
  EXPECT_DOUBLE_EQ(cdf.front().second, 0.0);
  EXPECT_DOUBLE_EQ(cdf.back().first, 5.0);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
}

TEST(RunningStatsTest, MatchesBatchComputation) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  RunningStats rs;
  for (double x : xs) {
    rs.Add(x);
  }
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), Mean(xs), 1e-12);
  EXPECT_NEAR(rs.stddev(), StdDev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats rs;
  rs.Add(3.5);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.5);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace saba
