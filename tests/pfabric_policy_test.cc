#include "src/baselines/pfabric_policy.h"

#include <gtest/gtest.h>

#include "src/net/units.h"
#include "src/sim/event_scheduler.h"

namespace saba {
namespace {

class PFabricTest : public ::testing::Test {
 protected:
  PFabricTest()
      : network_(BuildSingleSwitchStar(4, Gbps64(10)), 8),
        flow_sim_(&scheduler_, &network_, &allocator_) {}

  EventScheduler scheduler_;
  Network network_;
  StrictPriorityAllocator allocator_;
  FlowSimulator flow_sim_;
};

TEST_F(PFabricTest, PriorityMonotoneInRemainingSize) {
  PFabricScheduler pfabric(&flow_sim_, {});
  double previous = -1;
  for (double bits : {Kilobytes(1), Kilobytes(100), Megabytes(10), Gigabytes(1),
                      Gigabytes(100)}) {
    const int cls = pfabric.PriorityFor(bits);
    EXPECT_GE(cls, previous);
    previous = cls;
  }
}

TEST_F(PFabricTest, DifferentiatesLargeFlowsUnlikeHoma) {
  // The defining contrast with the Homa-like scheduler: 1 MB vs 1 GB land in
  // different classes even though both are far beyond Homa's 10 KB cutoff.
  PFabricScheduler pfabric(&flow_sim_, {});
  EXPECT_LT(pfabric.PriorityFor(Megabytes(1)), pfabric.PriorityFor(Gigabytes(1)));
}

TEST_F(PFabricTest, SrptShortFlowPreemptsLongFlow) {
  PFabricScheduler pfabric(&flow_sim_, {});
  SimTime short_done = -1;
  SimTime long_done = -1;
  flow_sim_.StartFlow(0, 0, 1, Gbps(20), 0, 0, [&](FlowId) { long_done = scheduler_.Now(); });
  scheduler_.ScheduleAt(0.1, [&] {
    flow_sim_.StartFlow(1, 2, 1, Gbps(1), 0, 0,
                        [&](FlowId) { short_done = scheduler_.Now(); });
  });
  scheduler_.Run();
  // SRPT: the 1 Gb flow runs to completion first (~0.2 s), the 20 Gb flow
  // finishes at ~2.1 s (it lost 0.1 s of service).
  EXPECT_NEAR(short_done, 0.2, 0.02);
  EXPECT_NEAR(long_done, 2.1, 0.05);
}

TEST_F(PFabricTest, NearCompletionFlowOvertakes) {
  // A long flow that is nearly done outranks a mid-size fresh flow — the
  // "remaining size" part of SRPT.
  PFabricScheduler pfabric(&flow_sim_, {});
  SimTime big_done = -1;
  flow_sim_.StartFlow(0, 0, 1, Gbps(10), 0, 0, [&](FlowId) { big_done = scheduler_.Now(); });
  SimTime fresh_done = -1;
  // Arrives when the big flow has only ~0.5 Gb left.
  scheduler_.ScheduleAt(0.95, [&] {
    flow_sim_.StartFlow(1, 2, 1, Gbps(2), 0, 0,
                        [&](FlowId) { fresh_done = scheduler_.Now(); });
  });
  scheduler_.Run();
  EXPECT_LT(big_done, fresh_done);
}

}  // namespace
}  // namespace saba
