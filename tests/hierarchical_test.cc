#include "src/numerics/hierarchical.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/numerics/linalg.h"
#include "src/sim/rng.h"

namespace saba {
namespace {

TEST(HierarchicalTest, LevelZeroIsSingletons) {
  const auto hc = HierarchicalClustering::Build({{0.0}, {1.0}, {5.0}});
  EXPECT_EQ(hc.num_leaves(), 3u);
  EXPECT_EQ(hc.num_levels(), 3u);
  std::set<size_t> clusters;
  for (size_t leaf = 0; leaf < 3; ++leaf) {
    clusters.insert(hc.ClusterOf(0, leaf));
  }
  EXPECT_EQ(clusters.size(), 3u);
}

TEST(HierarchicalTest, DeepestLevelIsOneCluster) {
  const auto hc = HierarchicalClustering::Build({{0.0}, {1.0}, {5.0}, {9.0}});
  const size_t last = hc.num_levels() - 1;
  for (size_t leaf = 0; leaf < 4; ++leaf) {
    EXPECT_EQ(hc.ClusterOf(last, leaf), 0u);
  }
}

TEST(HierarchicalTest, EachLevelMergesExactlyOnePair) {
  const auto hc = HierarchicalClustering::Build({{0.0}, {1.0}, {5.0}, {9.0}, {20.0}});
  for (size_t level = 0; level < hc.num_levels(); ++level) {
    std::set<size_t> clusters;
    for (size_t leaf = 0; leaf < hc.num_leaves(); ++leaf) {
      clusters.insert(hc.ClusterOf(level, leaf));
    }
    EXPECT_EQ(clusters.size(), hc.num_leaves() - level);
  }
}

TEST(HierarchicalTest, ClosestPairMergesFirst) {
  // 0.0 and 0.1 are by far the closest; they must share a cluster at level 1.
  const auto hc = HierarchicalClustering::Build({{0.0}, {0.1}, {5.0}, {9.0}});
  EXPECT_EQ(hc.ClusterOf(1, 0), hc.ClusterOf(1, 1));
  EXPECT_NE(hc.ClusterOf(1, 2), hc.ClusterOf(1, 3));
}

TEST(HierarchicalTest, MergedCentroidIsMidpoint) {
  const auto hc = HierarchicalClustering::Build({{0.0}, {2.0}, {100.0}});
  // Level 1 merges {0} and {2}; centroid must be 1.0 (midpoint, §5.3.2).
  const size_t merged = hc.ClusterOf(1, 0);
  ASSERT_EQ(merged, hc.ClusterOf(1, 1));
  EXPECT_DOUBLE_EQ(hc.Centroid(1, merged)[0], 1.0);
}

TEST(HierarchicalTest, MergesAreNested) {
  // Once two leaves share a cluster they share it at all deeper levels.
  std::vector<std::vector<double>> points;
  Rng rng(3);
  for (int i = 0; i < 12; ++i) {
    points.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  const auto hc = HierarchicalClustering::Build(points);
  for (size_t level = 0; level + 1 < hc.num_levels(); ++level) {
    for (size_t a = 0; a < points.size(); ++a) {
      for (size_t b = a + 1; b < points.size(); ++b) {
        if (hc.ClusterOf(level, a) == hc.ClusterOf(level, b)) {
          EXPECT_EQ(hc.ClusterOf(level + 1, a), hc.ClusterOf(level + 1, b));
        }
      }
    }
  }
}

TEST(HierarchicalTest, GroupSubsetRespectsMaxGroups) {
  std::vector<std::vector<double>> points;
  Rng rng(5);
  for (int i = 0; i < 16; ++i) {
    points.push_back({rng.Uniform(0, 100)});
  }
  const auto hc = HierarchicalClustering::Build(points);
  const std::vector<size_t> leaves = {0, 3, 5, 7, 9, 11, 13, 15};
  for (size_t q : {1u, 2u, 4u, 8u}) {
    const auto grouping = hc.GroupSubset(leaves, q);
    EXPECT_LE(grouping.groups.size(), q);
    // Every requested leaf appears exactly once.
    std::multiset<size_t> seen;
    for (const auto& group : grouping.groups) {
      EXPECT_FALSE(group.empty());
      seen.insert(group.begin(), group.end());
    }
    EXPECT_EQ(seen.size(), leaves.size());
    for (size_t leaf : leaves) {
      EXPECT_EQ(seen.count(leaf), 1u);
    }
    EXPECT_EQ(grouping.centroids.size(), grouping.groups.size());
  }
}

TEST(HierarchicalTest, GroupSubsetUsesShallowestSufficientLevel) {
  // Distinct leaves with plenty of queues: level 0 (all distinct) suffices.
  const auto hc = HierarchicalClustering::Build({{0.0}, {10.0}, {20.0}, {30.0}});
  const auto grouping = hc.GroupSubset({0, 1, 2}, 8);
  EXPECT_EQ(grouping.level, 0u);
  EXPECT_EQ(grouping.groups.size(), 3u);
}

TEST(HierarchicalTest, GroupSubsetSingleLeaf) {
  const auto hc = HierarchicalClustering::Build({{0.0}, {10.0}});
  const auto grouping = hc.GroupSubset({1}, 4);
  EXPECT_EQ(grouping.groups.size(), 1u);
  EXPECT_EQ(grouping.groups[0][0], 1u);
}

TEST(HierarchicalTest, SingleLeafHierarchy) {
  const auto hc = HierarchicalClustering::Build({{1.0, 2.0}});
  EXPECT_EQ(hc.num_levels(), 1u);
  const auto grouping = hc.GroupSubset({0}, 1);
  EXPECT_EQ(grouping.groups.size(), 1u);
}

}  // namespace
}  // namespace saba
