#include "src/core/profiler.h"

#include <gtest/gtest.h>

#include "src/net/units.h"
#include "src/workload/workload_catalog.h"

namespace saba {
namespace {

TEST(ProfilerTest, SamplesCoverConfiguredFractions) {
  ProfilerOptions options;
  options.noise_sigma = 0;
  OfflineProfiler profiler(options);
  const ProfileResult result = profiler.Profile(*FindWorkload("LR"));
  ASSERT_EQ(result.samples.size(), options.bandwidth_fractions.size());
  for (size_t i = 0; i < result.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.samples[i].b, options.bandwidth_fractions[i]);
    EXPECT_GE(result.samples[i].d, 0.99);
  }
}

TEST(ProfilerTest, SlowdownsDecreaseWithBandwidth) {
  ProfilerOptions options;
  options.noise_sigma = 0;
  OfflineProfiler profiler(options);
  const ProfileResult result = profiler.Profile(*FindWorkload("RF"));
  for (size_t i = 1; i < result.samples.size(); ++i) {
    EXPECT_LE(result.samples[i].d, result.samples[i - 1].d + 1e-9);
  }
  // Unthrottled run has slowdown exactly 1 (noise disabled).
  EXPECT_NEAR(result.samples.back().d, 1.0, 1e-9);
}

TEST(ProfilerTest, FitQualityHighForDegreeThree) {
  ProfilerOptions options;
  options.noise_sigma = 0;
  OfflineProfiler profiler(options);
  for (const char* name : {"LR", "SQL", "Sort", "PR"}) {
    const ProfileResult result = profiler.Profile(*FindWorkload(name));
    EXPECT_GT(result.r_squared, 0.90) << name;
  }
}

TEST(ProfilerTest, DegreeOneFitsWorseThanDegreeThreeForSql) {
  // Fig 5/6a: SQL's hockey-stick needs k=3; k=1 explains much less.
  ProfilerOptions k1;
  k1.noise_sigma = 0;
  k1.polynomial_degree = 1;
  ProfilerOptions k3 = k1;
  k3.polynomial_degree = 3;
  const double r2_k1 = OfflineProfiler(k1).Profile(*FindWorkload("SQL")).r_squared;
  const double r2_k3 = OfflineProfiler(k3).Profile(*FindWorkload("SQL")).r_squared;
  EXPECT_LT(r2_k1, r2_k3);
  EXPECT_LT(r2_k1, 0.9);
  EXPECT_GT(r2_k3, 0.93);
}

TEST(ProfilerTest, NoiseKeepsR2BelowOneButHigh) {
  ProfilerOptions options;
  options.noise_sigma = 0.02;
  options.seed = 99;
  OfflineProfiler profiler(options);
  const ProfileResult result = profiler.Profile(*FindWorkload("SVM"));
  EXPECT_LT(result.r_squared, 1.0);
  EXPECT_GT(result.r_squared, 0.85);
}

TEST(ProfilerTest, DeterministicGivenSeed) {
  ProfilerOptions options;
  options.seed = 1234;
  const ProfileResult a = OfflineProfiler(options).Profile(*FindWorkload("WC"));
  const ProfileResult b = OfflineProfiler(options).Profile(*FindWorkload("WC"));
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples[i].d, b.samples[i].d);
  }
}

TEST(ProfilerTest, ProfileAllBuildsFullTable) {
  ProfilerOptions options;
  options.noise_sigma = 0;
  OfflineProfiler profiler(options);
  const SensitivityTable table = profiler.ProfileAll(HiBenchCatalog());
  EXPECT_EQ(table.size(), 10u);
  // Sensitive workloads must have strictly steeper models than insensitive
  // ones in the operating range.
  EXPECT_GT(table.ModelOrDefault("LR").SlowdownAt(0.25),
            table.ModelOrDefault("Sort").SlowdownAt(0.25) + 1.0);
}

TEST(ProfilerTest, ThrottleFloorSaturatesLowFractions) {
  const WorkloadSpec& lr = *FindWorkload("LR");
  const double at_5 = OfflineProfiler::RunIsolated(lr, 0.05, 8, Gbps(56), 0.12);
  const double at_12 = OfflineProfiler::RunIsolated(lr, 0.12, 8, Gbps(56), 0.12);
  EXPECT_NEAR(at_5, at_12, at_12 * 1e-9);
  // Without the floor, 5% is much slower than 12%.
  const double at_5_nofloor = OfflineProfiler::RunIsolated(lr, 0.05, 8, Gbps(56), 0.0);
  EXPECT_GT(at_5_nofloor, at_12 * 1.5);
}

TEST(ProfilerTest, MeasureSlowdownCurveTracksScaledSpec) {
  // Scaling the dataset 10x with equal exponents keeps the curve shape; the
  // measured slowdowns at each fraction should be close to the 1x curve for
  // a workload with low drift (Sort).
  ProfilerOptions options;
  options.noise_sigma = 0;
  OfflineProfiler profiler(options);
  const WorkloadSpec& sort = *FindWorkload("Sort");
  const auto base_curve = profiler.MeasureSlowdownCurve(sort);
  const auto scaled_curve = profiler.MeasureSlowdownCurve(ScaleWorkload(sort, 10.0, 8));
  ASSERT_EQ(base_curve.size(), scaled_curve.size());
  for (size_t i = 0; i < base_curve.size(); ++i) {
    EXPECT_NEAR(base_curve[i].d, scaled_curve[i].d, 0.25);
  }
}

}  // namespace
}  // namespace saba
