#include "src/net/topology.h"

#include <gtest/gtest.h>

#include "src/net/routing.h"
#include "src/net/units.h"

namespace saba {
namespace {

TEST(TopologyTest, AddNodesAndLinks) {
  Topology topo;
  const NodeId a = topo.AddNode(NodeKind::kHost, "a");
  const NodeId b = topo.AddNode(NodeKind::kSwitch, "b");
  const LinkId l = topo.AddLink(a, b, Gbps64(10));
  EXPECT_EQ(topo.num_nodes(), 2u);
  EXPECT_EQ(topo.num_links(), 1u);
  EXPECT_EQ(topo.link(l).src, a);
  EXPECT_EQ(topo.link(l).dst, b);
  EXPECT_DOUBLE_EQ(topo.link(l).capacity_bps, Gbps(10));
  EXPECT_EQ(topo.node(a).kind, NodeKind::kHost);
  EXPECT_EQ(topo.node(b).label, "b");
}

TEST(TopologyTest, DuplexLinkAddsBothDirections) {
  Topology topo;
  const NodeId a = topo.AddNode(NodeKind::kHost);
  const NodeId b = topo.AddNode(NodeKind::kSwitch);
  const LinkId forward = topo.AddDuplexLink(a, b, Gbps64(5));
  EXPECT_EQ(topo.num_links(), 2u);
  EXPECT_EQ(topo.FindLink(a, b), forward);
  EXPECT_EQ(topo.FindLink(b, a), forward + 1);
  EXPECT_EQ(topo.FindLink(a, a), kInvalidLink);
}

TEST(TopologyTest, SetLinkCapacity) {
  Topology topo;
  const NodeId a = topo.AddNode(NodeKind::kHost);
  const NodeId b = topo.AddNode(NodeKind::kSwitch);
  const LinkId l = topo.AddLink(a, b, Gbps64(10));
  topo.SetLinkCapacity(l, Gbps64(2.5));
  EXPECT_DOUBLE_EQ(topo.link(l).capacity_bps, Gbps(2.5));
}

TEST(TopologyTest, OutLinksInOrder) {
  Topology topo;
  const NodeId a = topo.AddNode(NodeKind::kSwitch);
  const NodeId b = topo.AddNode(NodeKind::kHost);
  const NodeId c = topo.AddNode(NodeKind::kHost);
  const LinkId l1 = topo.AddLink(a, b, Gbps64(1));
  const LinkId l2 = topo.AddLink(a, c, Gbps64(1));
  EXPECT_EQ(topo.OutLinks(a), (std::vector<LinkId>{l1, l2}));
  EXPECT_TRUE(topo.OutLinks(b).empty());
}

TEST(SingleSwitchStarTest, ShapeAndCapacities) {
  const Topology topo = BuildSingleSwitchStar(8, Gbps64(56));
  EXPECT_EQ(topo.num_nodes(), 9u);
  EXPECT_EQ(topo.Hosts().size(), 8u);
  EXPECT_EQ(topo.Switches().size(), 1u);
  EXPECT_EQ(topo.num_links(), 16u);  // 8 duplex host links.
  for (size_t l = 0; l < topo.num_links(); ++l) {
    EXPECT_DOUBLE_EQ(topo.link(static_cast<LinkId>(l)).capacity_bps, Gbps(56));
  }
  // Every host connects exactly to the switch.
  const NodeId sw = topo.Switches()[0];
  for (NodeId h : topo.Hosts()) {
    EXPECT_NE(topo.FindLink(h, sw), kInvalidLink);
    EXPECT_NE(topo.FindLink(sw, h), kInvalidLink);
  }
}

TEST(SpineLeafTest, PaperScaleShape) {
  // §8.1: 54 spine, 102 leaf, 108 ToR, 18 servers per ToR = 1,944 servers.
  const Topology topo = BuildSpineLeaf(SpineLeafParams{});
  EXPECT_EQ(topo.Hosts().size(), 1944u);
  size_t tors = 0;
  size_t leaves = 0;
  size_t spines = 0;
  for (size_t n = 0; n < topo.num_nodes(); ++n) {
    switch (topo.node(static_cast<NodeId>(n)).kind) {
      case NodeKind::kTorSwitch:
        ++tors;
        break;
      case NodeKind::kLeafSwitch:
        ++leaves;
        break;
      case NodeKind::kSpineSwitch:
        ++spines;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(tors, 108u);
  EXPECT_EQ(leaves, 102u);
  EXPECT_EQ(spines, 54u);
  // Link count: hosts (1944) + ToR-to-pod-leaves (108*17) + leaf-spine
  // (102*54), all duplex.
  EXPECT_EQ(topo.num_links(), 2u * (1944u + 108u * 17u + 102u * 54u));
}

TEST(SpineLeafTest, SmallConfigConnectivity) {
  SpineLeafParams params;
  params.num_spine = 2;
  params.num_leaf = 4;
  params.num_tor = 4;
  params.hosts_per_tor = 3;
  params.num_pods = 2;
  const Topology topo = BuildSpineLeaf(params);
  EXPECT_EQ(topo.Hosts().size(), 12u);
  // Every leaf connects to every spine.
  std::vector<NodeId> leaves;
  std::vector<NodeId> spines;
  for (size_t n = 0; n < topo.num_nodes(); ++n) {
    if (topo.node(static_cast<NodeId>(n)).kind == NodeKind::kLeafSwitch) {
      leaves.push_back(static_cast<NodeId>(n));
    }
    if (topo.node(static_cast<NodeId>(n)).kind == NodeKind::kSpineSwitch) {
      spines.push_back(static_cast<NodeId>(n));
    }
  }
  for (NodeId leaf : leaves) {
    for (NodeId spine : spines) {
      EXPECT_NE(topo.FindLink(leaf, spine), kInvalidLink);
    }
  }
}

TEST(TopologyTest, UpFlagsAndEpochSemantics) {
  Topology topo = BuildSingleSwitchStar(4, Gbps64(10));
  EXPECT_EQ(topo.epoch(), 0u);
  const LinkId l0 = topo.OutLinks(0).front();
  EXPECT_TRUE(topo.LinkUsable(l0));

  topo.SetLinkUp(l0, false);
  EXPECT_EQ(topo.epoch(), 1u);
  EXPECT_FALSE(topo.LinkUsable(l0));
  EXPECT_FALSE(topo.link(l0).up);
  // Capacity is preserved while down, and setting the current state is a
  // no-op (no epoch bump).
  const Bps64 cap = topo.link(l0).capacity_bps;
  topo.SetLinkUp(l0, false);
  EXPECT_EQ(topo.epoch(), 1u);
  topo.SetLinkUp(l0, true);
  EXPECT_EQ(topo.epoch(), 2u);
  EXPECT_EQ(topo.link(l0).capacity_bps, cap);
  EXPECT_TRUE(topo.LinkUsable(l0));

  // A down node takes every incident link out of service.
  const NodeId hub = 4;
  topo.SetNodeUp(hub, false);
  EXPECT_EQ(topo.epoch(), 3u);
  for (size_t l = 0; l < topo.num_links(); ++l) {
    EXPECT_FALSE(topo.LinkUsable(static_cast<LinkId>(l)));
  }
  topo.SetNodeUp(hub, true);
  EXPECT_EQ(topo.epoch(), 4u);
  EXPECT_TRUE(topo.LinkUsable(l0));

  // Capacity changes never bump the epoch (routing is hop-count based).
  topo.SetLinkCapacity(l0, Gbps64(1));
  EXPECT_EQ(topo.epoch(), 4u);
}

TEST(FatTreeTest, ShapeInvariants) {
  for (int k : {4, 6, 8}) {
    FatTreeParams params;
    params.k = k;
    const Topology topo = BuildFatTree(params);
    const size_t hosts = static_cast<size_t>(k * k * k / 4);
    const size_t per_tier = static_cast<size_t>(k * k / 2);
    const size_t cores = static_cast<size_t>(k * k / 4);
    EXPECT_EQ(topo.Hosts().size(), hosts) << "k=" << k;
    EXPECT_EQ(topo.num_nodes(), hosts + 2 * per_tier + cores) << "k=" << k;
    // Duplex links: one per host, (k/2)^2 per pod edge-agg, plus k/2 uplinks
    // per agg — k^3/4 each tier, 3k^3/2 directed links total.
    EXPECT_EQ(topo.num_links(), 3 * hosts * 2) << "k=" << k;

    size_t edge = 0;
    size_t agg = 0;
    size_t core = 0;
    for (size_t n = 0; n < topo.num_nodes(); ++n) {
      switch (topo.node(static_cast<NodeId>(n)).kind) {
        case NodeKind::kTorSwitch:
          ++edge;
          break;
        case NodeKind::kLeafSwitch:
          ++agg;
          break;
        case NodeKind::kSpineSwitch:
          ++core;
          break;
        default:
          break;
      }
    }
    EXPECT_EQ(edge, per_tier) << "k=" << k;
    EXPECT_EQ(agg, per_tier) << "k=" << k;
    EXPECT_EQ(core, cores) << "k=" << k;

    // Degree checks: hosts 1 up-link, edges k (k/2 hosts + k/2 aggs), aggs k
    // (k/2 edges + k/2 cores), cores k (one agg per pod).
    for (size_t n = 0; n < topo.num_nodes(); ++n) {
      const NodeId id = static_cast<NodeId>(n);
      const size_t degree = topo.OutLinks(id).size();
      if (topo.node(id).kind == NodeKind::kHost) {
        EXPECT_EQ(degree, 1u) << "k=" << k << " node " << n;
      } else {
        EXPECT_EQ(degree, static_cast<size_t>(k)) << "k=" << k << " node " << n;
      }
    }
  }
}

TEST(FatTreeTest, AllHostPairsReachable) {
  for (int k : {4, 6, 8}) {
    const Topology topo = BuildFatTree(FatTreeParams{.k = k});
    Router router(&topo);
    const std::vector<NodeId> hosts = topo.Hosts();
    for (NodeId s : hosts) {
      for (NodeId d : hosts) {
        EXPECT_TRUE(router.Reachable(s, d)) << "k=" << k << " " << s << "->" << d;
      }
    }
  }
}

TEST(FatTreeTest, OversubscribedCoreCapacity) {
  FatTreeParams params{.k = 4, .agg_core_bps = Gbps64(28)};
  const Topology topo = BuildFatTree(params);
  for (size_t l = 0; l < topo.num_links(); ++l) {
    const Link& link = topo.link(static_cast<LinkId>(l));
    const bool core_link = topo.node(link.src).kind == NodeKind::kSpineSwitch ||
                           topo.node(link.dst).kind == NodeKind::kSpineSwitch;
    EXPECT_EQ(link.capacity_bps, core_link ? Gbps64(28) : Gbps64(56));
  }
}

TEST(UnitsTest, Conversions) {
  EXPECT_DOUBLE_EQ(Gbps(56), 56e9);
  EXPECT_DOUBLE_EQ(Mbps(1), 1e6);
  EXPECT_DOUBLE_EQ(Bytes(1), 8.0);
  EXPECT_DOUBLE_EQ(Kilobytes(10), 80e3);
  EXPECT_DOUBLE_EQ(Gigabytes(1), 8e9);
}

TEST(NodeKindTest, IsSwitch) {
  EXPECT_FALSE(IsSwitch(NodeKind::kHost));
  EXPECT_TRUE(IsSwitch(NodeKind::kSwitch));
  EXPECT_TRUE(IsSwitch(NodeKind::kTorSwitch));
  EXPECT_TRUE(IsSwitch(NodeKind::kLeafSwitch));
  EXPECT_TRUE(IsSwitch(NodeKind::kSpineSwitch));
}

}  // namespace
}  // namespace saba
