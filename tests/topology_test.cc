#include "src/net/topology.h"

#include <gtest/gtest.h>

#include "src/net/units.h"

namespace saba {
namespace {

TEST(TopologyTest, AddNodesAndLinks) {
  Topology topo;
  const NodeId a = topo.AddNode(NodeKind::kHost, "a");
  const NodeId b = topo.AddNode(NodeKind::kSwitch, "b");
  const LinkId l = topo.AddLink(a, b, Gbps64(10));
  EXPECT_EQ(topo.num_nodes(), 2u);
  EXPECT_EQ(topo.num_links(), 1u);
  EXPECT_EQ(topo.link(l).src, a);
  EXPECT_EQ(topo.link(l).dst, b);
  EXPECT_DOUBLE_EQ(topo.link(l).capacity_bps, Gbps(10));
  EXPECT_EQ(topo.node(a).kind, NodeKind::kHost);
  EXPECT_EQ(topo.node(b).label, "b");
}

TEST(TopologyTest, DuplexLinkAddsBothDirections) {
  Topology topo;
  const NodeId a = topo.AddNode(NodeKind::kHost);
  const NodeId b = topo.AddNode(NodeKind::kSwitch);
  const LinkId forward = topo.AddDuplexLink(a, b, Gbps64(5));
  EXPECT_EQ(topo.num_links(), 2u);
  EXPECT_EQ(topo.FindLink(a, b), forward);
  EXPECT_EQ(topo.FindLink(b, a), forward + 1);
  EXPECT_EQ(topo.FindLink(a, a), kInvalidLink);
}

TEST(TopologyTest, SetLinkCapacity) {
  Topology topo;
  const NodeId a = topo.AddNode(NodeKind::kHost);
  const NodeId b = topo.AddNode(NodeKind::kSwitch);
  const LinkId l = topo.AddLink(a, b, Gbps64(10));
  topo.SetLinkCapacity(l, Gbps64(2.5));
  EXPECT_DOUBLE_EQ(topo.link(l).capacity_bps, Gbps(2.5));
}

TEST(TopologyTest, OutLinksInOrder) {
  Topology topo;
  const NodeId a = topo.AddNode(NodeKind::kSwitch);
  const NodeId b = topo.AddNode(NodeKind::kHost);
  const NodeId c = topo.AddNode(NodeKind::kHost);
  const LinkId l1 = topo.AddLink(a, b, Gbps64(1));
  const LinkId l2 = topo.AddLink(a, c, Gbps64(1));
  EXPECT_EQ(topo.OutLinks(a), (std::vector<LinkId>{l1, l2}));
  EXPECT_TRUE(topo.OutLinks(b).empty());
}

TEST(SingleSwitchStarTest, ShapeAndCapacities) {
  const Topology topo = BuildSingleSwitchStar(8, Gbps64(56));
  EXPECT_EQ(topo.num_nodes(), 9u);
  EXPECT_EQ(topo.Hosts().size(), 8u);
  EXPECT_EQ(topo.Switches().size(), 1u);
  EXPECT_EQ(topo.num_links(), 16u);  // 8 duplex host links.
  for (size_t l = 0; l < topo.num_links(); ++l) {
    EXPECT_DOUBLE_EQ(topo.link(static_cast<LinkId>(l)).capacity_bps, Gbps(56));
  }
  // Every host connects exactly to the switch.
  const NodeId sw = topo.Switches()[0];
  for (NodeId h : topo.Hosts()) {
    EXPECT_NE(topo.FindLink(h, sw), kInvalidLink);
    EXPECT_NE(topo.FindLink(sw, h), kInvalidLink);
  }
}

TEST(SpineLeafTest, PaperScaleShape) {
  // §8.1: 54 spine, 102 leaf, 108 ToR, 18 servers per ToR = 1,944 servers.
  const Topology topo = BuildSpineLeaf(SpineLeafParams{});
  EXPECT_EQ(topo.Hosts().size(), 1944u);
  size_t tors = 0;
  size_t leaves = 0;
  size_t spines = 0;
  for (size_t n = 0; n < topo.num_nodes(); ++n) {
    switch (topo.node(static_cast<NodeId>(n)).kind) {
      case NodeKind::kTorSwitch:
        ++tors;
        break;
      case NodeKind::kLeafSwitch:
        ++leaves;
        break;
      case NodeKind::kSpineSwitch:
        ++spines;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(tors, 108u);
  EXPECT_EQ(leaves, 102u);
  EXPECT_EQ(spines, 54u);
  // Link count: hosts (1944) + ToR-to-pod-leaves (108*17) + leaf-spine
  // (102*54), all duplex.
  EXPECT_EQ(topo.num_links(), 2u * (1944u + 108u * 17u + 102u * 54u));
}

TEST(SpineLeafTest, SmallConfigConnectivity) {
  SpineLeafParams params;
  params.num_spine = 2;
  params.num_leaf = 4;
  params.num_tor = 4;
  params.hosts_per_tor = 3;
  params.num_pods = 2;
  const Topology topo = BuildSpineLeaf(params);
  EXPECT_EQ(topo.Hosts().size(), 12u);
  // Every leaf connects to every spine.
  std::vector<NodeId> leaves;
  std::vector<NodeId> spines;
  for (size_t n = 0; n < topo.num_nodes(); ++n) {
    if (topo.node(static_cast<NodeId>(n)).kind == NodeKind::kLeafSwitch) {
      leaves.push_back(static_cast<NodeId>(n));
    }
    if (topo.node(static_cast<NodeId>(n)).kind == NodeKind::kSpineSwitch) {
      spines.push_back(static_cast<NodeId>(n));
    }
  }
  for (NodeId leaf : leaves) {
    for (NodeId spine : spines) {
      EXPECT_NE(topo.FindLink(leaf, spine), kInvalidLink);
    }
  }
}

TEST(UnitsTest, Conversions) {
  EXPECT_DOUBLE_EQ(Gbps(56), 56e9);
  EXPECT_DOUBLE_EQ(Mbps(1), 1e6);
  EXPECT_DOUBLE_EQ(Bytes(1), 8.0);
  EXPECT_DOUBLE_EQ(Kilobytes(10), 80e3);
  EXPECT_DOUBLE_EQ(Gigabytes(1), 8e9);
}

TEST(NodeKindTest, IsSwitch) {
  EXPECT_FALSE(IsSwitch(NodeKind::kHost));
  EXPECT_TRUE(IsSwitch(NodeKind::kSwitch));
  EXPECT_TRUE(IsSwitch(NodeKind::kTorSwitch));
  EXPECT_TRUE(IsSwitch(NodeKind::kLeafSwitch));
  EXPECT_TRUE(IsSwitch(NodeKind::kSpineSwitch));
}

}  // namespace
}  // namespace saba
