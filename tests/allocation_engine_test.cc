#include "src/net/allocation_engine.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/net/allocator.h"
#include "src/net/network.h"
#include "src/net/topology.h"
#include "src/net/units.h"
#include "src/sim/rng.h"

namespace saba {
namespace {

double PerAppWeight(LinkId, AppId app) { return 1.0 + static_cast<double>(app % 3); }

// Randomized churn: interleave flow starts, cancels, queue moves (SL /
// priority / intra-weight), per-port reconfigurations, and full
// invalidations, and after EVERY event check that the engine's incremental
// rates are bit-identical to a from-scratch solve of the same flow set.
struct ChurnCase {
  const char* name;
  AllocationDiscipline discipline;
  bool fecn;  // FECN congestion model (vs ideal).
  uint64_t seed;
};

class EngineChurnTest : public ::testing::TestWithParam<ChurnCase> {};

TEST_P(EngineChurnTest, IncrementalMatchesFromScratchBitExact) {
  const ChurnCase& c = GetParam();
  Network network(BuildSpineLeaf({.num_spine = 2,
                                  .num_leaf = 4,
                                  .num_tor = 4,
                                  .hosts_per_tor = 3,
                                  .num_pods = 2,
                                  .host_link_bps = Gbps(10),
                                  .tor_leaf_bps = Gbps(10),
                                  .leaf_spine_bps = Gbps(10)}),
                  /*default_queues=*/4);
  for (int sl = 0; sl < kNumServiceLevels; ++sl) {
    network.MapSlToQueueEverywhere(sl, sl % 4);
  }
  if (c.fecn) {
    network.SetCongestionModel(std::make_unique<FecnCongestionModel>(0.30));
  }
  const PerAppWeightFn weights =
      c.discipline == AllocationDiscipline::kPerAppQueues ? PerAppWeight : PerAppWeightFn();

  AllocationEngine engine(&network, c.discipline, weights);
  const std::vector<NodeId> hosts = network.topology().Hosts();
  const size_t num_links = network.topology().num_links();

  Rng rng(c.seed);
  std::map<FlowId, std::unique_ptr<ActiveFlow>> live;
  std::vector<FlowId> live_ids;  // Indexable for uniform picks; order free.
  FlowId next_id = 1;

  // Oracle scratch: value copies so the from-scratch run cannot perturb the
  // engine-owned flows.
  std::vector<ActiveFlow> oracle;
  std::vector<ActiveFlow*> oracle_ptrs;

  constexpr int kEvents = 5000;
  for (int e = 0; e < kEvents; ++e) {
    // Start-heavy until the pool is populated, then balanced churn.
    const double start_w = live.size() < 100 ? 0.45 : 0.25;
    const double cancel_w = live.size() < 100 ? 0.20 : 0.40;
    const size_t op = live.empty()
                          ? 0
                          : rng.WeightedIndex({start_w, cancel_w, 0.20, 0.10, 0.05});
    switch (op) {
      case 0: {  // Start a flow.
        const NodeId src = rng.Choice(hosts);
        NodeId dst = rng.Choice(hosts);
        while (dst == src) {
          dst = rng.Choice(hosts);
        }
        auto flow = std::make_unique<ActiveFlow>();
        flow->id = next_id++;
        flow->app = static_cast<AppId>(rng.UniformInt(0, 9));
        flow->sl = static_cast<int>(rng.UniformInt(0, kNumServiceLevels - 1));
        flow->priority = static_cast<int>(rng.UniformInt(0, 7));
        flow->intra_weight = rng.Bernoulli(0.2) ? 0.0625 : 1.0;
        flow->remaining_bits = rng.Uniform(1e6, 1e9);
        flow->path = &network.router().Route(src, dst, rng.Next());
        engine.FlowAdded(flow.get());
        live_ids.push_back(flow->id);
        live.emplace(flow->id, std::move(flow));
        break;
      }
      case 1: {  // Cancel a flow.
        const size_t pick = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(live_ids.size()) - 1));
        const FlowId id = live_ids[pick];
        live_ids[pick] = live_ids.back();
        live_ids.pop_back();
        engine.FlowRemoved(live.at(id).get());
        live.erase(id);
        break;
      }
      case 2: {  // Move a flow between queues / classes.
        ActiveFlow* flow = live.at(rng.Choice(live_ids)).get();
        switch (rng.UniformInt(0, 2)) {
          case 0:
            flow->sl = static_cast<int>(rng.UniformInt(0, kNumServiceLevels - 1));
            break;
          case 1:
            flow->priority = static_cast<int>(rng.UniformInt(0, 7));
            break;
          default:
            flow->intra_weight = flow->intra_weight == 1.0 ? 0.0625 : 1.0;
            break;
        }
        engine.FlowQueueChanged(flow);
        break;
      }
      case 3: {  // Reconfigure one port.
        const LinkId link = static_cast<LinkId>(rng.UniformInt(
            0, static_cast<int64_t>(num_links) - 1));
        PortConfig& port = network.port(link);
        if (rng.Bernoulli(0.5)) {
          const int sl = static_cast<int>(rng.UniformInt(0, kNumServiceLevels - 1));
          port.sl_to_queue[static_cast<size_t>(sl)] =
              static_cast<int>(rng.UniformInt(0, port.num_queues - 1));
        } else {
          const size_t q = static_cast<size_t>(rng.UniformInt(0, port.num_queues - 1));
          port.queue_weights[q] = rng.Uniform(0.1, 2.0);
        }
        engine.PortConfigChanged(link);
        break;
      }
      default:
        engine.InvalidateAll();
        break;
    }

    engine.Recompute();

    oracle.clear();
    oracle_ptrs.clear();
    oracle.reserve(live.size());
    for (const auto& [id, flow] : live) {
      oracle.push_back(*flow);
    }
    for (ActiveFlow& flow : oracle) {
      oracle_ptrs.push_back(&flow);
    }
    AllocateFromScratch(oracle_ptrs, network, c.discipline, weights);
    for (const ActiveFlow& expect : oracle) {
      const double got = live.at(expect.id)->rate;
      ASSERT_EQ(expect.rate, got)
          << "event " << e << " flow " << expect.id << " diverged from oracle";
    }
  }
  EXPECT_GT(engine.stats().recomputes, 0u);
  EXPECT_GT(engine.stats().flows_frozen, 0u)
      << "churn never skipped work; incremental path not exercised";
}

INSTANTIATE_TEST_SUITE_P(
    AllDisciplines, EngineChurnTest,
    ::testing::Values(
        ChurnCase{"wfq_fecn", AllocationDiscipline::kWfqSlQueues, true, 11},
        ChurnCase{"wfq_ideal", AllocationDiscipline::kWfqSlQueues, false, 12},
        ChurnCase{"perapp_fecn", AllocationDiscipline::kPerAppQueues, true, 13},
        ChurnCase{"perapp_ideal", AllocationDiscipline::kPerAppQueues, false, 14},
        ChurnCase{"strict_fecn", AllocationDiscipline::kStrictPriority, true, 15},
        ChurnCase{"strict_ideal", AllocationDiscipline::kStrictPriority, false, 16}),
    [](const ::testing::TestParamInfo<ChurnCase>& info) { return std::string(info.param.name); });

// Deterministic skip accounting on a star: host pairs (0,1) and (2,3) share
// no link, so events on one pair must never re-rate the other.
TEST(AllocationEngineStatsTest, UntouchedComponentsAreFrozen) {
  Network network(BuildSingleSwitchStar(6, Gbps(10)), /*default_queues=*/2);
  AllocationEngine engine(&network, AllocationDiscipline::kWfqSlQueues);

  auto make_flow = [&](FlowId id, NodeId src, NodeId dst) {
    auto flow = std::make_unique<ActiveFlow>();
    flow->id = id;
    flow->app = static_cast<AppId>(id);
    flow->remaining_bits = Gbps(10);
    flow->path = &network.router().Route(src, dst, 0);
    return flow;
  };

  auto a = make_flow(1, 0, 1);
  auto b = make_flow(2, 2, 3);
  engine.FlowAdded(a.get());
  engine.FlowAdded(b.get());
  engine.Recompute();
  EXPECT_EQ(engine.stats().recomputes, 1u);
  EXPECT_EQ(engine.stats().components_solved, 2u);
  EXPECT_EQ(engine.stats().flows_rerated, 2u);
  EXPECT_EQ(engine.stats().flows_frozen, 0u);
  EXPECT_GT(a->rate, 0.0);
  EXPECT_GT(b->rate, 0.0);

  // A third flow on the (0,1) pair dirties only that component: b freezes.
  auto c = make_flow(3, 0, 1);
  engine.FlowAdded(c.get());
  const double b_rate = b->rate;
  engine.Recompute();
  EXPECT_EQ(engine.stats().components_solved, 3u);
  EXPECT_EQ(engine.stats().flows_rerated, 4u);
  EXPECT_EQ(engine.stats().flows_frozen, 1u);
  EXPECT_EQ(b->rate, b_rate);
  EXPECT_EQ(engine.stats().full_recomputes, 0u);

  // Removing b leaves its links dirty but empty: nothing re-rates.
  engine.FlowRemoved(b.get());
  engine.Recompute();
  EXPECT_EQ(engine.stats().components_solved, 3u);
  EXPECT_EQ(engine.stats().flows_rerated, 4u);
  EXPECT_EQ(engine.stats().flows_frozen, 3u);

  // InvalidateAll falls back to a full solve of everything.
  engine.InvalidateAll();
  engine.Recompute();
  EXPECT_EQ(engine.stats().full_recomputes, 1u);
  EXPECT_EQ(engine.stats().flows_rerated, 6u);

  // Clean engine: Recompute is a no-op.
  const uint64_t before = engine.stats().recomputes;
  engine.Recompute();
  EXPECT_EQ(engine.stats().recomputes, before);
}

}  // namespace
}  // namespace saba
