#include "src/net/allocation_engine.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/net/allocator.h"
#include "src/net/network.h"
#include "src/net/topology.h"
#include "src/net/units.h"
#include "src/sim/rng.h"

namespace saba {
namespace {

double PerAppWeight(LinkId, AppId app) { return 1.0 + static_cast<double>(app % 3); }

// Test-owned per-flow route storage. The churn tests include a link-failure
// op that bumps the topology epoch and thus clears the router's caches, so
// flows must never point into those caches: each flow's path lives here and
// std::map node stability keeps `&entry.path` valid across inserts/erases.
struct FlowRoute {
  NodeId src;
  NodeId dst;
  uint64_t salt;
  std::vector<LinkId> path;
};

// Forward ids of the duplex switch-to-switch links — the candidates the
// failure op may take down. With one duplex link down at a time the churn
// fabric stays connected (every ToR keeps two leaf uplinks and every leaf two
// spine uplinks).
std::vector<LinkId> SwitchSwitchForwardLinks(const Topology& topo) {
  std::vector<LinkId> fabric;
  for (size_t l = 0; l < topo.num_links(); l += 2) {  // AddDuplexLink: forward ids are even.
    const Link& link = topo.link(static_cast<LinkId>(l));
    if (IsSwitch(topo.node(link.src).kind) && IsSwitch(topo.node(link.dst).kind)) {
      fabric.push_back(static_cast<LinkId>(l));
    }
  }
  return fabric;
}

bool CrossesUnusableLink(const Topology& topo, const std::vector<LinkId>& path) {
  for (LinkId l : path) {
    if (!topo.LinkUsable(l)) {
      return true;
    }
  }
  return false;
}

// Randomized churn: interleave flow starts, cancels, queue moves (SL /
// priority / intra-weight), per-port reconfigurations, full invalidations,
// and link failures/restores (with deterministic reroute of broken flows),
// and after EVERY event check that the engine's incremental rates are
// bit-identical to a from-scratch solve of the same flow set.
struct ChurnCase {
  const char* name;
  AllocationDiscipline discipline;
  bool fecn;  // FECN congestion model (vs ideal).
  uint64_t seed;
};

class EngineChurnTest : public ::testing::TestWithParam<ChurnCase> {};

TEST_P(EngineChurnTest, IncrementalMatchesFromScratchBitExact) {
  const ChurnCase& c = GetParam();
  Network network(BuildSpineLeaf({.num_spine = 2,
                                  .num_leaf = 4,
                                  .num_tor = 4,
                                  .hosts_per_tor = 3,
                                  .num_pods = 2,
                                  .host_link_bps = Gbps64(10),
                                  .tor_leaf_bps = Gbps64(10),
                                  .leaf_spine_bps = Gbps64(10)}),
                  /*default_queues=*/4);
  for (int sl = 0; sl < kNumServiceLevels; ++sl) {
    network.MapSlToQueueEverywhere(sl, sl % 4);
  }
  if (c.fecn) {
    network.SetCongestionModel(std::make_unique<FecnCongestionModel>(0.30));
  }
  const PerAppWeightFn weights =
      c.discipline == AllocationDiscipline::kPerAppQueues ? PerAppWeight : PerAppWeightFn();

  AllocationEngine engine(&network, c.discipline, weights);
  const std::vector<NodeId> hosts = network.topology().Hosts();
  const size_t num_links = network.topology().num_links();

  Rng rng(c.seed);
  std::map<FlowId, std::unique_ptr<ActiveFlow>> live;
  std::vector<FlowId> live_ids;  // Indexable for uniform picks; order free.
  std::map<FlowId, FlowRoute> routes;
  const std::vector<LinkId> fabric_links = SwitchSwitchForwardLinks(network.topology());
  LinkId down_link = kInvalidLink;  // At most one duplex link down at a time.
  FlowId next_id = 1;

  // Oracle scratch: value copies so the from-scratch run cannot perturb the
  // engine-owned flows.
  std::vector<ActiveFlow> oracle;
  std::vector<ActiveFlow*> oracle_ptrs;

  constexpr int kEvents = 5000;
  for (int e = 0; e < kEvents; ++e) {
    // Start-heavy until the pool is populated, then balanced churn.
    const double start_w = live.size() < 100 ? 0.45 : 0.25;
    const double cancel_w = live.size() < 100 ? 0.20 : 0.40;
    const size_t op = live.empty()
                          ? 0
                          : rng.WeightedIndex({start_w, cancel_w, 0.20, 0.10, 0.03, 0.02});
    switch (op) {
      case 0: {  // Start a flow.
        const NodeId src = rng.Choice(hosts);
        NodeId dst = rng.Choice(hosts);
        while (dst == src) {
          dst = rng.Choice(hosts);
        }
        auto flow = std::make_unique<ActiveFlow>();
        flow->id = next_id++;
        flow->app = static_cast<AppId>(rng.UniformInt(0, 9));
        flow->sl = static_cast<int>(rng.UniformInt(0, kNumServiceLevels - 1));
        flow->priority = static_cast<int>(rng.UniformInt(0, 7));
        flow->intra_weight = rng.Bernoulli(0.2) ? 0.0625 : 1.0;
        flow->remaining_bits = rng.Uniform(1e6, 1e9);
        const uint64_t salt = rng.Next();
        FlowRoute& route = routes[flow->id];
        route = {src, dst, salt, network.router().Route(src, dst, salt)};
        flow->path = &route.path;
        engine.FlowAdded(flow.get());
        live_ids.push_back(flow->id);
        live.emplace(flow->id, std::move(flow));
        break;
      }
      case 1: {  // Cancel a flow.
        const size_t pick = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(live_ids.size()) - 1));
        const FlowId id = live_ids[pick];
        live_ids[pick] = live_ids.back();
        live_ids.pop_back();
        engine.FlowRemoved(live.at(id).get());
        live.erase(id);
        routes.erase(id);
        break;
      }
      case 2: {  // Move a flow between queues / classes.
        ActiveFlow* flow = live.at(rng.Choice(live_ids)).get();
        switch (rng.UniformInt(0, 2)) {
          case 0:
            flow->sl = static_cast<int>(rng.UniformInt(0, kNumServiceLevels - 1));
            break;
          case 1:
            flow->priority = static_cast<int>(rng.UniformInt(0, 7));
            break;
          default:
            flow->intra_weight = flow->intra_weight == 1.0 ? 0.0625 : 1.0;
            break;
        }
        engine.FlowQueueChanged(flow);
        break;
      }
      case 3: {  // Reconfigure one port.
        const LinkId link = static_cast<LinkId>(rng.UniformInt(
            0, static_cast<int64_t>(num_links) - 1));
        PortConfig& port = network.port(link);
        if (rng.Bernoulli(0.5)) {
          const int sl = static_cast<int>(rng.UniformInt(0, kNumServiceLevels - 1));
          port.sl_to_queue[static_cast<size_t>(sl)] =
              static_cast<int>(rng.UniformInt(0, port.num_queues - 1));
        } else {
          const size_t q = static_cast<size_t>(rng.UniformInt(0, port.num_queues - 1));
          port.queue_weights[q] = rng.Uniform(0.1, 2.0);
        }
        engine.PortConfigChanged(link);
        break;
      }
      case 4:
        engine.InvalidateAll();
        break;
      default: {  // Fail or restore one switch-switch duplex link.
        Topology& topo = network.topology();
        if (down_link == kInvalidLink) {
          down_link = rng.Choice(fabric_links);
          topo.SetLinkUp(down_link, false);
          topo.SetLinkUp(down_link + 1, false);
          // Re-pin broken flows in ascending id order (the FlowSimulator
          // contract): remove on the old path, re-route, re-add.
          for (auto& [id, route] : routes) {
            if (!CrossesUnusableLink(topo, route.path)) {
              continue;
            }
            ActiveFlow* flow = live.at(id).get();
            engine.FlowRemoved(flow);
            route.path = network.router().Route(route.src, route.dst, route.salt);
            ASSERT_FALSE(route.path.empty())
                << "one duplex failure must leave the fabric connected";
            engine.FlowAdded(flow);
          }
        } else {  // Restores never move pinned flows; no deltas to stream.
          topo.SetLinkUp(down_link, true);
          topo.SetLinkUp(down_link + 1, true);
          down_link = kInvalidLink;
        }
        break;
      }
    }

    engine.Recompute();

    oracle.clear();
    oracle_ptrs.clear();
    oracle.reserve(live.size());
    for (const auto& [id, flow] : live) {
      oracle.push_back(*flow);
    }
    for (ActiveFlow& flow : oracle) {
      oracle_ptrs.push_back(&flow);
    }
    AllocateFromScratch(oracle_ptrs, network, c.discipline, weights);
    for (const ActiveFlow& expect : oracle) {
      const double got = live.at(expect.id)->rate;
      ASSERT_EQ(expect.rate, got)
          << "event " << e << " flow " << expect.id << " diverged from oracle";
    }
  }
  EXPECT_GT(engine.stats().recomputes, 0u);
  EXPECT_GT(engine.stats().flows_frozen, 0u)
      << "churn never skipped work; incremental path not exercised";
}

INSTANTIATE_TEST_SUITE_P(
    AllDisciplines, EngineChurnTest,
    ::testing::Values(
        ChurnCase{"wfq_fecn", AllocationDiscipline::kWfqSlQueues, true, 11},
        ChurnCase{"wfq_ideal", AllocationDiscipline::kWfqSlQueues, false, 12},
        ChurnCase{"perapp_fecn", AllocationDiscipline::kPerAppQueues, true, 13},
        ChurnCase{"perapp_ideal", AllocationDiscipline::kPerAppQueues, false, 14},
        ChurnCase{"strict_fecn", AllocationDiscipline::kStrictPriority, true, 15},
        ChurnCase{"strict_ideal", AllocationDiscipline::kStrictPriority, false, 16}),
    [](const ::testing::TestParamInfo<ChurnCase>& info) { return std::string(info.param.name); });

// The integer solve's headline property (DESIGN.md §7.1): rates are a pure
// function of the flow *multiset*. Feed AllocateFromScratch the same flows in
// shuffled orders and demand bit-identical rates — no canonical sort exists
// anywhere to restore order, so any hidden order dependence fails here.
TEST(AllocateFromScratchTest, FlowInputOrderNeverChangesAnyRate) {
  for (const AllocationDiscipline discipline :
       {AllocationDiscipline::kWfqSlQueues, AllocationDiscipline::kPerAppQueues,
        AllocationDiscipline::kStrictPriority}) {
    Network network(BuildSpineLeaf({.num_spine = 2,
                                    .num_leaf = 4,
                                    .num_tor = 4,
                                    .hosts_per_tor = 3,
                                    .num_pods = 2,
                                    .host_link_bps = Gbps64(10),
                                    .tor_leaf_bps = Gbps64(10),
                                    .leaf_spine_bps = Gbps64(10)}),
                    /*default_queues=*/4);
    for (int sl = 0; sl < kNumServiceLevels; ++sl) {
      network.MapSlToQueueEverywhere(sl, sl % 4);
    }
    network.SetCongestionModel(std::make_unique<FecnCongestionModel>(0.30));
    const PerAppWeightFn weights =
        discipline == AllocationDiscipline::kPerAppQueues ? PerAppWeight : PerAppWeightFn();
    const std::vector<NodeId> hosts = network.topology().Hosts();

    Rng rng(20260808 + static_cast<uint64_t>(discipline));
    std::vector<ActiveFlow> flows(300);
    FlowId next_id = 1;
    for (ActiveFlow& flow : flows) {
      const NodeId src = rng.Choice(hosts);
      NodeId dst = rng.Choice(hosts);
      while (dst == src) {
        dst = rng.Choice(hosts);
      }
      flow.id = next_id++;
      flow.app = static_cast<AppId>(rng.UniformInt(0, 9));
      flow.sl = static_cast<int>(rng.UniformInt(0, kNumServiceLevels - 1));
      flow.priority = static_cast<int>(rng.UniformInt(0, 7));
      flow.intra_weight = rng.Bernoulli(0.2) ? 0.0625 : 1.0;
      flow.remaining_bits = rng.Uniform(1e6, 1e9);
      flow.path = &network.router().Route(src, dst, rng.Next());
    }

    std::vector<ActiveFlow*> ptrs(flows.size());
    for (size_t i = 0; i < flows.size(); ++i) {
      ptrs[i] = &flows[i];
    }
    AllocateFromScratch(ptrs, network, discipline, weights);
    std::map<FlowId, Bps64> baseline;
    for (const ActiveFlow& flow : flows) {
      baseline[flow.id] = flow.rate;
    }

    for (int trial = 0; trial < 10; ++trial) {
      for (size_t i = ptrs.size(); i > 1; --i) {  // Fisher-Yates on the input order.
        std::swap(ptrs[i - 1],
                  ptrs[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(i) - 1))]);
      }
      for (ActiveFlow& flow : flows) {
        flow.rate = -1;  // Poison so a skipped flow cannot pass by luck.
      }
      AllocateFromScratch(ptrs, network, discipline, weights);
      for (const ActiveFlow& flow : flows) {
        ASSERT_EQ(flow.rate, baseline.at(flow.id))
            << "discipline " << static_cast<int>(discipline) << " trial " << trial << " flow "
            << flow.id;
      }
    }
  }
}

// Component-parallel solving (DESIGN.md §7.3): one engine per solve_jobs
// setting {1, 2, 4} consumes the SAME delta stream over per-universe flow
// copies (engines write rates in place; the const routes are shared), and
// after every event all engines plus the from-scratch oracle must agree
// bit-exactly. This is the serial == parallel == incremental == from-scratch
// proof the parallelism contract rests on.
struct ParallelChurnCase {
  const char* name;
  AllocationDiscipline discipline;
  int events;
  uint64_t seed;
};

class EngineParallelChurnTest : public ::testing::TestWithParam<ParallelChurnCase> {};

TEST_P(EngineParallelChurnTest, SolveJobsNeverChangesAnyRate) {
  const ParallelChurnCase& c = GetParam();
  Network network(BuildSpineLeaf({.num_spine = 2,
                                  .num_leaf = 4,
                                  .num_tor = 4,
                                  .hosts_per_tor = 3,
                                  .num_pods = 2,
                                  .host_link_bps = Gbps64(10),
                                  .tor_leaf_bps = Gbps64(10),
                                  .leaf_spine_bps = Gbps64(10)}),
                  /*default_queues=*/4);
  for (int sl = 0; sl < kNumServiceLevels; ++sl) {
    network.MapSlToQueueEverywhere(sl, sl % 4);
  }
  network.SetCongestionModel(std::make_unique<FecnCongestionModel>(0.30));
  const PerAppWeightFn weights =
      c.discipline == AllocationDiscipline::kPerAppQueues ? PerAppWeight : PerAppWeightFn();

  constexpr int kJobs[] = {1, 2, 4};
  constexpr size_t kUniverses = 3;
  struct Universe {
    std::unique_ptr<AllocationEngine> engine;
    std::map<FlowId, std::unique_ptr<ActiveFlow>> live;
  };
  Universe universes[kUniverses];
  for (size_t u = 0; u < kUniverses; ++u) {
    universes[u].engine = std::make_unique<AllocationEngine>(&network, c.discipline, weights);
    universes[u].engine->SetSolveJobs(kJobs[u]);
  }

  const std::vector<NodeId> hosts = network.topology().Hosts();
  const size_t num_links = network.topology().num_links();
  Rng rng(c.seed);
  std::vector<FlowId> live_ids;
  std::map<FlowId, FlowRoute> routes;  // Shared across universes.
  const std::vector<LinkId> fabric_links = SwitchSwitchForwardLinks(network.topology());
  LinkId down_link = kInvalidLink;
  FlowId next_id = 1;

  std::vector<ActiveFlow> oracle;
  std::vector<ActiveFlow*> oracle_ptrs;

  for (int e = 0; e < c.events; ++e) {
    const double start_w = live_ids.size() < 100 ? 0.45 : 0.25;
    const double cancel_w = live_ids.size() < 100 ? 0.20 : 0.40;
    const size_t op = live_ids.empty()
                          ? 0
                          : rng.WeightedIndex({start_w, cancel_w, 0.20, 0.10, 0.03, 0.02});
    switch (op) {
      case 0: {  // Start a flow: draw it once, register a copy per universe.
        const NodeId src = rng.Choice(hosts);
        NodeId dst = rng.Choice(hosts);
        while (dst == src) {
          dst = rng.Choice(hosts);
        }
        ActiveFlow proto;
        proto.id = next_id++;
        proto.app = static_cast<AppId>(rng.UniformInt(0, 9));
        proto.sl = static_cast<int>(rng.UniformInt(0, kNumServiceLevels - 1));
        proto.priority = static_cast<int>(rng.UniformInt(0, 7));
        proto.intra_weight = rng.Bernoulli(0.2) ? 0.0625 : 1.0;
        proto.remaining_bits = rng.Uniform(1e6, 1e9);
        const uint64_t salt = rng.Next();
        FlowRoute& route = routes[proto.id];
        route = {src, dst, salt, network.router().Route(src, dst, salt)};
        proto.path = &route.path;
        for (Universe& u : universes) {
          auto flow = std::make_unique<ActiveFlow>(proto);
          u.engine->FlowAdded(flow.get());
          u.live.emplace(proto.id, std::move(flow));
        }
        live_ids.push_back(proto.id);
        break;
      }
      case 1: {  // Cancel a flow, everywhere.
        const size_t pick = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(live_ids.size()) - 1));
        const FlowId id = live_ids[pick];
        live_ids[pick] = live_ids.back();
        live_ids.pop_back();
        for (Universe& u : universes) {
          u.engine->FlowRemoved(u.live.at(id).get());
          u.live.erase(id);
        }
        routes.erase(id);
        break;
      }
      case 2: {  // Move a flow between queues / classes (same move everywhere).
        const FlowId id = rng.Choice(live_ids);
        const int64_t kind = rng.UniformInt(0, 2);
        const int new_sl = static_cast<int>(rng.UniformInt(0, kNumServiceLevels - 1));
        const int new_priority = static_cast<int>(rng.UniformInt(0, 7));
        for (Universe& u : universes) {
          ActiveFlow* flow = u.live.at(id).get();
          switch (kind) {
            case 0:
              flow->sl = new_sl;
              break;
            case 1:
              flow->priority = new_priority;
              break;
            default:
              flow->intra_weight = flow->intra_weight == 1.0 ? 0.0625 : 1.0;
              break;
          }
          u.engine->FlowQueueChanged(flow);
        }
        break;
      }
      case 3: {  // Reconfigure one port (the network is shared).
        const LinkId link = static_cast<LinkId>(rng.UniformInt(
            0, static_cast<int64_t>(num_links) - 1));
        PortConfig& port = network.port(link);
        if (rng.Bernoulli(0.5)) {
          const int sl = static_cast<int>(rng.UniformInt(0, kNumServiceLevels - 1));
          port.sl_to_queue[static_cast<size_t>(sl)] =
              static_cast<int>(rng.UniformInt(0, port.num_queues - 1));
        } else {
          const size_t q = static_cast<size_t>(rng.UniformInt(0, port.num_queues - 1));
          port.queue_weights[q] = rng.Uniform(0.1, 2.0);
        }
        for (Universe& u : universes) {
          u.engine->PortConfigChanged(link);
        }
        break;
      }
      case 4:
        for (Universe& u : universes) {
          u.engine->InvalidateAll();
        }
        break;
      default: {  // Fail or restore one duplex link, rerouting every universe.
        Topology& topo = network.topology();
        if (down_link == kInvalidLink) {
          down_link = rng.Choice(fabric_links);
          topo.SetLinkUp(down_link, false);
          topo.SetLinkUp(down_link + 1, false);
          for (auto& [id, route] : routes) {
            if (!CrossesUnusableLink(topo, route.path)) {
              continue;
            }
            // Every universe's flow copy points at the one shared path:
            // remove everywhere first, then overwrite it, then re-add.
            for (Universe& u : universes) {
              u.engine->FlowRemoved(u.live.at(id).get());
            }
            route.path = network.router().Route(route.src, route.dst, route.salt);
            ASSERT_FALSE(route.path.empty())
                << "one duplex failure must leave the fabric connected";
            for (Universe& u : universes) {
              u.engine->FlowAdded(u.live.at(id).get());
            }
          }
        } else {
          topo.SetLinkUp(down_link, true);
          topo.SetLinkUp(down_link + 1, true);
          down_link = kInvalidLink;
        }
        break;
      }
    }

    for (Universe& u : universes) {
      u.engine->Recompute();
    }

    // Every parallel universe must match the serial one, bit for bit.
    for (const FlowId id : live_ids) {
      const double serial = universes[0].live.at(id)->rate;
      for (size_t u = 1; u < kUniverses; ++u) {
        ASSERT_EQ(serial, universes[u].live.at(id)->rate)
            << "event " << e << " flow " << id << " diverged at solve_jobs=" << kJobs[u];
      }
    }
    // ... and the serial one must match the from-scratch oracle.
    oracle.clear();
    oracle_ptrs.clear();
    oracle.reserve(universes[0].live.size());
    for (const auto& [id, flow] : universes[0].live) {
      oracle.push_back(*flow);
    }
    for (ActiveFlow& flow : oracle) {
      oracle_ptrs.push_back(&flow);
    }
    AllocateFromScratch(oracle_ptrs, network, c.discipline, weights);
    for (const ActiveFlow& expect : oracle) {
      ASSERT_EQ(expect.rate, universes[0].live.at(expect.id)->rate)
          << "event " << e << " flow " << expect.id << " diverged from oracle";
    }
  }

  // Random churn on this small fabric tends to knot every flow into one
  // component, which the adaptive fallback keeps inline. Drain the fabric
  // and start two disjoint intra-pod blobs in one burst: a guaranteed
  // multi-component batch above kMinParallelBatchFlows, so the dispatched
  // path is exercised (and must still be bit-identical) regardless of how
  // the churn clustered.
  for (const FlowId id : live_ids) {
    for (Universe& u : universes) {
      u.engine->FlowRemoved(u.live.at(id).get());
      u.live.erase(id);
    }
  }
  live_ids.clear();
  routes.clear();
  for (Universe& u : universes) {
    u.engine->Recompute();
  }
  const size_t hosts_per_pod = hosts.size() / 2;
  for (size_t k = 0; k < AllocationEngine::kMinParallelBatchFlows; ++k) {
    const size_t pod = k % 2;
    const size_t base = pod * hosts_per_pod;
    const int64_t span = static_cast<int64_t>(hosts_per_pod) - 1;
    const NodeId src = hosts[base + static_cast<size_t>(rng.UniformInt(0, span))];
    NodeId dst = src;
    while (dst == src) {
      dst = hosts[base + static_cast<size_t>(rng.UniformInt(0, span))];
    }
    ActiveFlow proto;
    proto.id = next_id++;
    proto.app = static_cast<AppId>(rng.UniformInt(0, 9));
    proto.sl = static_cast<int>(rng.UniformInt(0, kNumServiceLevels - 1));
    proto.remaining_bits = rng.Uniform(1e6, 1e9);
    const uint64_t salt = rng.Next();
    FlowRoute& route = routes[proto.id];
    route = {src, dst, salt, network.router().Route(src, dst, salt)};
    proto.path = &route.path;
    for (Universe& u : universes) {
      auto flow = std::make_unique<ActiveFlow>(proto);
      u.engine->FlowAdded(flow.get());
      u.live.emplace(proto.id, std::move(flow));
    }
    live_ids.push_back(proto.id);
  }
  for (Universe& u : universes) {
    u.engine->Recompute();
  }
  for (const FlowId id : live_ids) {
    const double serial = universes[0].live.at(id)->rate;
    for (size_t u = 1; u < kUniverses; ++u) {
      ASSERT_EQ(serial, universes[u].live.at(id)->rate)
          << "burst flow " << id << " diverged at solve_jobs=" << kJobs[u];
    }
  }

  // The accounting must be scheduling-independent too: every counter that
  // describes WHAT was solved agrees across solve_jobs; the parallel_*
  // counters are 0 serially and identical for every parallel setting (the
  // dispatch decision depends only on the component count and batch size).
  const AllocationEngineStats& s1 = universes[0].engine->stats();
  const AllocationEngineStats& s2 = universes[1].engine->stats();
  const AllocationEngineStats& s4 = universes[2].engine->stats();
  EXPECT_EQ(s1.recomputes, s2.recomputes);
  EXPECT_EQ(s1.recomputes, s4.recomputes);
  EXPECT_EQ(s1.full_recomputes, s2.full_recomputes);
  EXPECT_EQ(s1.full_recomputes, s4.full_recomputes);
  EXPECT_EQ(s1.components_solved, s2.components_solved);
  EXPECT_EQ(s1.components_solved, s4.components_solved);
  EXPECT_EQ(s1.flows_rerated, s2.flows_rerated);
  EXPECT_EQ(s1.flows_rerated, s4.flows_rerated);
  EXPECT_EQ(s1.flows_frozen, s2.flows_frozen);
  EXPECT_EQ(s1.flows_frozen, s4.flows_frozen);
  EXPECT_EQ(s1.parallel_solves, 0u);
  EXPECT_EQ(s1.parallel_components, 0u);
  EXPECT_GT(s2.parallel_solves, 0u) << "churn never produced a multi-component batch";
  EXPECT_EQ(s2.parallel_solves, s4.parallel_solves);
  EXPECT_EQ(s2.parallel_components, s4.parallel_components);
  EXPECT_LE(s2.parallel_components, s2.components_solved);
  EXPECT_GE(s2.parallel_components, 2 * s2.parallel_solves)
      << "a dispatched batch always has at least two components";
}

INSTANTIATE_TEST_SUITE_P(
    AllDisciplines, EngineParallelChurnTest,
    ::testing::Values(
        ParallelChurnCase{"wfq_fecn", AllocationDiscipline::kWfqSlQueues, 10000, 21},
        ParallelChurnCase{"perapp_fecn", AllocationDiscipline::kPerAppQueues, 3000, 22},
        ParallelChurnCase{"strict_fecn", AllocationDiscipline::kStrictPriority, 3000, 23}),
    [](const ::testing::TestParamInfo<ParallelChurnCase>& info) {
      return std::string(info.param.name);
    });

// Deterministic skip accounting on a star: host pairs (0,1) and (2,3) share
// no link, so events on one pair must never re-rate the other.
TEST(AllocationEngineStatsTest, UntouchedComponentsAreFrozen) {
  Network network(BuildSingleSwitchStar(6, Gbps64(10)), /*default_queues=*/2);
  AllocationEngine engine(&network, AllocationDiscipline::kWfqSlQueues);

  auto make_flow = [&](FlowId id, NodeId src, NodeId dst) {
    auto flow = std::make_unique<ActiveFlow>();
    flow->id = id;
    flow->app = static_cast<AppId>(id);
    flow->remaining_bits = Gbps(10);
    flow->path = &network.router().Route(src, dst, 0);
    return flow;
  };

  auto a = make_flow(1, 0, 1);
  auto b = make_flow(2, 2, 3);
  engine.FlowAdded(a.get());
  engine.FlowAdded(b.get());
  engine.Recompute();
  EXPECT_EQ(engine.stats().recomputes, 1u);
  EXPECT_EQ(engine.stats().components_solved, 2u);
  EXPECT_EQ(engine.stats().flows_rerated, 2u);
  EXPECT_EQ(engine.stats().flows_frozen, 0u);
  EXPECT_GT(a->rate, 0.0);
  EXPECT_GT(b->rate, 0.0);

  // A third flow on the (0,1) pair dirties only that component: b freezes.
  auto c = make_flow(3, 0, 1);
  engine.FlowAdded(c.get());
  const double b_rate = b->rate;
  engine.Recompute();
  EXPECT_EQ(engine.stats().components_solved, 3u);
  EXPECT_EQ(engine.stats().flows_rerated, 4u);
  EXPECT_EQ(engine.stats().flows_frozen, 1u);
  EXPECT_EQ(b->rate, b_rate);
  EXPECT_EQ(engine.stats().full_recomputes, 0u);

  // Removing b leaves its links dirty but empty: nothing re-rates.
  engine.FlowRemoved(b.get());
  engine.Recompute();
  EXPECT_EQ(engine.stats().components_solved, 3u);
  EXPECT_EQ(engine.stats().flows_rerated, 4u);
  EXPECT_EQ(engine.stats().flows_frozen, 3u);

  // InvalidateAll falls back to a full solve of everything.
  engine.InvalidateAll();
  engine.Recompute();
  EXPECT_EQ(engine.stats().full_recomputes, 1u);
  EXPECT_EQ(engine.stats().flows_rerated, 6u);

  // Clean engine: Recompute is a no-op.
  const uint64_t before = engine.stats().recomputes;
  engine.Recompute();
  EXPECT_EQ(engine.stats().recomputes, before);
}

// Exact values for the parallel counters (DESIGN.md §7.3): they count
// dispatch DECISIONS, which depend only on solve_jobs, the per-recompute
// component count, and the batch's flow total (the adaptive serial fallback,
// kMinParallelBatchFlows) — never on thread timing. Disjoint host pairs on a
// star give single-flow components, so the flow total is controlled exactly.
TEST(AllocationEngineStatsTest, ParallelCountersAgreeAcrossSolveJobs) {
  constexpr size_t kThreshold = AllocationEngine::kMinParallelBatchFlows;
  // Hosts for 3 warm-up pairs plus one over-threshold burst of pairs.
  const int num_hosts = static_cast<int>(2 * (3 + kThreshold));
  Network network(BuildSingleSwitchStar(num_hosts, Gbps64(10)), /*default_queues=*/2);
  AllocationEngine serial(&network, AllocationDiscipline::kWfqSlQueues);
  AllocationEngine pooled(&network, AllocationDiscipline::kWfqSlQueues);
  pooled.SetSolveJobs(4);
  EXPECT_EQ(serial.solve_jobs(), 1);
  EXPECT_EQ(pooled.solve_jobs(), 4);

  std::vector<std::unique_ptr<ActiveFlow>> flows;
  auto add_pair = [&](FlowId id, NodeId src, NodeId dst) {
    for (AllocationEngine* engine : {&serial, &pooled}) {
      auto flow = std::make_unique<ActiveFlow>();
      flow->id = id;
      flow->app = static_cast<AppId>(id);
      flow->remaining_bits = Gbps(10);
      flow->path = &network.router().Route(src, dst, 0);
      engine->FlowAdded(flow.get());
      flows.push_back(std::move(flow));
    }
  };

  add_pair(1, 0, 1);
  add_pair(2, 2, 3);
  add_pair(3, 4, 5);
  serial.Recompute();
  pooled.Recompute();

  // Same work on both engines...
  EXPECT_EQ(serial.stats().components_solved, 3u);
  EXPECT_EQ(pooled.stats().components_solved, 3u);
  for (size_t i = 0; i + 1 < flows.size(); i += 2) {
    EXPECT_EQ(flows[i]->rate, flows[i + 1]->rate) << "flow " << flows[i]->id;
  }
  // ...but neither dispatched: three single-flow components are far below
  // the flow threshold, so the adaptive fallback keeps the batch inline.
  EXPECT_EQ(serial.stats().parallel_solves, 0u);
  EXPECT_EQ(serial.stats().parallel_components, 0u);
  EXPECT_EQ(pooled.stats().parallel_solves, 0u);
  EXPECT_EQ(pooled.stats().parallel_components, 0u);

  // A burst of kMinParallelBatchFlows fresh pairs in one recompute crosses
  // the threshold: exactly one dispatched batch of that many components.
  FlowId next_id = 4;
  for (size_t p = 0; p < kThreshold; ++p) {
    const NodeId src = static_cast<NodeId>(6 + 2 * p);
    add_pair(next_id++, src, src + 1);
  }
  serial.Recompute();
  pooled.Recompute();
  EXPECT_EQ(serial.stats().components_solved, 3u + kThreshold);
  EXPECT_EQ(pooled.stats().components_solved, 3u + kThreshold);
  EXPECT_EQ(serial.stats().parallel_solves, 0u);
  EXPECT_EQ(pooled.stats().parallel_solves, 1u);
  EXPECT_EQ(pooled.stats().parallel_components, kThreshold);
  for (size_t i = 0; i + 1 < flows.size(); i += 2) {
    EXPECT_EQ(flows[i]->rate, flows[i + 1]->rate) << "flow " << flows[i]->id;
  }

  // A single-component follow-up runs serially even at solve_jobs=4: the
  // parallel counters must not move.
  add_pair(next_id++, 0, 1);
  serial.Recompute();
  pooled.Recompute();
  EXPECT_EQ(serial.stats().components_solved, 4u + kThreshold);
  EXPECT_EQ(pooled.stats().components_solved, 4u + kThreshold);
  EXPECT_EQ(pooled.stats().parallel_solves, 1u);
  EXPECT_EQ(pooled.stats().parallel_components, kThreshold);
  for (size_t i = 0; i + 1 < flows.size(); i += 2) {
    EXPECT_EQ(flows[i]->rate, flows[i + 1]->rate) << "flow " << flows[i]->id;
  }
}

}  // namespace
}  // namespace saba
