#include "src/core/queue_mapper.h"

#include <gtest/gtest.h>

#include <set>

namespace saba {
namespace {

SensitivityModel Linear(double slope) {
  return SensitivityModel{Polynomial({1.0 + slope, -slope})};
}

std::vector<SensitivityModel> EightPls() {
  std::vector<SensitivityModel> models;
  for (int i = 0; i < 8; ++i) {
    models.push_back(Linear(0.5 * i));
  }
  return models;
}

TEST(QueueMapperTest, EnoughQueuesKeepsPlsDistinct) {
  QueueMapper mapper(EightPls());
  const auto mapping = mapper.MapPort({0, 3, 5}, 8);
  EXPECT_EQ(mapping.level, 0u);
  std::set<int> queues;
  for (int pl : {0, 3, 5}) {
    const int q = mapping.pl_to_queue[static_cast<size_t>(pl)];
    EXPECT_GE(q, 0);
    queues.insert(q);
  }
  EXPECT_EQ(queues.size(), 3u);
  EXPECT_EQ(mapping.queue_models.size(), 3u);
}

TEST(QueueMapperTest, AbsentPlsAreUnmapped) {
  QueueMapper mapper(EightPls());
  const auto mapping = mapper.MapPort({1, 2}, 4);
  for (int pl = 0; pl < 8; ++pl) {
    if (pl == 1 || pl == 2) {
      EXPECT_GE(mapping.pl_to_queue[static_cast<size_t>(pl)], 0);
    } else {
      EXPECT_EQ(mapping.pl_to_queue[static_cast<size_t>(pl)], -1);
    }
  }
}

TEST(QueueMapperTest, FewQueuesGroupNeighbouringSensitivities) {
  QueueMapper mapper(EightPls());
  const auto mapping = mapper.MapPort({0, 1, 6, 7}, 2);
  ASSERT_LE(mapping.queue_models.size(), 2u);
  // Similar PLs end up together: 0 with 1, 6 with 7, and the pairs apart.
  EXPECT_EQ(mapping.pl_to_queue[0], mapping.pl_to_queue[1]);
  EXPECT_EQ(mapping.pl_to_queue[6], mapping.pl_to_queue[7]);
  EXPECT_NE(mapping.pl_to_queue[0], mapping.pl_to_queue[6]);
}

TEST(QueueMapperTest, SingleQueueMergesAll) {
  QueueMapper mapper(EightPls());
  const auto mapping = mapper.MapPort({0, 2, 4, 6}, 1);
  EXPECT_EQ(mapping.queue_models.size(), 1u);
  for (int pl : {0, 2, 4, 6}) {
    EXPECT_EQ(mapping.pl_to_queue[static_cast<size_t>(pl)], 0);
  }
}

TEST(QueueMapperTest, DifferentPortsDifferentMappings) {
  // §5.3.2: the same hierarchy serves ports with different PL subsets and
  // queue counts.
  QueueMapper mapper(EightPls());
  const auto narrow = mapper.MapPort({0, 1, 2, 3, 4, 5, 6, 7}, 2);
  const auto wide = mapper.MapPort({0, 7}, 8);
  EXPECT_LE(narrow.queue_models.size(), 2u);
  EXPECT_EQ(wide.queue_models.size(), 2u);
  EXPECT_GT(narrow.level, wide.level);
}

TEST(QueueMapperTest, QueueModelIsDendrogramCentroid) {
  QueueMapper mapper({Linear(2.0), Linear(2.2), Linear(8.0)});
  const auto mapping = mapper.MapPort({0, 1, 2}, 2);
  ASSERT_EQ(mapping.queue_models.size(), 2u);
  // The {2.0, 2.2} pair merges with midpoint slope 2.1.
  const int merged_queue = mapping.pl_to_queue[0];
  ASSERT_EQ(merged_queue, mapping.pl_to_queue[1]);
  EXPECT_NEAR(mapping.queue_models[static_cast<size_t>(merged_queue)].SlowdownAt(0.5),
              1.0 + 2.1 * 0.5, 1e-9);
}

TEST(QueueMapperTest, QueueIndicesAreDense) {
  QueueMapper mapper(EightPls());
  const auto mapping = mapper.MapPort({1, 3, 5, 7}, 3);
  std::set<int> queues;
  for (int pl : {1, 3, 5, 7}) {
    queues.insert(mapping.pl_to_queue[static_cast<size_t>(pl)]);
  }
  EXPECT_EQ(queues.size(), mapping.queue_models.size());
  for (int q : queues) {
    EXPECT_GE(q, 0);
    EXPECT_LT(q, static_cast<int>(mapping.queue_models.size()));
  }
}

}  // namespace
}  // namespace saba
