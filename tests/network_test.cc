#include "src/net/network.h"

#include <gtest/gtest.h>

#include "src/net/units.h"

namespace saba {
namespace {

TEST(PortConfigTest, DefaultsToSingleSharedQueue) {
  PortConfig config;
  EXPECT_EQ(config.num_queues, 1);
  for (int sl = 0; sl < kNumServiceLevels; ++sl) {
    EXPECT_EQ(config.sl_to_queue[static_cast<size_t>(sl)], 0);
  }
  ASSERT_EQ(config.queue_weights.size(), 1u);
  EXPECT_DOUBLE_EQ(config.queue_weights[0], 1.0);
  EXPECT_EQ(config.scheduling, PortScheduling::kWfq);
}

TEST(NetworkTest, ConstructsPortPerLink) {
  Network network(BuildSingleSwitchStar(4, Gbps64(10)), /*default_queues=*/8);
  EXPECT_EQ(network.topology().num_links(), 8u);
  for (size_t l = 0; l < network.topology().num_links(); ++l) {
    const PortConfig& port = network.port(static_cast<LinkId>(l));
    EXPECT_EQ(port.num_queues, 8);
    EXPECT_EQ(port.queue_weights.size(), 8u);
  }
}

TEST(NetworkTest, SetQueueCountEverywhereResetsWeightsAndClampsMap) {
  Network network(BuildSingleSwitchStar(4, Gbps64(10)), 8);
  network.MapSlToQueueEverywhere(5, 7);
  network.SetQueueCountEverywhere(2);
  for (size_t l = 0; l < network.topology().num_links(); ++l) {
    const PortConfig& port = network.port(static_cast<LinkId>(l));
    EXPECT_EQ(port.num_queues, 2);
    EXPECT_EQ(port.queue_weights.size(), 2u);
    // SL 5 pointed at queue 7, which no longer exists; it must be clamped.
    EXPECT_EQ(port.sl_to_queue[5], 1);
  }
}

TEST(NetworkTest, MapSlToQueueEverywhere) {
  Network network(BuildSingleSwitchStar(4, Gbps64(10)), 4);
  network.MapSlToQueueEverywhere(3, 2);
  for (size_t l = 0; l < network.topology().num_links(); ++l) {
    EXPECT_EQ(network.port(static_cast<LinkId>(l)).sl_to_queue[3], 2);
  }
}

TEST(NetworkTest, PortsAreIndependentlyMutable) {
  Network network(BuildSingleSwitchStar(4, Gbps64(10)), 4);
  network.port(0).queue_weights[0] = 9.0;
  EXPECT_DOUBLE_EQ(network.port(0).queue_weights[0], 9.0);
  EXPECT_DOUBLE_EQ(network.port(1).queue_weights[0], 1.0);
}

TEST(NetworkTest, DefaultCongestionModelIsIdeal) {
  Network network(BuildSingleSwitchStar(4, Gbps64(10)));
  EXPECT_DOUBLE_EQ(network.congestion().QueueEfficiency(50), 1.0);
}

TEST(NetworkTest, CongestionModelSwappable) {
  Network network(BuildSingleSwitchStar(4, Gbps64(10)));
  network.SetCongestionModel(std::make_unique<FecnCongestionModel>(0.3));
  EXPECT_LT(network.congestion().QueueEfficiency(8), 0.7);
}

TEST(FecnCongestionModelTest, MonotoneDecreasingInApps) {
  FecnCongestionModel model(0.3);
  double previous = 1.0;
  for (size_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const double eff = model.QueueEfficiency(n);
    EXPECT_LE(eff, previous + 1e-12);
    EXPECT_GT(eff, 0.0);
    previous = eff;
  }
}

TEST(FecnCongestionModelTest, GammaZeroIsIdeal) {
  FecnCongestionModel model(0.0);
  EXPECT_DOUBLE_EQ(model.QueueEfficiency(100), 1.0);
}

}  // namespace
}  // namespace saba
