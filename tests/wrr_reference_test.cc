// Cross-validation of the fluid WFQ allocator against packet-level
// deficit-weighted round robin: the central modeling claim of DESIGN.md is
// that fluid per-queue shares equal long-run WRR throughput shares.

#include "src/net/wrr_reference.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/net/allocator.h"
#include "src/net/network.h"
#include "src/net/units.h"
#include "src/sim/rng.h"

namespace saba {
namespace {

constexpr double kHorizon = 2.0;  // Seconds of simulated service.

TEST(WrrReferenceTest, SingleBackloggedFlowSaturatesPort) {
  WrrPortSpec port{Gbps64(1), {1.0}};
  const WrrResult result = SimulateWrrPort(port, {{0, 1.0, -1}}, kHorizon);
  EXPECT_NEAR(result.total_bits, Gbps(1) * kHorizon, port.packet_bits * 2);
}

TEST(WrrReferenceTest, EqualWeightsSplitEqually) {
  WrrPortSpec port{Gbps64(1), {1.0, 1.0}};
  const WrrResult result =
      SimulateWrrPort(port, {{0, 1.0, -1}, {1, 1.0, -1}}, kHorizon);
  EXPECT_NEAR(result.queue_bits[0] / result.total_bits, 0.5, 0.01);
}

TEST(WrrReferenceTest, WeightsGiveProportionalService) {
  WrrPortSpec port{Gbps64(1), {3.0, 1.0}};
  const WrrResult result =
      SimulateWrrPort(port, {{0, 1.0, -1}, {1, 1.0, -1}}, kHorizon);
  EXPECT_NEAR(result.queue_bits[0] / result.total_bits, 0.75, 0.01);
  EXPECT_NEAR(result.queue_bits[1] / result.total_bits, 0.25, 0.01);
}

TEST(WrrReferenceTest, IdleQueueYieldsBandwidth) {
  // Queue 1 has no flows: queue 0 takes the whole port (work conservation).
  WrrPortSpec port{Gbps64(1), {1.0, 9.0}};
  const WrrResult result = SimulateWrrPort(port, {{0, 1.0, -1}}, kHorizon);
  EXPECT_NEAR(result.total_bits, Gbps(1) * kHorizon, port.packet_bits * 2);
}

TEST(WrrReferenceTest, FiniteFlowStopsAndOthersReclaim) {
  // Flow 1 only has 10 Mb to send; flow 0 gets the rest of the horizon.
  WrrPortSpec port{Gbps64(1), {1.0, 1.0}};
  const WrrResult result =
      SimulateWrrPort(port, {{0, 1.0, -1}, {1, 1.0, Mbps(10) * 1.0}}, kHorizon);
  EXPECT_NEAR(result.flow_bits[1], Mbps(10), port.packet_bits * 2);
  EXPECT_NEAR(result.flow_bits[0], Gbps(1) * kHorizon - Mbps(10), port.packet_bits * 16);
}

TEST(WrrReferenceTest, IntraWeightSubordinatesPrefetchFlows) {
  // Two flows in one queue, intra weights 1.0 vs 0.15 (the prefetch value).
  WrrPortSpec port{Gbps64(1), {1.0}};
  const WrrResult result =
      SimulateWrrPort(port, {{0, 1.0, -1}, {0, 0.15, -1}}, kHorizon);
  const double expected = 1.0 / 1.15;
  EXPECT_NEAR(result.flow_bits[0] / result.total_bits, expected, 0.02);
}

// The headline cross-check: for random port configurations, fluid WFQ shares
// match packet-level WRR within a couple of percent.
class FluidVsPacketTest : public ::testing::TestWithParam<int> {};

TEST_P(FluidVsPacketTest, SharesAgreeOnASharedPort) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);
  const int num_queues = static_cast<int>(rng.UniformInt(2, 4));
  const int num_flows = static_cast<int>(rng.UniformInt(2, 8));

  // Fluid setup: a 2-host link chain a->b so all flows share one egress.
  Topology topo;
  const NodeId a = topo.AddNode(NodeKind::kHost);
  const NodeId b = topo.AddNode(NodeKind::kHost);
  topo.AddLink(a, b, Gbps64(1));
  Network network(std::move(topo), num_queues);
  PortConfig& config = network.port(0);

  WrrPortSpec port{Gbps64(1), {}};
  for (int q = 0; q < num_queues; ++q) {
    const double w = rng.Uniform(0.5, 4.0);
    config.queue_weights[static_cast<size_t>(q)] = w;
    port.queue_weights.push_back(w);
  }

  std::vector<std::unique_ptr<ActiveFlow>> storage;
  std::vector<ActiveFlow*> fluid_flows;
  std::vector<WrrFlowSpec> packet_flows;
  for (int f = 0; f < num_flows; ++f) {
    const int queue = static_cast<int>(rng.UniformInt(0, num_queues - 1));
    const double intra = rng.Bernoulli(0.3) ? 0.15 : 1.0;
    config.sl_to_queue[static_cast<size_t>(f)] = queue;  // SL f -> that queue.

    auto flow = std::make_unique<ActiveFlow>();
    flow->id = f;
    flow->app = f;  // Distinct apps; ideal congestion keeps efficiency 1.
    flow->sl = f;
    flow->intra_weight = intra;
    flow->remaining_bits = Gigabytes(100);  // Backlogged for the whole horizon.
    flow->path = &network.router().Route(a, b, 0);
    storage.push_back(std::move(flow));
    fluid_flows.push_back(storage.back().get());
    packet_flows.push_back({queue, intra, -1});
  }

  WfqMaxMinAllocator allocator;
  allocator.Allocate(fluid_flows, network);
  const WrrResult packets = SimulateWrrPort(port, packet_flows, kHorizon);

  for (int f = 0; f < num_flows; ++f) {
    const double fluid_share = fluid_flows[static_cast<size_t>(f)]->rate / Gbps(1);
    const double packet_share = packets.flow_bits[static_cast<size_t>(f)] / packets.total_bits;
    EXPECT_NEAR(fluid_share, packet_share, 0.025)
        << "flow " << f << " of " << num_flows << " (queues " << num_queues << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPorts, FluidVsPacketTest, ::testing::Range(1, 21));

}  // namespace
}  // namespace saba
