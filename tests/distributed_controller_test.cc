#include "src/core/distributed_controller.h"

#include <gtest/gtest.h>

#include "src/net/units.h"
#include "src/sim/event_scheduler.h"

namespace saba {
namespace {

SensitivityTable MakeTable() {
  SensitivityTable table;
  SensitivityEntry steep;
  steep.model = SensitivityModel{Polynomial({5.0, -4.0})};
  table.Put("steep", steep);
  SensitivityEntry medium;
  medium.model = SensitivityModel{Polynomial({2.5, -1.5})};
  table.Put("medium", medium);
  SensitivityEntry flat;
  flat.model = SensitivityModel{Polynomial({1.2, -0.2})};
  table.Put("flat", flat);
  return table;
}

TEST(MappingDatabaseTest, BuildsPlPerWorkload) {
  const SensitivityTable table = MakeTable();
  const MappingDatabase db = MappingDatabase::Build(table, /*num_pls=*/3, /*seed=*/1);
  EXPECT_EQ(db.workload_to_pl.size(), 3u);
  EXPECT_EQ(db.pl_models.size(), 3u);
  // Distinct sensitivities with enough PLs get distinct PLs.
  EXPECT_NE(db.PlForWorkload("steep"), db.PlForWorkload("flat"));
}

TEST(MappingDatabaseTest, FewerPlsGroupNeighbours) {
  const SensitivityTable table = MakeTable();
  const MappingDatabase db = MappingDatabase::Build(table, /*num_pls=*/2, /*seed=*/1);
  EXPECT_EQ(db.pl_models.size(), 2u);
  // steep and flat must not share when only they could separate.
  EXPECT_NE(db.PlForWorkload("steep"), db.PlForWorkload("flat"));
}

TEST(MappingDatabaseTest, UnknownWorkloadMapsToNearestInsensitiveCentroid) {
  const SensitivityTable table = MakeTable();
  const MappingDatabase db = MappingDatabase::Build(table, 3, 1);
  EXPECT_EQ(db.PlForWorkload("unknown"), db.PlForWorkload("flat"));
}

TEST(MappingDatabaseTest, CsvRoundTrip) {
  const SensitivityTable table = MakeTable();
  const MappingDatabase db = MappingDatabase::Build(table, 3, 1);
  const auto parsed = MappingDatabase::FromCsv(db.ToCsv());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->workload_to_pl, db.workload_to_pl);
  ASSERT_EQ(parsed->pl_models.size(), db.pl_models.size());
  for (size_t p = 0; p < db.pl_models.size(); ++p) {
    for (double b : {0.1, 0.5, 0.9}) {
      EXPECT_DOUBLE_EQ(parsed->pl_models[p].SlowdownAt(b), db.pl_models[p].SlowdownAt(b));
    }
  }
}

TEST(MappingDatabaseTest, FromCsvRejectsMalformedInput) {
  EXPECT_FALSE(MappingDatabase::FromCsv("").has_value());
  EXPECT_FALSE(MappingDatabase::FromCsv("bogus,1,2").has_value());
  EXPECT_FALSE(MappingDatabase::FromCsv("pl,1,1.0").has_value());      // Non-dense PL ids.
  EXPECT_FALSE(MappingDatabase::FromCsv("app,LR,0").has_value());      // App before any PL.
  EXPECT_FALSE(MappingDatabase::FromCsv("pl,0,1.0\napp,LR,5").has_value());  // Dangling PL ref.
  EXPECT_TRUE(MappingDatabase::FromCsv("pl,0,1.0,-0.5\napp,LR,0").has_value());
}

TEST(MappingDatabaseTest, FromCsvRejectsCorruptFieldsWithoutThrowing) {
  // A corrupt replication payload must come back as nullopt — these used to
  // escape as std::stoul/stod/stoi exceptions.
  EXPECT_FALSE(MappingDatabase::FromCsv("pl,x,1.0").has_value());    // Non-numeric PL id.
  EXPECT_FALSE(MappingDatabase::FromCsv("pl,0,abc").has_value());    // Non-numeric coefficient.
  EXPECT_FALSE(MappingDatabase::FromCsv("pl,0,1.0\napp,LR,x").has_value());  // Non-numeric app PL.
  EXPECT_FALSE(MappingDatabase::FromCsv("pl,-1,1.0").has_value());   // Negative PL id.
  EXPECT_FALSE(MappingDatabase::FromCsv("pl,0").has_value());        // Truncated: no coefficients.
  EXPECT_FALSE(MappingDatabase::FromCsv("pl,0,1.0\napp,LR").has_value());  // Truncated app row.
  EXPECT_FALSE(MappingDatabase::FromCsv("pl,0,1.0\napp").has_value());     // Tag-only row.
  EXPECT_FALSE(MappingDatabase::FromCsv("pl, 0,1.0").has_value());   // Padded field.
  EXPECT_FALSE(MappingDatabase::FromCsv("pl,0,1.0\napp,LR,0junk").has_value());  // Trailing junk.
  EXPECT_FALSE(MappingDatabase::FromCsv("pl,0,1e999").has_value());  // Coefficient overflow.
}

TEST(MappingDatabaseTest, CsvRoundTripIsByteStable) {
  // ToCsv -> FromCsv -> ToCsv must be a fixed point: precision-17 doubles
  // round-trip exactly, and both sections are emitted in canonical order.
  const SensitivityTable table = MakeTable();
  const MappingDatabase db = MappingDatabase::Build(table, 3, 1);
  const std::string csv = db.ToCsv();
  const auto parsed = MappingDatabase::FromCsv(csv);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ToCsv(), csv);
}

class DistributedControllerTest : public ::testing::Test {
 protected:
  DistributedControllerTest()
      : table_(MakeTable()),
        network_(BuildSpineLeaf({.num_spine = 2,
                                 .num_leaf = 2,
                                 .num_tor = 2,
                                 .hosts_per_tor = 2,
                                 .num_pods = 2,
                                 .host_link_bps = Gbps64(56),
                                 .tor_leaf_bps = Gbps64(56),
                                 .leaf_spine_bps = Gbps64(56)}),
                 /*default_queues=*/8),
        flow_sim_(&scheduler_, &network_, &allocator_) {}

  void Settle() { scheduler_.RunUntil(scheduler_.Now() + 1e-9); }

  SensitivityTable table_;
  EventScheduler scheduler_;
  Network network_;
  WfqMaxMinAllocator allocator_;
  FlowSimulator flow_sim_;
};

TEST_F(DistributedControllerTest, StaticRegistrationUsesDatabasePl) {
  const MappingDatabase db = MappingDatabase::Build(table_, 3, 1);
  DistributedController controller(&network_, &flow_sim_, &table_, db, {});
  const int pl = controller.AppRegister(1, "steep");
  EXPECT_EQ(pl, db.PlForWorkload("steep"));
  EXPECT_EQ(controller.CurrentServiceLevel(1), pl);
  // Registrations never trigger re-clustering (§5.4).
  controller.AppRegister(2, "flat");
  controller.AppRegister(3, "medium");
  EXPECT_EQ(controller.stats().pl_reclusterings, 0u);
}

TEST_F(DistributedControllerTest, SameWorkloadAlwaysSamePl) {
  const MappingDatabase db = MappingDatabase::Build(table_, 3, 1);
  DistributedController controller(&network_, &flow_sim_, &table_, db, {});
  const int a = controller.AppRegister(1, "medium");
  const int b = controller.AppRegister(2, "medium");
  EXPECT_EQ(a, b);
}

TEST_F(DistributedControllerTest, ConnSetupCountsShardTraffic) {
  const MappingDatabase db = MappingDatabase::Build(table_, 3, 1);
  DistributedControllerOptions options;
  options.num_shards = 4;
  DistributedController controller(&network_, &flow_sim_, &table_, db, options);
  controller.AppRegister(1, "steep");
  // Host 0 (pod 0) to host 3 (pod 1): crosses ToR -> leaf -> spine -> ...,
  // touching several shards.
  controller.ConnCreate(1, 0, 3, 5);
  Settle();
  uint64_t total_setups = 0;
  for (uint64_t n : controller.distributed_stats().conn_setups_per_shard) {
    total_setups += n;
  }
  EXPECT_EQ(total_setups, 1u);
  EXPECT_GT(controller.distributed_stats().cross_shard_messages, 0u);
}

TEST_F(DistributedControllerTest, PortWeightsMatchCentralizedMath) {
  // Eq 2 is per-port, so for a fixed app set at a port the distributed
  // controller solves the same problem as the centralized one.
  const MappingDatabase db = MappingDatabase::Build(table_, 3, 1);
  DistributedController dist(&network_, &flow_sim_, &table_, db, {});
  dist.AppRegister(1, "steep");
  dist.AppRegister(2, "flat");
  dist.ConnCreate(1, 0, 1, 2);
  dist.ConnCreate(2, 2, 1, 2);
  Settle();

  Network central_net(network_.topology(), 8);
  CentralizedController central(&central_net, nullptr, &table_, {});
  central.AppRegister(1, "steep");
  central.AppRegister(2, "flat");
  central.ConnCreate(1, 0, 1, 2);
  central.ConnCreate(2, 2, 1, 2);

  // Compare weights on the shared ingress of host 1.
  const auto& path = network_.router().Route(2, 1, 2);
  const LinkId shared = path.back();
  EXPECT_NEAR(dist.AppWeightAtPort(shared, 2), central.AppWeightAtPort(shared, 2), 1e-9);
}

TEST_F(DistributedControllerTest, DeregisterKeepsDatabaseGeometry) {
  const MappingDatabase db = MappingDatabase::Build(table_, 3, 1);
  DistributedController controller(&network_, &flow_sim_, &table_, db, {});
  controller.AppRegister(1, "steep");
  controller.AppRegister(2, "flat");
  controller.AppDeregister(1);
  EXPECT_EQ(controller.stats().pl_reclusterings, 0u);
  // Remaining app keeps its database PL.
  EXPECT_EQ(controller.CurrentServiceLevel(2), db.PlForWorkload("flat"));
}

}  // namespace
}  // namespace saba
