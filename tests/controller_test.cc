#include "src/core/controller.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/net/units.h"
#include "src/sim/event_scheduler.h"

namespace saba {
namespace {

SensitivityModel Steep() { return SensitivityModel{Polynomial({5.0, -4.0})}; }
SensitivityModel Flat() { return SensitivityModel{Polynomial({1.2, -0.2})}; }

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest()
      : network_(BuildSingleSwitchStar(4, Gbps64(56)), /*default_queues=*/8),
        flow_sim_(&scheduler_, &network_, &allocator_) {
    SensitivityEntry steep;
    steep.model = Steep();
    table_.Put("steep", steep);
    SensitivityEntry flat;
    flat.model = Flat();
    table_.Put("flat", flat);
  }

  // Runs pending same-time events (controller flushes are coalesced).
  void Settle() { scheduler_.RunUntil(scheduler_.Now() + 1e-9); }

  EventScheduler scheduler_;
  Network network_;
  WfqMaxMinAllocator allocator_;
  FlowSimulator flow_sim_;
  SensitivityTable table_;
};

TEST_F(ControllerTest, RegistrationAssignsDistinctPlsToDistinctSensitivities) {
  CentralizedController controller(&network_, &flow_sim_, &table_, {});
  const int pl_a = controller.AppRegister(1, "steep");
  const int pl_b = controller.AppRegister(2, "flat");
  EXPECT_NE(controller.CurrentServiceLevel(1), controller.CurrentServiceLevel(2));
  EXPECT_EQ(controller.CurrentServiceLevel(1), pl_a >= 0 ? controller.CurrentServiceLevel(1) : -1);
  (void)pl_a;
  (void)pl_b;
  EXPECT_EQ(controller.registered_app_count(), 2u);
  EXPECT_EQ(controller.stats().registrations, 2u);
  EXPECT_GE(controller.stats().pl_reclusterings, 2u);
}

TEST_F(ControllerTest, UnknownWorkloadGetsInsensitiveDefault) {
  CentralizedController controller(&network_, &flow_sim_, &table_, {});
  controller.AppRegister(1, "mystery");
  EXPECT_GE(controller.CurrentServiceLevel(1), 0);
}

TEST_F(ControllerTest, ConnCreateProgramsPortsAlongPath) {
  CentralizedController controller(&network_, &flow_sim_, &table_, {});
  controller.AppRegister(1, "steep");
  controller.AppRegister(2, "flat");
  controller.ConnCreate(1, 0, 1, 7);
  controller.ConnCreate(2, 2, 1, 7);
  Settle();

  // The shared switch->host1 egress now carries both apps; its weights must
  // favour the steep one.
  const LinkId shared = network_.topology().FindLink(4, 1);  // Switch is node 4.
  ASSERT_NE(shared, kInvalidLink);
  const double w_steep = controller.AppWeightAtPort(shared, 1);
  const double w_flat = controller.AppWeightAtPort(shared, 2);
  EXPECT_GT(w_steep, w_flat);
  EXPECT_NEAR(w_steep + w_flat, 1.0, 1e-6);

  // The port's queue weights reflect the shares (two PLs -> two queues).
  const PortConfig& port = network_.port(shared);
  const int q_steep = port.sl_to_queue[static_cast<size_t>(controller.CurrentServiceLevel(1))];
  const int q_flat = port.sl_to_queue[static_cast<size_t>(controller.CurrentServiceLevel(2))];
  EXPECT_NE(q_steep, q_flat);
  EXPECT_GT(port.queue_weights[static_cast<size_t>(q_steep)],
            port.queue_weights[static_cast<size_t>(q_flat)]);
  EXPECT_GT(controller.stats().port_reconfigurations, 0u);
}

TEST_F(ControllerTest, ConnDestroyReleasesPortState) {
  CentralizedController controller(&network_, &flow_sim_, &table_, {});
  controller.AppRegister(1, "steep");
  controller.ConnCreate(1, 0, 1, 3);
  Settle();
  const LinkId first_hop = network_.topology().FindLink(0, 4);
  EXPECT_GT(controller.AppWeightAtPort(first_hop, 1), 0);
  controller.ConnDestroy(1, 0, 1, 3);
  Settle();
  EXPECT_DOUBLE_EQ(controller.AppWeightAtPort(first_hop, 1), 0);
  controller.AppDeregister(1);
  EXPECT_EQ(controller.registered_app_count(), 0u);
}

TEST_F(ControllerTest, SoleAppOnPortGetsFullCapacity) {
  CentralizedController controller(&network_, &flow_sim_, &table_, {});
  controller.AppRegister(1, "flat");
  controller.ConnCreate(1, 0, 1, 0);
  Settle();
  const LinkId first_hop = network_.topology().FindLink(0, 4);
  EXPECT_NEAR(controller.AppWeightAtPort(first_hop, 1), 1.0, 1e-9);
}

TEST_F(ControllerTest, MorePlsThanQueuesStillProgramsValidConfig) {
  ControllerOptions options;
  options.num_pls = 8;
  // Give every port only 2 queues.
  network_.SetQueueCountEverywhere(2);
  CentralizedController controller(&network_, &flow_sim_, &table_, options);
  // Register 6 apps with spread-out sensitivities; all send into host 0.
  for (AppId app = 1; app <= 6; ++app) {
    controller.AppRegister(app, app % 2 == 0 ? "steep" : "flat");
  }
  for (AppId app = 1; app <= 6; ++app) {
    controller.ConnCreate(app, static_cast<NodeId>(app % 3 + 1), 0, static_cast<uint64_t>(app));
  }
  Settle();
  const LinkId ingress = network_.topology().FindLink(4, 0);
  const PortConfig& port = network_.port(ingress);
  for (int sl = 0; sl < kNumServiceLevels; ++sl) {
    EXPECT_GE(port.sl_to_queue[static_cast<size_t>(sl)], 0);
    EXPECT_LT(port.sl_to_queue[static_cast<size_t>(sl)], 2);
  }
  // Total configured weight on active queues ~ C_saba.
  const double total = std::accumulate(port.queue_weights.begin(), port.queue_weights.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 0.01);
}

TEST_F(ControllerTest, ReclusteringRetagsLiveFlows) {
  CentralizedController controller(&network_, &flow_sim_, &table_, {});
  controller.AppRegister(1, "steep");
  flow_sim_.StartFlow(1, 0, 1, Gbps(56) * 100, controller.CurrentServiceLevel(1), 0, nullptr);
  Settle();
  // A second registration re-clusters; flow SLs must track the new PLs.
  controller.AppRegister(2, "flat");
  Settle();
  flow_sim_.ForEachActiveFlow([&](const ActiveFlow& flow) {
    EXPECT_EQ(flow.sl, controller.CurrentServiceLevel(flow.app));
  });
}

TEST_F(ControllerTest, RecomputeAllPortsTimedReturnsWallTime) {
  CentralizedController controller(&network_, &flow_sim_, &table_, {});
  controller.AppRegister(1, "steep");
  controller.AppRegister(2, "flat");
  for (NodeId src = 0; src < 3; ++src) {
    controller.ConnCreate(1, src, 3, static_cast<uint64_t>(src));
    controller.ConnCreate(2, src, 3, static_cast<uint64_t>(src) + 10);
  }
  Settle();
  const double elapsed = controller.RecomputeAllPortsTimed();
  EXPECT_GE(elapsed, 0.0);
  EXPECT_LT(elapsed, 1.0);
  EXPECT_GT(controller.stats().total_calc_wall_seconds, 0.0);
}

TEST_F(ControllerTest, ReservedQueuesCoexistWithSabaTraffic) {
  // §3: the operator reserves queues for non-Saba traffic; Saba manages the
  // rest and routes unknown SLs to the reserved queue.
  ControllerOptions options;
  options.num_pls = 4;
  options.reserved_queues = 2;
  options.reserved_queue_weight = 0.2;
  options.c_saba = 0.6;  // Operator leaves 40% of capacity for others.
  CentralizedController controller(&network_, &flow_sim_, &table_, options);
  controller.AppRegister(1, "steep");
  controller.AppRegister(2, "flat");
  controller.ConnCreate(1, 0, 1, 0);
  controller.ConnCreate(2, 2, 1, 0);
  Settle();

  const LinkId shared = network_.topology().FindLink(4, 1);
  const PortConfig& port = network_.port(shared);
  // Saba traffic lives in queues [0, 6); reserved queues are 6 and 7.
  for (int sl = 0; sl < kNumServiceLevels; ++sl) {
    const int queue = port.sl_to_queue[static_cast<size_t>(sl)];
    if (sl == controller.CurrentServiceLevel(1) || sl == controller.CurrentServiceLevel(2)) {
      EXPECT_LT(queue, 6);
    } else {
      EXPECT_EQ(queue, 6) << "non-Saba SLs must route to the first reserved queue";
    }
  }
  EXPECT_DOUBLE_EQ(port.queue_weights[6], 0.2);
  EXPECT_DOUBLE_EQ(port.queue_weights[7], 0.2);
  // The Saba queues' weights sum to C_saba (plus epsilon padding on unused).
  double saba_weight = 0;
  for (int q = 0; q < 6; ++q) {
    saba_weight += port.queue_weights[static_cast<size_t>(q)];
  }
  EXPECT_NEAR(saba_weight, 0.6, 0.01);
}

TEST_F(ControllerTest, NonSabaTrafficKeepsItsReservedShare) {
  // A latency-critical service outside Saba's control keeps its reserved
  // share even when a Saba app floods the same port.
  ControllerOptions options;
  options.num_pls = 4;
  options.reserved_queues = 1;
  options.reserved_queue_weight = 0.25;
  options.c_saba = 0.75;
  CentralizedController controller(&network_, &flow_sim_, &table_, options);
  controller.AppRegister(1, "steep");
  controller.ConnCreate(1, 0, 1, 0);
  Settle();

  // Saba app floods host1; the non-Saba service uses SL 15 (reserved).
  flow_sim_.StartFlow(1, 0, 1, Gbps(56) * 1000, controller.CurrentServiceLevel(1), 0, nullptr);
  const FlowId rpc = flow_sim_.StartFlow(99, 2, 1, Gbps(56) * 1000, 15, 0, nullptr);
  scheduler_.RunUntil(scheduler_.Now() + 0.01);
  // Reserved weight 0.25 vs Saba queue 0.75 -> the service gets ~25% of the
  // 56 Gb/s ingress.
  EXPECT_NEAR(flow_sim_.FlowRate(rpc), Gbps(56) * 0.25, Gbps(1.5));
}

TEST_F(ControllerTest, ControlPlaneLatencyDelaysReconfiguration) {
  ControllerOptions options;
  options.control_plane_latency_seconds = 0.5;
  CentralizedController controller(&network_, &flow_sim_, &table_, options);
  controller.AppRegister(1, "steep");
  controller.ConnCreate(1, 0, 1, 0);
  const LinkId first_hop = network_.topology().FindLink(0, 4);
  // Not yet applied...
  scheduler_.RunUntil(0.25);
  EXPECT_DOUBLE_EQ(controller.AppWeightAtPort(first_hop, 1), 0);
  // ...but visible after the control-plane delay.
  scheduler_.RunUntil(0.75);
  EXPECT_GT(controller.AppWeightAtPort(first_hop, 1), 0);
}

TEST_F(ControllerTest, OfflineModeWorksWithoutFlowSimulator) {
  CentralizedController controller(&network_, /*flow_sim=*/nullptr, &table_, {});
  controller.AppRegister(1, "steep");
  controller.ConnCreate(1, 0, 1, 0);  // Synchronous flush.
  const LinkId first_hop = network_.topology().FindLink(0, 4);
  EXPECT_GT(controller.AppWeightAtPort(first_hop, 1), 0);
}

}  // namespace
}  // namespace saba
