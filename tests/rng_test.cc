#include "src/sim/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace saba {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, Uniform01MeanNearHalf) {
  Rng rng(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Uniform01();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(7, 7), 7);
  }
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0;
  double sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Exponential(4.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(17);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ChoiceReturnsMember) {
  Rng rng(29);
  const std::vector<int> v = {10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int c = rng.Choice(v);
    EXPECT_TRUE(c == 10 || c == 20 || c == 30);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng forked = a.Fork();
  // The fork and the parent should not produce the same sequence.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == forked.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace saba
