#include "src/core/planner.h"

#include <gtest/gtest.h>

#include <set>

namespace saba {
namespace {

SensitivityModel Quadratic(double steepness) {
  return SensitivityModel{Polynomial({steepness + 1.0, -2.0 * steepness, steepness})};
}

SensitivityTable MakeTable() {
  SensitivityTable table;
  table.Put("steep", {Quadratic(8.0), 0.99, {}, 100});
  table.Put("medium", {Quadratic(2.0), 0.99, {}, 100});
  table.Put("flat", {Quadratic(0.2), 0.99, {}, 100});
  return table;
}

TEST(PlannerPredictTest, SingleJobIsUnharmed) {
  const SensitivityTable table = MakeTable();
  CoRunPlanner planner(&table);
  Rng rng(1);
  const CoRunPrediction p = planner.Predict({"steep"}, &rng);
  EXPECT_DOUBLE_EQ(p.saba_weights[0], 1.0);
  EXPECT_NEAR(p.saba_slowdowns[0], 1.0, 1e-9);
  EXPECT_NEAR(p.predicted_speedup, 1.0, 1e-9);
}

TEST(PlannerPredictTest, SabaNeverWorseThanEqualOnObjective) {
  const SensitivityTable table = MakeTable();
  CoRunPlanner planner(&table);
  Rng rng(2);
  const CoRunPrediction p = planner.Predict({"steep", "medium", "flat", "flat"}, &rng);
  EXPECT_LE(p.saba_average, p.equal_average + 1e-9);
  EXPECT_GE(p.predicted_speedup, 0.9);
}

TEST(PlannerPredictTest, SteepJobGetsMoreWeightAndGains) {
  const SensitivityTable table = MakeTable();
  CoRunPlanner planner(&table);
  Rng rng(3);
  const CoRunPrediction p = planner.Predict({"steep", "flat"}, &rng);
  EXPECT_GT(p.saba_weights[0], p.saba_weights[1]);
  // The steep job's predicted slowdown improves vs equal sharing...
  EXPECT_LT(p.saba_slowdowns[0], p.equal_slowdowns[0]);
  // ...at a bounded cost to the flat one.
  EXPECT_LT(p.saba_slowdowns[1] / p.equal_slowdowns[1], 1.5);
}

TEST(PlannerPredictTest, UnknownWorkloadPredictsInsensitive) {
  const SensitivityTable table = MakeTable();
  CoRunPlanner planner(&table);
  Rng rng(4);
  const CoRunPrediction p = planner.Predict({"steep", "mystery"}, &rng);
  EXPECT_NEAR(p.equal_slowdowns[1], 1.0, 1e-9);
}

TEST(PlannerPartitionTest, BalancedGroups) {
  const SensitivityTable table = MakeTable();
  CoRunPlanner planner(&table);
  Rng rng(5);
  const std::vector<std::string> mix = {"steep", "steep", "medium", "medium",
                                        "flat",  "flat",  "flat",   "flat"};
  const PartitionPlan plan = planner.Partition(mix, 2, &rng);
  ASSERT_EQ(plan.group.size(), mix.size());
  int count0 = 0;
  for (int g : plan.group) {
    ASSERT_GE(g, 0);
    ASSERT_LT(g, 2);
    count0 += g == 0 ? 1 : 0;
  }
  EXPECT_EQ(count0, 4);
}

TEST(PlannerPartitionTest, SpreadsSensitiveJobsApart) {
  // Two steep jobs and two flat ones into two groups: the optimal pairing
  // puts one steep with one flat in each group (steep jobs fight each other
  // for the same headroom).
  const SensitivityTable table = MakeTable();
  CoRunPlanner planner(&table);
  Rng rng(6);
  const PartitionPlan plan = planner.Partition({"steep", "steep", "flat", "flat"}, 2, &rng);
  EXPECT_NE(plan.group[0], plan.group[1]) << "steep jobs must be separated";
  EXPECT_NE(plan.group[2], plan.group[3]);
}

TEST(PlannerPartitionTest, CostNoWorseThanNaiveSplit) {
  const SensitivityTable table = MakeTable();
  CoRunPlanner planner(&table);
  Rng rng(7);
  const std::vector<std::string> mix = {"steep", "steep", "steep", "medium",
                                        "medium", "flat", "flat", "flat"};
  const PartitionPlan plan = planner.Partition(mix, 2, &rng);

  // Naive split: first half / second half (clusters the steep jobs).
  WeightSolver solver;
  auto group_cost = [&](const std::vector<std::string>& names) {
    std::vector<SensitivityModel> models;
    for (const auto& name : names) {
      models.push_back(table.ModelOrDefault(name));
    }
    Rng solver_rng(8);
    return solver.Solve(models, &solver_rng).objective;
  };
  const double naive = group_cost({"steep", "steep", "steep", "medium"}) +
                       group_cost({"medium", "flat", "flat", "flat"});
  EXPECT_LE(plan.total_cost, naive + 1e-9);
}

TEST(PlannerPartitionTest, SingleGroupAndDeterminism) {
  const SensitivityTable table = MakeTable();
  CoRunPlanner planner(&table);
  Rng a(9);
  Rng b(9);
  const std::vector<std::string> mix = {"steep", "medium", "flat"};
  const PartitionPlan pa = planner.Partition(mix, 1, &a);
  EXPECT_EQ(pa.group, (std::vector<int>{0, 0, 0}));
  const PartitionPlan pb = planner.Partition(mix, 2, &b);
  Rng c(9);
  const PartitionPlan pc = planner.Partition(mix, 2, &c);
  EXPECT_EQ(pb.group, pc.group);
}

}  // namespace
}  // namespace saba
