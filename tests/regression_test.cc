#include "src/numerics/regression.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/rng.h"

namespace saba {
namespace {

std::vector<Sample> SampleCurve(const Polynomial& p, const std::vector<double>& xs) {
  std::vector<Sample> samples;
  for (double x : xs) {
    samples.push_back({x, p.Evaluate(x)});
  }
  return samples;
}

// Property: fitting recovers polynomials of the exact degree from clean
// samples, across degrees (parameterized sweep).
class FitRecoveryTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FitRecoveryTest, RecoversExactPolynomial) {
  const size_t degree = GetParam();
  Rng rng(17 + degree);
  std::vector<double> coeffs;
  for (size_t i = 0; i <= degree; ++i) {
    coeffs.push_back(rng.Uniform(-5, 5));
  }
  const Polynomial truth(coeffs);
  const std::vector<double> xs = {0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0};
  const std::vector<Sample> samples = SampleCurve(truth, xs);
  const Polynomial fit = FitPolynomial(samples, degree);
  for (double x : xs) {
    EXPECT_NEAR(fit.Evaluate(x), truth.Evaluate(x), 1e-6);
  }
  EXPECT_NEAR(RSquared(fit, samples), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Degrees, FitRecoveryTest, ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u));

TEST(FitPolynomialTest, LeastSquaresBeatsLowerDegreeOnCurvedData) {
  // 1/x-like data: higher degree must fit at least as well.
  std::vector<Sample> samples;
  for (double x : {0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    samples.push_back({x, 1.0 / x});
  }
  double prev = -1;
  for (size_t k = 1; k <= 3; ++k) {
    const double r2 = RSquared(FitPolynomial(samples, k), samples);
    EXPECT_GE(r2, prev - 1e-12) << "R^2 must not decrease with degree";
    prev = r2;
  }
  EXPECT_GT(prev, 0.9);
}

TEST(FitPolynomialTest, NoisyFitStillExplainsTrend) {
  Rng rng(5);
  const Polynomial truth({4.0, -6.0, 3.0});
  std::vector<Sample> samples;
  for (double x = 0.05; x <= 1.0; x += 0.05) {
    samples.push_back({x, truth.Evaluate(x) + rng.Normal(0, 0.05)});
  }
  const Polynomial fit = FitPolynomial(samples, 2);
  EXPECT_GT(RSquared(fit, samples), 0.95);
}

TEST(RSquaredTest, PerfectModelIsOne) {
  const Polynomial p({1.0, 1.0});
  const auto samples = SampleCurve(p, {0.1, 0.5, 1.0});
  EXPECT_DOUBLE_EQ(RSquared(p, samples), 1.0);
}

TEST(RSquaredTest, MeanModelIsZero) {
  // A constant model equal to the sample mean has R^2 == 0.
  std::vector<Sample> samples = {{0.1, 1.0}, {0.5, 2.0}, {1.0, 3.0}};
  const Polynomial mean_model({2.0});
  EXPECT_NEAR(RSquared(mean_model, samples), 0.0, 1e-12);
}

TEST(RSquaredTest, WorseThanMeanIsNegativeAndClampWorks) {
  std::vector<Sample> samples = {{0.1, 1.0}, {0.5, 2.0}, {1.0, 3.0}};
  const Polynomial bad({100.0});
  EXPECT_LT(RSquared(bad, samples), 0.0);
  EXPECT_DOUBLE_EQ(RSquaredClamped(bad, samples), 0.0);
}

TEST(RSquaredTest, ConstantObservations) {
  std::vector<Sample> samples = {{0.1, 2.0}, {0.5, 2.0}, {1.0, 2.0}};
  EXPECT_DOUBLE_EQ(RSquared(Polynomial({2.0}), samples), 1.0);
  EXPECT_DOUBLE_EQ(RSquared(Polynomial({3.0}), samples), 0.0);
}

TEST(FitPolynomialTest, MinimalSampleCountExactInterpolation) {
  // degree+1 samples: the fit interpolates exactly.
  std::vector<Sample> samples = {{0.2, 5.0}, {0.6, 2.0}, {1.0, 7.0}};
  const Polynomial fit = FitPolynomial(samples, 2);
  for (const Sample& s : samples) {
    EXPECT_NEAR(fit.Evaluate(s.b), s.d, 1e-9);
  }
}

}  // namespace
}  // namespace saba
