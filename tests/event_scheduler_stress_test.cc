// Differential stress test of the slab-heap event scheduler against a
// straightforward ordered-multimap reference: random interleavings of
// schedule, cancel, and bounded runs must dispatch exactly the same events
// in exactly the same order.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/sim/event_scheduler.h"
#include "src/sim/rng.h"

namespace saba {
namespace {

class SchedulerStressTest : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerStressTest, MatchesOrderedMapReference) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 99);
  EventScheduler scheduler;

  // Reference: (time, seq) -> event id, plus a cancelled set.
  std::map<std::pair<SimTime, uint64_t>, int> reference;
  std::set<int> cancelled;
  std::vector<EventHandle> handles;
  std::vector<std::pair<SimTime, uint64_t>> keys;

  std::vector<int> fired;
  uint64_t seq = 0;
  int next_id = 0;
  SimTime horizon = 0;

  for (int round = 0; round < 60; ++round) {
    // Schedule a burst of events at random future times.
    const int burst = static_cast<int>(rng.UniformInt(1, 12));
    for (int b = 0; b < burst; ++b) {
      const SimTime when = scheduler.Now() + rng.Uniform(0.0, 10.0);
      const int id = next_id++;
      handles.push_back(
          scheduler.ScheduleAt(when, [&fired, id] { fired.push_back(id); }));
      reference.emplace(std::make_pair(when, seq), id);
      keys.emplace_back(when, seq);
      ++seq;
      horizon = std::max(horizon, when);
    }
    // Cancel a few random events (possibly already fired — must be benign).
    const int cancels = static_cast<int>(rng.UniformInt(0, 4));
    for (int c = 0; c < cancels; ++c) {
      const size_t victim =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(handles.size()) - 1));
      handles[victim].Cancel();
      cancelled.insert(static_cast<int>(victim));
    }
    // Advance a random amount.
    scheduler.RunUntil(scheduler.Now() + rng.Uniform(0.0, 6.0));
  }
  scheduler.RunUntil(horizon + 1.0);

  // Build the expected firing order from the reference. An event fires iff it
  // was never cancelled before its time came; since cancels in this test are
  // immediate and the reference has no notion of time, approximate: an event
  // counts as cancelled only if it had not fired yet at cancel time. Replay:
  // walk the reference in (time, seq) order and keep events that actually
  // fired (set comparison), then require identical order.
  std::set<int> fired_set(fired.begin(), fired.end());
  std::vector<int> expected;
  for (const auto& [key, id] : reference) {
    if (fired_set.count(id) > 0) {
      expected.push_back(id);
    }
  }
  EXPECT_EQ(fired, expected) << "dispatch order diverged from the ordered-map reference";

  // And every non-fired event must have been cancelled.
  for (const auto& [key, id] : reference) {
    if (fired_set.count(id) == 0) {
      EXPECT_TRUE(cancelled.count(id) > 0) << "event " << id << " was lost";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerStressTest, ::testing::Range(1, 13));

TEST(SchedulerStressTest, ManyCancellationsDoNotLeakSlots) {
  // Schedule and immediately cancel in a tight loop; the freelist must keep
  // slab growth bounded (regression guard for the slab allocator).
  EventScheduler scheduler;
  for (int i = 0; i < 100000; ++i) {
    EventHandle handle = scheduler.ScheduleAfter(static_cast<double>(i % 7), [] {});
    if (i % 2 == 0) {
      handle.Cancel();
    }
    if (i % 7 == 6) {
      scheduler.RunUntil(scheduler.Now() + 1.0);
    }
  }
  scheduler.Run();
  EXPECT_EQ(scheduler.PendingCount(), 0u);
  EXPECT_GT(scheduler.dispatched_count(), 40000u);
}

}  // namespace
}  // namespace saba
