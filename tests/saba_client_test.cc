#include "src/core/saba_client.h"

#include <gtest/gtest.h>

#include <vector>

namespace saba {
namespace {

// Records every controller call; returns a fixed, then updated SL.
class FakeController : public ControllerInterface {
 public:
  int AppRegister(AppId app, const std::string& workload) override {
    registered.emplace_back(app, workload);
    sls[app] = next_sl;
    return next_sl;
  }
  void ConnCreate(AppId app, NodeId src, NodeId dst, uint64_t salt) override {
    creates.push_back({app, src, dst, salt});
  }
  void ConnDestroy(AppId app, NodeId src, NodeId dst, uint64_t salt) override {
    destroys.push_back({app, src, dst, salt});
  }
  void AppDeregister(AppId app) override { deregistered.push_back(app); }
  int CurrentServiceLevel(AppId app) const override { return sls.at(app); }

  struct ConnCall {
    AppId app;
    NodeId src;
    NodeId dst;
    uint64_t salt;
  };
  std::vector<std::pair<AppId, std::string>> registered;
  std::vector<ConnCall> creates;
  std::vector<ConnCall> destroys;
  std::vector<AppId> deregistered;
  std::map<AppId, int> sls;
  int next_sl = 3;
};

TEST(SabaClientTest, ForwardsFullLifecycle) {
  FakeController controller;
  SabaClient client(&controller);

  const int sl = client.OnAppStart(7, "LR", {0, 1, 2});
  EXPECT_EQ(sl, 3);
  ASSERT_EQ(controller.registered.size(), 1u);
  EXPECT_EQ(controller.registered[0].first, 7);
  EXPECT_EQ(controller.registered[0].second, "LR");

  client.OnConnectionOpen(7, 0, 1, 42);
  ASSERT_EQ(controller.creates.size(), 1u);
  EXPECT_EQ(controller.creates[0].src, 0);
  EXPECT_EQ(controller.creates[0].dst, 1);
  EXPECT_EQ(controller.creates[0].salt, 42u);

  client.OnConnectionClose(7, 0, 1, 42);
  ASSERT_EQ(controller.destroys.size(), 1u);

  client.OnAppFinish(7);
  EXPECT_EQ(controller.deregistered, std::vector<AppId>{7});
}

TEST(SabaClientTest, ServiceLevelTracksControllerReclustering) {
  FakeController controller;
  SabaClient client(&controller);
  client.OnAppStart(7, "LR", {0, 1});
  EXPECT_EQ(client.ServiceLevelFor(7), 3);
  controller.sls[7] = 5;  // Controller re-clustered.
  EXPECT_EQ(client.ServiceLevelFor(7), 5);
}

TEST(SabaClientTest, CountsControlPlaneTraffic) {
  FakeController controller;
  SabaClient client(&controller);
  client.OnAppStart(1, "LR", {0, 1});
  client.OnConnectionOpen(1, 0, 1, 0);
  client.OnConnectionOpen(1, 1, 0, 1);
  client.OnConnectionClose(1, 0, 1, 0);
  client.OnAppFinish(1);
  EXPECT_EQ(client.stats().rpc_calls, 5u);
  EXPECT_EQ(client.stats().connections_opened, 2u);
  EXPECT_EQ(client.stats().connections_closed, 1u);
}

}  // namespace
}  // namespace saba
