#include "src/numerics/polynomial.h"

#include <gtest/gtest.h>

namespace saba {
namespace {

TEST(PolynomialTest, ZeroPolynomial) {
  Polynomial p;
  EXPECT_EQ(p.degree(), 0u);
  EXPECT_DOUBLE_EQ(p.Evaluate(3.0), 0.0);
  EXPECT_EQ(p.ToString(), "0");
}

TEST(PolynomialTest, EvaluateMatchesHorner) {
  // 2 - 3x + x^2 at x = 4: 2 - 12 + 16 = 6.
  Polynomial p({2.0, -3.0, 1.0});
  EXPECT_DOUBLE_EQ(p.Evaluate(4.0), 6.0);
  EXPECT_DOUBLE_EQ(p.Evaluate(0.0), 2.0);
}

TEST(PolynomialTest, TrailingZerosTrimmed) {
  Polynomial p({1.0, 2.0, 0.0, 0.0});
  EXPECT_EQ(p.degree(), 1u);
  EXPECT_EQ(p.coefficients().size(), 2u);
}

TEST(PolynomialTest, CoefficientBeyondDegreeIsZero) {
  Polynomial p({1.0, 2.0});
  EXPECT_DOUBLE_EQ(p.coefficient(0), 1.0);
  EXPECT_DOUBLE_EQ(p.coefficient(5), 0.0);
}

TEST(PolynomialTest, Derivative) {
  // d/dx (1 + 2x + 3x^2 + 4x^3) = 2 + 6x + 12x^2.
  Polynomial p({1.0, 2.0, 3.0, 4.0});
  Polynomial d = p.Derivative();
  EXPECT_EQ(d.degree(), 2u);
  EXPECT_DOUBLE_EQ(d.Evaluate(0.0), 2.0);
  EXPECT_DOUBLE_EQ(d.Evaluate(1.0), 20.0);
}

TEST(PolynomialTest, DerivativeOfConstantIsZero) {
  Polynomial p({5.0});
  EXPECT_DOUBLE_EQ(p.Derivative().Evaluate(2.0), 0.0);
}

TEST(PolynomialTest, SecondDerivative) {
  Polynomial p({0.0, 0.0, 0.0, 1.0});  // x^3 -> 6x.
  EXPECT_DOUBLE_EQ(p.SecondDerivativeAt(2.0), 12.0);
}

TEST(PolynomialTest, ConvexityDetection) {
  EXPECT_TRUE(Polynomial({1.0, -2.0, 1.0}).IsConvexOn(0, 1));   // x^2 - 2x + 1.
  EXPECT_FALSE(Polynomial({0.0, 0.0, -1.0}).IsConvexOn(0, 1));  // -x^2.
  // x^3 is convex on [0,1] but not on [-1,0].
  Polynomial cubic({0.0, 0.0, 0.0, 1.0});
  EXPECT_TRUE(cubic.IsConvexOn(0, 1));
  EXPECT_FALSE(cubic.IsConvexOn(-1, 0));
}

TEST(PolynomialTest, MonotonicityDetection) {
  EXPECT_TRUE(Polynomial({5.0, -1.0}).IsNonIncreasingOn(0, 1));
  EXPECT_FALSE(Polynomial({0.0, 1.0}).IsNonIncreasingOn(0, 1));
  // Constant counts as non-increasing.
  EXPECT_TRUE(Polynomial({3.0}).IsNonIncreasingOn(0, 1));
}

TEST(PolynomialTest, Arithmetic) {
  Polynomial a({1.0, 2.0});
  Polynomial b({0.0, 1.0, 3.0});
  Polynomial sum = a + b;
  EXPECT_DOUBLE_EQ(sum.Evaluate(2.0), a.Evaluate(2.0) + b.Evaluate(2.0));
  Polynomial diff = a - b;
  EXPECT_DOUBLE_EQ(diff.Evaluate(2.0), a.Evaluate(2.0) - b.Evaluate(2.0));
  Polynomial scaled = a * 3.0;
  EXPECT_DOUBLE_EQ(scaled.Evaluate(2.0), 3.0 * a.Evaluate(2.0));
}

TEST(PolynomialTest, SubtractionCancelsDegree) {
  Polynomial a({1.0, 0.0, 2.0});
  Polynomial b({0.0, 0.0, 2.0});
  EXPECT_EQ((a - b).degree(), 0u);
}

TEST(PolynomialTest, ToStringReadable) {
  EXPECT_EQ(Polynomial({2.0, -3.0}).ToString(), "2 - 3*x");
  EXPECT_EQ(Polynomial({0.0, 0.0, 1.5}).ToString(), "1.5*x^2");
}

}  // namespace
}  // namespace saba
