#include "src/net/flow_simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/sim/rng.h"

#include "src/net/allocator.h"
#include "src/net/network.h"
#include "src/net/units.h"
#include "src/sim/event_scheduler.h"

namespace saba {
namespace {

class FlowSimulatorTest : public ::testing::Test {
 protected:
  FlowSimulatorTest()
      : network_(BuildSingleSwitchStar(4, Gbps64(10)), 8),
        flow_sim_(&scheduler_, &network_, &allocator_) {}

  EventScheduler scheduler_;
  Network network_;
  WfqMaxMinAllocator allocator_;
  FlowSimulator flow_sim_;
};

TEST_F(FlowSimulatorTest, SingleFlowCompletesAtExactTime) {
  // 10 Gb over a 10 Gb/s path: exactly 1 second.
  SimTime done = -1;
  flow_sim_.StartFlow(0, 0, 1, Gbps(10), 0, 0, [&](FlowId) { done = scheduler_.Now(); });
  scheduler_.Run();
  EXPECT_NEAR(done, 1.0, 1e-9);
  EXPECT_EQ(flow_sim_.active_flow_count(), 0u);
  EXPECT_EQ(flow_sim_.completed_flow_count(), 1u);
}

TEST_F(FlowSimulatorTest, TwoCompetingFlowsSlowEachOtherDown) {
  // Both flows into host1: each gets 5 Gb/s, so 10 Gb takes 2 s.
  std::vector<SimTime> done;
  flow_sim_.StartFlow(0, 0, 1, Gbps(10), 0, 0, [&](FlowId) { done.push_back(scheduler_.Now()); });
  flow_sim_.StartFlow(1, 2, 1, Gbps(10), 0, 0, [&](FlowId) { done.push_back(scheduler_.Now()); });
  scheduler_.Run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-6);
  EXPECT_NEAR(done[1], 2.0, 1e-6);
}

TEST_F(FlowSimulatorTest, RateRisesWhenCompetitorFinishes) {
  // Flow A: 10 Gb; flow B: 5 Gb, same bottleneck. B finishes at t=1 (5 Gb at
  // 5 Gb/s); A then speeds up: 5 Gb remaining at 10 Gb/s -> t=1.5.
  SimTime a_done = -1;
  SimTime b_done = -1;
  flow_sim_.StartFlow(0, 0, 1, Gbps(10), 0, 0, [&](FlowId) { a_done = scheduler_.Now(); });
  flow_sim_.StartFlow(1, 2, 1, Gbps(5), 0, 0, [&](FlowId) { b_done = scheduler_.Now(); });
  scheduler_.Run();
  EXPECT_NEAR(b_done, 1.0, 1e-6);
  EXPECT_NEAR(a_done, 1.5, 1e-6);
}

TEST_F(FlowSimulatorTest, LateArrivalPreemptsBandwidth) {
  // A alone for 0.5 s (drains 5 Gb), then B arrives; both at 5 Gb/s.
  // A: 5 Gb left at 5 Gb/s -> done at 1.5. B: 5 Gb at 5 Gb/s -> done at 1.5.
  SimTime a_done = -1;
  SimTime b_done = -1;
  flow_sim_.StartFlow(0, 0, 1, Gbps(10), 0, 0, [&](FlowId) { a_done = scheduler_.Now(); });
  scheduler_.ScheduleAt(0.5, [&] {
    flow_sim_.StartFlow(1, 2, 1, Gbps(5), 0, 0, [&](FlowId) { b_done = scheduler_.Now(); });
  });
  scheduler_.Run();
  EXPECT_NEAR(a_done, 1.5, 1e-6);
  EXPECT_NEAR(b_done, 1.5, 1e-6);
}

TEST_F(FlowSimulatorTest, CompletionCallbackCanStartNewFlow) {
  SimTime second_done = -1;
  flow_sim_.StartFlow(0, 0, 1, Gbps(10), 0, 0, [&](FlowId) {
    flow_sim_.StartFlow(0, 1, 2, Gbps(10), 0, 0,
                        [&](FlowId) { second_done = scheduler_.Now(); });
  });
  scheduler_.Run();
  EXPECT_NEAR(second_done, 2.0, 1e-6);
}

TEST_F(FlowSimulatorTest, CancelFlowRemovesItWithoutCallback) {
  bool fired = false;
  const FlowId id = flow_sim_.StartFlow(0, 0, 1, Gbps(10), 0, 0, [&](FlowId) { fired = true; });
  scheduler_.ScheduleAt(0.25, [&] { flow_sim_.CancelFlow(id); });
  scheduler_.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(flow_sim_.active_flow_count(), 0u);
}

TEST_F(FlowSimulatorTest, FlowRateAndRemainingAreObservable) {
  const FlowId id = flow_sim_.StartFlow(0, 0, 1, Gbps(10), 0, 0, nullptr);
  scheduler_.ScheduleAt(0.5, [&] {
    EXPECT_NEAR(flow_sim_.FlowRate(id), Gbps(10), Gbps(0.001));
    EXPECT_NEAR(flow_sim_.FlowRemainingBits(id), Gbps(5), Gbps(0.01));
    EXPECT_NEAR(flow_sim_.HostEgressRate(0), Gbps(10), Gbps(0.001));
    EXPECT_NEAR(flow_sim_.HostEgressRate(2), 0.0, 1.0);
  });
  scheduler_.Run();
  EXPECT_EQ(flow_sim_.FlowRate(id), 0.0);
}

TEST_F(FlowSimulatorTest, ReallocationsAreCoalescedPerInstant) {
  // Many flows started at the same instant trigger one allocator run.
  for (int i = 0; i < 10; ++i) {
    flow_sim_.StartFlow(i, i % 3, 3, Gbps(1), 0, static_cast<uint64_t>(i), nullptr);
  }
  scheduler_.RunUntil(1e-6);
  EXPECT_EQ(flow_sim_.allocator_runs(), 1u);
  scheduler_.Run();
}

TEST_F(FlowSimulatorTest, SetAppServiceLevelRetagsFlows) {
  network_.MapSlToQueueEverywhere(2, 2);
  flow_sim_.StartFlow(7, 0, 1, Gbps(10), 0, 0, nullptr);
  scheduler_.ScheduleAt(0.1, [&] { flow_sim_.SetAppServiceLevel(7, 2); });
  scheduler_.RunUntil(0.2);
  flow_sim_.ForEachActiveFlow([](const ActiveFlow& flow) { EXPECT_EQ(flow.sl, 2); });
  scheduler_.Run();
}

TEST_F(FlowSimulatorTest, PreAllocateHookRunsBeforeEachAllocation) {
  int hook_runs = 0;
  flow_sim_.SetPreAllocateHook([&] { ++hook_runs; });
  flow_sim_.StartFlow(0, 0, 1, Gbps(10), 0, 0, nullptr);
  scheduler_.Run();
  EXPECT_GE(hook_runs, 1);
}

TEST_F(FlowSimulatorTest, ConservationOfBytes) {
  // Total simulated transfer time x rate integrates to the volume: check via
  // completion time of a batch against the aggregate capacity.
  // 4 hosts all sending 10 Gb to host 3: ingress 10 Gb/s shared by 3 flows
  // -> 30 Gb total at 10 Gb/s = 3 s.
  int completed = 0;
  SimTime last = 0;
  for (NodeId s = 0; s < 3; ++s) {
    flow_sim_.StartFlow(0, s, 3, Gbps(10), 0, 0, [&](FlowId) {
      ++completed;
      last = scheduler_.Now();
    });
  }
  scheduler_.Run();
  EXPECT_EQ(completed, 3);
  EXPECT_NEAR(last, 3.0, 1e-6);
}

TEST_F(FlowSimulatorTest, WorkConservationOverTimeOnSharedBottleneck) {
  // Random-size incast into one host with staggered arrivals: because the
  // ingress link is the single bottleneck and the allocator is work
  // conserving, the makespan must equal total_bits / capacity exactly
  // (provided arrivals never let the link idle).
  Rng rng(99);
  double total_bits = 0;
  SimTime last_done = 0;
  int remaining = 12;
  for (int f = 0; f < 12; ++f) {
    const double bits = rng.Uniform(Gbps(1), Gbps(8));
    total_bits += bits;
    const SimTime start = rng.Uniform(0.0, 0.3);  // All arrive early.
    scheduler_.ScheduleAt(start, [this, bits, f, &last_done, &remaining] {
      flow_sim_.StartFlow(f % 3, static_cast<NodeId>(f % 3), 3, bits, 0,
                          static_cast<uint64_t>(f), [&, this](FlowId) {
                            last_done = scheduler_.Now();
                            --remaining;
                          });
    });
  }
  scheduler_.Run();
  EXPECT_EQ(remaining, 0);
  // Idle time before the first arrival is at most 0.3 s; beyond that the
  // bottleneck is never idle.
  EXPECT_GT(total_bits / Gbps(10), 1.0);  // Sanity: multi-second transfer.
  EXPECT_NEAR(last_done, total_bits / Gbps(10) + 0.0, 0.31);
  EXPECT_GE(last_done, total_bits / Gbps(10) - 1e-6);
}

TEST_F(FlowSimulatorTest, QuantizedCompletionsStayCloseToExact) {
  // The same staggered workload with a coarse completion grid must produce
  // nearly identical completion times (bounded by the quantum per flow).
  auto run = [&](double quantum) {
    EventScheduler scheduler;
    Network network(BuildSingleSwitchStar(4, Gbps64(10)), 8);
    WfqMaxMinAllocator allocator;
    FlowSimulator sim(&scheduler, &network, &allocator);
    sim.SetCompletionQuantum(quantum);
    std::vector<SimTime> done(6, 0);
    for (int f = 0; f < 6; ++f) {
      scheduler.ScheduleAt(0.1 * f, [&sim, &scheduler, &done, f] {
        sim.StartFlow(f, static_cast<NodeId>(f % 3), 3, Gbps(4), 0,
                      static_cast<uint64_t>(f),
                      [&done, &scheduler, f](FlowId) { done[static_cast<size_t>(f)] =
                                                           scheduler.Now(); });
      });
    }
    scheduler.Run();
    return done;
  };
  const auto exact = run(0.0);
  const auto coarse = run(0.25);
  for (size_t f = 0; f < exact.size(); ++f) {
    EXPECT_GE(coarse[f], exact[f] - 1e-9);
    EXPECT_LE(coarse[f], exact[f] + 0.6);  // A couple of grid steps at most.
  }
}

TEST_F(FlowSimulatorTest, ZeroRateFlowsDoNotDeadlockOthers) {
  // Strict priority: the low-priority flow has rate 0 while the high one
  // runs, then completes afterwards.
  StrictPriorityAllocator strict;
  FlowSimulator sim(&scheduler_, &network_, &strict);
  SimTime low_done = -1;
  const FlowId high = sim.StartFlow(0, 0, 1, Gbps(10), 0, 0, nullptr);
  const FlowId low = sim.StartFlow(1, 2, 1, Gbps(10), 0, 0,
                                   [&](FlowId) { low_done = scheduler_.Now(); });
  sim.SetFlowPriority(high, 0);
  sim.SetFlowPriority(low, 1);
  scheduler_.Run();
  EXPECT_NEAR(low_done, 2.0, 1e-6);
}

// --- Failure handling on a fat-tree ------------------------------------------

class FatTreeFailureTest : public ::testing::Test {
 protected:
  static FatTreeParams TenGigFatTree() {
    FatTreeParams params;
    params.k = 4;
    params.host_link_bps = params.edge_agg_bps = params.agg_core_bps = Gbps64(10);
    return params;
  }

  FatTreeFailureTest()
      : network_(BuildFatTree(TenGigFatTree()), 8),
        flow_sim_(&scheduler_, &network_, &allocator_) {}

  EventScheduler scheduler_;
  Network network_;
  WfqMaxMinAllocator allocator_;
  FlowSimulator flow_sim_;
};

TEST_F(FatTreeFailureTest, MidFlowLinkFailureReroutesAndCompletes) {
  // 20 Gb between pods at 10 Gb/s: 2 s on a healthy fabric. Mid-transfer the
  // edge->agg hop of the pinned path fails; the equal-cost detour has the
  // same length and capacity, so the completion time is unchanged.
  constexpr uint64_t kSalt = 3;
  const std::vector<LinkId> path = network_.router().Route(0, 15, kSalt);
  ASSERT_EQ(path.size(), 6u);
  const LinkId broken = path[1];

  SimTime done = -1;
  flow_sim_.StartFlow(0, 0, 15, Gbps(20), 0, kSalt, [&](FlowId) { done = scheduler_.Now(); });
  scheduler_.ScheduleAt(0.5, [&] {
    network_.topology().SetLinkUp(broken, false);
    flow_sim_.HandleTopologyChange();
  });
  scheduler_.Run();
  EXPECT_NEAR(done, 2.0, 1e-6);
  EXPECT_EQ(flow_sim_.rerouted_flow_count(), 1u);
  EXPECT_EQ(flow_sim_.completed_flow_count(), 1u);
}

TEST_F(FatTreeFailureTest, UnrelatedFailureAndRestoreNeverMovePinnedFlows) {
  constexpr uint64_t kSalt = 3;
  const std::vector<LinkId> path = network_.router().Route(0, 15, kSalt);
  // A switch-to-switch link NOT on the flow's path (paths never repeat a
  // link, and host links are excluded so reachability is untouched).
  LinkId unrelated = kInvalidLink;
  const Topology& topo = network_.topology();
  for (size_t l = 0; l < topo.num_links(); ++l) {
    const LinkId id = static_cast<LinkId>(l);
    if (IsSwitch(topo.node(topo.link(id).src).kind) &&
        IsSwitch(topo.node(topo.link(id).dst).kind) &&
        std::find(path.begin(), path.end(), id) == path.end()) {
      unrelated = id;
      break;
    }
  }
  ASSERT_NE(unrelated, kInvalidLink);

  SimTime done = -1;
  flow_sim_.StartFlow(0, 0, 15, Gbps(20), 0, kSalt, [&](FlowId) { done = scheduler_.Now(); });
  scheduler_.ScheduleAt(0.25, [&] {
    network_.topology().SetLinkUp(unrelated, false);
    flow_sim_.HandleTopologyChange();
  });
  scheduler_.ScheduleAt(0.75, [&] {
    // Restore: pinned flows must not move even though the link rejoins ECMP.
    network_.topology().SetLinkUp(unrelated, true);
    flow_sim_.HandleTopologyChange();
  });
  scheduler_.Run();
  EXPECT_NEAR(done, 2.0, 1e-6);
  EXPECT_EQ(flow_sim_.rerouted_flow_count(), 0u);
}

TEST_F(FatTreeFailureTest, DegradedLinkSlowsTheFlowWithoutRerouting) {
  // 10 Gb at 10 Gb/s; at t=0.25 a path link degrades to 5 Gb/s. 2.5 Gb have
  // drained, the remaining 7.5 Gb take 1.5 s: completion at 1.75 s.
  constexpr uint64_t kSalt = 7;
  const std::vector<LinkId> path = network_.router().Route(0, 15, kSalt);
  const LinkId degraded = path[2];

  SimTime done = -1;
  flow_sim_.StartFlow(0, 0, 15, Gbps(10), 0, kSalt, [&](FlowId) { done = scheduler_.Now(); });
  scheduler_.ScheduleAt(0.25, [&] {
    network_.topology().SetLinkCapacity(degraded, Gbps64(5));
    flow_sim_.NotifyLinkChanged(degraded);
  });
  scheduler_.Run();
  EXPECT_NEAR(done, 1.75, 1e-6);
  EXPECT_EQ(flow_sim_.rerouted_flow_count(), 0u);
}

}  // namespace
}  // namespace saba
