#include "src/baselines/homa_policy.h"

#include <gtest/gtest.h>

#include "src/net/units.h"
#include "src/sim/event_scheduler.h"

namespace saba {
namespace {

class HomaTest : public ::testing::Test {
 protected:
  HomaTest()
      : network_(BuildSingleSwitchStar(4, Gbps64(10)), 8),
        flow_sim_(&scheduler_, &network_, &allocator_) {}

  EventScheduler scheduler_;
  Network network_;
  StrictPriorityAllocator allocator_;
  FlowSimulator flow_sim_;
};

TEST_F(HomaTest, PriorityClassesOrderedBySize) {
  HomaScheduler homa(&flow_sim_, {.num_priorities = 8, .cutoff_bits = Kilobytes(10)});
  // Larger remaining size -> numerically larger (worse) class.
  EXPECT_LE(homa.PriorityFor(Bytes(100)), homa.PriorityFor(Kilobytes(1)));
  EXPECT_LE(homa.PriorityFor(Kilobytes(1)), homa.PriorityFor(Kilobytes(8)));
  EXPECT_LT(homa.PriorityFor(Kilobytes(8)), homa.PriorityFor(Kilobytes(20)));
}

TEST_F(HomaTest, AllLargeFlowsShareBottomClass) {
  // The paper's point: every flow beyond the cutoff lands in one queue.
  HomaScheduler homa(&flow_sim_, {.num_priorities = 8, .cutoff_bits = Kilobytes(10)});
  EXPECT_EQ(homa.PriorityFor(Kilobytes(11)), 7);
  EXPECT_EQ(homa.PriorityFor(Megabytes(100)), 7);
  EXPECT_EQ(homa.PriorityFor(Gigabytes(5)), 7);
}

TEST_F(HomaTest, TinyFlowsGetTopClass) {
  HomaScheduler homa(&flow_sim_, {.num_priorities = 8, .cutoff_bits = Kilobytes(10)});
  EXPECT_EQ(homa.PriorityFor(Bytes(10)), 0);
}

TEST_F(HomaTest, ShortMessageFinishesAheadOfBulkTransfer) {
  HomaScheduler homa(&flow_sim_, {.num_priorities = 8, .cutoff_bits = Kilobytes(10)});
  SimTime short_done = -1;
  SimTime bulk_done = -1;
  // Bulk transfer hogging host1 ingress.
  flow_sim_.StartFlow(0, 0, 1, Gigabytes(1), 0, 0,
                      [&](FlowId) { bulk_done = scheduler_.Now(); });
  // Short message on the same bottleneck, arriving slightly later.
  scheduler_.ScheduleAt(0.1, [&] {
    flow_sim_.StartFlow(1, 2, 1, Kilobytes(5), 0, 0,
                        [&](FlowId) { short_done = scheduler_.Now(); });
  });
  scheduler_.Run();
  EXPECT_GT(short_done, 0);
  EXPECT_GT(bulk_done, 0);
  // The short message preempts: it finishes almost immediately, the bulk
  // flow pays (nearly) no extra time.
  EXPECT_LT(short_done, 0.11);
  EXPECT_LT(bulk_done, 0.81);
  EXPECT_GT(bulk_done, 0.79);
}

TEST_F(HomaTest, EqualSizedBulkFlowsShareFairly) {
  HomaScheduler homa(&flow_sim_, {});
  SimTime a_done = -1;
  SimTime b_done = -1;
  flow_sim_.StartFlow(0, 0, 1, Gbps(10), 0, 0, [&](FlowId) { a_done = scheduler_.Now(); });
  flow_sim_.StartFlow(1, 2, 1, Gbps(10), 0, 0, [&](FlowId) { b_done = scheduler_.Now(); });
  scheduler_.Run();
  // Same class -> max-min within the class -> both ~2 s.
  EXPECT_NEAR(a_done, 2.0, 0.05);
  EXPECT_NEAR(b_done, 2.0, 0.05);
}

TEST_F(HomaTest, PrioritiesRefreshAsFlowsDrain) {
  // A flow that starts above the cutoff ends below it and gains priority.
  HomaScheduler homa(&flow_sim_, {.num_priorities = 8, .cutoff_bits = Kilobytes(10)});
  const FlowId id = flow_sim_.StartFlow(0, 0, 1, Kilobytes(12), 0, 0, nullptr);
  scheduler_.RunUntil(1e-7);
  int initial = -1;
  flow_sim_.ForEachActiveFlow([&](const ActiveFlow& flow) {
    if (flow.id == id) {
      initial = flow.priority;
    }
  });
  EXPECT_EQ(initial, 7);
  // Drain most of it, then force a refresh via a new flow elsewhere.
  scheduler_.RunUntil(Kilobytes(11) / Gbps(10));
  flow_sim_.StartFlow(1, 2, 3, Kilobytes(1), 0, 0, nullptr);
  scheduler_.RunUntil(scheduler_.Now() + 1e-7);
  flow_sim_.ForEachActiveFlow([&](const ActiveFlow& flow) {
    if (flow.id == id) {
      EXPECT_LT(flow.priority, 7);
    }
  });
  scheduler_.Run();
}

}  // namespace
}  // namespace saba
