#include "src/exp/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace saba {
namespace {

TEST(FmtTest, FixedPrecision) {
  EXPECT_EQ(Fmt(1.884, 2), "1.88");
  EXPECT_EQ(Fmt(1.885, 1), "1.9");
  EXPECT_EQ(Fmt(3.0, 0), "3");
  EXPECT_EQ(Fmt(-0.25, 2), "-0.25");
}

TEST(TablePrinterTest, AlignsColumnsAndSeparatesHeader) {
  TablePrinter table({"Name", "Value"});
  table.AddRow({"short", "1"});
  table.AddRow({"a-much-longer-name", "2.50"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();

  // Header present, separator line present, rows present.
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);

  // Every line has the same "Value" column start: check the header and the
  // long row align on the second column.
  std::istringstream lines(out);
  std::string header;
  std::getline(lines, header);
  const size_t value_col = header.find("Value");
  std::string sep;
  std::getline(lines, sep);
  std::string row1;
  std::getline(lines, row1);
  std::string row2;
  std::getline(lines, row2);
  EXPECT_EQ(row1.find('1'), value_col);
  EXPECT_EQ(row2.find("2.50"), value_col);
}

TEST(TablePrinterTest, EmptyTablePrintsHeaderOnly) {
  TablePrinter table({"A", "B"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find('A'), std::string::npos);
}

TEST(PrintBannerTest, ContainsNameDescriptionAndSeed) {
  std::ostringstream os;
  PrintBanner(os, "Figure 42", "An experiment.", 1234);
  EXPECT_NE(os.str().find("Figure 42"), std::string::npos);
  EXPECT_NE(os.str().find("An experiment."), std::string::npos);
  EXPECT_NE(os.str().find("1234"), std::string::npos);
}

}  // namespace
}  // namespace saba
