#include "src/numerics/simplex_optimizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace saba {
namespace {

double Sum(const std::vector<double>& v) { return std::accumulate(v.begin(), v.end(), 0.0); }

TEST(ProjectionTest, FeasiblePointUnchanged) {
  SimplexConstraints c{.capacity = 1.0, .lower_bound = 0.0, .upper_bound = 1.0};
  const std::vector<double> w = ProjectToCapacitySimplex({0.3, 0.7}, c);
  EXPECT_NEAR(w[0], 0.3, 1e-9);
  EXPECT_NEAR(w[1], 0.7, 1e-9);
}

TEST(ProjectionTest, SumConstraintHolds) {
  SimplexConstraints c{.capacity = 1.0, .lower_bound = 0.05, .upper_bound = 1.0};
  const std::vector<double> w = ProjectToCapacitySimplex({10.0, -5.0, 0.2, 0.0}, c);
  EXPECT_NEAR(Sum(w), 1.0, 1e-9);
  for (double x : w) {
    EXPECT_GE(x, 0.05 - 1e-12);
    EXPECT_LE(x, 1.0 + 1e-12);
  }
}

TEST(ProjectionTest, PreservesOrdering) {
  // Projection onto the simplex preserves the order of coordinates.
  SimplexConstraints c{.capacity = 1.0, .lower_bound = 0.0, .upper_bound = 1.0};
  const std::vector<double> w = ProjectToCapacitySimplex({0.9, 0.6, 0.3, 0.1}, c);
  for (size_t i = 1; i < w.size(); ++i) {
    EXPECT_LE(w[i], w[i - 1] + 1e-9);
  }
}

TEST(ProjectionTest, TightBoundsForceEqualSplit) {
  SimplexConstraints c{.capacity = 1.0, .lower_bound = 0.25, .upper_bound = 0.25};
  const std::vector<double> w = ProjectToCapacitySimplex({0.9, 0.0, 0.5, 0.2}, c);
  for (double x : w) {
    EXPECT_NEAR(x, 0.25, 1e-9);
  }
}

// Quadratic bowls with distinct minima: the constrained optimum is known in
// closed form via KKT.
ScalarObjective Quadratic(double center, double curvature) {
  return {[center, curvature](double w) { return curvature * (w - center) * (w - center); },
          [center, curvature](double w) { return 2 * curvature * (w - center); }};
}

TEST(ConvexSolverTest, EqualBowlsSplitEqually) {
  std::vector<ScalarObjective> objectives = {Quadratic(1.0, 1.0), Quadratic(1.0, 1.0)};
  SimplexConstraints c{.capacity = 1.0, .lower_bound = 0.0, .upper_bound = 1.0};
  const auto result = MinimizeConvexSeparable(objectives, c);
  EXPECT_NEAR(result.weights[0], 0.5, 1e-6);
  EXPECT_NEAR(result.weights[1], 0.5, 1e-6);
}

TEST(ConvexSolverTest, SteeperBowlGetsCloserToItsCenter) {
  // min k1(w1-1)^2 + k2(w2-1)^2, w1+w2=1 -> wi deviates inversely to ki.
  std::vector<ScalarObjective> objectives = {Quadratic(1.0, 4.0), Quadratic(1.0, 1.0)};
  SimplexConstraints c{.capacity = 1.0, .lower_bound = 0.0, .upper_bound = 1.0};
  const auto result = MinimizeConvexSeparable(objectives, c);
  // KKT: 8(w1-1) = 2(w2-1) with w1+w2 = 1 -> w1 = 0.8, w2 = 0.2.
  EXPECT_NEAR(result.weights[0], 0.8, 1e-6);
  EXPECT_NEAR(result.weights[1], 0.2, 1e-6);
}

TEST(ConvexSolverTest, RespectsLowerBounds) {
  std::vector<ScalarObjective> objectives = {Quadratic(1.0, 100.0), Quadratic(0.0, 1.0)};
  SimplexConstraints c{.capacity = 1.0, .lower_bound = 0.2, .upper_bound = 1.0};
  const auto result = MinimizeConvexSeparable(objectives, c);
  EXPECT_GE(result.weights[1], 0.2 - 1e-9);
  EXPECT_NEAR(Sum(result.weights), 1.0, 1e-9);
}

TEST(ProjectedGradientTest, MatchesConvexSolverOnConvexProblem) {
  std::vector<ScalarObjective> objectives = {Quadratic(1.0, 4.0), Quadratic(1.0, 1.0),
                                             Quadratic(0.5, 2.0)};
  SimplexConstraints c{.capacity = 1.0, .lower_bound = 0.01, .upper_bound = 1.0};
  const auto exact = MinimizeConvexSeparable(objectives, c);
  Rng rng(3);
  const auto pg = MinimizeSeparableProjectedGradient(objectives, c, &rng);
  EXPECT_NEAR(pg.objective, exact.objective, 1e-3);
  EXPECT_NEAR(Sum(pg.weights), 1.0, 1e-6);
}

TEST(ProjectedGradientTest, HandlesNonConvexObjective) {
  // One objective has a local bump; multi-start should still find a solution
  // no worse than the equal split.
  ScalarObjective bumpy = {
      [](double w) { return std::cos(6.0 * w) + 2.0 * (1.0 - w); },
      [](double w) { return -6.0 * std::sin(6.0 * w) - 2.0; }};
  std::vector<ScalarObjective> objectives = {bumpy, Quadratic(0.2, 1.0)};
  SimplexConstraints c{.capacity = 1.0, .lower_bound = 0.05, .upper_bound = 1.0};
  Rng rng(7);
  const auto result = MinimizeSeparableProjectedGradient(objectives, c, &rng);
  const double equal_split =
      objectives[0].value(0.5) + objectives[1].value(0.5);
  EXPECT_LE(result.objective, equal_split + 1e-9);
  EXPECT_NEAR(Sum(result.weights), 1.0, 1e-6);
}

TEST(ProjectedGradientTest, DeterministicGivenSeed) {
  std::vector<ScalarObjective> objectives = {Quadratic(0.8, 3.0), Quadratic(0.3, 1.0)};
  SimplexConstraints c{.capacity = 1.0, .lower_bound = 0.0, .upper_bound = 1.0};
  Rng a(11);
  Rng b(11);
  const auto ra = MinimizeSeparableProjectedGradient(objectives, c, &a);
  const auto rb = MinimizeSeparableProjectedGradient(objectives, c, &b);
  EXPECT_EQ(ra.weights, rb.weights);
}

// Property sweep: for random convex quadratics the dual solver's output
// satisfies the KKT conditions (equal marginal derivatives away from bounds).
class KktPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(KktPropertyTest, MarginalsEqualAtInteriorOptimum) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const size_t n = static_cast<size_t>(rng.UniformInt(2, 8));
  std::vector<ScalarObjective> objectives;
  std::vector<std::pair<double, double>> params;
  for (size_t i = 0; i < n; ++i) {
    const double center = rng.Uniform(0.5, 2.0);  // Minima beyond capacity keep things active.
    const double curvature = rng.Uniform(0.5, 5.0);
    params.emplace_back(center, curvature);
    objectives.push_back(Quadratic(center, curvature));
  }
  SimplexConstraints c{.capacity = 1.0, .lower_bound = 0.01, .upper_bound = 1.0};
  const auto result = MinimizeConvexSeparable(objectives, c);
  EXPECT_NEAR(Sum(result.weights), 1.0, 1e-6);
  // Collect marginals of coordinates strictly inside the box.
  std::vector<double> marginals;
  for (size_t i = 0; i < n; ++i) {
    const double w = result.weights[i];
    if (w > 0.011 && w < 0.999) {
      marginals.push_back(objectives[i].derivative(w));
    }
  }
  for (size_t i = 1; i < marginals.size(); ++i) {
    EXPECT_NEAR(marginals[i], marginals[0], 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KktPropertyTest, ::testing::Range(1, 16));

}  // namespace
}  // namespace saba
