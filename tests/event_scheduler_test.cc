#include "src/sim/event_scheduler.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/sim_time.h"

namespace saba {
namespace {

TEST(EventSchedulerTest, StartsAtTimeZero) {
  EventScheduler sched;
  EXPECT_EQ(sched.Now(), 0.0);
}

TEST(EventSchedulerTest, DispatchesInTimeOrder) {
  EventScheduler sched;
  std::vector<int> order;
  sched.ScheduleAt(3.0, [&] { order.push_back(3); });
  sched.ScheduleAt(1.0, [&] { order.push_back(1); });
  sched.ScheduleAt(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sched.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.Now(), 3.0);
}

TEST(EventSchedulerTest, SameTimeEventsAreFifo) {
  EventScheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  sched.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventSchedulerTest, EventsCanScheduleMoreEvents) {
  EventScheduler sched;
  int fired = 0;
  sched.ScheduleAt(1.0, [&] {
    ++fired;
    sched.ScheduleAfter(1.0, [&] { ++fired; });
  });
  sched.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sched.Now(), 2.0);
}

TEST(EventSchedulerTest, SchedulingAtNowRunsAfterEarlierSameTimeEvents) {
  EventScheduler sched;
  std::vector<int> order;
  sched.ScheduleAt(1.0, [&] {
    order.push_back(1);
    sched.ScheduleAt(sched.Now(), [&] { order.push_back(3); });
  });
  sched.ScheduleAt(1.0, [&] { order.push_back(2); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventSchedulerTest, CancelPreventsDispatch) {
  EventScheduler sched;
  int fired = 0;
  EventHandle handle = sched.ScheduleAt(1.0, [&] { ++fired; });
  EXPECT_TRUE(handle.pending());
  handle.Cancel();
  EXPECT_FALSE(handle.pending());
  EXPECT_EQ(sched.Run(), 0u);
  EXPECT_EQ(fired, 0);
}

TEST(EventSchedulerTest, CancelIsIdempotentAndSafeOnDefaultHandle) {
  EventScheduler sched;
  EventHandle empty;
  empty.Cancel();  // Must not crash.
  EXPECT_FALSE(empty.pending());
  EventHandle handle = sched.ScheduleAt(1.0, [] {});
  handle.Cancel();
  handle.Cancel();
  sched.Run();
}

TEST(EventSchedulerTest, HandleNotPendingAfterFire) {
  EventScheduler sched;
  EventHandle handle = sched.ScheduleAt(1.0, [] {});
  sched.Run();
  EXPECT_FALSE(handle.pending());
}

TEST(EventSchedulerTest, RunUntilStopsAtDeadline) {
  EventScheduler sched;
  std::vector<int> order;
  sched.ScheduleAt(1.0, [&] { order.push_back(1); });
  sched.ScheduleAt(5.0, [&] { order.push_back(5); });
  EXPECT_EQ(sched.RunUntil(3.0), 1u);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sched.Now(), 3.0);
  EXPECT_EQ(sched.Run(), 1u);
  EXPECT_EQ(sched.Now(), 5.0);
}

TEST(EventSchedulerTest, RunUntilWithCancelledHeadDoesNotStall) {
  EventScheduler sched;
  EventHandle handle = sched.ScheduleAt(1.0, [] {});
  int fired = 0;
  sched.ScheduleAt(2.0, [&] { ++fired; });
  handle.Cancel();
  EXPECT_EQ(sched.RunUntil(10.0), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(EventSchedulerTest, StepRunsExactlyOneEvent) {
  EventScheduler sched;
  int fired = 0;
  sched.ScheduleAt(1.0, [&] { ++fired; });
  sched.ScheduleAt(2.0, [&] { ++fired; });
  EXPECT_TRUE(sched.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sched.Step());
  EXPECT_FALSE(sched.Step());
  EXPECT_EQ(fired, 2);
}

TEST(EventSchedulerTest, PendingCountExcludesCancelled) {
  EventScheduler sched;
  EventHandle a = sched.ScheduleAt(1.0, [] {});
  sched.ScheduleAt(2.0, [] {});
  EXPECT_EQ(sched.PendingCount(), 2u);
  a.Cancel();
  EXPECT_EQ(sched.PendingCount(), 1u);
}

TEST(EventSchedulerTest, DispatchedCountAccumulates) {
  EventScheduler sched;
  for (int i = 0; i < 5; ++i) {
    sched.ScheduleAt(static_cast<double>(i), [] {});
  }
  sched.Run();
  EXPECT_EQ(sched.dispatched_count(), 5u);
}

TEST(SimTimeTest, AlmostEqualRespectsEpsilonAndInfinity) {
  EXPECT_TRUE(TimeAlmostEqual(1.0, 1.0 + 1e-10));
  EXPECT_FALSE(TimeAlmostEqual(1.0, 1.0 + 1e-6));
  EXPECT_TRUE(TimeAlmostEqual(kNeverTime, kNeverTime));
  EXPECT_FALSE(TimeAlmostEqual(kNeverTime, 1.0));
}

TEST(SimTimeTest, UnitHelpers) {
  EXPECT_DOUBLE_EQ(Seconds(2.0), 2.0);
  EXPECT_DOUBLE_EQ(Milliseconds(1500.0), 1.5);
  EXPECT_DOUBLE_EQ(Microseconds(1e6), 1.0);
}

}  // namespace
}  // namespace saba
