#include "src/net/units.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace saba {
namespace {

// The fixed-point rate literals must round-trip the values every scenario in
// the repo configures. One unit is one bit/s, so anything specified to sub-bps
// precision or coarser converts exactly.
TEST(UnitsTest, RateLiteralsRoundTrip) {
  EXPECT_EQ(Gbps64(56), INT64_C(56'000'000'000));
  EXPECT_EQ(Gbps64(1), INT64_C(1'000'000'000));
  EXPECT_EQ(Gbps64(12.5), INT64_C(12'500'000'000));
  EXPECT_EQ(Mbps64(100), INT64_C(100'000'000));
  EXPECT_EQ(Mbps64(0.25), INT64_C(250'000));
  EXPECT_EQ(Kbps64(8), INT64_C(8'000));
  EXPECT_EQ(Bps64Of(1000), INT64_C(1000));
  // Fixed-point and continuous literals agree wherever both are exact.
  EXPECT_EQ(BpsToDouble(Gbps64(56)), Gbps(56));
  EXPECT_EQ(BpsToDouble(Mbps64(10)), Mbps(10));
}

// Golden table pinning the rounding policy: nearest, ties away from zero.
// Changing RoundBps changes every allocated rate in the repo; this table is
// the tripwire.
TEST(UnitsTest, RoundingGoldenTable) {
  struct Case {
    double in;
    Bps64 out;
  };
  const Case kCases[] = {
      {0.0, 0},
      {0.49, 0},
      {0.5, 1},        // Tie rounds away from zero.
      {0.51, 1},
      {1.49, 1},
      {1.5, 2},
      {2.5, 3},        // Away from zero, not to-even.
      {-0.49, 0},
      {-0.5, -1},      // Negative tie rounds away from zero.
      {-2.5, -3},
      {1e9 + 0.25, 1'000'000'000},
      {1e9 + 0.75, 1'000'000'001},
      {-1e9 - 0.75, -1'000'000'001},
  };
  for (const Case& c : kCases) {
    EXPECT_EQ(RoundBps(c.in), c.out) << "RoundBps(" << c.in << ")";
  }
}

// Sub-bps remainders vanish: any magnitude below half a unit is zero, and a
// rate a hair above n.5 lands on n+1.
TEST(UnitsTest, SubBpsRemainders) {
  EXPECT_EQ(RoundBps(1e-12), 0);
  EXPECT_EQ(RoundBps(-1e-12), 0);
  EXPECT_EQ(RoundBps(0.499999999), 0);
  EXPECT_EQ(RoundBps(0.500000001), 1);
}

TEST(UnitsTest, SaturatesAtInt64Limits) {
  EXPECT_EQ(RoundBps(1e300), kBps64Max);
  EXPECT_EQ(RoundBps(-1e300), kBps64Min);
  EXPECT_EQ(RoundBps(kBps64SaturationThreshold), kBps64Max);
  EXPECT_EQ(RoundBps(-kBps64SaturationThreshold), kBps64Min);
  // The largest double below the threshold converts without saturating.
  const double below = 9223372036854774784.0 * (1.0 - 1e-16);
  EXPECT_LT(RoundBps(below), kBps64Max);
  EXPECT_GT(RoundBps(below), 0);
  // Infinity saturates like any oversized magnitude.
  EXPECT_EQ(RoundBps(std::numeric_limits<double>::infinity()), kBps64Max);
  EXPECT_EQ(RoundBps(-std::numeric_limits<double>::infinity()), kBps64Min);
}

// Weight quantization: every weight configured anywhere in the repo must keep
// its exact ratio structure on the 2^20 grid.
TEST(UnitsTest, WeightUnitsGrid) {
  EXPECT_EQ(WeightUnits(1.0), kWeightScale);
  EXPECT_EQ(WeightUnits(2.0), 2 * kWeightScale);
  EXPECT_EQ(WeightUnits(0.5), kWeightScale / 2);
  EXPECT_EQ(WeightUnits(0.0625), kWeightScale / 16);  // Dyadic: exact.
  EXPECT_EQ(WeightUnits(3.0), 3 * kWeightScale);
  // Non-dyadic weights land within half a grid step (relative error < 1e-6).
  EXPECT_NEAR(static_cast<double>(WeightUnits(0.15)),
              0.15 * static_cast<double>(kWeightScale), 0.5);
  // A positive weight never quantizes to zero.
  EXPECT_EQ(WeightUnits(1e-12), 1);
  // The largest admissible weight fits the documented 2^40 bound.
  EXPECT_EQ(WeightUnits(static_cast<double>(kWeightScale)),
            static_cast<int64_t>(kWeightScale) * kWeightScale);
}

TEST(UnitsTest, VolumeHelpers) {
  EXPECT_DOUBLE_EQ(Bytes(1), 8.0);
  EXPECT_DOUBLE_EQ(Kilobytes(64), 512'000.0);
  EXPECT_DOUBLE_EQ(Megabytes(1), 8e6);
  EXPECT_DOUBLE_EQ(Gigabytes(2), 1.6e10);
}

}  // namespace
}  // namespace saba
