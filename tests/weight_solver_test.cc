#include "src/core/weight_solver.h"

#include <gtest/gtest.h>

#include <numeric>

namespace saba {
namespace {

double Sum(const std::vector<double>& v) { return std::accumulate(v.begin(), v.end(), 0.0); }

// Convex decreasing quadratic: D(b) = a - 2ab + ab^2 + 1 (min 1 at b=1).
SensitivityModel QuadraticModel(double steepness) {
  return SensitivityModel{Polynomial({steepness + 1.0, -2.0 * steepness, steepness})};
}

TEST(WeightSolverTest, SingleAppGetsEverything) {
  WeightSolver solver;
  Rng rng(1);
  const auto result = solver.Solve({QuadraticModel(3.0)}, &rng);
  ASSERT_EQ(result.weights.size(), 1u);
  EXPECT_DOUBLE_EQ(result.weights[0], 1.0);
}

TEST(WeightSolverTest, WeightsSumToCapacity) {
  WeightSolver solver;
  Rng rng(2);
  const auto result =
      solver.Solve({QuadraticModel(5.0), QuadraticModel(1.0), QuadraticModel(0.2)}, &rng);
  EXPECT_NEAR(Sum(result.weights), 1.0, 1e-9);
  EXPECT_TRUE(result.used_convex_path);
}

TEST(WeightSolverTest, SteeperModelGetsMoreBandwidth) {
  WeightSolver solver;
  Rng rng(3);
  const auto result = solver.Solve({QuadraticModel(8.0), QuadraticModel(0.5)}, &rng);
  EXPECT_GT(result.weights[0], result.weights[1]);
  EXPECT_GT(result.weights[0], 0.55);
}

TEST(WeightSolverTest, EqualModelsSplitEqually) {
  WeightSolver solver;
  Rng rng(4);
  const auto result =
      solver.Solve({QuadraticModel(2.0), QuadraticModel(2.0), QuadraticModel(2.0),
                    QuadraticModel(2.0)},
                   &rng);
  for (double w : result.weights) {
    EXPECT_NEAR(w, 0.25, 1e-6);
  }
}

TEST(WeightSolverTest, RelativeFloorGuaranteesMinimumShare) {
  WeightSolverOptions options;
  options.relative_min_weight = 0.75;
  WeightSolver solver(options);
  Rng rng(5);
  // One extremely steep model against three flat ones: the flat ones keep
  // 75% of their equal share.
  const auto result = solver.Solve(
      {QuadraticModel(50.0), SensitivityModel(), SensitivityModel(), SensitivityModel()}, &rng);
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_GE(result.weights[i], 0.75 * 0.25 - 1e-9);
  }
  EXPECT_NEAR(Sum(result.weights), 1.0, 1e-9);
  EXPECT_GT(result.weights[0], 0.25);
}

TEST(WeightSolverTest, ManyAppsFloorStaysFeasible) {
  WeightSolverOptions options;
  options.relative_min_weight = 0.75;
  options.min_weight = 0.01;
  WeightSolver solver(options);
  Rng rng(6);
  std::vector<SensitivityModel> models(200, QuadraticModel(1.0));
  const auto result = solver.Solve(models, &rng);
  EXPECT_NEAR(Sum(result.weights), 1.0, 1e-6);
  for (double w : result.weights) {
    EXPECT_GT(w, 0);
  }
}

TEST(WeightSolverTest, CubicModelsUseConvexFastPath) {
  // Cubic, convex on [0,1]: D(b) = 8 - 18b + 15b^2 - 4b^3 (D'' = 30 - 24b > 0).
  SensitivityModel cubic{Polynomial({8.0, -18.0, 15.0, -4.0})};
  WeightSolverOptions options;
  options.relative_min_weight = 0.02;  // Leave the optimum interior.
  WeightSolver solver(options);
  Rng rng(7);
  const auto result = solver.Solve({cubic, QuadraticModel(1.0)}, &rng);
  EXPECT_TRUE(result.used_convex_path);
  EXPECT_NEAR(Sum(result.weights), 1.0, 1e-9);
  // KKT sanity: marginal slowdowns are equal at an interior optimum.
  const double m0 = cubic.polynomial().Derivative().Evaluate(result.weights[0]);
  const double m1 =
      QuadraticModel(1.0).polynomial().Derivative().Evaluate(result.weights[1]);
  if (result.weights[0] > 0.2 && result.weights[1] > 0.2) {
    EXPECT_NEAR(m0, m1, 1e-4);
  }
}

TEST(WeightSolverTest, NonConvexModelFallsBackToProjectedGradient) {
  // Concave-then-convex quartic is non-convex near zero; a small weight
  // floor keeps the non-convex region inside the feasible box.
  SensitivityModel wavy{Polynomial({3.0, -2.0, -6.0, 8.0, -2.0})};
  WeightSolverOptions options;
  options.relative_min_weight = 0.02;
  WeightSolver solver(options);
  Rng rng(8);
  const auto result = solver.Solve({wavy, QuadraticModel(1.0)}, &rng);
  EXPECT_FALSE(result.used_convex_path);
  EXPECT_NEAR(Sum(result.weights), 1.0, 1e-6);
}

TEST(WeightSolverTest, ObjectiveNoWorseThanEqualSplit) {
  WeightSolver solver;
  Rng rng(9);
  const std::vector<SensitivityModel> models = {QuadraticModel(6.0), QuadraticModel(2.0),
                                                QuadraticModel(0.3), QuadraticModel(1.0)};
  const auto result = solver.Solve(models, &rng);
  double equal_obj = 0;
  for (const auto& m : models) {
    equal_obj += m.polynomial().Evaluate(0.25);
  }
  EXPECT_LE(result.objective, equal_obj + 1e-9);
}

TEST(WeightSolverTest, CapacityBelowOneRespected) {
  WeightSolverOptions options;
  options.capacity = 0.6;  // Operator reserves 40% for non-Saba traffic.
  WeightSolver solver(options);
  Rng rng(10);
  const auto result = solver.Solve({QuadraticModel(4.0), QuadraticModel(1.0)}, &rng);
  EXPECT_NEAR(Sum(result.weights), 0.6, 1e-9);
}

}  // namespace
}  // namespace saba
