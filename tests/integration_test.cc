// End-to-end integration: the full Saba pipeline (profiler -> controller ->
// client -> fabric) on a multi-tier topology, plus property sweeps over the
// whole workload catalog.

#include <gtest/gtest.h>

#include "src/core/profiler.h"
#include "src/exp/corun.h"
#include "src/net/units.h"
#include "src/numerics/stats.h"
#include "src/workload/workload_catalog.h"

namespace saba {
namespace {

class SpineLeafIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ProfilerOptions options;
    options.noise_sigma = 0;
    table_ = new SensitivityTable(OfflineProfiler(options).ProfileAll(HiBenchCatalog()));
    topo_ = new Topology(BuildSpineLeaf({.num_spine = 2,
                                         .num_leaf = 4,
                                         .num_tor = 4,
                                         .hosts_per_tor = 6,
                                         .num_pods = 2,
                                         .host_link_bps = Gbps64(56),
                                         .tor_leaf_bps = Gbps64(56),
                                         .leaf_spine_bps = Gbps64(56)}));
  }
  static void TearDownTestSuite() {
    delete table_;
    delete topo_;
    table_ = nullptr;
    topo_ = nullptr;
  }

  // Six jobs spanning rack boundaries (cross-pod traffic included).
  static std::vector<JobSpec> Jobs() {
    std::vector<JobSpec> jobs;
    const char* names[] = {"LR", "PR", "GBT", "Sort", "SVM", "WC"};
    for (int j = 0; j < 6; ++j) {
      JobSpec job;
      job.spec = ScaleWorkload(*FindWorkload(names[j]), 1.0, 8);
      for (int i = 0; i < 8; ++i) {
        job.hosts.push_back(static_cast<NodeId>((j * 3 + i * 3) % 24));
      }
      job.start_at = 0.5 * j;
      jobs.push_back(std::move(job));
    }
    return jobs;
  }

  static SensitivityTable* table_;
  static Topology* topo_;
};

// saba-lint: shared-state-ok(gtest fixture statics: written once in SetUpTestSuite before any
// test body runs; test bodies run serially on one thread)
SensitivityTable* SpineLeafIntegrationTest::table_ = nullptr;
// saba-lint: shared-state-ok(gtest fixture statics: written once in SetUpTestSuite before any
// test body runs; test bodies run serially on one thread)
Topology* SpineLeafIntegrationTest::topo_ = nullptr;

TEST_F(SpineLeafIntegrationTest, SabaPipelineRunsCleanOnFabric) {
  CoRunOptions options;
  options.policy = PolicyKind::kSaba;
  options.table = table_;
  const CoRunResult result = RunCoRun(*topo_, Jobs(), options);

  for (double t : result.completion_seconds) {
    EXPECT_GT(t, 0);
  }
  const ControllerStats& stats = result.controller_stats;
  EXPECT_EQ(stats.registrations, 6u);
  EXPECT_EQ(stats.deregistrations, 6u);
  // Per-stage connection lifecycle: every create has a matching destroy.
  EXPECT_EQ(stats.conn_creates, stats.conn_destroys);
  EXPECT_GT(stats.conn_creates, 0u);
  EXPECT_GT(stats.port_reconfigurations, 0u);
}

TEST_F(SpineLeafIntegrationTest, SabaAtLeastMatchesBaselineOnFabric) {
  CoRunOptions baseline;
  baseline.policy = PolicyKind::kBaseline;
  const CoRunResult base = RunCoRun(*topo_, Jobs(), baseline);

  CoRunOptions saba;
  saba.policy = PolicyKind::kSaba;
  saba.table = table_;
  const CoRunResult managed = RunCoRun(*topo_, Jobs(), saba);
  EXPECT_GT(GeometricMean(Speedups(base, managed)), 1.0);
}

TEST_F(SpineLeafIntegrationTest, DistributedControllerCloseToCentralized) {
  CoRunOptions central;
  central.policy = PolicyKind::kSaba;
  central.table = table_;
  const CoRunResult c = RunCoRun(*topo_, Jobs(), central);

  CoRunOptions dist = central;
  dist.policy = PolicyKind::kSabaDistributed;
  const CoRunResult d = RunCoRun(*topo_, Jobs(), dist);

  // §5.4/§8.4: the offline-mapped distributed controller lands within a few
  // percent of the centralized one.
  const double ratio = GeometricMean(Speedups(c, d));
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.15);
}

// --- Catalog-wide property sweeps -------------------------------------------

class CatalogPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  const WorkloadSpec& spec() const {
    return HiBenchCatalog()[static_cast<size_t>(GetParam())];
  }
};

TEST_P(CatalogPropertyTest, SlowdownMonotoneInBandwidth) {
  double previous = -1;
  for (double fraction : {1.0, 0.75, 0.5, 0.25, 0.15}) {
    const double t = OfflineProfiler::RunIsolated(spec(), fraction, 8, Gbps(56));
    EXPECT_GE(t, previous - 1e-9) << spec().name << " at " << fraction;
    previous = t;
  }
}

TEST_P(CatalogPropertyTest, ScalingPreservesStageCount) {
  for (double dataset : {0.1, 10.0}) {
    for (int nodes : {4, 32}) {
      const WorkloadSpec scaled = ScaleWorkload(spec(), dataset, nodes);
      EXPECT_EQ(scaled.stages.size(), spec().stages.size());
      EXPECT_EQ(scaled.reference_nodes, nodes);
      for (const StageSpec& stage : scaled.stages) {
        EXPECT_GE(stage.compute_seconds, 0);
        EXPECT_GE(stage.bits_per_peer, 0);
      }
    }
  }
}

TEST_P(CatalogPropertyTest, ProfiledModelPredictsItsOwnSamples) {
  ProfilerOptions options;
  options.noise_sigma = 0;
  const ProfileResult result = OfflineProfiler(options).Profile(spec());
  EXPECT_GT(result.r_squared, 0.9) << spec().name;
  // Prediction at the anchor points stays within ~20% of the measurement.
  for (const Sample& s : result.samples) {
    if (s.b >= 0.25) {
      EXPECT_NEAR(result.model.SlowdownAt(s.b), std::max(1.0, s.d),
                  0.2 * s.d + 0.05)
          << spec().name << " at b=" << s.b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, CatalogPropertyTest, ::testing::Range(0, 10),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return HiBenchCatalog()[static_cast<size_t>(info.param)].name;
                         });

}  // namespace
}  // namespace saba
