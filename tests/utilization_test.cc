// Quantitative checks of the §2.3 mechanism, via the trace module: LR
// alternates compute and communication phases, while PR keeps the network
// busy almost continuously yet stays compute-dominated — the facts behind
// Fig 2 and behind the whole sensitivity story.

#include <gtest/gtest.h>

#include "src/net/allocator.h"
#include "src/net/flow_simulator.h"
#include "src/net/units.h"
#include "src/sim/event_scheduler.h"
#include "src/trace/timeseries.h"
#include "src/workload/app_runtime.h"
#include "src/workload/workload_catalog.h"

namespace saba {
namespace {

struct UtilizationProfile {
  double cpu_duty = 0;        // Fraction of samples with CPU busy.
  double net_duty = 0;        // Fraction of samples with network active.
  double mean_net_share = 0;  // Mean egress utilization of host 0.
  double completion = 0;
};

UtilizationProfile Profile(const WorkloadSpec& spec, double bandwidth_fraction) {
  EventScheduler scheduler;
  Network network(BuildSingleSwitchStar(8, RoundBps(Gbps(56) * bandwidth_fraction)));
  WfqMaxMinAllocator allocator;
  FlowSimulator flow_sim(&scheduler, &network, &allocator);
  NullNetworkPolicy policy;
  Application app(&scheduler, &flow_sim, spec, network.topology().Hosts(), 0, &policy);

  TraceRecorder recorder;
  PeriodicSampler sampler(&scheduler, &recorder, 1.0);
  sampler.AddProbe("cpu", [&app] { return app.IsComputing() ? 1.0 : 0.0; });
  sampler.AddProbe("net", [&flow_sim, &network, bandwidth_fraction] {
    return flow_sim.HostEgressRate(0) / (Gbps(56) * bandwidth_fraction);
  });
  sampler.Start();

  UtilizationProfile result;
  app.Start([&result](AppId, SimTime seconds) { result.completion = seconds; });
  scheduler.Run();

  result.cpu_duty = recorder.Find("cpu")->FractionAbove(0.5);
  result.net_duty = recorder.Find("net")->FractionAbove(0.05);
  result.mean_net_share = recorder.Find("net")->Mean();
  return result;
}

TEST(UtilizationMechanicsTest, LrAlternatesPhases) {
  const UtilizationProfile lr = Profile(*FindWorkload("LR"), 0.75);
  // LR computes only a small fraction of the time; the rest is shuffle.
  EXPECT_LT(lr.cpu_duty, 0.4);
  EXPECT_GT(lr.net_duty, 0.5);
}

TEST(UtilizationMechanicsTest, PrKeepsNetworkBusyWhileComputing) {
  // The Fig 2b signature: network utilization high through most of the run
  // *and* high CPU duty at the same time (overlap + prefetch traffic).
  const UtilizationProfile pr = Profile(*FindWorkload("PR"), 0.75);
  EXPECT_GT(pr.cpu_duty, 0.8);
  EXPECT_GT(pr.net_duty, 0.8);
}

TEST(UtilizationMechanicsTest, ThrottlingStretchesLrCommPhases) {
  const UtilizationProfile fast = Profile(*FindWorkload("LR"), 0.75);
  const UtilizationProfile slow = Profile(*FindWorkload("LR"), 0.25);
  // §2.3: compute phases stay constant, comm phases stretch -> CPU duty
  // shrinks and completion grows ~2.6x.
  EXPECT_LT(slow.cpu_duty, fast.cpu_duty);
  EXPECT_NEAR(slow.completion / fast.completion, 2.6, 0.4);
}

TEST(UtilizationMechanicsTest, ThrottlingBarelyMovesPr) {
  const UtilizationProfile fast = Profile(*FindWorkload("PR"), 0.75);
  const UtilizationProfile slow = Profile(*FindWorkload("PR"), 0.25);
  EXPECT_NEAR(slow.completion / fast.completion, 1.37, 0.25);
}

TEST(UtilizationMechanicsTest, SortIsComputeBound) {
  const UtilizationProfile sort = Profile(*FindWorkload("Sort"), 1.0);
  EXPECT_GT(sort.cpu_duty, 0.9);
}

}  // namespace
}  // namespace saba
