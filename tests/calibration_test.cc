// Calibration guard: the workload models must keep reproducing the paper's
// measured slowdown anchors (Fig 1a, Fig 2, Fig 5). If a catalog change moves
// a workload's sensitivity outside these bands, the evaluation figures drift
// too — fail here first, with a readable message.

#include <gtest/gtest.h>

#include "src/core/profiler.h"
#include "src/net/units.h"
#include "src/workload/workload_catalog.h"

namespace saba {
namespace {

double SlowdownAt(const WorkloadSpec& spec, double fraction) {
  const double base = OfflineProfiler::RunIsolated(spec, 1.0, 8, Gbps(56));
  const double throttled = OfflineProfiler::RunIsolated(spec, fraction, 8, Gbps(56));
  return throttled / base;
}

struct Anchor {
  const char* workload;
  double fraction;
  double expected;   // Paper's measurement.
  double tolerance;  // Acceptable absolute deviation.
};

class CalibrationTest : public ::testing::TestWithParam<Anchor> {};

TEST_P(CalibrationTest, SlowdownMatchesPaperAnchor) {
  const Anchor& anchor = GetParam();
  const WorkloadSpec* spec = FindWorkload(anchor.workload);
  ASSERT_NE(spec, nullptr);
  const double slowdown = SlowdownAt(*spec, anchor.fraction);
  EXPECT_NEAR(slowdown, anchor.expected, anchor.tolerance)
      << anchor.workload << " at " << anchor.fraction * 100 << "% bandwidth";
}

INSTANTIATE_TEST_SUITE_P(
    Fig1aAnchors, CalibrationTest,
    ::testing::Values(
        // §2.1/Fig 1a: "the slowdown of applications varies from 1.1x (Sort)
        // to 3.4x (LR)" at 25%; "LR suffers a 1.3x penalty at 75%".
        Anchor{"LR", 0.25, 3.4, 0.25}, Anchor{"LR", 0.75, 1.3, 0.12},
        Anchor{"Sort", 0.25, 1.1, 0.08}, Anchor{"PR", 0.25, 1.4, 0.12},
        // §2.3: PR's completion grows 1.37x from 75% to 25% — both anchored.
        Anchor{"PR", 0.75, 1.05, 0.08},
        // Fig 5: SQL is nearly flat at 25%...
        Anchor{"SQL", 0.25, 1.15, 0.12},
        // ...and degrades steeply by 10% (paper: 2.2x; our hockey-stick
        // model lands in the same regime).
        Anchor{"SQL", 0.10, 2.6, 0.45},
        // Fig 8a orders RF and LR as the most sensitive workloads.
        Anchor{"RF", 0.25, 3.45, 0.25}, Anchor{"GBT", 0.25, 2.7, 0.25},
        Anchor{"SVM", 0.25, 2.5, 0.25}, Anchor{"NI", 0.25, 2.15, 0.25},
        Anchor{"NW", 0.25, 1.95, 0.25}, Anchor{"WC", 0.25, 1.45, 0.15}),
    [](const ::testing::TestParamInfo<Anchor>& info) {
      return std::string(info.param.workload) + "_bw" +
             std::to_string(static_cast<int>(info.param.fraction * 100));
    });

TEST(CalibrationSummaryTest, AverageSlowdownAt25PercentNearPaper) {
  // §2.1: "with 25% of bandwidth ... an average of 2.1x".
  double total = 0;
  for (const WorkloadSpec& spec : HiBenchCatalog()) {
    total += SlowdownAt(spec, 0.25);
  }
  EXPECT_NEAR(total / 10.0, 2.1, 0.2);
}

TEST(CalibrationSummaryTest, PrBaseCompletionNearPaperTimeline) {
  // Fig 2b: PR completes in ~310 s at 75% bandwidth, ~427 s at 25%.
  const WorkloadSpec* pr = FindWorkload("PR");
  ASSERT_NE(pr, nullptr);
  EXPECT_NEAR(OfflineProfiler::RunIsolated(*pr, 0.75, 8, Gbps(56)), 310, 40);
  EXPECT_NEAR(OfflineProfiler::RunIsolated(*pr, 0.25, 8, Gbps(56)), 427, 60);
}

TEST(CalibrationSummaryTest, LrCompletionRatioNearPaperTimeline) {
  // §2.3: LR goes from 172 s at 75% to 447 s at 25% (2.59x).
  const WorkloadSpec* lr = FindWorkload("LR");
  ASSERT_NE(lr, nullptr);
  const double t75 = OfflineProfiler::RunIsolated(*lr, 0.75, 8, Gbps(56));
  const double t25 = OfflineProfiler::RunIsolated(*lr, 0.25, 8, Gbps(56));
  EXPECT_NEAR(t25 / t75, 2.59, 0.3);
}

}  // namespace
}  // namespace saba
