#include "src/net/routing.h"

#include <gtest/gtest.h>

#include <set>

#include "src/net/units.h"

namespace saba {
namespace {

// Validates that `path` is a contiguous walk from src to dst.
void ExpectValidPath(const Topology& topo, const std::vector<LinkId>& path, NodeId src,
                     NodeId dst) {
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(topo.link(path.front()).src, src);
  EXPECT_EQ(topo.link(path.back()).dst, dst);
  for (size_t i = 1; i < path.size(); ++i) {
    EXPECT_EQ(topo.link(path[i - 1]).dst, topo.link(path[i]).src);
  }
}

TEST(RouterTest, StarPathsAreTwoHops) {
  const Topology topo = BuildSingleSwitchStar(4, Gbps64(10));
  Router router(&topo);
  for (NodeId s = 0; s < 4; ++s) {
    for (NodeId d = 0; d < 4; ++d) {
      if (s == d) {
        continue;
      }
      const auto& path = router.Route(s, d, 0);
      EXPECT_EQ(path.size(), 2u);
      ExpectValidPath(topo, path, s, d);
    }
  }
}

TEST(RouterTest, SelfRouteIsEmpty) {
  const Topology topo = BuildSingleSwitchStar(4, Gbps64(10));
  Router router(&topo);
  EXPECT_TRUE(router.Route(2, 2, 0).empty());
}

TEST(RouterTest, SameSaltSamePath) {
  const Topology topo = BuildSpineLeaf(
      {.num_spine = 4, .num_leaf = 4, .num_tor = 4, .hosts_per_tor = 2, .num_pods = 2});
  Router router(&topo);
  const auto& a = router.Route(0, 7, 42);
  const auto& b = router.Route(0, 7, 42);
  EXPECT_EQ(a, b);
}

TEST(RouterTest, DifferentSaltsSpreadAcrossEcmp) {
  const Topology topo = BuildSpineLeaf(
      {.num_spine = 8, .num_leaf = 8, .num_tor = 4, .hosts_per_tor = 2, .num_pods = 2});
  Router router(&topo);
  // Hosts 0 and 7 are in different pods; many spine choices exist.
  std::set<std::vector<LinkId>> distinct;
  for (uint64_t salt = 0; salt < 32; ++salt) {
    distinct.insert(router.Route(0, 7, salt));
  }
  EXPECT_GT(distinct.size(), 2u) << "ECMP salting must spread paths";
}

TEST(RouterTest, SpineLeafPathsAreValidAndShortest) {
  SpineLeafParams params{
      .num_spine = 4, .num_leaf = 4, .num_tor = 4, .hosts_per_tor = 3, .num_pods = 2};
  const Topology topo = BuildSpineLeaf(params);
  Router router(&topo);
  const auto hosts = topo.Hosts();
  for (NodeId s : hosts) {
    for (NodeId d : hosts) {
      if (s == d) {
        continue;
      }
      const auto& path = router.Route(s, d, 1);
      ExpectValidPath(topo, path, s, d);
      const int same_tor = (s / params.hosts_per_tor) == (d / params.hosts_per_tor);
      const int same_pod = (s / (params.hosts_per_tor * 2)) == (d / (params.hosts_per_tor * 2));
      if (same_tor) {
        EXPECT_EQ(path.size(), 2u);  // host -> ToR -> host.
      } else if (same_pod) {
        EXPECT_EQ(path.size(), 4u);  // host -> ToR -> leaf -> ToR -> host.
      } else {
        EXPECT_EQ(path.size(), 6u);  // ... -> leaf -> spine -> leaf -> ...
      }
    }
  }
}

TEST(RouterTest, PathCacheGrowsOncePerKey) {
  const Topology topo = BuildSingleSwitchStar(4, Gbps64(10));
  Router router(&topo);
  router.Route(0, 1, 5);
  const size_t after_first = router.cached_paths();
  router.Route(0, 1, 5);
  EXPECT_EQ(router.cached_paths(), after_first);
  router.Route(0, 1, 6);
  EXPECT_EQ(router.cached_paths(), after_first + 1);
}

TEST(RouterTest, CachedPathReferenceStable) {
  const Topology topo = BuildSingleSwitchStar(8, Gbps64(10));
  Router router(&topo);
  const std::vector<LinkId>* first = &router.Route(0, 1, 0);
  // Force many insertions (potential rehash).
  for (NodeId s = 0; s < 8; ++s) {
    for (NodeId d = 0; d < 8; ++d) {
      if (s != d) {
        for (uint64_t salt = 0; salt < 8; ++salt) {
          router.Route(s, d, salt);
        }
      }
    }
  }
  EXPECT_EQ(first, &router.Route(0, 1, 0)) << "cache entries must be reference-stable";
}

}  // namespace
}  // namespace saba
