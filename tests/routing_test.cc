#include "src/net/routing.h"

#include <gtest/gtest.h>

#include <set>

#include "src/net/units.h"

namespace saba {
namespace {

// Validates that `path` is a contiguous walk from src to dst.
void ExpectValidPath(const Topology& topo, const std::vector<LinkId>& path, NodeId src,
                     NodeId dst) {
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(topo.link(path.front()).src, src);
  EXPECT_EQ(topo.link(path.back()).dst, dst);
  for (size_t i = 1; i < path.size(); ++i) {
    EXPECT_EQ(topo.link(path[i - 1]).dst, topo.link(path[i]).src);
  }
}

TEST(RouterTest, StarPathsAreTwoHops) {
  const Topology topo = BuildSingleSwitchStar(4, Gbps64(10));
  Router router(&topo);
  for (NodeId s = 0; s < 4; ++s) {
    for (NodeId d = 0; d < 4; ++d) {
      if (s == d) {
        continue;
      }
      const auto& path = router.Route(s, d, 0);
      EXPECT_EQ(path.size(), 2u);
      ExpectValidPath(topo, path, s, d);
    }
  }
}

TEST(RouterTest, SelfRouteIsEmpty) {
  const Topology topo = BuildSingleSwitchStar(4, Gbps64(10));
  Router router(&topo);
  EXPECT_TRUE(router.Route(2, 2, 0).empty());
}

TEST(RouterTest, SameSaltSamePath) {
  const Topology topo = BuildSpineLeaf(
      {.num_spine = 4, .num_leaf = 4, .num_tor = 4, .hosts_per_tor = 2, .num_pods = 2});
  Router router(&topo);
  const auto& a = router.Route(0, 7, 42);
  const auto& b = router.Route(0, 7, 42);
  EXPECT_EQ(a, b);
}

TEST(RouterTest, DifferentSaltsSpreadAcrossEcmp) {
  const Topology topo = BuildSpineLeaf(
      {.num_spine = 8, .num_leaf = 8, .num_tor = 4, .hosts_per_tor = 2, .num_pods = 2});
  Router router(&topo);
  // Hosts 0 and 7 are in different pods; many spine choices exist.
  std::set<std::vector<LinkId>> distinct;
  for (uint64_t salt = 0; salt < 32; ++salt) {
    distinct.insert(router.Route(0, 7, salt));
  }
  EXPECT_GT(distinct.size(), 2u) << "ECMP salting must spread paths";
}

TEST(RouterTest, SpineLeafPathsAreValidAndShortest) {
  SpineLeafParams params{
      .num_spine = 4, .num_leaf = 4, .num_tor = 4, .hosts_per_tor = 3, .num_pods = 2};
  const Topology topo = BuildSpineLeaf(params);
  Router router(&topo);
  const auto hosts = topo.Hosts();
  for (NodeId s : hosts) {
    for (NodeId d : hosts) {
      if (s == d) {
        continue;
      }
      const auto& path = router.Route(s, d, 1);
      ExpectValidPath(topo, path, s, d);
      const int same_tor = (s / params.hosts_per_tor) == (d / params.hosts_per_tor);
      const int same_pod = (s / (params.hosts_per_tor * 2)) == (d / (params.hosts_per_tor * 2));
      if (same_tor) {
        EXPECT_EQ(path.size(), 2u);  // host -> ToR -> host.
      } else if (same_pod) {
        EXPECT_EQ(path.size(), 4u);  // host -> ToR -> leaf -> ToR -> host.
      } else {
        EXPECT_EQ(path.size(), 6u);  // ... -> leaf -> spine -> leaf -> ...
      }
    }
  }
}

TEST(RouterTest, PathCacheGrowsOncePerKey) {
  const Topology topo = BuildSingleSwitchStar(4, Gbps64(10));
  Router router(&topo);
  router.Route(0, 1, 5);
  const size_t after_first = router.cached_paths();
  router.Route(0, 1, 5);
  EXPECT_EQ(router.cached_paths(), after_first);
  router.Route(0, 1, 6);
  EXPECT_EQ(router.cached_paths(), after_first + 1);
}

TEST(RouterTest, CachedPathReferenceStable) {
  const Topology topo = BuildSingleSwitchStar(8, Gbps64(10));
  Router router(&topo);
  const std::vector<LinkId>* first = &router.Route(0, 1, 0);
  // Force many insertions (potential rehash).
  for (NodeId s = 0; s < 8; ++s) {
    for (NodeId d = 0; d < 8; ++d) {
      if (s != d) {
        for (uint64_t salt = 0; salt < 8; ++salt) {
          router.Route(s, d, salt);
        }
      }
    }
  }
  EXPECT_EQ(first, &router.Route(0, 1, 0)) << "cache entries must be reference-stable";
}

// --- Path-cache aliasing regression ------------------------------------------
//
// The cache used to be keyed by the 64-bit PathDigest alone, so two triples
// whose digests collide silently shared one cached path — a wrong-routing bug.
// The digest is an invertible function (the splitmix64 finalizer is a
// bijection and the salt multiplier is odd), so an exact colliding triple can
// be constructed: given triple T1 and a target (src2, dst2), solve for the
// salt2 that makes PathDigest(src2, dst2, salt2) == PathDigest(T1).

uint64_t TestMix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t UnshiftXor(uint64_t value, int shift) {
  // Inverts z ^= z >> shift (shift >= 1): recover the high bits first, then
  // peel downward. Iterating the forward op converges for shift >= 64/2 in
  // one step and in general within 64/shift rounds.
  uint64_t result = value;
  for (int done = shift; done < 64; done += shift) {
    result = value ^ (result >> shift);
  }
  return result;
}

uint64_t TestInvMix64(uint64_t z) {
  // Inverse splitmix64 finalizer (inverse multipliers of the two constants).
  z = UnshiftXor(z, 31);
  z *= 0x319642b2d24d8ec3ULL;
  z = UnshiftXor(z, 27);
  z *= 0x96de1b173f119089ULL;
  z = UnshiftXor(z, 30);
  return z;
}

// Multiplicative inverse of an odd constant mod 2^64 (Newton iteration).
uint64_t OddInverse(uint64_t a) {
  uint64_t x = a;
  for (int i = 0; i < 5; ++i) {
    x *= 2 - a * x;
  }
  return x;
}

// Solves PathDigest(src, dst, salt) == digest for salt.
uint64_t CollidingSalt(NodeId src, NodeId dst, uint64_t digest) {
  const uint64_t pair_mix = TestMix64((static_cast<uint64_t>(static_cast<uint32_t>(src)) << 32) |
                                      static_cast<uint64_t>(static_cast<uint32_t>(dst)));
  const uint64_t salt_mix = digest ^ pair_mix;  // == Mix64(salt * C + 1)
  return (TestInvMix64(salt_mix) - 1) * OddInverse(0x9e3779b97f4a7c15ULL);
}

TEST(RouterTest, PathCacheCollisionCannotAliasRoutes) {
  const Topology topo = BuildSingleSwitchStar(8, Gbps64(10));
  Router router(&topo);

  const NodeId src1 = 0;
  const NodeId dst1 = 1;
  const uint64_t salt1 = 7;
  const NodeId src2 = 2;
  const NodeId dst2 = 3;
  const uint64_t salt2 = CollidingSalt(src2, dst2, PathDigest(src1, dst1, salt1));
  // The construction really collides — this is the pre-fix aliasing trigger.
  ASSERT_EQ(PathDigest(src1, dst1, salt1), PathDigest(src2, dst2, salt2));

  const std::vector<LinkId> first = router.Route(src1, dst1, salt1);
  const std::vector<LinkId>& second = router.Route(src2, dst2, salt2);
  ExpectValidPath(topo, first, src1, dst1);
  ExpectValidPath(topo, second, src2, dst2);  // Pre-fix: returned first's path.
  EXPECT_EQ(router.cached_paths(), 2u);
}

// --- Fat-tree ECMP & failure handling ----------------------------------------

TEST(RouterTest, FatTreeEcmpExercisesAllEqualCostCoreLinks) {
  FatTreeParams params{.k = 4};
  const Topology topo = BuildFatTree(params);
  Router router(&topo);
  // Hosts 0 and 15 sit in different pods: 4 equal-cost 6-hop paths (2 agg
  // choices x 2 core choices). Across many salts every one must appear.
  std::set<std::vector<LinkId>> distinct;
  for (uint64_t salt = 0; salt < 256; ++salt) {
    const auto& path = router.Route(0, 15, salt);
    EXPECT_EQ(path.size(), 6u);
    ExpectValidPath(topo, path, 0, 15);
    distinct.insert(path);
  }
  EXPECT_EQ(distinct.size(), 4u) << "ECMP salting must reach every equal-cost path";
}

TEST(RouterTest, EpochInvalidationReroutesAroundFailedLink) {
  Topology topo = BuildFatTree(FatTreeParams{.k = 4});
  Router router(&topo);
  const NodeId src = 0;
  const NodeId dst = 15;
  const std::vector<LinkId> before = router.Route(src, dst, 3);
  ExpectValidPath(topo, before, src, dst);

  // Fail the first switch-to-switch hop of the chosen path (host links are
  // the only way in/out, so fail the edge->agg hop: index 1).
  const LinkId broken = before[1];
  topo.SetLinkUp(broken, false);
  const std::vector<LinkId> after = router.Route(src, dst, 3);
  ExpectValidPath(topo, after, src, dst);
  EXPECT_EQ(after.size(), before.size()) << "k=4 keeps an equal-length detour";
  for (LinkId l : after) {
    EXPECT_NE(l, broken) << "rerouted path must avoid the failed link";
    EXPECT_TRUE(topo.LinkUsable(l));
  }

  // Restore: the same triple routes identically to the original epoch.
  topo.SetLinkUp(broken, true);
  EXPECT_EQ(router.Route(src, dst, 3), before);
}

TEST(RouterTest, SwitchFailureReroutesAndRecovers) {
  Topology topo = BuildFatTree(FatTreeParams{.k = 4});
  Router router(&topo);
  // agg0 is node 16 hosts + 8 edges = 24.
  const NodeId agg0 = 24;
  ASSERT_EQ(topo.node(agg0).kind, NodeKind::kLeafSwitch);
  topo.SetNodeUp(agg0, false);
  for (uint64_t salt = 0; salt < 16; ++salt) {
    const auto& path = router.Route(0, 15, salt);
    ExpectValidPath(topo, path, 0, 15);
    for (LinkId l : path) {
      EXPECT_NE(topo.link(l).src, agg0);
      EXPECT_NE(topo.link(l).dst, agg0);
    }
  }
  topo.SetNodeUp(agg0, true);
  EXPECT_TRUE(router.Reachable(0, 15));
}

TEST(RouterTest, UnreachableContract) {
  // A host pair on a star whose only switch goes down: unreachable = empty
  // path + Reachable() false; src == dst stays trivially reachable.
  Topology topo = BuildSingleSwitchStar(4, Gbps64(10));
  Router router(&topo);
  ASSERT_TRUE(router.Reachable(0, 1));
  topo.SetNodeUp(4, false);  // The hub switch.
  EXPECT_FALSE(router.Reachable(0, 1));
  EXPECT_TRUE(router.Route(0, 1, 0).empty());
  EXPECT_TRUE(router.Reachable(2, 2));
  topo.SetNodeUp(4, true);
  EXPECT_TRUE(router.Reachable(0, 1));
  EXPECT_FALSE(router.Route(0, 1, 0).empty());
}

}  // namespace
}  // namespace saba
