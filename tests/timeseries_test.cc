#include "src/trace/timeseries.h"

#include <gtest/gtest.h>

#include <sstream>

namespace saba {
namespace {

TEST(TimeSeriesTest, AppendAndStats) {
  TimeSeries series("cpu");
  series.Append(0.0, 0.2);
  series.Append(1.0, 0.8);
  series.Append(2.0, 0.5);
  EXPECT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series.Mean(), 0.5);
  EXPECT_DOUBLE_EQ(series.Max(), 0.8);
  EXPECT_DOUBLE_EQ(series.FractionAbove(0.5), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(series.MeanInWindow(0.5, 2.5), 0.65);
}

TEST(TraceRecorderTest, SeriesCreatedOnFirstUse) {
  TraceRecorder recorder;
  EXPECT_EQ(recorder.Find("net"), nullptr);
  recorder.Series("net").Append(0, 1.0);
  ASSERT_NE(recorder.Find("net"), nullptr);
  EXPECT_EQ(recorder.Find("net")->size(), 1u);
  EXPECT_EQ(recorder.series_count(), 1u);
}

TEST(TraceRecorderTest, CsvHasHeaderAndAlignedRows) {
  TraceRecorder recorder;
  recorder.Series("a").Append(0.0, 1.0);
  recorder.Series("a").Append(1.0, 2.0);
  recorder.Series("b").Append(1.0, 9.0);
  std::ostringstream os;
  recorder.WriteCsv(os);
  std::istringstream is(os.str());
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "time,a,b");
  std::getline(is, line);
  EXPECT_EQ(line, "0,1,");  // b has no sample at t=0.
  std::getline(is, line);
  EXPECT_EQ(line, "1,2,9");
}

TEST(PeriodicSamplerTest, SamplesAtFixedPeriodWhileSimulationLives) {
  EventScheduler scheduler;
  TraceRecorder recorder;
  PeriodicSampler sampler(&scheduler, &recorder, 1.0);
  double value = 0;
  sampler.AddProbe("v", [&value] { return value; });
  // Keep the simulation alive for 5.5 seconds with a value change midway.
  scheduler.ScheduleAt(2.5, [&value] { value = 10; });
  scheduler.ScheduleAt(5.5, [] {});
  sampler.Start();
  scheduler.Run();

  const TimeSeries* series = recorder.Find("v");
  ASSERT_NE(series, nullptr);
  // Ticks at t = 0,1,2,3,4,5 (+ the drain tick at 6 is not guaranteed).
  ASSERT_GE(series->size(), 6u);
  EXPECT_DOUBLE_EQ(series->points()[0].second, 0.0);
  EXPECT_DOUBLE_EQ(series->points()[3].second, 10.0);
  for (size_t i = 1; i < series->size(); ++i) {
    EXPECT_NEAR(series->points()[i].first - series->points()[i - 1].first, 1.0, 1e-9);
  }
}

TEST(PeriodicSamplerTest, StopsWhenSimulationDrains) {
  EventScheduler scheduler;
  TraceRecorder recorder;
  PeriodicSampler sampler(&scheduler, &recorder, 0.5);
  sampler.AddProbe("x", [] { return 1.0; });
  scheduler.ScheduleAt(1.0, [] {});
  sampler.Start();
  scheduler.Run();  // Must terminate.
  EXPECT_LE(sampler.ticks(), 4u);
  EXPECT_GE(sampler.ticks(), 2u);
}

TEST(PeriodicSamplerTest, StopPreventsFurtherTicks) {
  EventScheduler scheduler;
  TraceRecorder recorder;
  PeriodicSampler sampler(&scheduler, &recorder, 1.0);
  sampler.AddProbe("x", [] { return 1.0; });
  scheduler.ScheduleAt(10.0, [] {});
  scheduler.ScheduleAt(2.5, [&sampler] { sampler.Stop(); });
  sampler.Start();
  scheduler.Run();
  EXPECT_LE(sampler.ticks(), 3u);
}

TEST(PeriodicSamplerTest, MultipleProbesShareTicks) {
  EventScheduler scheduler;
  TraceRecorder recorder;
  PeriodicSampler sampler(&scheduler, &recorder, 1.0);
  sampler.AddProbe("a", [] { return 1.0; });
  sampler.AddProbe("b", [] { return 2.0; });
  scheduler.ScheduleAt(3.0, [] {});
  sampler.Start();
  scheduler.Run();
  EXPECT_EQ(recorder.Find("a")->size(), recorder.Find("b")->size());
}

}  // namespace
}  // namespace saba
