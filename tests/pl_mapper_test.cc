#include "src/core/pl_mapper.h"

#include <gtest/gtest.h>

#include <set>

namespace saba {
namespace {

SensitivityModel Linear(double slope) {
  return SensitivityModel{Polynomial({1.0 + slope, -slope})};
}

TEST(PlMapperTest, FewerAppsThanPlsGetDistinctPls) {
  Rng rng(1);
  const PlMapping mapping = MapAppsToPls({Linear(5.0), Linear(0.1)}, 8, &rng);
  ASSERT_EQ(mapping.app_to_pl.size(), 2u);
  EXPECT_NE(mapping.app_to_pl[0], mapping.app_to_pl[1]);
  EXPECT_EQ(mapping.pl_models.size(), 2u);
}

TEST(PlMapperTest, SimilarAppsShareAPl) {
  Rng rng(2);
  std::vector<SensitivityModel> models;
  for (int i = 0; i < 6; ++i) {
    models.push_back(Linear(5.0 + 0.01 * i));  // Sensitive cluster.
  }
  for (int i = 0; i < 6; ++i) {
    models.push_back(Linear(0.1 + 0.01 * i));  // Insensitive cluster.
  }
  const PlMapping mapping = MapAppsToPls(models, 2, &rng);
  // The first six share one PL, the last six the other.
  for (size_t i = 1; i < 6; ++i) {
    EXPECT_EQ(mapping.app_to_pl[i], mapping.app_to_pl[0]);
  }
  for (size_t i = 7; i < 12; ++i) {
    EXPECT_EQ(mapping.app_to_pl[i], mapping.app_to_pl[6]);
  }
  EXPECT_NE(mapping.app_to_pl[0], mapping.app_to_pl[6]);
}

TEST(PlMapperTest, CentroidRepresentsGroupSensitivity) {
  Rng rng(3);
  const PlMapping mapping = MapAppsToPls({Linear(4.0), Linear(4.2)}, 1, &rng);
  ASSERT_EQ(mapping.pl_models.size(), 1u);
  // Centroid of slopes 4.0 and 4.2 -> slope 4.1: D(0.5) = 1 + 4.1*0.5.
  EXPECT_NEAR(mapping.pl_models[0].SlowdownAt(0.5), 1.0 + 4.1 * 0.5, 1e-9);
}

TEST(PlMapperTest, PlIndicesAreDense) {
  Rng rng(4);
  std::vector<SensitivityModel> models;
  for (int i = 0; i < 20; ++i) {
    models.push_back(Linear(0.2 * i));
  }
  const PlMapping mapping = MapAppsToPls(models, 8, &rng);
  std::set<int> used(mapping.app_to_pl.begin(), mapping.app_to_pl.end());
  EXPECT_EQ(used.size(), mapping.pl_models.size());
  for (int pl : mapping.app_to_pl) {
    EXPECT_GE(pl, 0);
    EXPECT_LT(pl, static_cast<int>(mapping.pl_models.size()));
  }
}

TEST(PlMapperTest, MixedDegreeModelsArePaddedConsistently) {
  Rng rng(5);
  const SensitivityModel cubic{Polynomial({6.0, -10.0, 7.0, -2.0})};
  const SensitivityModel linear = Linear(1.0);
  const PlMapping mapping = MapAppsToPls({cubic, linear}, 2, &rng);
  EXPECT_EQ(mapping.pl_models.size(), 2u);
  EXPECT_NE(mapping.app_to_pl[0], mapping.app_to_pl[1]);
}

TEST(PlMapperTest, DeterministicGivenSeed) {
  std::vector<SensitivityModel> models;
  for (int i = 0; i < 10; ++i) {
    models.push_back(Linear(0.5 * i));
  }
  Rng a(6);
  Rng b(6);
  EXPECT_EQ(MapAppsToPls(models, 4, &a).app_to_pl, MapAppsToPls(models, 4, &b).app_to_pl);
}

}  // namespace
}  // namespace saba
