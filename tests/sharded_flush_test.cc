#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/distributed_controller.h"
#include "src/net/network.h"
#include "src/net/topology.h"
#include "src/net/units.h"
#include "src/sim/rng.h"

namespace saba {
namespace {

// The sharded-flush half of the DESIGN.md §7.3 contract: neither the shard
// count nor the flush worker count may change any programmed rate, queue
// map, or merged stats counter. Distributed controllers at shard counts
// {1, 2, 8} (serial and pooled) consume the same churn stream as a
// centralized controller pinned to the same offline mapping database — the
// oracle — and every universe must agree with it bit-exactly after every
// event. Periodic full recomputes push flushes past the adaptive dispatch
// threshold so the pooled universes genuinely fan out (the TSan CI job runs
// this test to certify the fan-out).

// Centralized oracle with the distributed controller's registration
// semantics: PLs come from the shared offline database and nothing ever
// re-clusters, so any state divergence is the sharding's fault alone.
class StaticOracleController : public CentralizedController {
 public:
  StaticOracleController(Network* network, const SensitivityTable* table,
                         const MappingDatabase* database, ControllerOptions options)
      : CentralizedController(network, /*flow_sim=*/nullptr, table, options),
        database_(database) {
    InstallPlModels(database_->pl_models);
  }

  int AppRegister(AppId app, const std::string& workload_name) override {
    const int pl = database_->PlForWorkload(workload_name);
    RegisterAppStatic(app, workload_name, pl);
    return pl;
  }

  void AppDeregister(AppId app) override {
    auto it = apps_.find(app);
    ASSERT_TRUE(it != apps_.end());
    ASSERT_EQ(it->second.connections, 0);
    ++stats_.deregistrations;
    apps_.erase(it);
  }

  // Mirrors the controller's member type; only compared with operator==,
  // which is iteration-order-insensitive for unordered containers.
  // saba-lint: unordered-iter-ok(order-insensitive operator== comparison only)
  const std::unordered_map<LinkId, std::vector<std::pair<AppId, double>>>& port_weights() const {
    return port_weights_;
  }

 private:
  const MappingDatabase* database_;
};

class ShardProbeController : public DistributedController {
 public:
  using DistributedController::DistributedController;

  // saba-lint: unordered-iter-ok(order-insensitive operator== comparison only)
  const std::unordered_map<LinkId, std::vector<std::pair<AppId, double>>>& port_weights() const {
    return port_weights_;
  }
};

// Big enough that a full recompute dirties more ports than the adaptive
// fallback threshold (kMinParallelFlushPorts), so shard_jobs > 1 universes
// actually dispatch: 24 hosts, 112 directed links.
std::unique_ptr<Network> MakeNetwork() {
  return std::make_unique<Network>(BuildSpineLeaf({.num_spine = 4,
                                                   .num_leaf = 4,
                                                   .num_tor = 8,
                                                   .hosts_per_tor = 3,
                                                   .num_pods = 2,
                                                   .host_link_bps = Gbps64(10),
                                                   .tor_leaf_bps = Gbps64(10),
                                                   .leaf_spine_bps = Gbps64(10)}),
                                   /*default_queues=*/4);
}

SensitivityTable MakeTable() {
  SensitivityTable table;
  const std::vector<std::pair<std::string, Polynomial>> entries = {
      {"steep", Polynomial({5.0, -4.0})},
      {"flat", Polynomial({1.2, -0.2})},
      {"quad", Polynomial({2.9, -2.5, 0.6})},
      // Non-convex on (0.5, 1], so ports carrying a "bursty" mix take the
      // projected-gradient path and exercise the signature-seeded Rng.
      {"bursty", Polynomial({2.1, -1.2, 0.3, -0.25, 0.05})},
  };
  for (const auto& [name, poly] : entries) {
    SensitivityEntry entry;
    entry.model = SensitivityModel{poly};
    table.Put(name, entry);
  }
  return table;
}

struct Conn {
  AppId app;
  NodeId src;
  NodeId dst;
  uint64_t salt;
};

struct ShardUniverse {
  int num_shards;
  int shard_jobs;
  std::unique_ptr<Network> network;
  std::unique_ptr<ShardProbeController> controller;
};

void ExpectMatchesOracle(const StaticOracleController& oracle, const Network& oracle_net,
                         const ShardUniverse& u, int event) {
  ASSERT_EQ(oracle.registered_app_count(), u.controller->registered_app_count())
      << "event " << event << " shards " << u.num_shards;
  EXPECT_EQ(oracle.port_weights(), u.controller->port_weights())
      << "event " << event << " shards " << u.num_shards;
  const size_t num_links = oracle_net.topology().num_links();
  ASSERT_EQ(num_links, u.network->topology().num_links());
  for (LinkId link = 0; link < static_cast<LinkId>(num_links); ++link) {
    const PortConfig& a = oracle_net.port(link);
    const PortConfig& b = u.network->port(link);
    ASSERT_EQ(a.sl_to_queue, b.sl_to_queue)
        << "link " << link << " event " << event << " shards " << u.num_shards;
    ASSERT_EQ(a.queue_weights, b.queue_weights)
        << "link " << link << " event " << event << " shards " << u.num_shards;
  }
  // Merged counters describing WHAT happened are shard-invariant. (The eq2
  // hit/miss *split* is not — per-shard caches each miss a signature once —
  // but the total must always equal the reconfiguration count.)
  const ControllerStats& so = oracle.stats();
  const ControllerStats& su = u.controller->stats();
  ASSERT_EQ(so.registrations, su.registrations) << "event " << event;
  ASSERT_EQ(so.deregistrations, su.deregistrations) << "event " << event;
  ASSERT_EQ(so.conn_creates, su.conn_creates) << "event " << event;
  ASSERT_EQ(so.conn_destroys, su.conn_destroys) << "event " << event;
  ASSERT_EQ(so.port_reconfigurations, su.port_reconfigurations)
      << "event " << event << " shards " << u.num_shards << " jobs " << u.shard_jobs;
  ASSERT_EQ(su.eq2_cache_hits + su.eq2_cache_misses, su.port_reconfigurations)
      << "event " << event << " shards " << u.num_shards;
  ASSERT_EQ(su.pl_reclusterings, 0u);
}

TEST(ShardedFlushTest, ShardAndWorkerCountsNeverChangeStateOrStats) {
  const SensitivityTable table = MakeTable();
  const MappingDatabase database = MappingDatabase::Build(table, /*num_pls=*/4, /*seed=*/3);

  ControllerOptions base;  // solve_cache defaults to on, like production.
  std::unique_ptr<Network> oracle_net = MakeNetwork();
  StaticOracleController oracle(oracle_net.get(), &table, &database, base);

  std::vector<ShardUniverse> universes;
  const std::pair<int, int> configs[] = {{1, 1}, {2, 4}, {8, 1}, {8, 4}};
  for (const auto& [shards, jobs] : configs) {
    ShardUniverse u;
    u.num_shards = shards;
    u.shard_jobs = jobs;
    u.network = MakeNetwork();
    DistributedControllerOptions options;
    options.base = base;
    options.num_shards = shards;
    options.shard_jobs = jobs;
    u.controller = std::make_unique<ShardProbeController>(u.network.get(), /*flow_sim=*/nullptr,
                                                          &table, database, options);
    universes.push_back(std::move(u));
  }

  const std::vector<NodeId> hosts = oracle_net->topology().Hosts();
  const std::vector<std::string> workloads = {"steep", "flat", "quad", "bursty"};

  Rng rng(17);
  std::vector<AppId> apps;
  std::vector<Conn> conns;
  AppId next_app = 1;

  auto for_all = [&](auto&& fn) {
    fn(static_cast<ControllerInterface*>(&oracle));
    for (ShardUniverse& u : universes) {
      fn(static_cast<ControllerInterface*>(u.controller.get()));
    }
  };

  constexpr int kEvents = 400;
  for (int e = 0; e < kEvents; ++e) {
    const double reg_w = apps.size() < 12 ? 0.50 : 0.04;
    const size_t op = apps.empty() ? 0 : rng.WeightedIndex({reg_w, 0.50, 0.36, 0.04});
    switch (op) {
      case 0: {  // Register an application.
        const AppId app = next_app++;
        const std::string& workload = rng.Choice(workloads);
        for_all([&](ControllerInterface* c) { c->AppRegister(app, workload); });
        apps.push_back(app);
        break;
      }
      case 1: {  // Create a connection.
        if (conns.size() > 300) {
          continue;
        }
        Conn conn;
        conn.app = rng.Choice(apps);
        conn.src = rng.Choice(hosts);
        conn.dst = rng.Choice(hosts);
        while (conn.dst == conn.src) {
          conn.dst = rng.Choice(hosts);
        }
        conn.salt = rng.Next();
        for_all([&](ControllerInterface* c) {
          c->ConnCreate(conn.app, conn.src, conn.dst, conn.salt);
        });
        conns.push_back(conn);
        break;
      }
      case 2: {  // Destroy a connection.
        if (conns.empty()) {
          continue;
        }
        const size_t pick =
            static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(conns.size()) - 1));
        const Conn conn = conns[pick];
        conns[pick] = conns.back();
        conns.pop_back();
        for_all([&](ControllerInterface* c) {
          c->ConnDestroy(conn.app, conn.src, conn.dst, conn.salt);
        });
        break;
      }
      default: {  // Tear down an application (drains its connections first).
        const size_t pick =
            static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(apps.size()) - 1));
        const AppId app = apps[pick];
        apps[pick] = apps.back();
        apps.pop_back();
        for (size_t i = conns.size(); i-- > 0;) {
          if (conns[i].app != app) {
            continue;
          }
          const Conn conn = conns[i];
          conns[i] = conns.back();
          conns.pop_back();
          for_all([&](ControllerInterface* c) {
            c->ConnDestroy(conn.app, conn.src, conn.dst, conn.salt);
          });
        }
        for_all([&](ControllerInterface* c) { c->AppDeregister(app); });
        break;
      }
    }
    // Every 50th event: a full recompute (the re-clustering / scale-bench
    // shape) — enough dirty ports that shard_jobs > 1 universes dispatch.
    if (e % 50 == 49) {
      oracle.RecomputeAllPortsTimed();
      for (ShardUniverse& u : universes) {
        u.controller->RecomputeAllPortsTimed();
      }
    }
    for (const ShardUniverse& u : universes) {
      ExpectMatchesOracle(oracle, *oracle_net, u, e);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }

  // Flush accounting: invariant across every (num_shards, shard_jobs).
  const DistributedControllerStats& d0 = universes[0].controller->distributed_stats();
  EXPECT_GT(d0.flushes, 0u);
  EXPECT_GT(d0.ports_flushed, 0u);
  for (const ShardUniverse& u : universes) {
    const DistributedControllerStats& d = u.controller->distributed_stats();
    EXPECT_EQ(d.flushes, d0.flushes) << "shards " << u.num_shards << " jobs " << u.shard_jobs;
    EXPECT_EQ(d.ports_flushed, d0.ports_flushed)
        << "shards " << u.num_shards << " jobs " << u.shard_jobs;
    // First-hop ownership is a partition of the same setups.
    uint64_t setups = 0;
    for (const uint64_t per_shard : d.conn_setups_per_shard) {
      setups += per_shard;
    }
    EXPECT_EQ(setups, u.controller->stats().conn_creates);
    if (u.num_shards == 1) {
      EXPECT_EQ(d.cross_shard_messages, 0u);
    }
    if (u.shard_jobs == 1) {
      EXPECT_EQ(d.parallel_flushes, 0u) << "serial flushes must never dispatch";
    }
  }
  // The pooled universes really did fan out...
  EXPECT_GT(universes[1].controller->distributed_stats().parallel_flushes, 0u);
  EXPECT_GT(universes[3].controller->distributed_stats().parallel_flushes, 0u);
  // ...and dispatch is pure scheduling: at equal shard counts the per-shard
  // caches see identical traffic whether or not a pool was involved.
  EXPECT_EQ(universes[2].controller->stats().eq2_cache_hits,
            universes[3].controller->stats().eq2_cache_hits);
  EXPECT_EQ(universes[2].controller->stats().eq2_cache_misses,
            universes[3].controller->stats().eq2_cache_misses);
}

}  // namespace
}  // namespace saba
