#include "src/numerics/linalg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/rng.h"

namespace saba {
namespace {

TEST(MatrixTest, StorageAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  m.at(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), -2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 1.5);
}

TEST(LeastSquaresQrTest, SquareSystemExact) {
  // [2 1; 1 3] x = [5; 10] -> x = [1; 3].
  Matrix a(2, 2);
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 3;
  const std::vector<double> x = LeastSquaresQr(a, {5, 10});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LeastSquaresQrTest, OverdeterminedMatchesNormalEquations) {
  // Fit y = a + b*x to noisy-but-consistent data with known LS solution.
  // Points: (0,1), (1,2), (2,2), (3,4). Normal equations give a = 0.9, b = 0.9.
  Matrix a(4, 2);
  std::vector<double> b = {1, 2, 2, 4};
  for (int i = 0; i < 4; ++i) {
    a.at(static_cast<size_t>(i), 0) = 1;
    a.at(static_cast<size_t>(i), 1) = i;
  }
  const std::vector<double> x = LeastSquaresQr(a, b);
  EXPECT_NEAR(x[0], 0.9, 1e-12);
  EXPECT_NEAR(x[1], 0.9, 1e-12);
}

TEST(LeastSquaresQrTest, ResidualOrthogonalToColumns) {
  // LS property: A^T (Ax - b) = 0.
  Rng rng(5);
  Matrix a(8, 3);
  std::vector<double> b(8);
  for (size_t r = 0; r < 8; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      a.at(r, c) = rng.Uniform(-2, 2);
    }
    b[r] = rng.Uniform(-2, 2);
  }
  const std::vector<double> x = LeastSquaresQr(a, b);
  for (size_t c = 0; c < 3; ++c) {
    double dot = 0;
    for (size_t r = 0; r < 8; ++r) {
      double residual = -b[r];
      for (size_t k = 0; k < 3; ++k) {
        residual += a.at(r, k) * x[k];
      }
      dot += a.at(r, c) * residual;
    }
    EXPECT_NEAR(dot, 0.0, 1e-9);
  }
}

TEST(LeastSquaresQrTest, RankDeficientColumnYieldsZeroComponent) {
  // Second column is all zeros: its coefficient must come out zero rather
  // than NaN.
  Matrix a(3, 2);
  for (size_t r = 0; r < 3; ++r) {
    a.at(r, 0) = 1;
    a.at(r, 1) = 0;
  }
  const std::vector<double> x = LeastSquaresQr(a, {2, 2, 2});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
  EXPECT_FALSE(std::isnan(x[0]));
}

TEST(VectorHelpersTest, Distances) {
  const std::vector<double> a = {0, 3};
  const std::vector<double> b = {4, 0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, a), 0.0);
}

TEST(VectorHelpersTest, MidpointAndMean) {
  EXPECT_EQ(Midpoint({0, 2}, {4, 6}), (std::vector<double>{2, 4}));
  EXPECT_EQ(MeanVector({{0, 0}, {2, 4}, {4, 2}}), (std::vector<double>{2, 2}));
  EXPECT_EQ(MeanVector({{7, 7}}), (std::vector<double>{7, 7}));
}

}  // namespace
}  // namespace saba
