// The sweep engine's determinism contract (DESIGN.md "Determinism &
// threading model"): parallel report rows are byte-for-byte the serial rows
// for every thread count, task panics surface instead of vanishing into a
// worker thread, and adjacent task streams never overlap.

#include "src/exp/sweep_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/exp/knobs.h"
#include "src/sim/rng.h"

namespace saba {
namespace {

// A miniature figure task: burns a task-dependent amount of Rng stream (so
// task costs are uneven, exercising the stealing path) and renders a report
// row, the byte-level artifact the benches emit.
std::string ReportRow(size_t index, Rng* rng) {
  const int draws = 100 + static_cast<int>(index % 7) * 400;
  double acc = 0;
  for (int i = 0; i < draws; ++i) {
    acc += rng->Uniform01();
  }
  std::ostringstream row;
  row << "task " << index << " mean " << acc / draws << " next " << rng->Next();
  return row.str();
}

TEST(SweepRunnerTest, ParallelRowsAreByteIdenticalToSerial) {
  constexpr size_t kTasks = 64;
  constexpr uint64_t kRoot = 42;
  const std::function<std::string(size_t, Rng*)> task = ReportRow;

  SweepRunner serial(1);
  const std::vector<std::string> reference = serial.MapSeeded<std::string>(kTasks, kRoot, task);
  ASSERT_EQ(reference.size(), kTasks);

  for (int jobs : {2, 8}) {
    SweepRunner runner(jobs);
    const std::vector<std::string> parallel = runner.MapSeeded<std::string>(kTasks, kRoot, task);
    ASSERT_EQ(parallel.size(), kTasks);
    for (size_t i = 0; i < kTasks; ++i) {
      EXPECT_EQ(parallel[i], reference[i]) << "row " << i << " diverged at jobs=" << jobs;
    }
  }
}

TEST(SweepRunnerTest, EveryTaskRunsExactlyOnce) {
  constexpr size_t kTasks = 257;  // Not a multiple of the job count.
  for (int jobs : {1, 2, 8}) {
    std::vector<std::atomic<int>> counts(kTasks);
    SweepRunner runner(jobs);
    runner.Map<int>(kTasks, [&](size_t i) {
      counts[i].fetch_add(1);
      return 0;
    });
    for (size_t i = 0; i < kTasks; ++i) {
      EXPECT_EQ(counts[i].load(), 1) << "task " << i << " at jobs=" << jobs;
    }
  }
}

TEST(SweepRunnerTest, TaskPanicsAreSurfacedNotSwallowed) {
  for (int jobs : {1, 2, 8}) {
    SweepRunner runner(jobs);
    try {
      runner.Map<int>(32, [](size_t i) {
        if (i == 11) {
          throw std::runtime_error("task 11 exploded");
        }
        return static_cast<int>(i);
      });
      FAIL() << "sweep swallowed the task exception at jobs=" << jobs;
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "task 11 exploded");
    }
  }
}

TEST(SweepRunnerTest, WithManyFailuresOneRealErrorIsRethrown) {
  // Several tasks throw. Fast-fail may skip tasks (including other throwers)
  // once the first failure lands, so the surfaced error is the lowest-index
  // *recorded* failure — any one of the throwing tasks, never a fabricated
  // or empty error. At jobs=1 it is always the first thrower.
  for (int jobs : {1, 8}) {
    SweepRunner runner(jobs);
    try {
      runner.Map<int>(64, [](size_t i) -> int {
        if (i % 9 == 3) {  // Tasks 3, 12, 21, ...
          throw std::runtime_error("task " + std::to_string(i));
        }
        return 0;
      });
      FAIL() << "sweep swallowed the task exceptions at jobs=" << jobs;
    } catch (const std::runtime_error& error) {
      const std::string what = error.what();
      ASSERT_EQ(what.rfind("task ", 0), 0u) << what;
      const int index = std::stoi(what.substr(5));
      EXPECT_EQ(index % 9, 3) << what;
      if (jobs == 1) {
        EXPECT_EQ(index, 3);  // Serial: the first thrower, deterministically.
      }
    }
  }
}

TEST(SweepRunnerTest, AdjacentTaskStreamsDoNotOverlap) {
  // The seed-split contract: streams of adjacent task indices (and of
  // neighbouring roots) must be non-overlapping in any realistic prefix.
  constexpr size_t kDraws = 4096;
  for (uint64_t root : {0ull, 1ull, 42ull, 0xdeadbeefdeadbeefull}) {
    for (uint64_t index : {0ull, 1ull, 7ull, 1000ull}) {
      Rng a = Rng::ForStream(root, index);
      Rng b = Rng::ForStream(root, index + 1);
      std::set<uint64_t> seen;
      for (size_t i = 0; i < kDraws; ++i) {
        seen.insert(a.Next());
      }
      for (size_t i = 0; i < kDraws; ++i) {
        EXPECT_EQ(seen.count(b.Next()), 0u)
            << "streams (" << root << ", " << index << ") and +1 collided";
      }
    }
  }
  // Distinct roots must give distinct stream seeds for the same index.
  EXPECT_NE(Rng::StreamSeed(1, 0), Rng::StreamSeed(2, 0));
  EXPECT_NE(Rng::StreamSeed(1, 0), Rng::StreamSeed(1, 1));
}

TEST(SweepRunnerTest, StatsCountTasksAndJobs) {
  SweepRunner runner(4);
  runner.Map<int>(16, [](size_t i) { return static_cast<int>(i); });
  const SweepStats& stats = runner.stats();
  EXPECT_EQ(stats.num_tasks, 16u);
  EXPECT_EQ(stats.jobs, 4);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GE(stats.task_seconds, 0.0);
  EXPECT_GT(stats.TasksPerSecond(), 0.0);
  EXPECT_FALSE(stats.Summary().empty());
}

TEST(SweepRunnerTest, MoreJobsThanTasksIsCapped) {
  SweepRunner runner(64);
  const std::vector<int> out = runner.Map<int>(3, [](size_t i) { return static_cast<int>(i); });
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(runner.stats().jobs, 3);
}

TEST(SweepRunnerTest, EmptySweepIsANoop) {
  SweepRunner runner(8);
  EXPECT_TRUE(runner.Map<int>(0, [](size_t) { return 1; }).empty());
  EXPECT_EQ(runner.stats().num_tasks, 0u);
}

TEST(KnobsTest, ParseInt64AcceptsWholeIntegersOnly) {
  EXPECT_EQ(ParseInt64("0"), 0);
  EXPECT_EQ(ParseInt64("123"), 123);
  EXPECT_EQ(ParseInt64("-7"), -7);
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("12x").has_value());      // std::atoi would give 12.
  EXPECT_FALSE(ParseInt64("x12").has_value());      // std::atoi would give 0.
  EXPECT_FALSE(ParseInt64("4 2").has_value());
  EXPECT_FALSE(ParseInt64(" 42").has_value());
  EXPECT_FALSE(ParseInt64("42 ").has_value());
  EXPECT_FALSE(ParseInt64("1e3").has_value());      // The empty-sweep typo.
  EXPECT_FALSE(ParseInt64("99999999999999999999").has_value());  // Overflow.
}

TEST(KnobsTest, MalformedKnobAbortsInsteadOfZero) {
  // EnvInt on a malformed value must die loudly (exit 2), never return 0.
  // This test *is* the knob machinery's test, so it plants env vars directly.
  ASSERT_EQ(setenv("SABA_TEST_KNOB", "1O0", 1), 0);  // saba-lint: allow(R5): tests knobs itself.
  EXPECT_EXIT(EnvInt("SABA_TEST_KNOB", 5), testing::ExitedWithCode(2), "not an integer");
  ASSERT_EQ(setenv("SABA_TEST_KNOB", "100", 1), 0);  // saba-lint: allow(R5): tests knobs itself.
  EXPECT_EQ(EnvInt("SABA_TEST_KNOB", 5), 100);
  unsetenv("SABA_TEST_KNOB");  // saba-lint: allow(R5): tests knobs itself.
}

}  // namespace
}  // namespace saba
