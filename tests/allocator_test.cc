#include "src/net/allocator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/net/network.h"
#include "src/net/topology.h"
#include "src/net/units.h"
#include "src/sim/rng.h"

namespace saba {
namespace {

// Test fixture with a 4-host star at 10 Gb/s and hand-built flows.
class AllocatorTest : public ::testing::Test {
 protected:
  AllocatorTest() : network_(BuildSingleSwitchStar(4, Gbps64(10)), /*default_queues=*/8) {}

  // Creates a flow and resolves its path; the returned pointer stays valid
  // for the fixture's lifetime.
  ActiveFlow* MakeFlow(AppId app, NodeId src, NodeId dst, double bits, int sl = 0,
                       uint64_t salt = 0) {
    auto flow = std::make_unique<ActiveFlow>();
    flow->id = static_cast<FlowId>(flows_.size() + 1);
    flow->app = app;
    flow->sl = sl;
    flow->remaining_bits = bits;
    flow->path = &network_.router().Route(src, dst, salt);
    flows_.push_back(std::move(flow));
    return flows_.back().get();
  }

  std::vector<ActiveFlow*> AllFlows() {
    std::vector<ActiveFlow*> out;
    for (auto& f : flows_) {
      out.push_back(f.get());
    }
    return out;
  }

  Network network_;
  std::vector<std::unique_ptr<ActiveFlow>> flows_;
};

TEST_F(AllocatorTest, SingleFlowGetsFullLinkCapacity) {
  MakeFlow(0, 0, 1, Gigabytes(1));
  WfqMaxMinAllocator alloc;
  alloc.Allocate(AllFlows(), network_);
  EXPECT_NEAR(flows_[0]->rate, Gbps(10), Gbps(0.001));
}

TEST_F(AllocatorTest, TwoFlowsSameQueueSplitEqually) {
  MakeFlow(0, 0, 1, Gigabytes(1));
  MakeFlow(1, 2, 1, Gigabytes(1));  // Shares only the switch->host1 egress.
  WfqMaxMinAllocator alloc;
  alloc.Allocate(AllFlows(), network_);
  EXPECT_NEAR(flows_[0]->rate, Gbps(5), Gbps(0.01));
  EXPECT_NEAR(flows_[1]->rate, Gbps(5), Gbps(0.01));
}

TEST_F(AllocatorTest, QueueWeightsGiveProportionalShares) {
  // Two flows into host 1, different SLs mapped to queues 0 and 1 with
  // weights 3:1.
  network_.MapSlToQueueEverywhere(0, 0);
  network_.MapSlToQueueEverywhere(1, 1);
  for (size_t l = 0; l < network_.topology().num_links(); ++l) {
    PortConfig& port = network_.port(static_cast<LinkId>(l));
    port.queue_weights.assign(static_cast<size_t>(port.num_queues), 1.0);
    port.queue_weights[0] = 3.0;
    port.queue_weights[1] = 1.0;
  }
  MakeFlow(0, 0, 1, Gigabytes(1), /*sl=*/0);
  MakeFlow(1, 2, 1, Gigabytes(1), /*sl=*/1);
  WfqMaxMinAllocator alloc;
  alloc.Allocate(AllFlows(), network_);
  EXPECT_NEAR(flows_[0]->rate, Gbps(7.5), Gbps(0.01));
  EXPECT_NEAR(flows_[1]->rate, Gbps(2.5), Gbps(0.01));
}

TEST_F(AllocatorTest, WorkConservingWhenOneQueueBottleneckedElsewhere) {
  // Flow A (queue 0, weight 3) from host0 is bottlenecked at host0 egress by
  // its sibling; flow B (queue 1, weight 1) should soak up the slack at the
  // host1 ingress.
  network_.MapSlToQueueEverywhere(1, 1);
  for (size_t l = 0; l < network_.topology().num_links(); ++l) {
    PortConfig& port = network_.port(static_cast<LinkId>(l));
    port.queue_weights[0] = 3.0;
    port.queue_weights[1] = 1.0;
  }
  // Two same-queue flows leaving host0 split its egress: each 5 Gb/s.
  MakeFlow(0, 0, 1, Gigabytes(1), /*sl=*/0);
  MakeFlow(0, 0, 2, Gigabytes(1), /*sl=*/0);
  // Flow into host1 from host3 in the low-weight queue.
  MakeFlow(1, 3, 1, Gigabytes(1), /*sl=*/1);
  WfqMaxMinAllocator alloc;
  alloc.Allocate(AllFlows(), network_);
  // Flow 0 gets 5 at host0 egress; the host1 ingress then has 5 left, which
  // flow 2 takes despite its nominal 1/4 share: work conservation.
  EXPECT_NEAR(flows_[0]->rate, Gbps(5), Gbps(0.05));
  EXPECT_NEAR(flows_[2]->rate, Gbps(5), Gbps(0.05));
}

TEST_F(AllocatorTest, NoLinkIsOversubscribed) {
  // Random-ish mesh of flows; verify per-link sums.
  int id = 0;
  for (NodeId s = 0; s < 4; ++s) {
    for (NodeId d = 0; d < 4; ++d) {
      if (s != d) {
        MakeFlow(id % 3, s, d, Gigabytes(1), /*sl=*/id % 2);
        ++id;
      }
    }
  }
  WfqMaxMinAllocator alloc;
  alloc.Allocate(AllFlows(), network_);
  std::vector<double> link_load(network_.topology().num_links(), 0.0);
  for (auto& f : flows_) {
    EXPECT_GT(f->rate, 0.0);
    for (LinkId l : *f->path) {
      link_load[static_cast<size_t>(l)] += f->rate;
    }
  }
  for (size_t l = 0; l < link_load.size(); ++l) {
    EXPECT_LE(link_load[l], network_.topology().link(static_cast<LinkId>(l)).capacity_bps *
                                (1.0 + 1e-9));
  }
}

TEST_F(AllocatorTest, EveryFlowIsBottleneckedSomewhere) {
  int id = 0;
  for (NodeId s = 0; s < 4; ++s) {
    for (NodeId d = 0; d < 4; ++d) {
      if (s != d) {
        MakeFlow(id++, s, d, Gigabytes(1));
      }
    }
  }
  WfqMaxMinAllocator alloc;
  alloc.Allocate(AllFlows(), network_);
  // Work conservation: each flow crosses at least one saturated link.
  std::vector<double> link_load(network_.topology().num_links(), 0.0);
  for (auto& f : flows_) {
    for (LinkId l : *f->path) {
      link_load[static_cast<size_t>(l)] += f->rate;
    }
  }
  for (auto& f : flows_) {
    bool bottlenecked = false;
    for (LinkId l : *f->path) {
      if (link_load[static_cast<size_t>(l)] >=
          network_.topology().link(l).capacity_bps * (1.0 - 1e-6)) {
        bottlenecked = true;
      }
    }
    EXPECT_TRUE(bottlenecked) << "flow " << f->id << " not bottlenecked";
  }
}

TEST_F(AllocatorTest, FecnModelShrinksCapacityUnderAppMixing) {
  network_.SetCongestionModel(std::make_unique<FecnCongestionModel>(0.2));
  MakeFlow(0, 0, 1, Gigabytes(1));
  MakeFlow(1, 2, 1, Gigabytes(1));
  WfqMaxMinAllocator alloc;
  alloc.Allocate(AllFlows(), network_);
  const double total = flows_[0]->rate + flows_[1]->rate;
  const double ln2 = std::log(2.0);
  const double expected_eff = 1.0 / (1.0 + 0.2 * ln2 * ln2 * 0.5);
  EXPECT_NEAR(total, Gbps(10) * expected_eff, Gbps(0.05));
}

TEST_F(AllocatorTest, FecnDoesNotPenalizeSingleAppQueues) {
  network_.SetCongestionModel(std::make_unique<FecnCongestionModel>(0.2));
  // Two apps, separated into distinct queues: full efficiency.
  network_.MapSlToQueueEverywhere(1, 1);
  MakeFlow(0, 0, 1, Gigabytes(1), /*sl=*/0);
  MakeFlow(1, 2, 1, Gigabytes(1), /*sl=*/1);
  WfqMaxMinAllocator alloc;
  alloc.Allocate(AllFlows(), network_);
  EXPECT_NEAR(flows_[0]->rate + flows_[1]->rate, Gbps(10), Gbps(0.01));
}

TEST_F(AllocatorTest, PerAppAllocatorSplitsByAppNotByFlowCount) {
  // App 0 has 3 flows into host1; app 1 has 1. Per-app fairness gives each
  // app 5 Gb/s.
  MakeFlow(0, 0, 1, Gigabytes(1), 0, /*salt=*/1);
  MakeFlow(0, 2, 1, Gigabytes(1), 0, /*salt=*/2);
  MakeFlow(0, 3, 1, Gigabytes(1), 0, /*salt=*/3);
  MakeFlow(1, 2, 1, Gigabytes(1), 0, /*salt=*/4);
  PerAppWfqAllocator alloc;
  alloc.Allocate(AllFlows(), network_);
  const double app0 = flows_[0]->rate + flows_[1]->rate + flows_[2]->rate;
  EXPECT_NEAR(app0, Gbps(5), Gbps(0.05));
  EXPECT_NEAR(flows_[3]->rate, Gbps(5), Gbps(0.05));
}

TEST_F(AllocatorTest, PerAppAllocatorHonoursWeightFunction) {
  MakeFlow(0, 0, 1, Gigabytes(1));
  MakeFlow(1, 2, 1, Gigabytes(1));
  PerAppWfqAllocator alloc([](LinkId, AppId app) { return app == 0 ? 3.0 : 1.0; });
  alloc.Allocate(AllFlows(), network_);
  EXPECT_NEAR(flows_[0]->rate, Gbps(7.5), Gbps(0.05));
  EXPECT_NEAR(flows_[1]->rate, Gbps(2.5), Gbps(0.05));
}

TEST_F(AllocatorTest, StrictPriorityServesHigherClassFirst) {
  ActiveFlow* high = MakeFlow(0, 0, 1, Gigabytes(1));
  ActiveFlow* low = MakeFlow(1, 2, 1, Gigabytes(1));
  high->priority = 0;
  low->priority = 5;
  StrictPriorityAllocator alloc;
  alloc.Allocate(AllFlows(), network_);
  EXPECT_NEAR(high->rate, Gbps(10), Gbps(0.01));
  EXPECT_NEAR(low->rate, 0.0, Gbps(0.01));
}

TEST_F(AllocatorTest, StrictPriorityLowerClassGetsLeftovers) {
  // High-priority flow bottlenecked at host0 egress leaves host1 ingress
  // partially free for the low-priority one.
  ActiveFlow* high_a = MakeFlow(0, 0, 1, Gigabytes(1));
  ActiveFlow* high_b = MakeFlow(0, 0, 2, Gigabytes(1));
  ActiveFlow* low = MakeFlow(1, 3, 1, Gigabytes(1));
  high_a->priority = 0;
  high_b->priority = 0;
  low->priority = 1;
  StrictPriorityAllocator alloc;
  alloc.Allocate(AllFlows(), network_);
  EXPECT_NEAR(high_a->rate, Gbps(5), Gbps(0.05));
  EXPECT_NEAR(low->rate, Gbps(5), Gbps(0.05));
}

TEST_F(AllocatorTest, SamePriorityIsMaxMinWithinClass) {
  ActiveFlow* a = MakeFlow(0, 0, 1, Gigabytes(1));
  ActiveFlow* b = MakeFlow(1, 2, 1, Gigabytes(1));
  a->priority = 2;
  b->priority = 2;
  StrictPriorityAllocator alloc;
  alloc.Allocate(AllFlows(), network_);
  EXPECT_NEAR(a->rate, Gbps(5), Gbps(0.05));
  EXPECT_NEAR(b->rate, Gbps(5), Gbps(0.05));
}

// Classical max-min optimality characterization: an allocation is per-flow
// max-min fair iff every flow has a *bottleneck link* — a saturated link on
// its path where no other flow gets a higher rate. Verifying this on random
// topologies is an implementation-independent check of the progressive
// filling engine (the unweighted max-min allocation is unique).
class MaxMinPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MaxMinPropertyTest, EveryFlowHasABottleneckLink) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 17);
  const bool fabric = rng.Bernoulli(0.5);
  Topology topo =
      fabric ? BuildSpineLeaf({.num_spine = 2,
                               .num_leaf = 4,
                               .num_tor = 4,
                               .hosts_per_tor = 3,
                               .num_pods = 2,
                               .host_link_bps = Gbps64(10),
                               .tor_leaf_bps = Gbps64(10),
                               .leaf_spine_bps = Gbps64(10)})
             : BuildSingleSwitchStar(6, Gbps64(10));
  Network network(std::move(topo), 1);  // Single queue: pure per-flow max-min.
  const std::vector<NodeId> hosts = network.topology().Hosts();

  std::vector<std::unique_ptr<ActiveFlow>> storage;
  std::vector<ActiveFlow*> flows;
  const int num_flows = static_cast<int>(rng.UniformInt(3, 24));
  for (int f = 0; f < num_flows; ++f) {
    NodeId src = rng.Choice(hosts);
    NodeId dst = rng.Choice(hosts);
    while (dst == src) {
      dst = rng.Choice(hosts);
    }
    auto flow = std::make_unique<ActiveFlow>();
    flow->id = f;
    flow->app = f;
    flow->remaining_bits = Gigabytes(1);
    flow->path = &network.router().Route(src, dst, static_cast<uint64_t>(f));
    storage.push_back(std::move(flow));
    flows.push_back(storage.back().get());
  }

  WfqMaxMinAllocator allocator;
  allocator.Allocate(flows, network);

  // Per-link loads.
  std::vector<double> load(network.topology().num_links(), 0.0);
  std::vector<double> max_rate_on_link(network.topology().num_links(), 0.0);
  for (const ActiveFlow* flow : flows) {
    EXPECT_GT(flow->rate, 0.0);
    for (LinkId l : *flow->path) {
      load[static_cast<size_t>(l)] += flow->rate;
      max_rate_on_link[static_cast<size_t>(l)] =
          std::max(max_rate_on_link[static_cast<size_t>(l)], BpsToDouble(flow->rate));
    }
  }
  // Feasibility.
  for (size_t l = 0; l < load.size(); ++l) {
    EXPECT_LE(load[l],
              network.topology().link(static_cast<LinkId>(l)).capacity_bps * (1.0 + 1e-9));
  }
  // Bottleneck condition.
  for (const ActiveFlow* flow : flows) {
    bool has_bottleneck = false;
    for (LinkId l : *flow->path) {
      const bool saturated =
          load[static_cast<size_t>(l)] >=
          network.topology().link(l).capacity_bps * (1.0 - 1e-6);
      const bool is_max = flow->rate >= max_rate_on_link[static_cast<size_t>(l)] - 1.0;
      if (saturated && is_max) {
        has_bottleneck = true;
        break;
      }
    }
    EXPECT_TRUE(has_bottleneck) << "flow " << flow->id << " lacks a bottleneck (param "
                                << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, MaxMinPropertyTest, ::testing::Range(1, 25));

TEST_F(AllocatorTest, NestedRedistributionConvergesAcrossQueues) {
  // Three queues with weights 2:1:1; queue 0's only flow is bottlenecked at
  // its own source to 1 Gb/s; queues 1 and 2 should split the remainder of
  // host1's ingress 1:1 after redistribution (4.5 each).
  network_.MapSlToQueueEverywhere(1, 1);
  network_.MapSlToQueueEverywhere(2, 2);
  for (size_t l = 0; l < network_.topology().num_links(); ++l) {
    PortConfig& port = network_.port(static_cast<LinkId>(l));
    port.queue_weights[0] = 2.0;
    port.queue_weights[1] = 1.0;
    port.queue_weights[2] = 1.0;
  }
  // Throttle host0's uplink so queue 0's flow cannot exceed 1 Gb/s.
  network_.topology().SetLinkCapacity(network_.topology().FindLink(0, 4), Gbps64(1));
  MakeFlow(0, 0, 1, Gigabytes(1), /*sl=*/0);
  MakeFlow(1, 2, 1, Gigabytes(1), /*sl=*/1);
  MakeFlow(2, 3, 1, Gigabytes(1), /*sl=*/2);
  WfqMaxMinAllocator alloc;
  alloc.Allocate(AllFlows(), network_);
  EXPECT_NEAR(flows_[0]->rate, Gbps(1), Gbps(0.02));
  EXPECT_NEAR(flows_[1]->rate, Gbps(4.5), Gbps(0.1));
  EXPECT_NEAR(flows_[2]->rate, Gbps(4.5), Gbps(0.1));
}

TEST_F(AllocatorTest, IntraWeightsActPerQueueIndependently) {
  // Queue 0: a critical and a prefetch flow (1 : 0.15); queue 1: one flow.
  // Equal queue weights: queue shares 5/5; inside queue 0 the split is
  // 0.87 : 0.13 of its 5 Gb/s.
  network_.MapSlToQueueEverywhere(1, 1);
  ActiveFlow* critical = MakeFlow(0, 0, 1, Gigabytes(1), /*sl=*/0, /*salt=*/1);
  ActiveFlow* prefetch = MakeFlow(0, 2, 1, Gigabytes(1), /*sl=*/0, /*salt=*/2);
  prefetch->intra_weight = 0.15;
  MakeFlow(1, 3, 1, Gigabytes(1), /*sl=*/1, /*salt=*/3);
  WfqMaxMinAllocator alloc;
  alloc.Allocate(AllFlows(), network_);
  EXPECT_NEAR(flows_[2]->rate, Gbps(5), Gbps(0.05));
  EXPECT_NEAR(critical->rate, Gbps(5) * (1.0 / 1.15), Gbps(0.05));
  EXPECT_NEAR(prefetch->rate, Gbps(5) * (0.15 / 1.15), Gbps(0.05));
}

TEST_F(AllocatorTest, PerAppAllocatorAlsoWorkConserving) {
  // App 0's only flow is source-throttled; app 1 reclaims the ingress slack.
  network_.topology().SetLinkCapacity(network_.topology().FindLink(0, 4), Gbps64(2));
  MakeFlow(0, 0, 1, Gigabytes(1), 0, 1);
  MakeFlow(1, 2, 1, Gigabytes(1), 0, 2);
  PerAppWfqAllocator alloc;
  alloc.Allocate(AllFlows(), network_);
  EXPECT_NEAR(flows_[0]->rate, Gbps(2), Gbps(0.05));
  EXPECT_NEAR(flows_[1]->rate, Gbps(8), Gbps(0.1));
}

TEST(FecnCongestionModelTest, EfficiencyCurve) {
  FecnCongestionModel model(0.25);
  EXPECT_DOUBLE_EQ(model.QueueEfficiency(0), 1.0);
  EXPECT_DOUBLE_EQ(model.QueueEfficiency(1), 1.0);
  // Two similar apps sharing a VL coexist almost losslessly...
  EXPECT_GT(model.QueueEfficiency(2), 0.9);
  EXPECT_LT(model.QueueEfficiency(2), 1.0);
  // ...while a FIFO mixing a dozen applications loses nearly half.
  EXPECT_LT(model.QueueEfficiency(16), 0.65);
  EXPECT_LT(model.QueueEfficiency(16), model.QueueEfficiency(2));
  EXPECT_GT(model.QueueEfficiency(16), 0.3);
}

TEST(IdealCongestionModelTest, AlwaysOne) {
  IdealCongestionModel model;
  EXPECT_DOUBLE_EQ(model.QueueEfficiency(1), 1.0);
  EXPECT_DOUBLE_EQ(model.QueueEfficiency(100), 1.0);
}

}  // namespace
}  // namespace saba
