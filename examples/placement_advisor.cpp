// Placement advisor: use sensitivity models to decide which jobs to
// co-locate, then validate the advice by simulation.
//
//   ./build/examples/placement_advisor
//
// The planner predicts (from models alone, microseconds) that spreading
// sensitive jobs across racks beats clustering them; the simulation then
// confirms it on a two-rack fabric.

#include <cstdio>

#include "src/core/planner.h"
#include "src/core/profiler.h"
#include "src/exp/corun.h"
#include "src/net/units.h"
#include "src/numerics/stats.h"
#include "src/workload/workload_catalog.h"

namespace {

using namespace saba;

// Runs the 8 jobs with the given per-job rack assignment on a 2-rack fabric
// under Saba and returns the geometric-mean job completion time — the
// absolute quantity the planner minimizes (speedup *over baseline* would
// reward bad placements for making the baseline worse).
double SimulatePlacement(const std::vector<std::string>& mix, const std::vector<int>& rack,
                         const SensitivityTable& table) {
  Topology topo = BuildSpineLeaf({.num_spine = 1,
                                  .num_leaf = 2,
                                  .num_tor = 2,
                                  .hosts_per_tor = 8,
                                  .num_pods = 2,
                                  .host_link_bps = Gbps64(56),
                                  .tor_leaf_bps = Gbps64(56),
                                  .leaf_spine_bps = Gbps64(56)});
  std::vector<JobSpec> jobs;
  for (size_t j = 0; j < mix.size(); ++j) {
    JobSpec job;
    job.spec = ScaleWorkload(*FindWorkload(mix[j]), 1.0, 8);
    const NodeId base = rack[j] == 0 ? 0 : 8;
    for (NodeId i = 0; i < 8; ++i) {
      job.hosts.push_back(base + i);
    }
    job.start_at = 0.25 * static_cast<double>(j);
    jobs.push_back(std::move(job));
  }
  CoRunOptions saba;
  saba.policy = PolicyKind::kSaba;
  saba.table = &table;
  const CoRunResult managed = RunCoRun(topo, jobs, saba);
  return GeometricMean(managed.completion_seconds);
}

}  // namespace

int main() {
  using namespace saba;

  const std::vector<std::string> mix = {"LR", "RF", "GBT", "SVM", "PR", "SQL", "WC", "Sort"};
  OfflineProfiler profiler(ProfilerOptions{});
  std::vector<WorkloadSpec> specs;
  for (const std::string& name : mix) {
    specs.push_back(*FindWorkload(name));
  }
  const SensitivityTable table = profiler.ProfileAll(specs);

  CoRunPlanner planner(&table);
  Rng rng(11);

  // Model-only prediction of the whole mix on one shared domain.
  const CoRunPrediction prediction = planner.Predict(mix, &rng);
  std::printf("predicted Saba-vs-equal speedup for the full mix on one domain: %.2fx\n\n",
              prediction.predicted_speedup);

  // Partition advice: 2 racks.
  const PartitionPlan plan = planner.Partition(mix, 2, &rng);
  std::printf("advised split (sensitive jobs spread apart):\n  rack0:");
  for (size_t j = 0; j < mix.size(); ++j) {
    if (plan.group[j] == 0) {
      std::printf(" %s", mix[j].c_str());
    }
  }
  std::printf("\n  rack1:");
  for (size_t j = 0; j < mix.size(); ++j) {
    if (plan.group[j] == 1) {
      std::printf(" %s", mix[j].c_str());
    }
  }
  std::printf("\n\n");

  // Validate against the naive split (first half / second half), which
  // clusters all the ML jobs on one rack.
  const std::vector<int> naive = {0, 0, 0, 0, 1, 1, 1, 1};
  const double advised = SimulatePlacement(mix, plan.group, table);
  const double clustered = SimulatePlacement(mix, naive, table);
  std::printf("simulated completion time under Saba (geometric mean across jobs):\n");
  std::printf("  advised placement:   %.1f s\n", advised);
  std::printf("  clustered placement: %.1f s  (all ML jobs on one rack)\n", clustered);
  std::printf("(spreading the sensitive jobs keeps them from fighting each other for\n"
              " the same headroom: %.0f%% faster completion for the same hardware)\n",
              (clustered / advised - 1.0) * 100.0);
  return 0;
}
