// Command-line profiler: runs Saba's offline profiling for one catalog
// workload (or all of them) and emits the sensitivity table as CSV — the
// artifact the controller (or a distributed controller's mapping database)
// consumes.
//
//   ./build/examples/profiler_tool              # profile the whole catalog
//   ./build/examples/profiler_tool LR           # one workload, with details
//   ./build/examples/profiler_tool LR 2         # ... with a degree-2 fit

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/profiler.h"
#include "src/workload/workload_catalog.h"

int main(int argc, char** argv) {
  using namespace saba;

  ProfilerOptions options;
  if (argc >= 3) {
    const int degree = std::atoi(argv[2]);
    if (degree < 1 || degree > 5) {
      std::fprintf(stderr, "usage: %s [workload] [degree 1..5]\n", argv[0]);
      return 1;
    }
    options.polynomial_degree = static_cast<size_t>(degree);
  }
  OfflineProfiler profiler(options);

  if (argc >= 2) {
    const WorkloadSpec* spec = FindWorkload(argv[1]);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown workload '%s'; catalog:", argv[1]);
      for (const WorkloadSpec& w : HiBenchCatalog()) {
        std::fprintf(stderr, " %s", w.name.c_str());
      }
      std::fprintf(stderr, "\n");
      return 1;
    }
    const ProfileResult result = profiler.Profile(*spec);
    std::fprintf(stderr, "workload %s: base %.1f s, fit degree %zu, R^2 %.3f\n",
                 spec->name.c_str(), result.base_completion_seconds,
                 options.polynomial_degree, result.r_squared);
    std::fprintf(stderr, "samples (bandwidth fraction -> slowdown):\n");
    for (const Sample& s : result.samples) {
      std::fprintf(stderr, "  %3.0f%% -> %.2fx\n", s.b * 100, s.d);
    }
    SensitivityTable table;
    table.Put(spec->name,
              {result.model, result.r_squared, result.samples, result.base_completion_seconds});
    std::fputs(table.ToCsv().c_str(), stdout);
    return 0;
  }

  const SensitivityTable table = profiler.ProfileAll(HiBenchCatalog());
  std::fputs(table.ToCsv().c_str(), stdout);
  std::fprintf(stderr, "profiled %zu workloads (CSV on stdout: name, R^2, base seconds, "
                       "polynomial coefficients)\n",
               table.size());
  return 0;
}
