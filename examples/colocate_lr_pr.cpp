// The paper's motivating experiment (§2.2, Fig 1b), reproduced through the
// public API: LR (bandwidth-sensitive) and PR (insensitive) share an
// 8-server cluster under three allocation regimes — per-flow max-min, Saba's
// sensitivity-derived skew, and idealized per-application max-min.
//
//   ./build/examples/colocate_lr_pr

#include <cstdio>

#include "src/core/profiler.h"
#include "src/exp/corun.h"
#include "src/net/units.h"
#include "src/workload/workload_catalog.h"

int main() {
  using namespace saba;

  const WorkloadSpec& lr = *FindWorkload("LR");
  const WorkloadSpec& pr = *FindWorkload("PR");

  // Stand-alone completion times are the denominator of every slowdown.
  const double lr_alone = OfflineProfiler::RunIsolated(lr, 1.0, 8, Gbps(56));
  const double pr_alone = OfflineProfiler::RunIsolated(pr, 1.0, 8, Gbps(56));
  std::printf("stand-alone: LR %.0f s, PR %.0f s\n\n", lr_alone, pr_alone);

  OfflineProfiler profiler(ProfilerOptions{});
  const SensitivityTable table = profiler.ProfileAll({lr, pr});

  std::vector<NodeId> hosts;
  for (NodeId h = 0; h < 8; ++h) {
    hosts.push_back(h);
  }
  const std::vector<JobSpec> jobs = {{lr, hosts, 0.0}, {pr, hosts, 0.0}};
  const Topology topo = BuildSingleSwitchStar(8, Gbps64(56));

  std::printf("%-22s %14s %14s\n", "allocation scheme", "LR slowdown", "PR slowdown");
  for (PolicyKind policy :
       {PolicyKind::kBaseline, PolicyKind::kSaba, PolicyKind::kIdealMaxMin}) {
    CoRunOptions options;
    options.policy = policy;
    options.table = &table;
    const CoRunResult result = RunCoRun(topo, jobs, options);
    std::printf("%-22s %13.2fx %13.2fx\n", PolicyName(policy),
                result.completion_seconds[0] / lr_alone,
                result.completion_seconds[1] / pr_alone);
  }
  std::printf(
      "\npaper (Fig 1b): max-min LR 2.26x / PR 1.21x; skewed LR 1.48x / PR 1.34x.\n"
      "Saba trades a few percent of PR for a large LR win: that asymmetry is the\n"
      "whole idea behind sensitivity-aware allocation.\n");
  return 0;
}
