// Non-Saba co-existence (paper §3): the operator statically reserves queues
// (and a capacity share) for latency-critical services outside Saba's
// control; Saba dynamically manages the rest. This example runs a Saba job
// flooding a port while a non-compliant RPC service keeps its reserved share.
//
//   ./build/examples/coexistence

#include <cstdio>

#include "src/core/controller.h"
#include "src/core/profiler.h"
#include "src/net/units.h"
#include "src/sim/event_scheduler.h"
#include "src/workload/workload_catalog.h"

int main() {
  using namespace saba;

  // Fabric: 4 hosts, one switch, 8 queues per port. The operator reserves
  // the last 2 queues and 30% of capacity for non-Saba traffic.
  EventScheduler scheduler;
  Network network(BuildSingleSwitchStar(4, Gbps64(56)), /*default_queues=*/8);
  WfqMaxMinAllocator allocator;
  FlowSimulator flow_sim(&scheduler, &network, &allocator);

  OfflineProfiler profiler(ProfilerOptions{});
  SensitivityTable table;
  const ProfileResult lr = profiler.Profile(*FindWorkload("LR"));
  table.Put("LR", {lr.model, lr.r_squared, lr.samples, lr.base_completion_seconds});

  ControllerOptions options;
  options.num_pls = 4;
  options.reserved_queues = 2;
  options.reserved_queue_weight = 0.15;  // 2 queues x 0.15 = 30% reserved.
  options.c_saba = 0.70;
  CentralizedController controller(&network, &flow_sim, &table, options);

  // A Saba-compliant bulk job floods host 1's ingress...
  controller.AppRegister(1, "LR");
  controller.ConnCreate(1, 0, 1, 0);
  flow_sim.StartFlow(1, 0, 1, Gbps(56) * 600, controller.CurrentServiceLevel(1), 0, nullptr);

  // ...while a non-compliant RPC service (never registered with Saba) sends
  // on SL 15, which the controller routes to the first reserved queue.
  const FlowId rpc = flow_sim.StartFlow(99, 2, 1, Gbps(56) * 600, /*sl=*/15, 0, nullptr);

  scheduler.RunUntil(1.0);

  const double saba_rate = flow_sim.HostEgressRate(0);
  const double rpc_rate = flow_sim.FlowRate(rpc);
  std::printf("under full contention on host 1's 56 Gb/s ingress:\n");
  std::printf("  Saba bulk job:  %5.1f Gb/s (managed share, C_saba = 70%%)\n", saba_rate / 1e9);
  std::printf("  non-Saba RPCs:  %5.1f Gb/s (reserved queue, weight 15%%)\n", rpc_rate / 1e9);

  // When the bulk job goes quiet, work conservation hands the RPC service
  // the whole port despite its small reserved weight.
  scheduler.RunUntil(2.0);
  FlowId bulk = kInvalidFlow;
  flow_sim.ForEachActiveFlow([&](const ActiveFlow& flow) {
    if (flow.id != rpc) {
      bulk = flow.id;
    }
  });
  flow_sim.CancelFlow(bulk);
  scheduler.RunUntil(2.1);
  std::printf("after the bulk job stops (work conservation):\n");
  std::printf("  non-Saba RPCs:  %5.1f Gb/s\n", flow_sim.FlowRate(rpc) / 1e9);
  return 0;
}
