// sabasim: run a scenario file through the simulator and compare the chosen
// policy against the baseline.
//
//   ./build/examples/sabasim scenario.txt
//   ./build/examples/sabasim -          # read the scenario from stdin
//
// Scenario format: see src/exp/scenario.h. Example:
//
//   topology star servers=16 capacity_gbps=56
//   policy saba
//   seed 7
//   job LR nodes=16
//   job PR nodes=16
//   job Sort nodes=8 dataset=10 start=3

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/core/profiler.h"
#include "src/exp/scenario.h"
#include "src/numerics/stats.h"
#include "src/workload/workload_catalog.h"

int main(int argc, char** argv) {
  using namespace saba;

  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <scenario-file | ->\n", argv[0]);
    return 1;
  }
  std::string text;
  if (std::string(argv[1]) == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open '%s'\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  std::string error;
  const auto scenario = ParseScenario(text, &error);
  if (!scenario.has_value()) {
    std::fprintf(stderr, "scenario error: %s\n", error.c_str());
    return 1;
  }

  // Profile only the workloads the scenario references.
  std::vector<WorkloadSpec> needed;
  for (const ScenarioJob& job : scenario->jobs) {
    const WorkloadSpec* spec = FindWorkload(job.workload);
    if (std::none_of(needed.begin(), needed.end(),
                     [&](const WorkloadSpec& w) { return w.name == spec->name; })) {
      needed.push_back(*spec);
    }
  }
  std::fprintf(stderr, "profiling %zu workload(s)...\n", needed.size());
  ProfilerOptions profiler_options;
  profiler_options.seed = scenario->seed;
  const SensitivityTable table = OfflineProfiler(profiler_options).ProfileAll(needed);

  // Baseline reference run, then the scenario's policy.
  Scenario baseline = *scenario;
  baseline.options.policy = PolicyKind::kBaseline;
  const CoRunResult base = RunScenario(baseline, table);
  const CoRunResult result = RunScenario(*scenario, table);

  std::printf("%-4s %-6s %7s %9s | %12s %12s %9s\n", "job", "wl", "nodes", "dataset",
              "baseline s", "policy s", "speedup");
  for (size_t j = 0; j < scenario->jobs.size(); ++j) {
    const ScenarioJob& job = scenario->jobs[j];
    std::printf("%-4zu %-6s %7d %9.2f | %12.1f %12.1f %8.2fx\n", j, job.workload.c_str(),
                job.nodes, job.dataset_scale, base.completion_seconds[j],
                result.completion_seconds[j],
                base.completion_seconds[j] / result.completion_seconds[j]);
  }
  std::printf("policy: %s   average speedup: %.2fx\n", PolicyName(scenario->options.policy),
              GeometricMean(Speedups(base, result)));
  return 0;
}
