// Datacenter-scale scenario: a small spine-leaf fabric, a mixed batch of
// catalog jobs placed across racks, and Saba's centralized controller
// reacting to registrations and per-stage connection churn.
//
//   ./build/examples/datacenter_sim
//
// Shows the pieces a deployment touches: topology construction, profiling,
// policy selection, and the controller statistics (reclusterings, port
// reconfigurations, calculation time).

#include <cstdio>

#include "src/core/profiler.h"
#include "src/exp/cluster_setup.h"
#include "src/exp/corun.h"
#include "src/net/units.h"
#include "src/numerics/stats.h"
#include "src/workload/workload_catalog.h"

int main() {
  using namespace saba;

  // A 2-pod spine-leaf fabric: 4 spine, 8 leaf, 8 ToR switches, 72 servers.
  SpineLeafParams params;
  params.num_spine = 4;
  params.num_leaf = 8;
  params.num_tor = 8;
  params.hosts_per_tor = 9;
  params.num_pods = 2;
  const Topology topo = BuildSpineLeaf(params);
  std::printf("fabric: %zu nodes, %zu directed links, %zu servers\n", topo.num_nodes(),
              topo.num_links(), topo.Hosts().size());

  // Profile the catalog once (the operator does this ahead of time).
  OfflineProfiler profiler(ProfilerOptions{});
  const SensitivityTable table = profiler.ProfileAll(HiBenchCatalog());
  std::printf("profiled %zu workloads\n\n", table.size());

  // A dozen random jobs spread over the fabric.
  Rng rng(2026);
  ClusterSetupOptions setup;
  setup.num_servers = static_cast<int>(topo.Hosts().size());
  setup.jobs_per_setup = 12;
  const std::vector<JobSpec> jobs = GenerateClusterSetup(HiBenchCatalog(), setup, &rng);

  CoRunOptions baseline;
  baseline.policy = PolicyKind::kBaseline;
  const CoRunResult base = RunCoRun(topo, jobs, baseline);

  CoRunOptions saba;
  saba.policy = PolicyKind::kSaba;
  saba.table = &table;
  const CoRunResult managed = RunCoRun(topo, jobs, saba);

  std::printf("%-4s %-5s %6s | %10s %10s %8s\n", "job", "wl", "nodes", "baseline", "saba",
              "speedup");
  for (size_t j = 0; j < jobs.size(); ++j) {
    std::printf("%-4zu %-5s %6zu | %9.1fs %9.1fs %7.2fx\n", j, jobs[j].spec.name.c_str(),
                jobs[j].hosts.size(), base.completion_seconds[j],
                managed.completion_seconds[j],
                base.completion_seconds[j] / managed.completion_seconds[j]);
  }
  std::printf("average speedup: %.2fx\n\n", GeometricMean(Speedups(base, managed)));

  const ControllerStats& stats = managed.controller_stats;
  std::printf("controller: %llu registrations, %llu PL re-clusterings, %llu conn creates,\n"
              "            %llu port reconfigurations, %.1f ms total calculation time\n",
              static_cast<unsigned long long>(stats.registrations),
              static_cast<unsigned long long>(stats.pl_reclusterings),
              static_cast<unsigned long long>(stats.conn_creates),
              static_cast<unsigned long long>(stats.port_reconfigurations),
              stats.total_calc_wall_seconds * 1e3);
  return 0;
}
