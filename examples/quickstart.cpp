// Quickstart: profile two applications, inspect their sensitivity models,
// and let Saba's weight solver split a link between them.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// This walks the three Saba stages end to end on a toy scenario:
//   1. Offline profiling   -> sensitivity models (paper §4)
//   2. Weight calculation  -> Eq 2 per-port shares (paper §5.1)
//   3. Runtime enforcement -> a co-run on a simulated fabric (paper §5.2)

#include <cstdio>

#include "src/core/profiler.h"
#include "src/core/weight_solver.h"
#include "src/exp/corun.h"
#include "src/net/units.h"
#include "src/numerics/stats.h"
#include "src/workload/workload_catalog.h"

int main() {
  using namespace saba;

  // --- 1. Profile two workloads offline ------------------------------------
  // LR is bandwidth-hungry (sequential gradient exchanges); PR keeps the
  // network busy but barely depends on it. The profiler sweeps NIC throttles
  // and fits a cubic slowdown model to each.
  OfflineProfiler profiler(ProfilerOptions{});
  const ProfileResult lr = profiler.Profile(*FindWorkload("LR"));
  const ProfileResult pr = profiler.Profile(*FindWorkload("PR"));

  std::printf("sensitivity models (slowdown as a function of bandwidth fraction b):\n");
  std::printf("  LR: D(b) = %s   (R^2 %.2f)\n", lr.model.polynomial().ToString().c_str(),
              lr.r_squared);
  std::printf("  PR: D(b) = %s   (R^2 %.2f)\n\n", pr.model.polynomial().ToString().c_str(),
              pr.r_squared);

  // --- 2. Solve Eq 2 for one shared port ------------------------------------
  WeightSolver solver;
  Rng rng(1);
  const WeightSolverResult weights = solver.Solve({lr.model, pr.model}, &rng);
  std::printf("Eq 2 split of a shared port:  LR %.0f%%  PR %.0f%%\n\n",
              weights.weights[0] * 100, weights.weights[1] * 100);

  // --- 3. Run both jobs on a simulated 8-server fabric ----------------------
  SensitivityTable table;
  table.Put("LR", {lr.model, lr.r_squared, lr.samples, lr.base_completion_seconds});
  table.Put("PR", {pr.model, pr.r_squared, pr.samples, pr.base_completion_seconds});

  std::vector<NodeId> hosts;
  for (NodeId h = 0; h < 8; ++h) {
    hosts.push_back(h);
  }
  const std::vector<JobSpec> jobs = {{*FindWorkload("LR"), hosts, 0.0},
                                     {*FindWorkload("PR"), hosts, 0.0}};
  const Topology topo = BuildSingleSwitchStar(8, Gbps64(56));

  CoRunOptions baseline;
  baseline.policy = PolicyKind::kBaseline;
  const CoRunResult base = RunCoRun(topo, jobs, baseline);

  CoRunOptions saba;
  saba.policy = PolicyKind::kSaba;
  saba.table = &table;
  const CoRunResult managed = RunCoRun(topo, jobs, saba);

  std::printf("co-run completion times (seconds):\n");
  std::printf("  %-6s %10s %10s %10s\n", "job", "baseline", "saba", "speedup");
  for (size_t j = 0; j < jobs.size(); ++j) {
    std::printf("  %-6s %10.1f %10.1f %9.2fx\n", jobs[j].spec.name.c_str(),
                base.completion_seconds[j], managed.completion_seconds[j],
                base.completion_seconds[j] / managed.completion_seconds[j]);
  }
  std::printf("  average speedup: %.2fx\n", GeometricMean(Speedups(base, managed)));
  return 0;
}
