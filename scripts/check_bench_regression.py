#!/usr/bin/env python3
"""Gate bench_micro throughput against the committed BENCH_micro.json.

Usage: check_bench_regression.py BASELINE.json CANDIDATE.json [--threshold 0.30]

Compares `items_per_second` for every benchmark present in BOTH files and
fails (exit 1) if any candidate rate is more than `threshold` below the
baseline. Benchmarks without an items_per_second field (pure-latency rows)
and benchmarks missing from either side are skipped — the gate is a smoke
check for the allocation hot paths, not a full perf suite. All output goes
to stderr (R3: stdout belongs to diffable reports).

With --write, the candidate file replaces the baseline after the report is
printed (regardless of verdict), re-capturing BENCH_micro.json in one step:

    SABA_BENCH_JSON=/tmp/bench_micro.json ./build/bench/bench_micro
    python3 scripts/check_bench_regression.py BENCH_micro.json \
        /tmp/bench_micro.json --write
"""

import argparse
import json
import shutil
import sys


def load_rates(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    return {
        b["name"]: float(b["items_per_second"])
        for b in doc.get("benchmarks", [])
        if "items_per_second" in b
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="max fractional regression allowed (default 0.30)")
    parser.add_argument("--write", action="store_true",
                        help="after reporting, copy the candidate over the "
                             "baseline (re-capture the committed baseline)")
    args = parser.parse_args()

    base = load_rates(args.baseline)
    cand = load_rates(args.candidate)
    shared = sorted(set(base) & set(cand))

    # A benchmark present only in the candidate is a freshly added one, not a
    # regression: note it so the author remembers to re-capture the committed
    # baseline, but do not fail the gate.
    for name in sorted(set(cand) - set(base)):
        print(f"  new  {name}: {cand[name]:,.0f} items/s (not in baseline; "
              f"re-capture BENCH_micro.json to track it)", file=sys.stderr)

    if not shared:
        print("check_bench_regression: no comparable benchmarks", file=sys.stderr)
        return write_baseline(args) if args.write else 1

    failures = []
    for name in shared:
        ratio = cand[name] / base[name]
        verdict = "FAIL" if ratio < 1.0 - args.threshold else "ok"
        print(f"  {verdict:4} {name}: {cand[name]:,.0f} vs baseline "
              f"{base[name]:,.0f} items/s ({ratio:.2f}x)", file=sys.stderr)
        if verdict == "FAIL":
            failures.append(name)

    if failures:
        print(f"check_bench_regression: {len(failures)} benchmark(s) regressed "
              f">{args.threshold:.0%}: {', '.join(failures)}", file=sys.stderr)
        # A deliberate re-capture may record a slower baseline (e.g. after a
        # correctness fix): --write still proceeds, the report above is the
        # record of what changed.
        return write_baseline(args) if args.write else 1
    print(f"check_bench_regression: {len(shared)} benchmark(s) within "
          f"{args.threshold:.0%} of baseline", file=sys.stderr)
    return write_baseline(args) if args.write else 0


def write_baseline(args):
    shutil.copyfile(args.candidate, args.baseline)
    print(f"check_bench_regression: wrote {args.candidate} over {args.baseline}",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
