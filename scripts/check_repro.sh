#!/usr/bin/env bash
# Determinism gate: the quick benches must produce byte-identical output for
# the same seed — run-to-run, across sweep worker counts (the SweepRunner
# contract, DESIGN.md §7 "Determinism & threading model"), and across
# allocation solve workers (the component-parallel engine, DESIGN.md §7.3).
# Run from the repository root after building.
set -euo pipefail

BUILD=${1:-build}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# Static gate first: a tree that violates the determinism conventions
# (DESIGN.md §8 — stray randomness, wall-clock reads, raw getenv, unaudited
# unordered iteration) can pass the diffs below by luck on one machine and
# still diverge on another, so don't bother diffing until it lints clean.
cmake --build "$BUILD" --target saba_lint_check
echo "ok: saba_lint_check"

# The fast, fully deterministic benches (heavy ones are covered by the seed
# printing in their banners).
BENCHES=(
  bench_table1_workloads
  bench_fig1_motivation
  bench_fig2_utilization
  bench_fig5_model_fit
  bench_fig13_failures
  bench_validation
)

status=0

# Fig 12 prints wall-clock timings (inherently run-to-run noisy), but its
# "state digest" lines fingerprint the programmed switch state and must be
# invariant across worker counts AND across the solve cache (DESIGN.md §7.2:
# the signature-keyed cache is an exactness-preserving memo, so cache-on and
# cache-off runs program bit-identical state).
SABA_SCENARIOS=4 SABA_JOBS=2 SABA_SOLVE_JOBS=4 "$BUILD/bench/bench_fig12_overhead" \
  > "$TMP/fig12.cached" 2>/dev/null
SABA_SCENARIOS=4 SABA_JOBS=1 SABA_SOLVE_CACHE=0 "$BUILD/bench/bench_fig12_overhead" \
  > "$TMP/fig12.uncached" 2>/dev/null
if ! diff <(grep '^state digest' "$TMP/fig12.cached") \
          <(grep '^state digest' "$TMP/fig12.uncached") > /dev/null; then
  echo "NON-DETERMINISTIC: bench_fig12_overhead (solve cache changes switch state)"
  status=1
else
  echo "ok: bench_fig12_overhead (state digests, cache on/off x jobs 2/1)"
fi

for b in "${BENCHES[@]}"; do
  "$BUILD/bench/$b" > "$TMP/$b.1" 2>/dev/null
  "$BUILD/bench/$b" > "$TMP/$b.2" 2>/dev/null
  SABA_JOBS=1 "$BUILD/bench/$b" > "$TMP/$b.j1" 2>/dev/null
  SABA_JOBS=2 "$BUILD/bench/$b" > "$TMP/$b.j2" 2>/dev/null
  SABA_SOLVE_JOBS=4 "$BUILD/bench/$b" > "$TMP/$b.s4" 2>/dev/null
  if ! diff -q "$TMP/$b.1" "$TMP/$b.2" > /dev/null; then
    echo "NON-DETERMINISTIC: $b (run to run)"
    status=1
  elif ! diff -q "$TMP/$b.j1" "$TMP/$b.j2" > /dev/null; then
    echo "NON-DETERMINISTIC: $b (SABA_JOBS=1 vs 2)"
    status=1
  elif ! diff -q "$TMP/$b.1" "$TMP/$b.s4" > /dev/null; then
    echo "NON-DETERMINISTIC: $b (SABA_SOLVE_JOBS=1 vs 4)"
    status=1
  else
    echo "ok: $b"
  fi
done
exit $status
