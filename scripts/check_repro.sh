#!/usr/bin/env bash
# Determinism gate: the quick benches must produce byte-identical output for
# the same seed — both run-to-run and across sweep worker counts (the
# SweepRunner contract, DESIGN.md "Determinism & threading model"). Run from
# the repository root after building.
set -euo pipefail

BUILD=${1:-build}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# The fast, fully deterministic benches (heavy ones are covered by the seed
# printing in their banners).
BENCHES=(
  bench_table1_workloads
  bench_fig1_motivation
  bench_fig2_utilization
  bench_fig5_model_fit
  bench_validation
)

status=0
for b in "${BENCHES[@]}"; do
  "$BUILD/bench/$b" > "$TMP/$b.1" 2>/dev/null
  "$BUILD/bench/$b" > "$TMP/$b.2" 2>/dev/null
  SABA_JOBS=1 "$BUILD/bench/$b" > "$TMP/$b.j1" 2>/dev/null
  SABA_JOBS=2 "$BUILD/bench/$b" > "$TMP/$b.j2" 2>/dev/null
  if ! diff -q "$TMP/$b.1" "$TMP/$b.2" > /dev/null; then
    echo "NON-DETERMINISTIC: $b (run to run)"
    status=1
  elif ! diff -q "$TMP/$b.j1" "$TMP/$b.j2" > /dev/null; then
    echo "NON-DETERMINISTIC: $b (SABA_JOBS=1 vs 2)"
    status=1
  else
    echo "ok: $b"
  fi
done
exit $status
