#!/usr/bin/env bash
# Determinism gate: the quick benches must produce byte-identical output for
# the same seed. Run from the repository root after building.
set -euo pipefail

BUILD=${1:-build}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# The fast, fully deterministic benches (heavy ones are covered by the seed
# printing in their banners).
BENCHES=(
  bench_table1_workloads
  bench_fig1_motivation
  bench_fig2_utilization
  bench_fig5_model_fit
  bench_validation
)

status=0
for b in "${BENCHES[@]}"; do
  "$BUILD/bench/$b" > "$TMP/$b.1" 2>/dev/null
  "$BUILD/bench/$b" > "$TMP/$b.2" 2>/dev/null
  if ! diff -q "$TMP/$b.1" "$TMP/$b.2" > /dev/null; then
    echo "NON-DETERMINISTIC: $b"
    status=1
  else
    echo "ok: $b"
  fi
done
exit $status
