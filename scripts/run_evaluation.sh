#!/usr/bin/env bash
# Full evaluation sweep at the paper's scale. Takes a while; see README for
# the per-bench scale knobs.
set -euo pipefail
BUILD=${1:-build}
export SABA_SETUPS=${SABA_SETUPS:-500}
export SABA_SCENARIOS=${SABA_SCENARIOS:-200}
for b in "$BUILD"/bench/*; do
  echo "### $b"
  "$b"
  echo
done
