#include "src/exp/knobs.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace saba {
namespace {

struct Knob {
  std::string name;
  std::string value;
  bool from_env = false;
};

// saba-lint: shared-state-ok(the mutex IS the synchronization: every registry access below
// locks it, and it is never held across user code, so no ordering leaks out)
// saba-lint: allow(R7): guards only the knob registry, never held across user code.
std::mutex registry_mutex;
std::vector<Knob>& Registry() {
  // Leaked-singleton: the pointer is set once (const), only the pointee
  // mutates, and every mutation happens under registry_mutex.
  static std::vector<Knob>* const knobs = new std::vector<Knob>();
  return *knobs;
}

void RecordKnob(const char* name, const std::string& value, bool from_env) {
  std::lock_guard<std::mutex> lock(registry_mutex);  // saba-lint: allow(R7): registry lock.
  for (const Knob& knob : Registry()) {
    if (knob.name == name) {
      return;  // First read wins; repeated reads see the same environment.
    }
  }
  Registry().push_back({name, value, from_env});
}

[[noreturn]] void DieInvalidKnob(const char* name, const char* value) {
  std::cerr << "fatal: " << name << "='" << value
            << "' is not an integer; refusing to run a mis-scaled sweep\n";
  std::exit(2);
}

}  // namespace

std::optional<int64_t> ParseInt64(const std::string& text) {
  // strtoll silently skips leading whitespace; the documented contract is
  // "the whole string is the number", so reject it up front.
  if (text.empty() || std::isspace(static_cast<unsigned char>(text.front()))) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size()) {
    return std::nullopt;
  }
  return static_cast<int64_t>(parsed);
}

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    RecordKnob(name, std::to_string(fallback), /*from_env=*/false);
    return fallback;
  }
  const std::optional<int64_t> parsed = ParseInt64(value);
  if (!parsed.has_value() || *parsed < std::numeric_limits<int>::min() ||
      *parsed > std::numeric_limits<int>::max()) {
    DieInvalidKnob(name, value);
  }
  RecordKnob(name, value, /*from_env=*/true);
  return static_cast<int>(*parsed);
}

uint64_t EnvSeed(uint64_t fallback) {
  const char* value = std::getenv("SABA_SEED");
  if (value == nullptr) {
    RecordKnob("SABA_SEED", std::to_string(fallback), /*from_env=*/false);
    return fallback;
  }
  // Accept the full uint64 range (seeds are opaque bit patterns, not counts).
  std::string text(value);
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || text[0] == '-' || std::isspace(static_cast<unsigned char>(text[0])) ||
      errno == ERANGE || end != text.c_str() + text.size()) {
    DieInvalidKnob("SABA_SEED", value);
  }
  RecordKnob("SABA_SEED", value, /*from_env=*/true);
  return static_cast<uint64_t>(parsed);
}

int EnvJobs() {
  const int jobs = EnvInt("SABA_JOBS", 0);
  if (jobs < 0) {
    std::cerr << "fatal: SABA_JOBS='" << jobs
              << "' must be >= 0 (0 means all hardware threads)\n";
    std::exit(2);
  }
  if (jobs > 0) {
    return jobs;
  }
  // saba-lint: allow(R7): queries the thread count, constructs no thread.
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

int EnvSolveJobs() {
  const int jobs = EnvInt("SABA_SOLVE_JOBS", 1);
  if (jobs < 0) {
    std::cerr << "fatal: SABA_SOLVE_JOBS='" << jobs
              << "' must be >= 0 (0 means all hardware threads, 1 is serial)\n";
    std::exit(2);
  }
  if (jobs > 0) {
    return jobs;
  }
  // saba-lint: allow(R7): queries the thread count, constructs no thread.
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

int EnvShards() {
  const int shards = EnvInt("SABA_SHARDS", 0);
  if (shards < 0) {
    std::cerr << "fatal: SABA_SHARDS='" << shards
              << "' must be >= 0 (0 means the bench's default shard sweep)\n";
    std::exit(2);
  }
  return shards;
}

std::string EnvString(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    RecordKnob(name, fallback, /*from_env=*/false);
    return fallback;
  }
  RecordKnob(name, value, /*from_env=*/true);
  return value;
}

std::string KnobSummary() {
  std::lock_guard<std::mutex> lock(registry_mutex);  // saba-lint: allow(R7): registry lock.
  std::string out;
  for (const Knob& knob : Registry()) {
    if (knob.name == "SABA_SEED" || knob.name == "SABA_JOBS" ||
        knob.name == "SABA_SOLVE_JOBS" || knob.name == "SABA_SHARDS") {
      continue;
    }
    if (!out.empty()) {
      out += ", ";
    }
    out += knob.name + "=" + knob.value;
    if (!knob.from_env) {
      out += " [default]";
    }
  }
  return out;
}

}  // namespace saba
