// Random cluster-setup generation for the main testbed experiment (§8.2).
//
// Each setup draws 16 jobs with replacement from the workload catalog; each
// job gets a random dataset scale (0.1x/1x/10x) and a random instance count
// (0.5x-4x of the 8-node profiling deployment), and instances are placed
// randomly under the paper's constraints: at most one instance of a given job
// per server, at most 16 jobs per server.

#ifndef SRC_EXP_CLUSTER_SETUP_H_
#define SRC_EXP_CLUSTER_SETUP_H_

#include <vector>

#include "src/exp/corun.h"
#include "src/sim/rng.h"
#include "src/workload/workload_spec.h"

namespace saba {

struct ClusterSetupOptions {
  int num_servers = 32;
  int jobs_per_setup = 16;
  // The profiler's deployment size; node multipliers are relative to it.
  int profiling_nodes = 8;
  std::vector<double> dataset_scales = {0.1, 1.0, 10.0};
  std::vector<double> node_multipliers = {0.5, 1.0, 2.0, 3.0, 4.0};
  int max_jobs_per_server = 16;
  // Jobs start uniformly within this window, so stages never run in
  // lockstep.
  double start_jitter_seconds = 5.0;
};

// Generates one randomized setup from `catalog`. Deterministic per Rng state.
std::vector<JobSpec> GenerateClusterSetup(const std::vector<WorkloadSpec>& catalog,
                                          const ClusterSetupOptions& options, Rng* rng);

}  // namespace saba

#endif  // SRC_EXP_CLUSTER_SETUP_H_
