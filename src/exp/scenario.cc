#include "src/exp/scenario.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>
#include <utility>

#include "src/net/units.h"
#include "src/sim/rng.h"
#include "src/workload/workload_catalog.h"

namespace saba {
namespace {

// Splits "key=value" into its parts; returns false if there is no '='.
bool SplitKeyValue(const std::string& token, std::string* key, std::string* value) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
    return false;
  }
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  std::istringstream is(text);
  return static_cast<bool>(is >> *out) && is.eof();
}

bool ParseInt(const std::string& text, int* out) {
  std::istringstream is(text);
  return static_cast<bool>(is >> *out) && is.eof();
}

std::optional<PolicyKind> PolicyFromName(const std::string& name) {
  static const std::map<std::string, PolicyKind> kPolicies = {
      {"baseline", PolicyKind::kBaseline},
      {"saba", PolicyKind::kSaba},
      {"saba-distributed", PolicyKind::kSabaDistributed},
      {"saba-unlimited", PolicyKind::kSabaUnlimited},
      {"ideal-max-min", PolicyKind::kIdealMaxMin},
      {"homa", PolicyKind::kHoma},
      {"sincronia", PolicyKind::kSincronia},
      {"pfabric", PolicyKind::kPFabric},
  };
  auto it = kPolicies.find(name);
  if (it == kPolicies.end()) {
    return std::nullopt;
  }
  return it->second;
}

void Fail(std::string* error, int line_number, const std::string& message) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_number) + ": " + message;
  }
}

}  // namespace

std::optional<Scenario> ParseScenario(const std::string& text, std::string* error) {
  Scenario scenario;
  bool have_topology = false;
  // Failure lines may precede the topology line, so node-id and link
  // validation is deferred until the topology is resolved (end of parse).
  std::vector<std::pair<int, FailureEvent>> pending_failures;

  std::istringstream lines(text);
  std::string line;
  int line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    std::istringstream tokens(line);
    std::string directive;
    if (!(tokens >> directive) || directive[0] == '#') {
      continue;  // Blank line or comment.
    }

    // Collect the remaining key=value (or bare) tokens.
    std::vector<std::string> rest;
    std::string token;
    while (tokens >> token) {
      rest.push_back(token);
    }

    if (directive == "topology") {
      if (rest.empty()) {
        Fail(error, line_number, "topology needs a kind (star | spineleaf)");
        return std::nullopt;
      }
      std::map<std::string, double> kv;
      for (size_t i = 1; i < rest.size(); ++i) {
        std::string key;
        std::string value;
        double number = 0;
        if (!SplitKeyValue(rest[i], &key, &value) || !ParseDouble(value, &number)) {
          Fail(error, line_number, "bad topology parameter '" + rest[i] + "'");
          return std::nullopt;
        }
        kv[key] = number;
      }
      const Bps64 capacity = Gbps64(kv.count("capacity_gbps") ? kv["capacity_gbps"] : 56.0);
      if (rest[0] == "star") {
        const int servers = static_cast<int>(kv.count("servers") ? kv["servers"] : 32);
        if (servers < 2) {
          Fail(error, line_number, "star needs servers >= 2");
          return std::nullopt;
        }
        scenario.topology = BuildSingleSwitchStar(servers, capacity);
      } else if (rest[0] == "spineleaf") {
        SpineLeafParams params;
        params.num_spine = static_cast<int>(kv.count("spine") ? kv["spine"] : 4);
        params.num_leaf = static_cast<int>(kv.count("leaf") ? kv["leaf"] : 8);
        params.num_tor = static_cast<int>(kv.count("tor") ? kv["tor"] : 8);
        params.hosts_per_tor = static_cast<int>(kv.count("hosts_per_tor") ? kv["hosts_per_tor"] : 9);
        params.num_pods = static_cast<int>(kv.count("pods") ? kv["pods"] : 2);
        params.host_link_bps = params.tor_leaf_bps = params.leaf_spine_bps = capacity;
        if (params.num_tor % params.num_pods != 0 || params.num_leaf % params.num_pods != 0) {
          Fail(error, line_number, "tor and leaf counts must divide evenly into pods");
          return std::nullopt;
        }
        scenario.topology = BuildSpineLeaf(params);
      } else if (rest[0] == "fattree") {
        FatTreeParams params;
        params.k = static_cast<int>(kv.count("k") ? kv["k"] : 4);
        if (params.k < 2 || params.k % 2 != 0) {
          Fail(error, line_number, "fattree needs an even k >= 2");
          return std::nullopt;
        }
        params.host_link_bps = params.edge_agg_bps = capacity;
        params.agg_core_bps = kv.count("core_gbps") ? Gbps64(kv["core_gbps"]) : capacity;
        if (params.agg_core_bps <= 0) {
          Fail(error, line_number, "fattree core_gbps must be positive");
          return std::nullopt;
        }
        scenario.topology = BuildFatTree(params);
      } else {
        Fail(error, line_number, "unknown topology kind '" + rest[0] + "'");
        return std::nullopt;
      }
      have_topology = true;
    } else if (directive == "policy") {
      if (rest.size() != 1) {
        Fail(error, line_number, "policy needs exactly one name");
        return std::nullopt;
      }
      const auto policy = PolicyFromName(rest[0]);
      if (!policy.has_value()) {
        Fail(error, line_number, "unknown policy '" + rest[0] + "'");
        return std::nullopt;
      }
      scenario.options.policy = *policy;
    } else if (directive == "seed") {
      int seed = 0;
      if (rest.size() != 1 || !ParseInt(rest[0], &seed) || seed < 0) {
        Fail(error, line_number, "seed needs one non-negative integer");
        return std::nullopt;
      }
      scenario.seed = static_cast<uint64_t>(seed);
      scenario.options.seed = scenario.seed;
    } else if (directive == "gamma") {
      double gamma = 0;
      if (rest.size() != 1 || !ParseDouble(rest[0], &gamma) || gamma < 0) {
        Fail(error, line_number, "gamma needs one non-negative number");
        return std::nullopt;
      }
      scenario.options.fecn_gamma = gamma;
    } else if (directive == "floor") {
      double floor = 0;
      if (rest.size() != 1 || !ParseDouble(rest[0], &floor) || floor < 0 || floor > 1) {
        Fail(error, line_number, "floor needs one number in [0, 1]");
        return std::nullopt;
      }
      scenario.options.relative_min_weight = floor;
    } else if (directive == "queues") {
      int queues = 0;
      if (rest.size() != 1 || !ParseInt(rest[0], &queues) || queues < 1) {
        Fail(error, line_number, "queues needs one positive integer");
        return std::nullopt;
      }
      scenario.options.queues_per_port = queues;
    } else if (directive == "job") {
      if (rest.empty()) {
        Fail(error, line_number, "job needs a workload name");
        return std::nullopt;
      }
      ScenarioJob job;
      job.workload = rest[0];
      if (FindWorkload(job.workload) == nullptr) {
        Fail(error, line_number, "unknown workload '" + job.workload + "'");
        return std::nullopt;
      }
      for (size_t i = 1; i < rest.size(); ++i) {
        std::string key;
        std::string value;
        if (!SplitKeyValue(rest[i], &key, &value)) {
          Fail(error, line_number, "bad job parameter '" + rest[i] + "'");
          return std::nullopt;
        }
        if (key == "nodes") {
          if (!ParseInt(value, &job.nodes) || job.nodes < 2) {
            Fail(error, line_number, "nodes must be an integer >= 2");
            return std::nullopt;
          }
        } else if (key == "dataset") {
          if (!ParseDouble(value, &job.dataset_scale) || job.dataset_scale <= 0) {
            Fail(error, line_number, "dataset must be a positive scale factor");
            return std::nullopt;
          }
        } else if (key == "start") {
          if (!ParseDouble(value, &job.start_at) || job.start_at < 0) {
            Fail(error, line_number, "start must be a non-negative time");
            return std::nullopt;
          }
        } else {
          Fail(error, line_number, "unknown job parameter '" + key + "'");
          return std::nullopt;
        }
      }
      scenario.jobs.push_back(std::move(job));
    } else if (directive == "fail" || directive == "degrade") {
      // fail link a=.. b=.. at=.. [until=..]
      // fail switch id=.. at=.. [until=..]
      // degrade link a=.. b=.. at=.. factor=.. [until=..]
      if (rest.empty()) {
        Fail(error, line_number, directive + " needs a target kind (link | switch)");
        return std::nullopt;
      }
      FailureEvent event;
      bool have_a = false;
      bool have_b = false;
      bool have_at = false;
      bool have_factor = false;
      if (directive == "fail" && rest[0] == "link") {
        event.kind = FailureEvent::Kind::kLinkDown;
      } else if (directive == "fail" && rest[0] == "switch") {
        event.kind = FailureEvent::Kind::kNodeDown;
      } else if (directive == "degrade" && rest[0] == "link") {
        event.kind = FailureEvent::Kind::kLinkDegrade;
      } else {
        Fail(error, line_number, "unknown " + directive + " target '" + rest[0] + "'");
        return std::nullopt;
      }
      for (size_t i = 1; i < rest.size(); ++i) {
        std::string key;
        std::string value;
        double number = 0;
        if (!SplitKeyValue(rest[i], &key, &value) || !ParseDouble(value, &number)) {
          Fail(error, line_number, "bad " + directive + " parameter '" + rest[i] + "'");
          return std::nullopt;
        }
        if ((key == "a" && event.kind != FailureEvent::Kind::kNodeDown) ||
            (key == "id" && event.kind == FailureEvent::Kind::kNodeDown)) {
          event.a = static_cast<NodeId>(number);
          have_a = true;
        } else if (key == "b" && event.kind != FailureEvent::Kind::kNodeDown) {
          event.b = static_cast<NodeId>(number);
          have_b = true;
        } else if (key == "at") {
          event.at = number;
          have_at = true;
        } else if (key == "until") {
          event.until = number;
        } else if (key == "factor" && event.kind == FailureEvent::Kind::kLinkDegrade) {
          event.capacity_factor = number;
          have_factor = true;
        } else {
          Fail(error, line_number, "unknown " + directive + " parameter '" + key + "'");
          return std::nullopt;
        }
      }
      const bool needs_b = event.kind != FailureEvent::Kind::kNodeDown;
      if (!have_a || (needs_b && !have_b)) {
        Fail(error, line_number,
             needs_b ? directive + " link needs a= and b= endpoints" : "fail switch needs id=");
        return std::nullopt;
      }
      if (!have_at || event.at < 0) {
        Fail(error, line_number, directive + " needs a non-negative at= time");
        return std::nullopt;
      }
      if (event.until >= 0 && event.until <= event.at) {
        Fail(error, line_number, "until= must be later than at=");
        return std::nullopt;
      }
      if (event.kind == FailureEvent::Kind::kLinkDegrade &&
          (!have_factor || event.capacity_factor <= 0 || event.capacity_factor > 1)) {
        Fail(error, line_number, "degrade needs factor= in (0, 1]");
        return std::nullopt;
      }
      pending_failures.emplace_back(line_number, event);
    } else {
      Fail(error, line_number, "unknown directive '" + directive + "'");
      return std::nullopt;
    }
  }

  if (!have_topology) {
    scenario.topology = BuildSingleSwitchStar(32, Gbps64(56));
  }
  if (scenario.jobs.empty()) {
    Fail(error, 0, "scenario declares no jobs");
    return std::nullopt;
  }
  const size_t servers = scenario.topology.Hosts().size();
  for (const ScenarioJob& job : scenario.jobs) {
    if (static_cast<size_t>(job.nodes) > servers) {
      Fail(error, 0, "job '" + job.workload + "' wants more nodes than the fabric has");
      return std::nullopt;
    }
  }
  // Validate deferred failure events against the resolved topology.
  const Topology& topo = scenario.topology;
  for (const auto& [fail_line, event] : pending_failures) {
    if (event.a < 0 || static_cast<size_t>(event.a) >= topo.num_nodes()) {
      Fail(error, fail_line, "failure names a node id outside the topology");
      return std::nullopt;
    }
    if (event.kind == FailureEvent::Kind::kNodeDown) {
      if (!IsSwitch(topo.node(event.a).kind)) {
        Fail(error, fail_line, "fail switch must name a switch, not a host");
        return std::nullopt;
      }
    } else {
      if (event.b < 0 || static_cast<size_t>(event.b) >= topo.num_nodes()) {
        Fail(error, fail_line, "failure names a node id outside the topology");
        return std::nullopt;
      }
      if (topo.FindLink(event.a, event.b) == kInvalidLink ||
          topo.FindLink(event.b, event.a) == kInvalidLink) {
        Fail(error, fail_line, "no duplex link between the named endpoints");
        return std::nullopt;
      }
    }
    scenario.options.failures.push_back(event);
  }
  return scenario;
}

std::vector<JobSpec> BuildScenarioJobs(const Scenario& scenario) {
  Rng rng(scenario.seed);
  const std::vector<NodeId> servers = scenario.topology.Hosts();
  std::vector<int> load(servers.size(), 0);

  std::vector<JobSpec> jobs;
  for (const ScenarioJob& job : scenario.jobs) {
    const WorkloadSpec* base = FindWorkload(job.workload);
    assert(base != nullptr);  // Guaranteed by the parser.
    JobSpec spec;
    spec.spec = ScaleWorkload(*base, job.dataset_scale, job.nodes);
    spec.start_at = job.start_at;

    std::vector<size_t> order(servers.size());
    for (size_t s = 0; s < servers.size(); ++s) {
      order[s] = s;
    }
    rng.Shuffle(&order);
    std::stable_sort(order.begin(), order.end(),
                     [&load](size_t a, size_t b) { return load[a] < load[b]; });
    for (int i = 0; i < job.nodes; ++i) {
      load[order[static_cast<size_t>(i)]] += 1;
      spec.hosts.push_back(servers[order[static_cast<size_t>(i)]]);
    }
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

CoRunResult RunScenario(const Scenario& scenario, const SensitivityTable& table) {
  CoRunOptions options = scenario.options;
  options.table = &table;
  return RunCoRun(scenario.topology, BuildScenarioJobs(scenario), options);
}

}  // namespace saba
