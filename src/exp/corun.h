// Co-run executor: runs a set of jobs on a shared fabric under a named
// bandwidth-allocation policy and reports per-job completion times.
//
// This is the engine behind every evaluation figure: the same job set is
// executed once per policy and the speedup of policy A over policy B for a
// job is B's completion time divided by A's (§8.1).

#ifndef SRC_EXP_CORUN_H_
#define SRC_EXP_CORUN_H_

#include <string>
#include <vector>

#include "src/core/controller.h"
#include "src/core/sensitivity.h"
#include "src/net/allocation_engine.h"
#include "src/net/topology.h"
#include "src/sim/sim_time.h"
#include "src/workload/workload_spec.h"

namespace saba {

enum class PolicyKind {
  // InfiniBand FECN congestion control: per-flow max-min approximation, one
  // shared queue, efficiency degrading with cross-application contention.
  kBaseline,
  // Saba with the centralized controller (§5).
  kSaba,
  // Saba with the distributed controller and offline mapping database (§5.4).
  kSabaDistributed,
  // Saba with a dedicated queue per application at every port — the
  // unlimited-queue upper bound of Fig 11b.
  kSabaUnlimited,
  // Idealized per-application max-min: dedicated queue per workload, perfect
  // round-robin service (study 4).
  kIdealMaxMin,
  // Homa-like size-based priorities (study 5).
  kHoma,
  // Sincronia-like clairvoyant coflow scheduling (study 6).
  kSincronia,
  // pFabric-like idealized SRPT (related work; not in the paper's figures).
  kPFabric,
};

const char* PolicyName(PolicyKind kind);

// One job in a co-run: a (already scaled) workload on a set of hosts.
struct JobSpec {
  WorkloadSpec spec;
  std::vector<NodeId> hosts;
  SimTime start_at = 0;
};

// A scheduled fabric fault injected mid-run. Link events name the duplex pair
// (a, b) — both directions change together; node events take a switch out
// entirely. Down/degraded state is applied at `at` and restored at `until`
// (`until < 0` = never, the event is permanent). Live flows crossing a failed
// link are re-pinned via FlowSimulator::HandleTopologyChange; degradation
// scales capacity in place without moving any flow.
struct FailureEvent {
  enum class Kind {
    kLinkDown,     // Both directions of (a, b) go down, capacities preserved.
    kNodeDown,     // Node `a` goes down (all incident links unusable).
    kLinkDegrade,  // Both directions of (a, b) scale to capacity_factor x.
  };
  Kind kind = Kind::kLinkDown;
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;  // Unused for kNodeDown.
  SimTime at = 0;
  SimTime until = -1;
  double capacity_factor = 1.0;  // kLinkDegrade only; in (0, 1].
};

struct CoRunOptions {
  PolicyKind policy = PolicyKind::kBaseline;
  // Queues per port available to the policy (Saba's Fig 11b knob; also the
  // priority classes for Homa/Sincronia).
  int queues_per_port = 8;
  // PLs used by Saba's controller.
  int num_pls = 8;
  // Baseline congestion-inefficiency strength (see FecnCongestionModel).
  double fecn_gamma = 0.30;
  // Per-application weight floor relative to the equal share (see
  // WeightSolverOptions::relative_min_weight).
  double relative_min_weight = 0.75;
  // Non-Saba co-existence (§3): queues reserved at the bottom of every port
  // and the capacity fraction Saba manages (see ControllerOptions).
  int reserved_queues = 0;
  double reserved_queue_weight = 0.1;
  double c_saba = 1.0;
  // Sensitivity table for the Saba variants (required there, unused
  // elsewhere).
  const SensitivityTable* table = nullptr;
  int distributed_shards = 8;
  // Completion-event quantization grid (see FlowSimulator); jobs run for
  // minutes, so a 0.25 s grid costs <2% accuracy and saves an order of
  // magnitude in reallocations.
  double completion_quantum = 0.25;
  // Worker slots for the engine's component-parallel solves (DESIGN.md
  // §7.3). 0 (the default) reads the SABA_SOLVE_JOBS knob, which itself
  // defaults to 1 (serial). Rates — and therefore every report byte — are
  // identical at every setting.
  int solve_jobs = 0;
  // Faults to inject while the jobs run (applied in the order given for
  // events at the same instant).
  std::vector<FailureEvent> failures;
  uint64_t seed = 1;
};

struct CoRunResult {
  // Aligned with the input jobs.
  std::vector<double> completion_seconds;
  // Populated for Saba variants.
  ControllerStats controller_stats;
  uint64_t allocator_runs = 0;
  // How much re-rating the incremental allocation engine skipped (see
  // AllocationEngineStats; flows_frozen / (flows_rerated + flows_frozen) is
  // the saved fraction).
  AllocationEngineStats engine_stats;
  // Flows re-pinned around failures (FlowSimulator::rerouted_flow_count).
  uint64_t rerouted_flows = 0;
  SimTime makespan = 0;
};

// Runs all jobs to completion on a copy of `topology` under the policy.
// Deterministic given options.seed and the job set.
CoRunResult RunCoRun(const Topology& topology, const std::vector<JobSpec>& jobs,
                     const CoRunOptions& options);

// Per-job speedup of `test` over `reference` (reference_time / test_time).
std::vector<double> Speedups(const CoRunResult& reference, const CoRunResult& test);

}  // namespace saba

#endif  // SRC_EXP_CORUN_H_
