// Text-format experiment scenarios.
//
// A scenario file describes a fabric, an allocation policy, and a set of
// jobs, so that experiments can be run (and shared) without writing C++:
//
//     # lines starting with '#' are comments
//     topology star servers=32 capacity_gbps=56
//     policy saba
//     seed 7
//     gamma 0.30
//     queues 8
//     floor 0.75
//     job LR nodes=8
//     job PR nodes=16 dataset=10 start=2.5
//     fail link a=0 b=16 at=1.5 until=4.0
//     fail switch id=20 at=2.0
//     degrade link a=16 b=18 at=1.0 factor=0.5 until=3.0
//
// Topologies: `star servers=N capacity_gbps=C`,
// `spineleaf spine=S leaf=L tor=T hosts_per_tor=H pods=P capacity_gbps=C`, or
// `fattree k=K capacity_gbps=C core_gbps=C2` (core_gbps defaults to
// capacity_gbps; lower it for an oversubscribed core).
// Policies: baseline, saba, saba-distributed, saba-unlimited, ideal-max-min,
// homa, sincronia, pfabric. Jobs reference catalog workload names; `nodes`, `dataset`
// (scale factor) and `start` (seconds) are optional. Instances are placed on
// the least-loaded servers (deterministic given the seed).
//
// Failure directives inject mid-run faults (see FailureEvent in corun.h):
// `fail link` takes a duplex endpoint pair down at `at` (restored at `until`
// if given), `fail switch` takes a whole switch down, and `degrade link`
// scales the pair's capacity by `factor` in (0, 1]. Node ids and link
// existence are validated against the scenario's topology, so failure lines
// may appear before or after the topology line.
//
// The parser returns descriptive errors rather than throwing: scenario files
// are user input.

#ifndef SRC_EXP_SCENARIO_H_
#define SRC_EXP_SCENARIO_H_

#include <optional>
#include <string>
#include <vector>

#include "src/exp/corun.h"

namespace saba {

struct ScenarioJob {
  std::string workload;
  int nodes = 8;
  double dataset_scale = 1.0;
  double start_at = 0;
};

struct Scenario {
  Topology topology;
  CoRunOptions options;
  std::vector<ScenarioJob> jobs;
  uint64_t seed = 1;
};

// Parses scenario text. On failure returns std::nullopt and, if `error` is
// non-null, stores a message naming the offending line.
std::optional<Scenario> ParseScenario(const std::string& text, std::string* error = nullptr);

// Materializes the scenario's jobs: scales workloads, places instances on the
// least-loaded servers (shuffled, then stable-sorted by load), and applies
// start times. Requires every workload to exist in the catalog (the parser
// already guarantees this).
std::vector<JobSpec> BuildScenarioJobs(const Scenario& scenario);

// Convenience: parse + profile the referenced workloads + run the co-run.
// The caller provides the profiled table (policies other than Saba ignore
// it).
CoRunResult RunScenario(const Scenario& scenario, const SensitivityTable& table);

}  // namespace saba

#endif  // SRC_EXP_SCENARIO_H_
