#include "src/exp/report.h"

#include "src/exp/knobs.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>

namespace saba {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w;
  }
  total += 2 * (widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string Fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void PrintBanner(std::ostream& os, const std::string& experiment, const std::string& description,
                 uint64_t seed) {
  os << "=== " << experiment << " ===\n" << description << "\n(seed " << seed << ")\n";
  // The scale knobs the binary was invoked with. SABA_JOBS is deliberately
  // absent: stdout must stay byte-identical across thread counts.
  const std::string knobs = KnobSummary();
  if (!knobs.empty()) {
    os << "(knobs " << knobs << ")\n";
  }
  os << '\n';
}

}  // namespace saba
