// Table and series formatting for the benchmark binaries.
//
// Every bench prints the rows/series of the paper figure it reproduces in a
// fixed-width layout (easy to eyeball) and nothing else on stdout, so bench
// output can be diffed across runs.

#ifndef SRC_EXP_REPORT_H_
#define SRC_EXP_REPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace saba {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> row);
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Fixed-precision double formatting ("1.88").
std::string Fmt(double value, int precision = 2);

// A figure/bench banner: name, description, and the seed for reproduction.
void PrintBanner(std::ostream& os, const std::string& experiment, const std::string& description,
                 uint64_t seed);

}  // namespace saba

#endif  // SRC_EXP_REPORT_H_
