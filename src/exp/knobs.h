// Environment-variable scale knobs for the benchmark binaries.
//
// Parsing is strict: a knob that is set but malformed is fatal, instead of
// std::atoi's silent 0 turning a typo'd variable into an empty sweep. Every
// knob read is recorded in a registry so each bench banner can print the
// exact knob set it ran with (SABA_SEED, SABA_JOBS, SABA_SOLVE_JOBS and
// SABA_SHARDS excluded — the seed has its own banner line and the job/shard
// counts must not reach stdout, which is required to be byte-identical
// across thread and shard counts).

#ifndef SRC_EXP_KNOBS_H_
#define SRC_EXP_KNOBS_H_

#include <cstdint>
#include <optional>
#include <string>

namespace saba {

// Base-10 integer parse that consumes the whole string (surrounding
// whitespace rejected). nullopt on empty, trailing junk, or overflow.
std::optional<int64_t> ParseInt64(const std::string& text);

// Integer knob from the environment with a default. A set-but-unparsable
// value aborts the process with a message naming the knob.
int EnvInt(const char* name, int fallback);

// SABA_SEED (same strictness as EnvInt; full uint64 range).
uint64_t EnvSeed(uint64_t fallback = 42);

// SABA_JOBS: worker-thread count for SweepRunner. Unset or 0 means "all
// hardware threads". Negative values are rejected.
int EnvJobs();

// SABA_SOLVE_JOBS: intra-instance worker count for the allocation engine's
// component-parallel solves (DESIGN.md §7.3). Unset or 1 solves serially —
// the default, so every existing bench byte-stream is unchanged; results are
// bit-identical at every setting regardless. 0 means "all hardware threads".
// Negative values are rejected.
int EnvSolveJobs();

// SABA_SHARDS: shard count (and flush worker count) for the distributed
// controller's sharded flush (DESIGN.md §7.3). Unset or 0 means "the bench's
// default sweep"; like the job knobs it is excluded from KnobSummary —
// programmed state and merged stats are bit-identical at every setting, and
// bench stdout must stay byte-identical across shard counts (the CI
// determinism diff depends on it). Negative values are rejected.
int EnvShards();

// String knob from the environment with a default (e.g. an output path).
// Registered in the knob summary like the integer knobs; an empty value is
// taken literally, not as "unset".
std::string EnvString(const char* name, const std::string& fallback);

// "SABA_SETUPS=100 [default], SABA_FIG10_INSTANCES=8" for every knob read so
// far, in first-read order; empty if none. SABA_SEED, SABA_JOBS,
// SABA_SOLVE_JOBS and SABA_SHARDS are omitted.
std::string KnobSummary();

}  // namespace saba

#endif  // SRC_EXP_KNOBS_H_
