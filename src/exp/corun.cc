#include "src/exp/corun.h"

#include <cassert>
#include <memory>
#include <utility>

#include "src/baselines/homa_policy.h"
#include "src/baselines/pfabric_policy.h"
#include "src/baselines/sincronia_policy.h"
#include "src/core/distributed_controller.h"
#include "src/core/saba_client.h"
#include "src/exp/knobs.h"
#include "src/net/allocator.h"
#include "src/net/flow_simulator.h"
#include "src/net/network.h"
#include "src/sim/event_scheduler.h"
#include "src/workload/app_runtime.h"

namespace saba {

const char* PolicyName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kBaseline:
      return "baseline";
    case PolicyKind::kSaba:
      return "saba";
    case PolicyKind::kSabaDistributed:
      return "saba-distributed";
    case PolicyKind::kSabaUnlimited:
      return "saba-unlimited-queues";
    case PolicyKind::kIdealMaxMin:
      return "ideal-max-min";
    case PolicyKind::kHoma:
      return "homa";
    case PolicyKind::kSincronia:
      return "sincronia";
    case PolicyKind::kPFabric:
      return "pfabric";
  }
  return "?";
}

CoRunResult RunCoRun(const Topology& topology, const std::vector<JobSpec>& jobs,
                     const CoRunOptions& options) {
  assert(!jobs.empty());
  const bool is_saba = options.policy == PolicyKind::kSaba ||
                       options.policy == PolicyKind::kSabaDistributed ||
                       options.policy == PolicyKind::kSabaUnlimited;
  assert((!is_saba || options.table != nullptr) &&
         "Saba policies need a profiled sensitivity table");

  EventScheduler scheduler;
  Network network(topology, /*default_queues=*/1);

  // --- Allocator + congestion model per policy -----------------------------
  std::unique_ptr<BandwidthAllocator> allocator;
  std::unique_ptr<CentralizedController> controller;  // Saba variants only.
  FlowSimulator* flow_sim_ptr = nullptr;              // For the weight closure below.

  switch (options.policy) {
    case PolicyKind::kBaseline:
      network.SetQueueCountEverywhere(1);
      network.SetCongestionModel(std::make_unique<FecnCongestionModel>(options.fecn_gamma));
      allocator = std::make_unique<WfqMaxMinAllocator>();
      break;
    case PolicyKind::kSaba:
    case PolicyKind::kSabaDistributed:
      network.SetQueueCountEverywhere(options.queues_per_port);
      // Saba keeps the deployed congestion protocol (§5.2); its benefit at
      // this layer comes from separating applications into queues.
      network.SetCongestionModel(std::make_unique<FecnCongestionModel>(options.fecn_gamma));
      allocator = std::make_unique<WfqMaxMinAllocator>();
      break;
    case PolicyKind::kSabaUnlimited: {
      network.SetCongestionModel(std::make_unique<FecnCongestionModel>(options.fecn_gamma));
      allocator = std::make_unique<PerAppWfqAllocator>([&](LinkId link, AppId app) {
        const double w = controller->AppWeightAtPort(link, app);
        return w > 0 ? w : 0.01;
      });
      break;
    }
    case PolicyKind::kIdealMaxMin:
      network.SetCongestionModel(std::make_unique<IdealCongestionModel>());
      allocator = std::make_unique<PerAppWfqAllocator>();
      break;
    case PolicyKind::kHoma:
    case PolicyKind::kSincronia:
    case PolicyKind::kPFabric:
      network.SetCongestionModel(std::make_unique<IdealCongestionModel>());
      allocator = std::make_unique<StrictPriorityAllocator>();
      break;
  }

  FlowSimulator flow_sim(&scheduler, &network, allocator.get());
  flow_sim.SetCompletionQuantum(options.completion_quantum);
  // Component-parallel solving changes wall-clock only, never a rate or a
  // report byte (DESIGN.md §7.3) — scale knobs must not touch stdout.
  flow_sim.SetSolveJobs(options.solve_jobs > 0 ? options.solve_jobs : EnvSolveJobs());
  flow_sim_ptr = &flow_sim;
  (void)flow_sim_ptr;

  // --- Policy-side machinery ------------------------------------------------
  std::unique_ptr<HomaScheduler> homa;
  std::unique_ptr<SincroniaScheduler> sincronia;
  std::unique_ptr<PFabricScheduler> pfabric;
  std::unique_ptr<AppNetworkPolicy> app_policy;

  ControllerOptions controller_options;
  controller_options.num_pls = options.num_pls;
  controller_options.relative_min_weight = options.relative_min_weight;
  controller_options.reserved_queues = options.reserved_queues;
  controller_options.reserved_queue_weight = options.reserved_queue_weight;
  controller_options.c_saba = options.c_saba;
  controller_options.seed = options.seed;

  switch (options.policy) {
    case PolicyKind::kSaba:
    case PolicyKind::kSabaUnlimited:
      controller = std::make_unique<CentralizedController>(&network, &flow_sim, options.table,
                                                           controller_options);
      app_policy = std::make_unique<SabaClient>(controller.get());
      break;
    case PolicyKind::kSabaDistributed: {
      DistributedControllerOptions dist_options;
      dist_options.base = controller_options;
      dist_options.num_shards = options.distributed_shards;
      controller = std::make_unique<DistributedController>(
          &network, &flow_sim, options.table,
          MappingDatabase::Build(*options.table, options.num_pls, options.seed), dist_options);
      app_policy = std::make_unique<SabaClient>(controller.get());
      break;
    }
    case PolicyKind::kHoma: {
      HomaConfig config;
      config.num_priorities = options.queues_per_port;
      homa = std::make_unique<HomaScheduler>(&flow_sim, config);
      app_policy = std::make_unique<NullNetworkPolicy>();
      break;
    }
    case PolicyKind::kSincronia: {
      SincroniaConfig config;
      config.num_priorities = options.queues_per_port;
      sincronia = std::make_unique<SincroniaScheduler>(&flow_sim, config);
      app_policy = std::make_unique<NullNetworkPolicy>();
      break;
    }
    case PolicyKind::kPFabric:
      pfabric = std::make_unique<PFabricScheduler>(&flow_sim);
      app_policy = std::make_unique<NullNetworkPolicy>();
      break;
    case PolicyKind::kBaseline:
    case PolicyKind::kIdealMaxMin:
      app_policy = std::make_unique<NullNetworkPolicy>();
      break;
  }

  // --- Jobs ------------------------------------------------------------------
  CoRunResult result;
  result.completion_seconds.assign(jobs.size(), -1);

  std::vector<std::unique_ptr<Application>> apps;
  apps.reserve(jobs.size());
  for (size_t j = 0; j < jobs.size(); ++j) {
    apps.push_back(std::make_unique<Application>(&scheduler, &flow_sim, jobs[j].spec,
                                                 jobs[j].hosts, static_cast<AppId>(j),
                                                 app_policy.get()));
  }
  for (size_t j = 0; j < jobs.size(); ++j) {
    Application* app = apps[j].get();
    scheduler.ScheduleAt(jobs[j].start_at, [app, &result, j] {
      app->Start([&result, j](AppId, SimTime completion) {
        result.completion_seconds[j] = completion;
      });
    });
  }

  // --- Failure schedule -----------------------------------------------------
  Topology& live_topo = network.topology();
  for (const FailureEvent& event : options.failures) {
    assert(event.a >= 0 && static_cast<size_t>(event.a) < live_topo.num_nodes());
    switch (event.kind) {
      case FailureEvent::Kind::kLinkDown: {
        const LinkId forward = live_topo.FindLink(event.a, event.b);
        const LinkId reverse = live_topo.FindLink(event.b, event.a);
        assert(forward != kInvalidLink && reverse != kInvalidLink);
        scheduler.ScheduleAt(event.at, [&live_topo, &flow_sim, forward, reverse] {
          live_topo.SetLinkUp(forward, false);
          live_topo.SetLinkUp(reverse, false);
          flow_sim.HandleTopologyChange();
        });
        if (event.until >= 0) {
          scheduler.ScheduleAt(event.until, [&live_topo, &flow_sim, forward, reverse] {
            live_topo.SetLinkUp(forward, true);
            live_topo.SetLinkUp(reverse, true);
            flow_sim.HandleTopologyChange();
          });
        }
        break;
      }
      case FailureEvent::Kind::kNodeDown: {
        const NodeId node = event.a;
        assert(IsSwitch(live_topo.node(node).kind) && "only switches fail; hosts run jobs");
        scheduler.ScheduleAt(event.at, [&live_topo, &flow_sim, node] {
          live_topo.SetNodeUp(node, false);
          flow_sim.HandleTopologyChange();
        });
        if (event.until >= 0) {
          scheduler.ScheduleAt(event.until, [&live_topo, &flow_sim, node] {
            live_topo.SetNodeUp(node, true);
            flow_sim.HandleTopologyChange();
          });
        }
        break;
      }
      case FailureEvent::Kind::kLinkDegrade: {
        assert(event.capacity_factor > 0 && event.capacity_factor <= 1.0);
        const LinkId forward = live_topo.FindLink(event.a, event.b);
        const LinkId reverse = live_topo.FindLink(event.b, event.a);
        assert(forward != kInvalidLink && reverse != kInvalidLink);
        // Originals are captured at apply time (not schedule time) and handed
        // to the restore lambda, so back-to-back degrades restore exactly.
        auto originals = std::make_shared<std::pair<Bps64, Bps64>>();
        const double factor = event.capacity_factor;
        scheduler.ScheduleAt(event.at, [&live_topo, &flow_sim, forward, reverse, factor,
                                        originals] {
          originals->first = live_topo.link(forward).capacity_bps;
          originals->second = live_topo.link(reverse).capacity_bps;
          live_topo.SetLinkCapacity(forward, RoundBps(BpsToDouble(originals->first) * factor));
          live_topo.SetLinkCapacity(reverse, RoundBps(BpsToDouble(originals->second) * factor));
          flow_sim.NotifyLinkChanged(forward);
          flow_sim.NotifyLinkChanged(reverse);
        });
        if (event.until >= 0) {
          scheduler.ScheduleAt(event.until, [&live_topo, &flow_sim, forward, reverse, originals] {
            live_topo.SetLinkCapacity(forward, originals->first);
            live_topo.SetLinkCapacity(reverse, originals->second);
            flow_sim.NotifyLinkChanged(forward);
            flow_sim.NotifyLinkChanged(reverse);
          });
        }
        break;
      }
    }
  }

  scheduler.Run();

  for (double t : result.completion_seconds) {
    assert(t > 0 && "all jobs must complete");
    (void)t;
  }
  if (controller != nullptr) {
    result.controller_stats = controller->stats();
  }
  result.allocator_runs = flow_sim.allocator_runs();
  result.engine_stats = flow_sim.engine_stats();
  result.rerouted_flows = flow_sim.rerouted_flow_count();
  result.makespan = scheduler.Now();
  return result;
}

std::vector<double> Speedups(const CoRunResult& reference, const CoRunResult& test) {
  assert(reference.completion_seconds.size() == test.completion_seconds.size());
  std::vector<double> speedups(reference.completion_seconds.size());
  for (size_t i = 0; i < speedups.size(); ++i) {
    speedups[i] = reference.completion_seconds[i] / test.completion_seconds[i];
  }
  return speedups;
}

}  // namespace saba
