#include "src/exp/cluster_setup.h"

#include <algorithm>
#include <cassert>

namespace saba {

std::vector<JobSpec> GenerateClusterSetup(const std::vector<WorkloadSpec>& catalog,
                                          const ClusterSetupOptions& options, Rng* rng) {
  assert(!catalog.empty());
  assert(options.num_servers >= 2);
  assert(rng != nullptr);

  std::vector<int> load(static_cast<size_t>(options.num_servers), 0);
  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<size_t>(options.jobs_per_setup));

  for (int j = 0; j < options.jobs_per_setup; ++j) {
    const WorkloadSpec& base = rng->Choice(catalog);
    const double dataset = rng->Choice(options.dataset_scales);
    const double multiplier = rng->Choice(options.node_multipliers);
    int nodes = static_cast<int>(multiplier * options.profiling_nodes + 0.5);
    nodes = std::clamp(nodes, 2, options.num_servers);

    // Place on the least-loaded servers, randomized among ties: shuffle,
    // then stable-sort by load. Enforces both placement constraints (the
    // one-instance-per-server constraint holds because each server is chosen
    // at most once per job).
    std::vector<NodeId> servers(static_cast<size_t>(options.num_servers));
    for (int s = 0; s < options.num_servers; ++s) {
      servers[static_cast<size_t>(s)] = s;
    }
    rng->Shuffle(&servers);
    std::stable_sort(servers.begin(), servers.end(), [&load](NodeId a, NodeId b) {
      return load[static_cast<size_t>(a)] < load[static_cast<size_t>(b)];
    });

    JobSpec job;
    job.spec = ScaleWorkload(base, dataset, nodes);
    for (int i = 0; i < nodes; ++i) {
      const NodeId server = servers[static_cast<size_t>(i)];
      assert(load[static_cast<size_t>(server)] < options.max_jobs_per_server &&
             "placement constraint violated: raise num_servers or lower jobs_per_setup");
      load[static_cast<size_t>(server)] += 1;
      job.hosts.push_back(server);
    }
    job.start_at = rng->Uniform(0, options.start_jitter_seconds);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace saba
