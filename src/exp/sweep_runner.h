// Deterministic parallel sweep engine for the figure benches.
//
// A sweep is N independent tasks — the (setup × scenario × policy) cells of
// an experiment grid. Tasks are fanned across SABA_JOBS worker threads with
// chunked work stealing; determinism comes from two rules:
//
//   1. a task's randomness derives only from (root_seed, task_index) via
//      Rng::ForStream — never from a generator shared across tasks — and
//   2. results land in a slot indexed by task number, so collection order is
//      the task order regardless of which thread finished when.
//
// Under those rules the sweep's output is bit-for-bit identical for every
// thread count (tested in tests/sweep_runner_test.cc; contract documented in
// DESIGN.md "Determinism & threading model").
//
// Threads come from the shared saba::WorkerPool primitive
// (src/sim/worker_pool.h) — the same pool substrate the allocation engine's
// component-parallel solves use (DESIGN.md §7.3). SweepRunner adds the
// per-task exception transport and timing on top.

#ifndef SRC_EXP_SWEEP_RUNNER_H_
#define SRC_EXP_SWEEP_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/worker_pool.h"

namespace saba {

// Throughput counters of the last sweep, for the benches' stderr banners.
struct SweepStats {
  size_t num_tasks = 0;
  int jobs = 1;              // Worker threads actually spawned.
  double wall_seconds = 0;   // Whole-sweep elapsed time.
  double task_seconds = 0;   // Sum of per-task elapsed times.

  double TasksPerSecond() const;
  // Aggregate task time over wall time: ~jobs when the sweep scales, ~1 when
  // it is serialized.
  double Speedup() const;
  // "11 tasks in 2.41 s on 8 jobs: 4.6 tasks/s, speedup 7.2x".
  std::string Summary() const;
};

class SweepRunner {
 public:
  // jobs <= 0 uses the SABA_JOBS environment knob (EnvJobs()).
  explicit SweepRunner(int jobs = 0);

  int jobs() const { return jobs_; }
  const SweepStats& stats() const { return stats_; }

  // Runs task(i) for every i in [0, num_tasks); returns results in task
  // order. A throwing task aborts the sweep (tasks not yet claimed are
  // skipped) and the exception with the lowest task index is rethrown after
  // all workers have stopped.
  template <typename T>
  std::vector<T> Map(size_t num_tasks, const std::function<T(size_t)>& task) {
    std::vector<T> results(num_tasks);
    RunIndexed(num_tasks, [&](size_t i) { results[i] = task(i); });
    return results;
  }

  // Seeded variant: task(i, rng) where rng is the task-private stream
  // Rng::ForStream(root_seed, i).
  template <typename T>
  std::vector<T> MapSeeded(size_t num_tasks, uint64_t root_seed,
                           const std::function<T(size_t, Rng*)>& task) {
    return Map<T>(num_tasks, [root_seed, &task](size_t i) {
      Rng rng = Rng::ForStream(root_seed, i);
      return task(i, &rng);
    });
  }

 private:
  void RunIndexed(size_t num_tasks, const std::function<void(size_t)>& body);

  int jobs_;
  SweepStats stats_;
  std::unique_ptr<WorkerPool> pool_;  // Created on the first parallel sweep.
};

}  // namespace saba

#endif  // SRC_EXP_SWEEP_RUNNER_H_
