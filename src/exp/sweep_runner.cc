#include "src/exp/sweep_runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <sstream>
#include <thread>

#include "src/exp/knobs.h"
#include "src/sim/wallclock.h"

namespace saba {

double SweepStats::TasksPerSecond() const {
  return wall_seconds > 0 ? static_cast<double>(num_tasks) / wall_seconds : 0.0;
}

double SweepStats::Speedup() const {
  return wall_seconds > 0 ? task_seconds / wall_seconds : 1.0;
}

std::string SweepStats::Summary() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << num_tasks << " task" << (num_tasks == 1 ? "" : "s") << " in " << wall_seconds << " s on "
     << jobs << " job" << (jobs == 1 ? "" : "s") << ": " << TasksPerSecond()
     << " tasks/s, speedup " << Speedup() << "x";
  return os.str();
}

SweepRunner::SweepRunner(int jobs) : jobs_(jobs > 0 ? jobs : EnvJobs()) {}

namespace {

// One contiguous range of task indices with an atomic claim cursor. Workers
// drain their own block front-to-back and then steal from the block with the
// most work left; claims are a single fetch_add, so the hot path never locks.
// The cursor may overshoot `end` when several thieves race on a near-empty
// block — harmless, remaining work is computed as end - min(next, end).
struct alignas(64) Block {
  std::atomic<size_t> next{0};
  size_t end = 0;
};

size_t Remaining(const Block& block) {
  const size_t next = block.next.load(std::memory_order_relaxed);
  return block.end - std::min(next, block.end);
}

}  // namespace

void SweepRunner::RunIndexed(size_t num_tasks, const std::function<void(size_t)>& body) {
  stats_ = SweepStats{};
  stats_.num_tasks = num_tasks;
  stats_.jobs = 1;
  if (num_tasks == 0) {
    return;
  }
  Stopwatch wall;

  const int jobs =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(jobs_), num_tasks));
  if (jobs <= 1) {
    // Serial path: identical task order and streams as the parallel path (the
    // determinism tests byte-compare the two), exceptions propagate directly.
    double task_seconds = 0;
    for (size_t i = 0; i < num_tasks; ++i) {
      Stopwatch task_watch;
      body(i);
      task_seconds += task_watch.ElapsedSeconds();
    }
    stats_.task_seconds = task_seconds;
    stats_.wall_seconds = wall.ElapsedSeconds();
    return;
  }
  stats_.jobs = jobs;

  std::vector<Block> blocks(static_cast<size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    blocks[static_cast<size_t>(w)].next.store(
        num_tasks * static_cast<size_t>(w) / static_cast<size_t>(jobs),
        std::memory_order_relaxed);
    blocks[static_cast<size_t>(w)].end =
        num_tasks * static_cast<size_t>(w + 1) / static_cast<size_t>(jobs);
  }

  // One slot per task so the first-failing *index* is rethrown
  // deterministically, not whichever thread lost the race.
  std::vector<std::exception_ptr> errors(num_tasks);
  std::atomic<bool> failed{false};
  std::vector<double> worker_seconds(static_cast<size_t>(jobs), 0.0);

  auto worker = [&](int w) {
    double& my_seconds = worker_seconds[static_cast<size_t>(w)];
    auto run_one = [&](size_t index) {
      if (failed.load(std::memory_order_acquire)) {
        return;  // Abort the sweep: claim (to terminate) but skip the body.
      }
      Stopwatch task_watch;
      try {
        body(index);
      } catch (...) {
        errors[index] = std::current_exception();
        failed.store(true, std::memory_order_release);
      }
      my_seconds += task_watch.ElapsedSeconds();
    };
    for (;;) {
      Block& own = blocks[static_cast<size_t>(w)];
      const size_t index = own.next.fetch_add(1, std::memory_order_relaxed);
      if (index < own.end) {
        run_one(index);
        continue;
      }
      // Own block drained: steal from the fullest block.
      Block* victim = nullptr;
      size_t most = 0;
      for (Block& other : blocks) {
        const size_t remaining = Remaining(other);
        if (remaining > most) {
          most = remaining;
          victim = &other;
        }
      }
      if (victim == nullptr) {
        return;  // Every block is empty.
      }
      const size_t stolen = victim->next.fetch_add(1, std::memory_order_relaxed);
      if (stolen < victim->end) {
        run_one(stolen);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    threads.emplace_back(worker, w);
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  for (double seconds : worker_seconds) {
    stats_.task_seconds += seconds;
  }
  stats_.wall_seconds = wall.ElapsedSeconds();

  if (failed.load(std::memory_order_acquire)) {
    for (std::exception_ptr& error : errors) {
      if (error) {
        std::rethrow_exception(error);
      }
    }
  }
}

}  // namespace saba
