#include "src/exp/sweep_runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <sstream>

#include "src/exp/knobs.h"
#include "src/sim/wallclock.h"
#include "src/sim/worker_pool.h"

namespace saba {

double SweepStats::TasksPerSecond() const {
  return wall_seconds > 0 ? static_cast<double>(num_tasks) / wall_seconds : 0.0;
}

double SweepStats::Speedup() const {
  return wall_seconds > 0 ? task_seconds / wall_seconds : 1.0;
}

std::string SweepStats::Summary() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << num_tasks << " task" << (num_tasks == 1 ? "" : "s") << " in " << wall_seconds << " s on "
     << jobs << " job" << (jobs == 1 ? "" : "s") << ": " << TasksPerSecond()
     << " tasks/s, speedup " << Speedup() << "x";
  return os.str();
}

SweepRunner::SweepRunner(int jobs) : jobs_(jobs > 0 ? jobs : EnvJobs()) {}

void SweepRunner::RunIndexed(size_t num_tasks, const std::function<void(size_t)>& body) {
  stats_ = SweepStats{};
  stats_.num_tasks = num_tasks;
  stats_.jobs = 1;
  if (num_tasks == 0) {
    return;
  }
  Stopwatch wall;

  const int jobs =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(jobs_), num_tasks));
  if (jobs <= 1) {
    // Serial path: identical task order and streams as the parallel path (the
    // determinism tests byte-compare the two), exceptions propagate directly.
    double task_seconds = 0;
    for (size_t i = 0; i < num_tasks; ++i) {
      Stopwatch task_watch;
      body(i);
      task_seconds += task_watch.ElapsedSeconds();
    }
    stats_.task_seconds = task_seconds;
    stats_.wall_seconds = wall.ElapsedSeconds();
    return;
  }
  stats_.jobs = jobs;

  // Threads come from the shared pool primitive; the sweep layer adds
  // exception transport and per-worker timing. One error slot per task so the
  // first-failing *index* is rethrown deterministically, not whichever thread
  // lost the race.
  if (pool_ == nullptr) {
    pool_ = std::make_unique<WorkerPool>(jobs_);
  }
  std::vector<std::exception_ptr> errors(num_tasks);
  std::atomic<bool> failed{false};
  std::vector<double> worker_seconds(static_cast<size_t>(pool_->jobs()), 0.0);

  // saba-lint: pool-capture-ok(every write is index- or slot-owned: errors[index] and the
  // task's result slot belong to exactly one task, worker_seconds[slot] to one worker, and
  // `failed` is an atomic flag — no captured reference is written from two workers, §7.3)
  pool_->Run(num_tasks, [&](size_t index, int slot) {
    if (failed.load(std::memory_order_acquire)) {
      return;  // Abort the sweep: claim (to terminate) but skip the body.
    }
    Stopwatch task_watch;
    try {
      body(index);
    } catch (...) {
      errors[index] = std::current_exception();
      failed.store(true, std::memory_order_release);
    }
    worker_seconds[static_cast<size_t>(slot)] += task_watch.ElapsedSeconds();
  });

  for (double seconds : worker_seconds) {
    stats_.task_seconds += seconds;
  }
  stats_.wall_seconds = wall.ElapsedSeconds();

  if (failed.load(std::memory_order_acquire)) {
    for (std::exception_ptr& error : errors) {
      if (error) {
        std::rethrow_exception(error);
      }
    }
  }
}

}  // namespace saba
