#include "src/sim/rng.h"

#include <cmath>
#include <numbers>

namespace saba {
namespace {

// SplitMix64: used only to expand the user seed into xoshiro state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::Next() {
  // xoshiro256**
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * Uniform01();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; discard the second variate to keep the stream simple.
  double u1 = Uniform01();
  double u2 = Uniform01();
  while (u1 <= 0.0) {
    u1 = Uniform01();
  }
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Exponential(double rate) {
  assert(rate > 0);
  double u = Uniform01();
  while (u <= 0.0) {
    u = Uniform01();
  }
  return -std::log(u) / rate;
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

bool Rng::Bernoulli(double p) { return Uniform01() < p; }

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    assert(w >= 0);
    total += w;
  }
  assert(total > 0);
  double x = Uniform(0, total);
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0) {
      return i;
    }
  }
  return weights.size() - 1;  // Guard against accumulated rounding.
}

Rng Rng::Fork() { return Rng(Next() ^ 0xda3e39cb94b95bdbULL); }

uint64_t Rng::StreamSeed(uint64_t root_seed, uint64_t stream_index) {
  // Hash the root before mixing in the index so that nearby roots do not
  // produce shifted copies of the same stream family, then hash again so
  // adjacent indices land far apart.
  uint64_t x = root_seed;
  const uint64_t root_hash = SplitMix64(&x);
  x = root_hash ^ (stream_index + 0x9e3779b97f4a7c15ULL);
  return SplitMix64(&x);
}

Rng Rng::ForStream(uint64_t root_seed, uint64_t stream_index) {
  return Rng(StreamSeed(root_seed, stream_index));
}

}  // namespace saba
