// Shared deterministic worker pool — the one blessed home for thread
// construction in this repository.
//
// Both inter-instance parallelism (SweepRunner fanning bench tasks, DESIGN.md
// §7) and intra-instance parallelism (the allocation engine solving
// independent dirty components concurrently, DESIGN.md §7.3) run on this
// primitive instead of spawning their own threads. Centralizing thread and
// lock construction keeps the determinism argument auditable — saba-lint rule
// R7 bans raw std::thread / std::async / mutex construction everywhere else —
// and gives the TSan CI job a single scheduling substrate to certify.
//
// Scheduling model: Run(n, body) executes body(i, slot) exactly once for every
// index i in [0, n). Which thread runs which index, and in what order, is NOT
// deterministic; determinism is the caller's obligation. Callers uphold it by
// making body(i) a pure function of i that writes only i-indexed state (the
// SweepRunner contract) or slot-indexed scratch (the engine contract, one
// arena per slot) — then no schedule can change any observable byte.

#ifndef SRC_SIM_WORKER_POOL_H_
#define SRC_SIM_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace saba {

class WorkerPool {
 public:
  // Spawns jobs - 1 persistent worker threads; the thread calling Run()
  // always participates as slot 0. jobs must be >= 1 (1 = fully inline, no
  // threads are ever created).
  explicit WorkerPool(int jobs);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int jobs() const { return jobs_; }

  // Runs body(index, slot) for every index in [0, num_tasks), with slot in
  // [0, jobs()); returns after every index has completed. Indices are claimed
  // by chunked work stealing, so the (index, slot) pairing is scheduling-
  // dependent — see the header comment for what callers must guarantee.
  // `body` must not throw (callers wanting exception transport capture
  // exceptions into index-keyed slots, as SweepRunner does). Run() is not
  // reentrant and must not be called from two threads at once.
  void Run(size_t num_tasks, const std::function<void(size_t index, int slot)>& body);

 private:
  // One contiguous range of task indices with an atomic claim cursor. Workers
  // drain their own block front-to-back, then steal from the fullest block;
  // claims are a single fetch_add, so the hot path never locks. The cursor
  // may overshoot `end` when thieves race on a near-empty block — harmless,
  // remaining work is computed as end - min(next, end).
  struct alignas(64) Block {
    std::atomic<size_t> next{0};
    size_t end = 0;
  };

  void WorkerMain(int slot);
  // Claims and runs tasks until no block has work left.
  void Drain(int slot);

  const int jobs_;
  std::vector<Block> blocks_;  // blocks_[slot]; sized jobs_, reused per Run.
  const std::function<void(size_t, int)>* body_ = nullptr;

  std::mutex mu_;
  std::condition_variable work_ready_;  // Signals a new epoch (or shutdown).
  std::condition_variable work_done_;   // Signals pending_ reached zero.
  uint64_t epoch_ = 0;                  // Incremented per Run to wake workers.
  int pending_ = 0;                     // Workers still draining this epoch.
  bool shutdown_ = false;

  std::vector<std::thread> threads_;  // jobs_ - 1 workers, slots 1..jobs_-1.
};

}  // namespace saba

#endif  // SRC_SIM_WORKER_POOL_H_
