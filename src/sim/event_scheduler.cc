#include "src/sim/event_scheduler.h"

#include <cassert>
#include <utility>

namespace saba {

void EventHandle::Cancel() {
  if (state_ != nullptr) {
    state_->cancelled = true;
  }
}

bool EventHandle::pending() const {
  return state_ != nullptr && !state_->cancelled && !state_->fired;
}

void EventScheduler::SiftUp(size_t i) {
  HeapEntry entry = heap_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!Earlier(entry, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void EventScheduler::SiftDown(size_t i) {
  const size_t n = heap_.size();
  HeapEntry entry = heap_[i];
  while (true) {
    size_t child = 2 * i + 1;
    if (child >= n) {
      break;
    }
    if (child + 1 < n && Earlier(heap_[child + 1], heap_[child])) {
      ++child;
    }
    if (!Earlier(heap_[child], entry)) {
      break;
    }
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = entry;
}

void EventScheduler::Push(HeapEntry entry) {
  heap_.push_back(entry);
  SiftUp(heap_.size() - 1);
}

void EventScheduler::PopTop() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    SiftDown(0);
  }
}

bool EventScheduler::EntryLive(const HeapEntry& entry) const {
  const Slot& slot = slots_[entry.slot];
  return slot.live && slot.generation == entry.generation && !slot.state->cancelled;
}

void EventScheduler::ReleaseSlot(uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn = nullptr;
  slot.state.reset();
  slot.live = false;
  free_slots_.push_back(index);
}

EventHandle EventScheduler::ScheduleAt(SimTime when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule an event in the past");
  assert(fn != nullptr);

  uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.state = std::make_shared<EventHandle::State>();
  slot.generation += 1;
  slot.live = true;

  Push({when, next_seq_++, index, slot.generation});
  return EventHandle(slot.state);
}

EventHandle EventScheduler::ScheduleAfter(SimDuration delay, std::function<void()> fn) {
  assert(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool EventScheduler::DispatchNext() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    if (!EntryLive(top)) {
      // Cancelled (or superseded) event: drop it and free the slot if it is
      // still ours.
      Slot& slot = slots_[top.slot];
      if (slot.live && slot.generation == top.generation) {
        ReleaseSlot(top.slot);
      }
      PopTop();
      continue;
    }
    assert(top.when >= now_ - kTimeEpsilon);
    now_ = top.when;
    // Move the closure out before dispatch: the callback may schedule new
    // events, reusing this slot.
    std::function<void()> fn = std::move(slots_[top.slot].fn);
    slots_[top.slot].state->fired = true;
    ReleaseSlot(top.slot);
    PopTop();
    ++dispatched_;
    fn();
    return true;
  }
  return false;
}

uint64_t EventScheduler::Run() {
  uint64_t n = 0;
  while (DispatchNext()) {
    ++n;
  }
  return n;
}

uint64_t EventScheduler::RunUntil(SimTime deadline) {
  uint64_t n = 0;
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    if (!EntryLive(top)) {
      Slot& slot = slots_[top.slot];
      if (slot.live && slot.generation == top.generation) {
        ReleaseSlot(top.slot);
      }
      PopTop();
      continue;
    }
    if (top.when > deadline) {
      break;
    }
    if (DispatchNext()) {
      ++n;
    }
  }
  if (deadline > now_) {
    now_ = deadline;
  }
  return n;
}

bool EventScheduler::Step() { return DispatchNext(); }

size_t EventScheduler::PendingCount() const {
  size_t n = 0;
  for (const HeapEntry& entry : heap_) {
    if (EntryLive(entry)) {
      ++n;
    }
  }
  return n;
}

}  // namespace saba
