#include "src/sim/worker_pool.h"

#include <algorithm>
#include <cassert>

namespace saba {

namespace {

size_t Remaining(const std::atomic<size_t>& next, size_t end) {
  const size_t claimed = next.load(std::memory_order_relaxed);
  return end - std::min(claimed, end);
}

}  // namespace

WorkerPool::WorkerPool(int jobs) : jobs_(jobs), blocks_(static_cast<size_t>(jobs)) {
  assert(jobs >= 1 && "a pool needs at least the calling thread");
  threads_.reserve(static_cast<size_t>(jobs_ - 1));
  for (int slot = 1; slot < jobs_; ++slot) {
    threads_.emplace_back(&WorkerPool::WorkerMain, this, slot);
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void WorkerPool::Run(size_t num_tasks, const std::function<void(size_t, int)>& body) {
  if (num_tasks == 0) {
    return;
  }
  if (threads_.empty() || num_tasks == 1) {
    // Inline path: same body calls, slot 0, no synchronization.
    for (size_t i = 0; i < num_tasks; ++i) {
      body(i, 0);
    }
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t jobs = static_cast<size_t>(jobs_);
    for (size_t slot = 0; slot < jobs; ++slot) {
      blocks_[slot].next.store(num_tasks * slot / jobs, std::memory_order_relaxed);
      blocks_[slot].end = num_tasks * (slot + 1) / jobs;
    }
    body_ = &body;
    pending_ = static_cast<int>(threads_.size());
    ++epoch_;  // Publishes body_ and the blocks to the workers.
  }
  work_ready_.notify_all();

  Drain(0);  // The caller is slot 0 and works too.

  std::unique_lock<std::mutex> lock(mu_);
  work_done_.wait(lock, [this] { return pending_ == 0; });
  body_ = nullptr;
}

void WorkerPool::WorkerMain(int slot) {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] { return shutdown_ || epoch_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = epoch_;
    }
    Drain(slot);
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      last = --pending_ == 0;
    }
    if (last) {
      work_done_.notify_all();
    }
  }
}

void WorkerPool::Drain(int slot) {
  const auto& body = *body_;
  for (;;) {
    Block& own = blocks_[static_cast<size_t>(slot)];
    const size_t index = own.next.fetch_add(1, std::memory_order_relaxed);
    if (index < own.end) {
      body(index, slot);
      continue;
    }
    // Own block drained: steal from the fullest block.
    Block* victim = nullptr;
    size_t most = 0;
    for (Block& other : blocks_) {
      const size_t remaining = Remaining(other.next, other.end);
      if (remaining > most) {
        most = remaining;
        victim = &other;
      }
    }
    if (victim == nullptr) {
      return;  // Every block is empty.
    }
    const size_t stolen = victim->next.fetch_add(1, std::memory_order_relaxed);
    if (stolen < victim->end) {
      body(stolen, slot);
    }
  }
}

}  // namespace saba
