// Minimal leveled logging for the simulator and controller.
//
// Benchmarks print their tables to stdout; diagnostics go to stderr through
// this logger so the two never interleave in captured output. Level is
// process-global and defaults to kWarning so benches stay quiet.

#ifndef SRC_SIM_LOG_H_
#define SRC_SIM_LOG_H_

#include <sstream>
#include <string>

namespace saba {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

// Sets the process-global minimum level that is emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one line to stderr if `level` >= the global level.
void LogMessage(LogLevel level, const std::string& message);

// Stream-style helper: LogStream(LogLevel::kInfo) << "x=" << x; emits at
// destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

#define SABA_LOG(level) ::saba::LogStream(level)
#define SABA_LOG_DEBUG ::saba::LogStream(::saba::LogLevel::kDebug)
#define SABA_LOG_INFO ::saba::LogStream(::saba::LogLevel::kInfo)
#define SABA_LOG_WARNING ::saba::LogStream(::saba::LogLevel::kWarning)
#define SABA_LOG_ERROR ::saba::LogStream(::saba::LogLevel::kError)

}  // namespace saba

#endif  // SRC_SIM_LOG_H_
