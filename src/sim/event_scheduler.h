// Discrete-event scheduler: the core loop of the fluid network simulator.
//
// Events are closures scheduled at absolute simulated times. The scheduler
// dispatches them in time order; ties are broken by insertion order so that
// runs are fully deterministic. Events can be cancelled through the handle
// returned at scheduling time, which the flow simulator uses extensively to
// re-plan a flow's completion when bandwidth allocations change.
//
// Implementation notes: the heap holds small PODs that index into a slab of
// slots carrying the closures, so sift-downs never move std::functions —
// re-planning cancels and reschedules the majority of flow completions in a
// busy simulation, and moving fat entries through the heap dominated its
// cost. Cancelled entries are skipped (and their slots freed) at pop time.

#ifndef SRC_SIM_EVENT_SCHEDULER_H_
#define SRC_SIM_EVENT_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/sim/sim_time.h"

namespace saba {

// Handle to a scheduled event. Copyable; all copies refer to the same event.
// A default-constructed handle refers to nothing and is inert.
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event if it has not fired yet. Safe to call repeatedly and on
  // default-constructed handles.
  void Cancel();

  // True if the event is still queued and not cancelled.
  bool pending() const;

 private:
  friend class EventScheduler;

  struct State {
    bool cancelled = false;
    bool fired = false;
  };

  explicit EventHandle(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

// Single-threaded discrete-event scheduler.
//
// Typical usage:
//   EventScheduler sched;
//   sched.ScheduleAt(1.5, [&] { ... });
//   sched.Run();                        // runs until the queue drains
//
// Event callbacks may schedule further events, including at the current time
// (which dispatch after all earlier-scheduled same-time events).
class EventScheduler {
 public:
  EventScheduler() = default;

  EventScheduler(const EventScheduler&) = delete;
  EventScheduler& operator=(const EventScheduler&) = delete;

  // Current simulated time. Starts at 0 and only moves forward.
  SimTime Now() const { return now_; }

  // Schedules `fn` to run at absolute time `when`. `when` must not be in the
  // past; scheduling at exactly Now() is allowed and dispatches after events
  // already queued for Now(). Returns a cancellable handle.
  EventHandle ScheduleAt(SimTime when, std::function<void()> fn);

  // Schedules `fn` to run `delay` seconds from now.
  EventHandle ScheduleAfter(SimDuration delay, std::function<void()> fn);

  // Runs events until the queue is empty. Returns the number of events
  // dispatched (cancelled events are not counted).
  uint64_t Run();

  // Runs events with time <= `deadline`, then sets Now() to `deadline` if the
  // queue drained earlier or the next event is later. Returns the number of
  // events dispatched.
  uint64_t RunUntil(SimTime deadline);

  // Runs at most one event. Returns false if the queue is empty.
  bool Step();

  // Number of queued, non-cancelled events. O(n): intended for tests.
  size_t PendingCount() const;

  // Total events dispatched over the scheduler's lifetime.
  uint64_t dispatched_count() const { return dispatched_; }

 private:
  struct HeapEntry {
    SimTime when = 0;
    uint64_t seq = 0;  // Tie-breaker: FIFO among same-time events.
    uint32_t slot = 0;
    uint32_t generation = 0;  // Guards against slot reuse.
  };

  struct Slot {
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
    uint32_t generation = 0;
    bool live = false;
  };

  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.when < b.when || (a.when == b.when && a.seq < b.seq);
  }

  void SiftUp(size_t i);
  void SiftDown(size_t i);
  void Push(HeapEntry entry);
  void PopTop();

  // True if the heap entry still refers to a live, uncancelled event.
  bool EntryLive(const HeapEntry& entry) const;

  // Pops and dispatches the next live event, if any.
  bool DispatchNext();

  // Releases a slot back to the freelist.
  void ReleaseSlot(uint32_t slot);

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t dispatched_ = 0;
};

}  // namespace saba

#endif  // SRC_SIM_EVENT_SCHEDULER_H_
