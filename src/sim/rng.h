// Deterministic random number generation for experiments.
//
// Every source of randomness in the repository flows through Rng, seeded
// explicitly by each benchmark, so that every table and figure is exactly
// reproducible from the seed printed in its header. The generator is
// xoshiro256** seeded through SplitMix64 (the construction recommended by the
// xoshiro authors); it is fast, has a 2^256-1 period, and passes BigCrush.

#ifndef SRC_SIM_RNG_H_
#define SRC_SIM_RNG_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace saba {

// Deterministic PRNG with convenience distributions. Not thread-safe; give
// each thread (or each experiment repetition) its own instance, forked via
// Fork() so streams are independent.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform double in [0, 1).
  double Uniform01();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (deterministic, no cached spare so the
  // stream position is easy to reason about).
  double Normal(double mean = 0.0, double stddev = 1.0);

  // Exponential with the given rate (mean 1/rate).
  double Exponential(double rate);

  // Log-normal such that the underlying normal has the given mu/sigma.
  double LogNormal(double mu, double sigma);

  // True with probability p.
  bool Bernoulli(double p);

  // Returns an index in [0, weights.size()) with probability proportional to
  // weights[i]. Requires at least one strictly positive weight.
  size_t WeightedIndex(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  // Uniformly chooses one element. Requires a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    assert(!v.empty());
    return v[static_cast<size_t>(UniformInt(0, static_cast<int64_t>(v.size()) - 1))];
  }

  // Returns a new generator whose stream is independent of this one.
  // Successive Fork() calls yield distinct streams.
  Rng Fork();

  // Seed of stream `stream_index` under `root_seed`: both words are pushed
  // through SplitMix64, so adjacent indices yield uncorrelated seeds. This is
  // the seed-split contract the parallel sweep engine relies on (see
  // DESIGN.md "Determinism & threading model"): a task's stream depends only
  // on (root_seed, task_index), never on thread count or execution order.
  static uint64_t StreamSeed(uint64_t root_seed, uint64_t stream_index);

  // Rng seeded with StreamSeed(root_seed, stream_index).
  static Rng ForStream(uint64_t root_seed, uint64_t stream_index);

 private:
  uint64_t state_[4];
};

}  // namespace saba

#endif  // SRC_SIM_RNG_H_
