// Wall-clock stopwatch for measuring real computation cost (e.g. the
// controller's bandwidth-calculation time in Fig 12), as opposed to SimTime.

#ifndef SRC_SIM_WALLCLOCK_H_
#define SRC_SIM_WALLCLOCK_H_

#include <chrono>

namespace saba {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  // Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace saba

#endif  // SRC_SIM_WALLCLOCK_H_
