// Simulated-time primitives shared by the event scheduler, the fluid network
// simulator, and the workload models.
//
// Simulated time is a double-precision count of seconds since the start of the
// simulation. Seconds are the natural unit for Saba: the paper's workloads run
// for minutes and the controller reacts on the order of milliseconds, so a
// double keeps microsecond precision over week-long simulations.

#ifndef SRC_SIM_SIM_TIME_H_
#define SRC_SIM_SIM_TIME_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace saba {

// A point in simulated time, in seconds. Negative values are invalid except
// for the sentinel kNeverTime.
using SimTime = double;

// A span of simulated time, in seconds.
using SimDuration = double;

// Sentinel meaning "this event will never happen" (e.g. the completion time of
// a flow whose current rate is zero).
inline constexpr SimTime kNeverTime = std::numeric_limits<double>::infinity();

// Tolerance used when comparing simulated times for equality. Rate
// recomputation produces completion times through divisions, so exact
// comparison is meaningless below this granularity (1 nanosecond).
inline constexpr SimDuration kTimeEpsilon = 1e-9;

// Returns true if two simulated times are equal within kTimeEpsilon.
inline bool TimeAlmostEqual(SimTime a, SimTime b) {
  if (std::isinf(a) || std::isinf(b)) {
    return a == b;
  }
  return std::fabs(a - b) <= kTimeEpsilon;
}

// Convenience constructors so call sites read as units rather than raw
// magic numbers.
inline constexpr SimDuration Seconds(double s) { return s; }
inline constexpr SimDuration Milliseconds(double ms) { return ms * 1e-3; }
inline constexpr SimDuration Microseconds(double us) { return us * 1e-6; }

}  // namespace saba

#endif  // SRC_SIM_SIM_TIME_H_
