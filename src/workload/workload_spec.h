// Stage-structured workload models.
//
// The paper's workloads (Spark/Flink HiBench jobs) follow a bulk-synchronous
// pattern: alternating computation and communication stages (§2.3, §8.1 —
// the paper's own simulator workloads "emulate the computation and
// communication stages"). We model a workload as a sequence of stages; each
// stage has per-instance compute time, a shuffle volume sent to `fanout`
// peers, and an overlap factor saying how much of the communication can
// proceed concurrently with compute (the mechanism §2.3 identifies as the
// source of PR's insensitivity).
//
// Bandwidth sensitivity is therefore *emergent*: a stage at aggregate rate r
// takes ~ max(P, overlap*V/r) + (1-overlap)*V/r, so compute-dominated
// workloads barely notice throttling while shuffle-heavy ones slow down
// almost linearly.
//
// Scaling laws capture how a workload's balance shifts when deployed with a
// different dataset size or node count than it was profiled with — the
// source of the sensitivity-model accuracy loss in Fig 6b/6c.

#ifndef SRC_WORKLOAD_WORKLOAD_SPEC_H_
#define SRC_WORKLOAD_WORKLOAD_SPEC_H_

#include <string>
#include <vector>

namespace saba {

struct StageSpec {
  // Per-instance computation time at the reference configuration, seconds.
  double compute_seconds = 0;
  // Bits each instance ships to each of its `fanout` peers in this stage.
  double bits_per_peer = 0;
  // Fraction of the communication that overlaps with this stage's compute
  // (0 = strictly sequential shuffle, 1 = fully pipelined).
  double overlap = 0;
  // Non-critical traffic per peer: opportunistic prefetch/streaming data the
  // stage emits but never waits for (leftovers are abandoned at the stage
  // barrier). Graph and scan workloads keep the fabric busy with such
  // traffic while remaining insensitive to bandwidth — the paper's Fig 2b
  // shows PR's network utilization staying high throughout even though
  // throttling barely moves its completion time. Under per-flow max-min this
  // traffic steals bandwidth from co-runners' critical shuffles; under Saba
  // it is confined to its application's queue weight.
  double elastic_bits_per_peer = 0;
};

// How the workload transforms under deployment changes. Exponents are
// relative to the reference configuration; a value of 1.0 means perfect
// proportionality.
struct ScalingLaws {
  // Compute time multiplies by (dataset_scale)^dataset_compute_exp.
  double dataset_compute_exp = 1.0;
  // Per-peer volume multiplies by (dataset_scale)^dataset_comm_exp.
  double dataset_comm_exp = 1.0;
  // Per-instance compute multiplies by (reference_nodes / nodes)^nodes_compute_exp.
  double nodes_compute_exp = 1.0;
  // Per-peer volume multiplies by (reference_nodes / nodes)^nodes_comm_exp.
  // Values < 1 mean total communication grows with the node count
  // (aggregation trees, wider shuffles) — the usual case.
  double nodes_comm_exp = 1.0;
  // Shape drift: per decade of dataset scaling (resp. per doubling of node
  // scale), stage overlap shifts by +/- this amount (alternating sign per
  // stage). Models framework adaptivity — pipelining kicking in or breaking
  // down — that an offline profile cannot anticipate.
  double dataset_overlap_drift = 0.0;
  double nodes_overlap_drift = 0.0;
};

struct WorkloadSpec {
  std::string name;
  std::vector<StageSpec> stages;
  // Peers each instance shuffles with per stage (ring neighbours i+1..i+fanout).
  int fanout = 4;
  // Node count the reference stage parameters describe (the profiling setup).
  int reference_nodes = 8;
  ScalingLaws scaling;

  // Total compute seconds across stages (reference config).
  double TotalComputeSeconds() const;
  // Total bits sent per instance across stages (reference config).
  double TotalBitsPerInstance() const;
};

// Materializes the spec for a runtime deployment: `dataset_scale` times the
// profiled dataset on `num_nodes` nodes. The returned spec has
// reference_nodes == num_nodes and stage parameters already transformed.
WorkloadSpec ScaleWorkload(const WorkloadSpec& reference, double dataset_scale, int num_nodes);

// Analytic stage-sum completion time of `spec` when each instance's aggregate
// network rate is `rate_bps` (used by tests to validate the simulator and by
// quick what-if tooling; the simulator is the source of truth).
double AnalyticCompletionSeconds(const WorkloadSpec& spec, double rate_bps);

}  // namespace saba

#endif  // SRC_WORKLOAD_WORKLOAD_SPEC_H_
