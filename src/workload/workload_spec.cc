#include "src/workload/workload_spec.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace saba {

double WorkloadSpec::TotalComputeSeconds() const {
  double total = 0;
  for (const StageSpec& s : stages) {
    total += s.compute_seconds;
  }
  return total;
}

double WorkloadSpec::TotalBitsPerInstance() const {
  double total = 0;
  for (const StageSpec& s : stages) {
    total += s.bits_per_peer * fanout;
  }
  return total;
}

WorkloadSpec ScaleWorkload(const WorkloadSpec& reference, double dataset_scale, int num_nodes) {
  assert(dataset_scale > 0);
  assert(num_nodes >= 2);
  WorkloadSpec scaled = reference;
  scaled.reference_nodes = num_nodes;

  const ScalingLaws& law = reference.scaling;
  const double node_ratio =
      static_cast<double>(reference.reference_nodes) / static_cast<double>(num_nodes);
  const double compute_factor = std::pow(dataset_scale, law.dataset_compute_exp) *
                                std::pow(node_ratio, law.nodes_compute_exp);
  const double comm_factor = std::pow(dataset_scale, law.dataset_comm_exp) *
                             std::pow(node_ratio, law.nodes_comm_exp);

  // Shape drift: pipelining degrades away from the profiled configuration —
  // tiny datasets break producer/consumer overlap (tasks too short), huge
  // ones overflow buffers and spill (either direction hurts), while node
  // drift is straggler-driven and bites when scaling *out* (every stage
  // barrier waits for more machines). This asymmetric loss of overlap is
  // what makes an offline profile progressively less predictive (Fig 6b/6c).
  const double dataset_decades = std::fabs(std::log10(dataset_scale));
  const double node_doublings = std::max(0.0, std::log2(1.0 / node_ratio));
  const double drift_magnitude = law.dataset_overlap_drift * dataset_decades +
                                 law.nodes_overlap_drift * node_doublings;

  for (StageSpec& stage : scaled.stages) {
    stage.compute_seconds *= compute_factor;
    stage.bits_per_peer *= comm_factor;
    stage.elastic_bits_per_peer *= comm_factor;
    stage.overlap = std::clamp(stage.overlap - drift_magnitude, 0.0, 1.0);
  }
  return scaled;
}

double AnalyticCompletionSeconds(const WorkloadSpec& spec, double rate_bps) {
  assert(rate_bps > 0);
  double total = 0;
  for (const StageSpec& stage : spec.stages) {
    const double comm_seconds =
        stage.bits_per_peer * static_cast<double>(spec.fanout) / rate_bps;
    total += std::max(stage.compute_seconds, stage.overlap * comm_seconds) +
             (1.0 - stage.overlap) * comm_seconds;
  }
  return total;
}

}  // namespace saba
