#include "src/workload/workload_catalog.h"

#include <cmath>

#include "src/net/units.h"

namespace saba {
namespace {

// The testbed link speed the calibration assumes (56 Gb/s InfiniBand).
constexpr double kCalibrationLinkBps = 56e9;

// Builds `count` identical stages where the communication phase would take
// `comm_seconds` at full calibration bandwidth (i.e. bits_per_peer =
// comm_seconds * C / fanout).
std::vector<StageSpec> UniformStages(int count, double compute_seconds, double comm_seconds,
                                     double overlap, double elastic_seconds, int fanout) {
  StageSpec stage;
  stage.compute_seconds = compute_seconds;
  stage.bits_per_peer = comm_seconds * kCalibrationLinkBps / static_cast<double>(fanout);
  stage.overlap = overlap;
  stage.elastic_bits_per_peer =
      elastic_seconds * kCalibrationLinkBps / static_cast<double>(fanout);
  return std::vector<StageSpec>(static_cast<size_t>(count), stage);
}

WorkloadSpec Make(std::string name, int stages, double compute_s, double comm_s, double overlap,
                  int fanout, ScalingLaws laws, double elastic_s = 0.0) {
  WorkloadSpec spec;
  spec.name = std::move(name);
  spec.stages = UniformStages(stages, compute_s, comm_s, overlap, elastic_s, fanout);
  spec.fanout = fanout;
  spec.reference_nodes = 8;
  spec.scaling = laws;
  return spec;
}

std::vector<WorkloadSpec> BuildCatalog() {
  // Fanout asymmetry matters: ML jobs exchange gradients with a few peers,
  // while graph/websearch/micro jobs shuffle with many. Under the baseline's
  // *per-flow* max-min this systematically biases bandwidth toward the
  // flow-rich (and mostly insensitive) jobs — one of the two failure modes
  // Saba's per-application weighting corrects (the other being sensitivity
  // blindness; see §2.4 and study 4).
  std::vector<WorkloadSpec> catalog;

  // Machine learning: shuffle-dominated, strictly sequential gradient
  // exchanges -> highly bandwidth-sensitive (Fig 1a: LR 3.4x at 25%).
  catalog.push_back(Make("LR", /*stages=*/10, /*compute=*/2.8, /*comm=*/11.2, /*overlap=*/0.0,
                         /*fanout=*/4,
                         {.dataset_compute_exp = 1.0,
                          .dataset_comm_exp = 0.97,
                          .nodes_compute_exp = 1.0,
                          .nodes_comm_exp = 0.95,
                          .dataset_overlap_drift = 0.03,
                          .nodes_overlap_drift = 0.03}));
  catalog.push_back(Make("RF", 8, 4.2, 19.0, 0.0, 4,
                         {.dataset_compute_exp = 1.0,
                          .dataset_comm_exp = 1.0,
                          .nodes_compute_exp = 1.0,
                          .nodes_comm_exp = 0.95,
                          .dataset_overlap_drift = 0.04,
                          .nodes_overlap_drift = 0.03}));
  catalog.push_back(Make("GBT", 12, 4.0, 6.0, 0.1, 4,
                         {.dataset_compute_exp = 1.0,
                          .dataset_comm_exp = 0.92,
                          .nodes_compute_exp = 1.0,
                          .nodes_comm_exp = 0.70,
                          .dataset_overlap_drift = 0.14,
                          .nodes_overlap_drift = 0.25}));
  catalog.push_back(Make("SVM", 10, 9.3, 10.7, 0.1, 4,
                         {.dataset_compute_exp = 1.0,
                          .dataset_comm_exp = 1.0,
                          .nodes_compute_exp = 1.0,
                          .nodes_comm_exp = 0.72,
                          .dataset_overlap_drift = 0.06,
                          .nodes_overlap_drift = 0.22}));

  // Websearch: indexing mixes I/O-bound compute with bursty shuffles whose
  // shape changes strongly with dataset size (NI shows the worst Fig 6b
  // accuracy loss).
  catalog.push_back(Make("NI", 5, 30.0, 23.0, 0.2, 6,
                         {.dataset_compute_exp = 1.0,
                          .dataset_comm_exp = 0.75,
                          .nodes_compute_exp = 1.0,
                          .nodes_comm_exp = 0.65,
                          .dataset_overlap_drift = 0.38,
                          .nodes_overlap_drift = 0.30},
                         /*elastic_s=*/4.0));
  // Graph: NWeight is the worst Fig 6c (node-count) case — its per-peer
  // traffic shrinks slowly as nodes grow, so the balance shifts quickly.
  catalog.push_back(Make("NW", 8, 25.0, 13.0, 0.50, 8,
                         {.dataset_compute_exp = 1.0,
                          .dataset_comm_exp = 0.85,
                          .nodes_compute_exp = 1.0,
                          .nodes_comm_exp = 0.50,
                          .dataset_overlap_drift = 0.22,
                          .nodes_overlap_drift = 0.35},
                         /*elastic_s=*/8.0));
  catalog.push_back(Make("PR", 12, 23.0, 7.0, 0.85, 8,
                         {.dataset_compute_exp = 1.0,
                          .dataset_comm_exp = 0.9,
                          .nodes_compute_exp = 1.0,
                          .nodes_comm_exp = 0.70,
                          .dataset_overlap_drift = 0.18,
                          .nodes_overlap_drift = 0.28},
                         /*elastic_s=*/12.0));

  // SQL join: almost fully pipelined shuffle, so slowdown is flat until the
  // network can no longer hide behind compute, then rises steeply (Fig 5's
  // hockey-stick that needs a degree-3 fit).
  catalog.push_back(Make("SQL", 4, 36.0, 8.5, 0.95, 6,
                         {.dataset_compute_exp = 1.0,
                          .dataset_comm_exp = 0.9,
                          .nodes_compute_exp = 1.0,
                          .nodes_comm_exp = 0.70,
                          .dataset_overlap_drift = 0.20,
                          .nodes_overlap_drift = 0.30},
                         /*elastic_s=*/8.0));

  // Micro benchmarks: scan-heavy, hardly sensitive (Fig 1a: Sort 1.1x).
  catalog.push_back(Make("WC", 3, 40.0, 13.0, 0.5, 6,
                         {.dataset_compute_exp = 1.0,
                          .dataset_comm_exp = 0.95,
                          .nodes_compute_exp = 1.0,
                          .nodes_comm_exp = 0.72,
                          .dataset_overlap_drift = 0.14,
                          .nodes_overlap_drift = 0.25},
                         /*elastic_s=*/5.0));
  catalog.push_back(Make("Sort", 2, 77.0, 16.0, 0.92, 6,
                         {.dataset_compute_exp = 1.0,
                          .dataset_comm_exp = 1.0,
                          .nodes_compute_exp = 1.0,
                          .nodes_comm_exp = 0.95,
                          .dataset_overlap_drift = 0.05,
                          .nodes_overlap_drift = 0.03},
                         /*elastic_s=*/18.0));

  return catalog;
}

}  // namespace

const std::vector<WorkloadSpec>& HiBenchCatalog() {
  static const std::vector<WorkloadSpec>* const catalog =
      new std::vector<WorkloadSpec>(BuildCatalog());
  return *catalog;
}

const WorkloadSpec* FindWorkload(std::string_view name) {
  for (const WorkloadSpec& spec : HiBenchCatalog()) {
    if (spec.name == name) {
      return &spec;
    }
  }
  return nullptr;
}

const std::vector<WorkloadDatasetInfo>& Table1Datasets() {
  static const std::vector<WorkloadDatasetInfo>* info = new std::vector<WorkloadDatasetInfo>{
      {"LR", "Logistic Regression", "Machine Learning", "10k samples"},
      {"RF", "Random Forest", "Machine Learning", "20k samples"},
      {"GBT", "Gradient Boosted Trees", "Machine Learning", "1k samples"},
      {"SVM", "Support Vector Machine", "Machine Learning", "150k samples"},
      {"NW", "NWeight", "Graph", "# of graph edges: 4250M"},
      {"NI", "Nutch Indexing", "Websearch", "100G samples"},
      {"PR", "PageRank", "Websearch", "50M pages"},
      {"SQL", "SQL (Join)", "SQL", "Two tables, # of records: 5G & 120M"},
      {"WC", "WordCount", "Micro", "300GB"},
      {"Sort", "Sort", "Micro", "280GB"},
  };
  return *info;
}

std::vector<WorkloadSpec> GenerateSyntheticWorkloads(size_t count, Rng* rng) {
  std::vector<WorkloadSpec> specs;
  specs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const int stages = static_cast<int>(rng->UniformInt(4, 14));
    const double compute_s = rng->Uniform(5.0, 30.0);
    // Comm-to-compute ratio spans two orders of magnitude so the population
    // covers the full sensitivity spectrum.
    const double ratio = std::exp(rng->Uniform(std::log(0.15), std::log(4.0)));
    const double comm_s = compute_s * ratio;
    const double overlap = rng->Uniform(0.0, 0.9);
    const int fanout = static_cast<int>(rng->UniformInt(2, 5));
    WorkloadSpec spec =
        Make("synth" + std::to_string(i), stages, compute_s, comm_s, overlap, fanout,
             {.dataset_compute_exp = 1.0,
              .dataset_comm_exp = 1.0,
              .nodes_compute_exp = 1.0,
              .nodes_comm_exp = rng->Uniform(0.7, 1.0),
              .dataset_overlap_drift = 0.0,
              .nodes_overlap_drift = 0.0});
    // The large-scale simulation profiles on 18-node racks (§8.4).
    spec.reference_nodes = 18;
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace saba
