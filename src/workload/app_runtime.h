// Runtime execution of a workload on the simulated fabric.
//
// An Application is one distributed job: `hosts.size()` instances running the
// same WorkloadSpec in bulk-synchronous stages. The overlappable part of a
// stage's shuffle is *paced*: it is emitted in chunks spread across the
// compute phase, the way frameworks pipeline shuffle data as compute
// produces it (this is what keeps PR-like workloads on the network almost
// continuously in the paper's Fig 2b). The sequential remainder ships as one
// burst when compute ends; the stage barrier falls when compute and all
// stage flows have finished on every instance.
//
// Network-policy integration happens through AppNetworkPolicy: a Saba
// deployment plugs in the Saba client library (register -> service level,
// connection notifications -> controller reallocation); the baseline plugs in
// a null policy that leaves everything in queue 0.

#ifndef SRC_WORKLOAD_APP_RUNTIME_H_
#define SRC_WORKLOAD_APP_RUNTIME_H_

#include <functional>
#include <string>
#include <vector>

#include "src/net/flow_simulator.h"
#include "src/sim/event_scheduler.h"
#include "src/workload/workload_spec.h"

namespace saba {

// How an application tags and announces its traffic. Mirrors the Saba
// library's software interface (paper Fig 7): registration yields the
// service level; connection open/close notifications drive controller
// re-allocation. Implementations: Saba's client library, the null baseline
// policy, and the per-app-queue policy used by ideal max-min.
class AppNetworkPolicy {
 public:
  virtual ~AppNetworkPolicy() = default;

  // Called once at application start; returns the SL its flows must carry.
  virtual int OnAppStart(AppId app, const std::string& workload_name,
                         const std::vector<NodeId>& hosts) = 0;

  // A connection (src -> dst, pinned to the path selected by `path_salt`)
  // opened or closed. Default: ignore.
  virtual void OnConnectionOpen(AppId app, NodeId src, NodeId dst, uint64_t path_salt);
  virtual void OnConnectionClose(AppId app, NodeId src, NodeId dst, uint64_t path_salt);

  // Called when the application deregisters.
  virtual void OnAppFinish(AppId app);

  // Current service level for the application's new flows, or -1 for "keep
  // the value OnAppStart returned". Saba's controller may re-cluster PLs
  // while a job runs; the application queries this before each shuffle so new
  // flows pick up the latest assignment (in-flight flows are retagged by the
  // controller through the flow simulator).
  virtual int ServiceLevelFor(AppId app) const;
};

// Policy for non-Saba runs: every flow uses SL 0 and nobody is notified.
class NullNetworkPolicy : public AppNetworkPolicy {
 public:
  int OnAppStart(AppId, const std::string&, const std::vector<NodeId>&) override { return 0; }
};

class Application {
 public:
  using DoneCallback = std::function<void(AppId, SimTime completion_seconds)>;

  // `hosts` lists the nodes running instances (>= 2, distinct). All pointers
  // must outlive the application.
  Application(EventScheduler* scheduler, FlowSimulator* flow_sim, WorkloadSpec spec,
              std::vector<NodeId> hosts, AppId id, AppNetworkPolicy* policy);

  Application(const Application&) = delete;
  Application& operator=(const Application&) = delete;

  // Begins execution at the current simulated time. `on_done` receives the
  // job completion time (finish - start), the paper's performance metric.
  void Start(DoneCallback on_done);

  // Aborts a running job (failure injection / preemption): cancels all of
  // its in-flight flows, closes its connections, and deregisters it with the
  // policy. The done callback does NOT fire. Idempotent; no-op once finished.
  void Abort();

  AppId id() const { return id_; }
  const std::string& workload_name() const { return spec_.name; }
  const std::vector<NodeId>& hosts() const { return hosts_; }

  bool started() const { return started_; }
  bool finished() const { return finished_; }
  bool aborted() const { return aborted_; }
  SimTime start_time() const { return start_time_; }
  SimTime finish_time() const { return finish_time_; }
  // Completion time so far (finish - start); only valid once finished.
  SimTime CompletionSeconds() const;

  // True while instances are in the compute phase of the current stage
  // (drives the CPU-utilization traces of Fig 2).
  bool IsComputing() const { return started_ && !finished_ && computing_; }

  int current_stage() const { return stage_; }
  int service_level() const { return sl_; }

 private:
  void BeginStage();
  void OpenStageConnections();
  void CloseStageConnections();
  void StartOverlapChunk(double chunk_fraction, double elastic_fraction);
  void OnComputeDone();
  void OnStageFlowDone();
  void MaybeFinishStage();
  void StartStageFlows(double fraction);
  void StartElasticFlows(double fraction);
  void AbandonElasticFlows();
  void AbandonCriticalFlows();
  void Finish();

  EventScheduler* scheduler_;
  FlowSimulator* flow_sim_;
  WorkloadSpec spec_;
  std::vector<NodeId> hosts_;
  AppId id_;
  AppNetworkPolicy* policy_;
  DoneCallback on_done_;

  int sl_ = 0;
  int stage_ = -1;
  bool started_ = false;
  bool finished_ = false;
  bool aborted_ = false;
  bool computing_ = false;
  bool compute_done_ = false;
  bool sequential_part_started_ = false;
  int outstanding_flows_ = 0;
  int pending_overlap_chunks_ = 0;
  bool connections_open_ = false;
  // In-flight non-critical flows; cancelled at the stage barrier.
  std::vector<FlowId> elastic_flows_;
  // In-flight critical flows of the current stage (for Abort()).
  std::vector<FlowId> critical_flows_;
  SimTime start_time_ = 0;
  SimTime finish_time_ = 0;
};

}  // namespace saba

#endif  // SRC_WORKLOAD_APP_RUNTIME_H_
