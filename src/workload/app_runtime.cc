#include "src/workload/app_runtime.h"

#include <algorithm>
#include <vector>
#include <cassert>
#include <utility>

namespace saba {
namespace {

// Stable per-connection salt so a connection always takes the same ECMP path
// (like a real transport connection) and the router path cache stays warm
// across stages.
// Number of chunks the overlapped shuffle is paced into across the compute
// phase. More chunks track the "produce as you compute" behaviour more
// closely; 3 is plenty at fluid granularity.
constexpr int kOverlapChunks = 3;

// Relative in-queue weight of elastic (prefetch) flows: the application's own
// prefetcher yields to critical shuffle traffic wherever they contend, but
// soaks up capacity nobody else wants.
constexpr double kElasticIntraWeight = 0.15;

uint64_t ConnectionSalt(AppId app, int instance, int peer_slot) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(app)) << 32) |
         (static_cast<uint64_t>(static_cast<uint32_t>(instance)) << 8) |
         static_cast<uint64_t>(static_cast<uint32_t>(peer_slot));
}

}  // namespace

void AppNetworkPolicy::OnConnectionOpen(AppId, NodeId, NodeId, uint64_t) {}
void AppNetworkPolicy::OnConnectionClose(AppId, NodeId, NodeId, uint64_t) {}
void AppNetworkPolicy::OnAppFinish(AppId) {}
int AppNetworkPolicy::ServiceLevelFor(AppId) const { return -1; }

Application::Application(EventScheduler* scheduler, FlowSimulator* flow_sim, WorkloadSpec spec,
                         std::vector<NodeId> hosts, AppId id, AppNetworkPolicy* policy)
    : scheduler_(scheduler),
      flow_sim_(flow_sim),
      spec_(std::move(spec)),
      hosts_(std::move(hosts)),
      id_(id),
      policy_(policy) {
  assert(scheduler_ != nullptr && flow_sim_ != nullptr && policy_ != nullptr);
  assert(hosts_.size() >= 2 && "a distributed job needs at least two instances");
  assert(!spec_.stages.empty());
}

SimTime Application::CompletionSeconds() const {
  assert(finished_);
  return finish_time_ - start_time_;
}

void Application::Start(DoneCallback on_done) {
  assert(!started_);
  started_ = true;
  on_done_ = std::move(on_done);
  start_time_ = scheduler_->Now();
  sl_ = policy_->OnAppStart(id_, spec_.name, hosts_);
  assert(sl_ >= 0 && sl_ < kNumServiceLevels);
  BeginStage();
}

void Application::OpenStageConnections() {
  // The shuffle manager opens connections when a stage starts communicating
  // and tears them down at the stage barrier — so the controller always
  // allocates over the applications *actively using* each port (§5.1), not
  // over everything registered.
  if (connections_open_) {
    return;
  }
  connections_open_ = true;
  const int n = static_cast<int>(hosts_.size());
  const int fanout = std::min(spec_.fanout, n - 1);
  for (int i = 0; i < n; ++i) {
    for (int k = 1; k <= fanout; ++k) {
      const int peer = (i + k) % n;
      policy_->OnConnectionOpen(id_, hosts_[static_cast<size_t>(i)],
                                hosts_[static_cast<size_t>(peer)], ConnectionSalt(id_, i, k));
    }
  }
}

void Application::CloseStageConnections() {
  if (!connections_open_) {
    return;
  }
  connections_open_ = false;
  const int n = static_cast<int>(hosts_.size());
  const int fanout = std::min(spec_.fanout, n - 1);
  for (int i = 0; i < n; ++i) {
    for (int k = 1; k <= fanout; ++k) {
      const int peer = (i + k) % n;
      policy_->OnConnectionClose(id_, hosts_[static_cast<size_t>(i)],
                                 hosts_[static_cast<size_t>(peer)], ConnectionSalt(id_, i, k));
    }
  }
}

void Application::BeginStage() {
  ++stage_;
  if (static_cast<size_t>(stage_) >= spec_.stages.size()) {
    Finish();
    return;
  }
  const StageSpec& stage = spec_.stages[static_cast<size_t>(stage_)];
  compute_done_ = false;
  sequential_part_started_ = false;
  outstanding_flows_ = 0;
  pending_overlap_chunks_ = 0;
  if (stage.bits_per_peer > 0 || stage.elastic_bits_per_peer > 0) {
    OpenStageConnections();
  }

  // The overlappable shuffle (and the opportunistic elastic traffic) is
  // paced across the compute window in chunks, emulating shuffle data
  // becoming available as compute produces it.
  if ((stage.overlap > 0 && stage.bits_per_peer > 0) || stage.elastic_bits_per_peer > 0) {
    const int chunks = stage.compute_seconds > 0 ? kOverlapChunks : 1;
    const double fraction =
        stage.bits_per_peer > 0 ? stage.overlap / static_cast<double>(chunks) : 0.0;
    const double elastic_fraction =
        stage.elastic_bits_per_peer > 0 ? 1.0 / static_cast<double>(chunks) : 0.0;
    for (int i = 0; i < chunks; ++i) {
      ++pending_overlap_chunks_;
      const double at = stage.compute_seconds * static_cast<double>(i) / chunks;
      const int expected_stage = stage_;
      scheduler_->ScheduleAfter(at, [this, expected_stage, fraction, elastic_fraction] {
        if (finished_) {
          return;  // Aborted while the chunk was pending.
        }
        assert(stage_ == expected_stage && "stage advanced past a pending chunk");
        (void)expected_stage;
        StartOverlapChunk(fraction, elastic_fraction);
      });
    }
  }

  if (stage.compute_seconds > 0) {
    computing_ = true;
    scheduler_->ScheduleAfter(stage.compute_seconds, [this] {
      if (!finished_) {
        OnComputeDone();
      }
    });
  } else {
    OnComputeDone();
  }
}

void Application::StartOverlapChunk(double chunk_fraction, double elastic_fraction) {
  assert(pending_overlap_chunks_ > 0);
  --pending_overlap_chunks_;
  if (chunk_fraction > 0) {
    StartStageFlows(chunk_fraction);
  }
  if (elastic_fraction > 0) {
    StartElasticFlows(elastic_fraction);
  }
  MaybeFinishStage();
}

void Application::StartElasticFlows(double fraction) {
  const int n = static_cast<int>(hosts_.size());
  const int fanout = std::min(spec_.fanout, n - 1);
  const double bits = spec_.stages[static_cast<size_t>(stage_)].elastic_bits_per_peer *
                      fraction * static_cast<double>(spec_.fanout) / static_cast<double>(fanout);
  if (bits <= 0) {
    return;
  }
  for (int i = 0; i < n; ++i) {
    for (int k = 1; k <= fanout; ++k) {
      const int peer = (i + k) % n;
      const FlowId id = flow_sim_->StartFlow(
          id_, hosts_[static_cast<size_t>(i)], hosts_[static_cast<size_t>(peer)], bits, sl_,
          ConnectionSalt(id_, i, k),
          [this](FlowId done) { std::erase(elastic_flows_, done); }, kElasticIntraWeight);
      elastic_flows_.push_back(id);
    }
  }
}

void Application::AbandonElasticFlows() {
  for (FlowId id : elastic_flows_) {
    flow_sim_->CancelFlow(id);
  }
  elastic_flows_.clear();
}

void Application::AbandonCriticalFlows() {
  for (FlowId id : critical_flows_) {
    flow_sim_->CancelFlow(id);
  }
  critical_flows_.clear();
  outstanding_flows_ = 0;
}

void Application::Abort() {
  if (!started_ || finished_) {
    return;
  }
  finished_ = true;
  aborted_ = true;
  finish_time_ = scheduler_->Now();
  computing_ = false;
  // Park the stage index past the end so any pending compute or chunk events
  // become no-ops (they assert on the stage; mark them disarmed instead).
  AbandonElasticFlows();
  AbandonCriticalFlows();
  CloseStageConnections();
  policy_->OnAppFinish(id_);
}

void Application::OnComputeDone() {
  computing_ = false;
  compute_done_ = true;
  const StageSpec& stage = spec_.stages[static_cast<size_t>(stage_)];
  const double sequential_fraction = 1.0 - stage.overlap;
  if (sequential_fraction > 0 && stage.bits_per_peer > 0) {
    StartStageFlows(sequential_fraction);
  }
  sequential_part_started_ = true;
  MaybeFinishStage();
}

void Application::StartStageFlows(double fraction) {
  // Pick up any PL re-clustering the controller performed since the last
  // shuffle.
  const int updated_sl = policy_->ServiceLevelFor(id_);
  if (updated_sl >= 0) {
    assert(updated_sl < kNumServiceLevels);
    sl_ = updated_sl;
  }
  const int n = static_cast<int>(hosts_.size());
  const int fanout = std::min(spec_.fanout, n - 1);
  // If the instance count forces a smaller fanout, preserve the total shuffle
  // volume per instance.
  const double bits =
      spec_.stages[static_cast<size_t>(stage_)].bits_per_peer * fraction *
      static_cast<double>(spec_.fanout) / static_cast<double>(fanout);
  if (bits <= 0) {
    return;
  }
  for (int i = 0; i < n; ++i) {
    for (int k = 1; k <= fanout; ++k) {
      const int peer = (i + k) % n;
      ++outstanding_flows_;
      const FlowId id = flow_sim_->StartFlow(
          id_, hosts_[static_cast<size_t>(i)], hosts_[static_cast<size_t>(peer)], bits, sl_,
          ConnectionSalt(id_, i, k), [this](FlowId done) {
            std::erase(critical_flows_, done);
            OnStageFlowDone();
          });
      critical_flows_.push_back(id);
    }
  }
}

void Application::OnStageFlowDone() {
  assert(outstanding_flows_ > 0);
  --outstanding_flows_;
  MaybeFinishStage();
}

void Application::MaybeFinishStage() {
  if (compute_done_ && sequential_part_started_ && pending_overlap_chunks_ == 0 &&
      outstanding_flows_ == 0) {
    // Stale prefetches do not cross the stage barrier, and the stage's
    // connections are released so the controller can re-allocate their ports.
    AbandonElasticFlows();
    CloseStageConnections();
    BeginStage();
  }
}

void Application::Finish() {
  finished_ = true;
  finish_time_ = scheduler_->Now();
  CloseStageConnections();
  policy_->OnAppFinish(id_);
  if (on_done_) {
    on_done_(id_, finish_time_ - start_time_);
  }
}

}  // namespace saba
