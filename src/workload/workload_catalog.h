// The workload catalog: calibrated models of the paper's ten HiBench
// workloads (Table 1, Fig 1a) plus the synthetic-workload generator used by
// the large-scale simulation (§8.1).
//
// Stage parameters are calibrated so that each workload's *slowdown curve*
// matches the paper's measurements: e.g. LR slows 3.4x at 25% bandwidth and
// 1.3x at 75% (Fig 1a), PR completes in ~310 s at 75% (Fig 2), SQL is flat
// until ~25% and then degrades steeply (Fig 5). Absolute byte counts are
// whatever the calibration demands — the reproduced quantity is the
// time/bandwidth behaviour, not the literal shuffle sizes.

#ifndef SRC_WORKLOAD_WORKLOAD_CATALOG_H_
#define SRC_WORKLOAD_WORKLOAD_CATALOG_H_

#include <string_view>
#include <vector>

#include "src/sim/rng.h"
#include "src/workload/workload_spec.h"

namespace saba {

// The ten workloads of Table 1, in the paper's order:
// LR, RF, GBT, SVM, NI, NW, PR, SQL, WC, Sort.
const std::vector<WorkloadSpec>& HiBenchCatalog();

// Finds a workload by name ("LR", "Sort", ...); nullptr if unknown.
const WorkloadSpec* FindWorkload(std::string_view name);

// Table 1 metadata: benchmark category and profiling dataset description.
struct WorkloadDatasetInfo {
  const char* name;
  const char* full_name;
  const char* category;
  const char* dataset;
};
const std::vector<WorkloadDatasetInfo>& Table1Datasets();

// Generates `count` synthetic workloads with varying stage counts, compute
// weights, shuffle volumes, and overlap factors, emulating the 20 synthetic
// workloads of the 1,944-server simulation (§8.1: "The amount of
// computation, communication, and the number of stages varies across the
// workloads to emulate varying degrees of bandwidth sensitivity").
std::vector<WorkloadSpec> GenerateSyntheticWorkloads(size_t count, Rng* rng);

}  // namespace saba

#endif  // SRC_WORKLOAD_WORKLOAD_CATALOG_H_
