#include "src/baselines/homa_policy.h"

#include <cassert>
#include <cmath>

namespace saba {

HomaScheduler::HomaScheduler(FlowSimulator* flow_sim, HomaConfig config)
    : flow_sim_(flow_sim), config_(config) {
  assert(flow_sim != nullptr);
  assert(config_.num_priorities >= 2);
  assert(config_.cutoff_bits > 0);
  flow_sim_->SetPreAllocateHook([this] { RefreshPriorities(); });
}

int HomaScheduler::PriorityFor(double remaining_bits) const {
  if (remaining_bits > config_.cutoff_bits) {
    return config_.num_priorities - 1;
  }
  // Geometric size buckets over (0, cutoff]: the smallest messages map to
  // class 0. With P-1 graduated classes, bucket by log2 of the fraction of
  // the cutoff.
  const int graduated = config_.num_priorities - 1;
  const double frac = remaining_bits / config_.cutoff_bits;  // (0, 1]
  const int bucket = static_cast<int>(std::floor(-std::log2(frac)));
  const int cls = graduated - 1 - bucket;
  return cls < 0 ? 0 : cls;
}

void HomaScheduler::RefreshPriorities() {
  flow_sim_->ForEachActiveFlow([this](const ActiveFlow& flow) {
    flow_sim_->SetFlowPriority(flow.id, PriorityFor(flow.remaining_bits));
  });
}

}  // namespace saba
