#include "src/baselines/sincronia_policy.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>

namespace saba {

std::vector<AppId> ComputeBssiOrder(const std::vector<CoflowDemand>& coflows) {
  const size_t n = coflows.size();
  std::vector<bool> placed(n, false);
  std::vector<AppId> order(n, kInvalidApp);

  // Remaining (scaled) demand per coflow per port; BSSI scales the demand of
  // unplaced coflows down as later positions are filled. Ordered like
  // CoflowDemand::port_demand so every scan below is canonical.
  std::vector<std::map<LinkId, double>> demand;
  demand.reserve(n);
  for (const CoflowDemand& c : coflows) {
    demand.push_back(c.port_demand);
  }

  for (size_t slot = n; slot > 0; --slot) {
    // 1. Bottleneck port: largest total demand over unplaced coflows.
    // Ordered: the max scan below visits ports ascending, so the (total,
    // port) tie-break is canonical by construction.
    std::map<LinkId, double> port_total;
    for (size_t c = 0; c < n; ++c) {
      if (placed[c]) {
        continue;
      }
      for (const auto& [port, bits] : demand[c]) {
        port_total[port] += bits;
      }
    }
    LinkId bottleneck = kInvalidLink;
    double worst = -1;
    for (const auto& [port, total] : port_total) {
      if (total > worst || (total == worst && port < bottleneck)) {
        worst = total;
        bottleneck = port;
      }
    }

    // 2. Select: the unplaced coflow with the largest demand on the
    // bottleneck goes last (ties broken by app id for determinism). Coflows
    // with no demand anywhere can be placed last trivially.
    size_t chosen = n;
    double chosen_demand = -1;
    for (size_t c = 0; c < n; ++c) {
      if (placed[c]) {
        continue;
      }
      double d = 0;
      if (bottleneck != kInvalidLink) {
        auto it = demand[c].find(bottleneck);
        d = it == demand[c].end() ? 0 : it->second;
      }
      if (d > chosen_demand ||
          (d == chosen_demand && (chosen == n || coflows[c].app > coflows[chosen].app))) {
        chosen_demand = d;
        chosen = c;
      }
    }
    assert(chosen < n);
    placed[chosen] = true;
    order[slot - 1] = coflows[chosen].app;

    // 3. Scale: shrink the remaining coflows' demands by what the chosen one
    // no longer contends for at the bottleneck (unit-weight specialization:
    // subtract proportionally so earlier positions see the residual load).
    if (bottleneck != kInvalidLink && chosen_demand > 0) {
      for (size_t c = 0; c < n; ++c) {
        if (placed[c]) {
          continue;
        }
        auto it = demand[c].find(bottleneck);
        if (it != demand[c].end()) {
          it->second = std::max(0.0, it->second - chosen_demand * it->second / worst);
        }
      }
    }
  }
  return order;
}

SincroniaScheduler::SincroniaScheduler(FlowSimulator* flow_sim, SincroniaConfig config)
    : flow_sim_(flow_sim), config_(config) {
  assert(flow_sim != nullptr);
  assert(config_.num_priorities >= 1);
  flow_sim_->SetPreAllocateHook([this] { RefreshPriorities(); });
}

void SincroniaScheduler::RefreshPriorities() {
  // Build one coflow per application from the in-flight flows.
  // saba-lint: unordered-iter-ok(lookup-only: emplace/find by app, never iterated)
  std::unordered_map<AppId, size_t> index;
  std::vector<CoflowDemand> coflows;
  flow_sim_->ForEachActiveFlow([&](const ActiveFlow& flow) {
    auto [it, inserted] = index.emplace(flow.app, coflows.size());
    if (inserted) {
      coflows.push_back({flow.app, {}});
    }
    for (LinkId link : *flow.path) {
      coflows[it->second].port_demand[link] += flow.remaining_bits;
    }
  });
  if (coflows.empty()) {
    return;
  }

  const std::vector<AppId> order = ComputeBssiOrder(coflows);
  // saba-lint: unordered-iter-ok(lookup-only: filled from `order`, read by .at)
  std::unordered_map<AppId, int> priority;
  for (size_t pos = 0; pos < order.size(); ++pos) {
    priority[order[pos]] =
        std::min(static_cast<int>(pos), config_.num_priorities - 1);
  }
  flow_sim_->ForEachActiveFlow([&](const ActiveFlow& flow) {
    flow_sim_->SetFlowPriority(flow.id, priority.at(flow.app));
  });
}

}  // namespace saba
