#include "src/baselines/pfabric_policy.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace saba {

PFabricScheduler::PFabricScheduler(FlowSimulator* flow_sim, PFabricConfig config)
    : flow_sim_(flow_sim), config_(config) {
  assert(flow_sim != nullptr);
  assert(config_.num_priorities >= 2);
  assert(config_.min_bits > 0 && config_.max_bits > config_.min_bits);
  log_min_ = std::log(config_.min_bits);
  log_range_ = std::log(config_.max_bits) - log_min_;
  flow_sim_->SetPreAllocateHook([this] { RefreshPriorities(); });
}

int PFabricScheduler::PriorityFor(double remaining_bits) const {
  if (remaining_bits <= config_.min_bits) {
    return 0;
  }
  const double frac = (std::log(remaining_bits) - log_min_) / log_range_;
  const int cls = static_cast<int>(frac * (config_.num_priorities - 1)) + 1;
  return std::clamp(cls, 0, config_.num_priorities - 1);
}

void PFabricScheduler::RefreshPriorities() {
  flow_sim_->ForEachActiveFlow([this](const ActiveFlow& flow) {
    flow_sim_->SetFlowPriority(flow.id, PriorityFor(flow.remaining_bits));
  });
}

}  // namespace saba
