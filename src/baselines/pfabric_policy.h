// pFabric-like baseline (related work, Alizadeh et al. SIGCOMM'13).
//
// pFabric attaches the flow's *remaining size* to every packet and switches
// serve the smallest-remaining packet first — idealized SRPT with an
// effectively unbounded priority space. In the fluid model this is the
// Homa-like scheduler without the 10 KB cutoff: remaining sizes map onto a
// fine-grained geometric class ladder, so a 1 MB flow preempts a 1 GB flow
// (which Homa's shared bottom class cannot express). Like Homa and
// Sincronia, it optimizes flow-level metrics and is application-agnostic —
// the contrast Saba draws in §9.

#ifndef SRC_BASELINES_PFABRIC_POLICY_H_
#define SRC_BASELINES_PFABRIC_POLICY_H_

#include "src/net/flow_simulator.h"

namespace saba {

struct PFabricConfig {
  // Priority classes emulating the "unbounded" priority space: geometric
  // size buckets spanning `min_bits` .. `max_bits`.
  int num_priorities = 32;
  double min_bits = 8.0 * 1500;   // One MTU.
  double max_bits = 8e12;         // 1 TB — everything real is inside.
};

class PFabricScheduler {
 public:
  PFabricScheduler(FlowSimulator* flow_sim, PFabricConfig config = {});

  // Priority class for a flow with `remaining_bits` left: class 0 (served
  // first) for the smallest flows, growing geometrically.
  int PriorityFor(double remaining_bits) const;

 private:
  void RefreshPriorities();

  FlowSimulator* flow_sim_;
  PFabricConfig config_;
  double log_min_ = 0;
  double log_range_ = 1;
};

}  // namespace saba

#endif  // SRC_BASELINES_PFABRIC_POLICY_H_
