// Homa-like baseline (paper §8.4, study 5).
//
// Homa is a receiver-driven transport that maps messages onto switch priority
// queues by size: the shorter a message, the higher its priority; messages
// beyond a cutoff (10 KB in the paper's configuration) all share the lowest
// priority queue. Within a priority class the fabric serves flows fairly.
//
// In the fluid model this becomes: before every allocation, assign each flow
// a priority class from its *remaining* size (an SRPT approximation) and let
// the StrictPriorityAllocator serve classes in order. Because data-analytics
// shuffles are megabytes to gigabytes, almost all of their flows land in the
// shared bottom class — exactly the behaviour the paper calls out ("Homa
// assigns all flows longer than a certain size (10KB) to the same priority
// queue, without differentiating their associated workloads").

#ifndef SRC_BASELINES_HOMA_POLICY_H_
#define SRC_BASELINES_HOMA_POLICY_H_

#include <vector>

#include "src/net/flow_simulator.h"

namespace saba {

struct HomaConfig {
  // Number of priority classes (queues per port; 8 in the paper's setups).
  int num_priorities = 8;
  // Messages at or below this many bits get graduated priorities; larger
  // ones share the last class. 10 KB, per the paper.
  double cutoff_bits = 10e3 * 8;
};

// Attaches Homa's size-based prioritization to a flow simulator. The object
// must outlive the simulation.
class HomaScheduler {
 public:
  HomaScheduler(FlowSimulator* flow_sim, HomaConfig config = {});

  // Priority class for a flow with `remaining_bits` left (exposed for tests):
  // class 0 is served first; sizes <= cutoff spread over classes
  // [0, num_priorities-2] on a geometric scale; larger flows share the last.
  int PriorityFor(double remaining_bits) const;

 private:
  void RefreshPriorities();

  FlowSimulator* flow_sim_;
  HomaConfig config_;
};

}  // namespace saba

#endif  // SRC_BASELINES_HOMA_POLICY_H_
