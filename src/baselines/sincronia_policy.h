// Sincronia-like baseline (paper §8.4, study 6).
//
// Sincronia schedules *coflows* — the set of related flows an application
// stage produces — by computing a total order with the Bottleneck-Select-
// Scale-Iterate (BSSI) primal-dual greedy and assigning flow priorities from
// the order; a priority-enabled transport enforces the rates. It is
// clairvoyant (assumes flow sizes are known a priori) and optimizes coflow
// completion time, not application completion time — which is exactly the
// contrast the paper draws with Saba.
//
// Here a coflow is an application's in-flight flow set. Before every
// allocation the policy recomputes the BSSI order over remaining demands and
// maps order positions onto the available strict-priority classes.

#ifndef SRC_BASELINES_SINCRONIA_POLICY_H_
#define SRC_BASELINES_SINCRONIA_POLICY_H_

#include <map>
#include <vector>

#include "src/net/flow_simulator.h"

namespace saba {

struct SincroniaConfig {
  // Priority classes available in the fabric (8 in the paper's setups).
  int num_priorities = 8;
};

// One coflow's per-port demand, used by the ordering algorithm.
struct CoflowDemand {
  AppId app = kInvalidApp;
  // Port (link) -> total remaining bits the coflow must push through it.
  // Ordered map: BSSI iterates these demands, and ascending-port iteration
  // keeps the bottleneck scan canonical across platforms.
  std::map<LinkId, double> port_demand;
};

// Computes the BSSI order: result[0] is scheduled first (highest priority).
// Greedy from the back: repeatedly find the most-bottlenecked port (largest
// total unplaced demand) and place the coflow with the largest demand on it
// *last* among the unplaced. This is Sincronia's 4-approximation ordering
// specialized to unit coflow weights.
std::vector<AppId> ComputeBssiOrder(const std::vector<CoflowDemand>& coflows);

class SincroniaScheduler {
 public:
  SincroniaScheduler(FlowSimulator* flow_sim, SincroniaConfig config = {});

 private:
  void RefreshPriorities();

  FlowSimulator* flow_sim_;
  SincroniaConfig config_;
};

}  // namespace saba

#endif  // SRC_BASELINES_SINCRONIA_POLICY_H_
