// Token-bucket rate limiter.
//
// The paper's profiler throttles NIC bandwidth with the token-bucket rate
// limiter in the InfiniBand driver (§7.1). In the fluid simulator the
// throttle is applied by scaling host link capacity (the steady-state
// equivalent); this class models the actual mechanism at packet granularity
// and is used by tests and the profiler example to document conformance
// (long-run rate == configured rate, bursts bounded by bucket depth).
//
// Token state is carried as integer bits (units.h fixed point): each refill
// banks whole bits into an int64 and keeps only the sub-bit fraction — which
// stays in [0, 1) forever — as the carry. The old all-double accumulator lost
// precision once the token count grew large; here the accumulated quantity is
// exact no matter how long the bucket runs.

#ifndef SRC_NET_TOKEN_BUCKET_H_
#define SRC_NET_TOKEN_BUCKET_H_

#include <cstdint>

#include "src/net/units.h"
#include "src/sim/sim_time.h"

namespace saba {

class TokenBucket {
 public:
  // `rate_bps`: sustained token refill rate. `burst_bits`: bucket depth (the
  // maximum burst admitted after idling), rounded to whole bits. The bucket
  // starts full.
  TokenBucket(Bps64 rate_bps, double burst_bits);

  // Attempts to admit `bits` at time `now`. Returns true (and consumes
  // tokens) if the bucket holds enough; false otherwise. `now` must be
  // monotone across calls.
  bool TryConsume(double bits, SimTime now);

  // Earliest time at which `bits` can be admitted (>= now). If `bits`
  // exceeds the bucket depth it can never be admitted whole; returns
  // kNeverTime in that case.
  SimTime NextAdmissionTime(double bits, SimTime now) const;

  // Tokens available at `now` (after refill, clamped to depth).
  double AvailableAt(SimTime now) const;

  Bps64 rate_bps() const { return rate_bps_; }
  double burst_bits() const { return static_cast<double>(burst_bits_); }

  // Changes the sustained rate (the profiler adjusts this between runs).
  void SetRate(Bps64 rate_bps);

 private:
  void Refill(SimTime now);

  Bps64 rate_bps_;
  int64_t burst_bits_;
  int64_t token_bits_;     // Whole banked bits (may dip below 0 by the
                           // epsilon-slack TryConsume admits).
  double token_frac_ = 0;  // Sub-bit carry, always in [0, 1).
  SimTime last_refill_ = 0;
};

}  // namespace saba

#endif  // SRC_NET_TOKEN_BUCKET_H_
