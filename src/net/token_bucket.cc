#include "src/net/token_bucket.h"

#include <algorithm>
#include <cassert>

namespace saba {

TokenBucket::TokenBucket(double rate_bps, double burst_bits)
    : rate_bps_(rate_bps), burst_bits_(burst_bits), tokens_(burst_bits) {
  assert(rate_bps > 0);
  assert(burst_bits > 0);
}

void TokenBucket::Refill(SimTime now) {
  assert(now >= last_refill_ && "time must be monotone");
  tokens_ = std::min(burst_bits_, tokens_ + rate_bps_ * (now - last_refill_));
  last_refill_ = now;
}

bool TokenBucket::TryConsume(double bits, SimTime now) {
  assert(bits >= 0);
  Refill(now);
  if (tokens_ + kTimeEpsilon * rate_bps_ < bits) {
    return false;
  }
  tokens_ -= bits;
  return true;
}

SimTime TokenBucket::NextAdmissionTime(double bits, SimTime now) const {
  assert(bits >= 0);
  if (bits > burst_bits_) {
    return kNeverTime;
  }
  const double tokens_now =
      std::min(burst_bits_, tokens_ + rate_bps_ * std::max(0.0, now - last_refill_));
  if (tokens_now >= bits) {
    return now;
  }
  return now + (bits - tokens_now) / rate_bps_;
}

double TokenBucket::AvailableAt(SimTime now) const {
  return std::min(burst_bits_, tokens_ + rate_bps_ * std::max(0.0, now - last_refill_));
}

void TokenBucket::SetRate(double rate_bps) {
  assert(rate_bps > 0);
  rate_bps_ = rate_bps;
}

}  // namespace saba
