#include "src/net/token_bucket.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace saba {
namespace {

int64_t WholeBits(double bits) {
  assert(bits >= 0);
  return static_cast<int64_t>(bits + 0.5);
}

}  // namespace

TokenBucket::TokenBucket(Bps64 rate_bps, double burst_bits)
    : rate_bps_(rate_bps), burst_bits_(WholeBits(burst_bits)), token_bits_(burst_bits_) {
  assert(rate_bps > 0);
  assert(burst_bits_ > 0);
}

void TokenBucket::Refill(SimTime now) {
  assert(now >= last_refill_ && "time must be monotone");
  const double grown = BpsToDouble(rate_bps_) * (now - last_refill_) + token_frac_;
  const double room = static_cast<double>(burst_bits_ - token_bits_);
  if (grown >= room) {
    // Full (also guards the int64 against unbounded idle periods).
    token_bits_ = burst_bits_;
    token_frac_ = 0;
  } else {
    const double whole = std::floor(grown);
    token_bits_ += static_cast<int64_t>(whole);
    token_frac_ = grown - whole;  // In [0, 1): the only non-integer state.
  }
  last_refill_ = now;
}

bool TokenBucket::TryConsume(double bits, SimTime now) {
  assert(bits >= 0);
  Refill(now);
  const double available = static_cast<double>(token_bits_) + token_frac_;
  if (available + kTimeEpsilon * BpsToDouble(rate_bps_) < bits) {
    return false;
  }
  token_bits_ -= WholeBits(bits);
  return true;
}

SimTime TokenBucket::NextAdmissionTime(double bits, SimTime now) const {
  assert(bits >= 0);
  if (bits > static_cast<double>(burst_bits_)) {
    return kNeverTime;
  }
  const double rate = BpsToDouble(rate_bps_);
  const double tokens_now =
      std::min(static_cast<double>(burst_bits_),
               static_cast<double>(token_bits_) + token_frac_ +
                   rate * std::max(0.0, now - last_refill_));
  if (tokens_now >= bits) {
    return now;
  }
  return now + (bits - tokens_now) / rate;
}

double TokenBucket::AvailableAt(SimTime now) const {
  return std::min(static_cast<double>(burst_bits_),
                  static_cast<double>(token_bits_) + token_frac_ +
                      BpsToDouble(rate_bps_) * std::max(0.0, now - last_refill_));
}

void TokenBucket::SetRate(Bps64 rate_bps) {
  assert(rate_bps > 0);
  rate_bps_ = rate_bps;
}

}  // namespace saba
