#include "src/net/packet_sim.h"

#include <algorithm>
#include <cassert>
#include <deque>

#include "src/sim/event_scheduler.h"

namespace saba {
namespace {

// Per-flow FIFO inside a VL queue.
struct FlowQueue {
  int flow = -1;
  std::deque<int> packets;  // Packet payloads are just flow ids; store counts.
  double deficit = 0;
};

// One VL queue on an egress port.
struct QueueState {
  std::vector<FlowQueue> flows;
  int occupancy = 0;  // Packets buffered (including one in transmission).
  int reserved = 0;   // Slots promised to in-flight upstream transmissions.
  int granted = 0;    // Slots promised to waiting feeders (credit grants).
  double deficit = 0;
  size_t cursor = 0;  // Intra-queue DRR position.
  // Feeders waiting for a credit: >= 0 is an upstream LinkId, < 0 encodes a
  // source flow as -(flow + 1). Served round robin as slots free — without
  // explicit grants, a fast competitor snatches every freed slot and a
  // cross-traffic flow can starve completely (classic input-buffered switch
  // unfairness; real fabrics arbitrate ingress ports round-robin).
  std::deque<int> waiters;

  FlowQueue& FlowLane(int flow) {
    for (FlowQueue& lane : flows) {
      if (lane.flow == flow) {
        return lane;
      }
    }
    flows.push_back({flow, {}, 0});
    return flows.back();
  }
};

// One egress port (directed link).
struct PortState {
  bool busy = false;
  std::vector<QueueState> queues;
  size_t queue_cursor = 0;
};

struct FlowState {
  std::vector<LinkId> path;
  int sl = 0;
  double intra_weight = 1.0;
  int queue_at_hop(const Network& net, size_t hop) const {
    return net.port(path[hop]).sl_to_queue[static_cast<size_t>(sl)];
  }
  // Remaining packets to inject; -1 => unlimited.
  int64_t to_inject = -1;
  double delivered_bits = 0;
};

class PacketEngine {
 public:
  PacketEngine(Network* network, const std::vector<PacketFlowSpec>& specs,
               const PacketSimConfig& config)
      : network_(network), config_(config) {
    ports_.resize(network_->topology().num_links());
    in_links_.resize(network_->topology().num_nodes());
    kick_cursor_.assign(network_->topology().num_nodes(), 0);
    for (size_t l = 0; l < network_->topology().num_links(); ++l) {
      in_links_[static_cast<size_t>(network_->topology().link(static_cast<LinkId>(l)).dst)]
          .push_back(static_cast<LinkId>(l));
    }
    for (size_t l = 0; l < ports_.size(); ++l) {
      ports_[l].queues.resize(
          static_cast<size_t>(network_->port(static_cast<LinkId>(l)).num_queues));
    }
    flows_.reserve(specs.size());
    for (size_t f = 0; f < specs.size(); ++f) {
      const PacketFlowSpec& spec = specs[f];
      assert(spec.src != spec.dst);
      FlowState flow;
      flow.path = network_->router().Route(spec.src, spec.dst, spec.path_salt);
      flow.sl = spec.sl;
      flow.intra_weight = spec.intra_weight;
      flow.to_inject =
          spec.total_bits < 0
              ? -1
              : static_cast<int64_t>(spec.total_bits / config_.packet_bits);
      flows_.push_back(std::move(flow));
    }
  }

  PacketSimResult Run() {
    // Prime: inject as much as the first-hop buffers take.
    for (size_t f = 0; f < flows_.size(); ++f) {
      InjectUpTo(static_cast<int>(f));
    }
    for (size_t l = 0; l < ports_.size(); ++l) {
      TryServe(static_cast<LinkId>(l));
    }
    scheduler_.RunUntil(config_.horizon_seconds);

    PacketSimResult result;
    for (const FlowState& flow : flows_) {
      result.delivered_bits.push_back(flow.delivered_bits);
    }
    for (const PortState& port : ports_) {
      for (const QueueState& queue : port.queues) {
        result.packets_in_flight += queue.occupancy;
      }
    }
    return result;
  }

 private:
  // Hop index of `link` on `flow`'s path.
  size_t HopIndex(int flow, LinkId link) const {
    const auto& path = flows_[static_cast<size_t>(flow)].path;
    for (size_t h = 0; h < path.size(); ++h) {
      if (path[h] == link) {
        return h;
      }
    }
    assert(false && "link not on flow path");
    return 0;
  }

  QueueState& QueueOf(int flow, size_t hop) {
    const FlowState& state = flows_[static_cast<size_t>(flow)];
    const LinkId link = state.path[hop];
    const int q = state.queue_at_hop(*network_, hop);
    return ports_[static_cast<size_t>(link)].queues[static_cast<size_t>(q)];
  }

  bool HasSpace(const QueueState& queue) const {
    return queue.occupancy + queue.reserved + queue.granted < config_.buffer_packets;
  }

  // Registers `waiter` for a credit on `queue` (deduplicated).
  void AwaitCredit(QueueState& queue, int waiter) {
    for (int w : queue.waiters) {
      if (w == waiter) {
        return;
      }
    }
    queue.waiters.push_back(waiter);
  }

  // Credit grants held by upstream links / sources, keyed by (queue, waiter).
  // Small and transient: linear scan.
  struct Grant {
    const QueueState* queue;
    int waiter;
    int count;
  };
  std::vector<Grant> grants_;

  int& GrantCount(const QueueState& queue, int waiter) {
    for (Grant& grant : grants_) {
      if (grant.queue == &queue && grant.waiter == waiter) {
        return grant.count;
      }
    }
    grants_.push_back({&queue, waiter, 0});
    return grants_.back().count;
  }

  bool HasGrant(const QueueState& queue, int waiter) {
    for (const Grant& grant : grants_) {
      if (grant.queue == &queue && grant.waiter == waiter && grant.count > 0) {
        return true;
      }
    }
    return false;
  }

  // Keeps the first-hop queue of `flow` full while budget remains.
  void InjectUpTo(int flow) {
    FlowState& state = flows_[static_cast<size_t>(flow)];
    QueueState& queue = QueueOf(flow, 0);
    while (state.to_inject != 0) {
      const int source_waiter = -(flow + 1);
      if (HasGrant(queue, source_waiter)) {
        GrantCount(queue, source_waiter) -= 1;
        queue.granted -= 1;
      } else if (!HasSpace(queue)) {
        AwaitCredit(queue, source_waiter);
        return;
      }
      queue.FlowLane(flow).packets.push_back(flow);
      queue.occupancy += 1;
      if (state.to_inject > 0) {
        --state.to_inject;
      }
    }
  }

  // True if the head packet of `flow` at `hop` could be transmitted now:
  // final hop, free downstream space, or a credit granted to this link. A
  // blocked head registers as a credit waiter.
  bool Eligible(int flow, size_t hop) {
    const FlowState& state = flows_[static_cast<size_t>(flow)];
    if (hop + 1 >= state.path.size()) {
      return true;
    }
    QueueState& next = QueueOf(flow, hop + 1);
    if (HasSpace(next) || HasGrant(next, state.path[hop])) {
      return true;
    }
    AwaitCredit(next, state.path[hop]);
    return false;
  }

  // Deficit-round-robin selection and transmission start for a port. One
  // packet per call: the current queue keeps serving while its banked
  // deficit lasts; quanta are granted when the round-robin pointer *enters*
  // a queue, so weights translate into packets-per-round exactly.
  void TryServe(LinkId link) {
    PortState& port = ports_[static_cast<size_t>(link)];
    if (port.busy) {
      return;
    }
    const PortConfig& config = network_->port(link);
    const size_t num_queues = port.queues.size();
    double min_weight = config.queue_weights[0];
    for (double w : config.queue_weights) {
      min_weight = std::min(min_weight, w);
    }

    auto queue_eligible = [&](QueueState& queue) {
      for (const FlowQueue& lane : queue.flows) {
        if (!lane.packets.empty() && Eligible(lane.flow, HopIndex(lane.flow, link))) {
          return true;
        }
      }
      return false;
    };

    // Each queue is entered at most twice per call (once with a fresh
    // quantum); the +1 covers the initial state.
    for (size_t attempt = 0; attempt < 2 * num_queues + 1; ++attempt) {
      QueueState& queue = port.queues[port.queue_cursor];
      if (queue_eligible(queue) && queue.deficit >= config_.packet_bits) {
        // Intra-queue DRR: grant intra quanta until some eligible lane can
        // send (bounded by 1/min_intra_weight passes).
        for (int pass = 0; pass < 16; ++pass) {
          const size_t lanes = queue.flows.size();
          const size_t start = queue.cursor;
          for (size_t lstep = 0; lstep < lanes; ++lstep) {
            const size_t idx = (start + lstep) % lanes;
            FlowQueue& lane = queue.flows[idx];
            if (lane.packets.empty() ||
                !Eligible(lane.flow, HopIndex(lane.flow, link))) {
              continue;
            }
            lane.deficit +=
                flows_[static_cast<size_t>(lane.flow)].intra_weight * config_.packet_bits;
            if (lane.deficit >= config_.packet_bits) {
              lane.deficit -= config_.packet_bits;
              queue.deficit -= config_.packet_bits;
              queue.cursor = (idx + 1) % lanes;
              StartTransmission(link, port.queue_cursor, idx);
              return;
            }
          }
          queue.cursor = (start + 1) % lanes;
        }
        assert(false && "an eligible lane must be able to send");
      }
      // Leave this queue: ineligible queues forfeit their bank (work
      // conservation); eligible-but-exhausted queues keep the remainder.
      if (!queue_eligible(queue)) {
        queue.deficit = 0;
      }
      port.queue_cursor = (port.queue_cursor + 1) % num_queues;
      QueueState& next = port.queues[port.queue_cursor];
      if (queue_eligible(next)) {
        next.deficit = std::min(
            next.deficit + config.queue_weights[port.queue_cursor] / min_weight *
                               config_.packet_bits,
            2.0 * config.queue_weights[port.queue_cursor] / min_weight * config_.packet_bits);
      } else if (attempt >= num_queues) {
        // A full round found nothing eligible anywhere: idle until a kick.
        bool any = false;
        for (QueueState& candidate : port.queues) {
          any = any || queue_eligible(candidate);
        }
        if (!any) {
          return;
        }
      }
    }
  }

  void StartTransmission(LinkId link, size_t q, size_t lane_index) {
    PortState& port = ports_[static_cast<size_t>(link)];
    QueueState& queue = port.queues[q];
    FlowQueue& lane = queue.flows[lane_index];
    const int flow = lane.packets.front();
    lane.packets.pop_front();
    port.busy = true;

    const size_t hop = HopIndex(flow, link);
    const bool final_hop = hop + 1 >= flows_[static_cast<size_t>(flow)].path.size();
    if (!final_hop) {
      QueueState& next = QueueOf(flow, hop + 1);
      // Consume a held grant first; otherwise take free space.
      if (HasGrant(next, link)) {
        GrantCount(next, link) -= 1;
        next.granted -= 1;
      }
      next.reserved += 1;  // Credit taken downstream.
    }
    const double serialization =
        config_.packet_bits / network_->topology().link(link).capacity_bps;
    scheduler_.ScheduleAfter(serialization, [this, link, q, flow, hop, final_hop] {
      FinishTransmission(link, q, flow, hop, final_hop);
    });
  }

  void FinishTransmission(LinkId link, size_t q, int flow, size_t hop, bool final_hop) {
    PortState& port = ports_[static_cast<size_t>(link)];
    QueueState& queue = port.queues[q];
    queue.occupancy -= 1;
    port.busy = false;

    // The freed slot goes to the next credit waiter, if any.
    if (!queue.waiters.empty()) {
      const int waiter = queue.waiters.front();
      queue.waiters.pop_front();
      GrantCount(queue, waiter) += 1;
      queue.granted += 1;
      if (waiter >= 0) {
        TryServe(static_cast<LinkId>(waiter));
      } else {
        InjectUpTo(-waiter - 1);
        TryServe(flows_[static_cast<size_t>(-waiter - 1)].path.front());
      }
    }

    if (final_hop) {
      flows_[static_cast<size_t>(flow)].delivered_bits += config_.packet_bits;
    } else {
      QueueState& next = QueueOf(flow, hop + 1);
      next.reserved -= 1;
      next.occupancy += 1;
      next.FlowLane(flow).packets.push_back(flow);
      TryServe(flows_[static_cast<size_t>(flow)].path[hop + 1]);
    }

    // A slot freed in this queue: sources feeding this port's first hops may
    // inject, and upstream ports blocked on credit may now proceed.
    KickFeeders(link);
    TryServe(link);
  }

  // Wakes everything that might have been waiting for space at `link`. The
  // upstream kick order rotates per node so a freed credit is not always
  // granted to the same feeder (real arbiters round-robin ingress ports).
  void KickFeeders(LinkId link) {
    const NodeId node = network_->topology().link(link).src;
    for (size_t f = 0; f < flows_.size(); ++f) {
      if (flows_[f].path.front() == link) {
        InjectUpTo(static_cast<int>(f));
      }
    }
    const auto& feeders = in_links_[static_cast<size_t>(node)];
    if (!feeders.empty()) {
      size_t& cursor = kick_cursor_[static_cast<size_t>(node)];
      cursor = (cursor + 1) % feeders.size();
      for (size_t step = 0; step < feeders.size(); ++step) {
        TryServe(feeders[(cursor + step) % feeders.size()]);
      }
    }
    TryServe(link);
  }

  Network* network_;
  PacketSimConfig config_;
  EventScheduler scheduler_;
  std::vector<PortState> ports_;
  std::vector<FlowState> flows_;
  std::vector<std::vector<LinkId>> in_links_;
  std::vector<size_t> kick_cursor_;
};

}  // namespace

PacketSimResult RunPacketSim(Network* network, const std::vector<PacketFlowSpec>& flows,
                             const PacketSimConfig& config) {
  assert(network != nullptr);
  assert(!flows.empty());
  assert(config.packet_bits > 0);
  assert(config.buffer_packets >= 2);
  assert(config.horizon_seconds > 0);
  PacketEngine engine(network, flows, config);
  return engine.Run();
}

}  // namespace saba
