// Fluid bandwidth allocation over the fabric.
//
// The simulator is flow-level: instead of packets, each active flow has an
// instantaneous rate, recomputed whenever the set of flows (or the switch
// configuration) changes. Two disciplines are provided:
//
//  * WfqMaxMinAllocator — weighted max-min across per-port queues, matching
//    the WFQ/WRR scheduling of InfiniBand switches (§5.2). A flow's weight at
//    a link is queue_weight / flows_in_that_queue; rates are computed by
//    weighted progressive filling: all flows grow proportionally to their
//    path-wide minimum weight until a link saturates, whose flows then freeze
//    at their share, and so on. The allocation is work-conserving and every
//    flow ends up bottlenecked at some saturated link. (The per-flow weight
//    is fixed at the start of each allocation — the classical approximation
//    used by fluid simulators; per-queue shares at a single bottleneck are
//    exact.)
//
//  * StrictPriorityAllocator — serves priority classes in order (class 0
//    first), giving each class a max-min allocation of the capacity left by
//    higher classes. Used by the Homa-like and Sincronia-like baselines.
//
// Capacity efficiency: each queue's share is scaled by the Network's
// CongestionModel according to how many distinct applications share the
// queue at that link (see network.h for the rationale).
//
// Each allocator is a *strategy* over a shared allocation core
// (src/net/allocation_engine.{h,cc}): the stateless Allocate() entry point
// recomputes everything from scratch, while CreateEngine() yields a stateful
// AllocationEngine that keeps the resource graph alive between events and
// re-solves only the components touched by deltas. Both paths run the same
// component solver, so their rates are bit-identical.

#ifndef SRC_NET_ALLOCATOR_H_
#define SRC_NET_ALLOCATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/net/network.h"
#include "src/net/units.h"

namespace saba {

using FlowId = int64_t;
using AppId = int32_t;

inline constexpr FlowId kInvalidFlow = -1;
inline constexpr AppId kInvalidApp = -1;

// A flow currently in the fabric, as seen by the allocator.
struct ActiveFlow {
  FlowId id = kInvalidFlow;
  AppId app = kInvalidApp;
  // Service level carried in the flow's packets; ports map it to a queue.
  int sl = 0;
  // Priority class for StrictPriorityAllocator (lower value = served first).
  // Policies (Homa, Sincronia) maintain this; WFQ ignores it.
  int priority = 0;
  // Relative share of the flow within its queue (and class): normal traffic
  // is 1.0; subordinate traffic (an application's own opportunistic
  // prefetch) uses a small value so it yields to critical flows wherever
  // they contend, while still soaking up idle capacity.
  double intra_weight = 1.0;
  double remaining_bits = 0;
  // Path of the flow (non-empty; set by the flow simulator at start time).
  const std::vector<LinkId>* path = nullptr;
  // Output: instantaneous rate in fixed-point bits/s, written by Allocate().
  // Integer by design: rates come out of the integer water-fill exactly
  // (units.h), and consumers convert to double only at the fluid boundary.
  Bps64 rate = 0;
};

// Queue discipline a BandwidthAllocator (or AllocationEngine) solves under.
enum class AllocationDiscipline {
  kWfqSlQueues,     // Port SL->queue map + configured WFQ weights.
  kPerAppQueues,    // One virtual queue per application at every port.
  kStrictPriority,  // Priority classes served in order (class 0 first).
};

// Weight of application `app` at port `link` for kPerAppQueues; must be > 0.
using PerAppWeightFn = std::function<double(LinkId, AppId)>;

class AllocationEngine;

class BandwidthAllocator {
 public:
  virtual ~BandwidthAllocator() = default;

  // Computes rates for all flows; writes ActiveFlow::rate. All flows must
  // have non-empty paths, remaining_bits > 0, and unique ids.
  virtual void Allocate(const std::vector<ActiveFlow*>& flows, const Network& net) = 0;

  // A stateful engine solving the same discipline incrementally. `net` must
  // outlive the engine (see allocation_engine.h).
  virtual std::unique_ptr<AllocationEngine> CreateEngine(const Network* net) const = 0;
};

class WfqMaxMinAllocator : public BandwidthAllocator {
 public:
  void Allocate(const std::vector<ActiveFlow*>& flows, const Network& net) override;
  std::unique_ptr<AllocationEngine> CreateEngine(const Network* net) const override;
};

class StrictPriorityAllocator : public BandwidthAllocator {
 public:
  void Allocate(const std::vector<ActiveFlow*>& flows, const Network& net) override;
  std::unique_ptr<AllocationEngine> CreateEngine(const Network* net) const override;
};

// WFQ where every application gets its own (virtual) queue at every port,
// regardless of SL maps and port queue counts — the "unlimited queues"
// idealization. With the default unit weights this is the paper's *ideal
// max-min fairness* (study 4: "each workload is assigned to a dedicated
// queue" served round-robin); with a weight function it is Saba's
// upper-bound configuration in Fig 11b. Congestion efficiency is ideal
// (queues are app-pure by construction).
class PerAppWfqAllocator : public BandwidthAllocator {
 public:
  using WeightFn = PerAppWeightFn;

  // Null `weights` means unit weight for every application (ideal max-min).
  explicit PerAppWfqAllocator(WeightFn weights = nullptr) : weights_(std::move(weights)) {}

  void Allocate(const std::vector<ActiveFlow*>& flows, const Network& net) override;
  std::unique_ptr<AllocationEngine> CreateEngine(const Network* net) const override;

 private:
  WeightFn weights_;
};

}  // namespace saba

#endif  // SRC_NET_ALLOCATOR_H_
