// Event-driven fluid flow simulator.
//
// Flows are byte-counted transfers between hosts. Whenever the active flow
// set, the switch configuration, or flow priorities change, the simulator
// re-runs the bandwidth allocator and re-plans every flow's completion event.
// Between events, each flow drains at its allocated rate. Re-allocations are
// coalesced: any number of changes at the same simulated instant trigger a
// single allocator run.
//
// Allocation is incremental: the simulator streams flow/port deltas into a
// persistent AllocationEngine (created via allocator->CreateEngine) and each
// coalesced reallocation re-solves only the link-sharing components those
// deltas touched (see allocation_engine.h; DESIGN.md §7.1 "Incremental
// allocation"). The engine's rates are bit-identical to a from-scratch run.

#ifndef SRC_NET_FLOW_SIMULATOR_H_
#define SRC_NET_FLOW_SIMULATOR_H_

#include <cassert>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/net/allocation_engine.h"
#include "src/net/allocator.h"
#include "src/net/network.h"
#include "src/sim/event_scheduler.h"

namespace saba {

class FlowSimulator {
 public:
  using CompletionCallback = std::function<void(FlowId)>;

  // All pointers must outlive the simulator.
  FlowSimulator(EventScheduler* scheduler, Network* network, BandwidthAllocator* allocator);

  FlowSimulator(const FlowSimulator&) = delete;
  FlowSimulator& operator=(const FlowSimulator&) = delete;

  // Starts a transfer of `bits` from `src` to `dst` (distinct hosts) with
  // service level `sl`. `path_salt` pins the ECMP path (same salt -> same
  // path). `on_complete` fires when the last bit drains; it may start new
  // flows. `intra_weight` sets the flow's relative share within its queue
  // (see ActiveFlow::intra_weight). Returns the flow id.
  FlowId StartFlow(AppId app, NodeId src, NodeId dst, double bits, int sl, uint64_t path_salt,
                   CompletionCallback on_complete, double intra_weight = 1.0);

  // Removes a flow before completion (no callback fires).
  void CancelFlow(FlowId id);

  // Changes the strict-priority class of a flow (used by the Sincronia-like
  // policy). Triggers reallocation.
  void SetFlowPriority(FlowId id, int priority);

  // Changes the SL of every active flow of an application (used when a
  // controller re-clusters PLs). Triggers reallocation.
  void SetAppServiceLevel(AppId app, int sl);

  // Notifies the simulator that port configurations changed; rates are
  // recomputed at the current instant. The changed ports are unattributed, so
  // this invalidates the whole fabric (full recompute on the engine).
  void RequestReallocate();

  // Notifies the simulator that one link's capacity changed in place (e.g. a
  // degradation scenario scaled it). Routing is untouched — only the port's
  // capacity is re-read — so this streams a targeted PortConfigChanged delta
  // instead of invalidating the whole fabric.
  void NotifyLinkChanged(LinkId link);

  // Re-pins live flows after a topology up/down mutation (SetLinkUp /
  // SetNodeUp). Only flows whose pinned path now crosses an unusable link are
  // re-resolved — like InfiniBand connections, established paths never move
  // on restores — each as a FlowRemoved/FlowAdded delta pair so the engine's
  // incremental state stays bit-identical to a from-scratch solve. Every
  // affected flow's endpoints must still be reachable (asserted): failure
  // scenarios may degrade the fabric, not partition live flows.
  void HandleTopologyChange();

  // Installed hook runs immediately before each allocator invocation — the
  // Homa-like policy refreshes size-based priorities here.
  void SetPreAllocateHook(std::function<void()> hook) { pre_allocate_hook_ = std::move(hook); }

  // Component-parallel solving (DESIGN.md §7.3): fan multi-component solves
  // across `jobs` worker slots on the engine. Rates are bit-identical at
  // every setting; 1 (the default) is the serial path. The exp layer threads
  // the SABA_SOLVE_JOBS knob here (CoRunOptions::solve_jobs).
  void SetSolveJobs(int jobs) { engine_->SetSolveJobs(jobs); }

  // Quantizes flow-completion event times up to the next multiple of
  // `quantum` seconds (0 = exact, the default). Large co-runs use a coarse
  // grid (~0.25 s on minutes-long jobs) so that near-simultaneous completions
  // coalesce into a single reallocation: the error is bounded by the quantum
  // per stage, and the reallocation count drops by an order of magnitude.
  void SetCompletionQuantum(double quantum) {
    assert(quantum >= 0);
    completion_quantum_ = quantum;
  }

  // --- Introspection -------------------------------------------------------

  // Current rate of a flow in bits/s; 0 if unknown.
  double FlowRate(FlowId id) const;

  // Remaining bits of a flow at the current instant; 0 if unknown.
  double FlowRemainingBits(FlowId id) const;

  // Sum of rates of active flows whose source is `host` (egress throughput).
  // O(1): served from per-host sums rebuilt lazily after rate changes.
  double HostEgressRate(NodeId host) const;

  size_t active_flow_count() const { return flows_.size(); }
  uint64_t completed_flow_count() const { return completed_; }
  uint64_t cancelled_flow_count() const { return cancelled_; }
  uint64_t allocator_runs() const { return allocator_runs_; }
  // Flows re-pinned by HandleTopologyChange over the simulator's lifetime.
  uint64_t rerouted_flow_count() const { return rerouted_; }

  // Incremental-allocation counters (how much work the dirty-component
  // expansion saved); see AllocationEngineStats.
  const AllocationEngineStats& engine_stats() const { return engine_->stats(); }

  // Visits every active flow in ascending id order without copying. Policies
  // may change flow attributes via SetFlowPriority / SetAppServiceLevel
  // during the visit, but must not start or cancel flows.
  template <typename Fn>
  void ForEachActiveFlow(Fn&& fn) const {
    engine_->ForEachFlow(std::forward<Fn>(fn));
  }

  EventScheduler* scheduler() { return scheduler_; }
  Network* network() { return network_; }

 private:
  struct FlowRecord {
    ActiveFlow flow;  // flow.path points at path_storage below.
    CompletionCallback on_complete;
    SimTime last_update = 0;
    // Endpoints and salt are kept so HandleTopologyChange can re-resolve the
    // path; the simulator owns its own copy of each route (rather than
    // pointing into the router's cache) because topology mutations invalidate
    // cached references mid-run (routing.h contract).
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    uint64_t path_salt = 0;
    std::vector<LinkId> path_storage;
  };

  // Applies elapsed drain to `record` up to Now().
  void SyncFlow(FlowRecord* record);

  // Recomputes dirty rates and re-plans the next-completion event.
  void Reallocate();

  // Schedules a coalesced reallocation at the current instant.
  void MarkDirty();

  // Fires at the earliest planned completion: drains and completes every
  // flow that has reached zero. One event serves the whole flow set — the
  // alternative (an event per flow, re-planned on every reallocation) floods
  // the scheduler heap with cancelled entries.
  void OnCompletionTick();

  EventScheduler* scheduler_;
  Network* network_;
  BandwidthAllocator* allocator_;
  std::unique_ptr<AllocationEngine> engine_;
  std::function<void()> pre_allocate_hook_;

  // Ordered by flow id: completion extraction, host-egress accumulation and
  // the service-level sweep all iterate this map, so ascending-id iteration
  // keeps callback order and float-sum order canonical across platforms
  // (the same argument as the engine's canonical flow index, DESIGN.md
  // §7.1). unique_ptr keeps FlowRecord addresses stable, since
  // ActiveFlow::path points into the record itself (and the engine holds the
  // ActiveFlow pointer between deltas). HandleTopologyChange also relies on
  // this order: broken flows re-pin in ascending id order, which keeps the
  // delta stream canonical for the parallel-determinism contract (§7.3).
  std::map<FlowId, std::unique_ptr<FlowRecord>> flows_;
  FlowId next_flow_id_ = 1;
  EventHandle next_completion_event_;
  SimTime next_completion_time_ = kNeverTime;
  double completion_quantum_ = 0;
  bool dirty_ = false;
  bool reallocating_ = false;
  uint64_t completed_ = 0;
  uint64_t cancelled_ = 0;
  uint64_t allocator_runs_ = 0;
  uint64_t rerouted_ = 0;

  // Per-host egress sums, rebuilt on demand after any rate or flow-set
  // change. mutable: rebuilding in the const query is invisible to callers.
  mutable std::vector<double> host_egress_;
  mutable bool host_egress_stale_ = true;
};

}  // namespace saba

#endif  // SRC_NET_FLOW_SIMULATOR_H_
