// Incremental allocation engine: a persistent fabric state driven by deltas.
//
// The stateless BandwidthAllocator interface rebuilds the whole
// flow -> queue -> link resource graph on every call, even though a typical
// simulator event (one flow starting or completing) perturbs only the links on
// that flow's path. AllocationEngine keeps the graph alive between events:
// callers stream deltas (FlowAdded / FlowRemoved / FlowQueueChanged /
// PortConfigChanged), the engine tracks a dirty-link set, and Recompute()
// expands the dirty links to the affected connected components of the
// link-sharing graph and re-runs progressive filling only over those
// components. Flows outside the dirty components keep their previous rates.
//
// Exactness, not approximation: two flows can influence each other's rates
// only through a chain of shared links, so a connected component of the
// link <-> flow sharing graph is a self-contained allocation subproblem. Both
// the engine and the from-scratch path (AllocateFromScratch, which backs the
// classic BandwidthAllocator::Allocate) decompose the fabric into components
// and solve each with the same code. The solve itself is fixed-point integer
// arithmetic (units.h Bps64 + WeightUnits): rates are exact 128-bit floors of
// rational water levels and every aggregate is a commutative integer sum, so
// a component's rates are a pure function of its flow *multiset* — no flow
// ordering, summation order, or tie-break exists to discipline (DESIGN.md
// §7.1). Incremental and from-scratch rates are therefore bit-identical by
// arithmetic — a property tests/allocation_engine_test.cc enforces under
// randomized churn. InvalidateAll() remains as the full-recompute fallback
// (and is what RequestReallocate maps to when the changed ports are unknown).
//
// Determinism: the engine introduces no randomness and no dependence on
// memory layout or flow order, so results are reproducible across runs and
// SABA_JOBS settings (DESIGN.md §7).
//
// Component-parallel solving (DESIGN.md §7.3): because components are
// independent subproblems, a solve that touches several of them may fan the
// component solves across a saba::WorkerPool (SetSolveJobs). Scheduling never
// reaches any component's arithmetic — each worker slot solves into its own
// scratch arena and writes only its component's flows — so serial, parallel,
// incremental, and from-scratch solves are all bit-identical;
// tests/allocation_engine_test.cc enforces this under randomized churn at
// solve_jobs ∈ {1, 2, 4}.

#ifndef SRC_NET_ALLOCATION_ENGINE_H_
#define SRC_NET_ALLOCATION_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/net/allocator.h"
#include "src/net/network.h"

namespace saba {

// Everything one solve needs that is not the flows themselves: the per-worker
// scratch arenas, the partition scratch, and the (lazily created) worker
// pool. Opaque — defined in allocation_engine.cc.
struct EngineSolveState;

// Counters exposed for benchmarks and the co-run report. flows_rerated vs
// flow_events shows how much work the dirty-component expansion saved. The
// parallel_* counters are deterministic functions of (delta stream,
// solve_jobs): both are 0 when solve_jobs == 1, and identical for every
// solve_jobs > 1 (the dispatch decision depends only on the component count
// and the batch's flow count — see kMinParallelBatchFlows).
struct AllocationEngineStats {
  uint64_t recomputes = 0;        // Recompute() calls that had dirty state.
  uint64_t full_recomputes = 0;   // ... of which took the full fallback path.
  uint64_t components_solved = 0; // Connected components re-solved.
  uint64_t flows_rerated = 0;     // Flow rates recomputed, summed over solves.
  uint64_t flows_frozen = 0;      // Flows whose rates were left untouched.
  uint64_t parallel_solves = 0;   // Component batches fanned across the pool.
  uint64_t parallel_components = 0;  // Components solved inside those batches.
};

class AllocationEngine {
 public:
  // `net` must outlive the engine; the topology's link count must not change
  // (port *configurations* may, via PortConfigChanged / InvalidateAll).
  // `per_app_weights` is used by kPerAppQueues only (null = unit weights).
  AllocationEngine(const Network* net, AllocationDiscipline discipline,
                   PerAppWeightFn per_app_weights = nullptr);
  ~AllocationEngine();

  AllocationEngine(const AllocationEngine&) = delete;
  AllocationEngine& operator=(const AllocationEngine&) = delete;

  // Adaptive serial fallback: a multi-component batch is fanned across the
  // pool only when it re-rates at least this many flows in total. Pool
  // dispatch costs a few microseconds — ~4x the whole solve on the one- and
  // two-component batches typical of steady-state churn (BENCH_micro.json's
  // BM_ChurnIncrementalParallel rows) — while batches past this size (full
  // recomputes, re-clusterings) amortize it easily. The threshold keeps the
  // dispatch decision a pure function of the delta stream and solve_jobs.
  static constexpr size_t kMinParallelBatchFlows = 64;

  // Component-parallel solving (DESIGN.md §7.3): when a solve touches more
  // than one dirty component, fan the component solves across `jobs` worker
  // slots (1, the default, solves serially on the calling thread; the env
  // knob is SABA_SOLVE_JOBS, threaded down by the exp layer). Rates are
  // bit-identical at every setting, so this may be changed at any time, even
  // between Recomputes. When discipline is kPerAppQueues, `per_app_weights`
  // must be safe to call concurrently (a pure read, like the controller's
  // AppWeightAtPort) before setting jobs > 1. jobs must be >= 1.
  void SetSolveJobs(int jobs);
  int solve_jobs() const;

  // --- Delta feed ----------------------------------------------------------
  // The flow pointer must stay valid and its path stable until FlowRemoved.
  // Flow ids must be unique among registered flows.
  void FlowAdded(ActiveFlow* flow);
  void FlowRemoved(ActiveFlow* flow);
  // The flow moved queues in place: its sl, priority, or intra_weight
  // changed. (A path change requires FlowRemoved + FlowAdded.)
  void FlowQueueChanged(ActiveFlow* flow);
  // The PortConfig of `link` changed (queue count, SL map, weights).
  void PortConfigChanged(LinkId link);
  // Something unattributable changed (e.g. a fabric-wide reconfiguration):
  // the next Recompute() re-rates every flow from scratch.
  void InvalidateAll();

  // Re-rates every flow in a component touched by a dirty link; all other
  // flows keep their previous rate. With no dirty state this is a no-op.
  void Recompute();

  // --- Stable flow index ---------------------------------------------------
  // Visits every registered flow in ascending id order (no copies). Policies
  // may mutate flow attributes and feed deltas during the visit, but must not
  // add or remove flows.
  template <typename Fn>
  void ForEachFlow(Fn&& fn) const {
    for (const auto& [id, flow] : flows_) {
      fn(static_cast<const ActiveFlow&>(*flow));
    }
  }

  size_t flow_count() const { return flows_.size(); }
  const AllocationEngineStats& stats() const { return stats_; }

 private:
  void MarkLinkDirty(LinkId link);
  // Appends the flows of the component of `seed` reachable through shared
  // links (each exactly once, in BFS discovery order — the solver does not
  // care), marking links visited.
  void CollectComponent(LinkId seed, std::vector<ActiveFlow*>* out);

  const Network* net_;
  const AllocationDiscipline discipline_;
  const PerAppWeightFn per_app_weights_;

  // id -> flow: the stable, canonically ordered flow index.
  std::map<FlowId, ActiveFlow*> flows_;
  // Per link: flows whose path crosses it (unordered; canonical order always
  // comes from flow ids).
  std::vector<std::vector<ActiveFlow*>> link_flows_;

  std::vector<LinkId> dirty_links_;
  std::vector<uint8_t> link_dirty_;
  bool all_dirty_ = false;

  // Recompute() scratch, persistent to avoid reallocation.
  std::vector<uint8_t> link_visited_;
  std::vector<LinkId> visited_scratch_;
  std::vector<LinkId> bfs_queue_;
  std::vector<ActiveFlow*> all_flows_scratch_;

  // Solver arenas + worker pool (per-slot scratch; DESIGN.md §7.3).
  std::unique_ptr<EngineSolveState> solve_;

  AllocationEngineStats stats_;
};

// From-scratch allocation under `discipline`: partitions the flows into
// link-sharing components (in whatever order they arrive — the integer solve
// is order-independent) and solves each with the same component solver the
// engine uses. This is the oracle the incremental path is tested against,
// and the implementation behind the stateless BandwidthAllocator::Allocate
// entry points. Flow ids must be unique. Writes ActiveFlow::rate for every
// flow.
void AllocateFromScratch(const std::vector<ActiveFlow*>& flows, const Network& net,
                         AllocationDiscipline discipline,
                         const PerAppWeightFn& per_app_weights = nullptr);

}  // namespace saba

#endif  // SRC_NET_ALLOCATION_ENGINE_H_
