#include "src/net/allocation_engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>

#include "src/sim/worker_pool.h"

namespace saba {

// -----------------------------------------------------------------------------
// Shared allocation core. The fluid WFQ allocation is a *nested* max-min:
//   level 1: each egress port's capacity is split across its backlogged
//            queues in proportion to the configured weights (WFQ);
//   level 2: inside a queue, backlogged flows share the queue's allocation
//            max-min fairly, weighted by ActiveFlow::intra_weight.
//
// We model every (link, queue) pair that carries flows as a *virtual
// resource* with its own capacity, run classic weighted progressive filling
// over those resources (each flow has ONE scalar weight — its intra weight —
// so the filling is exact weighted max-min over the resources), and then
// redistribute the capacity that under-demanding queues left unused to the
// queues that were actually constrained, iterating toward the
// work-conserving fixed point. A few rounds suffice: each round either finds
// no slack or strictly grows some binding queue's capacity.
//
// Everything below operates on ONE connected component of the link-sharing
// graph at a time: flows in different components share no link, so their
// allocations are independent subproblems. Solving per component is what
// makes the incremental engine's answer bit-identical to a from-scratch run —
// both paths feed the same component, in the same canonical order (ascending
// flow id), through the same code. It is also what makes component-*parallel*
// solving exact (DESIGN.md §7.3): a component's solve reads only the shared
// immutable Network and its own flows and scratch arena, so fanning
// components across worker slots cannot change any float program.
//
// The scratch types below are file-local implementation details; they live at
// namespace (not anonymous) scope only because EngineSolveState — forward-
// declared in the header so the engine can own one — aggregates them.
// -----------------------------------------------------------------------------

// Working state for one virtual resource (a queue on a link).
struct ResourceWork {
  double capacity = 0;   // Goodput available to this queue at this link.
  double remaining = 0;  // Capacity not yet claimed by frozen flows (per fill).
  double denom = 0;      // Sum of weights of still-active flows.
  int active = 0;
  uint64_t version = 0;
  bool requeue_mark = false;
  bool binding = false;  // Some flow froze *at* this resource in the last fill.
  std::vector<int> flow_indices;

  void ResetForFill() {
    remaining = capacity;
    denom = 0;
    active = 0;
    version = 0;
    requeue_mark = false;
    binding = false;
    flow_indices.clear();  // Keeps vector capacity across fills.
  }
};

// Maps LinkId -> dense slot, reusing storage across calls.
class LinkSlotMap {
 public:
  void Prepare(size_t num_links) {
    if (slots_.size() < num_links) {
      slots_.assign(num_links, -1);
    }
  }

  int SlotFor(LinkId link, bool* inserted) {
    int32_t& slot = slots_[static_cast<size_t>(link)];
    *inserted = slot < 0;
    if (slot < 0) {
      slot = next_++;
      touched_.push_back(link);
    }
    return slot;
  }

  int At(LinkId link) const { return slots_[static_cast<size_t>(link)]; }

  void Reset() {
    for (LinkId link : touched_) {
      slots_[static_cast<size_t>(link)] = -1;
    }
    touched_.clear();
    next_ = 0;
  }

 private:
  std::vector<int32_t> slots_;
  std::vector<LinkId> touched_;
  int32_t next_ = 0;
};

// Union-find over links, storage reused across calls like LinkSlotMap.
class LinkUnionFind {
 public:
  void Prepare(size_t num_links) {
    if (parent_.size() < num_links) {
      parent_.assign(num_links, kInvalidLink);
    }
  }

  LinkId Find(LinkId l) {
    if (parent_[static_cast<size_t>(l)] == kInvalidLink) {
      parent_[static_cast<size_t>(l)] = l;
      touched_.push_back(l);
    }
    LinkId root = l;
    while (parent_[static_cast<size_t>(root)] != root) {
      root = parent_[static_cast<size_t>(root)];
    }
    while (parent_[static_cast<size_t>(l)] != root) {
      const LinkId next = parent_[static_cast<size_t>(l)];
      parent_[static_cast<size_t>(l)] = root;
      l = next;
    }
    return root;
  }

  void Union(LinkId a, LinkId b) {
    const LinkId ra = Find(a);
    const LinkId rb = Find(b);
    if (ra != rb) {
      parent_[static_cast<size_t>(rb)] = ra;
    }
  }

  void Reset() {
    for (LinkId l : touched_) {
      parent_[static_cast<size_t>(l)] = kInvalidLink;
    }
    touched_.clear();
  }

 private:
  std::vector<LinkId> parent_;
  std::vector<LinkId> touched_;
};

// Per-slot solver arenas. Every piece of scratch the component solvers used
// to keep in `static thread_local` storage is an explicit field here, so
// concurrent component solves on pool workers touch disjoint memory by
// construction (DESIGN.md §7.3) — no sharing assumption is left implicit in
// thread identity. One arena exists per worker slot; the serial path uses
// arena 0.
struct ComponentScratch {
  // ProgressiveFill.
  std::vector<bool> frozen;
  std::vector<int> requeue;
  // SolveComponentNested.
  LinkSlotMap nested_link_slot;
  std::vector<std::vector<std::pair<int, int>>> queue_index;
  std::vector<ResourceWork> work;
  // SolveComponentStrict.
  std::vector<ActiveFlow*> by_class;
  LinkSlotMap remaining_slot;
  std::vector<double> remaining;
  std::vector<ActiveFlow*> cls;
  std::vector<std::vector<int>> resource_of;
  std::vector<ResourceWork> links;
  LinkSlotMap strict_link_slot;
};

// Everything one solve needs besides the flows: per-slot arenas, the
// partition scratch, and the (lazily created) worker pool. The engine owns
// one; AllocateFromScratch keeps one per calling thread (it runs inside
// SweepRunner tasks, where thread confinement is the isolation).
struct EngineSolveState {
  int jobs = 1;                       // Solve-time worker slots (>= 1).
  std::unique_ptr<WorkerPool> pool;   // Created on the first parallel batch.
  std::vector<std::unique_ptr<ComponentScratch>> arenas;  // arenas[slot].

  // SolvePartitioned / Recompute component-batch scratch.
  LinkUnionFind uf;
  std::vector<int32_t> group_of_root;  // Per link, -1 = none.
  std::vector<LinkId> group_roots;
  std::vector<std::vector<ActiveFlow*>> groups;

  // AllocateFromScratch canonical-order scratch.
  std::vector<ActiveFlow*> sorted;
};

namespace {

struct HeapEntry {
  double level = 0;  // remaining / denom at push time.
  int resource = 0;
  uint64_t version = 0;
};

struct HeapLater {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const { return a.level > b.level; }
};

// Weighted progressive filling over virtual resources. Each flow has a scalar
// weight (its intra weight) and a list of resource ids (one per path link);
// all rates grow in proportion to the weights until a resource saturates,
// whose flows then freeze at their shares — classic, exact weighted max-min.
void ProgressiveFill(const std::vector<ActiveFlow*>& flows,
                     const std::vector<std::vector<int>>& resource_of,
                     std::vector<ResourceWork>* resources, size_t num_resources,
                     ComponentScratch* scratch) {
  const size_t n = flows.size();
  for (size_t f = 0; f < n; ++f) {
    flows[f]->rate = 0;
    for (int r : resource_of[f]) {
      ResourceWork& work = (*resources)[static_cast<size_t>(r)];
      work.denom += flows[f]->intra_weight;
      work.active += 1;
      work.flow_indices.push_back(static_cast<int>(f));
    }
  }

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLater> heap;
  auto push_resource = [&](int r) {
    ResourceWork& work = (*resources)[static_cast<size_t>(r)];
    if (work.active == 0 || work.denom <= 0) {
      return;
    }
    heap.push({std::max(work.remaining, 0.0) / work.denom, r, work.version});
  };
  for (size_t r = 0; r < num_resources; ++r) {
    push_resource(static_cast<int>(r));
  }

  std::vector<bool>& frozen = scratch->frozen;
  frozen.assign(n, false);
  size_t frozen_count = 0;
  while (frozen_count < n && !heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    ResourceWork& bottleneck = (*resources)[static_cast<size_t>(top.resource)];
    if (top.version != bottleneck.version || bottleneck.active == 0) {
      continue;  // Stale entry; a fresh one was pushed when the state changed.
    }
    const double level = top.level;
    bottleneck.binding = true;
    // Freeze every still-active flow on the bottleneck at its weighted share,
    // collecting the changed resources (deduplicated — a busy bottleneck
    // would otherwise re-queue the same resource hundreds of times).
    std::vector<int>& requeue = scratch->requeue;
    requeue.clear();
    for (int fi : bottleneck.flow_indices) {
      const size_t f = static_cast<size_t>(fi);
      if (frozen[f]) {
        continue;
      }
      frozen[f] = true;
      ++frozen_count;
      const double rate = flows[f]->intra_weight * level;
      flows[f]->rate = rate;
      for (int r : resource_of[f]) {
        ResourceWork& work = (*resources)[static_cast<size_t>(r)];
        work.remaining -= rate;
        work.denom -= flows[f]->intra_weight;
        work.active -= 1;
        ++work.version;
        if (!work.requeue_mark) {
          work.requeue_mark = true;
          requeue.push_back(r);
        }
      }
    }
    for (int r : requeue) {
      (*resources)[static_cast<size_t>(r)].requeue_mark = false;
      push_resource(r);
    }
  }
  assert(frozen_count == n && "every flow must freeze at some bottleneck");
  (void)frozen_count;
}

// Prepared inputs for the nested WFQ fixed point, shared by the SL-mapped
// and per-application disciplines.
struct NestedWfqInput {
  // Per flow: the resource index of each path link, in path order.
  std::vector<std::vector<int>> resource_of;
  struct Resource {
    double weight = 1;      // Configured WFQ weight of the queue behind it.
    double efficiency = 1;  // Congestion-model efficiency of the queue.
  };
  std::vector<Resource> resources;
  // Per link slot: raw capacity and the resources living on the link.
  std::vector<double> link_capacity;
  std::vector<std::vector<int>> link_resources;
};

// Runs the redistribution rounds; leaves final rates in the flows.
void SolveNestedWfq(const std::vector<ActiveFlow*>& flows, const NestedWfqInput& input,
                    std::vector<ResourceWork>* work, ComponentScratch* scratch) {
  const size_t num_resources = input.resources.size();

  // Initial capacities: WFQ shares among the queues present at each link,
  // each degraded by its own protocol efficiency.
  for (size_t ls = 0; ls < input.link_resources.size(); ++ls) {
    double weight_sum = 0;
    for (int r : input.link_resources[ls]) {
      weight_sum += input.resources[static_cast<size_t>(r)].weight;
    }
    assert(weight_sum > 0);
    for (int r : input.link_resources[ls]) {
      const auto& meta = input.resources[static_cast<size_t>(r)];
      (*work)[static_cast<size_t>(r)].capacity =
          input.link_capacity[ls] * (meta.weight / weight_sum) * meta.efficiency;
    }
  }

  constexpr int kMaxRounds = 4;
  for (int round = 0; round < kMaxRounds; ++round) {
    for (size_t r = 0; r < num_resources; ++r) {
      (*work)[r].ResetForFill();
    }
    ProgressiveFill(flows, input.resource_of, work, num_resources, scratch);
    if (round + 1 == kMaxRounds) {
      break;  // This fill stands.
    }

    // Work conservation: re-home each link's unused capacity to the queues
    // that were actually constrained there ("binding"), in weight proportion.
    // Slack re-enters scaled by the receiving queue's own efficiency — WRR
    // can only hand out what the (imperfect) protocol can carry.
    bool changed = false;
    for (size_t ls = 0; ls < input.link_resources.size(); ++ls) {
      double used = 0;
      double wire_used = 0;
      double hungry_weight = 0;
      for (int r : input.link_resources[ls]) {
        const ResourceWork& res = (*work)[static_cast<size_t>(r)];
        const auto& meta = input.resources[static_cast<size_t>(r)];
        const double goodput = res.capacity - std::max(res.remaining, 0.0);
        used += goodput;
        wire_used += meta.efficiency > 0 ? goodput / meta.efficiency : goodput;
        if (res.binding) {
          hungry_weight += meta.weight;
        }
      }
      const double slack = input.link_capacity[ls] - wire_used;
      if (slack <= input.link_capacity[ls] * 1e-9 || hungry_weight <= 0) {
        continue;
      }
      for (int r : input.link_resources[ls]) {
        ResourceWork& res = (*work)[static_cast<size_t>(r)];
        const auto& meta = input.resources[static_cast<size_t>(r)];
        const double goodput = res.capacity - std::max(res.remaining, 0.0);
        if (res.binding) {
          const double grant = slack * (meta.weight / hungry_weight) * meta.efficiency;
          if (grant > input.link_capacity[ls] * 1e-9) {
            changed = true;
          }
          res.capacity = goodput + grant;
        } else {
          // Keep only what it used; its surplus is being re-homed.
          res.capacity = goodput;
        }
      }
    }
    if (!changed) {
      break;
    }
  }
}

// Nested WFQ over one component: `queue_key(flow, link)` identifies the
// flow's queue at a port, `queue_weight(flow, link)` its weight. The flows
// must be in canonical (ascending id) order — resource numbering, weight
// accumulation, and freeze order all follow it.
template <typename QueueKeyFn, typename QueueWeightFn>
void SolveComponentNested(const std::vector<ActiveFlow*>& flows, const Network& net,
                          QueueKeyFn queue_key, QueueWeightFn queue_weight,
                          ComponentScratch* scratch) {
  if (flows.empty()) {
    return;
  }

  LinkSlotMap& link_slot = scratch->nested_link_slot;
  link_slot.Prepare(net.topology().num_links());

  NestedWfqInput input;
  input.resource_of.assign(flows.size(), {});

  // Per link slot: (queue key -> resource index), linear-scanned small vecs.
  std::vector<std::vector<std::pair<int, int>>>& queue_index = scratch->queue_index;
  // Per resource: distinct apps (for the congestion model).
  std::vector<std::vector<AppId>> apps_in_resource;

  for (size_t f = 0; f < flows.size(); ++f) {
    const ActiveFlow* flow = flows[f];
    assert(flow->path != nullptr && !flow->path->empty());
    assert(flow->remaining_bits > 0);
    assert(flow->intra_weight > 0);
    input.resource_of[f].reserve(flow->path->size());
    for (LinkId l : *flow->path) {
      bool inserted = false;
      const int ls = link_slot.SlotFor(l, &inserted);
      if (inserted) {
        if (queue_index.size() <= static_cast<size_t>(ls)) {
          queue_index.resize(static_cast<size_t>(ls) + 1);
        }
        queue_index[static_cast<size_t>(ls)].clear();
        input.link_capacity.resize(static_cast<size_t>(ls) + 1);
        input.link_capacity[static_cast<size_t>(ls)] = net.topology().link(l).capacity_bps;
        input.link_resources.resize(static_cast<size_t>(ls) + 1);
      }
      const int key = queue_key(*flow, l);
      auto& index = queue_index[static_cast<size_t>(ls)];
      auto it = std::find_if(index.begin(), index.end(),
                             [key](const auto& entry) { return entry.first == key; });
      int resource;
      if (it == index.end()) {
        resource = static_cast<int>(input.resources.size());
        index.emplace_back(key, resource);
        input.resources.push_back({queue_weight(*flow, l), 1.0});
        input.link_resources[static_cast<size_t>(ls)].push_back(resource);
        apps_in_resource.emplace_back();
      } else {
        resource = it->second;
      }
      auto& apps = apps_in_resource[static_cast<size_t>(resource)];
      if (std::find(apps.begin(), apps.end(), flow->app) == apps.end()) {
        apps.push_back(flow->app);
      }
      input.resource_of[f].push_back(resource);
    }
  }

  for (size_t r = 0; r < input.resources.size(); ++r) {
    input.resources[r].efficiency =
        net.congestion().QueueEfficiency(apps_in_resource[r].size());
  }

  std::vector<ResourceWork>& work = scratch->work;
  if (work.size() < input.resources.size()) {
    work.resize(input.resources.size());
  }
  SolveNestedWfq(flows, input, &work, scratch);
  link_slot.Reset();
}

// Strict priority over one component: classes served best (lowest value)
// first, each getting a max-min allocation of what higher classes left. All
// scratch lives in the per-slot arena — this solver runs once per component
// per event, so per-call heap allocation would dominate at churn rates.
void SolveComponentStrict(const std::vector<ActiveFlow*>& flows, const Network& net,
                          ComponentScratch* scratch) {
  if (flows.empty()) {
    return;
  }

  // Group by priority class; the stable sort preserves the canonical id
  // order within each class.
  std::vector<ActiveFlow*>& by_class = scratch->by_class;
  by_class.assign(flows.begin(), flows.end());
  std::stable_sort(by_class.begin(), by_class.end(), [](const ActiveFlow* a, const ActiveFlow* b) {
    return a->priority < b->priority;
  });

  // Remaining capacity persists across classes; lower classes only see what
  // higher classes left behind.
  LinkSlotMap& remaining_slot = scratch->remaining_slot;
  remaining_slot.Prepare(net.topology().num_links());
  std::vector<double>& remaining = scratch->remaining;
  remaining.clear();
  for (const ActiveFlow* flow : by_class) {
    assert(flow->path != nullptr && !flow->path->empty());
    for (LinkId l : *flow->path) {
      bool inserted = false;
      (void)remaining_slot.SlotFor(l, &inserted);
      if (inserted) {
        remaining.push_back(net.topology().link(l).capacity_bps);
      }
    }
  }

  std::vector<ActiveFlow*>& cls = scratch->cls;
  std::vector<std::vector<int>>& resource_of = scratch->resource_of;
  std::vector<ResourceWork>& links = scratch->links;
  LinkSlotMap& link_slot = scratch->strict_link_slot;

  size_t i = 0;
  while (i < by_class.size()) {
    const int prio = by_class[i]->priority;
    cls.clear();
    while (i < by_class.size() && by_class[i]->priority == prio) {
      cls.push_back(by_class[i]);
      ++i;
    }

    // Weighted max-min within the class on the remaining capacity: one
    // resource per link (a priority class behaves like a single queue).
    link_slot.Prepare(net.topology().num_links());
    if (resource_of.size() < cls.size()) {
      resource_of.resize(cls.size());
    }
    size_t used_links = 0;
    for (size_t f = 0; f < cls.size(); ++f) {
      resource_of[f].clear();
      resource_of[f].reserve(cls[f]->path->size());
      for (LinkId l : *cls[f]->path) {
        bool inserted = false;
        const int slot = link_slot.SlotFor(l, &inserted);
        if (inserted) {
          if (links.size() <= used_links) {
            links.emplace_back();
          }
          links[used_links].capacity =
              std::max(remaining[static_cast<size_t>(remaining_slot.At(l))], 0.0);
          links[used_links].ResetForFill();
          ++used_links;
        }
        resource_of[f].push_back(slot);
      }
    }
    ProgressiveFill(cls, resource_of, &links, used_links, scratch);
    link_slot.Reset();

    for (const ActiveFlow* flow : cls) {
      for (LinkId l : *flow->path) {
        double& rem = remaining[static_cast<size_t>(remaining_slot.At(l))];
        rem = std::max(0.0, rem - flow->rate);
      }
    }
  }
  remaining_slot.Reset();
}

// Solves one component under the discipline. Flows must be id-sorted. Reads
// only the (immutable during a solve) Network, the component's flows and the
// given arena — the isolation the parallel batch below relies on.
void SolveComponent(const std::vector<ActiveFlow*>& flows, const Network& net,
                    AllocationDiscipline discipline, const PerAppWeightFn& per_app_weights,
                    ComponentScratch* scratch) {
  switch (discipline) {
    case AllocationDiscipline::kWfqSlQueues:
      SolveComponentNested(
          flows, net,
          [&net](const ActiveFlow& flow, LinkId l) {
            const PortConfig& port = net.port(l);
            const int q = port.sl_to_queue[static_cast<size_t>(flow.sl)];
            assert(q >= 0 && q < port.num_queues);
            return q;
          },
          [&net](const ActiveFlow& flow, LinkId l) {
            const PortConfig& port = net.port(l);
            const int q = port.sl_to_queue[static_cast<size_t>(flow.sl)];
            const double w = port.queue_weights[static_cast<size_t>(q)];
            assert(w > 0 && "queue weights must be strictly positive");
            return w;
          },
          scratch);
      break;
    case AllocationDiscipline::kPerAppQueues:
      SolveComponentNested(
          flows, net, [](const ActiveFlow& flow, LinkId) { return static_cast<int>(flow.app); },
          [&per_app_weights](const ActiveFlow& flow, LinkId l) {
            const double w = per_app_weights ? per_app_weights(l, flow.app) : 1.0;
            assert(w > 0);
            return w;
          },
          scratch);
      break;
    case AllocationDiscipline::kStrictPriority:
      SolveComponentStrict(flows, net, scratch);
      break;
  }
}

// Solves components[0..num) under the discipline. With jobs > 1 and at least
// two components the batch is fanned across the worker pool, each slot
// solving into its own arena; otherwise it runs serially on the calling
// thread with arena 0. Either way every component's float program is
// identical — the choice is pure scheduling (DESIGN.md §7.3). Components are
// handed out in ascending canonical order and each writes only its own
// flows' rates, so "merging" is the identity: rates land exactly where the
// serial loop would have put them.
void SolveComponentBatch(const std::vector<std::vector<ActiveFlow*>>& components, size_t num,
                         const Network& net, AllocationDiscipline discipline,
                         const PerAppWeightFn& per_app_weights, EngineSolveState* state,
                         AllocationEngineStats* stats) {
  const bool fan_out = state->jobs > 1 && num > 1;
  const size_t arenas_needed = fan_out ? static_cast<size_t>(state->jobs) : 1;
  while (state->arenas.size() < arenas_needed) {
    state->arenas.push_back(std::make_unique<ComponentScratch>());
  }
  if (!fan_out) {
    for (size_t i = 0; i < num; ++i) {
      SolveComponent(components[i], net, discipline, per_app_weights, state->arenas[0].get());
    }
    return;
  }
  if (state->pool == nullptr || state->pool->jobs() != state->jobs) {
    state->pool = std::make_unique<WorkerPool>(state->jobs);
  }
  state->pool->Run(num, [&](size_t i, int slot) {
    SolveComponent(components[i], net, discipline, per_app_weights,
                   state->arenas[static_cast<size_t>(slot)].get());
  });
  if (stats != nullptr) {
    ++stats->parallel_solves;
    stats->parallel_components += num;
  }
}

// Partitions id-sorted flows into link-sharing components and solves each.
// Components are numbered by first appearance in the sorted scan; flows stay
// in sorted order within their component. Returns the component count.
size_t SolvePartitioned(const std::vector<ActiveFlow*>& sorted_flows, const Network& net,
                        AllocationDiscipline discipline, const PerAppWeightFn& per_app_weights,
                        EngineSolveState* state, AllocationEngineStats* stats) {
  if (sorted_flows.empty()) {
    return 0;
  }

  LinkUnionFind& uf = state->uf;
  uf.Prepare(net.topology().num_links());
  for (const ActiveFlow* flow : sorted_flows) {
    assert(flow->path != nullptr && !flow->path->empty());
    const LinkId first = flow->path->front();
    (void)uf.Find(first);  // Registers single-link paths too.
    for (size_t i = 1; i < flow->path->size(); ++i) {
      uf.Union(first, (*flow->path)[i]);
    }
  }

  std::vector<int32_t>& group_of_root = state->group_of_root;
  if (group_of_root.size() < net.topology().num_links()) {
    group_of_root.assign(net.topology().num_links(), -1);
  }
  std::vector<LinkId>& group_roots = state->group_roots;
  std::vector<std::vector<ActiveFlow*>>& groups = state->groups;
  size_t num_groups = 0;
  for (ActiveFlow* flow : sorted_flows) {
    const LinkId root = uf.Find(flow->path->front());
    int32_t& g = group_of_root[static_cast<size_t>(root)];
    if (g < 0) {
      g = static_cast<int32_t>(num_groups++);
      group_roots.push_back(root);
      if (groups.size() < num_groups) {
        groups.emplace_back();
      }
      groups[static_cast<size_t>(g)].clear();
    }
    groups[static_cast<size_t>(g)].push_back(flow);
  }

  SolveComponentBatch(groups, num_groups, net, discipline, per_app_weights, state, stats);

  for (LinkId root : group_roots) {
    group_of_root[static_cast<size_t>(root)] = -1;
  }
  group_roots.clear();
  uf.Reset();
  return num_groups;
}

}  // namespace

void AllocateFromScratch(const std::vector<ActiveFlow*>& flows, const Network& net,
                         AllocationDiscipline discipline, const PerAppWeightFn& per_app_weights) {
  if (flows.empty()) {
    return;
  }
  // Entry-point arena only: from-scratch solves run inside SweepRunner tasks
  // on many threads at once, so the state is thread-confined here (and stays
  // serial — jobs is never raised, so no nested pool is ever created).
  static thread_local EngineSolveState state;
  state.sorted.assign(flows.begin(), flows.end());
  std::stable_sort(state.sorted.begin(), state.sorted.end(),
                   [](const ActiveFlow* a, const ActiveFlow* b) { return a->id < b->id; });
  SolvePartitioned(state.sorted, net, discipline, per_app_weights, &state, nullptr);
}

AllocationEngine::AllocationEngine(const Network* net, AllocationDiscipline discipline,
                                   PerAppWeightFn per_app_weights)
    : net_(net),
      discipline_(discipline),
      per_app_weights_(std::move(per_app_weights)),
      solve_(std::make_unique<EngineSolveState>()) {
  assert(net != nullptr);
  const size_t num_links = net->topology().num_links();
  link_flows_.resize(num_links);
  link_dirty_.assign(num_links, 0);
  link_visited_.assign(num_links, 0);
}

AllocationEngine::~AllocationEngine() = default;

void AllocationEngine::SetSolveJobs(int jobs) {
  assert(jobs >= 1 && "solve_jobs counts worker slots; 1 is the serial path");
  solve_->jobs = jobs;  // The pool is (re)created lazily on the next batch.
}

int AllocationEngine::solve_jobs() const { return solve_->jobs; }

void AllocationEngine::MarkLinkDirty(LinkId link) {
  assert(link >= 0 && static_cast<size_t>(link) < link_dirty_.size());
  if (!link_dirty_[static_cast<size_t>(link)]) {
    link_dirty_[static_cast<size_t>(link)] = 1;
    dirty_links_.push_back(link);
  }
}

void AllocationEngine::FlowAdded(ActiveFlow* flow) {
  assert(flow != nullptr && flow->path != nullptr && !flow->path->empty());
  const auto [it, inserted] = flows_.emplace(flow->id, flow);
  assert(inserted && "flow ids must be unique");
  (void)it;
  (void)inserted;
  for (LinkId l : *flow->path) {
    link_flows_[static_cast<size_t>(l)].push_back(flow);
    MarkLinkDirty(l);
  }
}

void AllocationEngine::FlowRemoved(ActiveFlow* flow) {
  assert(flow != nullptr);
  const size_t erased = flows_.erase(flow->id);
  assert(erased == 1 && "flow not registered");
  (void)erased;
  for (LinkId l : *flow->path) {
    auto& members = link_flows_[static_cast<size_t>(l)];
    const auto it = std::find(members.begin(), members.end(), flow);
    assert(it != members.end());
    *it = members.back();
    members.pop_back();
    MarkLinkDirty(l);
  }
}

void AllocationEngine::FlowQueueChanged(ActiveFlow* flow) {
  assert(flow != nullptr);
  assert(flows_.count(flow->id) == 1 && "flow not registered");
  for (LinkId l : *flow->path) {
    MarkLinkDirty(l);
  }
}

void AllocationEngine::PortConfigChanged(LinkId link) {
  MarkLinkDirty(link);
}

void AllocationEngine::InvalidateAll() { all_dirty_ = true; }

void AllocationEngine::CollectComponent(LinkId seed, std::vector<ActiveFlow*>* out) {
  bfs_queue_.clear();
  link_visited_[static_cast<size_t>(seed)] = 1;
  visited_scratch_.push_back(seed);
  bfs_queue_.push_back(seed);
  for (size_t head = 0; head < bfs_queue_.size(); ++head) {
    const LinkId l = bfs_queue_[head];
    for (ActiveFlow* flow : link_flows_[static_cast<size_t>(l)]) {
      out->push_back(flow);  // Once per incident link; deduplicated below.
      for (LinkId k : *flow->path) {
        if (!link_visited_[static_cast<size_t>(k)]) {
          link_visited_[static_cast<size_t>(k)] = 1;
          visited_scratch_.push_back(k);
          bfs_queue_.push_back(k);
        }
      }
    }
  }
  std::sort(out->begin(), out->end(),
            [](const ActiveFlow* a, const ActiveFlow* b) { return a->id < b->id; });
  out->erase(std::unique(out->begin(), out->end(),
                         [](const ActiveFlow* a, const ActiveFlow* b) { return a->id == b->id; }),
             out->end());
}

void AllocationEngine::Recompute() {
  if (!all_dirty_ && dirty_links_.empty()) {
    return;
  }
  ++stats_.recomputes;
  const size_t total = flows_.size();
  size_t rerated = 0;

  if (all_dirty_) {
    ++stats_.full_recomputes;
    all_flows_scratch_.clear();
    all_flows_scratch_.reserve(flows_.size());
    for (const auto& [id, flow] : flows_) {
      all_flows_scratch_.push_back(flow);  // std::map: already id-sorted.
    }
    stats_.components_solved += SolvePartitioned(all_flows_scratch_, *net_, discipline_,
                                                 per_app_weights_, solve_.get(), &stats_);
    rerated = all_flows_scratch_.size();
  } else {
    // Gather ALL dirty components first (the BFS stays serial and
    // deterministic), then solve the batch — serially or fanned across the
    // pool; either way bit-identical (DESIGN.md §7.3).
    std::vector<std::vector<ActiveFlow*>>& components = solve_->groups;
    size_t num_components = 0;
    for (const LinkId seed : dirty_links_) {
      if (link_visited_[static_cast<size_t>(seed)]) {
        continue;  // Already part of an earlier seed's component.
      }
      if (components.size() == num_components) {
        components.emplace_back();
      }
      std::vector<ActiveFlow*>& out = components[num_components];
      out.clear();
      CollectComponent(seed, &out);
      if (out.empty()) {
        continue;  // A dirty link nobody crosses (e.g. a removed flow's last link).
      }
      rerated += out.size();
      ++num_components;
    }
    SolveComponentBatch(components, num_components, *net_, discipline_, per_app_weights_,
                        solve_.get(), &stats_);
    stats_.components_solved += num_components;
    for (const LinkId l : visited_scratch_) {
      link_visited_[static_cast<size_t>(l)] = 0;
    }
    visited_scratch_.clear();
  }

  stats_.flows_rerated += rerated;
  stats_.flows_frozen += total - rerated;
  for (const LinkId l : dirty_links_) {
    link_dirty_[static_cast<size_t>(l)] = 0;
  }
  dirty_links_.clear();
  all_dirty_ = false;
}

}  // namespace saba
