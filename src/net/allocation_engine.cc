#include "src/net/allocation_engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

#include "src/net/waterfill.h"
#include "src/sim/worker_pool.h"

namespace saba {

// -----------------------------------------------------------------------------
// Shared allocation core. The fluid WFQ allocation is a *nested* max-min:
//   level 1: each egress port's capacity is split across its backlogged
//            queues in proportion to the configured weights (WFQ);
//   level 2: inside a queue, backlogged flows share the queue's allocation
//            max-min fairly, weighted by ActiveFlow::intra_weight.
//
// We model every (link, queue) pair that carries flows as a *virtual
// resource* with its own capacity, run weighted progressive filling over
// those resources (each flow has ONE scalar weight — its intra weight — so
// the filling is exact weighted max-min over the resources), and then
// redistribute the capacity that under-demanding queues left unused to the
// queues that were actually constrained, iterating toward the
// work-conserving fixed point. A few rounds suffice: each round either finds
// no slack or strictly grows some binding queue's capacity.
//
// All of it is fixed-point integer arithmetic (units.h): capacities and rates
// are Bps64, weights live on the WeightUnits grid, water levels are exact
// rationals, and frozen rates are 128-bit-exact floors. The result is a pure
// function of the *multiset* of flows in a component — no summation order,
// iteration order, or heap tie-break can change a single bit (DESIGN.md
// §7.1). That arithmetic exactness, not ordering discipline, is what makes
// the incremental engine bit-identical to a from-scratch run, and what makes
// component-*parallel* solving exact (DESIGN.md §7.3): a component's solve
// reads only the shared immutable Network and its own flows and scratch
// arena, so fanning components across worker slots cannot change anything.
//
// The scratch types below are file-local implementation details; they live at
// namespace (not anonymous) scope only because EngineSolveState — forward-
// declared in the header so the engine can own one — aggregates them.
// -----------------------------------------------------------------------------

// Working state for one virtual resource (a queue on a link).
struct ResourceWork {
  Bps64 capacity = 0;       // Goodput available to this queue at this link.
  Bps64 remaining = 0;      // Capacity not yet claimed by frozen flows.
  int64_t weight_units = 0; // Configured WFQ weight of the queue (WeightUnits).
  int64_t denom0 = 0;       // Sum of member flows' intra weight units.
  int64_t denom = 0;        // ... restricted to still-active flows (per fill).
  int32_t active0 = 0;      // Member flow count.
  int32_t active = 0;       // Still-active flow count (per fill).
  double efficiency = 1.0;  // Congestion-model efficiency of the queue.
  bool binding = false;     // Some flow froze *at* this resource in the fill.
};

// One lazy min-heap entry: the resource's water level remaining/denom as it
// was when pushed. Levels only rise during a fill, so a popped entry whose
// stored level no longer matches the resource is simply stale — re-push at
// the current level. Exactly one live entry exists per active resource.
struct LevelHeapEntry {
  Bps64 num = 0;      // remaining at push time (>= 0).
  int64_t den = 1;    // denom at push time (> 0).
  int32_t resource = 0;
};

// Maps LinkId -> dense slot, reusing storage across calls.
class LinkSlotMap {
 public:
  void Prepare(size_t num_links) {
    if (slots_.size() < num_links) {
      slots_.assign(num_links, -1);
    }
  }

  int SlotFor(LinkId link, bool* inserted) {
    int32_t& slot = slots_[static_cast<size_t>(link)];
    *inserted = slot < 0;
    if (slot < 0) {
      slot = next_++;
      touched_.push_back(link);
    }
    return slot;
  }

  int At(LinkId link) const { return slots_[static_cast<size_t>(link)]; }

  void Reset() {
    for (LinkId link : touched_) {
      slots_[static_cast<size_t>(link)] = -1;
    }
    touched_.clear();
    next_ = 0;
  }

 private:
  std::vector<int32_t> slots_;
  std::vector<LinkId> touched_;
  int32_t next_ = 0;
};

// Union-find over links, storage reused across calls like LinkSlotMap.
class LinkUnionFind {
 public:
  void Prepare(size_t num_links) {
    if (parent_.size() < num_links) {
      parent_.assign(num_links, kInvalidLink);
    }
  }

  LinkId Find(LinkId l) {
    if (parent_[static_cast<size_t>(l)] == kInvalidLink) {
      parent_[static_cast<size_t>(l)] = l;
      touched_.push_back(l);
    }
    LinkId root = l;
    while (parent_[static_cast<size_t>(root)] != root) {
      root = parent_[static_cast<size_t>(root)];
    }
    while (parent_[static_cast<size_t>(l)] != root) {
      const LinkId next = parent_[static_cast<size_t>(l)];
      parent_[static_cast<size_t>(l)] = root;
      l = next;
    }
    return root;
  }

  void Union(LinkId a, LinkId b) {
    const LinkId ra = Find(a);
    const LinkId rb = Find(b);
    if (ra != rb) {
      parent_[static_cast<size_t>(rb)] = ra;
    }
  }

  void Reset() {
    for (LinkId l : touched_) {
      parent_[static_cast<size_t>(l)] = kInvalidLink;
    }
    touched_.clear();
  }

 private:
  std::vector<LinkId> parent_;
  std::vector<LinkId> touched_;
};

// Per-slot solver arenas. Every piece of scratch the component solvers need
// is an explicit field here, so concurrent component solves on pool workers
// touch disjoint memory by construction (DESIGN.md §7.3) — no sharing
// assumption is left implicit in thread identity. One arena exists per worker
// slot; the serial path uses arena 0.
//
// The flow <-> resource incidence is CSR-shaped and built ONCE per component
// solve (the old per-round rebuild of per-resource member vectors dominated
// the churn benches): flow_res_offset/flow_res list each flow's resources,
// res_flow_offset/res_flow the transpose via counting sort.
struct ComponentScratch {
  // Incidence CSR + quantized per-flow weights.
  std::vector<int32_t> flow_res_offset;  // size n+1.
  std::vector<int32_t> flow_res;
  std::vector<int64_t> flow_weight;      // WeightUnits(intra_weight).
  std::vector<int32_t> res_flow_offset;  // size R+1.
  std::vector<int32_t> res_flow;
  std::vector<int32_t> res_fill;
  std::vector<ResourceWork> work;
  std::vector<std::vector<AppId>> res_apps;  // Distinct apps per resource.
  // Per link slot (SolveComponentNested).
  LinkSlotMap link_slot;
  std::vector<std::vector<std::pair<int, int>>> queue_index;
  std::vector<Bps64> link_capacity;
  std::vector<int32_t> link_crossings;  // Σ active0 over the link's resources.
  std::vector<std::vector<int32_t>> link_resources;
  // ProgressiveFillInt.
  std::vector<uint8_t> frozen;
  std::vector<LevelHeapEntry> heap;
  std::vector<int32_t> batch;
  // Single-link fast path.
  std::vector<WaterfillEntry> wf_entries;
  std::vector<Bps64> wf_rates;
  // SolveComponentStrict.
  std::vector<ActiveFlow*> by_class;
  LinkSlotMap remaining_slot;
  std::vector<Bps64> remaining;
  std::vector<ActiveFlow*> cls;
};

// Everything one solve needs besides the flows: per-slot arenas, the
// partition scratch, and the (lazily created) worker pool. The engine owns
// one; AllocateFromScratch keeps one per calling thread (it runs inside
// SweepRunner tasks, where thread confinement is the isolation).
struct EngineSolveState {
  int jobs = 1;                       // Solve-time worker slots (>= 1).
  std::unique_ptr<WorkerPool> pool;   // Created on the first parallel batch.
  std::vector<std::unique_ptr<ComponentScratch>> arenas;  // arenas[slot].

  // SolvePartitioned / Recompute component-batch scratch.
  LinkUnionFind uf;
  std::vector<int32_t> group_of_root;  // Per link, -1 = none.
  std::vector<LinkId> group_roots;
  std::vector<std::vector<ActiveFlow*>> groups;
};

namespace {

using Int128 = __int128;

// Exact rational level comparisons by cross-multiplication. Numerators are
// capacities (< 2^63) and denominators weight sums (< 2^62), so the products
// stay inside signed 128 bits.
inline bool LevelEq(Bps64 na, int64_t da, Bps64 nb, int64_t db) {
  return static_cast<Int128>(na) * db == static_cast<Int128>(nb) * da;
}

struct LevelGreater {
  bool operator()(const LevelHeapEntry& a, const LevelHeapEntry& b) const {
    return static_cast<Int128>(a.num) * b.den > static_cast<Int128>(b.num) * a.den;
  }
};

// Weighted progressive filling over virtual resources, in exact integer
// arithmetic. Each flow has a scalar weight (its quantized intra weight) and
// a CSR list of resources (one per path link); all rates grow in proportion
// to the weights until a resource saturates, whose flows then freeze at
// floor(weight * level) — classic weighted max-min.
//
// Order independence is arithmetic, not disciplinary: the minimum water level
// is a unique rational, the *batch* of resources sitting at that level is
// gathered in full before anything freezes, every frozen rate is an exact
// floor of the same rational snapshot, and all state updates are commutative
// integer sums. The execution is therefore a deterministic sequence of
// (level, batch, frozen set) values no enumeration order can perturb.
//
// Caller contract: the incidence CSR, flow_weight, and work[0..num_resources)
// are built, with remaining=capacity, denom=denom0>0, active=active0>0 and
// binding=false. Writes flows[f]->rate for every flow.
void ProgressiveFillInt(const std::vector<ActiveFlow*>& flows, size_t num_resources,
                        ComponentScratch* s) {
  const size_t n = flows.size();
  s->frozen.assign(n, 0);

  std::vector<LevelHeapEntry>& heap = s->heap;
  heap.clear();
  for (size_t r = 0; r < num_resources; ++r) {
    const ResourceWork& w = s->work[r];
    assert(w.active > 0 && w.denom > 0 && w.remaining >= 0);
    heap.push_back({w.remaining, w.denom, static_cast<int32_t>(r)});
  }
  std::make_heap(heap.begin(), heap.end(), LevelGreater{});

  std::vector<int32_t>& batch = s->batch;
  size_t frozen_count = 0;
  while (frozen_count < n) {
    assert(!heap.empty() && "unfrozen flows imply a live resource entry");
    std::pop_heap(heap.begin(), heap.end(), LevelGreater{});
    const LevelHeapEntry top = heap.back();
    heap.pop_back();
    ResourceWork& w0 = s->work[static_cast<size_t>(top.resource)];
    if (w0.active == 0) {
      continue;  // Drained by earlier freezes; the entry is dead.
    }
    if (!LevelEq(w0.remaining, w0.denom, top.num, top.den)) {
      // Stale: the level rose since the push. Re-push at the current level.
      heap.push_back({w0.remaining, w0.denom, top.resource});
      std::push_heap(heap.begin(), heap.end(), LevelGreater{});
      continue;
    }
    // top is fresh, so its level is the global minimum (stored levels never
    // exceed current ones). Gather EVERY resource sitting at exactly this
    // level before freezing anything: all their entries are at the heap
    // front, and the full batch is what makes the freeze set — and therefore
    // the whole fill — independent of heap tie-break order.
    const Bps64 p = w0.remaining;
    const int64_t q = w0.denom;
    batch.clear();
    batch.push_back(top.resource);
    while (!heap.empty() && LevelEq(heap.front().num, heap.front().den, p, q)) {
      std::pop_heap(heap.begin(), heap.end(), LevelGreater{});
      const LevelHeapEntry e = heap.back();
      heap.pop_back();
      ResourceWork& we = s->work[static_cast<size_t>(e.resource)];
      if (we.active == 0) {
        continue;
      }
      if (LevelEq(we.remaining, we.denom, p, q)) {
        batch.push_back(e.resource);
      } else {
        heap.push_back({we.remaining, we.denom, e.resource});
        std::push_heap(heap.begin(), heap.end(), LevelGreater{});
      }
    }
    for (const int32_t rb : batch) {
      ResourceWork& wr = s->work[static_cast<size_t>(rb)];
      wr.binding = true;
      for (int32_t k = s->res_flow_offset[static_cast<size_t>(rb)],
                   end = s->res_flow_offset[static_cast<size_t>(rb) + 1];
           k < end; ++k) {
        const size_t f = static_cast<size_t>(s->res_flow[static_cast<size_t>(k)]);
        if (s->frozen[f]) {
          continue;
        }
        s->frozen[f] = 1;
        ++frozen_count;
        const int64_t wf = s->flow_weight[f];
        // Exact floor of the weighted share at the batch level. Any equal
        // rational representation of the level gives the same floor, so it
        // does not matter which batch resource supplied (p, q).
        const Bps64 rate = p > 0 ? static_cast<Bps64>(static_cast<Int128>(wf) * p / q) : 0;
        flows[f]->rate = rate;
        for (int32_t j = s->flow_res_offset[f], jend = s->flow_res_offset[f + 1]; j < jend; ++j) {
          ResourceWork& wx = s->work[static_cast<size_t>(s->flow_res[static_cast<size_t>(j)])];
          wx.remaining -= rate;
          wx.denom -= wf;
          wx.active -= 1;
          // Frozen shares never exceed a resource's proportional claim, so
          // remaining stays >= 0 and levels are monotone non-decreasing —
          // the invariant the lazy heap relies on.
          assert(wx.remaining >= 0);
        }
      }
      assert(wr.active == 0 && "a binding resource freezes all its flows");
    }
  }
  (void)frozen_count;
}

// Builds the resource -> flows CSR (transpose of flow_res) by counting sort,
// and resets the per-fill resource state. Shared by the nested and strict
// solvers once their flow -> resource CSR is in place.
void FinishIncidence(size_t n, size_t num_resources, ComponentScratch* s) {
  if (s->res_flow_offset.size() < num_resources + 1) {
    s->res_flow_offset.resize(num_resources + 1);
  }
  if (s->res_fill.size() < num_resources) {
    s->res_fill.resize(num_resources);
  }
  s->res_flow_offset[0] = 0;
  for (size_t r = 0; r < num_resources; ++r) {
    s->res_flow_offset[r + 1] = s->res_flow_offset[r] + s->work[r].active0;
    s->res_fill[r] = s->res_flow_offset[r];
  }
  if (s->res_flow.size() < s->flow_res.size()) {
    s->res_flow.resize(s->flow_res.size());
  }
  for (size_t f = 0; f < n; ++f) {
    for (int32_t j = s->flow_res_offset[f], jend = s->flow_res_offset[f + 1]; j < jend; ++j) {
      const size_t r = static_cast<size_t>(s->flow_res[static_cast<size_t>(j)]);
      s->res_flow[static_cast<size_t>(s->res_fill[r]++)] = static_cast<int32_t>(f);
    }
  }
}

// Floor dust threshold for redistribution at a link: integer freezes shed
// strictly less than one bit/s per (flow, resource) crossing, and every
// RoundBps crossing at most half a bit, so residuals below this are rounding
// noise, not reclaimable capacity. Value-based (capacity and crossing count),
// hence order-independent.
inline Bps64 FloorDust(Bps64 link_capacity, int32_t crossings) {
  return std::max<Bps64>(link_capacity / 1000000000, 2 * static_cast<Bps64>(crossings) + 2);
}

// Runs the redistribution rounds over the prepared component; leaves final
// rates in the flows.
void SolveNestedWfqInt(const std::vector<ActiveFlow*>& flows, size_t num_resources,
                       size_t num_link_slots, ComponentScratch* s) {
  // Initial capacities: WFQ shares among the queues present at each link,
  // each degraded by its own protocol efficiency. The share ratio and
  // efficiency are the only double factors in the solver; both are exact
  // functions of integer weight sums and app counts, and the product is
  // rounded once through RoundBps.
  for (size_t ls = 0; ls < num_link_slots; ++ls) {
    int64_t weight_sum = 0;
    for (const int32_t r : s->link_resources[ls]) {
      weight_sum += s->work[static_cast<size_t>(r)].weight_units;
    }
    assert(weight_sum > 0);
    for (const int32_t r : s->link_resources[ls]) {
      ResourceWork& w = s->work[static_cast<size_t>(r)];
      w.capacity = RoundBps(
          BpsToDouble(s->link_capacity[ls]) *
          (static_cast<double>(w.weight_units) / static_cast<double>(weight_sum)) * w.efficiency);
    }
  }

  constexpr int kMaxRounds = 4;
  for (int round = 0; round < kMaxRounds; ++round) {
    for (size_t r = 0; r < num_resources; ++r) {
      ResourceWork& w = s->work[r];
      w.remaining = w.capacity;
      w.denom = w.denom0;
      w.active = w.active0;
      w.binding = false;
    }
    ProgressiveFillInt(flows, num_resources, s);
    if (round + 1 == kMaxRounds) {
      break;  // This fill stands.
    }

    // Work conservation: re-home each link's unused capacity to the queues
    // that were actually constrained there ("binding"), in weight proportion.
    // Slack re-enters scaled by the receiving queue's own efficiency — WRR
    // can only hand out what the (imperfect) protocol can carry. Every
    // aggregate here is a commutative integer sum of per-resource values.
    bool changed = false;
    for (size_t ls = 0; ls < num_link_slots; ++ls) {
      Bps64 wire_used = 0;
      int64_t hungry_weight = 0;
      for (const int32_t r : s->link_resources[ls]) {
        const ResourceWork& w = s->work[static_cast<size_t>(r)];
        const Bps64 goodput = w.capacity - w.remaining;
        wire_used += w.efficiency > 0 ? RoundBps(BpsToDouble(goodput) / w.efficiency) : goodput;
        if (w.binding) {
          hungry_weight += w.weight_units;
        }
      }
      const Bps64 dust = FloorDust(s->link_capacity[ls], s->link_crossings[ls]);
      const Bps64 slack = s->link_capacity[ls] - wire_used;
      if (slack <= dust || hungry_weight == 0) {
        continue;
      }
      for (const int32_t r : s->link_resources[ls]) {
        ResourceWork& w = s->work[static_cast<size_t>(r)];
        const Bps64 goodput = w.capacity - w.remaining;
        if (w.binding) {
          const Bps64 grant = RoundBps(
              BpsToDouble(slack) *
              (static_cast<double>(w.weight_units) / static_cast<double>(hungry_weight)) *
              w.efficiency);
          if (grant > dust) {
            changed = true;
          }
          w.capacity = goodput + grant;
        } else {
          // Keep only what it used; its surplus is being re-homed.
          w.capacity = goodput;
        }
      }
    }
    if (!changed) {
      break;
    }
  }
}

// Nested WFQ over one component: `queue_key(flow, link)` identifies the
// flow's queue at a port, `queue_weight(flow, link)` its weight. Flows may
// arrive in ANY order — the solve is a function of the flow multiset.
template <typename QueueKeyFn, typename QueueWeightFn>
void SolveComponentNested(const std::vector<ActiveFlow*>& flows, const Network& net,
                          QueueKeyFn queue_key, QueueWeightFn queue_weight,
                          ComponentScratch* s) {
  if (flows.empty()) {
    return;
  }
  const size_t n = flows.size();

  if (n == 1) {
    // Single-flow component: the flow owns every queue it crosses (weight
    // ratios are exactly 1.0), so its rate is the minimum over path links of
    // the efficiency-degraded link capacity. Bit-identical to the general
    // path, which would compute the same RoundBps per link and freeze at the
    // floor of share/weight = capacity.
    ActiveFlow* flow = flows[0];
    assert(flow->path != nullptr && !flow->path->empty());
    assert(flow->remaining_bits > 0);
    assert(flow->intra_weight > 0);
    const double eff = net.congestion().QueueEfficiency(1);
    Bps64 rate = kBps64Max;
    for (const LinkId l : *flow->path) {
      rate = std::min(rate, RoundBps(BpsToDouble(net.topology().link(l).capacity_bps) * eff));
    }
    flow->rate = rate;
    return;
  }

  // --- Build the component's resource graph (once; reused across rounds). ---
  LinkSlotMap& link_slot = s->link_slot;
  link_slot.Prepare(net.topology().num_links());
  if (s->flow_res_offset.size() < n + 1) {
    s->flow_res_offset.resize(n + 1);
  }
  if (s->flow_weight.size() < n) {
    s->flow_weight.resize(n);
  }
  s->flow_res.clear();

  size_t num_resources = 0;
  size_t num_link_slots = 0;
  for (size_t f = 0; f < n; ++f) {
    const ActiveFlow* flow = flows[f];
    assert(flow->path != nullptr && !flow->path->empty());
    assert(flow->remaining_bits > 0);
    assert(flow->intra_weight > 0);
    s->flow_weight[f] = WeightUnits(flow->intra_weight);
    s->flow_res_offset[f] = static_cast<int32_t>(s->flow_res.size());
    for (const LinkId l : *flow->path) {
      bool inserted = false;
      const size_t ls = static_cast<size_t>(link_slot.SlotFor(l, &inserted));
      if (inserted) {
        if (s->queue_index.size() <= ls) {
          s->queue_index.resize(ls + 1);
          s->link_resources.resize(ls + 1);
          s->link_capacity.resize(ls + 1);
          s->link_crossings.resize(ls + 1);
        }
        s->queue_index[ls].clear();
        s->link_resources[ls].clear();
        s->link_capacity[ls] = net.topology().link(l).capacity_bps;
        s->link_crossings[ls] = 0;
        ++num_link_slots;
      }
      const int key = queue_key(*flow, l);
      auto& index = s->queue_index[ls];
      const auto it = std::find_if(index.begin(), index.end(),
                                   [key](const auto& entry) { return entry.first == key; });
      int resource;
      if (it == index.end()) {
        resource = static_cast<int>(num_resources++);
        if (s->work.size() < num_resources) {
          s->work.resize(num_resources);
          s->res_apps.resize(num_resources);
        }
        ResourceWork& w = s->work[static_cast<size_t>(resource)];
        // Any member flow yields the same queue weight (the key pins the
        // queue), so it is fine that the first-seen flow supplies it.
        w.weight_units = WeightUnits(queue_weight(*flow, l));
        w.denom0 = 0;
        w.active0 = 0;
        s->res_apps[static_cast<size_t>(resource)].clear();
        index.emplace_back(key, resource);
        s->link_resources[ls].push_back(resource);
      } else {
        resource = it->second;
      }
      auto& apps = s->res_apps[static_cast<size_t>(resource)];
      if (std::find(apps.begin(), apps.end(), flow->app) == apps.end()) {
        apps.push_back(flow->app);
      }
      ResourceWork& w = s->work[static_cast<size_t>(resource)];
      w.denom0 += s->flow_weight[f];
      w.active0 += 1;
      s->link_crossings[ls] += 1;
      s->flow_res.push_back(static_cast<int32_t>(resource));
    }
  }
  s->flow_res_offset[n] = static_cast<int32_t>(s->flow_res.size());
  link_slot.Reset();

  for (size_t r = 0; r < num_resources; ++r) {
    s->work[r].efficiency = net.congestion().QueueEfficiency(s->res_apps[r].size());
  }
  FinishIncidence(n, num_resources, s);

  if (num_link_slots == 1) {
    // Single-link component: each queue's WFQ share is final (no other link
    // can bind first, and every queue is fully used by its elastic flows, so
    // redistribution could only move floor dust). Each queue then degenerates
    // to a single-resource water-fill with elastic demands — the closed form
    // SolveWaterfill computes directly, identical to what the progressive
    // fill would freeze.
    int64_t weight_sum = 0;
    for (const int32_t r : s->link_resources[0]) {
      weight_sum += s->work[static_cast<size_t>(r)].weight_units;
    }
    assert(weight_sum > 0);
    for (const int32_t r : s->link_resources[0]) {
      const ResourceWork& w = s->work[static_cast<size_t>(r)];
      const Bps64 cap = RoundBps(
          BpsToDouble(s->link_capacity[0]) *
          (static_cast<double>(w.weight_units) / static_cast<double>(weight_sum)) * w.efficiency);
      const int32_t begin = s->res_flow_offset[static_cast<size_t>(r)];
      const int32_t end = s->res_flow_offset[static_cast<size_t>(r) + 1];
      s->wf_entries.clear();
      for (int32_t k = begin; k < end; ++k) {
        const size_t f = static_cast<size_t>(s->res_flow[static_cast<size_t>(k)]);
        s->wf_entries.push_back({s->flow_weight[f], kElasticDemand});
      }
      SolveWaterfill(cap, s->wf_entries, &s->wf_rates);
      for (int32_t k = begin; k < end; ++k) {
        const size_t f = static_cast<size_t>(s->res_flow[static_cast<size_t>(k)]);
        flows[f]->rate = s->wf_rates[static_cast<size_t>(k - begin)];
      }
    }
    return;
  }

  SolveNestedWfqInt(flows, num_resources, num_link_slots, s);
}

// Strict priority over one component: classes served best (lowest value)
// first, each getting a max-min allocation of what higher classes left. All
// scratch lives in the per-slot arena — this solver runs once per component
// per event, so per-call heap allocation would dominate at churn rates.
void SolveComponentStrict(const std::vector<ActiveFlow*>& flows, const Network& net,
                          ComponentScratch* s) {
  if (flows.empty()) {
    return;
  }

  // Group by priority class. A plain sort suffices: order *within* a class
  // cannot matter, the integer fill being a function of the flow multiset.
  std::vector<ActiveFlow*>& by_class = s->by_class;
  by_class.assign(flows.begin(), flows.end());
  std::sort(by_class.begin(), by_class.end(),
            [](const ActiveFlow* a, const ActiveFlow* b) { return a->priority < b->priority; });

  // Remaining capacity persists across classes; lower classes only see what
  // higher classes left behind.
  LinkSlotMap& remaining_slot = s->remaining_slot;
  remaining_slot.Prepare(net.topology().num_links());
  std::vector<Bps64>& remaining = s->remaining;
  remaining.clear();
  for (const ActiveFlow* flow : by_class) {
    assert(flow->path != nullptr && !flow->path->empty());
    for (const LinkId l : *flow->path) {
      bool inserted = false;
      (void)remaining_slot.SlotFor(l, &inserted);
      if (inserted) {
        remaining.push_back(net.topology().link(l).capacity_bps);
      }
    }
  }

  std::vector<ActiveFlow*>& cls = s->cls;
  LinkSlotMap& link_slot = s->link_slot;

  size_t i = 0;
  while (i < by_class.size()) {
    const int prio = by_class[i]->priority;
    cls.clear();
    while (i < by_class.size() && by_class[i]->priority == prio) {
      cls.push_back(by_class[i]);
      ++i;
    }
    const size_t m = cls.size();

    if (m == 1) {
      // One flow in the class (the common case under pFabric-style per-flow
      // priorities): its max-min rate is the bottleneck remaining capacity.
      // Identical to the general fill, which freezes at floor(W*rem/W).
      ActiveFlow* flow = cls[0];
      assert(flow->remaining_bits > 0);
      assert(flow->intra_weight > 0);
      Bps64 rate = kBps64Max;
      for (const LinkId l : *flow->path) {
        rate = std::min(rate, remaining[static_cast<size_t>(remaining_slot.At(l))]);
      }
      flow->rate = rate;
    } else {
      // Weighted max-min within the class on the remaining capacity: one
      // resource per link (a priority class behaves like a single queue).
      link_slot.Prepare(net.topology().num_links());
      if (s->flow_res_offset.size() < m + 1) {
        s->flow_res_offset.resize(m + 1);
      }
      if (s->flow_weight.size() < m) {
        s->flow_weight.resize(m);
      }
      s->flow_res.clear();
      size_t used_links = 0;
      for (size_t f = 0; f < m; ++f) {
        const ActiveFlow* flow = cls[f];
        assert(flow->remaining_bits > 0);
        assert(flow->intra_weight > 0);
        s->flow_weight[f] = WeightUnits(flow->intra_weight);
        s->flow_res_offset[f] = static_cast<int32_t>(s->flow_res.size());
        for (const LinkId l : *flow->path) {
          bool inserted = false;
          const int slot = link_slot.SlotFor(l, &inserted);
          if (inserted) {
            if (s->work.size() <= used_links) {
              s->work.resize(used_links + 1);
            }
            ResourceWork& w = s->work[used_links];
            w.capacity = remaining[static_cast<size_t>(remaining_slot.At(l))];
            w.denom0 = 0;
            w.active0 = 0;
            ++used_links;
          }
          ResourceWork& w = s->work[static_cast<size_t>(slot)];
          w.denom0 += s->flow_weight[f];
          w.active0 += 1;
          s->flow_res.push_back(slot);
        }
      }
      s->flow_res_offset[m] = static_cast<int32_t>(s->flow_res.size());
      link_slot.Reset();
      FinishIncidence(m, used_links, s);
      for (size_t r = 0; r < used_links; ++r) {
        ResourceWork& w = s->work[r];
        w.remaining = w.capacity;
        w.denom = w.denom0;
        w.active = w.active0;
        w.binding = false;
      }
      ProgressiveFillInt(cls, used_links, s);
    }

    // Integer conservation guarantees the class fits; the clamp only guards
    // the (unreachable) pathological case.
    for (const ActiveFlow* flow : cls) {
      for (const LinkId l : *flow->path) {
        Bps64& rem = remaining[static_cast<size_t>(remaining_slot.At(l))];
        rem = std::max<Bps64>(0, rem - flow->rate);
      }
    }
  }
  remaining_slot.Reset();
}

// Solves one component under the discipline. Reads only the (immutable
// during a solve) Network, the component's flows and the given arena — the
// isolation the parallel batch below relies on. Flow order is irrelevant.
void SolveComponent(const std::vector<ActiveFlow*>& flows, const Network& net,
                    AllocationDiscipline discipline, const PerAppWeightFn& per_app_weights,
                    ComponentScratch* scratch) {
  switch (discipline) {
    case AllocationDiscipline::kWfqSlQueues:
      SolveComponentNested(
          flows, net,
          [&net](const ActiveFlow& flow, LinkId l) {
            const PortConfig& port = net.port(l);
            const int q = port.sl_to_queue[static_cast<size_t>(flow.sl)];
            assert(q >= 0 && q < port.num_queues);
            return q;
          },
          [&net](const ActiveFlow& flow, LinkId l) {
            const PortConfig& port = net.port(l);
            const int q = port.sl_to_queue[static_cast<size_t>(flow.sl)];
            const double w = port.queue_weights[static_cast<size_t>(q)];
            assert(w > 0 && "queue weights must be strictly positive");
            return w;
          },
          scratch);
      break;
    case AllocationDiscipline::kPerAppQueues:
      SolveComponentNested(
          flows, net, [](const ActiveFlow& flow, LinkId) { return static_cast<int>(flow.app); },
          [&per_app_weights](const ActiveFlow& flow, LinkId l) {
            const double w = per_app_weights ? per_app_weights(l, flow.app) : 1.0;
            assert(w > 0);
            return w;
          },
          scratch);
      break;
    case AllocationDiscipline::kStrictPriority:
      SolveComponentStrict(flows, net, scratch);
      break;
  }
}

// Solves components[0..num) under the discipline. With jobs > 1, at least
// two components, and enough total flows to amortize the dispatch
// (kMinParallelBatchFlows) the batch is fanned across the worker pool, each
// slot solving into its own arena; otherwise it runs serially on the calling
// thread with arena 0. Either way every component's arithmetic is identical —
// the choice is pure scheduling (DESIGN.md §7.3). Each component writes only
// its own flows' rates, so "merging" is the identity.
void SolveComponentBatch(const std::vector<std::vector<ActiveFlow*>>& components, size_t num,
                         const Network& net, AllocationDiscipline discipline,
                         const PerAppWeightFn& per_app_weights, EngineSolveState* state,
                         AllocationEngineStats* stats) {
  size_t batch_flows = 0;
  for (size_t i = 0; i < num; ++i) {
    batch_flows += components[i].size();
  }
  const bool fan_out = state->jobs > 1 && num > 1 &&
                       batch_flows >= AllocationEngine::kMinParallelBatchFlows;
  const size_t arenas_needed = fan_out ? static_cast<size_t>(state->jobs) : 1;
  while (state->arenas.size() < arenas_needed) {
    state->arenas.push_back(std::make_unique<ComponentScratch>());
  }
  if (!fan_out) {
    for (size_t i = 0; i < num; ++i) {
      SolveComponent(components[i], net, discipline, per_app_weights, state->arenas[0].get());
    }
    return;
  }
  if (state->pool == nullptr || state->pool->jobs() != state->jobs) {
    state->pool = std::make_unique<WorkerPool>(state->jobs);
  }
  // saba-lint: pool-capture-ok(task i reads only components[i] and writes only the rates of
  // that component's flows — components partition the flow set, so writes never alias across
  // tasks; scratch lives in the slot-confined arena, §7.3)
  state->pool->Run(num, [&](size_t i, int slot) {
    SolveComponent(components[i], net, discipline, per_app_weights,
                   state->arenas[static_cast<size_t>(slot)].get());
  });
  if (stats != nullptr) {
    ++stats->parallel_solves;
    stats->parallel_components += num;
  }
}

// Partitions flows into link-sharing components and solves each. Components
// are numbered by first appearance in the scan; the numbering (like the flow
// order inside each group) affects nothing but scheduling. Returns the
// component count.
size_t SolvePartitioned(const std::vector<ActiveFlow*>& flows, const Network& net,
                        AllocationDiscipline discipline, const PerAppWeightFn& per_app_weights,
                        EngineSolveState* state, AllocationEngineStats* stats) {
  if (flows.empty()) {
    return 0;
  }

  LinkUnionFind& uf = state->uf;
  uf.Prepare(net.topology().num_links());
  for (const ActiveFlow* flow : flows) {
    assert(flow->path != nullptr && !flow->path->empty());
    const LinkId first = flow->path->front();
    (void)uf.Find(first);  // Registers single-link paths too.
    for (size_t i = 1; i < flow->path->size(); ++i) {
      uf.Union(first, (*flow->path)[i]);
    }
  }

  std::vector<int32_t>& group_of_root = state->group_of_root;
  if (group_of_root.size() < net.topology().num_links()) {
    group_of_root.assign(net.topology().num_links(), -1);
  }
  std::vector<LinkId>& group_roots = state->group_roots;
  std::vector<std::vector<ActiveFlow*>>& groups = state->groups;
  size_t num_groups = 0;
  for (ActiveFlow* flow : flows) {
    const LinkId root = uf.Find(flow->path->front());
    int32_t& g = group_of_root[static_cast<size_t>(root)];
    if (g < 0) {
      g = static_cast<int32_t>(num_groups++);
      group_roots.push_back(root);
      if (groups.size() < num_groups) {
        groups.emplace_back();
      }
      groups[static_cast<size_t>(g)].clear();
    }
    groups[static_cast<size_t>(g)].push_back(flow);
  }

  SolveComponentBatch(groups, num_groups, net, discipline, per_app_weights, state, stats);

  for (const LinkId root : group_roots) {
    group_of_root[static_cast<size_t>(root)] = -1;
  }
  group_roots.clear();
  uf.Reset();
  return num_groups;
}

}  // namespace

void AllocateFromScratch(const std::vector<ActiveFlow*>& flows, const Network& net,
                         AllocationDiscipline discipline, const PerAppWeightFn& per_app_weights) {
  if (flows.empty()) {
    return;
  }
  // Entry-point arena only: from-scratch solves run inside SweepRunner tasks
  // on many threads at once, so the state is thread-confined here (and stays
  // serial — jobs is never raised, so no nested pool is ever created). No
  // canonical sort: the integer solve is order-independent by arithmetic.
  // saba-lint: shared-state-ok(thread_local: each thread owns a private solve state, nothing
  // is shared across workers, and the solve it feeds is order-independent integer math)
  static thread_local EngineSolveState state;
  SolvePartitioned(flows, net, discipline, per_app_weights, &state, nullptr);
}

AllocationEngine::AllocationEngine(const Network* net, AllocationDiscipline discipline,
                                   PerAppWeightFn per_app_weights)
    : net_(net),
      discipline_(discipline),
      per_app_weights_(std::move(per_app_weights)),
      solve_(std::make_unique<EngineSolveState>()) {
  assert(net != nullptr);
  const size_t num_links = net->topology().num_links();
  link_flows_.resize(num_links);
  link_dirty_.assign(num_links, 0);
  link_visited_.assign(num_links, 0);
}

AllocationEngine::~AllocationEngine() = default;

void AllocationEngine::SetSolveJobs(int jobs) {
  assert(jobs >= 1 && "solve_jobs counts worker slots; 1 is the serial path");
  solve_->jobs = jobs;  // The pool is (re)created lazily on the next batch.
}

int AllocationEngine::solve_jobs() const { return solve_->jobs; }

void AllocationEngine::MarkLinkDirty(LinkId link) {
  assert(link >= 0 && static_cast<size_t>(link) < link_dirty_.size());
  if (!link_dirty_[static_cast<size_t>(link)]) {
    link_dirty_[static_cast<size_t>(link)] = 1;
    dirty_links_.push_back(link);
  }
}

void AllocationEngine::FlowAdded(ActiveFlow* flow) {
  assert(flow != nullptr && flow->path != nullptr && !flow->path->empty());
  const auto [it, inserted] = flows_.emplace(flow->id, flow);
  assert(inserted && "flow ids must be unique");
  (void)it;
  (void)inserted;
  for (LinkId l : *flow->path) {
    assert(net_->topology().LinkUsable(l) && "flow path crosses a failed link; reroute first");
    link_flows_[static_cast<size_t>(l)].push_back(flow);
    MarkLinkDirty(l);
  }
}

void AllocationEngine::FlowRemoved(ActiveFlow* flow) {
  assert(flow != nullptr);
  const size_t erased = flows_.erase(flow->id);
  assert(erased == 1 && "flow not registered");
  (void)erased;
  for (LinkId l : *flow->path) {
    auto& members = link_flows_[static_cast<size_t>(l)];
    const auto it = std::find(members.begin(), members.end(), flow);
    assert(it != members.end());
    *it = members.back();
    members.pop_back();
    MarkLinkDirty(l);
  }
}

void AllocationEngine::FlowQueueChanged(ActiveFlow* flow) {
  assert(flow != nullptr);
  assert(flows_.count(flow->id) == 1 && "flow not registered");
  for (LinkId l : *flow->path) {
    MarkLinkDirty(l);
  }
}

void AllocationEngine::PortConfigChanged(LinkId link) {
  MarkLinkDirty(link);
}

void AllocationEngine::InvalidateAll() { all_dirty_ = true; }

void AllocationEngine::CollectComponent(LinkId seed, std::vector<ActiveFlow*>* out) {
  bfs_queue_.clear();
  link_visited_[static_cast<size_t>(seed)] = 1;
  visited_scratch_.push_back(seed);
  bfs_queue_.push_back(seed);
  for (size_t head = 0; head < bfs_queue_.size(); ++head) {
    const LinkId l = bfs_queue_[head];
    for (ActiveFlow* flow : link_flows_[static_cast<size_t>(l)]) {
      // Every link of the flow's path joins the component, so the flow is
      // collected exactly once: when the BFS processes its first path link.
      // (Paths never repeat a link — FlowRemoved's single-erase relies on
      // the same property.)
      if (flow->path->front() == l) {
        out->push_back(flow);
      }
      for (LinkId k : *flow->path) {
        if (!link_visited_[static_cast<size_t>(k)]) {
          link_visited_[static_cast<size_t>(k)] = 1;
          visited_scratch_.push_back(k);
          bfs_queue_.push_back(k);
        }
      }
    }
  }
}

void AllocationEngine::Recompute() {
  if (!all_dirty_ && dirty_links_.empty()) {
    return;
  }
  ++stats_.recomputes;
  const size_t total = flows_.size();
  size_t rerated = 0;

  if (all_dirty_) {
    ++stats_.full_recomputes;
    all_flows_scratch_.clear();
    all_flows_scratch_.reserve(flows_.size());
    for (const auto& [id, flow] : flows_) {
      all_flows_scratch_.push_back(flow);
    }
    stats_.components_solved += SolvePartitioned(all_flows_scratch_, *net_, discipline_,
                                                 per_app_weights_, solve_.get(), &stats_);
    rerated = all_flows_scratch_.size();
  } else {
    // Gather ALL dirty components first (the BFS stays serial and
    // deterministic), then solve the batch — serially or fanned across the
    // pool; either way bit-identical (DESIGN.md §7.3).
    std::vector<std::vector<ActiveFlow*>>& components = solve_->groups;
    size_t num_components = 0;
    for (const LinkId seed : dirty_links_) {
      if (link_visited_[static_cast<size_t>(seed)]) {
        continue;  // Already part of an earlier seed's component.
      }
      if (components.size() == num_components) {
        components.emplace_back();
      }
      std::vector<ActiveFlow*>& out = components[num_components];
      out.clear();
      CollectComponent(seed, &out);
      if (out.empty()) {
        continue;  // A dirty link nobody crosses (e.g. a removed flow's last link).
      }
      rerated += out.size();
      ++num_components;
    }
    SolveComponentBatch(components, num_components, *net_, discipline_, per_app_weights_,
                        solve_.get(), &stats_);
    stats_.components_solved += num_components;
    for (const LinkId l : visited_scratch_) {
      link_visited_[static_cast<size_t>(l)] = 0;
    }
    visited_scratch_.clear();
  }

  stats_.flows_rerated += rerated;
  stats_.flows_frozen += total - rerated;
  for (const LinkId l : dirty_links_) {
    link_dirty_[static_cast<size_t>(l)] = 0;
  }
  dirty_links_.clear();
  all_dirty_ = false;
}

}  // namespace saba
