#include "src/net/topology.h"

#include <cassert>
#include <utility>

namespace saba {

NodeId Topology::AddNode(NodeKind kind, std::string label) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back({kind, std::move(label)});
  out_links_.emplace_back();
  return id;
}

LinkId Topology::AddLink(NodeId src, NodeId dst, Bps64 capacity_bps) {
  assert(src >= 0 && static_cast<size_t>(src) < nodes_.size());
  assert(dst >= 0 && static_cast<size_t>(dst) < nodes_.size());
  assert(src != dst);
  assert(capacity_bps > 0);
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back({src, dst, capacity_bps});
  out_links_[static_cast<size_t>(src)].push_back(id);
  return id;
}

LinkId Topology::AddDuplexLink(NodeId a, NodeId b, Bps64 capacity_bps) {
  const LinkId forward = AddLink(a, b, capacity_bps);
  AddLink(b, a, capacity_bps);
  return forward;
}

void Topology::SetLinkCapacity(LinkId id, Bps64 capacity_bps) {
  assert(id >= 0 && static_cast<size_t>(id) < links_.size());
  assert(capacity_bps > 0);
  links_[static_cast<size_t>(id)].capacity_bps = capacity_bps;
}

void Topology::SetLinkUp(LinkId id, bool up) {
  assert(id >= 0 && static_cast<size_t>(id) < links_.size());
  Link& l = links_[static_cast<size_t>(id)];
  if (l.up != up) {
    l.up = up;
    ++epoch_;
  }
}

void Topology::SetNodeUp(NodeId id, bool up) {
  assert(id >= 0 && static_cast<size_t>(id) < nodes_.size());
  Node& n = nodes_[static_cast<size_t>(id)];
  if (n.up != up) {
    n.up = up;
    ++epoch_;
  }
}

LinkId Topology::FindLink(NodeId src, NodeId dst) const {
  for (LinkId id : out_links_[static_cast<size_t>(src)]) {
    if (links_[static_cast<size_t>(id)].dst == dst) {
      return id;
    }
  }
  return kInvalidLink;
}

std::vector<NodeId> Topology::Hosts() const {
  std::vector<NodeId> hosts;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == NodeKind::kHost) {
      hosts.push_back(static_cast<NodeId>(i));
    }
  }
  return hosts;
}

std::vector<NodeId> Topology::Switches() const {
  std::vector<NodeId> switches;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (IsSwitch(nodes_[i].kind)) {
      switches.push_back(static_cast<NodeId>(i));
    }
  }
  return switches;
}

Topology BuildSingleSwitchStar(int num_hosts, Bps64 link_capacity_bps) {
  assert(num_hosts >= 2);
  Topology topo;
  std::vector<NodeId> hosts;
  hosts.reserve(static_cast<size_t>(num_hosts));
  for (int h = 0; h < num_hosts; ++h) {
    hosts.push_back(topo.AddNode(NodeKind::kHost, "host" + std::to_string(h)));
  }
  const NodeId sw = topo.AddNode(NodeKind::kSwitch, "switch");
  for (NodeId h : hosts) {
    topo.AddDuplexLink(h, sw, link_capacity_bps);
  }
  return topo;
}

Topology BuildSpineLeaf(const SpineLeafParams& p) {
  assert(p.num_pods > 0);
  assert(p.num_tor % p.num_pods == 0 && "ToRs must partition evenly into pods");
  assert(p.num_leaf % p.num_pods == 0 && "leaves must partition evenly into pods");
  Topology topo;

  const int num_hosts = p.num_tor * p.hosts_per_tor;
  for (int h = 0; h < num_hosts; ++h) {
    topo.AddNode(NodeKind::kHost, "host" + std::to_string(h));
  }
  std::vector<NodeId> tors;
  tors.reserve(static_cast<size_t>(p.num_tor));
  for (int t = 0; t < p.num_tor; ++t) {
    tors.push_back(topo.AddNode(NodeKind::kTorSwitch, "tor" + std::to_string(t)));
  }
  std::vector<NodeId> leaves;
  leaves.reserve(static_cast<size_t>(p.num_leaf));
  for (int l = 0; l < p.num_leaf; ++l) {
    leaves.push_back(topo.AddNode(NodeKind::kLeafSwitch, "leaf" + std::to_string(l)));
  }
  std::vector<NodeId> spines;
  spines.reserve(static_cast<size_t>(p.num_spine));
  for (int s = 0; s < p.num_spine; ++s) {
    spines.push_back(topo.AddNode(NodeKind::kSpineSwitch, "spine" + std::to_string(s)));
  }

  // Hosts to their ToR.
  for (int h = 0; h < num_hosts; ++h) {
    topo.AddDuplexLink(static_cast<NodeId>(h), tors[static_cast<size_t>(h / p.hosts_per_tor)],
                       p.host_link_bps);
  }
  // ToR to every leaf of its pod.
  const int tors_per_pod = p.num_tor / p.num_pods;
  const int leaves_per_pod = p.num_leaf / p.num_pods;
  for (int t = 0; t < p.num_tor; ++t) {
    const int pod = t / tors_per_pod;
    for (int l = 0; l < leaves_per_pod; ++l) {
      topo.AddDuplexLink(tors[static_cast<size_t>(t)],
                         leaves[static_cast<size_t>(pod * leaves_per_pod + l)], p.tor_leaf_bps);
    }
  }
  // Every leaf to every spine.
  for (int l = 0; l < p.num_leaf; ++l) {
    for (int s = 0; s < p.num_spine; ++s) {
      topo.AddDuplexLink(leaves[static_cast<size_t>(l)], spines[static_cast<size_t>(s)],
                         p.leaf_spine_bps);
    }
  }
  return topo;
}

Topology BuildFatTree(const FatTreeParams& p) {
  assert(p.k >= 2 && p.k % 2 == 0 && "fat-tree arity must be even");
  const int k = p.k;
  const int half = k / 2;
  const int num_hosts = k * k * k / 4;
  const int switches_per_tier = k * half;  // k pods, k/2 edge (and agg) each.
  Topology topo;

  for (int h = 0; h < num_hosts; ++h) {
    topo.AddNode(NodeKind::kHost, "host" + std::to_string(h));
  }
  std::vector<NodeId> edges;
  edges.reserve(static_cast<size_t>(switches_per_tier));
  for (int e = 0; e < switches_per_tier; ++e) {
    edges.push_back(topo.AddNode(NodeKind::kTorSwitch, "edge" + std::to_string(e)));
  }
  std::vector<NodeId> aggs;
  aggs.reserve(static_cast<size_t>(switches_per_tier));
  for (int a = 0; a < switches_per_tier; ++a) {
    aggs.push_back(topo.AddNode(NodeKind::kLeafSwitch, "agg" + std::to_string(a)));
  }
  std::vector<NodeId> cores;
  cores.reserve(static_cast<size_t>(half * half));
  for (int c = 0; c < half * half; ++c) {
    cores.push_back(topo.AddNode(NodeKind::kSpineSwitch, "core" + std::to_string(c)));
  }

  // Host h sits under edge switch h / (k/2).
  for (int h = 0; h < num_hosts; ++h) {
    topo.AddDuplexLink(static_cast<NodeId>(h), edges[static_cast<size_t>(h / half)],
                       p.host_link_bps);
  }
  // Within each pod: full edge x aggregation mesh.
  for (int pod = 0; pod < k; ++pod) {
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) {
        topo.AddDuplexLink(edges[static_cast<size_t>(pod * half + e)],
                           aggs[static_cast<size_t>(pod * half + a)], p.edge_agg_bps);
      }
    }
  }
  // Core c = a*(k/2)+j connects to aggregation switch #a of every pod, so each
  // aggregation switch reaches k/2 cores and each core reaches all k pods.
  for (int a = 0; a < half; ++a) {
    for (int j = 0; j < half; ++j) {
      const NodeId core = cores[static_cast<size_t>(a * half + j)];
      for (int pod = 0; pod < k; ++pod) {
        topo.AddDuplexLink(aggs[static_cast<size_t>(pod * half + a)], core, p.agg_core_bps);
      }
    }
  }
  return topo;
}

}  // namespace saba
