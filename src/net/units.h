// Units for network quantities.
//
// Capacities are double-precision bits per second; data volumes are bits.
// Helpers keep call sites legible ("Gbps(56)", "Gigabytes(2.5)") and make the
// unit conventions impossible to miss.

#ifndef SRC_NET_UNITS_H_
#define SRC_NET_UNITS_H_

namespace saba {

// Rates (bits per second).
inline constexpr double Bps(double x) { return x; }
inline constexpr double Kbps(double x) { return x * 1e3; }
inline constexpr double Mbps(double x) { return x * 1e6; }
inline constexpr double Gbps(double x) { return x * 1e9; }

// Volumes (bits).
inline constexpr double Bits(double x) { return x; }
inline constexpr double Bytes(double x) { return x * 8.0; }
inline constexpr double Kilobytes(double x) { return x * 8e3; }
inline constexpr double Megabytes(double x) { return x * 8e6; }
inline constexpr double Gigabytes(double x) { return x * 8e9; }

}  // namespace saba

#endif  // SRC_NET_UNITS_H_
