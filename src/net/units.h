// Units for network quantities.
//
// Data volumes are double-precision bits. Bandwidth exists in two
// representations with an explicit boundary between them:
//
//  * Bps64 — fixed-point int64 bits per second. Link capacities and every
//    allocated flow rate are Bps64: the allocation core water-fills in pure
//    integer arithmetic, so its results are exact and independent of
//    summation / iteration order (DESIGN.md §7.1). One unit = one bit/s,
//    which is far below every tolerance in the simulator (a 56 Gb/s testbed
//    link is 5.6e10 units).
//  * double bps — used only where fluid ODE integration genuinely needs
//    continuous math (draining remaining_bits over elapsed time, efficiency
//    curves, packet serialization delays). Conversions into Bps64 go through
//    RoundBps below — the single, centralized rounding policy — never through
//    ad-hoc casts.
//
// Rounding policy (pinned by tests/units_test.cc, do not change silently):
// round to nearest; ties away from zero; NaN is a programming error
// (asserts); out-of-range magnitudes saturate to the int64 limits.
//
// Weights (WFQ queue weights, per-flow intra weights) are quantized onto a
// fixed 2^20 grid by WeightUnits so that weight sums and weighted shares are
// integer math too. The grid is fine enough that every configured weight in
// the repo (0.0625, 0.15, 1.0, 3.0, rng-uniform [0.1, 2.0]) keeps more than
// six significant digits; values below one grid step clamp up to 1 so a
// positive weight never becomes 0.

#ifndef SRC_NET_UNITS_H_
#define SRC_NET_UNITS_H_

#include <cassert>
#include <cstdint>

namespace saba {

// Fixed-point bandwidth: whole bits per second in an int64.
using Bps64 = int64_t;

inline constexpr Bps64 kBps64Max = INT64_MAX;
inline constexpr Bps64 kBps64Min = INT64_MIN;

// Largest double guaranteed to convert into int64 without overflow (2^63
// rounds up in double, so the threshold is the previous representable value).
inline constexpr double kBps64SaturationThreshold = 9223372036854774784.0;

// THE conversion from continuous bps to fixed point: nearest, ties away from
// zero, saturating. Every double->Bps64 crossing in the repo routes here.
inline constexpr Bps64 RoundBps(double bps) {
  assert(bps == bps && "rate must not be NaN");
  if (bps >= kBps64SaturationThreshold) {
    return kBps64Max;
  }
  if (bps <= -kBps64SaturationThreshold) {
    return kBps64Min;
  }
  return bps >= 0 ? static_cast<Bps64>(bps + 0.5) : -static_cast<Bps64>(-bps + 0.5);
}

inline constexpr double BpsToDouble(Bps64 bps) { return static_cast<double>(bps); }

// Fixed-point rate literals (link capacities, configured bandwidths).
inline constexpr Bps64 Bps64Of(double x) { return RoundBps(x); }
inline constexpr Bps64 Kbps64(double x) { return RoundBps(x * 1e3); }
inline constexpr Bps64 Mbps64(double x) { return RoundBps(x * 1e6); }
inline constexpr Bps64 Gbps64(double x) { return RoundBps(x * 1e9); }

// Continuous-rate helpers (tolerances, expectations, fluid math).
inline constexpr double Bps(double x) { return x; }
inline constexpr double Kbps(double x) { return x * 1e3; }
inline constexpr double Mbps(double x) { return x * 1e6; }
inline constexpr double Gbps(double x) { return x * 1e9; }

// Volumes (bits).
inline constexpr double Bits(double x) { return x; }
inline constexpr double Bytes(double x) { return x * 8.0; }
inline constexpr double Kilobytes(double x) { return x * 8e3; }
inline constexpr double Megabytes(double x) { return x * 8e6; }
inline constexpr double Gigabytes(double x) { return x * 8e9; }

// Scheduling weights on a fixed 2^20 grid. Weight sums stay below 2^63 for
// any realistic flow count (the allocator asserts w <= 2^20, so a single
// quantized weight is at most 2^40 and 4M flows sum below 2^62).
inline constexpr int64_t kWeightScale = 1 << 20;

inline constexpr int64_t WeightUnits(double weight) {
  assert(weight > 0 && "scheduling weights must be strictly positive");
  assert(weight <= static_cast<double>(kWeightScale) &&
         "scheduling weights above 2^20 would risk overflowing weight sums");
  const int64_t units = static_cast<int64_t>(weight * static_cast<double>(kWeightScale) + 0.5);
  return units < 1 ? 1 : units;
}

}  // namespace saba

#endif  // SRC_NET_UNITS_H_
