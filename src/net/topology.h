// Datacenter topology graph.
//
// Nodes are hosts or switches; links are directed (an egress port on the
// source node). The two topologies the paper evaluates are provided as
// builders: the single-switch testbed star (8- and 32-server experiments) and
// the 1,944-server three-tier spine-leaf fabric of §8.1 (54 spine, 102 leaf,
// 108 ToR switches, 18 servers per ToR).

#ifndef SRC_NET_TOPOLOGY_H_
#define SRC_NET_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/units.h"

namespace saba {

using NodeId = int32_t;
using LinkId = int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr LinkId kInvalidLink = -1;

enum class NodeKind : uint8_t {
  kHost = 0,
  kTorSwitch = 1,
  kLeafSwitch = 2,
  kSpineSwitch = 3,
  kSwitch = 4,  // Generic switch (single-switch star).
};

inline bool IsSwitch(NodeKind kind) { return kind != NodeKind::kHost; }

struct Node {
  NodeKind kind = NodeKind::kHost;
  std::string label;
};

// A directed link: the egress port of `src` facing `dst`.
struct Link {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bps64 capacity_bps = 0;
};

class Topology {
 public:
  Topology() = default;

  NodeId AddNode(NodeKind kind, std::string label = "");

  // Adds a single directed link and returns its id.
  LinkId AddLink(NodeId src, NodeId dst, Bps64 capacity_bps);

  // Adds both directions with equal capacity; returns the src->dst id (the
  // reverse id is the returned id + 1).
  LinkId AddDuplexLink(NodeId a, NodeId b, Bps64 capacity_bps);

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_links() const { return links_.size(); }

  const Node& node(NodeId id) const { return nodes_[static_cast<size_t>(id)]; }
  const Link& link(LinkId id) const { return links_[static_cast<size_t>(id)]; }

  // Mutable capacity access (the profiler throttles host links this way).
  void SetLinkCapacity(LinkId id, Bps64 capacity_bps);

  // Outgoing link ids of a node, in insertion order.
  const std::vector<LinkId>& OutLinks(NodeId id) const {
    return out_links_[static_cast<size_t>(id)];
  }

  // The link src->dst, or kInvalidLink if absent.
  LinkId FindLink(NodeId src, NodeId dst) const;

  // All host node ids, in insertion order.
  std::vector<NodeId> Hosts() const;

  // All switch node ids, in insertion order.
  std::vector<NodeId> Switches() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_links_;
};

// Builder for the testbed-style star: `num_hosts` hosts on one switch, every
// host link at `link_capacity_bps` (the paper's testbed uses 56 Gb/s).
Topology BuildSingleSwitchStar(int num_hosts, Bps64 link_capacity_bps);

// Parameters for the three-tier spine-leaf fabric of §8.1.
struct SpineLeafParams {
  int num_spine = 54;
  int num_leaf = 102;
  int num_tor = 108;
  int hosts_per_tor = 18;
  // Each ToR uplinks to all leaves of its pod; each leaf uplinks to every
  // spine. Pods partition ToRs and leaves evenly.
  int num_pods = 6;
  Bps64 host_link_bps = Gbps64(56);
  Bps64 tor_leaf_bps = Gbps64(56);
  Bps64 leaf_spine_bps = Gbps64(56);
};

// Builds the fabric. Host ids are assigned first (so host h is node h),
// followed by ToR, leaf, then spine switches.
Topology BuildSpineLeaf(const SpineLeafParams& params);

}  // namespace saba

#endif  // SRC_NET_TOPOLOGY_H_
