// Datacenter topology graph.
//
// Nodes are hosts or switches; links are directed (an egress port on the
// source node). Three fabrics are provided as builders: the single-switch
// testbed star (8- and 32-server experiments), the 1,944-server three-tier
// spine-leaf fabric of §8.1 (54 spine, 102 leaf, 108 ToR switches, 18
// servers per ToR), and a k-ary fat-tree (BuildFatTree) for the
// routing-diversity and failure scenarios beyond the paper.
//
// Shape (node and link counts, endpoints) is fixed at construction, but the
// fabric's *state* is simulated: links and nodes carry capacity-preserving
// up/down failure flags (SetLinkUp / SetNodeUp) and capacities may change
// (SetLinkCapacity). Every up/down flip bumps a monotonic epoch() counter;
// the Router watches it and invalidates its distance/path caches, so routes
// recompute around failures deterministically (see routing.h for the
// invalidation and reroute contract).

#ifndef SRC_NET_TOPOLOGY_H_
#define SRC_NET_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/units.h"

namespace saba {

using NodeId = int32_t;
using LinkId = int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr LinkId kInvalidLink = -1;

enum class NodeKind : uint8_t {
  kHost = 0,
  kTorSwitch = 1,
  kLeafSwitch = 2,
  kSpineSwitch = 3,
  kSwitch = 4,  // Generic switch (single-switch star).
};

inline bool IsSwitch(NodeKind kind) { return kind != NodeKind::kHost; }

struct Node {
  NodeKind kind = NodeKind::kHost;
  std::string label;
  // Failure flag: a down node takes all its incident links out of service
  // (LinkUsable) without forgetting any capacity or shape.
  bool up = true;
};

// A directed link: the egress port of `src` facing `dst`.
struct Link {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bps64 capacity_bps = 0;
  // Failure flag: a down link keeps its capacity (restores are exact) but is
  // skipped by routing. Duplex failures flip both directed links.
  bool up = true;
};

class Topology {
 public:
  Topology() = default;

  NodeId AddNode(NodeKind kind, std::string label = "");

  // Adds a single directed link and returns its id.
  LinkId AddLink(NodeId src, NodeId dst, Bps64 capacity_bps);

  // Adds both directions with equal capacity; returns the src->dst id (the
  // reverse id is the returned id + 1).
  LinkId AddDuplexLink(NodeId a, NodeId b, Bps64 capacity_bps);

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_links() const { return links_.size(); }

  const Node& node(NodeId id) const { return nodes_[static_cast<size_t>(id)]; }
  const Link& link(LinkId id) const { return links_[static_cast<size_t>(id)]; }

  // Mutable capacity access (the profiler throttles host links this way;
  // degradation scenarios scale capacities mid-run). Does NOT bump epoch():
  // capacity never changes hop-count routing, so router caches stay valid.
  void SetLinkCapacity(LinkId id, Bps64 capacity_bps);

  // --- Failure flags & epoch -----------------------------------------------
  // Capacity-preserving up/down state. A change (and only a change — setting
  // the current value is a no-op) bumps epoch(), signalling every Router on
  // this topology to drop its distance/path caches before the next query.
  void SetLinkUp(LinkId id, bool up);
  void SetNodeUp(NodeId id, bool up);

  // A link is usable iff it and both its endpoints are up.
  bool LinkUsable(LinkId id) const {
    const Link& l = links_[static_cast<size_t>(id)];
    return l.up && nodes_[static_cast<size_t>(l.src)].up && nodes_[static_cast<size_t>(l.dst)].up;
  }

  // Monotonic counter of up/down mutations; starts at 0.
  uint64_t epoch() const { return epoch_; }

  // Outgoing link ids of a node, in insertion order.
  const std::vector<LinkId>& OutLinks(NodeId id) const {
    return out_links_[static_cast<size_t>(id)];
  }

  // The link src->dst, or kInvalidLink if absent.
  LinkId FindLink(NodeId src, NodeId dst) const;

  // All host node ids, in insertion order.
  std::vector<NodeId> Hosts() const;

  // All switch node ids, in insertion order.
  std::vector<NodeId> Switches() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_links_;
  uint64_t epoch_ = 0;
};

// Builder for the testbed-style star: `num_hosts` hosts on one switch, every
// host link at `link_capacity_bps` (the paper's testbed uses 56 Gb/s).
Topology BuildSingleSwitchStar(int num_hosts, Bps64 link_capacity_bps);

// Parameters for the three-tier spine-leaf fabric of §8.1.
struct SpineLeafParams {
  int num_spine = 54;
  int num_leaf = 102;
  int num_tor = 108;
  int hosts_per_tor = 18;
  // Each ToR uplinks to all leaves of its pod; each leaf uplinks to every
  // spine. Pods partition ToRs and leaves evenly.
  int num_pods = 6;
  Bps64 host_link_bps = Gbps64(56);
  Bps64 tor_leaf_bps = Gbps64(56);
  Bps64 leaf_spine_bps = Gbps64(56);
};

// Builds the fabric. Host ids are assigned first (so host h is node h),
// followed by ToR, leaf, then spine switches.
Topology BuildSpineLeaf(const SpineLeafParams& params);

// Parameters for the k-ary three-tier fat-tree (Al-Fares et al.): k pods,
// each with k/2 edge switches (k/2 hosts each) fully meshed to k/2
// aggregation switches; (k/2)^2 core switches, core c = a*(k/2)+j linking to
// aggregation switch #a of every pod. Hosts total k^3/4.
struct FatTreeParams {
  int k = 4;  // Pod count / switch arity; must be even and >= 2.
  Bps64 host_link_bps = Gbps64(56);
  Bps64 edge_agg_bps = Gbps64(56);
  // Lower this below edge_agg_bps for an oversubscribed core.
  Bps64 agg_core_bps = Gbps64(56);
};

// Builds the fat-tree. Host ids first (host h is node h), then edge
// (kTorSwitch), aggregation (kLeafSwitch), core (kSpineSwitch), so the
// existing NodeKind tiers map onto the fat-tree roles. BFS shortest paths
// over this wiring reproduce two-phase pod routing's path set exactly: an
// inter-pod route climbs host->edge->agg->core and descends to the
// destination pod, with (k/2)^2 equal-cost core choices spread by the
// router's deterministic ECMP salt (the pod-prefix/host-suffix tables of
// two-phase routing pick among the same candidates).
Topology BuildFatTree(const FatTreeParams& params);

}  // namespace saba

#endif  // SRC_NET_TOPOLOGY_H_
