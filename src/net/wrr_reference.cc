#include "src/net/wrr_reference.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace saba {
namespace {

struct FlowState {
  double intra_weight = 1.0;
  double budget_bits = std::numeric_limits<double>::infinity();
  double deficit = 0;
  double sent = 0;

  bool Backlogged(double packet_bits) const { return budget_bits >= packet_bits; }
};

struct QueueState {
  double weight = 1.0;
  double deficit = 0;
  std::vector<int> flow_ids;
  size_t cursor = 0;  // Intra-queue round-robin position.
};

}  // namespace

WrrResult SimulateWrrPort(const WrrPortSpec& port, const std::vector<WrrFlowSpec>& flows,
                          double horizon_seconds) {
  assert(port.capacity_bps > 0);
  assert(!port.queue_weights.empty());
  assert(port.packet_bits > 0);
  assert(horizon_seconds > 0);

  std::vector<QueueState> queues(port.queue_weights.size());
  double min_weight = std::numeric_limits<double>::infinity();
  for (size_t q = 0; q < queues.size(); ++q) {
    assert(port.queue_weights[q] > 0);
    queues[q].weight = port.queue_weights[q];
    min_weight = std::min(min_weight, port.queue_weights[q]);
  }

  std::vector<FlowState> state(flows.size());
  for (size_t f = 0; f < flows.size(); ++f) {
    assert(flows[f].queue >= 0 && static_cast<size_t>(flows[f].queue) < queues.size());
    assert(flows[f].intra_weight > 0);
    state[f].intra_weight = flows[f].intra_weight;
    if (flows[f].total_bits >= 0) {
      state[f].budget_bits = flows[f].total_bits;
    }
    queues[static_cast<size_t>(flows[f].queue)].flow_ids.push_back(static_cast<int>(f));
  }

  const double budget = port.capacity_bps * horizon_seconds;
  double served = 0;

  // One packet-sized quantum per unit of normalized weight per round.
  auto queue_backlogged = [&](const QueueState& queue) {
    for (int f : queue.flow_ids) {
      if (state[static_cast<size_t>(f)].Backlogged(port.packet_bits)) {
        return true;
      }
    }
    return false;
  };

  bool progress = true;
  while (served + port.packet_bits <= budget && progress) {
    progress = false;
    for (QueueState& queue : queues) {
      if (!queue_backlogged(queue)) {
        queue.deficit = 0;  // Idle queues don't bank service (work conservation).
        continue;
      }
      queue.deficit += queue.weight / min_weight * port.packet_bits;

      // Serve packets while the queue's deficit and the port budget allow.
      while (queue.deficit >= port.packet_bits && served + port.packet_bits <= budget &&
             queue_backlogged(queue)) {
        // Intra-queue deficit round robin over backlogged flows. The scan
        // starts from a snapshot of the cursor so each flow is visited at
        // most once per packet opportunity.
        bool sent_one = false;
        const size_t start = queue.cursor;
        for (size_t step = 0; step < queue.flow_ids.size() && !sent_one; ++step) {
          const size_t idx = (start + step) % queue.flow_ids.size();
          FlowState& flow = state[static_cast<size_t>(queue.flow_ids[idx])];
          if (!flow.Backlogged(port.packet_bits)) {
            continue;
          }
          flow.deficit += flow.intra_weight * port.packet_bits;
          if (flow.deficit >= port.packet_bits) {
            flow.deficit -= port.packet_bits;
            flow.sent += port.packet_bits;
            flow.budget_bits -= port.packet_bits;
            queue.deficit -= port.packet_bits;
            served += port.packet_bits;
            sent_one = true;
            progress = true;
            queue.cursor = (idx + 1) % queue.flow_ids.size();
          }
        }
        if (!sent_one) {
          // Every backlogged flow banked intra-deficit this pass; advance the
          // scan start so accumulation is fair and keep cycling (a sender is
          // guaranteed within 1/min_intra_weight passes).
          queue.cursor = (start + 1) % queue.flow_ids.size();
        }
      }
      // Cap banked deficit at one round's worth so weights stay proportional.
      queue.deficit = std::min(queue.deficit, queue.weight / min_weight * port.packet_bits);
    }
  }

  WrrResult result;
  result.flow_bits.reserve(flows.size());
  result.queue_bits.assign(queues.size(), 0);
  for (size_t f = 0; f < flows.size(); ++f) {
    result.flow_bits.push_back(state[f].sent);
    result.queue_bits[static_cast<size_t>(flows[f].queue)] += state[f].sent;
    result.total_bits += state[f].sent;
  }
  return result;
}

}  // namespace saba
