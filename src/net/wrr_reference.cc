#include "src/net/wrr_reference.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace saba {
namespace {

// Deficit counters live on an integer "weight-unit x bit" grid: a queue banks
// weight_units * packet_bits per visit and a packet costs
// min_weight_units * packet_bits, so the long-run service ratio between two
// queues is exactly the ratio of their quantized weights. Inside a queue the
// grid is kWeightScale * packet_bits per packet against
// WeightUnits(intra_weight) * packet_bits banked per pass. Products stay below
// 2^55 (weight_units <= 2^40, packet_bits is MTU-scale), far from int64 range.
struct FlowState {
  int64_t weight_units = kWeightScale;
  int64_t budget_bits = std::numeric_limits<int64_t>::max();
  int64_t deficit = 0;  // weight-unit x bits.
  int64_t sent = 0;     // bits.

  bool Backlogged(int64_t packet_bits) const { return budget_bits >= packet_bits; }
};

struct QueueState {
  int64_t weight_units = kWeightScale;
  int64_t deficit = 0;  // weight-unit x bits.
  std::vector<int> flow_ids;
  size_t cursor = 0;  // Intra-queue round-robin position.
};

}  // namespace

WrrResult SimulateWrrPort(const WrrPortSpec& port, const std::vector<WrrFlowSpec>& flows,
                          double horizon_seconds) {
  assert(port.capacity_bps > 0);
  assert(!port.queue_weights.empty());
  assert(port.packet_bits > 0);
  assert(horizon_seconds > 0);

  std::vector<QueueState> queues(port.queue_weights.size());
  int64_t min_weight_units = std::numeric_limits<int64_t>::max();
  for (size_t q = 0; q < queues.size(); ++q) {
    assert(port.queue_weights[q] > 0);
    queues[q].weight_units = WeightUnits(port.queue_weights[q]);
    min_weight_units = std::min(min_weight_units, queues[q].weight_units);
  }

  std::vector<FlowState> state(flows.size());
  for (size_t f = 0; f < flows.size(); ++f) {
    assert(flows[f].queue >= 0 && static_cast<size_t>(flows[f].queue) < queues.size());
    assert(flows[f].intra_weight > 0);
    state[f].weight_units = WeightUnits(flows[f].intra_weight);
    if (flows[f].total_bits >= 0) {
      state[f].budget_bits = static_cast<int64_t>(flows[f].total_bits + 0.5);
    }
    queues[static_cast<size_t>(flows[f].queue)].flow_ids.push_back(static_cast<int>(f));
  }

  const int64_t packet_bits = port.packet_bits;
  const int64_t queue_packet_cost = min_weight_units * packet_bits;
  const int64_t flow_packet_cost = kWeightScale * packet_bits;
  const int64_t budget =
      static_cast<int64_t>(BpsToDouble(port.capacity_bps) * horizon_seconds + 0.5);
  int64_t served = 0;

  // One packet-sized quantum per unit of normalized weight per round.
  auto queue_backlogged = [&](const QueueState& queue) {
    for (int f : queue.flow_ids) {
      if (state[static_cast<size_t>(f)].Backlogged(packet_bits)) {
        return true;
      }
    }
    return false;
  };

  bool progress = true;
  while (served + packet_bits <= budget && progress) {
    progress = false;
    for (QueueState& queue : queues) {
      if (!queue_backlogged(queue)) {
        queue.deficit = 0;  // Idle queues don't bank service (work conservation).
        continue;
      }
      queue.deficit += queue.weight_units * packet_bits;

      // Serve packets while the queue's deficit and the port budget allow.
      while (queue.deficit >= queue_packet_cost && served + packet_bits <= budget &&
             queue_backlogged(queue)) {
        // Intra-queue deficit round robin over backlogged flows. The scan
        // starts from a snapshot of the cursor so each flow is visited at
        // most once per packet opportunity.
        bool sent_one = false;
        const size_t start = queue.cursor;
        for (size_t step = 0; step < queue.flow_ids.size() && !sent_one; ++step) {
          const size_t idx = (start + step) % queue.flow_ids.size();
          FlowState& flow = state[static_cast<size_t>(queue.flow_ids[idx])];
          if (!flow.Backlogged(packet_bits)) {
            continue;
          }
          flow.deficit += flow.weight_units * packet_bits;
          if (flow.deficit >= flow_packet_cost) {
            flow.deficit -= flow_packet_cost;
            flow.sent += packet_bits;
            flow.budget_bits = flow.budget_bits == std::numeric_limits<int64_t>::max()
                                   ? flow.budget_bits
                                   : flow.budget_bits - packet_bits;
            queue.deficit -= queue_packet_cost;
            served += packet_bits;
            sent_one = true;
            progress = true;
            queue.cursor = (idx + 1) % queue.flow_ids.size();
          }
        }
        if (!sent_one) {
          // Every backlogged flow banked intra-deficit this pass; advance the
          // scan start so accumulation is fair and keep cycling (a sender is
          // guaranteed within 1/min_intra_weight passes).
          queue.cursor = (start + 1) % queue.flow_ids.size();
        }
      }
      // Cap banked deficit at one round's worth so weights stay proportional.
      queue.deficit = std::min(queue.deficit, queue.weight_units * packet_bits);
    }
  }

  WrrResult result;
  result.flow_bits.reserve(flows.size());
  result.queue_bits.assign(queues.size(), 0);
  for (size_t f = 0; f < flows.size(); ++f) {
    result.flow_bits.push_back(static_cast<double>(state[f].sent));
    result.queue_bits[static_cast<size_t>(flows[f].queue)] += static_cast<double>(state[f].sent);
    result.total_bits += static_cast<double>(state[f].sent);
  }
  return result;
}

}  // namespace saba
