// Single-resource weighted max-min water-filling in fixed-point integers.
//
// This is the innermost primitive of the allocation stack: given one
// capacity and a set of (weight, demand) entries, find the water level L —
// the largest rational such that sum_i min(demand_i, weight_i * L) fits the
// capacity — and grant each entry min(demand_i, floor(weight_i * L)).
// Everything is int64 (units.h fixed point), so the result is an exact
// function of the multiset of entries: no summation-order or tie-break
// dependence, which is what lets the component solver drop its canonical
// sorts (DESIGN.md §7.1).
//
// Two interchangeable strategies are provided, after the PartialSortAllocator
// idiom in heyp-agents:
//  * kFullSort — sort entries by normalized demand (demand/weight) and scan;
//    O(N log N), trivially correct, the reference for tests.
//  * kPartialSelection — quickselect-style partitioning around a pivot
//    normalized demand, recursing only into the side containing the level;
//    O(N) average, no full order ever materializes. The default.
// Both honor the tiny-flow fast path: entries whose demand fits their share
// of the *initial* fair level (demand_i * sum_w <= capacity * weight_i) can
// never be rate-limited — the level only rises as demands saturate — so they
// are granted outright and excluded from selection. Workloads dominated by
// small flows collapse to a single O(N) pass.
//
// An elastic (unbounded) entry uses demand = kElasticDemand; a solve where
// every entry is elastic degenerates to the closed form L = capacity / sum_w,
// which is how the component solver uses this module for single-link
// components.

#ifndef SRC_NET_WATERFILL_H_
#define SRC_NET_WATERFILL_H_

#include <cstdint>
#include <vector>

#include "src/net/units.h"

namespace saba {

inline constexpr Bps64 kElasticDemand = kBps64Max;

struct WaterfillEntry {
  int64_t weight = kWeightScale;  // WeightUnits grid; > 0.
  Bps64 demand = kElasticDemand;  // >= 0; kElasticDemand = unbounded.
};

// Exact water level as a rational num/den. den == 0 encodes "unbounded"
// (every entry was satisfied below its demand; capacity was not exhausted).
struct WaterLevel {
  Bps64 num = 0;
  int64_t den = 0;

  bool unbounded() const { return den == 0; }
};

enum class WaterfillMode {
  kPartialSelection,  // O(N) average partial selection (default).
  kFullSort,          // O(N log N) reference.
};

struct WaterfillOptions {
  WaterfillMode mode = WaterfillMode::kPartialSelection;
  bool enable_tiny_flow_opt = true;
};

// Grants rates[i] = min(entries[i].demand, floor(entries[i].weight * L)) for
// the computed level L and returns L. rates is resized to entries.size().
// capacity must be >= 0; weights strictly positive. The sum of grants never
// exceeds capacity (exact integer conservation).
WaterLevel SolveWaterfill(Bps64 capacity, const std::vector<WaterfillEntry>& entries,
                          std::vector<Bps64>* rates, const WaterfillOptions& options = {});

}  // namespace saba

#endif  // SRC_NET_WATERFILL_H_
