#include "src/net/flow_simulator.h"

#include <cassert>
#include <cmath>
#include <utility>

#include "src/sim/log.h"

namespace saba {
namespace {

// Base dust floor in bits. A flow counts as drained when its residue is
// within DustFor(rate) — the floor plus a nanosecond of transmission at the
// flow's current rate, which absorbs the floating-point error of computing
// the completion instant as now + remaining/rate.
constexpr double kCompletionDustBits = 1e-6;

double DustFor(double rate_bps) { return kCompletionDustBits + rate_bps * 1e-9; }

}  // namespace

FlowSimulator::FlowSimulator(EventScheduler* scheduler, Network* network,
                             BandwidthAllocator* allocator)
    : scheduler_(scheduler), network_(network), allocator_(allocator) {
  assert(scheduler != nullptr && network != nullptr && allocator != nullptr);
  engine_ = allocator_->CreateEngine(network_);
}

FlowId FlowSimulator::StartFlow(AppId app, NodeId src, NodeId dst, double bits, int sl,
                                uint64_t path_salt, CompletionCallback on_complete,
                                double intra_weight) {
  assert(src != dst && "flows must connect distinct hosts");
  assert(bits > 0);
  assert(sl >= 0 && sl < kNumServiceLevels);
  assert(intra_weight > 0);

  const FlowId id = next_flow_id_++;
  auto record = std::make_unique<FlowRecord>();
  record->flow.id = id;
  record->flow.app = app;
  record->flow.sl = sl;
  record->flow.priority = 0;
  record->flow.intra_weight = intra_weight;
  record->flow.remaining_bits = bits;
  // The simulator owns a copy of the route: router cache entries are
  // invalidated by topology mutations (routing.h contract), and the engine
  // holds flow.path between deltas. Endpoints + salt stay on the record so a
  // failure can re-resolve the same pinned connection.
  record->src = src;
  record->dst = dst;
  record->path_salt = path_salt;
  record->path_storage = network_->router().Route(src, dst, path_salt);
  record->flow.path = &record->path_storage;
  assert(!record->flow.path->empty() && "flow endpoints must be reachable at start");
  record->on_complete = std::move(on_complete);
  record->last_update = scheduler_->Now();
  engine_->FlowAdded(&record->flow);
  flows_.emplace(id, std::move(record));
  host_egress_stale_ = true;
  MarkDirty();
  return id;
}

void FlowSimulator::CancelFlow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return;
  }
  engine_->FlowRemoved(&it->second->flow);
  flows_.erase(it);
  ++cancelled_;
  host_egress_stale_ = true;
  MarkDirty();
}

void FlowSimulator::SetFlowPriority(FlowId id, int priority) {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return;
  }
  if (it->second->flow.priority != priority) {
    it->second->flow.priority = priority;
    engine_->FlowQueueChanged(&it->second->flow);
    MarkDirty();
  }
}

void FlowSimulator::SetAppServiceLevel(AppId app, int sl) {
  assert(sl >= 0 && sl < kNumServiceLevels);
  bool changed = false;
  for (auto& [id, record] : flows_) {
    if (record->flow.app == app && record->flow.sl != sl) {
      record->flow.sl = sl;
      engine_->FlowQueueChanged(&record->flow);
      changed = true;
    }
  }
  if (changed) {
    MarkDirty();
  }
}

void FlowSimulator::RequestReallocate() {
  // The caller reconfigured an unknown set of ports; every queue capacity is
  // suspect, so the next solve takes the full-recompute path.
  engine_->InvalidateAll();
  MarkDirty();
}

void FlowSimulator::NotifyLinkChanged(LinkId link) {
  engine_->PortConfigChanged(link);
  MarkDirty();
}

void FlowSimulator::HandleTopologyChange() {
  const Topology& topo = network_->topology();
  Router& router = network_->router();
  // Ascending flow-id order keeps the FlowRemoved/FlowAdded delta stream
  // canonical (see flows_ comment); restores never move pinned flows, so only
  // paths that now cross an unusable link re-resolve.
  bool changed = false;
  for (auto& [id, record] : flows_) {
    bool broken = false;
    for (LinkId l : record->path_storage) {
      if (!topo.LinkUsable(l)) {
        broken = true;
        break;
      }
    }
    if (!broken) {
      continue;
    }
    engine_->FlowRemoved(&record->flow);
    record->path_storage = router.Route(record->src, record->dst, record->path_salt);
    assert(!record->path_storage.empty() &&
           "failure scenarios must keep live flow endpoints connected");
    record->flow.path = &record->path_storage;
    engine_->FlowAdded(&record->flow);
    ++rerouted_;
    changed = true;
  }
  if (changed) {
    host_egress_stale_ = true;
  }
  // Even with no broken flows, usable capacity may have shifted (e.g. a
  // restored link rejoins its ECMP group); recompute rates at this instant.
  RequestReallocate();
}

double FlowSimulator::FlowRate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second->flow.rate;
}

double FlowSimulator::FlowRemainingBits(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return 0.0;
  }
  const FlowRecord& record = *it->second;
  const double elapsed = scheduler_->Now() - record.last_update;
  return std::max(0.0, record.flow.remaining_bits - record.flow.rate * elapsed);
}

double FlowSimulator::HostEgressRate(NodeId host) const {
  assert(host >= 0 && static_cast<size_t>(host) < network_->topology().num_nodes());
  if (host_egress_stale_) {
    host_egress_.assign(network_->topology().num_nodes(), 0.0);
    for (const auto& [id, record] : flows_) {
      if (!record->flow.path->empty()) {
        const NodeId src = network_->topology().link(record->flow.path->front()).src;
        host_egress_[static_cast<size_t>(src)] += record->flow.rate;
      }
    }
    host_egress_stale_ = false;
  }
  return host_egress_[static_cast<size_t>(host)];
}

void FlowSimulator::SyncFlow(FlowRecord* record) {
  const SimTime now = scheduler_->Now();
  const double elapsed = now - record->last_update;
  if (elapsed > 0) {
    record->flow.remaining_bits -= record->flow.rate * elapsed;
    // Keep a dust floor so the allocator precondition (remaining > 0) holds
    // for flows that are completed later in this same instant.
    if (record->flow.remaining_bits < kCompletionDustBits) {
      record->flow.remaining_bits = kCompletionDustBits;
    }
    record->last_update = now;
  }
}

void FlowSimulator::MarkDirty() {
  if (dirty_) {
    return;
  }
  dirty_ = true;
  scheduler_->ScheduleAt(scheduler_->Now(), [this] {
    dirty_ = false;
    Reallocate();
  });
}

void FlowSimulator::Reallocate() {
  assert(!reallocating_ && "reentrant reallocation");
  reallocating_ = true;
  ++allocator_runs_;

  for (auto& [id, record] : flows_) {
    SyncFlow(record.get());
  }
  if (pre_allocate_hook_) {
    pre_allocate_hook_();
  }

  engine_->Recompute();
  host_egress_stale_ = true;

  // Re-plan the single next-completion event at the earliest finish time.
  const SimTime now = scheduler_->Now();
  SimTime next = kNeverTime;
  for (auto& [id, record] : flows_) {
    const double rate = record->flow.rate;
    if (rate > 0) {
      next = std::min(next, now + record->flow.remaining_bits / rate);
    }
  }
  if (next != kNeverTime && completion_quantum_ > 0) {
    // Snap up to the grid so near-simultaneous completions share an event.
    next = std::ceil(next / completion_quantum_) * completion_quantum_;
  }
  if (!TimeAlmostEqual(next, next_completion_time_) || !next_completion_event_.pending()) {
    next_completion_event_.Cancel();
    next_completion_time_ = next;
    if (next != kNeverTime) {
      next_completion_event_ = scheduler_->ScheduleAt(next, [this] { OnCompletionTick(); });
    }
  }
  reallocating_ = false;
}

void FlowSimulator::OnCompletionTick() {
  next_completion_time_ = kNeverTime;
  // Drain everything up to now, then extract the finished flows before any
  // callback runs (callbacks may start new flows; the allocator must never
  // see the finished ones).
  std::vector<std::unique_ptr<FlowRecord>> finished;
  for (auto it = flows_.begin(); it != flows_.end();) {
    SyncFlow(it->second.get());
    if (it->second->flow.remaining_bits <= DustFor(it->second->flow.rate)) {
      engine_->FlowRemoved(&it->second->flow);
      finished.push_back(std::move(it->second));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  completed_ += finished.size();
  host_egress_stale_ = true;
  MarkDirty();  // Remaining flows need fresh rates and a new tick.
  for (const auto& record : finished) {
    if (record->on_complete) {
      record->on_complete(record->flow.id);
    }
  }
}

}  // namespace saba
