#include "src/net/network.h"

#include <cmath>
#include <utility>

namespace saba {

double FecnCongestionModel::QueueEfficiency(size_t distinct_apps) const {
  if (distinct_apps <= 1) {
    return 1.0;
  }
  const double x = static_cast<double>(distinct_apps);
  const double ln = std::log(x);
  // The (1 - 1/n) factor keeps a two-app VL nearly lossless while leaving
  // the many-app collapse intact.
  return 1.0 / (1.0 + gamma_ * ln * ln * (1.0 - 1.0 / x));
}

Network::Network(Topology topology, int default_queues)
    : topology_(std::move(topology)),
      router_(&topology_),
      congestion_(std::make_unique<IdealCongestionModel>()) {
  assert(default_queues >= 1);
  PortConfig config;
  config.num_queues = default_queues;
  config.queue_weights.assign(static_cast<size_t>(default_queues), 1.0);
  ports_.assign(topology_.num_links(), config);
}

void Network::SetQueueCountEverywhere(int num_queues) {
  assert(num_queues >= 1);
  for (PortConfig& port : ports_) {
    port.num_queues = num_queues;
    port.queue_weights.assign(static_cast<size_t>(num_queues), 1.0);
    for (int& q : port.sl_to_queue) {
      if (q >= num_queues) {
        q = num_queues - 1;
      }
    }
  }
}

void Network::MapSlToQueueEverywhere(int sl, int queue) {
  assert(sl >= 0 && sl < kNumServiceLevels);
  for (PortConfig& port : ports_) {
    assert(queue >= 0 && queue < port.num_queues);
    port.sl_to_queue[static_cast<size_t>(sl)] = queue;
  }
}

void Network::SetSchedulingEverywhere(PortScheduling scheduling) {
  for (PortConfig& port : ports_) {
    port.scheduling = scheduling;
  }
}

void Network::SetCongestionModel(std::unique_ptr<CongestionModel> model) {
  assert(model != nullptr);
  congestion_ = std::move(model);
}

}  // namespace saba
