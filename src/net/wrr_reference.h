// Packet-granularity Weighted-Round-Robin reference for a single egress port.
//
// The fluid allocator claims that InfiniBand's per-VL WRR arbitration yields
// long-run per-queue throughput proportional to queue weights, with per-flow
// fair sharing inside a queue (weighted by ActiveFlow::intra_weight). This
// module simulates the actual mechanism — packets, a per-queue deficit
// counter, round-robin arbitration across backlogged queues — so tests can
// cross-validate the fluid shares against packet-level truth. It is a
// validation instrument, not a performance path.
//
// Deficit counters are integers on the WeightUnits grid (units.h): a queue
// banks weight_units * packet_bits units per visit and a packet costs
// min_weight_units * packet_bits, so service proportions are exact and the
// counters cannot drift no matter how long the horizon runs. (The old double
// counters accumulated rounding error at every visit.)

#ifndef SRC_NET_WRR_REFERENCE_H_
#define SRC_NET_WRR_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "src/net/units.h"

namespace saba {

struct WrrFlowSpec {
  int queue = 0;
  // Relative share within the queue (prefetch flows use < 1).
  double intra_weight = 1.0;
  // Backlogged flows always have a packet ready; a non-backlogged flow is
  // modeled by a finite byte budget after which it stops sending.
  double total_bits = -1;  // < 0 => always backlogged.
};

struct WrrPortSpec {
  Bps64 capacity_bps = 0;
  std::vector<double> queue_weights;  // One per queue; > 0.
  int64_t packet_bits = 8 * 1500;     // MTU-sized packets by default.
};

struct WrrResult {
  // Bits each flow got through the port during the simulated horizon.
  std::vector<double> flow_bits;
  // Bits per queue.
  std::vector<double> queue_bits;
  // Total bits served (== capacity * horizon when any queue is backlogged).
  double total_bits = 0;
};

// Simulates `horizon_seconds` of deficit-weighted round robin:
//  * queues are visited cyclically; a queue accumulates quantum
//    `weight / min_weight * packet_bits` per visit and sends whole packets
//    while its deficit allows and it has backlogged flows;
//  * inside a queue, flows are themselves served deficit-round-robin with
//    quanta proportional to intra_weight.
// Deterministic; packet order is a pure function of the specs.
WrrResult SimulateWrrPort(const WrrPortSpec& port, const std::vector<WrrFlowSpec>& flows,
                          double horizon_seconds);

}  // namespace saba

#endif  // SRC_NET_WRR_REFERENCE_H_
