#include "src/net/allocator.h"

#include <memory>

#include "src/net/allocation_engine.h"

namespace saba {

// The allocators are thin strategies over the shared component solver in
// allocation_engine.cc: Allocate() is a from-scratch run, CreateEngine()
// yields the incremental path. Keeping both behind one implementation is what
// guarantees their rates are bit-identical (see allocation_engine.h).

void WfqMaxMinAllocator::Allocate(const std::vector<ActiveFlow*>& flows, const Network& net) {
  AllocateFromScratch(flows, net, AllocationDiscipline::kWfqSlQueues);
}

std::unique_ptr<AllocationEngine> WfqMaxMinAllocator::CreateEngine(const Network* net) const {
  return std::make_unique<AllocationEngine>(net, AllocationDiscipline::kWfqSlQueues);
}

void StrictPriorityAllocator::Allocate(const std::vector<ActiveFlow*>& flows, const Network& net) {
  AllocateFromScratch(flows, net, AllocationDiscipline::kStrictPriority);
}

std::unique_ptr<AllocationEngine> StrictPriorityAllocator::CreateEngine(const Network* net) const {
  return std::make_unique<AllocationEngine>(net, AllocationDiscipline::kStrictPriority);
}

void PerAppWfqAllocator::Allocate(const std::vector<ActiveFlow*>& flows, const Network& net) {
  AllocateFromScratch(flows, net, AllocationDiscipline::kPerAppQueues, weights_);
}

std::unique_ptr<AllocationEngine> PerAppWfqAllocator::CreateEngine(const Network* net) const {
  return std::make_unique<AllocationEngine>(net, AllocationDiscipline::kPerAppQueues, weights_);
}

}  // namespace saba
