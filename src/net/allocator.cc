#include "src/net/allocator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>

namespace saba {
namespace {

// -----------------------------------------------------------------------------
// The fluid WFQ allocation is a *nested* max-min:
//   level 1: each egress port's capacity is split across its backlogged
//            queues in proportion to the configured weights (WFQ);
//   level 2: inside a queue, backlogged flows share the queue's allocation
//            max-min fairly, weighted by ActiveFlow::intra_weight.
//
// We model every (link, queue) pair that carries flows as a *virtual
// resource* with its own capacity, run classic weighted progressive filling
// over those resources (each flow has ONE scalar weight — its intra weight —
// so the filling is exact weighted max-min over the resources), and then
// redistribute the capacity that under-demanding queues left unused to the
// queues that were actually constrained, iterating toward the
// work-conserving fixed point. A few rounds suffice: each round either finds
// no slack or strictly grows some binding queue's capacity.
// -----------------------------------------------------------------------------

// Working state for one virtual resource (a queue on a link).
struct ResourceWork {
  double capacity = 0;   // Goodput available to this queue at this link.
  double remaining = 0;  // Capacity not yet claimed by frozen flows (per fill).
  double denom = 0;      // Sum of weights of still-active flows.
  int active = 0;
  uint64_t version = 0;
  bool requeue_mark = false;
  bool binding = false;  // Some flow froze *at* this resource in the last fill.
  std::vector<int> flow_indices;

  void ResetForFill() {
    remaining = capacity;
    denom = 0;
    active = 0;
    version = 0;
    requeue_mark = false;
    binding = false;
    flow_indices.clear();  // Keeps vector capacity across fills.
  }
};

struct HeapEntry {
  double level = 0;  // remaining / denom at push time.
  int resource = 0;
  uint64_t version = 0;
};

struct HeapLater {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const { return a.level > b.level; }
};

// Maps LinkId -> dense slot, reusing storage across calls.
class LinkSlotMap {
 public:
  void Prepare(size_t num_links) {
    if (slots_.size() < num_links) {
      slots_.assign(num_links, -1);
    }
  }

  int SlotFor(LinkId link, bool* inserted) {
    int32_t& slot = slots_[static_cast<size_t>(link)];
    *inserted = slot < 0;
    if (slot < 0) {
      slot = next_++;
      touched_.push_back(link);
    }
    return slot;
  }

  int At(LinkId link) const { return slots_[static_cast<size_t>(link)]; }

  void Reset() {
    for (LinkId link : touched_) {
      slots_[static_cast<size_t>(link)] = -1;
    }
    touched_.clear();
    next_ = 0;
  }

 private:
  std::vector<int32_t> slots_;
  std::vector<LinkId> touched_;
  int32_t next_ = 0;
};

// Weighted progressive filling over virtual resources. Each flow has a scalar
// weight (its intra weight) and a list of resource ids (one per path link);
// all rates grow in proportion to the weights until a resource saturates,
// whose flows then freeze at their shares — classic, exact weighted max-min.
void ProgressiveFill(const std::vector<ActiveFlow*>& flows,
                     const std::vector<std::vector<int>>& resource_of,
                     std::vector<ResourceWork>* resources, size_t num_resources) {
  const size_t n = flows.size();
  for (size_t f = 0; f < n; ++f) {
    flows[f]->rate = 0;
    for (int r : resource_of[f]) {
      ResourceWork& work = (*resources)[static_cast<size_t>(r)];
      work.denom += flows[f]->intra_weight;
      work.active += 1;
      work.flow_indices.push_back(static_cast<int>(f));
    }
  }

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLater> heap;
  auto push_resource = [&](int r) {
    ResourceWork& work = (*resources)[static_cast<size_t>(r)];
    if (work.active == 0 || work.denom <= 0) {
      return;
    }
    heap.push({std::max(work.remaining, 0.0) / work.denom, r, work.version});
  };
  for (size_t r = 0; r < num_resources; ++r) {
    push_resource(static_cast<int>(r));
  }

  static thread_local std::vector<bool> frozen;
  frozen.assign(n, false);
  size_t frozen_count = 0;
  while (frozen_count < n && !heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    ResourceWork& bottleneck = (*resources)[static_cast<size_t>(top.resource)];
    if (top.version != bottleneck.version || bottleneck.active == 0) {
      continue;  // Stale entry; a fresh one was pushed when the state changed.
    }
    const double level = top.level;
    bottleneck.binding = true;
    // Freeze every still-active flow on the bottleneck at its weighted share,
    // collecting the changed resources (deduplicated — a busy bottleneck
    // would otherwise re-queue the same resource hundreds of times).
    static thread_local std::vector<int> requeue;
    requeue.clear();
    for (int fi : bottleneck.flow_indices) {
      const size_t f = static_cast<size_t>(fi);
      if (frozen[f]) {
        continue;
      }
      frozen[f] = true;
      ++frozen_count;
      const double rate = flows[f]->intra_weight * level;
      flows[f]->rate = rate;
      for (int r : resource_of[f]) {
        ResourceWork& work = (*resources)[static_cast<size_t>(r)];
        work.remaining -= rate;
        work.denom -= flows[f]->intra_weight;
        work.active -= 1;
        ++work.version;
        if (!work.requeue_mark) {
          work.requeue_mark = true;
          requeue.push_back(r);
        }
      }
    }
    for (int r : requeue) {
      (*resources)[static_cast<size_t>(r)].requeue_mark = false;
      push_resource(r);
    }
  }
  assert(frozen_count == n && "every flow must freeze at some bottleneck");
  (void)frozen_count;
}

// Prepared inputs for the nested WFQ fixed point, shared by the SL-mapped
// and per-application allocators.
struct NestedWfqInput {
  // Per flow: the resource index of each path link, in path order.
  std::vector<std::vector<int>> resource_of;
  struct Resource {
    double weight = 1;      // Configured WFQ weight of the queue behind it.
    double efficiency = 1;  // Congestion-model efficiency of the queue.
  };
  std::vector<Resource> resources;
  // Per link slot: raw capacity and the resources living on the link.
  std::vector<double> link_capacity;
  std::vector<std::vector<int>> link_resources;
};

// Runs the redistribution rounds; leaves final rates in the flows.
void SolveNestedWfq(const std::vector<ActiveFlow*>& flows, const NestedWfqInput& input,
                    std::vector<ResourceWork>* work) {
  const size_t num_resources = input.resources.size();

  // Initial capacities: WFQ shares among the queues present at each link,
  // each degraded by its own protocol efficiency.
  for (size_t ls = 0; ls < input.link_resources.size(); ++ls) {
    double weight_sum = 0;
    for (int r : input.link_resources[ls]) {
      weight_sum += input.resources[static_cast<size_t>(r)].weight;
    }
    assert(weight_sum > 0);
    for (int r : input.link_resources[ls]) {
      const auto& meta = input.resources[static_cast<size_t>(r)];
      (*work)[static_cast<size_t>(r)].capacity =
          input.link_capacity[ls] * (meta.weight / weight_sum) * meta.efficiency;
    }
  }

  constexpr int kMaxRounds = 4;
  for (int round = 0; round < kMaxRounds; ++round) {
    for (size_t r = 0; r < num_resources; ++r) {
      (*work)[r].ResetForFill();
    }
    ProgressiveFill(flows, input.resource_of, work, num_resources);
    if (round + 1 == kMaxRounds) {
      break;  // This fill stands.
    }

    // Work conservation: re-home each link's unused capacity to the queues
    // that were actually constrained there ("binding"), in weight proportion.
    // Slack re-enters scaled by the receiving queue's own efficiency — WRR
    // can only hand out what the (imperfect) protocol can carry.
    bool changed = false;
    for (size_t ls = 0; ls < input.link_resources.size(); ++ls) {
      double used = 0;
      double wire_used = 0;
      double hungry_weight = 0;
      for (int r : input.link_resources[ls]) {
        const ResourceWork& res = (*work)[static_cast<size_t>(r)];
        const auto& meta = input.resources[static_cast<size_t>(r)];
        const double goodput = res.capacity - std::max(res.remaining, 0.0);
        used += goodput;
        wire_used += meta.efficiency > 0 ? goodput / meta.efficiency : goodput;
        if (res.binding) {
          hungry_weight += meta.weight;
        }
      }
      const double slack = input.link_capacity[ls] - wire_used;
      if (slack <= input.link_capacity[ls] * 1e-9 || hungry_weight <= 0) {
        continue;
      }
      for (int r : input.link_resources[ls]) {
        ResourceWork& res = (*work)[static_cast<size_t>(r)];
        const auto& meta = input.resources[static_cast<size_t>(r)];
        const double goodput = res.capacity - std::max(res.remaining, 0.0);
        if (res.binding) {
          const double grant = slack * (meta.weight / hungry_weight) * meta.efficiency;
          if (grant > input.link_capacity[ls] * 1e-9) {
            changed = true;
          }
          res.capacity = goodput + grant;
        } else {
          // Keep only what it used; its surplus is being re-homed.
          res.capacity = goodput;
        }
      }
    }
    if (!changed) {
      break;
    }
  }
}

// Shared construction of the nested input: `queue_key(flow, link)` identifies
// the flow's queue at a port, `queue_weight(flow, link)` its weight.
template <typename QueueKeyFn, typename QueueWeightFn>
void AllocateNested(const std::vector<ActiveFlow*>& flows, const Network& net,
                    QueueKeyFn queue_key, QueueWeightFn queue_weight) {
  if (flows.empty()) {
    return;
  }

  static thread_local LinkSlotMap link_slot;
  link_slot.Prepare(net.topology().num_links());

  NestedWfqInput input;
  input.resource_of.assign(flows.size(), {});

  // Per link slot: (queue key -> resource index), linear-scanned small vecs.
  static thread_local std::vector<std::vector<std::pair<int, int>>> queue_index;
  // Per resource: distinct apps (for the congestion model).
  std::vector<std::vector<AppId>> apps_in_resource;

  for (size_t f = 0; f < flows.size(); ++f) {
    const ActiveFlow* flow = flows[f];
    assert(flow->path != nullptr && !flow->path->empty());
    assert(flow->remaining_bits > 0);
    assert(flow->intra_weight > 0);
    input.resource_of[f].reserve(flow->path->size());
    for (LinkId l : *flow->path) {
      bool inserted = false;
      const int ls = link_slot.SlotFor(l, &inserted);
      if (inserted) {
        if (queue_index.size() <= static_cast<size_t>(ls)) {
          queue_index.resize(static_cast<size_t>(ls) + 1);
        }
        queue_index[static_cast<size_t>(ls)].clear();
        input.link_capacity.resize(static_cast<size_t>(ls) + 1);
        input.link_capacity[static_cast<size_t>(ls)] = net.topology().link(l).capacity_bps;
        input.link_resources.resize(static_cast<size_t>(ls) + 1);
      }
      const int key = queue_key(*flow, l);
      auto& index = queue_index[static_cast<size_t>(ls)];
      auto it = std::find_if(index.begin(), index.end(),
                             [key](const auto& entry) { return entry.first == key; });
      int resource;
      if (it == index.end()) {
        resource = static_cast<int>(input.resources.size());
        index.emplace_back(key, resource);
        input.resources.push_back({queue_weight(*flow, l), 1.0});
        input.link_resources[static_cast<size_t>(ls)].push_back(resource);
        apps_in_resource.emplace_back();
      } else {
        resource = it->second;
      }
      auto& apps = apps_in_resource[static_cast<size_t>(resource)];
      if (std::find(apps.begin(), apps.end(), flow->app) == apps.end()) {
        apps.push_back(flow->app);
      }
      input.resource_of[f].push_back(resource);
    }
  }

  for (size_t r = 0; r < input.resources.size(); ++r) {
    input.resources[r].efficiency =
        net.congestion().QueueEfficiency(apps_in_resource[r].size());
  }

  static thread_local std::vector<ResourceWork> work;
  if (work.size() < input.resources.size()) {
    work.resize(input.resources.size());
  }
  SolveNestedWfq(flows, input, &work);
  link_slot.Reset();
}

}  // namespace

void WfqMaxMinAllocator::Allocate(const std::vector<ActiveFlow*>& flows, const Network& net) {
  AllocateNested(
      flows, net,
      [&net](const ActiveFlow& flow, LinkId l) {
        const PortConfig& port = net.port(l);
        const int q = port.sl_to_queue[static_cast<size_t>(flow.sl)];
        assert(q >= 0 && q < port.num_queues);
        return q;
      },
      [&net](const ActiveFlow& flow, LinkId l) {
        const PortConfig& port = net.port(l);
        const int q = port.sl_to_queue[static_cast<size_t>(flow.sl)];
        const double w = port.queue_weights[static_cast<size_t>(q)];
        assert(w > 0 && "queue weights must be strictly positive");
        return w;
      });
}

void PerAppWfqAllocator::Allocate(const std::vector<ActiveFlow*>& flows, const Network& net) {
  AllocateNested(
      flows, net, [](const ActiveFlow& flow, LinkId) { return static_cast<int>(flow.app); },
      [this](const ActiveFlow& flow, LinkId l) {
        const double w = weights_ ? weights_(l, flow.app) : 1.0;
        assert(w > 0);
        return w;
      });
}

void StrictPriorityAllocator::Allocate(const std::vector<ActiveFlow*>& flows,
                                       const Network& net) {
  if (flows.empty()) {
    return;
  }

  // Group by priority class, served best class (lowest value) first.
  std::vector<int> order(flows.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  std::stable_sort(order.begin(), order.end(), [&flows](int a, int b) {
    return flows[static_cast<size_t>(a)]->priority < flows[static_cast<size_t>(b)]->priority;
  });

  // Remaining capacity persists across classes; lower classes only see what
  // higher classes left behind.
  static thread_local LinkSlotMap remaining_slot;
  remaining_slot.Prepare(net.topology().num_links());
  std::vector<double> remaining;
  for (const ActiveFlow* flow : flows) {
    assert(flow->path != nullptr && !flow->path->empty());
    for (LinkId l : *flow->path) {
      bool inserted = false;
      const int slot = remaining_slot.SlotFor(l, &inserted);
      if (inserted) {
        remaining.push_back(net.topology().link(l).capacity_bps);
      }
      (void)slot;
    }
  }

  size_t i = 0;
  while (i < order.size()) {
    const int prio = flows[static_cast<size_t>(order[i])]->priority;
    std::vector<ActiveFlow*> cls;
    while (i < order.size() && flows[static_cast<size_t>(order[i])]->priority == prio) {
      cls.push_back(flows[static_cast<size_t>(order[i])]);
      ++i;
    }

    // Weighted max-min within the class on the remaining capacity: one
    // resource per link (a priority class behaves like a single queue).
    static thread_local LinkSlotMap link_slot;
    link_slot.Prepare(net.topology().num_links());
    std::vector<ResourceWork> links;
    std::vector<std::vector<int>> resource_of(cls.size());
    for (size_t f = 0; f < cls.size(); ++f) {
      resource_of[f].reserve(cls[f]->path->size());
      for (LinkId l : *cls[f]->path) {
        bool inserted = false;
        const int slot = link_slot.SlotFor(l, &inserted);
        if (inserted) {
          ResourceWork work;
          work.capacity =
              std::max(remaining[static_cast<size_t>(remaining_slot.At(l))], 0.0);
          work.ResetForFill();
          links.push_back(std::move(work));
        }
        resource_of[f].push_back(slot);
      }
    }
    ProgressiveFill(cls, resource_of, &links, links.size());
    link_slot.Reset();

    for (const ActiveFlow* flow : cls) {
      for (LinkId l : *flow->path) {
        double& rem = remaining[static_cast<size_t>(remaining_slot.At(l))];
        rem = std::max(0.0, rem - flow->rate);
      }
    }
  }
  remaining_slot.Reset();
}

}  // namespace saba
