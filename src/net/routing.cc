#include "src/net/routing.h"

#include <cassert>
#include <deque>
#include <limits>

namespace saba {
namespace {

// splitmix64 finalizer.
uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t PathDigest(NodeId src, NodeId dst, uint64_t salt) {
  return Mix64((static_cast<uint64_t>(static_cast<uint32_t>(src)) << 32) |
               static_cast<uint64_t>(static_cast<uint32_t>(dst))) ^
         Mix64(salt * 0x9e3779b97f4a7c15ULL + 1);
}

Router::Router(const Topology* topo) : topo_(topo) {
  assert(topo != nullptr);
  seen_epoch_ = topo_->epoch();
  in_links_.resize(topo_->num_nodes());
  for (size_t l = 0; l < topo_->num_links(); ++l) {
    in_links_[static_cast<size_t>(topo_->link(static_cast<LinkId>(l)).dst)].push_back(
        static_cast<LinkId>(l));
  }
}

void Router::MaybeInvalidate() {
  const uint64_t epoch = topo_->epoch();
  if (epoch != seen_epoch_) {
    dist_cache_.clear();
    path_cache_.clear();
    seen_epoch_ = epoch;
  }
}

const std::vector<int32_t>& Router::DistanceTo(NodeId dst) {
  auto it = dist_cache_.find(dst);
  if (it != dist_cache_.end()) {
    return it->second;
  }
  std::vector<int32_t> dist(topo_->num_nodes(), std::numeric_limits<int32_t>::max());
  dist[static_cast<size_t>(dst)] = 0;
  std::deque<NodeId> frontier{dst};
  while (!frontier.empty()) {
    const NodeId n = frontier.front();
    frontier.pop_front();
    for (LinkId l : in_links_[static_cast<size_t>(n)]) {
      if (!topo_->LinkUsable(l)) {
        continue;
      }
      const NodeId prev = topo_->link(l).src;
      if (dist[static_cast<size_t>(prev)] == std::numeric_limits<int32_t>::max()) {
        dist[static_cast<size_t>(prev)] = dist[static_cast<size_t>(n)] + 1;
        frontier.push_back(prev);
      }
    }
  }
  return dist_cache_.emplace(dst, std::move(dist)).first->second;
}

const std::vector<LinkId>& Router::Route(NodeId src, NodeId dst, uint64_t salt) {
  MaybeInvalidate();
  const RouteKey key{src, dst, salt};
  auto it = path_cache_.find(key);
  if (it != path_cache_.end()) {
    return it->second;
  }

  // The digest seeds the per-hop ECMP tie-break; the cache above is keyed by
  // the full triple, so digest collisions cannot alias routes.
  const uint64_t digest = PathDigest(src, dst, salt);
  std::vector<LinkId> path;
  if (src != dst) {
    const std::vector<int32_t>& dist = DistanceTo(dst);
    if (dist[static_cast<size_t>(src)] != std::numeric_limits<int32_t>::max()) {
      NodeId u = src;
      while (u != dst) {
        // Collect all usable next hops on a shortest path.
        std::vector<LinkId> candidates;
        for (LinkId l : topo_->OutLinks(u)) {
          if (!topo_->LinkUsable(l)) {
            continue;
          }
          const NodeId v = topo_->link(l).dst;
          if (dist[static_cast<size_t>(v)] == dist[static_cast<size_t>(u)] - 1) {
            candidates.push_back(l);
          }
        }
        assert(!candidates.empty());
        const uint64_t h = Mix64(digest ^ (static_cast<uint64_t>(static_cast<uint32_t>(u)) << 17));
        const LinkId chosen = candidates[h % candidates.size()];
        path.push_back(chosen);
        u = topo_->link(chosen).dst;
      }
    }
    // else: unreachable at this epoch — cache the empty path; callers use
    // Reachable() to distinguish this from src == dst (routing.h contract).
  }
  return path_cache_.emplace(key, std::move(path)).first->second;
}

bool Router::Reachable(NodeId src, NodeId dst) {
  MaybeInvalidate();
  if (src == dst) {
    return true;
  }
  return DistanceTo(dst)[static_cast<size_t>(src)] != std::numeric_limits<int32_t>::max();
}

}  // namespace saba
