// Store-and-forward packet-level reference simulator.
//
// The paper's at-scale numbers come from Mellanox's OMNeT++ flit simulator;
// our evaluation engine is fluid. This module is the bridge between the two
// levels of abstraction: a small packet-granularity simulator with
//
//   * per-egress-port WRR across queues (deficit round robin, using the same
//     PortConfig SL->queue maps and weights the controller programs),
//   * deficit round robin across flows inside a queue (intra weights),
//   * finite per-queue buffers with hop-by-hop backpressure (InfiniBand's
//     credit-based flow control): a packet is only transmitted when the
//     downstream queue has a free slot.
//
// It is a validation instrument: tests cross-check the fluid allocator's
// multi-hop rates against packet-level truth. It is event-driven on the same
// EventScheduler as everything else and deterministic.

#ifndef SRC_NET_PACKET_SIM_H_
#define SRC_NET_PACKET_SIM_H_

#include <cstdint>
#include <vector>

#include "src/net/network.h"

namespace saba {

struct PacketFlowSpec {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  int sl = 0;
  double intra_weight = 1.0;
  // Bits to send; < 0 means backlogged for the whole horizon.
  double total_bits = -1;
  uint64_t path_salt = 0;
};

struct PacketSimConfig {
  double packet_bits = 8.0 * 1500;
  // Buffer slots per (port, queue) — the credit pool of a VL.
  int buffer_packets = 16;
  // Simulated horizon.
  double horizon_seconds = 1.0;
};

struct PacketSimResult {
  // Bits delivered end-to-end per flow within the horizon.
  std::vector<double> delivered_bits;
  // Packets still buffered in the fabric when the horizon ended.
  int packets_in_flight = 0;
};

// Runs the packet simulation on `network` (uses its topology, routing, port
// configs, but NOT its congestion model — packet dynamics produce their own
// inefficiencies). Flows with equal specs are distinguished by order.
PacketSimResult RunPacketSim(Network* network, const std::vector<PacketFlowSpec>& flows,
                             const PacketSimConfig& config);

}  // namespace saba

#endif  // SRC_NET_PACKET_SIM_H_
