#include "src/net/waterfill.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace saba {
namespace {

using Int128 = __int128;

// Normalized demand comparison: demand_a / weight_a <op> demand_b / weight_b
// by cross-multiplication. Demands are < 2^63 and weights < 2^41, so the
// products stay far inside the signed 128-bit range.
inline bool NormLess(Bps64 da, int64_t wa, Bps64 db, int64_t wb) {
  return static_cast<Int128>(da) * wb < static_cast<Int128>(db) * wa;
}

inline bool NormEqual(Bps64 da, int64_t wa, Bps64 db, int64_t wb) {
  return static_cast<Int128>(da) * wb == static_cast<Int128>(db) * wa;
}

// floor(weight * num / den); exact in 128-bit intermediates.
inline Bps64 FlooredShare(int64_t weight, Bps64 num, int64_t den) {
  assert(den > 0);
  if (num <= 0) {
    return 0;
  }
  return static_cast<Bps64>(static_cast<Int128>(weight) * num / den);
}

}  // namespace

WaterLevel SolveWaterfill(Bps64 capacity, const std::vector<WaterfillEntry>& entries,
                          std::vector<Bps64>* rates, const WaterfillOptions& options) {
  assert(capacity >= 0);
  const size_t n = entries.size();
  rates->assign(n, 0);
  if (n == 0) {
    return {capacity, 0};
  }

  int64_t weight_total = 0;
  for (const WaterfillEntry& e : entries) {
    assert(e.weight > 0);
    assert(e.demand >= 0);
    weight_total += e.weight;
  }

  Bps64 rem = capacity;           // Capacity minus demands of saturated entries.
  int64_t wsum = weight_total;    // Weights of entries not yet known saturated.
  std::vector<uint32_t> cand;     // Undecided entry indices.
  cand.reserve(n);

  // Tiny-flow fast path: a demand that fits its share of the *initial* fair
  // level can never be rate-limited (the level only rises as demands
  // saturate), so grant it outright and keep it out of the selection.
  if (options.enable_tiny_flow_opt) {
    for (uint32_t i = 0; i < n; ++i) {
      const WaterfillEntry& e = entries[i];
      if (e.demand != kElasticDemand &&
          static_cast<Int128>(e.demand) * weight_total <=
              static_cast<Int128>(capacity) * e.weight) {
        (*rates)[i] = e.demand;
        rem -= e.demand;
        wsum -= e.weight;
      } else {
        cand.push_back(i);
      }
    }
  } else {
    for (uint32_t i = 0; i < n; ++i) {
      cand.push_back(i);
    }
  }

  if (options.mode == WaterfillMode::kFullSort) {
    // Reference path: ascending normalized demand, then a single scan.
    std::sort(cand.begin(), cand.end(), [&](uint32_t a, uint32_t b) {
      return NormLess(entries[a].demand, entries[a].weight, entries[b].demand, entries[b].weight);
    });
    size_t cut = cand.size();
    for (size_t k = 0; k < cand.size(); ++k) {
      const WaterfillEntry& e = entries[cand[k]];
      // Saturates iff its normalized demand fits the level over the suffix.
      if (e.demand != kElasticDemand &&
          static_cast<Int128>(e.demand) * wsum <= static_cast<Int128>(rem) * e.weight) {
        (*rates)[cand[k]] = e.demand;
        rem -= e.demand;
        wsum -= e.weight;
      } else {
        cut = k;
        break;
      }
    }
    cand.erase(cand.begin(), cand.begin() + static_cast<ptrdiff_t>(cut));
  } else {
    // Partial selection: partition candidates around a pivot normalized
    // demand and recurse only into the side the water level falls on. The
    // "== pivot" band is always resolved, so every round strictly shrinks
    // the range. O(N) average, and no full order is ever materialized.
    size_t lo = 0;
    size_t hi = cand.size();
    while (lo < hi) {
      // Deterministic median-of-three pivot (no randomness: lint R1).
      const size_t mid = lo + (hi - lo) / 2;
      uint32_t pa = cand[lo];
      uint32_t pb = cand[mid];
      uint32_t pc = cand[hi - 1];
      auto norm_less = [&](uint32_t x, uint32_t y) {
        return NormLess(entries[x].demand, entries[x].weight, entries[y].demand,
                        entries[y].weight);
      };
      if (norm_less(pb, pa)) {
        std::swap(pa, pb);
      }
      if (norm_less(pc, pb)) {
        std::swap(pb, pc);
        if (norm_less(pb, pa)) {
          std::swap(pa, pb);
        }
      }
      const Bps64 pd = entries[pb].demand;
      const int64_t pw = entries[pb].weight;

      // Three-way partition of [lo, hi): [< pivot][== pivot][> pivot].
      size_t lt = lo;
      size_t eq = lo;
      size_t gt = hi;
      while (eq < gt) {
        const WaterfillEntry& e = entries[cand[eq]];
        if (NormLess(e.demand, e.weight, pd, pw)) {
          std::swap(cand[lt++], cand[eq++]);
        } else if (NormEqual(e.demand, e.weight, pd, pw)) {
          ++eq;
        } else {
          std::swap(cand[eq], cand[--gt]);
        }
      }

      Int128 below_demand = 0;  // Σ demand over [< pivot] ∪ [== pivot].
      int64_t below_weight = 0;
      bool has_elastic = false;
      for (size_t k = lo; k < eq; ++k) {
        const WaterfillEntry& e = entries[cand[k]];
        if (e.demand == kElasticDemand) {
          has_elastic = true;
          break;
        }
        below_demand += e.demand;
        below_weight += e.weight;
      }
      // All entries at or below the pivot saturate iff the level over the
      // rest still reaches the pivot's normalized demand.
      const bool saturates =
          !has_elastic && static_cast<Int128>(pd) * (wsum - below_weight) <=
                              static_cast<Int128>(pw) * (static_cast<Int128>(rem) - below_demand);
      if (saturates) {
        for (size_t k = lo; k < eq; ++k) {
          const WaterfillEntry& e = entries[cand[k]];
          (*rates)[cand[k]] = e.demand;
          rem -= e.demand;
          wsum -= e.weight;
        }
        lo = eq;
      } else {
        // The level sits below the pivot: everything from the pivot band up
        // is rate-limited (resolved later from the final level).
        hi = lt;
      }
    }
  }

  if (wsum == 0) {
    // Every demand fit; capacity was not exhausted.
    return {rem, 0};
  }
  const WaterLevel level{rem < 0 ? 0 : rem, wsum};
  for (uint32_t i : cand) {
    const WaterfillEntry& e = entries[i];
    const Bps64 share = FlooredShare(e.weight, level.num, level.den);
    (*rates)[i] = e.demand == kElasticDemand ? share : std::min(e.demand, share);
  }
  return level;
}

}  // namespace saba
