// Deterministic shortest-path routing with ECMP spreading.
//
// The real system reads switch forwarding tables through infiniband-diags
// (paper §7.2); here routes are computed on the topology directly: BFS
// shortest paths over *usable* links, with equal-cost next hops selected by a
// deterministic hash of (src, dst, salt). The salt lets a connection pin its
// path (as an InfiniBand connection does) while different connections spread
// across the fabric like ECMP. Both distance tables and resolved paths are
// cached, since the stage-structured workloads reuse the same node pairs
// across stages; the caches are invalidated whenever the topology's failure
// epoch() advances, so routes recompute around link/switch failures.

#ifndef SRC_NET_ROUTING_H_
#define SRC_NET_ROUTING_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/net/topology.h"

namespace saba {

// The mixed 64-bit digest of a (src, dst, salt) routing triple. It seeds the
// deterministic ECMP tie-break inside Route() and hashes RouteKey for the
// path cache — but it is never trusted as an identity: the cache compares
// full triples, so digest collisions can slow a lookup, never alias routes.
uint64_t PathDigest(NodeId src, NodeId dst, uint64_t salt);

// Exact identity of a cached route. Equality is field-wise; hashing goes
// through PathDigest.
struct RouteKey {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  uint64_t salt = 0;

  bool operator==(const RouteKey& o) const {
    return src == o.src && dst == o.dst && salt == o.salt;
  }
};

struct RouteKeyHash {
  size_t operator()(const RouteKey& k) const {
    return static_cast<size_t>(PathDigest(k.src, k.dst, k.salt));
  }
};

class Router {
 public:
  // The topology must outlive the router. Shape (nodes, links, endpoints) is
  // fixed after construction, but up/down state may change: whenever
  // Topology::epoch() advances, the router drops its caches on the next
  // query, so previously returned references are invalidated by any
  // SetLinkUp/SetNodeUp call. Capacity changes don't touch the epoch and
  // leave cached routes valid.
  explicit Router(const Topology* topo);

  // Returns the sequence of link ids along a shortest path over usable links
  // from src to dst. `salt` selects among equal-cost paths; the same
  // (src, dst, salt) at the same epoch always yields the same path.
  //
  // Contract for the empty return: the path is empty iff src == dst OR dst is
  // currently unreachable from src. Callers that inject failures distinguish
  // the two with Reachable(); the provided builders guarantee full
  // reachability at epoch 0, so construction-time callers may assert it. The
  // returned reference is stable until the next epoch change.
  const std::vector<LinkId>& Route(NodeId src, NodeId dst, uint64_t salt);

  // True iff a usable path from src to dst exists at the current epoch
  // (trivially true for src == dst).
  bool Reachable(NodeId src, NodeId dst);

  // Number of distinct cached paths (for tests and capacity planning).
  size_t cached_paths() const { return path_cache_.size(); }

 private:
  // Drops both caches if the topology's failure epoch moved since the last
  // query. Called on every public entry point.
  void MaybeInvalidate();

  // Hop counts from every node to `dst` over usable links, computed by
  // reverse BFS and cached. Unreachable nodes hold INT32_MAX.
  const std::vector<int32_t>& DistanceTo(NodeId dst);

  const Topology* topo_;
  // Failure epoch the caches were computed at.
  uint64_t seen_epoch_ = 0;
  // Reverse adjacency: in_links_[n] lists links whose dst is n.
  std::vector<std::vector<LinkId>> in_links_;
  // Both caches are lookup-only (find/emplace by key, plus size()); nothing
  // ever iterates them, so their order can't reach routing decisions.
  // saba-lint: unordered-iter-ok(lookup-only cache, never iterated)
  std::unordered_map<NodeId, std::vector<int32_t>> dist_cache_;
  // Keyed by the full (src, dst, salt) triple — PathDigest is only the
  // hasher, so a digest collision costs a bucket probe, never a wrong route.
  // saba-lint: unordered-iter-ok(lookup-only cache, never iterated)
  std::unordered_map<RouteKey, std::vector<LinkId>, RouteKeyHash> path_cache_;
};

}  // namespace saba

#endif  // SRC_NET_ROUTING_H_
