// Deterministic shortest-path routing with ECMP spreading.
//
// The real system reads switch forwarding tables through infiniband-diags
// (paper §7.2); here routes are computed on the topology directly: BFS
// shortest paths, with equal-cost next hops selected by a deterministic hash
// of (src, dst, salt). The salt lets a connection pin its path (as an
// InfiniBand connection does) while different connections spread across the
// fabric like ECMP. Both distance tables and resolved paths are cached, since
// the stage-structured workloads reuse the same node pairs across stages.

#ifndef SRC_NET_ROUTING_H_
#define SRC_NET_ROUTING_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/net/topology.h"

namespace saba {

class Router {
 public:
  // The topology must outlive the router and must not change shape after
  // construction (capacity changes are fine).
  explicit Router(const Topology* topo);

  // Returns the sequence of link ids from src to dst (empty if src == dst).
  // `salt` selects among equal-cost paths; the same (src, dst, salt) always
  // yields the same path. Returns an empty path and sets ok=false through the
  // return value being empty when dst is unreachable and src != dst; in the
  // provided builders every pair is reachable.
  const std::vector<LinkId>& Route(NodeId src, NodeId dst, uint64_t salt);

  // Number of distinct cached paths (for tests and capacity planning).
  size_t cached_paths() const { return path_cache_.size(); }

 private:
  // Hop counts from every node to `dst`, computed by reverse BFS and cached.
  const std::vector<int32_t>& DistanceTo(NodeId dst);

  const Topology* topo_;
  // Reverse adjacency: in_links_[n] lists links whose dst is n.
  std::vector<std::vector<LinkId>> in_links_;
  // Both caches are lookup-only (find/emplace by key, plus size()); nothing
  // ever iterates them, so their order can't reach routing decisions.
  // saba-lint: unordered-iter-ok(lookup-only cache, never iterated)
  std::unordered_map<NodeId, std::vector<int32_t>> dist_cache_;
  // saba-lint: unordered-iter-ok(lookup-only cache, never iterated)
  std::unordered_map<uint64_t, std::vector<LinkId>> path_cache_;
};

}  // namespace saba

#endif  // SRC_NET_ROUTING_H_
