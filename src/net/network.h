// The fabric: topology + per-port queue configuration + congestion model.
//
// Every directed link models an egress port. A port has a configurable number
// of queues (InfiniBand Virtual Lanes), a Service-Level-to-queue map, and
// either WFQ weights or a strict priority order — exactly the knobs Saba's
// controller programs (paper §5.2, §7.2). Ports on NICs (host egress links)
// carry the same structure, as InfiniBand NICs also implement VLs.

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <array>
#include <cassert>
#include <memory>
#include <vector>

#include "src/net/routing.h"
#include "src/net/topology.h"

namespace saba {

// InfiniBand supports 16 Service Levels (§5.3, §7.2).
inline constexpr int kNumServiceLevels = 16;

enum class PortScheduling {
  kWfq = 0,             // Weighted fair queuing across queues (Saba, baselines).
  kStrictPriority = 1,  // Queue 0 highest (Homa- and Sincronia-style policies).
};

// Per-egress-port configuration. Defaults put every SL in queue 0 with weight
// 1 — i.e. a single FIFO shared by everyone, which is the baseline setup.
struct PortConfig {
  int num_queues = 1;
  std::array<int, kNumServiceLevels> sl_to_queue{};  // Zero-initialized: all SLs -> queue 0.
  std::vector<double> queue_weights = {1.0};
  PortScheduling scheduling = PortScheduling::kWfq;
};

// Models the efficiency of the congestion-control protocol within one queue.
//
// The paper's baseline (InfiniBand FECN) only *approximates* max-min fairness
// and loses throughput under contention between unrelated applications
// (§8.1; see also the authors' ISPASS'20 switch study). We model this as a
// per-queue capacity efficiency that decays with the number of *distinct
// applications* whose flows share the queue at a link: homogeneous, paced
// flows from one application coexist well, heterogeneous mixes trigger FECN
// over-throttling. Saba inherits the same model — its benefit here comes
// solely from separating applications into queues, which is faithful to the
// deployed system (Saba does not change the congestion protocol, §5.2).
class CongestionModel {
 public:
  virtual ~CongestionModel() = default;
  // Fraction of the queue's bandwidth share actually attainable when
  // `distinct_apps` applications share the queue on a link. In [0, 1].
  virtual double QueueEfficiency(size_t distinct_apps) const = 0;
};

// Perfect protocol: full efficiency always (used for ideal max-min, Homa,
// Sincronia — all idealized in the paper's simulations).
class IdealCongestionModel : public CongestionModel {
 public:
  double QueueEfficiency(size_t) const override { return 1.0; }
};

// FECN-approximation: efficiency 1/(1 + gamma * ln^2(n) * (1 - 1/n)) for
// n >= 1 distinct applications sharing a queue. The collapse is superlinear
// in heterogeneity: two similar applications sharing a VL coexist almost
// losslessly (the testbed runs 16 jobs over 8 VLs and still wins big), while
// a single FIFO mixing a dozen applications loses half its goodput — the
// congestion-spreading regime the authors measured on a real InfiniBand
// switch (ISPASS'20). gamma = 0 reduces to ideal; the default reproduces the
// paper's baseline-vs-ideal-max-min gap (see EXPERIMENTS.md).
class FecnCongestionModel : public CongestionModel {
 public:
  explicit FecnCongestionModel(double gamma = 0.30) : gamma_(gamma) { assert(gamma >= 0); }
  double QueueEfficiency(size_t distinct_apps) const override;

 private:
  double gamma_;
};

// Topology + per-port configs + router + congestion model, owned together.
class Network {
 public:
  // Every port starts with `default_queues` queues, all SLs mapped to queue
  // 0, equal weights, WFQ scheduling, and an ideal congestion model.
  Network(Topology topology, int default_queues = 1);

  Topology& topology() { return topology_; }
  const Topology& topology() const { return topology_; }

  Router& router() { return router_; }

  PortConfig& port(LinkId link) { return ports_[static_cast<size_t>(link)]; }
  const PortConfig& port(LinkId link) const { return ports_[static_cast<size_t>(link)]; }

  // Reconfigures the queue count on every port (weights reset to equal, SL
  // map preserved modulo clamping to the new queue count).
  void SetQueueCountEverywhere(int num_queues);

  // Sets the SL->queue map entry on every port.
  void MapSlToQueueEverywhere(int sl, int queue);

  // Sets scheduling discipline on every port.
  void SetSchedulingEverywhere(PortScheduling scheduling);

  void SetCongestionModel(std::unique_ptr<CongestionModel> model);
  const CongestionModel& congestion() const { return *congestion_; }

 private:
  Topology topology_;
  Router router_;
  std::vector<PortConfig> ports_;
  std::unique_ptr<CongestionModel> congestion_;
};

}  // namespace saba

#endif  // SRC_NET_NETWORK_H_
