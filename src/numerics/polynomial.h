// Dense univariate polynomial with double coefficients.
//
// Saba's sensitivity models (Eq 1 in the paper) are polynomials in the
// bandwidth fraction b: D(b) = c0 + c1*b + ... + ck*b^k. This type stores the
// coefficients in ascending-degree order and provides the evaluation,
// differentiation, and arithmetic the controller's weight solver needs.

#ifndef SRC_NUMERICS_POLYNOMIAL_H_
#define SRC_NUMERICS_POLYNOMIAL_H_

#include <cstddef>
#include <string>
#include <vector>

namespace saba {

class Polynomial {
 public:
  // The zero polynomial.
  Polynomial() = default;

  // Coefficients in ascending-degree order: coeffs[i] multiplies x^i.
  explicit Polynomial(std::vector<double> coeffs);

  // Degree of the polynomial; the zero polynomial has degree 0.
  size_t degree() const { return coeffs_.empty() ? 0 : coeffs_.size() - 1; }

  const std::vector<double>& coefficients() const { return coeffs_; }

  // Coefficient of x^i; 0 for i beyond the stored degree.
  double coefficient(size_t i) const { return i < coeffs_.size() ? coeffs_[i] : 0.0; }

  // Evaluates at x using Horner's method.
  double Evaluate(double x) const;

  // First derivative.
  Polynomial Derivative() const;

  // Second derivative evaluated at x (used for convexity checks).
  double SecondDerivativeAt(double x) const;

  // True if the polynomial is convex over [lo, hi], checked by sampling the
  // second derivative at `samples` evenly spaced points (exact for degree
  // <= 3, where the second derivative is affine, with samples >= 2).
  bool IsConvexOn(double lo, double hi, int samples = 16) const;

  // True if the polynomial is non-increasing over [lo, hi], sampled like
  // IsConvexOn. Sensitivity models should be non-increasing in bandwidth.
  bool IsNonIncreasingOn(double lo, double hi, int samples = 32) const;

  Polynomial operator+(const Polynomial& other) const;
  Polynomial operator-(const Polynomial& other) const;
  Polynomial operator*(double scalar) const;

  // Human-readable form like "2.1 - 3.4*x + 1.2*x^2".
  std::string ToString() const;

 private:
  void TrimTrailingZeros();

  std::vector<double> coeffs_;
};

}  // namespace saba

#endif  // SRC_NUMERICS_POLYNOMIAL_H_
