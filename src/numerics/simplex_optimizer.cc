#include "src/numerics/simplex_optimizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace saba {
namespace {

double Clamp(double x, double lo, double hi) { return std::min(std::max(x, lo), hi); }

double TotalObjective(const std::vector<ScalarObjective>& objectives,
                      const std::vector<double>& w) {
  double total = 0;
  for (size_t i = 0; i < objectives.size(); ++i) {
    total += objectives[i].value(w[i]);
  }
  return total;
}

}  // namespace

std::vector<double> ProjectToCapacitySimplex(const std::vector<double>& v,
                                             const SimplexConstraints& c) {
  const size_t n = v.size();
  assert(n > 0);
  assert(c.lower_bound <= c.upper_bound);
  assert(static_cast<double>(n) * c.lower_bound <= c.capacity + 1e-12);
  assert(static_cast<double>(n) * c.upper_bound >= c.capacity - 1e-12);

  // The projection has the form w_i = clamp(v_i - tau, lo, hi) where tau is
  // chosen so the weights sum to capacity. The sum is non-increasing in tau;
  // bisect over a bracket that certainly contains the root.
  double lo_tau = -c.upper_bound;
  double hi_tau = c.upper_bound;
  for (double x : v) {
    lo_tau = std::min(lo_tau, x - c.upper_bound);
    hi_tau = std::max(hi_tau, x - c.lower_bound);
  }
  auto sum_at = [&](double tau) {
    double s = 0;
    for (double x : v) {
      s += Clamp(x - tau, c.lower_bound, c.upper_bound);
    }
    return s;
  };
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo_tau + hi_tau);
    // Fixed-point early exit: once the midpoint lands on an endpoint the
    // update below is a no-op and every remaining iteration recomputes the
    // identical state, so breaking is bit-exact with running the full cap.
    if (sum_at(mid) > c.capacity) {
      if (lo_tau == mid) break;
      lo_tau = mid;
    } else {
      if (hi_tau == mid) break;
      hi_tau = mid;
    }
  }
  const double tau = 0.5 * (lo_tau + hi_tau);
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) {
    w[i] = Clamp(v[i] - tau, c.lower_bound, c.upper_bound);
  }
  // Compensate residual rounding by nudging an interior coordinate so the
  // equality constraint holds tightly.
  double s = 0;
  for (double x : w) {
    s += x;
  }
  double residual = c.capacity - s;
  for (size_t i = 0; i < n && std::fabs(residual) > 1e-12; ++i) {
    const double adjusted = Clamp(w[i] + residual, c.lower_bound, c.upper_bound);
    residual -= adjusted - w[i];
    w[i] = adjusted;
  }
  return w;
}

SimplexMinimizeResult MinimizeConvexSeparable(const std::vector<ScalarObjective>& objectives,
                                              const SimplexConstraints& constraints) {
  const size_t n = objectives.size();
  assert(n > 0);
  const double lo = constraints.lower_bound;
  const double hi = constraints.upper_bound;

  // KKT: w_i minimizes f_i(w_i) - lambda*w_i over [lo, hi]; for convex f_i the
  // minimizer is w_i(lambda) = clamp((f_i')^{-1}(lambda), lo, hi), found by
  // bisection on w since f_i' is non-decreasing. sum_i w_i(lambda) is
  // non-decreasing in lambda, so an outer bisection matches the capacity.
  auto w_of_lambda = [&](size_t i, double lambda) {
    const auto& df = objectives[i].derivative;
    if (df(lo) >= lambda) {
      return lo;
    }
    if (df(hi) <= lambda) {
      return hi;
    }
    double a = lo;
    double b = hi;
    for (int it = 0; it < 80; ++it) {
      const double m = 0.5 * (a + b);
      if (df(m) < lambda) {
        if (a == m) break;  // Fixed point: the bracket can no longer move.
        a = m;
      } else {
        if (b == m) break;
        b = m;
      }
    }
    return 0.5 * (a + b);
  };

  double lambda_lo = std::numeric_limits<double>::infinity();
  double lambda_hi = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    lambda_lo = std::min(lambda_lo, objectives[i].derivative(lo));
    lambda_hi = std::max(lambda_hi, objectives[i].derivative(hi));
  }
  // Widen slightly so the bracket is strict even with flat derivatives.
  lambda_lo -= 1.0;
  lambda_hi += 1.0;

  SimplexMinimizeResult result;
  // This loop historically ran its full cap unconditionally — 200 outer
  // times n * 80 inner derivative evaluations per solve — which is what made
  // the "generic path" weight-solve benchmarks two orders of magnitude
  // slower than the closed-form convex path. The dual bracket collapses to
  // adjacent floats after ~60 halvings; past that point every iteration is a
  // bit-identical no-op, so the fixed-point exits here and in w_of_lambda
  // change nothing but wall-clock.
  for (int it = 0; it < 200; ++it) {
    const double lambda = 0.5 * (lambda_lo + lambda_hi);
    double s = 0;
    for (size_t i = 0; i < n; ++i) {
      s += w_of_lambda(i, lambda);
    }
    result.iterations = static_cast<size_t>(it) + 1;
    if (s < constraints.capacity) {
      if (lambda_lo == lambda) break;
      lambda_lo = lambda;
    } else {
      if (lambda_hi == lambda) break;
      lambda_hi = lambda;
    }
  }
  const double lambda = 0.5 * (lambda_lo + lambda_hi);
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) {
    w[i] = w_of_lambda(i, lambda);
  }
  // Tighten the equality constraint exactly (bisection leaves ~1e-12 slack).
  w = ProjectToCapacitySimplex(w, constraints);
  result.weights = std::move(w);
  result.objective = TotalObjective(objectives, result.weights);
  result.converged = true;
  return result;
}

SimplexMinimizeResult MinimizeSeparableProjectedGradient(
    const std::vector<ScalarObjective>& objectives, const SimplexConstraints& constraints,
    Rng* rng, const ProjectedGradientOptions& options) {
  const size_t n = objectives.size();
  assert(n > 0);
  assert(rng != nullptr);

  SimplexMinimizeResult best;
  best.objective = std::numeric_limits<double>::infinity();

  const size_t restarts = std::max<size_t>(1, options.restarts);
  for (size_t restart = 0; restart < restarts; ++restart) {
    // Start point: equal split on the first restart, then random feasible
    // points (exponential draws normalized onto the simplex).
    std::vector<double> w(n, constraints.capacity / static_cast<double>(n));
    if (restart > 0) {
      double total = 0;
      for (size_t i = 0; i < n; ++i) {
        w[i] = rng->Exponential(1.0);
        total += w[i];
      }
      for (size_t i = 0; i < n; ++i) {
        w[i] = w[i] / total * constraints.capacity;
      }
      w = ProjectToCapacitySimplex(w, constraints);
    }

    double fw = TotalObjective(objectives, w);
    double step = options.initial_step;
    size_t iterations = 0;
    bool converged = false;
    for (size_t it = 0; it < options.max_iterations; ++it) {
      iterations = it + 1;
      std::vector<double> grad(n);
      for (size_t i = 0; i < n; ++i) {
        grad[i] = objectives[i].derivative(w[i]);
      }
      // Backtracking line search on the projected step.
      bool improved = false;
      double trial_step = step;
      for (int bt = 0; bt < 30; ++bt) {
        std::vector<double> cand(n);
        for (size_t i = 0; i < n; ++i) {
          cand[i] = w[i] - trial_step * grad[i];
        }
        cand = ProjectToCapacitySimplex(cand, constraints);
        const double fc = TotalObjective(objectives, cand);
        if (fc < fw - 1e-15) {
          const double gain = fw - fc;
          w = std::move(cand);
          fw = fc;
          improved = true;
          step = trial_step * 1.5;  // Allow the step to grow again.
          if (gain < options.tolerance) {
            converged = true;
          }
          break;
        }
        trial_step *= 0.5;
      }
      if (!improved) {
        converged = true;
        break;
      }
      if (converged) {
        break;
      }
    }

    if (fw < best.objective) {
      best.weights = w;
      best.objective = fw;
      best.iterations = iterations;
      best.converged = converged;
    }
  }
  return best;
}

}  // namespace saba
