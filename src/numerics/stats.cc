#include "src/numerics/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace saba {

double Mean(const std::vector<double>& xs) {
  assert(!xs.empty());
  double s = 0;
  for (double x : xs) {
    s += x;
  }
  return s / static_cast<double>(xs.size());
}

double GeometricMean(const std::vector<double>& xs) {
  assert(!xs.empty());
  double log_sum = 0;
  for (double x : xs) {
    assert(x > 0 && "geometric mean requires positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) {
    return 0.0;
  }
  const double mean = Mean(xs);
  double ss = 0;
  for (double x : xs) {
    ss += (x - mean) * (x - mean);
  }
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double Percentile(std::vector<double> xs, double p) {
  assert(!xs.empty());
  assert(p >= 0 && p <= 100);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) {
    return xs[0];
  }
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double Min(const std::vector<double>& xs) {
  assert(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  assert(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

std::vector<std::pair<double, double>> EmpiricalCdf(std::vector<double> xs, size_t points) {
  assert(!xs.empty());
  assert(points >= 2);
  std::sort(xs.begin(), xs.end());
  std::vector<std::pair<double, double>> cdf;
  cdf.reserve(points);
  for (size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points - 1);
    const double rank = q * static_cast<double>(xs.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    cdf.emplace_back(xs[lo] * (1.0 - frac) + xs[hi] * frac, q);
  }
  return cdf;
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  assert(count_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace saba
