#include "src/numerics/regression.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/numerics/linalg.h"

namespace saba {

Polynomial FitPolynomial(const std::vector<Sample>& samples, size_t degree) {
  assert(samples.size() >= degree + 1 && "underdetermined polynomial fit");
  const size_t m = samples.size();
  const size_t n = degree + 1;
  Matrix vandermonde(m, n);
  std::vector<double> rhs(m);
  for (size_t i = 0; i < m; ++i) {
    double pow = 1.0;
    for (size_t j = 0; j < n; ++j) {
      vandermonde.at(i, j) = pow;
      pow *= samples[i].b;
    }
    rhs[i] = samples[i].d;
  }
  return Polynomial(LeastSquaresQr(vandermonde, rhs));
}

double RSquared(const Polynomial& model, const std::vector<Sample>& samples) {
  assert(!samples.empty());
  double mean = 0.0;
  for (const Sample& s : samples) {
    mean += s.d;
  }
  mean /= static_cast<double>(samples.size());

  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (const Sample& s : samples) {
    const double pred = model.Evaluate(s.b);
    ss_res += (s.d - pred) * (s.d - pred);
    ss_tot += (s.d - mean) * (s.d - mean);
  }
  // Guard the all-observations-equal case against floating-point dust: both
  // sums can be a few ulps instead of exact zeros.
  const double scale = std::max(1.0, mean * mean) * static_cast<double>(samples.size());
  if (ss_tot <= 1e-20 * scale) {
    return ss_res <= 1e-18 * scale ? 1.0 : 0.0;
  }
  return 1.0 - ss_res / ss_tot;
}

double RSquaredClamped(const Polynomial& model, const std::vector<Sample>& samples) {
  return std::clamp(RSquared(model, samples), 0.0, 1.0);
}

}  // namespace saba
