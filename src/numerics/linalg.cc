#include "src/numerics/linalg.h"

#include <cassert>
#include <cmath>

namespace saba {

std::vector<double> LeastSquaresQr(const Matrix& a, const std::vector<double>& b) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  assert(m >= n && "least squares requires a tall matrix");
  assert(b.size() == m);

  // Work on copies: R is built in-place in `r`, and Q^T is applied to `rhs`
  // as each Householder reflector is formed.
  Matrix r = a;
  std::vector<double> rhs = b;

  for (size_t k = 0; k < n; ++k) {
    // Build the Householder vector for column k below the diagonal.
    double norm = 0.0;
    for (size_t i = k; i < m; ++i) {
      norm += r.at(i, k) * r.at(i, k);
    }
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      continue;  // Column already zero; pivot stays zero (rank-deficient).
    }
    const double alpha = r.at(k, k) >= 0 ? -norm : norm;
    std::vector<double> v(m - k);
    v[0] = r.at(k, k) - alpha;
    for (size_t i = k + 1; i < m; ++i) {
      v[i - k] = r.at(i, k);
    }
    double vnorm2 = 0.0;
    for (double x : v) {
      vnorm2 += x * x;
    }
    if (vnorm2 == 0.0) {
      continue;
    }

    // Apply the reflector H = I - 2 v v^T / (v^T v) to the trailing block.
    for (size_t j = k; j < n; ++j) {
      double dot = 0.0;
      for (size_t i = k; i < m; ++i) {
        dot += v[i - k] * r.at(i, j);
      }
      const double scale = 2.0 * dot / vnorm2;
      for (size_t i = k; i < m; ++i) {
        r.at(i, j) -= scale * v[i - k];
      }
    }
    // Apply to the right-hand side.
    {
      double dot = 0.0;
      for (size_t i = k; i < m; ++i) {
        dot += v[i - k] * rhs[i];
      }
      const double scale = 2.0 * dot / vnorm2;
      for (size_t i = k; i < m; ++i) {
        rhs[i] -= scale * v[i - k];
      }
    }
  }

  // Back-substitution on the upper-triangular R (top n rows).
  std::vector<double> x(n, 0.0);
  for (size_t kk = n; kk > 0; --kk) {
    const size_t k = kk - 1;
    double sum = rhs[k];
    for (size_t j = k + 1; j < n; ++j) {
      sum -= r.at(k, j) * x[j];
    }
    const double pivot = r.at(k, k);
    if (std::fabs(pivot) < 1e-12) {
      x[k] = 0.0;  // Rank-deficient: leave this component at zero.
    } else {
      x[k] = sum / pivot;
    }
  }
  return x;
}

double SquaredDistance(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double EuclideanDistance(const std::vector<double>& a, const std::vector<double>& b) {
  return std::sqrt(SquaredDistance(a, b));
}

std::vector<double> Midpoint(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  std::vector<double> m(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    m[i] = 0.5 * (a[i] + b[i]);
  }
  return m;
}

std::vector<double> MeanVector(const std::vector<std::vector<double>>& vs) {
  assert(!vs.empty());
  std::vector<double> mean(vs[0].size(), 0.0);
  for (const auto& v : vs) {
    assert(v.size() == mean.size());
    for (size_t i = 0; i < v.size(); ++i) {
      mean[i] += v[i];
    }
  }
  for (double& x : mean) {
    x /= static_cast<double>(vs.size());
  }
  return mean;
}

}  // namespace saba
