// Polynomial regression and goodness-of-fit, as used by Saba's offline
// profiler (paper §4.1-§4.2).
//
// The profiler collects samples (b_i, d_i) — bandwidth fraction versus
// measured slowdown — and fits D(b) = sum_j c_j b^j by least squares. Model
// quality is reported as R^2, the coefficient of determination, exactly as the
// paper evaluates its sensitivity models (Fig 6).

#ifndef SRC_NUMERICS_REGRESSION_H_
#define SRC_NUMERICS_REGRESSION_H_

#include <cstddef>
#include <vector>

#include "src/numerics/polynomial.h"

namespace saba {

// One profiling observation: slowdown `d` measured at bandwidth fraction `b`
// (b in (0, 1]; d >= 1 for well-formed measurements).
struct Sample {
  double b = 0;
  double d = 0;
};

// Fits a polynomial of the given degree to the samples by least squares.
// Requires samples.size() >= degree + 1. Degrees are small (the paper uses
// k <= 3) and the Vandermonde system is solved by Householder QR.
Polynomial FitPolynomial(const std::vector<Sample>& samples, size_t degree);

// Coefficient of determination of `model` against `samples`:
//   R^2 = 1 - SS_res / SS_tot.
// Follows the standard convention: if SS_tot == 0 (all observations equal),
// returns 1 when the residuals are ~0 and 0 otherwise. Can be negative when
// the model fits worse than the mean; callers that plot accuracy may clamp.
double RSquared(const Polynomial& model, const std::vector<Sample>& samples);

// RSquared clamped into [0, 1] — the form the paper's figures display.
double RSquaredClamped(const Polynomial& model, const std::vector<Sample>& samples);

}  // namespace saba

#endif  // SRC_NUMERICS_REGRESSION_H_
