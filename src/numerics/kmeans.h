// K-means clustering (Lloyd's algorithm with k-means++ seeding).
//
// Saba groups applications by the coefficients of their sensitivity models to
// map hundreds of applications onto the network's limited priority levels
// (paper §5.3.1, citing MacQueen's K-means). Points are the coefficient
// vectors; the centroid of each group represents the group's sensitivity.

#ifndef SRC_NUMERICS_KMEANS_H_
#define SRC_NUMERICS_KMEANS_H_

#include <cstddef>
#include <vector>

#include "src/sim/rng.h"

namespace saba {

struct KMeansResult {
  // assignment[i] is the cluster index of points[i], in [0, k).
  std::vector<size_t> assignment;
  // centroids[c] is the mean of the points assigned to cluster c. Every
  // centroid has at least one assigned point.
  std::vector<std::vector<double>> centroids;
  // Sum over points of squared distance to their centroid (the k-means
  // objective at convergence).
  double inertia = 0;
  // Lloyd iterations executed.
  size_t iterations = 0;
};

struct KMeansOptions {
  size_t max_iterations = 100;
  // Convergence threshold on centroid movement (max over centroids of the
  // squared displacement in one iteration).
  double tolerance = 1e-10;
  // Independent restarts; the run with the lowest inertia wins.
  size_t restarts = 4;
};

// Clusters `points` (all the same dimension, at least one point) into
// min(k, points.size()) groups. `rng` drives the k-means++ seeding; with a
// fixed seed the result is deterministic.
KMeansResult KMeans(const std::vector<std::vector<double>>& points, size_t k, Rng* rng,
                    const KMeansOptions& options = {});

}  // namespace saba

#endif  // SRC_NUMERICS_KMEANS_H_
