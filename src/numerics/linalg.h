// Small dense linear-algebra helpers.
//
// The profiler's polynomial regression needs a numerically stable
// least-squares solve on tall Vandermonde matrices; the clustering code needs
// Euclidean geometry on coefficient vectors. This file provides exactly that
// — a row-major Matrix, Householder QR least squares, and vector helpers —
// with no external dependency.

#ifndef SRC_NUMERICS_LINALG_H_
#define SRC_NUMERICS_LINALG_H_

#include <cstddef>
#include <vector>

namespace saba {

// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

// Solves min_x ||A x - b||_2 for a tall (rows >= cols) full-column-rank A via
// Householder QR. Returns the solution vector of size A.cols(). If A is
// rank-deficient within tolerance, the affected solution entries are set by
// back-substitution with zero pivoting contribution (the caller should
// validate the fit, e.g. through R^2).
std::vector<double> LeastSquaresQr(const Matrix& a, const std::vector<double>& b);

// Euclidean distance between equal-length vectors.
double EuclideanDistance(const std::vector<double>& a, const std::vector<double>& b);

// Squared Euclidean distance (avoids the sqrt in inner loops).
double SquaredDistance(const std::vector<double>& a, const std::vector<double>& b);

// Component-wise midpoint of two equal-length vectors.
std::vector<double> Midpoint(const std::vector<double>& a, const std::vector<double>& b);

// Component-wise mean of a non-empty set of equal-length vectors.
std::vector<double> MeanVector(const std::vector<std::vector<double>>& vs);

}  // namespace saba

#endif  // SRC_NUMERICS_LINALG_H_
