#include "src/numerics/hierarchical.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "src/numerics/linalg.h"

namespace saba {

HierarchicalClustering HierarchicalClustering::Build(
    const std::vector<std::vector<double>>& points) {
  assert(!points.empty());
  HierarchicalClustering hc;
  hc.num_leaves_ = points.size();

  // Working state: active clusters, each with a centroid and member leaves.
  struct Active {
    std::vector<double> centroid;
    std::vector<size_t> leaves;
  };
  std::vector<Active> active;
  active.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    active.push_back({points[i], {i}});
  }

  auto snapshot = [&hc, &active]() {
    Level level;
    level.cluster_of.assign(hc.num_leaves_, 0);
    level.centroids.reserve(active.size());
    for (size_t c = 0; c < active.size(); ++c) {
      level.centroids.push_back(active[c].centroid);
      for (size_t leaf : active[c].leaves) {
        level.cluster_of[leaf] = c;
      }
    }
    hc.levels_.push_back(std::move(level));
  };

  snapshot();  // Level 0: singletons.

  while (active.size() > 1) {
    // Find the closest pair of active clusters (O(n^2); n is the PL count,
    // at most 16 in any real deployment, so this is never hot).
    double best = std::numeric_limits<double>::infinity();
    size_t bi = 0;
    size_t bj = 1;
    for (size_t i = 0; i < active.size(); ++i) {
      for (size_t j = i + 1; j < active.size(); ++j) {
        const double d = SquaredDistance(active[i].centroid, active[j].centroid);
        if (d < best) {
          best = d;
          bi = i;
          bj = j;
        }
      }
    }
    // Merge: centroid is the Euclidean midpoint of the two children (§5.3.2).
    Active merged;
    merged.centroid = Midpoint(active[bi].centroid, active[bj].centroid);
    merged.leaves = active[bi].leaves;
    merged.leaves.insert(merged.leaves.end(), active[bj].leaves.begin(), active[bj].leaves.end());
    // Remove j first (j > i) so indices stay valid.
    active.erase(active.begin() + static_cast<long>(bj));
    active.erase(active.begin() + static_cast<long>(bi));
    active.push_back(std::move(merged));
    snapshot();
  }
  return hc;
}

size_t HierarchicalClustering::ClusterOf(size_t level, size_t leaf) const {
  assert(level < levels_.size());
  assert(leaf < num_leaves_);
  return levels_[level].cluster_of[leaf];
}

const std::vector<double>& HierarchicalClustering::Centroid(size_t level, size_t cluster) const {
  assert(level < levels_.size());
  assert(cluster < levels_[level].centroids.size());
  return levels_[level].centroids[cluster];
}

HierarchicalClustering::Grouping HierarchicalClustering::GroupSubset(
    const std::vector<size_t>& leaves, size_t max_groups) const {
  assert(!leaves.empty());
  assert(max_groups >= 1);

  for (size_t level = 0; level < levels_.size(); ++level) {
    // Collect the distinct clusters the present leaves map to at this level.
    std::vector<size_t> cluster_ids;
    cluster_ids.reserve(leaves.size());
    for (size_t leaf : leaves) {
      const size_t c = ClusterOf(level, leaf);
      if (std::find(cluster_ids.begin(), cluster_ids.end(), c) == cluster_ids.end()) {
        cluster_ids.push_back(c);
      }
    }
    if (cluster_ids.size() > max_groups) {
      continue;
    }
    Grouping grouping;
    grouping.level = level;
    grouping.groups.resize(cluster_ids.size());
    grouping.centroids.reserve(cluster_ids.size());
    for (size_t g = 0; g < cluster_ids.size(); ++g) {
      grouping.centroids.push_back(levels_[level].centroids[cluster_ids[g]]);
    }
    for (size_t leaf : leaves) {
      const size_t c = ClusterOf(level, leaf);
      const size_t g = static_cast<size_t>(
          std::find(cluster_ids.begin(), cluster_ids.end(), c) - cluster_ids.begin());
      grouping.groups[g].push_back(leaf);
    }
    return grouping;
  }
  // Unreachable: the deepest level has one cluster, which satisfies any
  // max_groups >= 1.
  assert(false && "dendrogram must terminate in a single cluster");
  return {};
}

}  // namespace saba
