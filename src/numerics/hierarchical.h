// Agglomerative hierarchical clustering with midpoint merging.
//
// Saba's controller must map priority levels (PLs) onto a per-port number of
// switch queues that varies across switches and with the set of flows present
// at each port. To avoid re-clustering at every port, the paper (§5.3.2)
// precomputes a *hierarchy*: level 0 holds every PL in its own cluster, and
// each subsequent level merges the two closest clusters, the merged cluster's
// coefficients being the Euclidean midpoint of its children (the "fast
// hierarchical clustering" of Müllner's fastcluster). At runtime, for each
// switch output port, the controller walks the hierarchy from the top
// (finest) level down until the PLs present at that port occupy at most Q
// clusters, then maps each cluster to a queue.

#ifndef SRC_NUMERICS_HIERARCHICAL_H_
#define SRC_NUMERICS_HIERARCHICAL_H_

#include <cstddef>
#include <vector>

namespace saba {

class HierarchicalClustering {
 public:
  // Builds the full dendrogram over `points` (one leaf per point; all points
  // the same dimension; at least one point). Level L has (n - L) clusters,
  // for L in [0, n-1]; the deepest level has a single cluster.
  static HierarchicalClustering Build(const std::vector<std::vector<double>>& points);

  // Number of leaves (the original points).
  size_t num_leaves() const { return num_leaves_; }

  // Number of levels (== num_leaves(); level 0 is all-singletons).
  size_t num_levels() const { return levels_.size(); }

  // Cluster index of `leaf` at `level`, in [0, num_leaves() - level).
  size_t ClusterOf(size_t level, size_t leaf) const;

  // Representative coefficients (midpoint-merged) of `cluster` at `level`.
  const std::vector<double>& Centroid(size_t level, size_t cluster) const;

  // Result of grouping a subset of leaves under a queue-count constraint.
  struct Grouping {
    // The hierarchy level that satisfied the constraint.
    size_t level = 0;
    // groups[g] lists the leaf ids in group g; groups are non-empty.
    std::vector<std::vector<size_t>> groups;
    // centroids[g] is the dendrogram centroid of the cluster behind group g.
    std::vector<std::vector<double>> centroids;
  };

  // Finds the shallowest (finest) level at which the given leaves fall into
  // at most `max_groups` clusters, and returns that grouping. This is the
  // per-port PL-to-queue mapping step of §5.3.2. Requires a non-empty,
  // duplicate-free `leaves` and max_groups >= 1.
  Grouping GroupSubset(const std::vector<size_t>& leaves, size_t max_groups) const;

 private:
  struct Level {
    // cluster_of[leaf] -> cluster id at this level.
    std::vector<size_t> cluster_of;
    // centroid per cluster id.
    std::vector<std::vector<double>> centroids;
  };

  HierarchicalClustering() = default;

  size_t num_leaves_ = 0;
  std::vector<Level> levels_;
};

}  // namespace saba

#endif  // SRC_NUMERICS_HIERARCHICAL_H_
