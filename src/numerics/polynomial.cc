#include "src/numerics/polynomial.h"

#include <cassert>
#include <cmath>
#include <sstream>
#include <utility>

namespace saba {

Polynomial::Polynomial(std::vector<double> coeffs) : coeffs_(std::move(coeffs)) {
  TrimTrailingZeros();
}

void Polynomial::TrimTrailingZeros() {
  while (coeffs_.size() > 1 && coeffs_.back() == 0.0) {
    coeffs_.pop_back();
  }
}

double Polynomial::Evaluate(double x) const {
  double acc = 0.0;
  for (size_t i = coeffs_.size(); i > 0; --i) {
    acc = acc * x + coeffs_[i - 1];
  }
  return acc;
}

Polynomial Polynomial::Derivative() const {
  if (coeffs_.size() <= 1) {
    return Polynomial({0.0});
  }
  std::vector<double> d(coeffs_.size() - 1);
  for (size_t i = 1; i < coeffs_.size(); ++i) {
    d[i - 1] = coeffs_[i] * static_cast<double>(i);
  }
  return Polynomial(std::move(d));
}

double Polynomial::SecondDerivativeAt(double x) const {
  return Derivative().Derivative().Evaluate(x);
}

bool Polynomial::IsConvexOn(double lo, double hi, int samples) const {
  assert(lo <= hi && samples >= 2);
  const Polynomial d2 = Derivative().Derivative();
  for (int i = 0; i < samples; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / (samples - 1);
    if (d2.Evaluate(x) < -1e-9) {
      return false;
    }
  }
  return true;
}

bool Polynomial::IsNonIncreasingOn(double lo, double hi, int samples) const {
  assert(lo <= hi && samples >= 2);
  const Polynomial d = Derivative();
  for (int i = 0; i < samples; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / (samples - 1);
    if (d.Evaluate(x) > 1e-9) {
      return false;
    }
  }
  return true;
}

Polynomial Polynomial::operator+(const Polynomial& other) const {
  std::vector<double> out(std::max(coeffs_.size(), other.coeffs_.size()), 0.0);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = coefficient(i) + other.coefficient(i);
  }
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator-(const Polynomial& other) const {
  std::vector<double> out(std::max(coeffs_.size(), other.coeffs_.size()), 0.0);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = coefficient(i) - other.coefficient(i);
  }
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator*(double scalar) const {
  std::vector<double> out = coeffs_;
  for (double& c : out) {
    c *= scalar;
  }
  return Polynomial(std::move(out));
}

std::string Polynomial::ToString() const {
  if (coeffs_.empty()) {
    return "0";
  }
  std::ostringstream os;
  bool first = true;
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    const double c = coeffs_[i];
    if (c == 0.0 && coeffs_.size() > 1) {
      continue;
    }
    if (first) {
      os << c;
      first = false;
    } else {
      os << (c < 0 ? " - " : " + ") << std::fabs(c);
    }
    if (i == 1) {
      os << "*x";
    } else if (i > 1) {
      os << "*x^" << i;
    }
  }
  if (first) {
    return "0";
  }
  return os.str();
}

}  // namespace saba
