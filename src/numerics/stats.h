// Descriptive statistics used by the experiment harness.
//
// The paper reports geometric-mean speedups ("the average speedup reports the
// geometric mean", §8.1), percentile latencies (Fig 12) and CDFs (Fig 8b).

#ifndef SRC_NUMERICS_STATS_H_
#define SRC_NUMERICS_STATS_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace saba {

// Arithmetic mean. Requires a non-empty input.
double Mean(const std::vector<double>& xs);

// Geometric mean. Requires all entries strictly positive.
double GeometricMean(const std::vector<double>& xs);

// Sample standard deviation (n-1 denominator); 0 for size < 2.
double StdDev(const std::vector<double>& xs);

// The p-th percentile (p in [0, 100]) by linear interpolation between closest
// ranks. Requires a non-empty input; does not mutate it.
double Percentile(std::vector<double> xs, double p);

// Minimum / maximum; require non-empty inputs.
double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);

// Empirical CDF: returns (value, cumulative fraction) pairs at `points`
// evenly spaced quantiles, suitable for plotting. Requires non-empty input.
std::vector<std::pair<double, double>> EmpiricalCdf(std::vector<double> xs,
                                                    size_t points = 100);

// Incremental accumulator when values arrive one at a time.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const;
  double variance() const;  // Sample variance (n-1); 0 for count < 2.
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;  // Welford's running sum of squared deviations.
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace saba

#endif  // SRC_NUMERICS_STATS_H_
