#include "src/numerics/kmeans.h"

#include <cassert>
#include <limits>

#include "src/numerics/linalg.h"

namespace saba {
namespace {

// k-means++ seeding: first centroid uniform, subsequent centroids sampled
// proportionally to squared distance from the nearest already-chosen one.
std::vector<std::vector<double>> SeedPlusPlus(const std::vector<std::vector<double>>& points,
                                              size_t k, Rng* rng) {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  centroids.push_back(
      points[static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(points.size()) - 1))]);
  std::vector<double> dist2(points.size(), std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    for (size_t i = 0; i < points.size(); ++i) {
      const double d = SquaredDistance(points[i], centroids.back());
      if (d < dist2[i]) {
        dist2[i] = d;
      }
    }
    double total = 0;
    for (double d : dist2) {
      total += d;
    }
    if (total <= 0) {
      // All points coincide with existing centroids; duplicate one.
      centroids.push_back(centroids.back());
      continue;
    }
    double x = rng->Uniform(0, total);
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      x -= dist2[i];
      if (x < 0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

KMeansResult LloydOnce(const std::vector<std::vector<double>>& points, size_t k, Rng* rng,
                       const KMeansOptions& options) {
  KMeansResult result;
  result.centroids = SeedPlusPlus(points, k, rng);
  result.assignment.assign(points.size(), 0);

  const size_t dim = points[0].size();
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Assignment step.
    for (size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      size_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        const double d = SquaredDistance(points[i], result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      result.assignment[i] = best_c;
    }

    // Update step.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < points.size(); ++i) {
      const size_t c = result.assignment[i];
      ++counts[c];
      for (size_t j = 0; j < dim; ++j) {
        sums[c][j] += points[i][j];
      }
    }
    double max_move2 = 0;
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: reseed to the point farthest from its centroid so
        // every centroid always owns at least one point at convergence.
        double worst = -1;
        size_t worst_i = 0;
        for (size_t i = 0; i < points.size(); ++i) {
          const double d = SquaredDistance(points[i], result.centroids[result.assignment[i]]);
          if (d > worst) {
            worst = d;
            worst_i = i;
          }
        }
        result.centroids[c] = points[worst_i];
        result.assignment[worst_i] = c;
        max_move2 = std::numeric_limits<double>::infinity();
        continue;
      }
      std::vector<double> next(dim);
      for (size_t j = 0; j < dim; ++j) {
        next[j] = sums[c][j] / static_cast<double>(counts[c]);
      }
      const double move2 = SquaredDistance(next, result.centroids[c]);
      if (move2 > max_move2) {
        max_move2 = move2;
      }
      result.centroids[c] = std::move(next);
    }
    if (max_move2 <= options.tolerance) {
      break;
    }
  }

  result.inertia = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    result.inertia += SquaredDistance(points[i], result.centroids[result.assignment[i]]);
  }
  return result;
}

}  // namespace

KMeansResult KMeans(const std::vector<std::vector<double>>& points, size_t k, Rng* rng,
                    const KMeansOptions& options) {
  assert(!points.empty());
  assert(k >= 1);
  assert(rng != nullptr);
  k = std::min(k, points.size());

  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  const size_t restarts = std::max<size_t>(1, options.restarts);
  for (size_t r = 0; r < restarts; ++r) {
    KMeansResult run = LloydOnce(points, k, rng, options);
    if (run.inertia < best.inertia) {
      best = std::move(run);
    }
  }
  return best;
}

}  // namespace saba
