// Separable minimization on a capacity simplex.
//
// Saba's controller solves, per switch output port (paper Eq 2):
//
//     min  sum_i D_i(w_i)   subject to   sum_i w_i = C_saba,  w_i >= w_min
//
// where each D_i is an application's polynomial sensitivity model. The paper
// uses NLopt's SLSQP; this in-tree replacement provides two paths:
//
//  * DualBisection — exact for convex non-increasing D_i: the KKT conditions
//    reduce to finding a multiplier lambda with D_i'(w_i) = lambda (clamped to
//    the box); sum_i w_i(lambda) is monotone in lambda, so bisection finds it
//    to machine precision.
//  * ProjectedGradient — general (handles non-convex fits from noisy
//    profiles): gradient descent with backtracking, re-projected onto the
//    constraint set after every step, with multiple random restarts.
//
// The weight solver in src/core picks the dual path when every model is
// convex on the feasible range and falls back to projected gradient
// otherwise.

#ifndef SRC_NUMERICS_SIMPLEX_OPTIMIZER_H_
#define SRC_NUMERICS_SIMPLEX_OPTIMIZER_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "src/sim/rng.h"

namespace saba {

// A scalar function and its derivative.
struct ScalarObjective {
  std::function<double(double)> value;
  std::function<double(double)> derivative;
};

struct SimplexConstraints {
  // Total weight to distribute (C_saba; 1.0 == 100% of link capacity).
  double capacity = 1.0;
  // Per-component lower bound (>= 0; n * lower_bound must not exceed
  // capacity).
  double lower_bound = 0.0;
  // Per-component upper bound (defaults to the full capacity).
  double upper_bound = 1.0;
};

struct SimplexMinimizeResult {
  std::vector<double> weights;
  double objective = 0;
  size_t iterations = 0;
  bool converged = false;
};

// Projects `v` onto {w : sum w = c.capacity, c.lower_bound <= w_i <=
// c.upper_bound} in Euclidean norm, via bisection on the shift multiplier.
// Requires a feasible constraint box (n*lo <= capacity <= n*hi).
std::vector<double> ProjectToCapacitySimplex(const std::vector<double>& v,
                                             const SimplexConstraints& c);

// Exact minimizer for *convex* objectives via bisection on the dual
// multiplier. Behaviour is unspecified (may return a KKT point of poor
// quality) if any objective is non-convex on the box.
SimplexMinimizeResult MinimizeConvexSeparable(const std::vector<ScalarObjective>& objectives,
                                              const SimplexConstraints& constraints);

struct ProjectedGradientOptions {
  size_t max_iterations = 500;
  double tolerance = 1e-10;  // Stop when the objective improves less than this.
  size_t restarts = 6;       // Random restarts; best result wins.
  double initial_step = 0.25;
};

// General minimizer: projected gradient descent with backtracking line search
// and random restarts. Deterministic given the Rng seed.
SimplexMinimizeResult MinimizeSeparableProjectedGradient(
    const std::vector<ScalarObjective>& objectives, const SimplexConstraints& constraints,
    Rng* rng, const ProjectedGradientOptions& options = {});

}  // namespace saba

#endif  // SRC_NUMERICS_SIMPLEX_OPTIMIZER_H_
