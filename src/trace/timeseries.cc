#include "src/trace/timeseries.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <set>

namespace saba {

void TimeSeries::Append(SimTime t, double value) {
  assert(points_.empty() || t >= points_.back().first);
  points_.emplace_back(t, value);
}

double TimeSeries::Mean() const {
  assert(!points_.empty());
  double sum = 0;
  for (const auto& [t, v] : points_) {
    sum += v;
  }
  return sum / static_cast<double>(points_.size());
}

double TimeSeries::Max() const {
  assert(!points_.empty());
  double best = points_.front().second;
  for (const auto& [t, v] : points_) {
    best = std::max(best, v);
  }
  return best;
}

double TimeSeries::MeanInWindow(SimTime from, SimTime to) const {
  double sum = 0;
  size_t n = 0;
  for (const auto& [t, v] : points_) {
    if (t >= from && t <= to) {
      sum += v;
      ++n;
    }
  }
  assert(n > 0 && "no samples in window");
  return sum / static_cast<double>(n);
}

double TimeSeries::FractionAbove(double threshold) const {
  assert(!points_.empty());
  size_t above = 0;
  for (const auto& [t, v] : points_) {
    above += v >= threshold ? 1 : 0;
  }
  return static_cast<double>(above) / static_cast<double>(points_.size());
}

TimeSeries& TraceRecorder::Series(const std::string& name) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, TimeSeries(name)).first;
  }
  return it->second;
}

const TimeSeries* TraceRecorder::Find(const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

void TraceRecorder::WriteCsv(std::ostream& os) const {
  os << "time";
  for (const auto& [name, series] : series_) {
    os << ',' << name;
  }
  os << '\n';

  // Union of sample instants across series.
  std::set<SimTime> instants;
  for (const auto& [name, series] : series_) {
    for (const auto& [t, v] : series.points()) {
      instants.insert(t);
    }
  }

  // Per-series cursor walk (points are time-ordered).
  std::map<std::string, size_t> cursor;
  for (SimTime t : instants) {
    os << t;
    for (const auto& [name, series] : series_) {
      size_t& i = cursor[name];
      const auto& points = series.points();
      os << ',';
      if (i < points.size() && TimeAlmostEqual(points[i].first, t)) {
        os << points[i].second;
        ++i;
      }
    }
    os << '\n';
  }
}

PeriodicSampler::PeriodicSampler(EventScheduler* scheduler, TraceRecorder* recorder,
                                 SimDuration period)
    : scheduler_(scheduler), recorder_(recorder), period_(period) {
  assert(scheduler != nullptr && recorder != nullptr);
  assert(period > 0);
}

void PeriodicSampler::AddProbe(const std::string& series_name, Probe probe) {
  assert(probe != nullptr);
  probes_.emplace_back(series_name, std::move(probe));
}

void PeriodicSampler::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  scheduler_->ScheduleAt(scheduler_->Now(), [this] { Tick(); });
}

void PeriodicSampler::Stop() { running_ = false; }

void PeriodicSampler::Tick() {
  if (!running_) {
    return;
  }
  ++ticks_;
  const SimTime now = scheduler_->Now();
  for (const auto& [name, probe] : probes_) {
    recorder_->Series(name).Append(now, probe());
  }
  // Self-terminate once the sampler is the only thing keeping the simulation
  // alive; otherwise the scheduler would never drain.
  if (scheduler_->PendingCount() == 0) {
    running_ = false;
    return;
  }
  scheduler_->ScheduleAfter(period_, [this] { Tick(); });
}

}  // namespace saba
