// Time-series recording for simulations.
//
// Experiments that look *inside* a run (Fig 2's utilization timelines, link
// heat maps, controller activity) need sampled series keyed by simulated
// time. A TraceRecorder owns named series, a PeriodicSampler drives
// collection off the event scheduler, and the CSV writer emits one row per
// sample instant for offline plotting.

#ifndef SRC_TRACE_TIMESERIES_H_
#define SRC_TRACE_TIMESERIES_H_

#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/sim/event_scheduler.h"
#include "src/sim/sim_time.h"

namespace saba {

// One named series of (time, value) points, appended in time order.
class TimeSeries {
 public:
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void Append(SimTime t, double value);

  const std::string& name() const { return name_; }
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  const std::vector<std::pair<SimTime, double>>& points() const { return points_; }

  // Mean of the values (requires a non-empty series).
  double Mean() const;
  double Max() const;

  // Mean over samples within [from, to].
  double MeanInWindow(SimTime from, SimTime to) const;

  // Fraction of samples with value >= threshold (a duty-cycle measure).
  double FractionAbove(double threshold) const;

 private:
  std::string name_;
  std::vector<std::pair<SimTime, double>> points_;
};

// A bundle of series sharing a sampling clock.
class TraceRecorder {
 public:
  // Returns the series with `name`, creating it on first use.
  TimeSeries& Series(const std::string& name);

  const TimeSeries* Find(const std::string& name) const;
  size_t series_count() const { return series_.size(); }

  // Writes "time,<series...>" CSV. Rows are the union of sample times;
  // series without a sample at a row's instant leave the cell empty.
  void WriteCsv(std::ostream& os) const;

 private:
  std::map<std::string, TimeSeries> series_;
};

// Samples a set of probes at a fixed period until stopped or until the
// scheduler drains. Probes run in registration order at each tick.
class PeriodicSampler {
 public:
  using Probe = std::function<double()>;

  // Samples every `period` seconds starting at the current time.
  PeriodicSampler(EventScheduler* scheduler, TraceRecorder* recorder, SimDuration period);

  // Registers a probe writing into `series_name`.
  void AddProbe(const std::string& series_name, Probe probe);

  // Begins sampling (idempotent).
  void Start();

  // Stops future ticks.
  void Stop();

  size_t ticks() const { return ticks_; }

 private:
  void Tick();

  EventScheduler* scheduler_;
  TraceRecorder* recorder_;
  SimDuration period_;
  std::vector<std::pair<std::string, Probe>> probes_;
  bool running_ = false;
  size_t ticks_ = 0;
};

}  // namespace saba

#endif  // SRC_TRACE_TIMESERIES_H_
