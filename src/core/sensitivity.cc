#include "src/core/sensitivity.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace saba {

double SensitivityModel::SlowdownAt(double b) const {
  const double clamped = std::clamp(b, kMinBandwidthFraction, 1.0);
  return std::max(1.0, poly_.Evaluate(clamped));
}

std::vector<double> SensitivityModel::CoefficientVector(size_t size) const {
  assert(size > poly_.degree());
  std::vector<double> v(size, 0.0);
  for (size_t i = 0; i < size; ++i) {
    v[i] = poly_.coefficient(i);
  }
  return v;
}

void SensitivityTable::Put(const std::string& workload, SensitivityEntry entry) {
  entries_[workload] = std::move(entry);
}

const SensitivityEntry* SensitivityTable::Find(const std::string& workload) const {
  auto it = entries_.find(workload);
  return it == entries_.end() ? nullptr : &it->second;
}

SensitivityModel SensitivityTable::ModelOrDefault(const std::string& workload) const {
  const SensitivityEntry* entry = Find(workload);
  return entry != nullptr ? entry->model : SensitivityModel();
}

std::string SensitivityTable::ToCsv() const {
  std::ostringstream os;
  os.precision(17);
  for (const auto& [name, entry] : entries_) {
    os << name << ',' << entry.r_squared << ',' << entry.base_completion_seconds;
    for (double c : entry.model.polynomial().coefficients()) {
      os << ',' << c;
    }
    os << '\n';
  }
  return os.str();
}

std::optional<SensitivityTable> SensitivityTable::FromCsv(const std::string& csv) {
  SensitivityTable table;
  std::istringstream is(csv);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream row(line);
    std::string field;
    if (!std::getline(row, field, ',')) {
      return std::nullopt;
    }
    const std::string name = field;
    SensitivityEntry entry;
    if (!std::getline(row, field, ',')) {
      return std::nullopt;
    }
    entry.r_squared = std::stod(field);
    if (!std::getline(row, field, ',')) {
      return std::nullopt;
    }
    entry.base_completion_seconds = std::stod(field);
    std::vector<double> coeffs;
    while (std::getline(row, field, ',')) {
      coeffs.push_back(std::stod(field));
    }
    if (coeffs.empty()) {
      return std::nullopt;
    }
    entry.model = SensitivityModel(Polynomial(std::move(coeffs)));
    table.Put(name, std::move(entry));
  }
  return table;
}

}  // namespace saba
