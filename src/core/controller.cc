#include "src/core/controller.h"

#include <algorithm>
#include <cassert>

#include "src/sim/log.h"
#include "src/sim/wallclock.h"

namespace saba {

CentralizedController::CentralizedController(Network* network, FlowSimulator* flow_sim,
                                             const SensitivityTable* table,
                                             ControllerOptions options)
    : network_(network),
      flow_sim_(flow_sim),
      table_(table),
      options_(options),
      solver_({.capacity = options.c_saba,
               .min_weight = options.min_weight,
               .relative_min_weight = options.relative_min_weight}),
      rng_(options.seed),
      solve_ctx_(options.solve_cache) {
  assert(network_ != nullptr);
  assert(table_ != nullptr);
  assert(options_.num_pls >= 1 && options_.num_pls <= kNumServiceLevels);
  assert(options_.reserved_queues >= 0);
  assert(options_.control_plane_latency_seconds >= 0);
}

int CentralizedController::AppRegister(AppId app, const std::string& workload_name) {
  assert(apps_.find(app) == apps_.end() && "application already registered");
  ++stats_.registrations;
  AppState state;
  state.workload = workload_name;
  if (table_->Find(workload_name) == nullptr) {
    SABA_LOG_WARNING << "no sensitivity profile for workload '" << workload_name
                     << "'; treating it as bandwidth-insensitive";
  }
  state.model = table_->ModelOrDefault(workload_name);
  apps_.emplace(app, std::move(state));
  ReclusterPls();
  return apps_.at(app).pl;
}

void CentralizedController::AppDeregister(AppId app) {
  auto it = apps_.find(app);
  assert(it != apps_.end());
  assert(it->second.connections == 0 && "deregistering with live connections");
  ++stats_.deregistrations;
  apps_.erase(it);
  if (!apps_.empty()) {
    ReclusterPls();
  }
}

int CentralizedController::CurrentServiceLevel(AppId app) const { return apps_.at(app).pl; }

void CentralizedController::ConnCreate(AppId app, NodeId src, NodeId dst, uint64_t path_salt) {
  auto it = apps_.find(app);
  assert(it != apps_.end() && "connection from unregistered application");
  ++stats_.conn_creates;
  ++it->second.connections;

  const std::vector<LinkId>& path = network_->router().Route(src, dst, path_salt);
  std::vector<LinkId> dirty;
  for (LinkId link : path) {
    port_apps_[link][app] += 1;
    dirty.push_back(link);
  }
  // Snapshot the accounted path: a later failure may reroute this pair, and
  // ConnDestroy must release exactly these ports (see conn_paths_).
  conn_paths_[std::make_tuple(app, src, dst, path_salt)].push_back(path);
  MarkPortsDirty(dirty);
}

void CentralizedController::ConnDestroy(AppId app, NodeId src, NodeId dst, uint64_t path_salt) {
  auto it = apps_.find(app);
  assert(it != apps_.end());
  ++stats_.conn_destroys;
  --it->second.connections;
  assert(it->second.connections >= 0);

  // Unwind the ports charged at create time — not today's route, which may
  // differ after a failure (see conn_paths_).
  const auto conn_it = conn_paths_.find(std::make_tuple(app, src, dst, path_salt));
  assert(conn_it != conn_paths_.end() && "destroying a connection that was never created");
  const std::vector<LinkId> path = std::move(conn_it->second.back());
  conn_it->second.pop_back();
  if (conn_it->second.empty()) {
    conn_paths_.erase(conn_it);
  }
  std::vector<LinkId> dirty;
  for (LinkId link : path) {
    auto port_it = port_apps_.find(link);
    assert(port_it != port_apps_.end());
    auto app_it = port_it->second.find(app);
    assert(app_it != port_it->second.end());
    if (--app_it->second == 0) {
      port_it->second.erase(app_it);
    }
    if (port_it->second.empty()) {
      port_apps_.erase(port_it);
      port_weights_.erase(link);
    } else {
      dirty.push_back(link);
    }
  }
  MarkPortsDirty(dirty);
}

void CentralizedController::RegisterAppStatic(AppId app, const std::string& workload_name,
                                              int pl) {
  assert(apps_.find(app) == apps_.end() && "application already registered");
  assert(pl >= 0 && pl < options_.num_pls);
  ++stats_.registrations;
  AppState state;
  state.workload = workload_name;
  state.model = table_->ModelOrDefault(workload_name);
  state.pl = pl;
  apps_.emplace(app, std::move(state));
}

void CentralizedController::InstallPlModels(const std::vector<SensitivityModel>& pl_models) {
  solve_ctx_.mapper.emplace(pl_models, options_.solve_cache);
}

void CentralizedController::ReclusterPls() {
  assert(!apps_.empty());
  ++stats_.pl_reclusterings;

  std::vector<AppId> ids;
  std::vector<SensitivityModel> models;
  ids.reserve(apps_.size());
  models.reserve(apps_.size());
  for (const auto& [id, state] : apps_) {
    ids.push_back(id);
    models.push_back(state.model);
  }

  const PlMapping mapping = MapAppsToPls(models, options_.num_pls, &rng_);
  for (size_t i = 0; i < ids.size(); ++i) {
    apps_.at(ids[i]).pl = mapping.app_to_pl[i];
    if (flow_sim_ != nullptr) {
      flow_sim_->SetAppServiceLevel(ids[i], mapping.app_to_pl[i]);
    }
  }
  // Rebuilding the mapper is the queue-map memo's epoch invalidation: the PL
  // geometry its keys refer to is gone. The Eq-2 solve cache survives — its
  // entries are keyed by the full solver input (the model multiset), which
  // re-clustering does not change.
  solve_ctx_.mapper.emplace(mapping.pl_models, options_.solve_cache);

  // PL geometry changed; every active port needs a fresh mapping.
  std::vector<LinkId> dirty;
  dirty.reserve(port_apps_.size());
  for (const auto& [link, counts] : port_apps_) {
    dirty.push_back(link);
  }
  MarkPortsDirty(dirty);
}

void CentralizedController::MarkPortsDirty(const std::vector<LinkId>& links) {
  dirty_ports_.insert(links.begin(), links.end());
  if (flow_sim_ == nullptr) {
    FlushDirtyPorts();
    return;
  }
  if (!flush_scheduled_ && !dirty_ports_.empty()) {
    flush_scheduled_ = true;
    flow_sim_->scheduler()->ScheduleAfter(options_.control_plane_latency_seconds, [this] {
      flush_scheduled_ = false;
      FlushDirtyPorts();
    });
  }
}

void CentralizedController::DrainContextStats(PortSolveContext* ctx) {
  stats_.port_reconfigurations += ctx->reconfigurations;
  stats_.eq2_cache_hits += ctx->cache_hits;
  stats_.eq2_cache_misses += ctx->cache_misses;
  ctx->reconfigurations = 0;
  ctx->cache_hits = 0;
  ctx->cache_misses = 0;
}

void CentralizedController::FinishFlush(double elapsed_seconds) {
  stats_.last_calc_wall_seconds = elapsed_seconds;
  stats_.total_calc_wall_seconds += elapsed_seconds;
  if (flow_sim_ != nullptr) {
    flow_sim_->RequestReallocate();
  }
}

void CentralizedController::FlushDirtyPorts() {
  if (dirty_ports_.empty()) {
    return;
  }
  Stopwatch watch;
  // Ascending link order: deterministic across platforms (unordered_set
  // iteration order is implementation-defined) and cache-friendly. Results
  // do not depend on it — solves are keyed by signature, not history.
  flush_order_.assign(dirty_ports_.begin(), dirty_ports_.end());
  std::sort(flush_order_.begin(), flush_order_.end());
  for (LinkId link : flush_order_) {
    ReallocatePort(link, &solve_ctx_);
  }
  dirty_ports_.clear();
  DrainContextStats(&solve_ctx_);
  FinishFlush(watch.ElapsedSeconds());
}

void CentralizedController::ReallocatePort(LinkId link, PortSolveContext* ctx) {
  auto port_it = port_apps_.find(link);
  if (port_it == port_apps_.end() || port_it->second.empty()) {
    return;
  }
  assert(ctx->mapper.has_value());
  ++ctx->reconfigurations;

  // Hot path: one call per dirty port per flush, and a ReclusterPls marks
  // every active port dirty. All per-call containers are scratch arenas on
  // the context, in the style of allocation_engine.cc.
  std::vector<AppId>& ids = ctx->ids;
  std::vector<const SensitivityModel*>& models = ctx->models;
  std::vector<int>& app_pls = ctx->app_pls;
  PortSignature& sig = ctx->sig;
  std::vector<SensitivityModel>& canonical_models = ctx->canonical_models;
  std::vector<double>& uncached_weights = ctx->uncached_weights;
  std::vector<int>& present_pls = ctx->present_pls;
  std::vector<double>& queue_weights = ctx->queue_weights;

  ids.clear();
  models.clear();
  app_pls.clear();
  for (const auto& [app, count] : port_it->second) {
    const AppState& state = apps_.at(app);
    ids.push_back(app);
    models.push_back(&state.model);
    app_pls.push_back(state.pl);
  }
  const size_t n = ids.size();

  // Solve Eq 2 over the applications at this port — in canonical (signature)
  // order, with the solver's Rng stream derived from the signature rather
  // than from controller history. That makes the result a pure function of
  // the app mix, so the solve cache can replay it bit-identically for every
  // other port carrying the same mix (DESIGN.md §7.2).
  BuildPortSignature(models, &sig);
  const std::vector<double>* canonical_weights;
  if (const Eq2SolveCache::Entry* entry = ctx->cache.Find(sig); entry != nullptr) {
    ++ctx->cache_hits;
    canonical_weights = &entry->weights;
  } else {
    ++ctx->cache_misses;
    canonical_models.clear();
    canonical_models.reserve(n);
    for (uint32_t idx : sig.order) {
      canonical_models.push_back(*models[idx]);
    }
    Rng solve_rng = Rng::ForStream(options_.seed, sig.hash);
    WeightSolverResult solved = solver_.Solve(canonical_models, &solve_rng);
    if (ctx->cache.enabled()) {
      canonical_weights =
          &ctx->cache.Insert(sig, std::move(solved.weights), solved.objective)->weights;
    } else {  // Cache disabled: same float program, minus the memo.
      uncached_weights = std::move(solved.weights);
      canonical_weights = &uncached_weights;
    }
  }

  // Un-permute the canonical weights back to port (ascending AppId) order.
  // Under a parallel flush the map slot was pre-created serially, so this
  // operator[] is a pure lookup and workers only rewrite their own ports'
  // vectors — the map structure itself is never mutated concurrently.
  assert(sig.order.size() == n);
  assert(canonical_weights->size() == n);
  std::vector<std::pair<AppId, double>>& weights = port_weights_[link];
  weights.resize(n);
  for (size_t k = 0; k < n; ++k) {
    const uint32_t i = sig.order[k];
    weights[i] = {ids[i], (*canonical_weights)[k]};
  }

  // The PLs present at this port, ascending (the canonical form the
  // queue-map memo keys on). Fixed-size seen-mask: the old std::find dedupe
  // was quadratic in the app count.
  bool seen[kNumServiceLevels] = {};
  for (int pl : app_pls) {
    assert(pl >= 0 && pl < kNumServiceLevels);
    seen[pl] = true;
  }
  present_pls.clear();
  for (int pl = 0; pl < kNumServiceLevels; ++pl) {
    if (seen[pl]) {
      present_pls.push_back(pl);
    }
  }
  PortConfig& port = network_->port(link);
  // The last `reserved_queues` queues belong to non-Saba traffic (§3) and
  // are never remapped; Saba distributes its PLs over the rest.
  const int saba_queues = port.num_queues - options_.reserved_queues;
  assert(saba_queues >= 1 && "reservation leaves no queues for Saba traffic");
  const QueueMapper::PortMapping& mapping = ctx->mapper->MapPortMemo(present_pls, saba_queues);

  // Program the SL->queue table (SL == PL for Saba traffic; SLs outside the
  // Saba PL range route to the first reserved queue when one exists) and the
  // queue weights: each Saba queue's weight is the sum of the Eq-2 shares of
  // the applications mapped into it (§5.3.2).
  const int non_saba_queue = options_.reserved_queues > 0 ? saba_queues : 0;
  queue_weights.assign(static_cast<size_t>(port.num_queues), 1e-6);
  for (int sl = 0; sl < kNumServiceLevels; ++sl) {
    const int queue = static_cast<size_t>(sl) < mapping.pl_to_queue.size()
                          ? mapping.pl_to_queue[static_cast<size_t>(sl)]
                          : -1;
    port.sl_to_queue[static_cast<size_t>(sl)] = queue >= 0 ? queue : non_saba_queue;
  }
  for (size_t i = 0; i < n; ++i) {
    const int queue = mapping.pl_to_queue[static_cast<size_t>(app_pls[i])];
    assert(queue >= 0 && queue < saba_queues);
    queue_weights[static_cast<size_t>(queue)] += weights[i].second;
  }
  for (int q = saba_queues; q < port.num_queues; ++q) {
    queue_weights[static_cast<size_t>(q)] = options_.reserved_queue_weight;
  }
  port.queue_weights = queue_weights;  // Copy-assign: reuses the port's buffer.
}

double CentralizedController::RecomputeAllPortsTimed() {
  for (const auto& [link, counts] : port_apps_) {
    dirty_ports_.insert(link);
  }
  if (dirty_ports_.empty()) {
    stats_.last_calc_wall_seconds = 0;
    return 0;
  }
  // The virtual flush, so the distributed controller's sharded fan-out is
  // what gets timed (the Fig 12 "calculation time" and the scale bench both
  // land here). Any flush already pending for these ports is absorbed: the
  // scheduled callback later finds an empty dirty set and no-ops.
  FlushDirtyPorts();
  return stats_.last_calc_wall_seconds;
}

double CentralizedController::AppWeightAtPort(LinkId link, AppId app) const {
  auto it = port_weights_.find(link);
  if (it == port_weights_.end()) {
    return 0;
  }
  const std::vector<std::pair<AppId, double>>& weights = it->second;
  auto app_it = std::lower_bound(
      weights.begin(), weights.end(), app,
      [](const std::pair<AppId, double>& entry, AppId a) { return entry.first < a; });
  return app_it != weights.end() && app_it->first == app ? app_it->second : 0;
}

}  // namespace saba
