// What-if planning from sensitivity models alone.
//
// The controller's Eq-2 machinery doubles as an *offline* estimator: given
// the sensitivity models of applications that would share a port, the
// predicted slowdowns under Saba (at the solved weights) and under equal
// sharing fall straight out of the models — no simulation needed. Operators
// can use this to answer "what happens if I co-locate these jobs?" and "how
// should I partition this job mix across racks?" in microseconds.
//
// This is an extension beyond the paper (its §9 positions Saba against
// performance predictors like Ernest/CherryPick); it reuses the paper's own
// models for the prediction.

#ifndef SRC_CORE_PLANNER_H_
#define SRC_CORE_PLANNER_H_

#include <string>
#include <vector>

#include "src/core/sensitivity.h"
#include "src/core/weight_solver.h"
#include "src/sim/rng.h"

namespace saba {

struct CoRunPrediction {
  // Eq-2 weights, aligned with the input workloads.
  std::vector<double> saba_weights;
  // Predicted slowdowns at those weights: D_i(w_i).
  std::vector<double> saba_slowdowns;
  // Predicted slowdowns under equal sharing: D_i(1/n).
  std::vector<double> equal_slowdowns;
  // Arithmetic means of the above (the Eq-2 objective, normalized).
  double saba_average = 0;
  double equal_average = 0;
  // Geometric mean of equal_slowdown / saba_slowdown — the predicted average
  // speedup of switching this mix from fair sharing to Saba.
  double predicted_speedup = 0;
};

// Result of partitioning a job mix into co-location groups.
struct PartitionPlan {
  // group[i] in [0, num_groups) for each input workload.
  std::vector<int> group;
  // Sum over groups of the predicted Saba total slowdown.
  double total_cost = 0;
};

class CoRunPlanner {
 public:
  // The table must outlive the planner. Unprofiled workloads predict as
  // insensitive (slowdown 1 everywhere), matching the controller's fallback.
  explicit CoRunPlanner(const SensitivityTable* table, WeightSolverOptions options = {});

  // Predicts the outcome of co-locating `workloads` on one shared port.
  // Requires at least one workload; `rng` drives the solver's non-convex
  // fallback (unused for well-formed models).
  CoRunPrediction Predict(const std::vector<std::string>& workloads, Rng* rng) const;

  // Partitions `workloads` into `num_groups` co-location groups, minimizing
  // the summed predicted Saba slowdown. Greedy seeding (most sensitive jobs
  // spread first) followed by pairwise-swap refinement; deterministic given
  // the Rng seed. Groups are balanced to within one job.
  PartitionPlan Partition(const std::vector<std::string>& workloads, int num_groups,
                          Rng* rng) const;

 private:
  // Total predicted slowdown of one group (Eq-2 objective at the optimum).
  double GroupCost(const std::vector<SensitivityModel>& models, Rng* rng) const;

  const SensitivityTable* table_;
  WeightSolver solver_;
};

}  // namespace saba

#endif  // SRC_CORE_PLANNER_H_
