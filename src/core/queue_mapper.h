// PL-to-queue mapping (paper §5.3.2).
//
// Different switches have different queue counts, and different ports see
// different subsets of PLs, so the PL-to-queue mapping must be computed per
// port. Saba avoids re-clustering at every port by precomputing one
// agglomerative hierarchy over the PL sensitivity models (midpoint merging);
// per port, it walks the hierarchy from the finest level until the PLs
// present at that port occupy at most Q clusters, then maps each cluster to
// one queue.

#ifndef SRC_CORE_QUEUE_MAPPER_H_
#define SRC_CORE_QUEUE_MAPPER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/core/sensitivity.h"
#include "src/numerics/hierarchical.h"

namespace saba {

class QueueMapper {
 public:
  // Builds the hierarchy over the PL centroid models (from the PL mapper).
  // `memoize` enables the MapPortMemo cache (disabled by the controller's
  // solve_cache=false mode so cache-on/off equivalence can be tested).
  explicit QueueMapper(const std::vector<SensitivityModel>& pl_models, bool memoize = true);

  struct PortMapping {
    // pl_to_queue[p]: queue index for PL p, or -1 if PL p is not present at
    // this port. Indexed by PL id over all PLs the mapper was built with.
    std::vector<int> pl_to_queue;
    // Sensitivity model representing each queue (the dendrogram centroid of
    // the cluster mapped to it). queue_models.size() == number of queues
    // actually used (<= max_queues).
    std::vector<SensitivityModel> queue_models;
    // The hierarchy level used (0 = all PLs distinct).
    size_t level = 0;
  };

  // Maps the PLs present at a port onto at most `max_queues` queues.
  // `present_pls` must be non-empty, duplicate-free, and within range.
  PortMapping MapPort(const std::vector<int>& present_pls, int max_queues) const;

  // Memoized MapPort for the controller's port-recompute hot path.
  // `present_pls` must additionally be sorted ascending (the controller's
  // canonical form), so the (PL bitmask, queue budget) pair fully keys the
  // result. The cache lives with the mapper — re-clustering rebuilds the
  // mapper, which is the epoch invalidation (DESIGN.md §7.2). The returned
  // reference stays valid until the mapper is destroyed (or, with
  // memoization off, until the next MapPortMemo call).
  const PortMapping& MapPortMemo(const std::vector<int>& present_pls, int max_queues) const;

  size_t num_pls() const { return hierarchy_.num_leaves(); }

  uint64_t memo_hits() const { return memo_hits_; }
  uint64_t memo_misses() const { return memo_misses_; }

 private:
  HierarchicalClustering hierarchy_;
  bool memoize_;
  // (PL bitmask | max_queues << 32) -> mapping. PL ids fit 32 bits with room
  // to spare (kNumServiceLevels == 16 is the fabric-wide ceiling).
  // saba-lint: unordered-iter-ok(lookup-only memo, never iterated)
  mutable std::unordered_map<uint64_t, PortMapping> memo_;
  mutable PortMapping passthrough_;  // MapPortMemo result slot when memoize_ is off.
  mutable uint64_t memo_hits_ = 0;
  mutable uint64_t memo_misses_ = 0;
};

}  // namespace saba

#endif  // SRC_CORE_QUEUE_MAPPER_H_
