// PL-to-queue mapping (paper §5.3.2).
//
// Different switches have different queue counts, and different ports see
// different subsets of PLs, so the PL-to-queue mapping must be computed per
// port. Saba avoids re-clustering at every port by precomputing one
// agglomerative hierarchy over the PL sensitivity models (midpoint merging);
// per port, it walks the hierarchy from the finest level until the PLs
// present at that port occupy at most Q clusters, then maps each cluster to
// one queue.

#ifndef SRC_CORE_QUEUE_MAPPER_H_
#define SRC_CORE_QUEUE_MAPPER_H_

#include <vector>

#include "src/core/sensitivity.h"
#include "src/numerics/hierarchical.h"

namespace saba {

class QueueMapper {
 public:
  // Builds the hierarchy over the PL centroid models (from the PL mapper).
  explicit QueueMapper(const std::vector<SensitivityModel>& pl_models);

  struct PortMapping {
    // pl_to_queue[p]: queue index for PL p, or -1 if PL p is not present at
    // this port. Indexed by PL id over all PLs the mapper was built with.
    std::vector<int> pl_to_queue;
    // Sensitivity model representing each queue (the dendrogram centroid of
    // the cluster mapped to it). queue_models.size() == number of queues
    // actually used (<= max_queues).
    std::vector<SensitivityModel> queue_models;
    // The hierarchy level used (0 = all PLs distinct).
    size_t level = 0;
  };

  // Maps the PLs present at a port onto at most `max_queues` queues.
  // `present_pls` must be non-empty, duplicate-free, and within range.
  PortMapping MapPort(const std::vector<int>& present_pls, int max_queues) const;

  size_t num_pls() const { return hierarchy_.num_leaves(); }

 private:
  HierarchicalClustering hierarchy_;
};

}  // namespace saba

#endif  // SRC_CORE_QUEUE_MAPPER_H_
