// Saba's controller (paper §5): tracks registered applications and their
// connections, solves the per-port weight problem (Eq 2), maps applications
// to PLs (K-means) and PLs to queues (hierarchy walk), and programs the
// switches' SL-to-VL tables and VL weights.
//
// ControllerInterface mirrors the RPC surface the Saba library calls (Fig 7):
// app_register / conn_create / conn_destroy / app_deregister.

#ifndef SRC_CORE_CONTROLLER_H_
#define SRC_CORE_CONTROLLER_H_

#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/pl_mapper.h"
#include "src/core/queue_mapper.h"
#include "src/core/sensitivity.h"
#include "src/core/solve_cache.h"
#include "src/core/weight_solver.h"
#include "src/net/flow_simulator.h"
#include "src/net/network.h"
#include "src/sim/rng.h"

namespace saba {

class ControllerInterface {
 public:
  virtual ~ControllerInterface() = default;

  // Registers a Saba-compliant application; returns its assigned PL (== the
  // Service Level its connections must carry).
  virtual int AppRegister(AppId app, const std::string& workload_name) = 0;

  // Announces a connection. `path_salt` must match the salt the transport
  // uses so the controller resolves the same path (the real controller reads
  // the fabric's forwarding tables, §7.2).
  virtual void ConnCreate(AppId app, NodeId src, NodeId dst, uint64_t path_salt) = 0;
  virtual void ConnDestroy(AppId app, NodeId src, NodeId dst, uint64_t path_salt) = 0;

  virtual void AppDeregister(AppId app) = 0;

  // The application's current PL (PLs move when the controller re-clusters).
  virtual int CurrentServiceLevel(AppId app) const = 0;
};

struct ControllerOptions {
  // Number of priority levels used for Saba traffic. The testbed reserves 8
  // VLs of the switch's 9 (§8.1); InfiniBand's ceiling is 16.
  int num_pls = 8;
  // C_saba: fraction of each link managed by Saba (1.0 in all experiments).
  double c_saba = 1.0;
  // Weight floor per application at a port (absolute and relative to the
  // equal share; see WeightSolverOptions).
  double min_weight = 0.01;
  double relative_min_weight = 0.75;
  // Non-Saba co-existence (§3): the operator may statically reserve the
  // *last* `reserved_queues` queues of every port for non-compliant traffic
  // (control services, latency-critical RPCs). Saba never remaps them; SLs
  // not assigned to Saba PLs stay pointed at the first reserved queue, and
  // each reserved queue keeps `reserved_queue_weight` of scheduling weight.
  // With reservations the operator normally also sets c_saba < 1.
  int reserved_queues = 0;
  double reserved_queue_weight = 0.1;
  // Control-plane latency: delay between a library notification and the
  // switch configuration taking effect (RPC + switch programming time).
  // 0 applies reconfigurations within the same simulated instant.
  double control_plane_latency_seconds = 0;
  // Signature-keyed memoization of Eq-2 solves and PL-to-queue mappings
  // (DESIGN.md §7.2). Off is for A/B testing only — results are bit-identical
  // either way (the solve is a pure function of the port's app-mix
  // signature); the cache just skips re-deriving them.
  bool solve_cache = true;
  uint64_t seed = 7;
};

// Everything one flush worker needs to reallocate ports independently: the
// shard's Eq-2 solve cache and queue-map memo plus the per-call scratch
// arenas (allocation_engine.cc style) and flush-local stat counters. The
// centralized controller owns exactly one; DistributedController owns one per
// shard, each touched by at most one WorkerPool task per flush (DESIGN.md
// §7.3) — contexts are never shared between concurrent workers.
struct PortSolveContext {
  explicit PortSolveContext(bool cache_enabled) : cache(cache_enabled) {}

  // Memoized Eq-2 solves keyed by app-mix signature (DESIGN.md §7.2).
  // Persists across re-clusterings: entries are keyed by the full solver
  // input, so they can never go stale.
  Eq2SolveCache cache;
  std::optional<QueueMapper> mapper;

  // Stat deltas local to the current flush; the owning controller drains
  // them into its ControllerStats in canonical shard order after workers
  // join, so the totals never depend on scheduling.
  uint64_t reconfigurations = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  // ReallocatePort scratch, reused across calls to avoid reallocation.
  std::vector<AppId> ids;
  std::vector<const SensitivityModel*> models;
  std::vector<int> app_pls;
  PortSignature sig;
  std::vector<SensitivityModel> canonical_models;
  std::vector<double> uncached_weights;
  std::vector<int> present_pls;
  std::vector<double> queue_weights;
};

struct ControllerStats {
  uint64_t registrations = 0;
  uint64_t deregistrations = 0;
  uint64_t conn_creates = 0;
  uint64_t conn_destroys = 0;
  uint64_t port_reconfigurations = 0;
  uint64_t pl_reclusterings = 0;
  // Eq-2 solve cache traffic: hits are reconfigured ports whose app-mix
  // signature was already solved; misses are distinct solves actually run.
  uint64_t eq2_cache_hits = 0;
  uint64_t eq2_cache_misses = 0;
  // Wall-clock cost of weight calculations (Eq 2 solves), for Fig 12.
  double total_calc_wall_seconds = 0;
  double last_calc_wall_seconds = 0;
};

class CentralizedController : public ControllerInterface {
 public:
  // `flow_sim` may be null for offline/what-if use (no live retagging).
  CentralizedController(Network* network, FlowSimulator* flow_sim,
                        const SensitivityTable* table, ControllerOptions options = {});

  int AppRegister(AppId app, const std::string& workload_name) override;
  void ConnCreate(AppId app, NodeId src, NodeId dst, uint64_t path_salt) override;
  void ConnDestroy(AppId app, NodeId src, NodeId dst, uint64_t path_salt) override;
  void AppDeregister(AppId app) override;
  int CurrentServiceLevel(AppId app) const override;

  const ControllerStats& stats() const { return stats_; }

  // Recomputes every port currently carrying Saba connections and returns
  // the wall-clock seconds spent — the Fig 12 "calculation time".
  double RecomputeAllPortsTimed();

  // The last solved weight of `app` at port `link` (its Eq-2 share before
  // queue grouping), or 0 if the app has no flows there. Feeds the
  // PerAppWfqAllocator in the unlimited-queues configuration (Fig 11b).
  double AppWeightAtPort(LinkId link, AppId app) const;

  size_t registered_app_count() const { return apps_.size(); }

 protected:
  struct AppState {
    std::string workload;
    SensitivityModel model;
    int pl = 0;
    int connections = 0;
  };

  // Registers `app` with a fixed PL and no re-clustering; the distributed
  // controller uses this with its offline mapping database (§5.4).
  void RegisterAppStatic(AppId app, const std::string& workload_name, int pl);

  // Installs a fixed PL geometry (centroid models) for the queue mapper.
  void InstallPlModels(const std::vector<SensitivityModel>& pl_models);

  // Re-runs application-to-PL K-means and rebuilds the PL hierarchy; retags
  // live flows; refreshes every active port.
  void ReclusterPls();

  // Solves Eq 2 for the applications at `link` and programs the port, using
  // `ctx`'s cache, mapper, and scratch. Thread-compatible as long as each
  // concurrent caller owns a distinct ctx and a disjoint set of links, reads
  // apps_/port_apps_ only, and finds its port_weights_ slot pre-created (see
  // DistributedController::FlushDirtyPorts).
  void ReallocatePort(LinkId link, PortSolveContext* ctx);

  // Marks ports for recomputation. With a live flow simulator the flush is
  // coalesced to the end of the current simulated instant (a burst of
  // conn_create calls — e.g. a whole job starting — costs one recompute per
  // port); offline it is synchronous.
  void MarkPortsDirty(const std::vector<LinkId>& links);
  // Reallocates every dirty port and clears the dirty set. Virtual so the
  // distributed controller can fan the batch across its shard workers; every
  // override must program byte-identical state to this serial walk.
  virtual void FlushDirtyPorts();

  // Folds ctx's flush-local counters into stats_ and resets them. Called
  // after a flush in canonical (ascending shard) order.
  void DrainContextStats(PortSolveContext* ctx);

  // Records the wall-clock cost of one flush in stats_ and pokes the flow
  // simulator for a re-allocation pass.
  void FinishFlush(double elapsed_seconds);

  Network* network_;
  FlowSimulator* flow_sim_;
  const SensitivityTable* table_;
  ControllerOptions options_;
  WeightSolver solver_;
  Rng rng_;
  ControllerStats stats_;

  std::map<AppId, AppState> apps_;
  // Per port: connection count per application. Iterated only to harvest
  // keys, which are always sorted (directly or via dirty_ports_) before any
  // order-sensitive use; solves are keyed by signature, not visit order.
  // saba-lint: unordered-iter-ok(keys sorted before every order-sensitive use)
  std::unordered_map<LinkId, std::map<AppId, int>> port_apps_;
  // Path each live connection was accounted under, keyed by the connection
  // tuple (LIFO per tuple for duplicates). ConnDestroy must unwind exactly
  // the ports ConnCreate charged: re-resolving at destroy time would corrupt
  // port_apps_ whenever a failure rerouted the pair in between. Connections
  // rerouted mid-life stay accounted at their create-time ports until they
  // close — the real controller polls forwarding state periodically (§7.2),
  // so bounded staleness is faithful.
  std::map<std::tuple<AppId, NodeId, NodeId, uint64_t>, std::vector<std::vector<LinkId>>>
      conn_paths_;
  // Per port: last solved per-application weights, sorted by AppId (a flat
  // vector rather than a map — rebuilt wholesale on every reallocation, so
  // node-based storage would be pure overhead on the hot path).
  // saba-lint: unordered-iter-ok(lookup-only: find/erase/rebuild, never iterated)
  std::unordered_map<LinkId, std::vector<std::pair<AppId, double>>> port_weights_;
  // The centralized controller's (only) solve context: cache, mapper, and
  // ReallocatePort scratch. Shard contexts live in DistributedController.
  PortSolveContext solve_ctx_;
  // FlushDirtyPorts copies into a vector and sorts ascending before
  // reallocating (see the comment there), so set order never leaks out.
  // saba-lint: unordered-iter-ok(flush sorts the links before reallocating)
  std::unordered_set<LinkId> dirty_ports_;
  std::vector<LinkId> flush_order_;  // Scratch for the serial flush walk.
  bool flush_scheduled_ = false;
};

}  // namespace saba

#endif  // SRC_CORE_CONTROLLER_H_
