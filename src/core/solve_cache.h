// Signature-keyed memoization of the controller's Eq-2 solves (§5.1, §8.6).
//
// Eq 2's solution depends only on the *multiset* of sensitivity models at a
// port (plus the solver options, which are fixed per controller), yet in a
// spine-leaf fabric thousands of ports carry the same application mix — a
// re-clustering marks every active port dirty and, without deduplication,
// re-solves the identical problem once per port. The cache canonicalizes
// each solve input into a signature (the model coefficient vectors in
// lexicographic order), memoizes the solved weights per signature, and hands
// the caller the permutation between port order and canonical order.
//
// Exactness contract (DESIGN.md §7.2): the solve itself must be a pure
// function of the signature — the controller always solves in canonical
// order and seeds the solver's Rng from Rng::ForStream(seed, signature.hash)
// — so a cache hit returns bit-identical weights to the solve it replaced,
// and cache-on and cache-off controllers program bit-identical switch state
// (tests/controller_cache_test.cc enforces this under randomized churn).

#ifndef SRC_CORE_SOLVE_CACHE_H_
#define SRC_CORE_SOLVE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/core/sensitivity.h"

namespace saba {

// FNV-1a over raw bytes; the building block for all signature hashing here
// (stable across runs — it hashes the coefficients' bit patterns).
uint64_t HashBytes(uint64_t h, const void* data, size_t size);
inline constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ull;

// A canonicalized Eq-2 input. `order[k]` is the original (port-order) index
// of the k-th model in canonical order; the stable sort makes the
// permutation deterministic even with duplicate models.
struct PortSignature {
  // Flattened encoding: model count, then per model (in canonical order) its
  // coefficient count followed by the coefficients.
  std::vector<double> key;
  // 64-bit FNV-1a of `key`'s bit patterns; seeds the solver's Rng stream on
  // the non-convex path and buckets the cache.
  uint64_t hash = 0;
  std::vector<uint32_t> order;
};

// Builds the canonical signature of `models` into *sig, reusing its buffers
// (the controller keeps one PortSignature in thread_local scratch).
void BuildPortSignature(const std::vector<const SensitivityModel*>& models, PortSignature* sig);

// The memo itself: signature -> solved weights in canonical order. One
// instance per PortSolveContext — a CentralizedController owns one, a
// DistributedController owns one per shard — and solver options are fixed
// per controller, so they need not be part of the key. Per-shard instances
// need no coherence protocol: exactness (below) means a miss on one shard
// re-derives bit-for-bit what a hit on another returns, so sharding only
// shifts the hit/miss split, never the programmed state (DESIGN.md §7.3).
// Entries never go stale — the signature encodes the entire solver input —
// so the cache persists across re-clusterings and is only cleared to bound
// memory.
class Eq2SolveCache {
 public:
  struct Entry {
    std::vector<double> weights;  // Canonical (signature) order.
    double objective = 0;
  };

  explicit Eq2SolveCache(bool enabled) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  // The cached entry for `sig`, or nullptr on a miss (or when disabled).
  const Entry* Find(const PortSignature& sig);

  // Stores the solve result for `sig` and returns the stored entry; no-op
  // (returns nullptr) when disabled. `weights` must be in canonical order.
  // The by-value argument is consumed either way — callers that still need
  // the weights when the cache is off must branch on enabled() first.
  const Entry* Insert(const PortSignature& sig, std::vector<double> weights, double objective);

  void Clear();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t size() const { return map_.size(); }

 private:
  struct Key {
    std::vector<double> flat;
    uint64_t hash = 0;
  };
  // Heterogeneous (C++20) hash/equality so lookups probe with the caller's
  // PortSignature directly — no per-lookup key copy on the hit path.
  struct KeyHash {
    using is_transparent = void;
    size_t operator()(const Key& k) const { return static_cast<size_t>(k.hash); }
    size_t operator()(const PortSignature& s) const { return static_cast<size_t>(s.hash); }
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(const Key& a, const Key& b) const {
      return a.hash == b.hash && a.flat == b.flat;
    }
    bool operator()(const PortSignature& s, const Key& k) const {
      return s.hash == k.hash && s.key == k.flat;
    }
    bool operator()(const Key& k, const PortSignature& s) const { return operator()(s, k); }
  };

  // Memory backstop: signatures are tiny (a few dozen doubles) but scenario
  // sweeps construct many controllers; a runaway mix set clears rather than
  // grows without bound. Never hit by the paper-scale workloads.
  static constexpr size_t kMaxEntries = 1 << 16;

  bool enabled_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  // Lookup-only memo (find/insert/clear); results depend on the signature
  // key alone, never on bucket order — the §7.2 exactness argument.
  // saba-lint: unordered-iter-ok(lookup-only memo, never iterated)
  std::unordered_map<Key, Entry, KeyHash, KeyEq> map_;
};

}  // namespace saba

#endif  // SRC_CORE_SOLVE_CACHE_H_
