// Saba's offline profiler (paper §4.1, §7.1).
//
// For each workload, the profiler deploys the application on a dedicated set
// of nodes, runs it once per bandwidth fraction in {5, 10, 25, 50, 75, 90,
// 100}% (throttling every NIC with the driver's token-bucket rate limiter —
// realized here by scaling the host link capacity, the fluid-model
// steady-state equivalent), measures completion time, converts to slowdowns
// against the unthrottled run, fits a degree-k polynomial, and records the
// coefficients in the sensitivity table.

#ifndef SRC_CORE_PROFILER_H_
#define SRC_CORE_PROFILER_H_

#include <string>
#include <vector>

#include "src/core/sensitivity.h"
#include "src/sim/rng.h"
#include "src/workload/workload_spec.h"

namespace saba {

struct ProfilerOptions {
  // §7.1: the bandwidth fractions the profiler sweeps.
  std::vector<double> bandwidth_fractions = {0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 1.00};
  // Degree k of the fitted sensitivity model (the paper studies 1..3).
  size_t polynomial_degree = 3;
  // Profiling deployment size (8 nodes on the testbed, 18 in the at-scale
  // simulation).
  int num_nodes = 8;
  // Unthrottled NIC/link capacity.
  double link_capacity_bps = 56e9;
  // Minimum effective bandwidth fraction the NIC throttle can actually
  // enforce: at very low nominal rates the driver's token bucket leaks
  // bursts, so the achieved fraction saturates (the paper's testbed shows
  // the same saturation — LR slows only 4.5x at a nominal 10%, far less
  // than a proportional model predicts).
  double throttle_floor = 0.12;
  // Run-to-run measurement noise: each measured completion time is
  // multiplied by exp(N(0, sigma)). Real profiling runs are never exactly
  // repeatable; this is what keeps R^2 below 1 even for k = 3.
  double noise_sigma = 0.02;
  uint64_t seed = 1;
};

struct ProfileResult {
  std::string workload;
  std::vector<Sample> samples;  // (bandwidth fraction, measured slowdown).
  SensitivityModel model;
  double r_squared = 0;
  double base_completion_seconds = 0;  // At 100% bandwidth.
};

class OfflineProfiler {
 public:
  explicit OfflineProfiler(ProfilerOptions options);

  // Profiles one workload: sweeps bandwidths, fits, reports.
  ProfileResult Profile(const WorkloadSpec& spec);

  // Profiles a set of workloads into a sensitivity table.
  SensitivityTable ProfileAll(const std::vector<WorkloadSpec>& specs);

  // Measures the slowdown curve of `spec` (possibly scaled to a different
  // dataset/node count) without fitting — used by the accuracy studies
  // (Fig 6b/6c) to score a previously fitted model against runtime truth.
  std::vector<Sample> MeasureSlowdownCurve(const WorkloadSpec& spec);

  // Runs `spec` alone on a star fabric of `num_nodes` hosts with every link
  // throttled to `fraction` of `link_bps` (subject to `throttle_floor`),
  // returning the completion time in simulated seconds. Deterministic and
  // noise-free; the Profile() path adds noise.
  static double RunIsolated(const WorkloadSpec& spec, double fraction, int num_nodes,
                            double link_bps, double throttle_floor = 0.12);

  const ProfilerOptions& options() const { return options_; }

 private:
  ProfilerOptions options_;
  Rng rng_;
};

}  // namespace saba

#endif  // SRC_CORE_PROFILER_H_
