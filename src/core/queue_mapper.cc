#include "src/core/queue_mapper.h"

#include <algorithm>
#include <cassert>

namespace saba {

QueueMapper::QueueMapper(const std::vector<SensitivityModel>& pl_models, bool memoize)
    : hierarchy_([&pl_models] {
        assert(!pl_models.empty());
        size_t dim = 0;
        for (const SensitivityModel& model : pl_models) {
          dim = std::max(dim, model.polynomial().degree() + 1);
        }
        std::vector<std::vector<double>> points;
        points.reserve(pl_models.size());
        for (const SensitivityModel& model : pl_models) {
          points.push_back(model.CoefficientVector(dim));
        }
        return HierarchicalClustering::Build(points);
      }()),
      memoize_(memoize) {
  assert(hierarchy_.num_leaves() <= 32 && "PL bitmask key assumes <= 32 PLs");
}

QueueMapper::PortMapping QueueMapper::MapPort(const std::vector<int>& present_pls,
                                              int max_queues) const {
  assert(!present_pls.empty());
  assert(max_queues >= 1);

  std::vector<size_t> leaves;
  leaves.reserve(present_pls.size());
  for (int pl : present_pls) {
    assert(pl >= 0 && static_cast<size_t>(pl) < hierarchy_.num_leaves());
    leaves.push_back(static_cast<size_t>(pl));
  }

  const HierarchicalClustering::Grouping grouping =
      hierarchy_.GroupSubset(leaves, static_cast<size_t>(max_queues));

  PortMapping mapping;
  mapping.level = grouping.level;
  mapping.pl_to_queue.assign(hierarchy_.num_leaves(), -1);
  mapping.queue_models.reserve(grouping.groups.size());
  for (size_t queue = 0; queue < grouping.groups.size(); ++queue) {
    for (size_t leaf : grouping.groups[queue]) {
      mapping.pl_to_queue[leaf] = static_cast<int>(queue);
    }
    mapping.queue_models.emplace_back(Polynomial(grouping.centroids[queue]));
  }
  return mapping;
}

const QueueMapper::PortMapping& QueueMapper::MapPortMemo(const std::vector<int>& present_pls,
                                                         int max_queues) const {
  assert(std::is_sorted(present_pls.begin(), present_pls.end()) &&
         "memoized mapping requires the canonical (ascending) PL order");
  if (!memoize_) {
    passthrough_ = MapPort(present_pls, max_queues);
    return passthrough_;
  }
  uint64_t key = static_cast<uint64_t>(max_queues) << 32;
  for (int pl : present_pls) {
    key |= 1ull << pl;
  }
  auto it = memo_.find(key);
  if (it != memo_.end()) {
    ++memo_hits_;
    return it->second;
  }
  ++memo_misses_;
  // References into the map stay valid across rehashes (node-based).
  return memo_.emplace(key, MapPort(present_pls, max_queues)).first->second;
}

}  // namespace saba
