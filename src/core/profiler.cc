#include "src/core/profiler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "src/net/allocator.h"
#include "src/net/flow_simulator.h"
#include "src/net/network.h"
#include "src/net/topology.h"
#include "src/sim/event_scheduler.h"
#include "src/sim/log.h"
#include "src/workload/app_runtime.h"

namespace saba {

OfflineProfiler::OfflineProfiler(ProfilerOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  assert(!options_.bandwidth_fractions.empty());
  assert(options_.num_nodes >= 2);
}

double OfflineProfiler::RunIsolated(const WorkloadSpec& spec, double fraction, int num_nodes,
                                    double link_bps, double throttle_floor) {
  assert(fraction > 0 && fraction <= 1.0);
  assert(throttle_floor >= 0 && throttle_floor <= 1.0);
  const double effective = std::max(fraction, throttle_floor);
  EventScheduler scheduler;
  Network network(BuildSingleSwitchStar(num_nodes, RoundBps(link_bps * effective)));
  WfqMaxMinAllocator allocator;
  FlowSimulator flow_sim(&scheduler, &network, &allocator);
  NullNetworkPolicy policy;

  std::vector<NodeId> hosts = network.topology().Hosts();
  Application app(&scheduler, &flow_sim, spec, hosts, /*id=*/0, &policy);
  double completion = -1;
  app.Start([&completion](AppId, SimTime seconds) { completion = seconds; });
  scheduler.Run();
  assert(completion > 0 && "application must run to completion");
  return completion;
}

std::vector<Sample> OfflineProfiler::MeasureSlowdownCurve(const WorkloadSpec& spec) {
  const double base = RunIsolated(spec, 1.0, spec.reference_nodes, options_.link_capacity_bps,
                                  options_.throttle_floor) *
                      std::exp(rng_.Normal(0.0, options_.noise_sigma));
  std::vector<Sample> samples;
  samples.reserve(options_.bandwidth_fractions.size());
  for (double fraction : options_.bandwidth_fractions) {
    const double t = RunIsolated(spec, fraction, spec.reference_nodes,
                                 options_.link_capacity_bps, options_.throttle_floor) *
                     std::exp(rng_.Normal(0.0, options_.noise_sigma));
    samples.push_back({fraction, t / base});
  }
  return samples;
}

ProfileResult OfflineProfiler::Profile(const WorkloadSpec& spec) {
  ProfileResult result;
  result.workload = spec.name;

  // The profiler deploys on its own node count; re-anchor the spec if it was
  // written for a different size.
  WorkloadSpec deployed =
      spec.reference_nodes == options_.num_nodes ? spec : ScaleWorkload(spec, 1.0,
                                                                        options_.num_nodes);

  const double base = RunIsolated(deployed, 1.0, options_.num_nodes,
                                  options_.link_capacity_bps, options_.throttle_floor);
  result.base_completion_seconds = base;
  const double noisy_base = base * std::exp(rng_.Normal(0.0, options_.noise_sigma));

  for (double fraction : options_.bandwidth_fractions) {
    const double t = RunIsolated(deployed, fraction, options_.num_nodes,
                                 options_.link_capacity_bps, options_.throttle_floor) *
                     std::exp(rng_.Normal(0.0, options_.noise_sigma));
    result.samples.push_back({fraction, t / noisy_base});
  }

  result.model =
      SensitivityModel(FitPolynomial(result.samples, options_.polynomial_degree));
  result.r_squared = RSquaredClamped(result.model.polynomial(), result.samples);
  // A sensitivity model that predicts *material* slowdown from extra
  // bandwidth is a fitting artifact (noise or underfit); the controller
  // tolerates it, but the operator should know. Noise-level wiggles at the
  // flat end of the curve are expected and not worth reporting.
  {
    // Scan only the fitted range (from the lowest profiled fraction): the
    // extrapolated tail below it is never trusted anyway.
    const Polynomial& poly = result.model.polynomial();
    const double lo = options_.bandwidth_fractions.front();
    double running_min = poly.Evaluate(lo);
    double max_rise = 0;
    for (int i = 1; i <= 32; ++i) {
      const double x = lo + (1.0 - lo) * static_cast<double>(i) / 32;
      const double value = poly.Evaluate(x);
      max_rise = std::max(max_rise, value - running_min);
      running_min = std::min(running_min, value);
    }
    if (max_rise > 0.2) {
      SABA_LOG_WARNING << "sensitivity model for " << spec.name << " rises by " << max_rise
                       << " with bandwidth (R2=" << result.r_squared
                       << "); consider more profiling runs or a different degree";
    }
  }
  SABA_LOG_INFO << "profiled " << spec.name << ": base=" << base
                << "s R2=" << result.r_squared;
  return result;
}

SensitivityTable OfflineProfiler::ProfileAll(const std::vector<WorkloadSpec>& specs) {
  SensitivityTable table;
  for (const WorkloadSpec& spec : specs) {
    ProfileResult result = Profile(spec);
    SensitivityEntry entry;
    entry.model = result.model;
    entry.r_squared = result.r_squared;
    entry.samples = std::move(result.samples);
    entry.base_completion_seconds = result.base_completion_seconds;
    table.Put(spec.name, std::move(entry));
  }
  return table;
}

}  // namespace saba
