#include "src/core/pl_mapper.h"

#include <algorithm>
#include <cassert>

#include "src/numerics/kmeans.h"

namespace saba {

PlMapping MapAppsToPls(const std::vector<SensitivityModel>& app_models, int num_pls, Rng* rng) {
  assert(!app_models.empty());
  assert(num_pls >= 1);
  assert(rng != nullptr);

  size_t dim = 0;
  for (const SensitivityModel& model : app_models) {
    dim = std::max(dim, model.polynomial().degree() + 1);
  }
  std::vector<std::vector<double>> points;
  points.reserve(app_models.size());
  for (const SensitivityModel& model : app_models) {
    points.push_back(model.CoefficientVector(dim));
  }

  const KMeansResult clusters = KMeans(points, static_cast<size_t>(num_pls), rng);

  PlMapping mapping;
  mapping.app_to_pl.reserve(app_models.size());
  for (size_t assignment : clusters.assignment) {
    mapping.app_to_pl.push_back(static_cast<int>(assignment));
  }
  mapping.pl_models.reserve(clusters.centroids.size());
  for (const std::vector<double>& centroid : clusters.centroids) {
    mapping.pl_models.emplace_back(Polynomial(centroid));
  }
  return mapping;
}

}  // namespace saba
