#include "src/core/solve_cache.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace saba {

uint64_t HashBytes(uint64_t h, const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

void BuildPortSignature(const std::vector<const SensitivityModel*>& models, PortSignature* sig) {
  assert(!models.empty());
  const size_t n = models.size();

  sig->order.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    sig->order[i] = i;
  }
  // Stable lexicographic sort over the coefficient vectors: ties (duplicate
  // models — e.g. many instances of one workload) keep ascending port order,
  // so the permutation is a pure function of the input list.
  std::stable_sort(sig->order.begin(), sig->order.end(), [&models](uint32_t a, uint32_t b) {
    return models[a]->polynomial().coefficients() < models[b]->polynomial().coefficients();
  });

  sig->key.clear();
  sig->key.push_back(static_cast<double>(n));
  for (uint32_t idx : sig->order) {
    const std::vector<double>& coeffs = models[idx]->polynomial().coefficients();
    sig->key.push_back(static_cast<double>(coeffs.size()));
    sig->key.insert(sig->key.end(), coeffs.begin(), coeffs.end());
  }
  // Word-wise FNV over the coefficients' bit patterns: one multiply-xor per
  // double instead of eight (byte-wise FNV's serial dependency chain was the
  // dominant cost of a cache hit at 48-app ports). Dispersion per byte is
  // weaker, but the map compares full keys on collision anyway.
  uint64_t h = kFnvOffsetBasis;
  for (double d : sig->key) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    h ^= bits;
    h *= 1099511628211ull;
  }
  sig->hash = h;
}

const Eq2SolveCache::Entry* Eq2SolveCache::Find(const PortSignature& sig) {
  if (!enabled_) {
    return nullptr;
  }
  auto it = map_.find(sig);  // Heterogeneous: no key materialization.
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

const Eq2SolveCache::Entry* Eq2SolveCache::Insert(const PortSignature& sig,
                                                  std::vector<double> weights,
                                                  double objective) {
  if (!enabled_) {
    return nullptr;
  }
  if (map_.size() >= kMaxEntries) {
    map_.clear();
  }
  Key key;
  key.flat = sig.key;
  key.hash = sig.hash;
  Entry entry;
  entry.weights = std::move(weights);
  entry.objective = objective;
  return &map_.insert_or_assign(std::move(key), std::move(entry)).first->second;
}

void Eq2SolveCache::Clear() {
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace saba
