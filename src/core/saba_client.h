// The Saba library (paper §6, §7.3): the ~350-LOC shim applications link
// against. It implements the workload runtime's AppNetworkPolicy by
// forwarding the registration and connection lifecycle to the controller
// over a (simulated) RPC channel, and hands applications their current
// service level for new connections.

#ifndef SRC_CORE_SABA_CLIENT_H_
#define SRC_CORE_SABA_CLIENT_H_

#include <string>
#include <vector>

#include "src/core/controller.h"
#include "src/workload/app_runtime.h"

namespace saba {

// Bookkeeping for the control-plane traffic the shim generates; the paper
// argues this overhead is negligible, and these counters let the benches
// report it.
struct SabaClientStats {
  uint64_t rpc_calls = 0;
  uint64_t connections_opened = 0;
  uint64_t connections_closed = 0;
};

class SabaClient : public AppNetworkPolicy {
 public:
  explicit SabaClient(ControllerInterface* controller);

  // AppNetworkPolicy:
  int OnAppStart(AppId app, const std::string& workload_name,
                 const std::vector<NodeId>& hosts) override;
  void OnConnectionOpen(AppId app, NodeId src, NodeId dst, uint64_t path_salt) override;
  void OnConnectionClose(AppId app, NodeId src, NodeId dst, uint64_t path_salt) override;
  void OnAppFinish(AppId app) override;
  int ServiceLevelFor(AppId app) const override;

  const SabaClientStats& stats() const { return stats_; }

 private:
  ControllerInterface* controller_;
  SabaClientStats stats_;
};

}  // namespace saba

#endif  // SRC_CORE_SABA_CLIENT_H_
