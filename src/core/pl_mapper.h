// Application-to-Priority-Level mapping (paper §5.3.1).
//
// A datacenter runs far more applications than the network has priority
// levels (InfiniBand: 16 SLs). Saba groups applications by the coefficients
// of their sensitivity models using K-means; each group gets one PL, and the
// group centroid serves as the PL's sensitivity model in all downstream
// decisions.

#ifndef SRC_CORE_PL_MAPPER_H_
#define SRC_CORE_PL_MAPPER_H_

#include <vector>

#include "src/core/sensitivity.h"
#include "src/sim/rng.h"

namespace saba {

struct PlMapping {
  // app_to_pl[i] is the PL of the i-th input model, in [0, num_pls).
  std::vector<int> app_to_pl;
  // pl_models[p] is the centroid sensitivity model of PL p. Size equals the
  // number of PLs actually produced (= min(num_pls, #distinct apps)).
  std::vector<SensitivityModel> pl_models;
};

// Clusters `app_models` into at most `num_pls` groups. The feature space is
// the coefficient vector padded to the longest model. Deterministic given the
// Rng seed.
PlMapping MapAppsToPls(const std::vector<SensitivityModel>& app_models, int num_pls, Rng* rng);

}  // namespace saba

#endif  // SRC_CORE_PL_MAPPER_H_
