#include "src/core/planner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace saba {

CoRunPlanner::CoRunPlanner(const SensitivityTable* table, WeightSolverOptions options)
    : table_(table), solver_(options) {
  assert(table != nullptr);
}

CoRunPrediction CoRunPlanner::Predict(const std::vector<std::string>& workloads,
                                      Rng* rng) const {
  assert(!workloads.empty());
  std::vector<SensitivityModel> models;
  models.reserve(workloads.size());
  for (const std::string& name : workloads) {
    models.push_back(table_->ModelOrDefault(name));
  }

  CoRunPrediction prediction;
  const WeightSolverResult solved = solver_.Solve(models, rng);
  prediction.saba_weights = solved.weights;

  const double equal_share =
      solver_.options().capacity / static_cast<double>(workloads.size());
  double log_ratio_sum = 0;
  prediction.saba_slowdowns.reserve(models.size());
  prediction.equal_slowdowns.reserve(models.size());
  for (size_t i = 0; i < models.size(); ++i) {
    const double saba = models[i].SlowdownAt(solved.weights[i]);
    const double equal = models[i].SlowdownAt(equal_share);
    prediction.saba_slowdowns.push_back(saba);
    prediction.equal_slowdowns.push_back(equal);
    prediction.saba_average += saba;
    prediction.equal_average += equal;
    log_ratio_sum += std::log(equal / saba);
  }
  prediction.saba_average /= static_cast<double>(models.size());
  prediction.equal_average /= static_cast<double>(models.size());
  prediction.predicted_speedup = std::exp(log_ratio_sum / static_cast<double>(models.size()));
  return prediction;
}

double CoRunPlanner::GroupCost(const std::vector<SensitivityModel>& models, Rng* rng) const {
  if (models.empty()) {
    return 0;
  }
  return solver_.Solve(models, rng).objective;
}

PartitionPlan CoRunPlanner::Partition(const std::vector<std::string>& workloads,
                                      int num_groups, Rng* rng) const {
  assert(!workloads.empty());
  assert(num_groups >= 1);
  assert(rng != nullptr);
  const size_t n = workloads.size();
  num_groups = std::min(num_groups, static_cast<int>(n));

  std::vector<SensitivityModel> models;
  models.reserve(n);
  for (const std::string& name : workloads) {
    models.push_back(table_->ModelOrDefault(name));
  }

  // Greedy seed: most sensitive jobs first, each to the group that currently
  // has the fewest jobs (ties: lowest added cost). Spreading the steep
  // models apart is the intuition behind sensitivity-aware placement — two
  // very sensitive jobs on one port fight over the same headroom.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&models](size_t a, size_t b) {
    return models[a].SlowdownAt(0.25) > models[b].SlowdownAt(0.25);
  });

  std::vector<int> group(n, -1);
  std::vector<std::vector<SensitivityModel>> members(static_cast<size_t>(num_groups));
  const size_t max_per_group = (n + static_cast<size_t>(num_groups) - 1) /
                               static_cast<size_t>(num_groups);
  for (size_t rank = 0; rank < n; ++rank) {
    const size_t job = order[rank];
    int best_group = -1;
    double best_cost = 0;
    for (int g = 0; g < num_groups; ++g) {
      auto& candidates = members[static_cast<size_t>(g)];
      if (candidates.size() >= max_per_group) {
        continue;  // Balance constraint.
      }
      candidates.push_back(models[job]);
      const double cost = GroupCost(candidates, rng);
      candidates.pop_back();
      // Prefer emptier groups; break ties by cost.
      const double score =
          cost + static_cast<double>(candidates.size()) * 1e-6;  // Mild balance bias.
      if (best_group < 0 || score < best_cost) {
        best_group = g;
        best_cost = score;
      }
    }
    assert(best_group >= 0);
    group[job] = best_group;
    members[static_cast<size_t>(best_group)].push_back(models[job]);
  }

  // Pairwise-swap refinement until no improving swap exists.
  auto total_cost = [&]() {
    double total = 0;
    for (const auto& m : members) {
      total += GroupCost(m, rng);
    }
    return total;
  };
  auto rebuild_members = [&]() {
    for (auto& m : members) {
      m.clear();
    }
    for (size_t j = 0; j < n; ++j) {
      members[static_cast<size_t>(group[j])].push_back(models[j]);
    }
  };

  double current = total_cost();
  bool improved = true;
  int guard = 0;
  while (improved && guard++ < 32) {
    improved = false;
    for (size_t a = 0; a < n && !improved; ++a) {
      for (size_t b = a + 1; b < n && !improved; ++b) {
        if (group[a] == group[b]) {
          continue;
        }
        std::swap(group[a], group[b]);
        rebuild_members();
        const double candidate = total_cost();
        if (candidate + 1e-9 < current) {
          current = candidate;
          improved = true;
        } else {
          std::swap(group[a], group[b]);
          rebuild_members();
        }
      }
    }
  }

  PartitionPlan plan;
  plan.group = std::move(group);
  plan.total_cost = current;
  return plan;
}

}  // namespace saba
