// Bandwidth-sensitivity models and the sensitivity table (paper §4, Eq 1).
//
// A sensitivity model maps an available-bandwidth fraction b in (0, 1] to the
// application's predicted slowdown D(b) relative to unthrottled execution.
// The profiler produces one per workload by polynomial regression; the
// controller stores them in a SensitivityTable keyed by workload name and
// evaluates them when solving Eq 2.

#ifndef SRC_CORE_SENSITIVITY_H_
#define SRC_CORE_SENSITIVITY_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/numerics/polynomial.h"
#include "src/numerics/regression.h"

namespace saba {

// Bandwidth fractions below this are never allocated or evaluated; raw
// polynomial fits explode as b -> 0 and no WFQ weight is ever this small.
inline constexpr double kMinBandwidthFraction = 0.02;

class SensitivityModel {
 public:
  // Default: a perfectly insensitive application (D(b) == 1 everywhere).
  // Used for workloads that were never profiled.
  SensitivityModel() : poly_(std::vector<double>{1.0}) {}

  explicit SensitivityModel(Polynomial poly) : poly_(std::move(poly)) {}

  // Predicted slowdown at bandwidth fraction `b`. The input is clamped to
  // [kMinBandwidthFraction, 1] and the output to >= 1 (a sensible model
  // never predicts speedup from losing bandwidth; clamping guards against
  // extrapolation artifacts of the raw fit).
  double SlowdownAt(double b) const;

  // Raw polynomial (for the optimizer, which needs derivatives).
  const Polynomial& polynomial() const { return poly_; }

  // Coefficients as a fixed-length vector, zero-padded to `size` entries —
  // the feature vector used for PL clustering (§5.3.1). Requires size >
  // poly degree.
  std::vector<double> CoefficientVector(size_t size) const;

 private:
  Polynomial poly_;
};

// A profiled workload's record in the sensitivity table.
struct SensitivityEntry {
  SensitivityModel model;
  double r_squared = 0;
  // The profiling samples the model was fitted to (kept for diagnostics and
  // the model-fit figures).
  std::vector<Sample> samples;
  // Completion time at 100% bandwidth in the profiling configuration.
  double base_completion_seconds = 0;
};

// Workload name -> sensitivity entry. The offline profiler writes it; the
// controller reads it (§4.1 step 3, §5).
class SensitivityTable {
 public:
  void Put(const std::string& workload, SensitivityEntry entry);

  // nullptr if the workload was never profiled.
  const SensitivityEntry* Find(const std::string& workload) const;

  // The model for a workload, or the insensitive default when unknown.
  SensitivityModel ModelOrDefault(const std::string& workload) const;

  size_t size() const { return entries_.size(); }
  const std::map<std::string, SensitivityEntry>& entries() const { return entries_; }

  // CSV persistence: one row per workload — name, r_squared, base seconds,
  // then the polynomial coefficients (ascending degree). The distributed
  // controller's mapping database ships this file around (§5.4).
  std::string ToCsv() const;
  static std::optional<SensitivityTable> FromCsv(const std::string& csv);

 private:
  std::map<std::string, SensitivityEntry> entries_;
};

}  // namespace saba

#endif  // SRC_CORE_SENSITIVITY_H_
