// The controller's per-port weight calculation (paper Eq 2, §5.1, §7.2).
//
// Given the sensitivity models of the applications sending flows to a switch
// output port, find weights W = argmin sum_i D_i(w_i) subject to
// sum_i w_i = C_saba and w_i >= min_weight. The paper uses NLopt's SLSQP;
// this solver picks an exact dual-bisection path when every model is convex
// on the feasible interval (which well-fitted decreasing sensitivity models
// are) and falls back to multi-start projected gradient otherwise.

#ifndef SRC_CORE_WEIGHT_SOLVER_H_
#define SRC_CORE_WEIGHT_SOLVER_H_

#include <vector>

#include "src/core/sensitivity.h"
#include "src/sim/rng.h"

namespace saba {

struct WeightSolverOptions {
  // C_saba: fraction of link capacity managed by Saba (1.0 in all the
  // paper's experiments).
  double capacity = 1.0;
  // Absolute floor per application.
  double min_weight = 0.01;
  // Relative floor: every application is guaranteed at least
  // relative_min_weight * capacity / n. This models the weight granularity
  // of real WRR arbitration tables (InfiniBand VL weights are small
  // integers, bounding how skewed a port schedule can be) and is what keeps
  // Saba's worst-case per-job damage at the few-percent level the paper
  // reports (Fig 8a: Sort -5%, PR -1%) instead of starving flat-curve jobs.
  double relative_min_weight = 0.75;
};

struct WeightSolverResult {
  std::vector<double> weights;  // Same order as the input models; sums to capacity.
  double objective = 0;         // sum_i D_i(w_i) at the solution.
  bool used_convex_path = false;
};

class WeightSolver {
 public:
  explicit WeightSolver(WeightSolverOptions options = {});

  // Solves Eq 2 for the given applications. `rng` seeds the projected-
  // gradient restarts (deterministic given the seed); it is unused on the
  // convex path. Requires at least one model and
  // models.size() * min_weight <= capacity.
  WeightSolverResult Solve(const std::vector<SensitivityModel>& models, Rng* rng) const;

  const WeightSolverOptions& options() const { return options_; }

 private:
  WeightSolverOptions options_;
};

}  // namespace saba

#endif  // SRC_CORE_WEIGHT_SOLVER_H_
