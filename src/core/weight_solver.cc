#include "src/core/weight_solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

#include "src/numerics/simplex_optimizer.h"

namespace saba {
namespace {

// For a convex polynomial of degree <= 3, the derivative is at most
// quadratic, so (D')^{-1}(lambda) on [lo, hi] has a closed form. This is the
// hot path of the controller: Eq 2 is solved at every affected port on every
// connection change, and the paper's models are all degree <= 3.
double InverseDerivative(const Polynomial& deriv, double lambda, double lo, double hi) {
  if (deriv.Evaluate(lo) >= lambda) {
    return lo;
  }
  if (deriv.Evaluate(hi) <= lambda) {
    return hi;
  }
  const double d0 = deriv.coefficient(0);
  const double d1 = deriv.coefficient(1);
  const double d2 = deriv.coefficient(2);
  constexpr double kTiny = 1e-14;
  if (std::fabs(d2) < kTiny) {
    if (std::fabs(d1) < kTiny) {
      return lo;  // Flat derivative; boundary checks above already decided.
    }
    return std::clamp((lambda - d0) / d1, lo, hi);
  }
  const double disc = d1 * d1 - 4.0 * d2 * (d0 - lambda);
  if (disc < 0) {
    return lo;  // Numerically impossible given the boundary checks.
  }
  const double sq = std::sqrt(disc);
  const double r1 = (-d1 - sq) / (2.0 * d2);
  const double r2 = (-d1 + sq) / (2.0 * d2);
  constexpr double kSlack = 1e-9;
  // Prefer the root on the increasing branch of the derivative (convexity).
  for (double r : {r1, r2}) {
    if (r >= lo - kSlack && r <= hi + kSlack && 2.0 * d2 * r + d1 >= -kSlack) {
      return std::clamp(r, lo, hi);
    }
  }
  for (double r : {r1, r2}) {
    if (r >= lo - kSlack && r <= hi + kSlack) {
      return std::clamp(r, lo, hi);
    }
  }
  return lo;
}

// Exact dual bisection for convex degree-<=3 models: find lambda with
// sum_i clamp((D_i')^{-1}(lambda), lo, hi) == capacity.
std::vector<double> SolveConvexCubicDual(const std::vector<Polynomial>& derivs, double capacity,
                                         double lo, double hi) {
  double lambda_lo = std::numeric_limits<double>::infinity();
  double lambda_hi = -std::numeric_limits<double>::infinity();
  for (const Polynomial& d : derivs) {
    lambda_lo = std::min(lambda_lo, std::min(d.Evaluate(lo), d.Evaluate(hi)));
    lambda_hi = std::max(lambda_hi, std::max(d.Evaluate(lo), d.Evaluate(hi)));
  }
  lambda_lo -= 1.0;
  lambda_hi += 1.0;
  for (int it = 0; it < 100; ++it) {
    const double lambda = 0.5 * (lambda_lo + lambda_hi);
    double total = 0;
    for (const Polynomial& d : derivs) {
      total += InverseDerivative(d, lambda, lo, hi);
    }
    // Fixed-point early exit (bit-exact): once the midpoint equals an
    // endpoint, the remaining iterations cannot move the bracket.
    if (total < capacity) {
      if (lambda_lo == lambda) break;
      lambda_lo = lambda;
    } else {
      if (lambda_hi == lambda) break;
      lambda_hi = lambda;
    }
  }
  // The optimum may sit on a jump of the (piecewise) inverse: models with a
  // locally constant derivative switch from lo to hi discontinuously (linear
  // sensitivity models do this). Take the allocations just below and above
  // the final multiplier and distribute the residual capacity across the
  // jumping coordinates in proportion to their jump — exact for linear
  // models, a no-op when the inverse is continuous.
  std::vector<double> w_low(derivs.size());
  std::vector<double> w_high(derivs.size());
  double sum_low = 0;
  double sum_high = 0;
  for (size_t i = 0; i < derivs.size(); ++i) {
    w_low[i] = InverseDerivative(derivs[i], lambda_lo, lo, hi);
    w_high[i] = InverseDerivative(derivs[i], lambda_hi, lo, hi);
    sum_low += w_low[i];
    sum_high += w_high[i];
  }
  const double gap_total = sum_high - sum_low;
  const double deficit = capacity - sum_low;
  std::vector<double> w(derivs.size());
  for (size_t i = 0; i < derivs.size(); ++i) {
    const double gap = w_high[i] - w_low[i];
    w[i] = gap_total > 1e-15 ? w_low[i] + deficit * gap / gap_total : w_low[i];
  }
  return w;
}

}  // namespace

WeightSolver::WeightSolver(WeightSolverOptions options) : options_(options) {
  assert(options_.capacity > 0);
  assert(options_.min_weight >= 0);
}

WeightSolverResult WeightSolver::Solve(const std::vector<SensitivityModel>& models,
                                       Rng* rng) const {
  assert(!models.empty());
  const size_t n = models.size();
  WeightSolverResult result;

  if (n == 1) {
    result.weights = {options_.capacity};
    result.objective = models[0].SlowdownAt(options_.capacity);
    result.used_convex_path = true;
    return result;
  }

  // The per-application floor: the absolute minimum, raised by the relative
  // (WRR-granularity) guarantee, kept feasible.
  double min_weight =
      std::max(options_.min_weight,
               options_.relative_min_weight * options_.capacity / static_cast<double>(n));
  if (min_weight * static_cast<double>(n) > options_.capacity) {
    min_weight = options_.capacity / static_cast<double>(n);
  }

  SimplexConstraints constraints;
  constraints.capacity = options_.capacity;
  constraints.lower_bound = min_weight;
  constraints.upper_bound = options_.capacity;

  bool all_convex = true;
  bool all_cubic_or_less = true;
  std::vector<Polynomial> derivs;
  derivs.reserve(n);
  for (const SensitivityModel& model : models) {
    const Polynomial& poly = model.polynomial();
    all_convex = all_convex && poly.IsConvexOn(min_weight, options_.capacity);
    all_cubic_or_less = all_cubic_or_less && poly.degree() <= 3;
    derivs.push_back(poly.Derivative());
  }

  if (all_convex && all_cubic_or_less) {
    // Hot path: closed-form derivative inversion + dual bisection.
    std::vector<double> w =
        SolveConvexCubicDual(derivs, options_.capacity, min_weight, options_.capacity);
    result.weights = ProjectToCapacitySimplex(w, constraints);
    result.objective = 0;
    for (size_t i = 0; i < n; ++i) {
      result.objective += models[i].polynomial().Evaluate(result.weights[i]);
    }
    result.used_convex_path = true;
    return result;
  }

  std::vector<ScalarObjective> objectives;
  objectives.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Polynomial poly = models[i].polynomial();
    const Polynomial deriv = derivs[i];
    objectives.push_back(
        {[poly](double w) { return poly.Evaluate(w); },
         [deriv](double w) { return deriv.Evaluate(w); }});
  }

  SimplexMinimizeResult sol;
  if (all_convex) {
    sol = MinimizeConvexSeparable(objectives, constraints);
    result.used_convex_path = true;
  } else {
    assert(rng != nullptr);
    sol = MinimizeSeparableProjectedGradient(objectives, constraints, rng);
  }
  result.weights = std::move(sol.weights);
  result.objective = sol.objective;
  return result;
}

}  // namespace saba
