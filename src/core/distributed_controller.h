// Distributed controller (paper §5.4).
//
// Eq 2 is independent per switch output port, so the controller logic shards
// cleanly: each controller instance owns a group of switches and configures
// only their ports, fetching the application-to-PL mapping and PL clusters
// from a replicated database that the *profiler* populated offline. The price
// of sharding is staleness: PLs are clustered over the full profiled catalog
// rather than the live application mix, so the grouping can be coarser than
// the centralized controller's (the paper measures this at ~4%, study 7).
//
// The implementation reuses the centralized port machinery (the math is
// identical per port) and models the sharding explicitly for accounting:
// every connection setup is routed to the shard owning its first switch,
// which forwards along the path, one hop per shard boundary crossed.
//
// The signature-keyed Eq-2 solve cache and the queue-map memo (DESIGN.md
// §7.2) are inherited per shard from CentralizedController. Because a solve
// is a pure function of the port's app-mix signature — canonical model
// order, Rng seeded from the signature — shards dedupe independently yet
// still program bit-identical state for identical mixes; no cross-shard
// cache coherence is needed.

#ifndef SRC_CORE_DISTRIBUTED_CONTROLLER_H_
#define SRC_CORE_DISTRIBUTED_CONTROLLER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/controller.h"

namespace saba {

// The offline mapping database: workload -> PL plus the PL centroid models.
// Built once by the profiler from the full sensitivity table; replicated to
// every controller shard.
struct MappingDatabase {
  std::map<std::string, int> workload_to_pl;
  std::vector<SensitivityModel> pl_models;

  static MappingDatabase Build(const SensitivityTable& table, int num_pls, uint64_t seed);

  // PL for a workload; unknown workloads get the PL whose centroid is
  // nearest to the insensitive default model.
  int PlForWorkload(const std::string& workload) const;

  // Replication format (§5.4: the database is replicated to every controller
  // shard). Two sections: "pl,<id>,<coefficients...>" rows for the centroid
  // models, then "app,<workload>,<pl>" rows for the assignments.
  std::string ToCsv() const;
  static std::optional<MappingDatabase> FromCsv(const std::string& csv);
};

struct DistributedControllerOptions {
  ControllerOptions base;
  // Number of controller shards; switches are assigned round-robin by id.
  int num_shards = 8;
};

struct DistributedControllerStats {
  // Connection setups handled per shard (first-hop ownership).
  std::vector<uint64_t> conn_setups_per_shard;
  // Shard-to-shard forwarding messages (path crossed a shard boundary).
  uint64_t cross_shard_messages = 0;
};

class DistributedController : public CentralizedController {
 public:
  DistributedController(Network* network, FlowSimulator* flow_sim,
                        const SensitivityTable* table, MappingDatabase database,
                        DistributedControllerOptions options = {});

  // Registration consults the static database — no re-clustering happens at
  // runtime (that is exactly the §5.4 trade-off).
  int AppRegister(AppId app, const std::string& workload_name) override;
  void AppDeregister(AppId app) override;
  void ConnCreate(AppId app, NodeId src, NodeId dst, uint64_t path_salt) override;

  const DistributedControllerStats& distributed_stats() const { return dist_stats_; }

  // The shard owning a port (the src node for switch egress; the dst switch
  // for host NIC egress, since the NIC is configured via its ToR's manager).
  int ShardOfPort(LinkId link) const;

 private:
  MappingDatabase database_;
  int num_shards_;
  DistributedControllerStats dist_stats_;
};

}  // namespace saba

#endif  // SRC_CORE_DISTRIBUTED_CONTROLLER_H_
