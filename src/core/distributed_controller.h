// Distributed controller (paper §5.4).
//
// Eq 2 is independent per switch output port, so the controller logic shards
// cleanly: each controller instance owns a group of switches and configures
// only their ports, fetching the application-to-PL mapping and PL clusters
// from a replicated database that the *profiler* populated offline. The price
// of sharding is staleness: PLs are clustered over the full profiled catalog
// rather than the live application mix, so the grouping can be coarser than
// the centralized controller's (the paper measures this at ~4%, study 7).
//
// The implementation reuses the centralized port machinery (the math is
// identical per port) and shards it for real: each shard owns the disjoint
// set of ports whose owning switch hashes to it, with its own solve context
// (Eq-2 cache, queue-map memo, scratch). A flush batches the dirty-port
// delta stream per shard and dispatches one task per dirty shard across a
// saba::WorkerPool (`shard_jobs` workers); small batches fall back to the
// caller thread. Connection setups are additionally accounted to the shard
// owning their first switch, one forward per shard boundary crossed (§5.4).
//
// Determinism (DESIGN.md §7.3): shards own disjoint ports and write only
// their own context, their ports' PortConfig, and their ports' pre-created
// port_weights_ slots; stats merge in ascending shard order after the
// workers join. Because an Eq-2 solve is a pure function of the port's
// app-mix signature — canonical model order, Rng seeded from the signature
// (§7.2) — per-shard caches dedupe independently yet program bit-identical
// state for identical mixes, with no cross-shard cache coherence. Neither
// num_shards nor shard_jobs can change any programmed rate, queue map, or
// merged stats counter (tests/sharded_flush_test.cc enforces this against
// the centralized oracle under churn). Only the eq2 hit/miss *split* and the
// explicitly per-shard counters depend on num_shards; their totals do not.

#ifndef SRC_CORE_DISTRIBUTED_CONTROLLER_H_
#define SRC_CORE_DISTRIBUTED_CONTROLLER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/controller.h"
#include "src/sim/worker_pool.h"

namespace saba {

// The offline mapping database: workload -> PL plus the PL centroid models.
// Built once by the profiler from the full sensitivity table; replicated to
// every controller shard.
struct MappingDatabase {
  std::map<std::string, int> workload_to_pl;
  std::vector<SensitivityModel> pl_models;

  static MappingDatabase Build(const SensitivityTable& table, int num_pls, uint64_t seed);

  // PL for a workload; unknown workloads get the PL whose centroid is
  // nearest to the insensitive default model.
  int PlForWorkload(const std::string& workload) const;

  // Replication format (§5.4: the database is replicated to every controller
  // shard). Two sections: "pl,<id>,<coefficients...>" rows for the centroid
  // models, then "app,<workload>,<pl>" rows for the assignments.
  std::string ToCsv() const;
  static std::optional<MappingDatabase> FromCsv(const std::string& csv);
};

struct DistributedControllerOptions {
  ControllerOptions base;
  // Number of controller shards; switches are assigned round-robin by id.
  int num_shards = 8;
  // Worker threads for the sharded flush (1 = serial on the caller thread,
  // the default so existing byte-streams are unchanged). Results are
  // bit-identical at every setting — the fan-out is pure scheduling.
  int shard_jobs = 1;
};

struct DistributedControllerStats {
  // Connection setups handled per shard (first-hop ownership). Sized
  // num_shards, so inherently shard-count-specific; the sum is not.
  std::vector<uint64_t> conn_setups_per_shard;
  // Shard-to-shard forwarding messages (path crossed a shard boundary).
  uint64_t cross_shard_messages = 0;
  // Flush accounting. `flushes` and `ports_flushed` are invariant across
  // both num_shards and shard_jobs; `parallel_flushes` counts batches
  // dispatched to the worker pool — a deterministic function of the delta
  // stream and num_shards, always 0 when shard_jobs == 1 and identical for
  // every shard_jobs > 1.
  uint64_t flushes = 0;
  uint64_t parallel_flushes = 0;
  uint64_t ports_flushed = 0;
};

class DistributedController : public CentralizedController {
 public:
  DistributedController(Network* network, FlowSimulator* flow_sim,
                        const SensitivityTable* table, MappingDatabase database,
                        DistributedControllerOptions options = {});

  // Registration consults the static database — no re-clustering happens at
  // runtime (that is exactly the §5.4 trade-off).
  int AppRegister(AppId app, const std::string& workload_name) override;
  void AppDeregister(AppId app) override;
  void ConnCreate(AppId app, NodeId src, NodeId dst, uint64_t path_salt) override;

  const DistributedControllerStats& distributed_stats() const { return dist_stats_; }

  // The shard owning a port (the src node for switch egress; the dst switch
  // for host NIC egress, since the NIC is configured via its ToR's manager).
  int ShardOfPort(LinkId link) const;

  int num_shards() const { return num_shards_; }

  // Resets the flush worker count (>= 1). Cheap when unchanged; otherwise
  // the pool is torn down and lazily rebuilt on the next dispatched flush.
  void SetShardJobs(int jobs);

 protected:
  // Partitions the dirty set by owning shard and reallocates each shard's
  // batch with that shard's own solve context — on the worker pool when the
  // batch is big enough (see kMinParallelFlushPorts), inline otherwise.
  void FlushDirtyPorts() override;

 private:
  // Batches below this many dirty ports run on the caller thread even with
  // shard_jobs > 1: pool dispatch costs a few microseconds, which dwarfs a
  // handful of warm-cache port solves (the same adaptive fallback the
  // allocation engine applies to tiny component batches, DESIGN.md §7.3).
  static constexpr size_t kMinParallelFlushPorts = 64;

  MappingDatabase database_;
  int num_shards_;
  int shard_jobs_;
  DistributedControllerStats dist_stats_;
  // One solve context per shard; shard s is touched by exactly one worker
  // task per flush, so contexts are worker-confined by construction.
  std::vector<PortSolveContext> shard_ctxs_;
  std::vector<std::vector<LinkId>> shard_ports_;  // Scratch: dirty links per shard.
  std::vector<int> dirty_shards_;                 // Scratch: shards with work, ascending.
  std::unique_ptr<WorkerPool> pool_;              // Lazy; only with shard_jobs > 1.
};

}  // namespace saba

#endif  // SRC_CORE_DISTRIBUTED_CONTROLLER_H_
