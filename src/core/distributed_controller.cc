#include "src/core/distributed_controller.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "src/numerics/linalg.h"
#include "src/sim/wallclock.h"

namespace saba {
namespace {

// Strict numeric field parsers for FromCsv: the whole field must be the
// number. Corrupt replication payloads must surface as nullopt, never as an
// exception (std::stoi throws) or a silently truncated value.
std::optional<long long> ParseIntField(const std::string& text) {
  if (text.empty() || std::isspace(static_cast<unsigned char>(text.front()))) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size()) {
    return std::nullopt;
  }
  return parsed;
}

std::optional<double> ParseDoubleField(const std::string& text) {
  if (text.empty() || std::isspace(static_cast<unsigned char>(text.front()))) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (errno == ERANGE || end != text.c_str() + text.size()) {
    return std::nullopt;
  }
  return parsed;
}

}  // namespace

MappingDatabase MappingDatabase::Build(const SensitivityTable& table, int num_pls,
                                       uint64_t seed) {
  assert(table.size() > 0);
  std::vector<std::string> names;
  std::vector<SensitivityModel> models;
  names.reserve(table.size());
  for (const auto& [name, entry] : table.entries()) {
    names.push_back(name);
    models.push_back(entry.model);
  }
  Rng rng(seed);
  const PlMapping mapping = MapAppsToPls(models, num_pls, &rng);

  MappingDatabase db;
  for (size_t i = 0; i < names.size(); ++i) {
    db.workload_to_pl[names[i]] = mapping.app_to_pl[i];
  }
  db.pl_models = mapping.pl_models;
  return db;
}

int MappingDatabase::PlForWorkload(const std::string& workload) const {
  auto it = workload_to_pl.find(workload);
  if (it != workload_to_pl.end()) {
    return it->second;
  }
  // Unknown workload: treat as insensitive and pick the nearest centroid.
  const SensitivityModel fallback;
  size_t dim = 1;
  for (const SensitivityModel& model : pl_models) {
    dim = std::max(dim, model.polynomial().degree() + 1);
  }
  const std::vector<double> target = fallback.CoefficientVector(dim);
  int best_pl = 0;
  double best = std::numeric_limits<double>::infinity();
  for (size_t p = 0; p < pl_models.size(); ++p) {
    const double d = SquaredDistance(target, pl_models[p].CoefficientVector(dim));
    if (d < best) {
      best = d;
      best_pl = static_cast<int>(p);
    }
  }
  return best_pl;
}

std::string MappingDatabase::ToCsv() const {
  std::ostringstream os;
  os.precision(17);
  for (size_t p = 0; p < pl_models.size(); ++p) {
    os << "pl," << p;
    for (double coeff : pl_models[p].polynomial().coefficients()) {
      os << ',' << coeff;
    }
    os << '\n';
  }
  for (const auto& [workload, pl] : workload_to_pl) {
    os << "app," << workload << ',' << pl << '\n';
  }
  return os.str();
}

std::optional<MappingDatabase> MappingDatabase::FromCsv(const std::string& csv) {
  MappingDatabase db;
  std::istringstream is(csv);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream row(line);
    std::string kind;
    if (!std::getline(row, kind, ',')) {
      return std::nullopt;
    }
    if (kind == "pl") {
      std::string field;
      if (!std::getline(row, field, ',')) {
        return std::nullopt;
      }
      const std::optional<long long> id = ParseIntField(field);
      if (!id.has_value() || *id < 0 ||
          static_cast<size_t>(*id) != db.pl_models.size()) {
        return std::nullopt;  // PL ids must be numeric, dense, and in order.
      }
      std::vector<double> coeffs;
      while (std::getline(row, field, ',')) {
        const std::optional<double> coeff = ParseDoubleField(field);
        if (!coeff.has_value()) {
          return std::nullopt;
        }
        coeffs.push_back(*coeff);
      }
      if (coeffs.empty()) {
        return std::nullopt;
      }
      db.pl_models.emplace_back(Polynomial(std::move(coeffs)));
    } else if (kind == "app") {
      std::string workload;
      std::string pl;
      if (!std::getline(row, workload, ',') || !std::getline(row, pl, ',')) {
        return std::nullopt;
      }
      const std::optional<long long> pl_id = ParseIntField(pl);
      if (!pl_id.has_value() || *pl_id < 0 ||
          static_cast<size_t>(*pl_id) >= db.pl_models.size()) {
        return std::nullopt;  // Assignments must reference declared PLs.
      }
      db.workload_to_pl[workload] = static_cast<int>(*pl_id);
    } else {
      return std::nullopt;
    }
  }
  if (db.pl_models.empty()) {
    return std::nullopt;
  }
  return db;
}

DistributedController::DistributedController(Network* network, FlowSimulator* flow_sim,
                                             const SensitivityTable* table,
                                             MappingDatabase database,
                                             DistributedControllerOptions options)
    : CentralizedController(network, flow_sim, table, options.base),
      database_(std::move(database)),
      num_shards_(options.num_shards),
      shard_jobs_(options.shard_jobs) {
  assert(num_shards_ >= 1);
  assert(shard_jobs_ >= 1);
  assert(!database_.pl_models.empty());
  InstallPlModels(database_.pl_models);
  // One solve context per shard, each with its own Eq-2 cache and queue-map
  // memo over the (static, §5.4) database geometry. The contexts never need
  // rebuilding: the distributed controller does not re-cluster at runtime.
  shard_ctxs_.reserve(static_cast<size_t>(num_shards_));
  for (int s = 0; s < num_shards_; ++s) {
    shard_ctxs_.emplace_back(options.base.solve_cache);
    shard_ctxs_.back().mapper.emplace(database_.pl_models, options.base.solve_cache);
  }
  shard_ports_.resize(static_cast<size_t>(num_shards_));
  dist_stats_.conn_setups_per_shard.assign(static_cast<size_t>(num_shards_), 0);
}

void DistributedController::SetShardJobs(int jobs) {
  assert(jobs >= 1);
  if (jobs == shard_jobs_) {
    return;
  }
  shard_jobs_ = jobs;
  pool_.reset();
}

int DistributedController::AppRegister(AppId app, const std::string& workload_name) {
  const int pl = database_.PlForWorkload(workload_name);
  RegisterAppStatic(app, workload_name, pl);
  if (flow_sim_ != nullptr) {
    flow_sim_->SetAppServiceLevel(app, pl);
  }
  return pl;
}

void DistributedController::AppDeregister(AppId app) {
  auto it = apps_.find(app);
  assert(it != apps_.end());
  assert(it->second.connections == 0);
  ++stats_.deregistrations;
  apps_.erase(it);
  // No re-clustering: the PL geometry is fixed by the offline database.
}

void DistributedController::FlushDirtyPorts() {
  if (dirty_ports_.empty()) {
    return;
  }
  Stopwatch watch;

  // Batch the delta stream per owning shard. The dirty set is unordered
  // (annotated at its declaration); each shard's batch is sorted ascending
  // below, and results cannot depend on visit order anyway — solves are
  // keyed by signature, ports are disjoint across shards.
  for (std::vector<LinkId>& batch : shard_ports_) {
    batch.clear();
  }
  for (LinkId link : dirty_ports_) {
    shard_ports_[static_cast<size_t>(ShardOfPort(link))].push_back(link);
  }
  dirty_ports_.clear();

  dirty_shards_.clear();
  size_t dirty_count = 0;
  for (int s = 0; s < num_shards_; ++s) {
    std::vector<LinkId>& batch = shard_ports_[static_cast<size_t>(s)];
    if (batch.empty()) {
      continue;
    }
    std::sort(batch.begin(), batch.end());
    dirty_shards_.push_back(s);
    dirty_count += batch.size();
  }

  // Pre-create each active port's weight slot serially: the workers then
  // only rewrite per-port vectors, never the shared map's structure.
  for (const int s : dirty_shards_) {
    for (const LinkId link : shard_ports_[static_cast<size_t>(s)]) {
      if (port_apps_.find(link) != port_apps_.end()) {
        (void)port_weights_[link];
      }
    }
  }

  ++dist_stats_.flushes;
  dist_stats_.ports_flushed += dirty_count;

  // Adaptive dispatch (DESIGN.md §7.3): one pool task per dirty shard, or
  // the caller thread when the batch is too small to amortize the dispatch.
  // The decision is a pure function of the delta stream, num_shards, and
  // shard_jobs — never of thread timing.
  const bool fan_out =
      shard_jobs_ > 1 && dirty_shards_.size() > 1 && dirty_count >= kMinParallelFlushPorts;
  if (fan_out) {
    ++dist_stats_.parallel_flushes;
    if (pool_ == nullptr) {
      pool_ = std::make_unique<WorkerPool>(shard_jobs_);
    }
    pool_->Run(dirty_shards_.size(), [this](size_t index, int /*slot*/) {
      const int shard = dirty_shards_[index];
      PortSolveContext* ctx = &shard_ctxs_[static_cast<size_t>(shard)];
      for (const LinkId link : shard_ports_[static_cast<size_t>(shard)]) {
        ReallocatePort(link, ctx);
      }
    });
  } else {
    for (const int shard : dirty_shards_) {
      PortSolveContext* ctx = &shard_ctxs_[static_cast<size_t>(shard)];
      for (const LinkId link : shard_ports_[static_cast<size_t>(shard)]) {
        ReallocatePort(link, ctx);
      }
    }
  }

  // Deterministic merge: drain per-shard counters in ascending shard order
  // after the workers have joined.
  for (const int shard : dirty_shards_) {
    DrainContextStats(&shard_ctxs_[static_cast<size_t>(shard)]);
  }
  FinishFlush(watch.ElapsedSeconds());
}

int DistributedController::ShardOfPort(LinkId link) const {
  const Link& l = network_->topology().link(link);
  const NodeId owner = IsSwitch(network_->topology().node(l.src).kind) ? l.src : l.dst;
  return static_cast<int>(owner) % num_shards_;
}

void DistributedController::ConnCreate(AppId app, NodeId src, NodeId dst, uint64_t path_salt) {
  // Account the shard traffic: the library contacts the shard owning the
  // first port; each shard boundary along the path costs one forward (§5.4).
  const std::vector<LinkId>& path = network_->router().Route(src, dst, path_salt);
  if (!path.empty()) {
    const int first_shard = ShardOfPort(path.front());
    dist_stats_.conn_setups_per_shard[static_cast<size_t>(first_shard)] += 1;
    int prev = first_shard;
    for (LinkId link : path) {
      const int shard = ShardOfPort(link);
      if (shard != prev) {
        ++dist_stats_.cross_shard_messages;
        prev = shard;
      }
    }
  }
  CentralizedController::ConnCreate(app, src, dst, path_salt);
}

}  // namespace saba
