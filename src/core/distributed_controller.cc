#include "src/core/distributed_controller.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <sstream>

#include "src/numerics/linalg.h"

namespace saba {

MappingDatabase MappingDatabase::Build(const SensitivityTable& table, int num_pls,
                                       uint64_t seed) {
  assert(table.size() > 0);
  std::vector<std::string> names;
  std::vector<SensitivityModel> models;
  names.reserve(table.size());
  for (const auto& [name, entry] : table.entries()) {
    names.push_back(name);
    models.push_back(entry.model);
  }
  Rng rng(seed);
  const PlMapping mapping = MapAppsToPls(models, num_pls, &rng);

  MappingDatabase db;
  for (size_t i = 0; i < names.size(); ++i) {
    db.workload_to_pl[names[i]] = mapping.app_to_pl[i];
  }
  db.pl_models = mapping.pl_models;
  return db;
}

int MappingDatabase::PlForWorkload(const std::string& workload) const {
  auto it = workload_to_pl.find(workload);
  if (it != workload_to_pl.end()) {
    return it->second;
  }
  // Unknown workload: treat as insensitive and pick the nearest centroid.
  const SensitivityModel fallback;
  size_t dim = 1;
  for (const SensitivityModel& model : pl_models) {
    dim = std::max(dim, model.polynomial().degree() + 1);
  }
  const std::vector<double> target = fallback.CoefficientVector(dim);
  int best_pl = 0;
  double best = std::numeric_limits<double>::infinity();
  for (size_t p = 0; p < pl_models.size(); ++p) {
    const double d = SquaredDistance(target, pl_models[p].CoefficientVector(dim));
    if (d < best) {
      best = d;
      best_pl = static_cast<int>(p);
    }
  }
  return best_pl;
}

std::string MappingDatabase::ToCsv() const {
  std::ostringstream os;
  os.precision(17);
  for (size_t p = 0; p < pl_models.size(); ++p) {
    os << "pl," << p;
    for (double coeff : pl_models[p].polynomial().coefficients()) {
      os << ',' << coeff;
    }
    os << '\n';
  }
  for (const auto& [workload, pl] : workload_to_pl) {
    os << "app," << workload << ',' << pl << '\n';
  }
  return os.str();
}

std::optional<MappingDatabase> MappingDatabase::FromCsv(const std::string& csv) {
  MappingDatabase db;
  std::istringstream is(csv);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream row(line);
    std::string kind;
    if (!std::getline(row, kind, ',')) {
      return std::nullopt;
    }
    if (kind == "pl") {
      std::string field;
      if (!std::getline(row, field, ',')) {
        return std::nullopt;
      }
      const size_t id = static_cast<size_t>(std::stoul(field));
      if (id != db.pl_models.size()) {
        return std::nullopt;  // PL rows must be dense and in order.
      }
      std::vector<double> coeffs;
      while (std::getline(row, field, ',')) {
        coeffs.push_back(std::stod(field));
      }
      if (coeffs.empty()) {
        return std::nullopt;
      }
      db.pl_models.emplace_back(Polynomial(std::move(coeffs)));
    } else if (kind == "app") {
      std::string workload;
      std::string pl;
      if (!std::getline(row, workload, ',') || !std::getline(row, pl, ',')) {
        return std::nullopt;
      }
      const int pl_id = std::stoi(pl);
      if (pl_id < 0 || static_cast<size_t>(pl_id) >= db.pl_models.size()) {
        return std::nullopt;  // Assignments must reference declared PLs.
      }
      db.workload_to_pl[workload] = pl_id;
    } else {
      return std::nullopt;
    }
  }
  if (db.pl_models.empty()) {
    return std::nullopt;
  }
  return db;
}

DistributedController::DistributedController(Network* network, FlowSimulator* flow_sim,
                                             const SensitivityTable* table,
                                             MappingDatabase database,
                                             DistributedControllerOptions options)
    : CentralizedController(network, flow_sim, table, options.base),
      database_(std::move(database)),
      num_shards_(options.num_shards) {
  assert(num_shards_ >= 1);
  assert(!database_.pl_models.empty());
  InstallPlModels(database_.pl_models);
  dist_stats_.conn_setups_per_shard.assign(static_cast<size_t>(num_shards_), 0);
}

int DistributedController::AppRegister(AppId app, const std::string& workload_name) {
  const int pl = database_.PlForWorkload(workload_name);
  RegisterAppStatic(app, workload_name, pl);
  if (flow_sim_ != nullptr) {
    flow_sim_->SetAppServiceLevel(app, pl);
  }
  return pl;
}

void DistributedController::AppDeregister(AppId app) {
  auto it = apps_.find(app);
  assert(it != apps_.end());
  assert(it->second.connections == 0);
  ++stats_.deregistrations;
  apps_.erase(it);
  // No re-clustering: the PL geometry is fixed by the offline database.
}

int DistributedController::ShardOfPort(LinkId link) const {
  const Link& l = network_->topology().link(link);
  const NodeId owner = IsSwitch(network_->topology().node(l.src).kind) ? l.src : l.dst;
  return static_cast<int>(owner) % num_shards_;
}

void DistributedController::ConnCreate(AppId app, NodeId src, NodeId dst, uint64_t path_salt) {
  // Account the shard traffic: the library contacts the shard owning the
  // first port; each shard boundary along the path costs one forward (§5.4).
  const std::vector<LinkId>& path = network_->router().Route(src, dst, path_salt);
  if (!path.empty()) {
    const int first_shard = ShardOfPort(path.front());
    dist_stats_.conn_setups_per_shard[static_cast<size_t>(first_shard)] += 1;
    int prev = first_shard;
    for (LinkId link : path) {
      const int shard = ShardOfPort(link);
      if (shard != prev) {
        ++dist_stats_.cross_shard_messages;
        prev = shard;
      }
    }
  }
  CentralizedController::ConnCreate(app, src, dst, path_salt);
}

}  // namespace saba
