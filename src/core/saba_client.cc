#include "src/core/saba_client.h"

#include <cassert>

namespace saba {

SabaClient::SabaClient(ControllerInterface* controller) : controller_(controller) {
  assert(controller != nullptr);
}

int SabaClient::OnAppStart(AppId app, const std::string& workload_name,
                           const std::vector<NodeId>&) {
  ++stats_.rpc_calls;
  return controller_->AppRegister(app, workload_name);
}

void SabaClient::OnConnectionOpen(AppId app, NodeId src, NodeId dst, uint64_t path_salt) {
  ++stats_.rpc_calls;
  ++stats_.connections_opened;
  controller_->ConnCreate(app, src, dst, path_salt);
}

void SabaClient::OnConnectionClose(AppId app, NodeId src, NodeId dst, uint64_t path_salt) {
  ++stats_.rpc_calls;
  ++stats_.connections_closed;
  controller_->ConnDestroy(app, src, dst, path_salt);
}

void SabaClient::OnAppFinish(AppId app) {
  ++stats_.rpc_calls;
  controller_->AppDeregister(app);
}

int SabaClient::ServiceLevelFor(AppId app) const { return controller_->CurrentServiceLevel(app); }

}  // namespace saba
