// saba-lint: the repository's determinism & invariant static-analysis pass.
//
// A token-aware (comment/string/preprocessor-stripping) checker — deliberately
// not a libclang front-end, so it builds everywhere the simulator builds and
// runs in milliseconds over the whole tree. It enforces the invariants that
// DESIGN.md §7 ("Determinism & threading model") and §8 ("Static analysis")
// codify; runtime tests catch violations only on exercised paths, this pass
// catches the whole class at diff time.
//
// Rules (each finding prints as "file:line: [R#] message"):
//   R1  randomness only through saba::Rng        (no std::rand / mt19937 / …)
//   R2  wall-clock reads only via src/sim/wallclock.h
//   R3  bench stdout discipline: no timings / job counts on stdout
//   R4  unordered-container uses must carry an iteration-order audit
//       annotation: // saba-lint: unordered-iter-ok(<reason>)
//   R5  environment access only through src/exp/knobs.h
//   R6  src/-rooted quote-includes and canonical header guards
//   R7  threads/locks (std::thread, std::async, std::mutex, …) constructed
//       only inside the blessed pool primitive, src/sim/worker_pool.{h,cc}
//
// Suppression: a finding on line N is suppressed by a comment on line N or
// N-1 of the form  // saba-lint: allow(R2): <reason>.  R4 uses its dedicated
// annotation (unordered-iter-ok) instead, so every suppression doubles as an
// audit record.

#ifndef TOOLS_SABA_LINT_LINT_H_
#define TOOLS_SABA_LINT_LINT_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace saba {
namespace lint {

struct Finding {
  std::string file;     // Path as reported to the user.
  int line = 0;         // 1-based.
  std::string rule;     // "R1".."R7".
  std::string message;  // Human-readable explanation.
};

// One rule id + summary per entry, for --list-rules and the docs self-test.
std::vector<std::pair<std::string, std::string>> RuleTable();

// Lints one translation unit. `rel_path` is the repository-relative path
// ("src/sim/rng.cc") — rule scoping (per-directory applicability and the
// rng/wallclock/knobs exemptions) keys off it; `display_path` is what
// findings report (often the path the user passed). `content` is the file
// body.
std::vector<Finding> LintFile(const std::string& rel_path, const std::string& display_path,
                              std::string_view content);

// Convenience: rel_path doubles as display path.
std::vector<Finding> LintFile(const std::string& rel_path, std::string_view content);

// Expands files/directories (recursively; *.cc, *.h, *.cpp; skips testdata/
// and hidden directories), lints each file, writes findings to `out` and
// returns them. Paths may be absolute or repo-relative; scoping uses the
// top-level-directory suffix (src/, bench/, tests/, examples/, tools/).
std::vector<Finding> LintPaths(const std::vector<std::string>& paths, std::ostream& out);

// Maps an on-disk path to the repository-relative path used for scoping:
// the suffix starting at the last top-level marker (src/, bench/, tests/,
// examples/, tools/). Returns the input unchanged if no marker is found.
std::string RelativizePath(const std::string& path);

}  // namespace lint
}  // namespace saba

#endif  // TOOLS_SABA_LINT_LINT_H_
