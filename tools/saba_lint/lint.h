// saba-lint: the repository's determinism & invariant static-analysis pass.
//
// A token-aware (comment/string/preprocessor-stripping) checker — deliberately
// not a libclang front-end, so it builds everywhere the simulator builds and
// runs in milliseconds over the whole tree. It enforces the invariants that
// DESIGN.md §7 ("Determinism & threading model"), §8 ("Static analysis") and
// §9 (the layer DAG) codify; runtime tests catch violations only on exercised
// paths, this pass catches the whole class at diff time.
//
// The analyzer runs in two phases over one shared scan of the tree (each
// file is read and tokenized exactly once, tools/saba_lint/scanner.h):
// phase 1 lints each translation unit in isolation (R1–R8) and extracts a
// lightweight TU model (tools/saba_lint/model.h); phase 2 merges the models
// and checks the whole-program rules (R9–R11, tools/saba_lint/project.h).
//
// Rules (each finding prints as "file:line: [R#] message"):
//   R1  randomness only through saba::Rng        (no std::rand / mt19937 / …)
//   R2  wall-clock reads only via src/sim/wallclock.h
//   R3  bench stdout discipline: no timings / job counts on stdout
//   R4  unordered-container uses must carry an iteration-order audit
//       annotation: // saba-lint: unordered-iter-ok(<reason>)
//   R5  environment access only through src/exp/knobs.h
//   R6  src/-rooted quote-includes and canonical header guards
//   R7  threads/locks (std::thread, std::async, std::mutex, …) constructed
//       only inside the blessed pool primitive, src/sim/worker_pool.{h,cc}
//   R8  allocation-core rates stay fixed-point Bps64
//   R9  includes respect the §9 layer DAG (tools/saba_lint/layers.txt) and
//       form no cycle
//   R10 mutable namespace-scope / static-local state outside src/sim/ must
//       carry // saba-lint: shared-state-ok(<reason>)
//   R11 lambdas handed to WorkerPool dispatches must not capture by
//       reference without // saba-lint: pool-capture-ok(<reason>)
//
// Suppression: a finding on line N is suppressed by a comment on line N or
// N-1 of the form  // saba-lint: allow(R2): <reason>.  R4/R10/R11 use their
// dedicated annotations (unordered-iter-ok / shared-state-ok /
// pool-capture-ok) instead, so every suppression doubles as an audit record.

#ifndef TOOLS_SABA_LINT_LINT_H_
#define TOOLS_SABA_LINT_LINT_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "tools/saba_lint/scanner.h"

namespace saba {
namespace lint {

struct Finding {
  std::string file;     // Path as reported to the user.
  int line = 0;         // 1-based.
  std::string rule;     // "R1".."R11".
  std::string message;  // Human-readable explanation.
};

// One rule id + summary per entry, for --list-rules and the docs self-test.
std::vector<std::pair<std::string, std::string>> RuleTable();

// Phase-1 per-file rules (R1–R8) over an already-scanned unit.
std::vector<Finding> LintTu(const ScannedTu& tu);

// Lints one translation unit. `rel_path` is the repository-relative path
// ("src/sim/rng.cc") — rule scoping (per-directory applicability and the
// rng/wallclock/knobs exemptions) keys off it; `display_path` is what
// findings report (often the path the user passed). `content` is the file
// body. Runs the per-file rules only; the project rules need the whole tree
// (LintTree below).
std::vector<Finding> LintFile(const std::string& rel_path, const std::string& display_path,
                              std::string_view content);

// Convenience: rel_path doubles as display path.
std::vector<Finding> LintFile(const std::string& rel_path, std::string_view content);

// Machine-readable output for tooling: kText is the classic
// "file:line: [R#] message" stream, kJson a stable JSON document (sorted
// findings, no timestamps — byte-identical across runs on the same tree),
// kGithub GitHub Actions "::error file=..,line=.." workflow annotations.
enum class OutputFormat { kText, kJson, kGithub };

struct TreeLintOptions {
  // Path to the layer map. Empty = auto-discover tools/saba_lint/layers.txt
  // by walking up from the first input path; failure to find it is an [R0]
  // finding (the DAG check must never silently vanish).
  std::string layers_path;
};

struct TreeLintResult {
  std::vector<Finding> findings;         // Both phases, sorted (file, line, rule).
  std::vector<std::string> graph_edges;  // Layer DAG edges for --graph.
  size_t files_scanned = 0;
};

// The full two-phase pipeline: expands files/directories (recursively; *.cc,
// *.h, *.cpp; skips testdata/, build/ and hidden directories), reads and
// scans each file once, runs R1–R8 per file and R9–R11 over the merged
// models. Paths may be absolute or repo-relative; scoping uses the
// top-level-directory suffix (src/, bench/, tests/, examples/, tools/).
TreeLintResult LintTree(const std::vector<std::string>& paths, const TreeLintOptions& options);

// Convenience wrapper kept for the build-target/test gate: runs LintTree
// with auto-discovered layers and prints text findings to `out`.
std::vector<Finding> LintPaths(const std::vector<std::string>& paths, std::ostream& out);

// Writes findings in the requested format. For kJson, `files_scanned` is
// embedded in the report header.
void PrintFindings(const std::vector<Finding>& findings, OutputFormat format,
                   size_t files_scanned, std::ostream& out);

// Maps an on-disk path to the repository-relative path used for scoping:
// the suffix starting at the last top-level marker (src/, bench/, tests/,
// examples/, tools/). Returns the input unchanged if no marker is found.
std::string RelativizePath(const std::string& path);

}  // namespace lint
}  // namespace saba

#endif  // TOOLS_SABA_LINT_LINT_H_
