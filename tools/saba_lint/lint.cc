#include "tools/saba_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <utility>

namespace saba {
namespace lint {
namespace {

// ---------------------------------------------------------------------------
// Scanner: split a translation unit into per-line code text (comments and
// string/char-literal contents blanked with spaces, so columns and line
// numbers survive) and per-line comment text (for annotations/suppressions).
// ---------------------------------------------------------------------------

struct ScannedFile {
  std::vector<std::string> raw;       // raw[i] = line i+1 verbatim (for R6)
  std::vector<std::string> code;      // code[i] = line i+1, literals blanked
  std::vector<std::string> comments;  // comments[i] = comment text on line i+1
};

std::vector<std::string> SplitLines(std::string_view content) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= content.size()) {
    const size_t nl = content.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(content.substr(start));
      break;
    }
    lines.emplace_back(content.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

// True if `c` can end an expression — used to tell a char literal from a
// C++14 digit separator (1'000'000) or a user-defined-literal quote.
bool EndsExpression(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == ')' || c == ']';
}

ScannedFile Scan(std::string_view content) {
  ScannedFile out;
  out.raw = SplitLines(content);
  out.code.emplace_back();
  out.comments.emplace_back();

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_terminator;  // For kRawString: )delim" that ends it.
  char last_code_char = '\0';  // Last significant code char (for ' disambiguation).

  size_t i = 0;
  const size_t n = content.size();
  auto code_put = [&](char c) { out.code.back().push_back(c); };
  auto comment_put = [&](char c) { out.comments.back().push_back(c); };
  auto newline = [&] {
    out.code.emplace_back();
    out.comments.emplace_back();
  };

  while (i < n) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          i += 2;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_put(' ');
          code_put(' ');
          i += 2;
        } else if (c == '"') {
          // R"..."( opens a raw string; scan back over an optional prefix.
          bool raw = false;
          const std::string& line = out.code.back();
          if (!line.empty() && line.back() == 'R') {
            const size_t len = line.size();
            // Reject identifiers ending in R (e.g. FooR"..." is not raw
            // unless R starts the identifier or follows a prefix u8/u/U/L).
            if (len == 1 || !(std::isalnum(static_cast<unsigned char>(line[len - 2])) ||
                              line[len - 2] == '_')) {
              raw = true;
            }
          }
          if (raw) {
            std::string delim;
            size_t j = i + 1;
            while (j < n && content[j] != '(' && content[j] != '\n' && delim.size() <= 16) {
              delim.push_back(content[j]);
              ++j;
            }
            if (j < n && content[j] == '(') {
              raw_terminator = ")" + delim + "\"";
              state = State::kRawString;
              code_put('"');
              i = j + 1;
              break;
            }
          }
          state = State::kString;
          code_put('"');
          ++i;
        } else if (c == '\'' && !EndsExpression(last_code_char)) {
          state = State::kChar;
          code_put('\'');
          ++i;
        } else if (c == '\n') {
          newline();
          ++i;
        } else {
          code_put(c);
          if (!std::isspace(static_cast<unsigned char>(c))) {
            last_code_char = c;
          }
          ++i;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          newline();
        } else {
          comment_put(c);
        }
        ++i;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          i += 2;
        } else if (c == '\n') {
          newline();
          ++i;
        } else {
          comment_put(c);
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < n) {
          code_put(' ');
          code_put(' ');
          i += 2;
        } else if (c == '"') {
          state = State::kCode;
          code_put('"');
          last_code_char = '"';
          ++i;
        } else if (c == '\n') {  // Unterminated; recover at the newline.
          state = State::kCode;
          newline();
          ++i;
        } else {
          code_put(' ');
          ++i;
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < n) {
          code_put(' ');
          code_put(' ');
          i += 2;
        } else if (c == '\'') {
          state = State::kCode;
          code_put('\'');
          last_code_char = '\'';
          ++i;
        } else if (c == '\n') {
          state = State::kCode;
          newline();
          ++i;
        } else {
          code_put(' ');
          ++i;
        }
        break;
      case State::kRawString:
        if (c == '\n') {
          newline();
          ++i;
        } else if (content.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          state = State::kCode;
          code_put('"');
          last_code_char = '"';
          i += raw_terminator.size();
        } else {
          code_put(' ');
          ++i;
        }
        break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Token stream over the blanked code (identifiers + the punctuation the
// rules care about), skipping preprocessor lines (handled separately).
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  int line = 0;  // 1-based.
  bool is_ident = false;
};

bool IsPreprocessorLine(const std::string& code_line) {
  for (char c : code_line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      continue;
    }
    return c == '#';
  }
  return false;
}

std::vector<Token> Tokenize(const ScannedFile& scanned) {
  std::vector<Token> tokens;
  bool continuation = false;  // Previous line ended in backslash (pp-continuation).
  for (size_t li = 0; li < scanned.code.size(); ++li) {
    const std::string& line = scanned.code[li];
    const bool pp = continuation || IsPreprocessorLine(line);
    continuation = pp && !line.empty() && line.back() == '\\';
    if (pp) {
      continue;
    }
    const int line_no = static_cast<int>(li) + 1;
    size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i + 1;
        while (j < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[j])) || line[j] == '_')) {
          ++j;
        }
        tokens.push_back({line.substr(i, j - i), line_no, true});
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t j = i + 1;  // Numbers (incl. 1'000 separators and suffixes).
        while (j < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[j])) || line[j] == '\'' ||
                line[j] == '.')) {
          ++j;
        }
        tokens.push_back({line.substr(i, j - i), line_no, false});
        i = j;
      } else if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
        tokens.push_back({"::", line_no, false});
        i += 2;
      } else if (c == '-' && i + 1 < line.size() && line[i + 1] == '>') {
        tokens.push_back({"->", line_no, false});
        i += 2;
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        tokens.push_back({std::string(1, c), line_no, false});
        ++i;
      } else {
        ++i;
      }
    }
  }
  return tokens;
}

// ---------------------------------------------------------------------------
// Rule scoping and suppression.
// ---------------------------------------------------------------------------

bool StartsWith(const std::string& s, std::string_view prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

struct FileScope {
  bool rng_impl = false;        // src/sim/rng.{h,cc}: R1 exempt.
  bool wallclock_impl = false;  // src/sim/wallclock.h: R2 exempt.
  bool knobs_impl = false;      // src/exp/knobs.{h,cc}: R5 exempt.
  bool pool_impl = false;       // src/sim/worker_pool.{h,cc}: R7 exempt.
  bool bench = false;           // bench/: R3 applies.
  bool header = false;          // *.h: guard check applies.
  bool alloc_core = false;      // src/net/{allocation_engine,allocator}.*: R8 applies.
};

FileScope ScopeFor(const std::string& rel_path) {
  FileScope scope;
  scope.rng_impl = rel_path == "src/sim/rng.h" || rel_path == "src/sim/rng.cc";
  scope.wallclock_impl = rel_path == "src/sim/wallclock.h";
  scope.knobs_impl = rel_path == "src/exp/knobs.h" || rel_path == "src/exp/knobs.cc";
  scope.pool_impl =
      rel_path == "src/sim/worker_pool.h" || rel_path == "src/sim/worker_pool.cc";
  scope.bench = StartsWith(rel_path, "bench/");
  scope.header = rel_path.size() >= 2 && rel_path.compare(rel_path.size() - 2, 2, ".h") == 0;
  scope.alloc_core =
      rel_path == "src/net/allocation_engine.h" || rel_path == "src/net/allocation_engine.cc" ||
      rel_path == "src/net/allocator.h" || rel_path == "src/net/allocator.cc";
  return scope;
}

// "// saba-lint: allow(R2): reason" on the finding's line or the line above.
bool IsSuppressed(const ScannedFile& scanned, int line, const std::string& rule) {
  const std::string needle = "saba-lint: allow(" + rule + ")";
  for (int l = line - 1; l >= std::max(0, line - 2); --l) {
    if (static_cast<size_t>(l) < scanned.comments.size() &&
        scanned.comments[static_cast<size_t>(l)].find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// R4's dedicated annotation doubles as its suppression: the reason inside the
// parentheses is the audit record. Same line or the line above.
bool HasUnorderedAnnotation(const ScannedFile& scanned, int line) {
  const std::string_view needle = "saba-lint: unordered-iter-ok(";
  for (int l = line - 1; l >= std::max(0, line - 2); --l) {
    const std::string& comment = scanned.comments[static_cast<size_t>(l)];
    const size_t pos = comment.find(needle);
    if (pos == std::string::npos) {
      continue;
    }
    // Require a non-empty reason: "unordered-iter-ok()" is not an audit.
    const size_t open = pos + needle.size();
    return open < comment.size() && comment[open] != ')';
  }
  return false;
}

// ---------------------------------------------------------------------------
// The rules.
// ---------------------------------------------------------------------------

const std::set<std::string>& R1BannedIdentifiers() {
  static const std::set<std::string> kBanned = {
      "rand",        "srand",         "rand_r",           "drand48",
      "lrand48",     "mrand48",       "erand48",          "nrand48",
      "jrand48",     "random",        "srandom",          "mt19937",
      "mt19937_64",  "random_device", "default_random_engine",
      "minstd_rand", "minstd_rand0",  "ranlux24",         "ranlux48",
      "ranlux24_base", "ranlux48_base", "knuth_b",
      "mersenne_twister_engine", "linear_congruential_engine",
      "subtract_with_carry_engine"};
  return kBanned;
}

const std::set<std::string>& R2BannedIdentifiers() {
  // `time`/`clock` are handled separately (call-form only) to avoid flagging
  // ordinary variables and members named `time`.
  static const std::set<std::string> kBanned = {
      "system_clock", "steady_clock", "high_resolution_clock", "gettimeofday",
      "clock_gettime", "timespec_get", "localtime",  "localtime_r",
      "gmtime",        "gmtime_r",     "mktime",     "ctime",
      "asctime",       "strftime",     "ftime"};
  return kBanned;
}

const std::set<std::string>& R4UnorderedContainers() {
  static const std::set<std::string> kContainers = {"unordered_map", "unordered_set",
                                                    "unordered_multimap", "unordered_multiset"};
  return kContainers;
}

const std::set<std::string>& R5BannedIdentifiers() {
  static const std::set<std::string> kBanned = {"getenv", "secure_getenv", "setenv", "putenv",
                                                "unsetenv"};
  return kBanned;
}

// Identifiers that mark a statement as thread-count- or wall-clock-dependent
// for R3. String literals are blanked by the scanner, so a stderr note that
// merely *mentions* SABA_JOBS in its text does not trip this.
const std::set<std::string>& R3TimingIdentifiers() {
  static const std::set<std::string> kTiming = {"ElapsedSeconds", "Stopwatch", "EnvJobs",
                                                "hardware_concurrency"};
  return kTiming;
}

// R7: raw threading primitives. Only the std::-qualified forms are banned so
// an ordinary variable named `thread` or `mutex` stays legal; the pthread/C11
// thread entry points are banned by call form.
const std::set<std::string>& R7BannedStdIdentifiers() {
  static const std::set<std::string> kBanned = {
      "thread",        "jthread",        "async",
      "mutex",         "recursive_mutex", "timed_mutex",
      "recursive_timed_mutex",           "shared_mutex",
      "shared_timed_mutex",              "condition_variable",
      "condition_variable_any",          "promise",
      "packaged_task", "future",         "shared_future"};
  return kBanned;
}

const std::set<std::string>& R7BannedThreadCalls() {
  static const std::set<std::string> kBanned = {"pthread_create", "thrd_create"};
  return kBanned;
}

struct RuleContext {
  const std::string* rel_path;
  const std::string* display_path;
  const ScannedFile* scanned;
  const std::vector<Token>* tokens;
  FileScope scope;
  std::vector<Finding>* findings;
};

void Report(const RuleContext& ctx, int line, const char* rule, std::string message) {
  if (IsSuppressed(*ctx.scanned, line, rule)) {
    return;
  }
  ctx.findings->push_back({*ctx.display_path, line, rule, std::move(message)});
}

void CheckIdentifierRules(const RuleContext& ctx) {
  const std::vector<Token>& tokens = *ctx.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (!tok.is_ident) {
      continue;
    }
    const Token* prev = i > 0 ? &tokens[i - 1] : nullptr;
    const Token* next = i + 1 < tokens.size() ? &tokens[i + 1] : nullptr;
    const bool member_access = prev != nullptr && (prev->text == "." || prev->text == "->");
    const bool call_form = next != nullptr && next->text == "(";

    if (!ctx.scope.rng_impl && !member_access && R1BannedIdentifiers().count(tok.text) != 0) {
      Report(ctx, tok.line, "R1",
             "raw randomness source '" + tok.text +
                 "'; all randomness flows through saba::Rng with an explicit seed "
                 "(src/sim/rng.h) so results are reproducible from the printed seed");
    }
    if (!ctx.scope.wallclock_impl && !member_access) {
      if (R2BannedIdentifiers().count(tok.text) != 0) {
        Report(ctx, tok.line, "R2",
               "wall-clock read '" + tok.text +
                   "'; real-time measurement goes through saba::Stopwatch "
                   "(src/sim/wallclock.h), simulated time through SimTime");
      } else if ((tok.text == "time" || tok.text == "clock") && call_form &&
                 !(prev != nullptr && prev->is_ident)) {
        // Only the free-function call forms: `std::time(`, `= time(` —
        // members like scheduler->time() and declarations like
        // `double time()` (previous token an identifier) stay legal.
        Report(ctx, tok.line, "R2",
               "wall-clock read '" + tok.text +
                   "()'; real-time measurement goes through saba::Stopwatch "
                   "(src/sim/wallclock.h), simulated time through SimTime");
      }
    }
    if (R4UnorderedContainers().count(tok.text) != 0 &&
        !HasUnorderedAnnotation(*ctx.scanned, tok.line)) {
      // One finding per line: a single annotation covers e.g. a nested
      // unordered_map<K, unordered_set<V>> declaration.
      if (ctx.findings->empty() || ctx.findings->back().rule != "R4" ||
          ctx.findings->back().line != tok.line ||
          ctx.findings->back().file != *ctx.display_path) {
        Report(ctx, tok.line, "R4",
               "'" + tok.text +
                   "' has implementation-defined iteration order; audit every "
                   "iteration/accumulation over it and annotate the use with "
                   "// saba-lint: unordered-iter-ok(<reason>), or switch to an "
                   "ordered container (DESIGN.md §7.1 canonical-order contract)");
      }
    }
    if (!ctx.scope.knobs_impl && !member_access && R5BannedIdentifiers().count(tok.text) != 0) {
      Report(ctx, tok.line, "R5",
             "raw environment access '" + tok.text +
                 "'; knobs are read through src/exp/knobs.h (strict parsing, "
                 "registry-backed banners) so a typo'd variable aborts instead of "
                 "silently defaulting");
    }
    if (!ctx.scope.pool_impl) {
      const Token* prev2 = i >= 2 ? &tokens[i - 2] : nullptr;
      const bool std_qualified = prev != nullptr && prev->text == "::" && prev2 != nullptr &&
                                 prev2->is_ident && prev2->text == "std";
      if ((std_qualified && R7BannedStdIdentifiers().count(tok.text) != 0) ||
          (call_form && !member_access && R7BannedThreadCalls().count(tok.text) != 0)) {
        Report(ctx, tok.line, "R7",
               "raw threading primitive '" + tok.text +
                   "'; threads and locks are constructed only inside saba::WorkerPool "
                   "(src/sim/worker_pool.h) — fan work over WorkerPool or SweepRunner "
                   "so the determinism argument and TSan coverage stay centralized "
                   "(DESIGN.md §7.3)");
      }
    }
  }
}

// R8: the allocation core is fixed-point (units.h Bps64); its bit-exactness
// contract (DESIGN.md §7.1) dies the moment a rate or capacity lives in a
// double again. Two patterns are banned in src/net/{allocation_engine,
// allocator}.{h,cc}:
//  * a floating-point declaration whose name says it holds a rate/capacity
//    ("double rate", "float capacity_bps", ...), and
//  * ==/!= against a floating-point literal (exact float comparison — rate
//    math compares integers; fluid-boundary code uses explicit tolerances).

bool IsRateName(const std::string& ident) {
  std::string lower;
  lower.reserve(ident.size());
  for (char c : ident) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  for (const char* needle : {"rate", "capacity", "goodput", "bandwidth", "bps"}) {
    if (lower.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

bool IsFloatLiteral(const Token& tok) {
  if (tok.is_ident || tok.text.empty() ||
      std::isdigit(static_cast<unsigned char>(tok.text[0])) == 0) {
    return false;
  }
  if (tok.text.size() >= 2 && tok.text[0] == '0' && (tok.text[1] == 'x' || tok.text[1] == 'X')) {
    return false;  // Hex: the 'e'/'f' digits are not exponent/suffix.
  }
  const char back = tok.text.back();
  return tok.text.find('.') != std::string::npos ||
         tok.text.find('e') != std::string::npos || tok.text.find('E') != std::string::npos ||
         back == 'f' || back == 'F';
}

void CheckAllocCoreFixedPointRule(const RuleContext& ctx) {
  if (!ctx.scope.alloc_core) {
    return;
  }
  const std::vector<Token>& tokens = *ctx.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    const Token* next = i + 1 < tokens.size() ? &tokens[i + 1] : nullptr;
    if (tok.is_ident && (tok.text == "double" || tok.text == "float") && next != nullptr &&
        next->is_ident && IsRateName(next->text)) {
      Report(ctx, next->line, "R8",
             "raw " + tok.text + " rate/capacity '" + next->text +
                 "'; the allocation core is fixed-point — hold rates and capacities "
                 "in Bps64 (src/net/units.h) and convert at the fluid boundary via "
                 "RoundBps/BpsToDouble (DESIGN.md §7.1)");
    }
    // ==/!= tokenize as '='+'=' and '!'+'='.
    const bool eq_op = next != nullptr && next->text == "=" &&
                       (tok.text == "=" || tok.text == "!");
    if (eq_op) {
      const Token* lhs = i > 0 ? &tokens[i - 1] : nullptr;
      const Token* rhs = i + 2 < tokens.size() ? &tokens[i + 2] : nullptr;
      if ((lhs != nullptr && IsFloatLiteral(*lhs)) || (rhs != nullptr && IsFloatLiteral(*rhs))) {
        Report(ctx, tok.line, "R8",
               "exact floating-point comparison in the allocation core; rate math is "
               "integer (Bps64) — compare the integers, or use an explicit tolerance "
               "at the fluid boundary (DESIGN.md §7.1)");
      }
    }
  }
}

// R3: in bench/ code, a statement that writes to stdout must not also touch a
// timing/thread-count source; `printf`/`puts` (stdout writers that bypass the
// report helpers) are flagged outright.
void CheckBenchStdoutRule(const RuleContext& ctx) {
  if (!ctx.scope.bench) {
    return;
  }
  const std::vector<Token>& tokens = *ctx.tokens;
  size_t stmt_begin = 0;
  for (size_t i = 0; i <= tokens.size(); ++i) {
    const bool boundary = i == tokens.size() || tokens[i].text == ";" || tokens[i].text == "{" ||
                          tokens[i].text == "}";
    if (!boundary) {
      continue;
    }
    bool writes_stdout = false;
    bool touches_timing = false;
    int stdout_line = 0;
    for (size_t j = stmt_begin; j < i; ++j) {
      const Token& tok = tokens[j];
      if (!tok.is_ident) {
        continue;
      }
      if (tok.text == "cout" || tok.text == "printf" || tok.text == "puts") {
        writes_stdout = true;
        stdout_line = tok.line;
        if (tok.text != "cout") {
          Report(ctx, tok.line, "R3",
                 "'" + tok.text +
                     "' writes to stdout outside the report helpers; bench stdout is "
                     "the diffable report (src/exp/report.h) — diagnostics go to "
                     "stderr via std::cerr/fprintf(stderr, ...)");
        }
      } else if (R3TimingIdentifiers().count(tok.text) != 0) {
        touches_timing = true;
      }
    }
    if (writes_stdout && touches_timing) {
      Report(ctx, stdout_line, "R3",
             "stdout statement mixes in a timing/thread-count source; bench stdout "
             "must be byte-identical across runs and SABA_JOBS (DESIGN.md §7) — "
             "print wall-clock or job-count diagnostics to stderr");
    }
    stmt_begin = i + 1;
  }
}

// R6: quote-includes must be repo-rooted, and headers carry the canonical
// guard derived from their repo-relative path (src/sim/rng.h →
// SRC_SIM_RNG_H_).
std::string ExpectedGuard(const std::string& rel_path) {
  std::string guard;
  guard.reserve(rel_path.size() + 1);
  for (char c : rel_path) {
    guard.push_back(std::isalnum(static_cast<unsigned char>(c))
                        ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                        : '_');
  }
  guard.push_back('_');
  return guard;
}

std::string Trimmed(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

void CheckIncludeAndGuardRule(const RuleContext& ctx) {
  // Operates on raw lines: include paths are string literals, which the
  // scanner blanks out of the code view.
  const std::vector<std::string>& code = ctx.scanned->raw;
  const char* kRoots[] = {"src/", "bench/", "tests/", "examples/", "tools/"};

  std::string first_ifndef;
  std::string first_define;
  int guard_line = 0;

  for (size_t li = 0; li < code.size(); ++li) {
    const std::string line = Trimmed(code[li]);
    const int line_no = static_cast<int>(li) + 1;
    if (line.empty() || line[0] != '#') {
      continue;
    }
    const std::string directive = Trimmed(line.substr(1));
    if (StartsWith(directive, "include")) {
      const std::string rest = Trimmed(directive.substr(7));
      if (rest.size() >= 2 && rest.front() == '"') {
        const size_t close = rest.find('"', 1);
        const std::string path = close == std::string::npos ? "" : rest.substr(1, close - 1);
        const bool rooted = std::any_of(std::begin(kRoots), std::end(kRoots),
                                        [&](const char* root) { return StartsWith(path, root); });
        if (!rooted) {
          Report(ctx, line_no, "R6",
                 "quote-include \"" + path +
                     "\" is not repo-rooted; include project headers by their "
                     "repository path (e.g. \"src/net/topology.h\")");
        }
      }
    } else if (StartsWith(directive, "pragma") &&
               StartsWith(Trimmed(directive.substr(6)), "once") && ctx.scope.header) {
      Report(ctx, line_no, "R6",
             "#pragma once; this repository uses canonical include guards "
             "(" + ExpectedGuard(*ctx.rel_path) + ")");
    } else if (first_ifndef.empty() && StartsWith(directive, "ifndef")) {
      std::istringstream iss(Trimmed(directive.substr(6)));
      iss >> first_ifndef;  // First token only: a trailing comment is legal.
      guard_line = line_no;
    } else if (!first_ifndef.empty() && first_define.empty() && StartsWith(directive, "define")) {
      std::istringstream iss(Trimmed(directive.substr(6)));
      iss >> first_define;
    }
  }

  if (ctx.scope.header) {
    const std::string expected = ExpectedGuard(*ctx.rel_path);
    if (first_ifndef.empty()) {
      Report(ctx, 1, "R6", "header has no include guard; expected " + expected);
    } else if (first_ifndef != expected || first_define != expected) {
      Report(ctx, guard_line, "R6",
             "include guard '" + first_ifndef + "'" +
                 (first_define != first_ifndef ? " / '#define " + first_define + "'" : "") +
                 " does not match the canonical path-derived guard " + expected);
    }
  }
}

}  // namespace

std::vector<std::pair<std::string, std::string>> RuleTable() {
  return {
      {"R1", "randomness only through saba::Rng (src/sim/rng.h) with explicit seeds"},
      {"R2", "wall-clock reads only via saba::Stopwatch (src/sim/wallclock.h)"},
      {"R3", "bench stdout is the diffable report: no timings or job counts on stdout"},
      {"R4", "unordered-container uses carry // saba-lint: unordered-iter-ok(<reason>)"},
      {"R5", "environment access only through src/exp/knobs.h"},
      {"R6", "repo-rooted quote-includes and canonical path-derived header guards"},
      {"R7", "threads and locks constructed only inside saba::WorkerPool (src/sim/worker_pool.h)"},
      {"R8", "allocation-core rates stay fixed-point Bps64: no double rate/capacity fields, "
             "no float ==/!="},
  };
}

std::vector<Finding> LintFile(const std::string& rel_path, const std::string& display_path,
                              std::string_view content) {
  const ScannedFile scanned = Scan(content);
  const std::vector<Token> tokens = Tokenize(scanned);
  std::vector<Finding> findings;
  RuleContext ctx{&rel_path, &display_path, &scanned, &tokens, ScopeFor(rel_path), &findings};
  CheckIdentifierRules(ctx);
  CheckAllocCoreFixedPointRule(ctx);
  CheckBenchStdoutRule(ctx);
  CheckIncludeAndGuardRule(ctx);
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule, a.message) < std::tie(b.line, b.rule, b.message);
  });
  return findings;
}

std::vector<Finding> LintFile(const std::string& rel_path, std::string_view content) {
  return LintFile(rel_path, rel_path, content);
}

std::string RelativizePath(const std::string& path) {
  std::string normalized = path;
  std::replace(normalized.begin(), normalized.end(), '\\', '/');
  const char* kRoots[] = {"src/", "bench/", "tests/", "examples/", "tools/"};
  size_t best = std::string::npos;
  for (const char* root : kRoots) {
    const std::string marker = std::string("/") + root;
    const size_t pos = normalized.rfind(marker);
    if (pos != std::string::npos && (best == std::string::npos || pos > best)) {
      best = pos;
    }
    if (StartsWith(normalized, root)) {
      return normalized;  // Already repo-relative.
    }
  }
  return best == std::string::npos ? normalized : normalized.substr(best + 1);
}

std::vector<Finding> LintPaths(const std::vector<std::string>& paths, std::ostream& out) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::vector<Finding> all;
  auto want = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".h" || ext == ".cpp";
  };
  for (const std::string& path : paths) {
    fs::path p(path);
    if (fs::is_directory(p)) {
      for (fs::recursive_directory_iterator it(p), end; it != end; ++it) {
        if (it->is_directory()) {
          const std::string name = it->path().filename().string();
          // Fixture snippets violate rules on purpose; hidden and build
          // directories are not part of the tree contract.
          if (name == "testdata" || name == "build" || (!name.empty() && name[0] == '.')) {
            it.disable_recursion_pending();
          }
          continue;
        }
        if (it->is_regular_file() && want(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(p.generic_string());
    } else {
      out << path << ":0: [R0] path does not exist\n";
      all.push_back({path, 0, "R0", "path does not exist"});
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string rel = RelativizePath(file);
    std::vector<Finding> findings = LintFile(rel, rel, buffer.str());
    for (const Finding& f : findings) {
      out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
    }
    all.insert(all.end(), std::make_move_iterator(findings.begin()),
               std::make_move_iterator(findings.end()));
  }
  return all;
}

}  // namespace lint
}  // namespace saba
