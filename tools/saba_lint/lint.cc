#include "tools/saba_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "tools/saba_lint/model.h"
#include "tools/saba_lint/project.h"
#include "tools/saba_lint/scanner.h"

namespace saba {
namespace lint {
namespace {

// ---------------------------------------------------------------------------
// Rule scoping and suppression.
// ---------------------------------------------------------------------------

bool StartsWith(const std::string& s, std::string_view prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

struct FileScope {
  bool rng_impl = false;        // src/sim/rng.{h,cc}: R1 exempt.
  bool wallclock_impl = false;  // src/sim/wallclock.h: R2 exempt.
  bool knobs_impl = false;      // src/exp/knobs.{h,cc}: R5 exempt.
  bool pool_impl = false;       // src/sim/worker_pool.{h,cc}: R7 exempt.
  bool bench = false;           // bench/: R3 applies.
  bool header = false;          // *.h: guard check applies.
  bool alloc_core = false;      // src/net/{allocation_engine,allocator}.*: R8 applies.
};

FileScope ScopeFor(const std::string& rel_path) {
  FileScope scope;
  scope.rng_impl = rel_path == "src/sim/rng.h" || rel_path == "src/sim/rng.cc";
  scope.wallclock_impl = rel_path == "src/sim/wallclock.h";
  scope.knobs_impl = rel_path == "src/exp/knobs.h" || rel_path == "src/exp/knobs.cc";
  scope.pool_impl =
      rel_path == "src/sim/worker_pool.h" || rel_path == "src/sim/worker_pool.cc";
  scope.bench = StartsWith(rel_path, "bench/");
  scope.header = rel_path.size() >= 2 && rel_path.compare(rel_path.size() - 2, 2, ".h") == 0;
  scope.alloc_core =
      rel_path == "src/net/allocation_engine.h" || rel_path == "src/net/allocation_engine.cc" ||
      rel_path == "src/net/allocator.h" || rel_path == "src/net/allocator.cc";
  return scope;
}

// R4's dedicated annotation doubles as its suppression: the reason inside the
// parentheses is the audit record. Same line or the line above.
bool HasUnorderedAnnotation(const ScannedFile& scanned, int line) {
  return HasAuditAnnotation(scanned, line, line, "unordered-iter-ok");
}

// ---------------------------------------------------------------------------
// The rules.
// ---------------------------------------------------------------------------

const std::set<std::string>& R1BannedIdentifiers() {
  static const std::set<std::string> kBanned = {
      "rand",        "srand",         "rand_r",           "drand48",
      "lrand48",     "mrand48",       "erand48",          "nrand48",
      "jrand48",     "random",        "srandom",          "mt19937",
      "mt19937_64",  "random_device", "default_random_engine",
      "minstd_rand", "minstd_rand0",  "ranlux24",         "ranlux48",
      "ranlux24_base", "ranlux48_base", "knuth_b",
      "mersenne_twister_engine", "linear_congruential_engine",
      "subtract_with_carry_engine"};
  return kBanned;
}

const std::set<std::string>& R2BannedIdentifiers() {
  // `time`/`clock` are handled separately (call-form only) to avoid flagging
  // ordinary variables and members named `time`.
  static const std::set<std::string> kBanned = {
      "system_clock", "steady_clock", "high_resolution_clock", "gettimeofday",
      "clock_gettime", "timespec_get", "localtime",  "localtime_r",
      "gmtime",        "gmtime_r",     "mktime",     "ctime",
      "asctime",       "strftime",     "ftime"};
  return kBanned;
}

const std::set<std::string>& R4UnorderedContainers() {
  static const std::set<std::string> kContainers = {"unordered_map", "unordered_set",
                                                    "unordered_multimap", "unordered_multiset"};
  return kContainers;
}

const std::set<std::string>& R5BannedIdentifiers() {
  static const std::set<std::string> kBanned = {"getenv", "secure_getenv", "setenv", "putenv",
                                                "unsetenv"};
  return kBanned;
}

// Identifiers that mark a statement as thread-count- or wall-clock-dependent
// for R3. String literals are blanked by the scanner, so a stderr note that
// merely *mentions* SABA_JOBS in its text does not trip this.
const std::set<std::string>& R3TimingIdentifiers() {
  static const std::set<std::string> kTiming = {"ElapsedSeconds", "Stopwatch", "EnvJobs",
                                                "hardware_concurrency"};
  return kTiming;
}

// R7: raw threading primitives. Only the std::-qualified forms are banned so
// an ordinary variable named `thread` or `mutex` stays legal; the pthread/C11
// thread entry points are banned by call form.
const std::set<std::string>& R7BannedStdIdentifiers() {
  static const std::set<std::string> kBanned = {
      "thread",        "jthread",        "async",
      "mutex",         "recursive_mutex", "timed_mutex",
      "recursive_timed_mutex",           "shared_mutex",
      "shared_timed_mutex",              "condition_variable",
      "condition_variable_any",          "promise",
      "packaged_task", "future",         "shared_future"};
  return kBanned;
}

const std::set<std::string>& R7BannedThreadCalls() {
  static const std::set<std::string> kBanned = {"pthread_create", "thrd_create"};
  return kBanned;
}

struct RuleContext {
  const ScannedTu* tu;
  FileScope scope;
  std::vector<Finding>* findings;
};

void Report(const RuleContext& ctx, int line, const char* rule, std::string message) {
  if (IsSuppressed(ctx.tu->scanned, line, rule)) {
    return;
  }
  ctx.findings->push_back({ctx.tu->display_path, line, rule, std::move(message)});
}

void CheckIdentifierRules(const RuleContext& ctx) {
  const std::vector<Token>& tokens = ctx.tu->tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (!tok.is_ident) {
      continue;
    }
    const Token* prev = i > 0 ? &tokens[i - 1] : nullptr;
    const Token* next = i + 1 < tokens.size() ? &tokens[i + 1] : nullptr;
    const bool member_access = prev != nullptr && (prev->text == "." || prev->text == "->");
    const bool call_form = next != nullptr && next->text == "(";

    if (!ctx.scope.rng_impl && !member_access && R1BannedIdentifiers().count(tok.text) != 0) {
      Report(ctx, tok.line, "R1",
             "raw randomness source '" + tok.text +
                 "'; all randomness flows through saba::Rng with an explicit seed "
                 "(src/sim/rng.h) so results are reproducible from the printed seed");
    }
    if (!ctx.scope.wallclock_impl && !member_access) {
      if (R2BannedIdentifiers().count(tok.text) != 0) {
        Report(ctx, tok.line, "R2",
               "wall-clock read '" + tok.text +
                   "'; real-time measurement goes through saba::Stopwatch "
                   "(src/sim/wallclock.h), simulated time through SimTime");
      } else if ((tok.text == "time" || tok.text == "clock") && call_form &&
                 !(prev != nullptr && prev->is_ident)) {
        // Only the free-function call forms: `std::time(`, `= time(` —
        // members like scheduler->time() and declarations like
        // `double time()` (previous token an identifier) stay legal.
        Report(ctx, tok.line, "R2",
               "wall-clock read '" + tok.text +
                   "()'; real-time measurement goes through saba::Stopwatch "
                   "(src/sim/wallclock.h), simulated time through SimTime");
      }
    }
    if (R4UnorderedContainers().count(tok.text) != 0 &&
        !HasUnorderedAnnotation(ctx.tu->scanned, tok.line)) {
      // One finding per line: a single annotation covers e.g. a nested
      // unordered_map<K, unordered_set<V>> declaration.
      if (ctx.findings->empty() || ctx.findings->back().rule != "R4" ||
          ctx.findings->back().line != tok.line ||
          ctx.findings->back().file != ctx.tu->display_path) {
        Report(ctx, tok.line, "R4",
               "'" + tok.text +
                   "' has implementation-defined iteration order; audit every "
                   "iteration/accumulation over it and annotate the use with "
                   "// saba-lint: unordered-iter-ok(<reason>), or switch to an "
                   "ordered container (DESIGN.md §7.1 canonical-order contract)");
      }
    }
    if (!ctx.scope.knobs_impl && !member_access && R5BannedIdentifiers().count(tok.text) != 0) {
      Report(ctx, tok.line, "R5",
             "raw environment access '" + tok.text +
                 "'; knobs are read through src/exp/knobs.h (strict parsing, "
                 "registry-backed banners) so a typo'd variable aborts instead of "
                 "silently defaulting");
    }
    if (!ctx.scope.pool_impl) {
      const Token* prev2 = i >= 2 ? &tokens[i - 2] : nullptr;
      const bool std_qualified = prev != nullptr && prev->text == "::" && prev2 != nullptr &&
                                 prev2->is_ident && prev2->text == "std";
      if ((std_qualified && R7BannedStdIdentifiers().count(tok.text) != 0) ||
          (call_form && !member_access && R7BannedThreadCalls().count(tok.text) != 0)) {
        Report(ctx, tok.line, "R7",
               "raw threading primitive '" + tok.text +
                   "'; threads and locks are constructed only inside saba::WorkerPool "
                   "(src/sim/worker_pool.h) — fan work over WorkerPool or SweepRunner "
                   "so the determinism argument and TSan coverage stay centralized "
                   "(DESIGN.md §7.3)");
      }
    }
  }
}

// R8: the allocation core is fixed-point (units.h Bps64); its bit-exactness
// contract (DESIGN.md §7.1) dies the moment a rate or capacity lives in a
// double again. Two patterns are banned in src/net/{allocation_engine,
// allocator}.{h,cc}:
//  * a floating-point declaration whose name says it holds a rate/capacity
//    ("double rate", "float capacity_bps", ...), and
//  * ==/!= against a floating-point literal (exact float comparison — rate
//    math compares integers; fluid-boundary code uses explicit tolerances).

bool IsRateName(const std::string& ident) {
  std::string lower;
  lower.reserve(ident.size());
  for (char c : ident) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  for (const char* needle : {"rate", "capacity", "goodput", "bandwidth", "bps"}) {
    if (lower.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

bool IsFloatLiteral(const Token& tok) {
  if (tok.is_ident || tok.text.empty() ||
      std::isdigit(static_cast<unsigned char>(tok.text[0])) == 0) {
    return false;
  }
  if (tok.text.size() >= 2 && tok.text[0] == '0' && (tok.text[1] == 'x' || tok.text[1] == 'X')) {
    return false;  // Hex: the 'e'/'f' digits are not exponent/suffix.
  }
  const char back = tok.text.back();
  return tok.text.find('.') != std::string::npos ||
         tok.text.find('e') != std::string::npos || tok.text.find('E') != std::string::npos ||
         back == 'f' || back == 'F';
}

void CheckAllocCoreFixedPointRule(const RuleContext& ctx) {
  if (!ctx.scope.alloc_core) {
    return;
  }
  const std::vector<Token>& tokens = ctx.tu->tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    const Token* next = i + 1 < tokens.size() ? &tokens[i + 1] : nullptr;
    if (tok.is_ident && (tok.text == "double" || tok.text == "float") && next != nullptr &&
        next->is_ident && IsRateName(next->text)) {
      Report(ctx, next->line, "R8",
             "raw " + tok.text + " rate/capacity '" + next->text +
                 "'; the allocation core is fixed-point — hold rates and capacities "
                 "in Bps64 (src/net/units.h) and convert at the fluid boundary via "
                 "RoundBps/BpsToDouble (DESIGN.md §7.1)");
    }
    // ==/!= tokenize as '='+'=' and '!'+'='.
    const bool eq_op = next != nullptr && next->text == "=" &&
                       (tok.text == "=" || tok.text == "!");
    if (eq_op) {
      const Token* lhs = i > 0 ? &tokens[i - 1] : nullptr;
      const Token* rhs = i + 2 < tokens.size() ? &tokens[i + 2] : nullptr;
      if ((lhs != nullptr && IsFloatLiteral(*lhs)) || (rhs != nullptr && IsFloatLiteral(*rhs))) {
        Report(ctx, tok.line, "R8",
               "exact floating-point comparison in the allocation core; rate math is "
               "integer (Bps64) — compare the integers, or use an explicit tolerance "
               "at the fluid boundary (DESIGN.md §7.1)");
      }
    }
  }
}

// R3: in bench/ code, a statement that writes to stdout must not also touch a
// timing/thread-count source; `printf`/`puts` (stdout writers that bypass the
// report helpers) are flagged outright.
void CheckBenchStdoutRule(const RuleContext& ctx) {
  if (!ctx.scope.bench) {
    return;
  }
  const std::vector<Token>& tokens = ctx.tu->tokens;
  size_t stmt_begin = 0;
  for (size_t i = 0; i <= tokens.size(); ++i) {
    const bool boundary = i == tokens.size() || tokens[i].text == ";" || tokens[i].text == "{" ||
                          tokens[i].text == "}";
    if (!boundary) {
      continue;
    }
    bool writes_stdout = false;
    bool touches_timing = false;
    int stdout_line = 0;
    for (size_t j = stmt_begin; j < i; ++j) {
      const Token& tok = tokens[j];
      if (!tok.is_ident) {
        continue;
      }
      if (tok.text == "cout" || tok.text == "printf" || tok.text == "puts") {
        writes_stdout = true;
        stdout_line = tok.line;
        if (tok.text != "cout") {
          Report(ctx, tok.line, "R3",
                 "'" + tok.text +
                     "' writes to stdout outside the report helpers; bench stdout is "
                     "the diffable report (src/exp/report.h) — diagnostics go to "
                     "stderr via std::cerr/fprintf(stderr, ...)");
        }
      } else if (R3TimingIdentifiers().count(tok.text) != 0) {
        touches_timing = true;
      }
    }
    if (writes_stdout && touches_timing) {
      Report(ctx, stdout_line, "R3",
             "stdout statement mixes in a timing/thread-count source; bench stdout "
             "must be byte-identical across runs and SABA_JOBS (DESIGN.md §7) — "
             "print wall-clock or job-count diagnostics to stderr");
    }
    stmt_begin = i + 1;
  }
}

// R6: quote-includes must be repo-rooted, and headers carry the canonical
// guard derived from their repo-relative path (src/sim/rng.h →
// SRC_SIM_RNG_H_).
std::string ExpectedGuard(const std::string& rel_path) {
  std::string guard;
  guard.reserve(rel_path.size() + 1);
  for (char c : rel_path) {
    guard.push_back(std::isalnum(static_cast<unsigned char>(c))
                        ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                        : '_');
  }
  guard.push_back('_');
  return guard;
}

std::string Trimmed(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

void CheckIncludeAndGuardRule(const RuleContext& ctx) {
  // Operates on raw lines: include paths are string literals, which the
  // scanner blanks out of the code view.
  const std::vector<std::string>& code = ctx.tu->scanned.raw;
  const char* kRoots[] = {"src/", "bench/", "tests/", "examples/", "tools/"};

  std::string first_ifndef;
  std::string first_define;
  int guard_line = 0;

  for (size_t li = 0; li < code.size(); ++li) {
    const std::string line = Trimmed(code[li]);
    const int line_no = static_cast<int>(li) + 1;
    if (line.empty() || line[0] != '#') {
      continue;
    }
    const std::string directive = Trimmed(line.substr(1));
    if (StartsWith(directive, "include")) {
      const std::string rest = Trimmed(directive.substr(7));
      if (rest.size() >= 2 && rest.front() == '"') {
        const size_t close = rest.find('"', 1);
        const std::string path = close == std::string::npos ? "" : rest.substr(1, close - 1);
        const bool rooted = std::any_of(std::begin(kRoots), std::end(kRoots),
                                        [&](const char* root) { return StartsWith(path, root); });
        if (!rooted) {
          Report(ctx, line_no, "R6",
                 "quote-include \"" + path +
                     "\" is not repo-rooted; include project headers by their "
                     "repository path (e.g. \"src/net/topology.h\")");
        }
      }
    } else if (StartsWith(directive, "pragma") &&
               StartsWith(Trimmed(directive.substr(6)), "once") && ctx.scope.header) {
      Report(ctx, line_no, "R6",
             "#pragma once; this repository uses canonical include guards "
             "(" + ExpectedGuard(ctx.tu->rel_path) + ")");
    } else if (first_ifndef.empty() && StartsWith(directive, "ifndef")) {
      std::istringstream iss(Trimmed(directive.substr(6)));
      iss >> first_ifndef;  // First token only: a trailing comment is legal.
      guard_line = line_no;
    } else if (!first_ifndef.empty() && first_define.empty() && StartsWith(directive, "define")) {
      std::istringstream iss(Trimmed(directive.substr(6)));
      iss >> first_define;
    }
  }

  if (ctx.scope.header) {
    const std::string expected = ExpectedGuard(ctx.tu->rel_path);
    if (first_ifndef.empty()) {
      Report(ctx, 1, "R6", "header has no include guard; expected " + expected);
    } else if (first_ifndef != expected || first_define != expected) {
      Report(ctx, guard_line, "R6",
             "include guard '" + first_ifndef + "'" +
                 (first_define != first_ifndef ? " / '#define " + first_define + "'" : "") +
                 " does not match the canonical path-derived guard " + expected);
    }
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// GitHub workflow commands use %-encoding for their own delimiters.
std::string GithubEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '%':
        out += "%25";
        break;
      case '\n':
        out += "%0A";
        break;
      case '\r':
        out += "%0D";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

// Walks up from `start` looking for the checked-in layer map; returns ""
// when no enclosing directory carries one.
std::string DiscoverLayersFile(const std::string& start) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path p = fs::absolute(fs::path(start), ec);
  if (ec) {
    return "";
  }
  if (fs::is_regular_file(p, ec)) {
    p = p.parent_path();
  }
  while (!p.empty()) {
    const fs::path candidate = p / "tools" / "saba_lint" / "layers.txt";
    if (fs::is_regular_file(candidate, ec)) {
      return candidate.generic_string();
    }
    const fs::path parent = p.parent_path();
    if (parent == p) {
      break;
    }
    p = parent;
  }
  return "";
}

}  // namespace

std::vector<std::pair<std::string, std::string>> RuleTable() {
  return {
      {"R1", "randomness only through saba::Rng (src/sim/rng.h) with explicit seeds"},
      {"R2", "wall-clock reads only via saba::Stopwatch (src/sim/wallclock.h)"},
      {"R3", "bench stdout is the diffable report: no timings or job counts on stdout"},
      {"R4", "unordered-container uses carry // saba-lint: unordered-iter-ok(<reason>)"},
      {"R5", "environment access only through src/exp/knobs.h"},
      {"R6", "repo-rooted quote-includes and canonical path-derived header guards"},
      {"R7", "threads and locks constructed only inside saba::WorkerPool (src/sim/worker_pool.h)"},
      {"R8", "allocation-core rates stay fixed-point Bps64: no double rate/capacity fields, "
             "no float ==/!="},
      {"R9", "includes respect the layer DAG (tools/saba_lint/layers.txt, DESIGN.md §9): "
             "no upward, lateral, or cyclic includes"},
      {"R10", "mutable namespace-scope / static-local state outside src/sim/ carries "
              "// saba-lint: shared-state-ok(<reason>)"},
      {"R11", "lambdas dispatched to saba::WorkerPool capture by reference only under "
              "// saba-lint: pool-capture-ok(<reason>)"},
  };
}

std::vector<Finding> LintTu(const ScannedTu& tu) {
  std::vector<Finding> findings;
  RuleContext ctx{&tu, ScopeFor(tu.rel_path), &findings};
  CheckIdentifierRules(ctx);
  CheckAllocCoreFixedPointRule(ctx);
  CheckBenchStdoutRule(ctx);
  CheckIncludeAndGuardRule(ctx);
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule, a.message) < std::tie(b.line, b.rule, b.message);
  });
  return findings;
}

std::vector<Finding> LintFile(const std::string& rel_path, const std::string& display_path,
                              std::string_view content) {
  return LintTu(MakeScannedTu(rel_path, display_path, content));
}

std::vector<Finding> LintFile(const std::string& rel_path, std::string_view content) {
  return LintFile(rel_path, rel_path, content);
}

std::string RelativizePath(const std::string& path) {
  std::string normalized = path;
  std::replace(normalized.begin(), normalized.end(), '\\', '/');
  const char* kRoots[] = {"src/", "bench/", "tests/", "examples/", "tools/"};
  size_t best = std::string::npos;
  for (const char* root : kRoots) {
    const std::string marker = std::string("/") + root;
    const size_t pos = normalized.rfind(marker);
    if (pos != std::string::npos && (best == std::string::npos || pos > best)) {
      best = pos;
    }
    if (StartsWith(normalized, root)) {
      return normalized;  // Already repo-relative.
    }
  }
  return best == std::string::npos ? normalized : normalized.substr(best + 1);
}

TreeLintResult LintTree(const std::vector<std::string>& paths, const TreeLintOptions& options) {
  namespace fs = std::filesystem;
  TreeLintResult result;
  std::vector<std::string> files;
  auto want = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".h" || ext == ".cpp";
  };
  for (const std::string& path : paths) {
    fs::path p(path);
    if (fs::is_directory(p)) {
      for (fs::recursive_directory_iterator it(p), end; it != end; ++it) {
        if (it->is_directory()) {
          const std::string name = it->path().filename().string();
          // Fixture snippets violate rules on purpose; hidden and build
          // directories are not part of the tree contract.
          if (name == "testdata" || name == "build" || (!name.empty() && name[0] == '.')) {
            it.disable_recursion_pending();
          }
          continue;
        }
        if (it->is_regular_file() && want(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(p.generic_string());
    } else {
      result.findings.push_back({path, 0, "R0", "path does not exist"});
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // The layer map: explicit path, or auto-discovered by walking up from the
  // inputs. R9 is a build gate — a missing or malformed map is a finding,
  // never a silent skip.
  LayerMap layers;
  bool have_layers = false;
  std::string layers_path = options.layers_path;
  if (layers_path.empty()) {
    for (const std::string& path : paths) {
      layers_path = DiscoverLayersFile(path);
      if (!layers_path.empty()) {
        break;
      }
    }
  }
  if (layers_path.empty()) {
    result.findings.push_back({"tools/saba_lint/layers.txt", 0, "R0",
                               "layer map not found from the input paths; pass "
                               "--layers=<path> so the R9 DAG check can run"});
  } else {
    std::ifstream in(layers_path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    if (!in.good() && buffer.str().empty()) {
      result.findings.push_back({layers_path, 0, "R0", "layer map is unreadable"});
    } else if (!ParseLayerMap(buffer.str(), &layers, &error)) {
      result.findings.push_back({layers_path, 0, "R0", error});
    } else {
      have_layers = true;
    }
  }

  // Phase 1: one read + scan per file, shared by the per-file rules and the
  // TU models (the tokenizer cache — no rule re-reads the tree).
  std::vector<ScannedTu> tus;
  std::vector<TuModel> models;
  tus.reserve(files.size());
  models.reserve(files.size());
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string rel = RelativizePath(file);
    tus.push_back(MakeScannedTu(rel, rel, buffer.str()));
    std::vector<Finding> findings = LintTu(tus.back());
    result.findings.insert(result.findings.end(), std::make_move_iterator(findings.begin()),
                           std::make_move_iterator(findings.end()));
    models.push_back(BuildTuModel(tus.back()));
  }
  result.files_scanned = files.size();

  // Phase 2: whole-program rules over the merged models.
  std::vector<Finding> project =
      CheckProjectRules(tus, models, have_layers ? &layers : nullptr);
  result.findings.insert(result.findings.end(), std::make_move_iterator(project.begin()),
                         std::make_move_iterator(project.end()));
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });

  if (have_layers) {
    result.graph_edges = LayerGraphEdges(models, layers);
  }
  return result;
}

std::vector<Finding> LintPaths(const std::vector<std::string>& paths, std::ostream& out) {
  TreeLintResult result = LintTree(paths, TreeLintOptions{});
  PrintFindings(result.findings, OutputFormat::kText, result.files_scanned, out);
  return std::move(result.findings);
}

void PrintFindings(const std::vector<Finding>& findings, OutputFormat format,
                   size_t files_scanned, std::ostream& out) {
  switch (format) {
    case OutputFormat::kText:
      for (const Finding& f : findings) {
        out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
      }
      break;
    case OutputFormat::kJson: {
      out << "{\n  \"tool\": \"saba_lint\",\n  \"schema\": 1,\n  \"files_scanned\": "
          << files_scanned << ",\n  \"findings\": [";
      for (size_t i = 0; i < findings.size(); ++i) {
        const Finding& f = findings[i];
        out << (i == 0 ? "\n" : ",\n") << "    {\"file\": \"" << JsonEscape(f.file)
            << "\", \"line\": " << f.line << ", \"rule\": \"" << JsonEscape(f.rule)
            << "\", \"message\": \"" << JsonEscape(f.message) << "\"}";
      }
      out << (findings.empty() ? "]" : "\n  ]") << ",\n  \"count\": " << findings.size()
          << "\n}\n";
      break;
    }
    case OutputFormat::kGithub:
      for (const Finding& f : findings) {
        out << "::error file=" << GithubEscape(f.file) << ",line=" << f.line
            << ",title=saba-lint " << GithubEscape(f.rule) << "::" << GithubEscape(f.message)
            << "\n";
      }
      break;
  }
}

}  // namespace lint
}  // namespace saba
