// Shared lexical layer for saba-lint: one scan + tokenize per translation
// unit, cached in a ScannedTu and reused by every rule (the per-file R1–R8
// pass and the project-wide R9–R11 model build both read the same tokens, so
// the tree is read exactly once per lint run).

#ifndef TOOLS_SABA_LINT_SCANNER_H_
#define TOOLS_SABA_LINT_SCANNER_H_

#include <string>
#include <string_view>
#include <vector>

namespace saba {
namespace lint {

// A translation unit split into per-line code text (comments and string/char
// literal contents blanked with spaces, so columns and line numbers survive)
// and per-line comment text (for annotations/suppressions).
struct ScannedFile {
  std::vector<std::string> raw;       // raw[i] = line i+1 verbatim (for R6/R9)
  std::vector<std::string> code;      // code[i] = line i+1, literals blanked
  std::vector<std::string> comments;  // comments[i] = comment text on line i+1
};

ScannedFile Scan(std::string_view content);

// Identifiers + the punctuation the rules care about, skipping preprocessor
// lines (those are handled from the raw text).
struct Token {
  std::string text;
  int line = 0;  // 1-based.
  bool is_ident = false;
};

std::vector<Token> Tokenize(const ScannedFile& scanned);

// The cached unit of work: every rule phase consumes this, nothing re-reads
// or re-scans the file.
struct ScannedTu {
  std::string rel_path;      // Repository-relative path used for rule scoping.
  std::string display_path;  // Path reported in findings.
  ScannedFile scanned;
  std::vector<Token> tokens;
};

ScannedTu MakeScannedTu(const std::string& rel_path, const std::string& display_path,
                        std::string_view content);

// "// saba-lint: allow(R2): reason" on the finding's line or the line above.
bool IsSuppressed(const ScannedFile& scanned, int line, const std::string& rule);

// True if a comment of the form "saba-lint: <form>(<non-empty reason>)"
// appears on any line in [first_line, last_line] or the line above
// first_line. The reason inside the parentheses is the audit record; an
// empty reason does not count (R4/R10/R11 contract).
bool HasAuditAnnotation(const ScannedFile& scanned, int first_line, int last_line,
                        std::string_view form);

}  // namespace lint
}  // namespace saba

#endif  // TOOLS_SABA_LINT_SCANNER_H_
