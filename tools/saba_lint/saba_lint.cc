// saba-lint command-line driver.
//
//   saba_lint [--list-rules] <file-or-directory>...
//
// Exits 0 when the tree is clean, 1 on any unsuppressed finding, 2 on usage
// errors. Findings go to stdout in "file:line: [R#] message" form (one per
// line, machine-parseable); the summary goes to stderr so tooling can pipe
// the findings alone.

#include <iostream>
#include <string>
#include <vector>

#include "tools/saba_lint/lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& [id, summary] : saba::lint::RuleTable()) {
        std::cout << id << "  " << summary << "\n";
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: saba_lint [--list-rules] <file-or-directory>...\n";
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "saba_lint: unknown flag '" << arg << "'\n";
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::cerr << "usage: saba_lint [--list-rules] <file-or-directory>...\n";
    return 2;
  }

  const std::vector<saba::lint::Finding> findings = saba::lint::LintPaths(paths, std::cout);
  if (findings.empty()) {
    std::cerr << "saba-lint: clean\n";
    return 0;
  }
  std::cerr << "saba-lint: " << findings.size() << " finding(s)\n";
  return 1;
}
