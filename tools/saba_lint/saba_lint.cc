// saba-lint command-line driver.
//
//   saba_lint [--list-rules] [--format=text|json|github] [--graph]
//             [--layers=<path>] <file-or-directory>...
//
// Exits 0 when the tree is clean, 1 on any unsuppressed finding, 2 on usage
// errors. Findings go to stdout in the selected format (text is the classic
// "file:line: [R#] message" stream, json a stable machine-readable report,
// github GitHub Actions ::error annotations); the summary and the wall time
// go to stderr so tooling can pipe the findings alone. --graph prints the
// layer-granularity include DAG (the DESIGN.md §9 table source) instead of
// findings.

#include <iostream>
#include <string>
#include <vector>

#include "src/sim/wallclock.h"
#include "tools/saba_lint/lint.h"

namespace {

constexpr char kUsage[] =
    "usage: saba_lint [--list-rules] [--format=text|json|github] [--graph]\n"
    "                 [--layers=<path>] <file-or-directory>...\n";

}  // namespace

int main(int argc, char** argv) {
  const saba::Stopwatch stopwatch;
  std::vector<std::string> paths;
  saba::lint::OutputFormat format = saba::lint::OutputFormat::kText;
  saba::lint::TreeLintOptions options;
  bool graph = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& [id, summary] : saba::lint::RuleTable()) {
        std::cout << id << "  " << summary << "\n";
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--graph") {
      graph = true;
      continue;
    }
    if (arg.rfind("--format=", 0) == 0) {
      const std::string value = arg.substr(9);
      if (value == "text") {
        format = saba::lint::OutputFormat::kText;
      } else if (value == "json") {
        format = saba::lint::OutputFormat::kJson;
      } else if (value == "github") {
        format = saba::lint::OutputFormat::kGithub;
      } else {
        std::cerr << "saba_lint: unknown format '" << value << "' (text|json|github)\n";
        return 2;
      }
      continue;
    }
    if (arg.rfind("--layers=", 0) == 0) {
      options.layers_path = arg.substr(9);
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "saba_lint: unknown flag '" << arg << "'\n" << kUsage;
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  const saba::lint::TreeLintResult result = saba::lint::LintTree(paths, options);
  if (graph) {
    for (const std::string& edge : result.graph_edges) {
      std::cout << edge << "\n";
    }
  } else {
    saba::lint::PrintFindings(result.findings, format, result.files_scanned, std::cout);
  }

  // Wall time is stderr-only: stdout stays byte-identical across runs (the
  // same discipline R3 enforces on the benches).
  std::cerr << "saba-lint: " << result.files_scanned << " file(s), "
            << result.findings.size() << " finding(s)"
            << (result.findings.empty() ? " — clean" : "") << " ["
            << stopwatch.ElapsedSeconds() << "s]\n";
  return result.findings.empty() ? 0 : 1;
}
