// R9 fixture: half of an include cycle with r9_cycle_b.h (same layer, so
// only the cycle check fires, not the rank check).
#ifndef SRC_NET_R9_CYCLE_A_H_
#define SRC_NET_R9_CYCLE_A_H_
#include "src/net/r9_cycle_b.h"
#endif  // SRC_NET_R9_CYCLE_A_H_
