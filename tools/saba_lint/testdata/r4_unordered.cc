// R4 fixture: unordered-container audit annotations. Linted as
// "src/fixture/r4.cc".
#include <string>
#include <unordered_map>
#include <unordered_set>

struct Bad {
  std::unordered_map<int, int> counts;
};

struct AnnotatedOnPreviousLine {
  // saba-lint: unordered-iter-ok(lookup-only cache; never iterated)
  std::unordered_map<std::string, int> cache;
};

struct AnnotatedOnSameLine {
  std::unordered_set<int> seen;  // saba-lint: unordered-iter-ok(membership test only)
};

struct EmptyReasonDoesNotCount {
  // saba-lint: unordered-iter-ok()
  std::unordered_set<int> bad_annotation;
};
