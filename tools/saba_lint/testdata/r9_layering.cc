// R9 fixture: one include per layering edge class. The tests lint this as
// src/net/r9_layering.cc against the map {src/sim | src/net src/peer | src/exp}.
#include "src/sim/r9_layering.h"
#include "src/exp/top.h"
#include "src/peer/widget.h"
#include "tests/test_util.h"
#include "src/newdir/widget.h"
// saba-lint: allow(R9): fixture-blessed upward edge to test the suppression path.
#include "src/exp/allowed.h"

int R9Fixture() { return 0; }
