// R7 fixture: raw threading primitives outside the blessed pool primitive.
#include <future>
#include <mutex>
#include <thread>

namespace fixture {

inline int Compute() {
  std::thread worker([] {});
  worker.join();
  std::mutex gate;
  (void)gate;
  auto task = std::async([] { return 1; });
  int thread = 0;  // Unqualified: an ordinary identifier, not a primitive.
  // saba-lint: allow(R7): fixture audit record for the suppression path.
  std::mutex audited;
  (void)audited;
  return thread + static_cast<int>(task.get());
}

}  // namespace fixture
