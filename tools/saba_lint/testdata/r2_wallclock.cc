// R2 fixture: wall-clock reads. Linted as "src/fixture/r2.cc".
#include <chrono>
#include <ctime>

double Bad() {
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long BadCallForm() {
  return static_cast<long>(std::time(nullptr));
}

double Suppressed() {
  // saba-lint: allow(R2): fixture demonstrates the suppression syntax.
  auto t = std::chrono::system_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

struct Scheduler {
  double time() const { return 0.0; }
};

double MemberNamedTimeIsFine(const Scheduler& s) {
  // Member calls named `time`/`clock` are not wall-clock reads.
  return s.time();
}
