// R9 fixture header: linted as src/sim/r9_layering.h — the bottom layer, so
// any cross-layer include from here is upward.
#ifndef SRC_SIM_R9_LAYERING_H_
#define SRC_SIM_R9_LAYERING_H_
#include "src/net/r9_helper.h"
#endif  // SRC_SIM_R9_LAYERING_H_
