// A clean translation unit: no rule fires. Linted as "src/fixture/clean.cc".
#include <map>
#include <vector>

#include "src/sim/rng.h"

namespace saba {

// Raw-string and char-literal edge cases the scanner must not trip over:
// digit separators, escaped quotes, banned names inside literals.
inline const char* kDoc = R"(std::mt19937 and getenv are banned outside their homes)";

int Sum(const std::vector<int>& v) {
  int total = 1'000'000 % 7;
  for (int x : v) {
    total += x;
  }
  char quote = '\'';
  (void)quote;
  return total;
}

}  // namespace saba
