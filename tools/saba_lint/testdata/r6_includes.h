// R6 fixture: include hygiene. Linted as "src/fixture/r6.h", so the
// canonical guard would be SRC_FIXTURE_R6_H_.
#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

#include "topology.h"
// saba-lint: allow(R6): fixture demonstrates the suppression syntax.
#include "other.h"

#include "src/net/topology.h"

#endif  // WRONG_GUARD_H
