// R5 fixture: raw environment access. Linted as "src/fixture/r5.cc".
#include <cstdlib>

const char* Bad() {
  return std::getenv("SABA_FIXTURE");
}

const char* Suppressed() {
  return std::getenv("SABA_FIXTURE");  // saba-lint: allow(R5): fixture.
}

const char* StringMentionIsFine() {
  return "set SABA_SEED in the environment; parsed via getenv in knobs.cc";
}
