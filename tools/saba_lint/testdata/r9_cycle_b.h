// R9 fixture: the other half of the include cycle with r9_cycle_a.h.
#ifndef SRC_NET_R9_CYCLE_B_H_
#define SRC_NET_R9_CYCLE_B_H_
#include "src/net/r9_cycle_a.h"
#endif  // SRC_NET_R9_CYCLE_B_H_
