// R8 fixture: raw double rates and exact float comparisons, as they would
// look if someone un-fixed-pointed the allocation core. Only fires when
// linted under an allocation-core path (src/net/allocation_engine.* /
// src/net/allocator.*).
namespace saba {

struct Flow {
  double rate = 0;  // Flagged: double rate field.
  double intra_weight = 1.0;  // Legal: weights are not rates.
};

inline double Fill(Flow* flow) {
  double capacity_bps = 1e9;  // Flagged: double capacity local.
  double efficiency = 1.0;    // Legal name.
  if (efficiency == 1.0) {    // Flagged: exact float comparison.
    capacity_bps -= 1;
  }
  if (flow->rate != 0) {  // Legal: integer-literal comparison stays allowed.
    efficiency = 0.5;
  }
  // saba-lint: allow(R8): fixture demonstrates suppression
  double goodput = capacity_bps;
  return goodput * efficiency;
}

}  // namespace saba
