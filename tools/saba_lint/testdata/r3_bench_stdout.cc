// R3 fixture: bench stdout discipline. Linted as "bench/fixture_r3.cc".
#include <cstdio>
#include <iostream>

#include "src/sim/wallclock.h"

void Bad() {
  saba::Stopwatch watch;
  std::cout << watch.ElapsedSeconds() << "\n";
}

void BadPrintf() {
  std::printf("rows: %d\n", 3);
}

void Suppressed() {
  saba::Stopwatch watch;
  // saba-lint: allow(R3): fixture demonstrates the suppression syntax.
  std::cout << watch.ElapsedSeconds() << "\n";
}

void TimingToStderrIsFine() {
  saba::Stopwatch watch;
  std::cerr << "sweep took " << watch.ElapsedSeconds() << " s on SABA_JOBS workers\n";
}

void PlainReportLineIsFine() {
  std::cout << "average speedup: 2.41x\n";
}
