// R10 fixture: mutable namespace-scope / static-local state. The tests lint
// this as a src/core file, outside the src/sim exemption.
namespace saba {

int mutable_counter = 0;
const int kConstant = 7;
constexpr double kRatio = 0.5;
static const char* mutable_ptr = "x";
static const char* const kName = "y";

// saba-lint: shared-state-ok(fixture: written once before any worker starts)
int audited_counter = 0;

// saba-lint: shared-state-ok()
int empty_reason_counter = 0;

int Accumulate(int x) {
  static int calls = 0;
  // saba-lint: shared-state-ok(fixture: monotonic cache, value independent of write order)
  static int audited_calls = 0;
  int local = x;
  calls += local;
  audited_calls = calls;
  return calls;
}

}  // namespace saba
