// R1 fixture: raw randomness sources. Linted as "src/fixture/r1.cc".
#include <random>

int Bad() {
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}

int SuppressedOnPreviousLine() {
  // saba-lint: allow(R1): fixture demonstrates the suppression syntax.
  std::mt19937 gen(7);
  return static_cast<int>(gen());
}

int SuppressedOnSameLine() {
  return rand();  // saba-lint: allow(R1): fixture, same-line form.
}

const char* NotARandomCall() {
  // Identifiers that merely contain a banned name, and banned names inside
  // string literals, must not fire.
  static const char* mt19937_doc = "std::mt19937 is banned; use saba::Rng";
  int random_index = 3;
  (void)random_index;
  return mt19937_doc;
}
