// R11 fixture: by-reference captures flowing into WorkerPool dispatches,
// directly and via named locals. Linted by the tests as src/exp code.
#include "src/sim/worker_pool.h"

namespace saba {

void Fan(WorkerPool& pool, int n) {
  int sum = 0;
  pool.Run(n, [&](size_t index, int slot) { sum += slot; });
  pool.Run(n, [](size_t index, int slot) {});
  pool.Run(n, [sum](size_t index, int slot) {});
  // saba-lint: pool-capture-ok(fixture: slot-confined writes only)
  pool.Run(n, [&](size_t index, int slot) { sum += slot; });

  auto task = [&](size_t index, int slot) { sum += slot; };
  pool.Run(n, task);

  // saba-lint: pool-capture-ok(fixture: index-owned writes)
  auto audited = [&](size_t index, int slot) { sum += slot; };
  pool.Run(n, audited);
}

void NotAPool(int n) {
  struct Runner {
    void Run(int, int) {}
  } runner;
  runner.Run(n, 0);
}

}  // namespace saba
