#include "tools/saba_lint/model.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>

namespace saba {
namespace lint {
namespace {

bool StartsWith(const std::string& s, std::string_view prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

std::string Trimmed(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

// Quote-includes come from the raw lines: include paths are string literals,
// which the scanner blanks out of the code view.
void ExtractIncludes(const ScannedTu& tu, TuModel* model) {
  for (size_t li = 0; li < tu.scanned.raw.size(); ++li) {
    const std::string line = Trimmed(tu.scanned.raw[li]);
    if (line.empty() || line[0] != '#') {
      continue;
    }
    const std::string directive = Trimmed(line.substr(1));
    if (!StartsWith(directive, "include")) {
      continue;
    }
    const std::string rest = Trimmed(directive.substr(7));
    if (rest.size() < 2 || rest.front() != '"') {
      continue;
    }
    const size_t close = rest.find('"', 1);
    if (close == std::string::npos) {
      continue;
    }
    model->includes.push_back({rest.substr(1, close - 1), static_cast<int>(li) + 1});
  }
}

// ---------------------------------------------------------------------------
// Scope machine for R10: walk the token stream classifying every brace as
// namespace / class / block / brace-initializer scope, and analyze statements
// that end at namespace scope (potential globals) or block scope (potential
// static locals). Deliberately heuristic — the worst failure mode is a missed
// declaration or a spurious finding that an audit annotation resolves, never
// a wrong build.
// ---------------------------------------------------------------------------

enum class ScopeKind { kNamespace, kClass, kBlock, kInit };

bool SegmentContains(const std::vector<Token>& tokens, size_t begin, size_t end,
                     std::string_view ident) {
  for (size_t j = begin; j < end; ++j) {
    if (tokens[j].is_ident && tokens[j].text == ident) {
      return true;
    }
  }
  return false;
}

ScopeKind ClassifyBrace(const std::vector<Token>& tokens, size_t stmt_start, size_t brace) {
  if (SegmentContains(tokens, stmt_start, brace, "namespace")) {
    return ScopeKind::kNamespace;
  }
  if (brace > stmt_start && tokens[stmt_start].is_ident && tokens[stmt_start].text == "extern") {
    return ScopeKind::kNamespace;  // extern "C" { ... } is transparent.
  }
  const Token* prev = brace > stmt_start ? &tokens[brace - 1] : nullptr;
  if (prev == nullptr) {
    return ScopeKind::kInit;  // `{` opening a nested initializer list.
  }
  if (prev->text == ")") {
    return ScopeKind::kBlock;  // Function, lambda, or control-flow body.
  }
  if (prev->text == "=" || prev->text == "," || prev->text == "(" || prev->text == "{" ||
      prev->text == "[" || prev->text == "return") {
    return ScopeKind::kInit;
  }
  if ((prev->is_ident || prev->text == ">") &&
      (SegmentContains(tokens, stmt_start, brace, "class") ||
       SegmentContains(tokens, stmt_start, brace, "struct") ||
       SegmentContains(tokens, stmt_start, brace, "union") ||
       SegmentContains(tokens, stmt_start, brace, "enum"))) {
    return ScopeKind::kClass;
  }
  return ScopeKind::kBlock;  // else / do / try / trailing-return bodies.
}

bool IsOpenBracket(const std::string& t) { return t == "(" || t == "[" || t == "{"; }
bool IsCloseBracket(const std::string& t) { return t == ")" || t == "]" || t == "}"; }

// Index of the first top-level assignment `=` in [begin, end), or npos.
// Skips == / != / <= / >= and compound assignments, which tokenize as two
// single-char tokens.
size_t TopLevelAssign(const std::vector<Token>& tokens, size_t begin, size_t end) {
  int depth = 0;
  for (size_t j = begin; j < end; ++j) {
    const std::string& t = tokens[j].text;
    if (IsOpenBracket(t)) {
      ++depth;
    } else if (IsCloseBracket(t)) {
      --depth;
    } else if (depth == 0 && t == "=") {
      const bool next_eq = j + 1 < end && tokens[j + 1].text == "=";
      static const std::string kOps = "!<>+-*/%&|^=";
      const bool prev_op =
          j > begin && tokens[j - 1].text.size() == 1 &&
          kOps.find(tokens[j - 1].text[0]) != std::string::npos;
      if (!next_eq && !prev_op) {
        return j;
      }
    }
  }
  return std::string::npos;
}

// Index of the first top-level '(' in [begin, end), or npos.
size_t TopLevelParen(const std::vector<Token>& tokens, size_t begin, size_t end) {
  int depth = 0;
  for (size_t j = begin; j < end; ++j) {
    const std::string& t = tokens[j].text;
    if (t == "(") {
      if (depth == 0) {
        return j;
      }
      ++depth;
    } else if (t == "[" || t == "{") {
      ++depth;
    } else if (IsCloseBracket(t)) {
      --depth;
    }
  }
  return std::string::npos;
}

// The declared name in [begin, bound): the identifier closest to `bound`,
// skipping over a trailing array extent (`int a[3]`).
size_t DeclaredNameIndex(const std::vector<Token>& tokens, size_t begin, size_t bound) {
  size_t j = bound;
  int depth = 0;
  while (j > begin) {
    --j;
    const std::string& t = tokens[j].text;
    if (t == "]") {
      ++depth;
    } else if (t == "[") {
      --depth;
    } else if (depth == 0 && tokens[j].is_ident) {
      return j;
    }
  }
  return std::string::npos;
}

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "const",    "constexpr", "constinit", "static",  "thread_local", "inline",
      "volatile", "mutable",   "unsigned",  "signed",  "long",         "short",
      "int",      "char",      "bool",      "float",   "double",       "void",
      "auto",     "nullptr",   "true",      "false",   "new",          "delete",
      "sizeof",   "noexcept",  "final",     "override"};
  return kKeywords;
}

// True if the declaration in [begin, bound) is immutable: constexpr, or a
// top-level const. With a pointer declarator, only a `const` *after* the last
// `*` makes the pointer itself const (`const char* p` is a mutable pointer).
bool IsConstDecl(const std::vector<Token>& tokens, size_t begin, size_t bound) {
  size_t last_star = std::string::npos;
  for (size_t j = begin; j < bound; ++j) {
    if (tokens[j].is_ident && tokens[j].text == "constexpr") {
      return true;  // constexpr implies top-level const.
    }
    if (tokens[j].text == "*") {
      last_star = j;
    }
  }
  const size_t const_from = last_star == std::string::npos ? begin : last_star + 1;
  for (size_t j = const_from; j < bound; ++j) {
    if (tokens[j].is_ident && tokens[j].text == "const") {
      return true;
    }
  }
  return false;
}

// Analyzes one statement segment [begin, end) (exclusive of the trailing
// ';'). `static_only` is set at block scope, where only static/thread_local
// locals are in scope for R10; at namespace scope every variable is.
void AnalyzeDeclStatement(const ScannedTu& tu, const std::vector<Token>& tokens, size_t begin,
                          size_t end, bool static_only, TuModel* model) {
  if (begin >= end) {
    return;
  }
  const Token& first = tokens[begin];
  if (!first.is_ident) {
    return;
  }
  static const std::set<std::string> kSkipLeads = {
      "using",  "typedef",   "static_assert", "template", "friend", "public",
      "private", "protected", "namespace",     "class",    "struct", "union",
      "enum",   "extern",    "return",        "if",       "for",    "while",
      "do",     "switch",    "case",          "goto",     "break",  "continue",
      "delete", "throw",     "co_return",     "asm"};
  if (kSkipLeads.count(first.text) != 0) {
    return;
  }
  if (SegmentContains(tokens, begin, end, "operator")) {
    return;
  }
  if (static_only) {
    const bool leads_static =
        first.text == "static" || first.text == "thread_local" ||
        (begin + 1 < end && tokens[begin + 1].is_ident &&
         (tokens[begin + 1].text == "static" || tokens[begin + 1].text == "thread_local"));
    if (!leads_static) {
      return;
    }
  }

  const size_t eq = TopLevelAssign(tokens, begin, end);
  const size_t paren = TopLevelParen(tokens, begin, end);
  const size_t bound = eq == std::string::npos ? end : eq;
  if (paren != std::string::npos && paren < bound) {
    // `ident(` before any initializer: a function declaration (or a macro
    // invocation), not a variable. `void (*fp)()` declarators are missed —
    // acceptable for a heuristic whose escape hatch is an audit annotation.
    if (paren > begin && tokens[paren - 1].is_ident) {
      return;
    }
  }
  const size_t name_idx = DeclaredNameIndex(tokens, begin, bound);
  if (name_idx == std::string::npos || name_idx == begin) {
    return;  // No `type name` pair — an expression statement, not a decl.
  }
  const Token& name = tokens[name_idx];
  if (Keywords().count(name.text) != 0) {
    return;
  }
  if (IsConstDecl(tokens, begin, bound)) {
    return;
  }
  MutableStateDecl decl;
  decl.name = name.text;
  decl.line = name.line;
  decl.static_local = static_only;
  decl.annotated = HasAuditAnnotation(tu.scanned, first.line, name.line, "shared-state-ok");
  model->mutable_state.push_back(decl);
}

void ExtractMutableState(const ScannedTu& tu, TuModel* model) {
  const std::vector<Token>& tokens = tu.tokens;
  std::vector<ScopeKind> stack;
  size_t stmt_start = 0;

  auto effective_scope = [&]() -> ScopeKind {
    for (size_t j = stack.size(); j > 0; --j) {
      if (stack[j - 1] != ScopeKind::kInit) {
        return stack[j - 1];
      }
    }
    return ScopeKind::kNamespace;
  };

  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if (t == "{") {
      const ScopeKind kind = ClassifyBrace(tokens, stmt_start, i);
      stack.push_back(kind);
      if (kind != ScopeKind::kInit) {
        stmt_start = i + 1;
      }
    } else if (t == "}") {
      ScopeKind kind = ScopeKind::kBlock;
      if (!stack.empty()) {
        kind = stack.back();
        stack.pop_back();
      }
      if (kind != ScopeKind::kInit) {
        stmt_start = i + 1;
      }
    } else if (t == ";") {
      const ScopeKind scope = effective_scope();
      if (scope == ScopeKind::kNamespace) {
        AnalyzeDeclStatement(tu, tokens, stmt_start, i, /*static_only=*/false, model);
      } else if (scope == ScopeKind::kBlock) {
        AnalyzeDeclStatement(tu, tokens, stmt_start, i, /*static_only=*/true, model);
      }
      stmt_start = i + 1;
    }
  }
}

// ---------------------------------------------------------------------------
// Lambdas and WorkerPool dispatch sites for R11.
// ---------------------------------------------------------------------------

bool CanBeSubscripted(const Token& tok) {
  if (tok.is_ident) {
    return true;  // a[i]
  }
  const char c = tok.text.empty() ? '\0' : tok.text[0];
  return tok.text == "]" || tok.text == ")" || tok.text == "\"" ||
         std::isdigit(static_cast<unsigned char>(c)) != 0;
}

void ExtractLambdasAndDispatches(const ScannedTu& tu, TuModel* model) {
  const std::vector<Token>& tokens = tu.tokens;
  std::map<size_t, int> lambda_at;  // token index of '[' -> index into model->lambdas

  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].text != "[") {
      continue;
    }
    if (i > 0 && CanBeSubscripted(tokens[i - 1])) {
      continue;  // Subscript or array declarator, not a capture list.
    }
    if (i + 1 < tokens.size() && tokens[i + 1].text == "[") {
      ++i;  // [[attribute]]; skip the inner '[' too.
      continue;
    }
    // Parse the capture list up to the matching ']'.
    int depth = 1;
    bool by_ref = false;
    size_t j = i + 1;
    while (j < tokens.size() && depth > 0) {
      const std::string& t = tokens[j].text;
      if (t == "[") {
        ++depth;
      } else if (t == "]") {
        --depth;
      } else if (depth == 1 && t == "&") {
        const std::string& p = tokens[j - 1].text;
        if (p == "[" || p == ",") {
          by_ref = true;  // [&] default capture or explicit [&x].
        }
      }
      ++j;
    }
    if (j >= tokens.size()) {
      break;
    }
    const std::string& after = tokens[j].text;
    if (after != "(" && after != "{" && after != "<") {
      continue;  // Not followed by parameters or a body: not a lambda.
    }
    LambdaExpr lambda;
    lambda.line = tokens[i].line;
    lambda.captures_by_ref = by_ref;
    if (i >= 2 && tokens[i - 1].text == "=" && tokens[i - 2].is_ident &&
        !(i >= 3 && tokens[i - 3].text == "=")) {
      lambda.assigned_name = tokens[i - 2].text;
    }
    lambda.annotated = HasAuditAnnotation(tu.scanned, lambda.line, lambda.line, "pool-capture-ok");
    lambda_at[i] = static_cast<int>(model->lambdas.size());
    model->lambdas.push_back(lambda);
  }

  for (size_t i = 2; i < tokens.size(); ++i) {
    if (!tokens[i].is_ident || tokens[i].text != "Run") {
      continue;
    }
    const Token& access = tokens[i - 1];
    if (access.text != "." && access.text != "->") {
      continue;
    }
    const Token& recv = tokens[i - 2];
    if (!recv.is_ident) {
      continue;
    }
    if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") {
      continue;
    }
    PoolDispatch dispatch;
    dispatch.receiver = recv.text;
    dispatch.line = tokens[i].line;
    dispatch.annotated =
        HasAuditAnnotation(tu.scanned, dispatch.line, dispatch.line, "pool-capture-ok");
    // Walk the argument list: top-level commas separate arguments.
    int depth = 1;
    size_t arg_first = i + 2;
    size_t arg_tokens = 0;
    auto flush_arg = [&](size_t arg_end) {
      if (arg_first >= arg_end) {
        return;
      }
      DispatchArg arg;
      const auto it = lambda_at.find(arg_first);
      if (it != lambda_at.end()) {
        arg.lambda_index = it->second;
      } else if (arg_tokens == 1 && tokens[arg_first].is_ident) {
        arg.name = tokens[arg_first].text;
      }
      dispatch.args.push_back(arg);
    };
    size_t j = i + 2;
    while (j < tokens.size() && depth > 0) {
      const std::string& t = tokens[j].text;
      if (IsOpenBracket(t)) {
        ++depth;
      } else if (IsCloseBracket(t)) {
        --depth;
        if (depth == 0) {
          flush_arg(j);
          break;
        }
      } else if (depth == 1 && t == ",") {
        flush_arg(j);
        arg_first = j + 1;
        arg_tokens = 0;
        ++j;
        continue;
      }
      ++arg_tokens;
      ++j;
    }
    model->dispatches.push_back(std::move(dispatch));
  }
}

// Identifiers declared with type WorkerPool, by value, pointer, reference or
// smart pointer: `WorkerPool pool`, `WorkerPool* p`,
// `std::unique_ptr<WorkerPool> pool_`.
void ExtractPoolTypedNames(const ScannedTu& tu, TuModel* model) {
  const std::vector<Token>& tokens = tu.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!tokens[i].is_ident || tokens[i].text != "WorkerPool") {
      continue;
    }
    size_t j = i + 1;
    while (j < tokens.size() &&
           (tokens[j].text == ">" || tokens[j].text == "*" || tokens[j].text == "&")) {
      ++j;
    }
    if (j < tokens.size() && tokens[j].is_ident && Keywords().count(tokens[j].text) == 0 &&
        tokens[j].text != "operator" && tokens[j].text != "WorkerPool") {
      model->pool_typed_names.push_back(tokens[j].text);
    }
  }
  std::sort(model->pool_typed_names.begin(), model->pool_typed_names.end());
  model->pool_typed_names.erase(
      std::unique(model->pool_typed_names.begin(), model->pool_typed_names.end()),
      model->pool_typed_names.end());
}

}  // namespace

TuModel BuildTuModel(const ScannedTu& tu) {
  TuModel model;
  model.rel_path = tu.rel_path;
  model.display_path = tu.display_path;
  ExtractIncludes(tu, &model);
  ExtractMutableState(tu, &model);
  ExtractLambdasAndDispatches(tu, &model);
  ExtractPoolTypedNames(tu, &model);
  return model;
}

}  // namespace lint
}  // namespace saba
