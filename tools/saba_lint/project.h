// Phase 2 of the project-wide analysis (DESIGN.md §8): whole-program rules
// over the merged per-TU models from tools/saba_lint/model.h.
//
//   R9   the §9 layer DAG, read from tools/saba_lint/layers.txt (the single
//        source of truth): any upward or lateral include between layers, any
//        include of a harness directory from a layered file, and any include
//        cycle is a finding.
//   R10  every mutable namespace-scope or static-local variable outside
//        src/sim/ carries // saba-lint: shared-state-ok(<reason>).
//   R11  a lambda passed (directly or via a named local) to a WorkerPool
//        dispatch site must not capture by reference without
//        // saba-lint: pool-capture-ok(<reason>).

#ifndef TOOLS_SABA_LINT_PROJECT_H_
#define TOOLS_SABA_LINT_PROJECT_H_

#include <string>
#include <string_view>
#include <vector>

#include "tools/saba_lint/lint.h"
#include "tools/saba_lint/model.h"
#include "tools/saba_lint/scanner.h"

namespace saba {
namespace lint {

// The checked-in layer DAG: one rank per line, lowest (most foundational)
// first; directories on one line share a rank and are peers that may not
// include each other. '#' starts a comment.
struct LayerMap {
  struct Dir {
    std::string prefix;  // "src/net" — matched against rel paths.
    int rank = 0;        // 0 = bottom.
  };
  std::vector<Dir> dirs;

  // Rank of the layer dir containing `rel_path`, or -1 if unlayered.
  int RankOf(const std::string& rel_path) const;
  // The layer dir containing `rel_path`, or "" if unlayered.
  std::string DirOf(const std::string& rel_path) const;
};

// Strict parse: a malformed map is an error, never a silently empty DAG
// (knobs.h discipline). Returns false and fills `error` on failure.
bool ParseLayerMap(std::string_view content, LayerMap* map, std::string* error);

// Runs R9–R11 over the merged models. `tus` and `models` are parallel
// arrays; `layers` may be null, which skips the R9 layer/cycle checks (used
// when no layers.txt applies, e.g. single-fixture tests for R10/R11).
std::vector<Finding> CheckProjectRules(const std::vector<ScannedTu>& tus,
                                       const std::vector<TuModel>& models,
                                       const LayerMap* layers);

// Layer-granularity include DAG for --graph and the DESIGN.md §9 table:
// sorted "src/core -> src/net (6)" lines, counts = #include directives.
std::vector<std::string> LayerGraphEdges(const std::vector<TuModel>& models,
                                         const LayerMap& layers);

}  // namespace lint
}  // namespace saba

#endif  // TOOLS_SABA_LINT_PROJECT_H_
