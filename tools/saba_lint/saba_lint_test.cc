// Fixture-driven tests for the saba-lint rule engine, plus the live-tree
// self-check: the repository itself must lint clean (the same gate the
// `saba_lint_check` build target and CI enforce).

#include "tools/saba_lint/lint.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace saba {
namespace lint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(SABA_LINT_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<Finding> LintFixture(const std::string& fixture, const std::string& rel_path) {
  return LintFile(rel_path, ReadFixture(fixture));
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(std::count_if(findings.begin(), findings.end(),
                                        [&](const Finding& f) { return f.rule == rule; }));
}

bool HasFindingAt(const std::vector<Finding>& findings, const std::string& rule, int line) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == rule && f.line == line;
  });
}

TEST(SabaLintTest, R1FiresOnceAndIsSuppressible) {
  const auto findings = LintFixture("r1_randomness.cc", "src/fixture/r1.cc");
  EXPECT_EQ(CountRule(findings, "R1"), 1) << "exactly the unsuppressed mt19937 use";
  EXPECT_TRUE(HasFindingAt(findings, "R1", 5));
  EXPECT_EQ(findings.size(), 1u) << "no other rule fires on the fixture";
}

TEST(SabaLintTest, R1ExemptInsideRngImplementation) {
  const std::string content = ReadFixture("r1_randomness.cc");
  EXPECT_TRUE(LintFile("src/sim/rng.cc", content).empty());
  EXPECT_EQ(CountRule(LintFile("src/sim/rng.h", content), "R1"), 0)
      << "R1 exemption covers both rng files (the .h path additionally "
         "triggers the guard check on this guard-less fixture, which is fine)";
}

TEST(SabaLintTest, R2FiresOnClockReadsAndCallForms) {
  const auto findings = LintFixture("r2_wallclock.cc", "src/fixture/r2.cc");
  EXPECT_EQ(CountRule(findings, "R2"), 2);
  EXPECT_TRUE(HasFindingAt(findings, "R2", 6)) << "steady_clock::now()";
  EXPECT_TRUE(HasFindingAt(findings, "R2", 11)) << "std::time(nullptr)";
  EXPECT_EQ(findings.size(), 2u);
}

TEST(SabaLintTest, R2ExemptInsideWallclockHeader) {
  // wallclock.h itself may read steady_clock; the guard must then match its
  // real path, so lint a synthetic body.
  const std::string body =
      "#ifndef SRC_SIM_WALLCLOCK_H_\n#define SRC_SIM_WALLCLOCK_H_\n"
      "#include <chrono>\n"
      "inline auto Now() { return std::chrono::steady_clock::now(); }\n"
      "#endif  // SRC_SIM_WALLCLOCK_H_\n";
  EXPECT_TRUE(LintFile("src/sim/wallclock.h", body).empty());
  EXPECT_EQ(CountRule(LintFile("src/sim/other.h", body), "R2"), 1)
      << "same body elsewhere fires (guard mismatch also fires, R2 count is what matters)";
}

TEST(SabaLintTest, R3FiresOnTimingToStdoutInBenchOnly) {
  const auto findings = LintFixture("r3_bench_stdout.cc", "bench/fixture_r3.cc");
  EXPECT_EQ(CountRule(findings, "R3"), 2);
  EXPECT_TRUE(HasFindingAt(findings, "R3", 9)) << "cout << ElapsedSeconds";
  EXPECT_TRUE(HasFindingAt(findings, "R3", 13)) << "printf bypasses report helpers";
  EXPECT_EQ(findings.size(), 2u);

  // The same file outside bench/ is not subject to the stdout discipline.
  EXPECT_EQ(CountRule(LintFixture("r3_bench_stdout.cc", "src/fixture/r3.cc"), "R3"), 0);
}

TEST(SabaLintTest, R4RequiresAnnotationWithReason) {
  const auto findings = LintFixture("r4_unordered.cc", "src/fixture/r4.cc");
  EXPECT_EQ(CountRule(findings, "R4"), 2);
  EXPECT_TRUE(HasFindingAt(findings, "R4", 8)) << "unannotated unordered_map";
  EXPECT_TRUE(HasFindingAt(findings, "R4", 22)) << "empty reason is not an audit";
  EXPECT_EQ(findings.size(), 2u);
}

TEST(SabaLintTest, R5FiresOutsideKnobsAndIsSuppressible) {
  const auto findings = LintFixture("r5_getenv.cc", "src/fixture/r5.cc");
  EXPECT_EQ(CountRule(findings, "R5"), 1);
  EXPECT_TRUE(HasFindingAt(findings, "R5", 5));
  EXPECT_EQ(findings.size(), 1u);

  EXPECT_TRUE(LintFile("src/exp/knobs.cc", ReadFixture("r5_getenv.cc")).empty())
      << "knobs.cc is the one home for getenv";
}

TEST(SabaLintTest, R6ChecksGuardsAndRootedIncludes) {
  const auto findings = LintFixture("r6_includes.h", "src/fixture/r6.h");
  EXPECT_EQ(CountRule(findings, "R6"), 2);
  EXPECT_TRUE(HasFindingAt(findings, "R6", 3)) << "guard != SRC_FIXTURE_R6_H_";
  EXPECT_TRUE(HasFindingAt(findings, "R6", 6)) << "\"topology.h\" is not repo-rooted";
  EXPECT_EQ(findings.size(), 2u);
}

TEST(SabaLintTest, R7FiresOnRawThreadingPrimitives) {
  const auto findings = LintFixture("r7_threads.cc", "src/fixture/r7.cc");
  EXPECT_EQ(CountRule(findings, "R7"), 3);
  EXPECT_TRUE(HasFindingAt(findings, "R7", 9)) << "std::thread construction";
  EXPECT_TRUE(HasFindingAt(findings, "R7", 11)) << "raw std::mutex";
  EXPECT_TRUE(HasFindingAt(findings, "R7", 13)) << "std::async";
  EXPECT_EQ(findings.size(), 3u) << "line 14's unqualified `thread` variable and the "
                                    "allow(R7)-annotated mutex on line 16 stay legal";
}

TEST(SabaLintTest, R7ExemptInsideWorkerPool) {
  const std::string content = ReadFixture("r7_threads.cc");
  EXPECT_EQ(CountRule(LintFile("src/sim/worker_pool.cc", content), "R7"), 0)
      << "worker_pool is the one home for thread construction";
  EXPECT_EQ(CountRule(LintFile("src/sim/worker_pool.h", content), "R7"), 0)
      << "the .h path additionally fails the guard check on this fixture, which is fine";
}

TEST(SabaLintTest, R8FiresOnDoubleRatesInAllocationCore) {
  const auto findings = LintFixture("r8_double_rates.cc", "src/net/allocation_engine.cc");
  EXPECT_EQ(CountRule(findings, "R8"), 3);
  EXPECT_TRUE(HasFindingAt(findings, "R8", 8)) << "double rate field";
  EXPECT_TRUE(HasFindingAt(findings, "R8", 13)) << "double capacity_bps local";
  EXPECT_TRUE(HasFindingAt(findings, "R8", 15)) << "exact float == comparison";
  EXPECT_EQ(findings.size(), 3u) << "weights, integer comparisons and the allow(R8)-"
                                    "annotated goodput stay legal";
}

TEST(SabaLintTest, R8ScopedToAllocationCoreFiles) {
  const std::string content = ReadFixture("r8_double_rates.cc");
  EXPECT_EQ(CountRule(LintFile("src/net/allocator.h", content), "R8"), 3)
      << "allocator.h is in scope (the guard check also fires on this guard-less "
         "fixture, which is fine)";
  EXPECT_TRUE(LintFile("src/net/flow_simulator.cc", content).empty())
      << "fluid-boundary code may hold double rates";
  EXPECT_TRUE(LintFile("src/fixture/r8.cc", content).empty());
}

TEST(SabaLintTest, CleanFilePasses) {
  EXPECT_TRUE(LintFixture("clean.cc", "src/fixture/clean.cc").empty());
}

TEST(SabaLintTest, RuleTableNamesEveryRule) {
  const auto table = RuleTable();
  ASSERT_EQ(table.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(table[static_cast<size_t>(i)].first, "R" + std::to_string(i + 1));
  }
}

TEST(SabaLintTest, RelativizePathFindsTopLevelMarker) {
  EXPECT_EQ(RelativizePath("/root/repo/src/sim/rng.cc"), "src/sim/rng.cc");
  EXPECT_EQ(RelativizePath("bench/bench_util.h"), "bench/bench_util.h");
  EXPECT_EQ(RelativizePath("/abs/without/marker.cc"), "/abs/without/marker.cc");
}

// The gate itself: the live tree must be clean. This is the same invocation
// as `cmake --build build --target saba_lint_check`, run as a tier-1 test so
// a violating diff fails `ctest` even if nobody runs the custom target.
TEST(SabaLintTest, LiveTreeIsClean) {
  const std::string root = SABA_SOURCE_DIR;
  std::ostringstream report;
  const auto findings = LintPaths(
      {root + "/src", root + "/bench", root + "/tests", root + "/examples", root + "/tools"},
      report);
  EXPECT_TRUE(findings.empty()) << report.str();
}

}  // namespace
}  // namespace lint
}  // namespace saba
