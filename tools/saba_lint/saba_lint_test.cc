// Fixture-driven tests for the saba-lint rule engine, plus the live-tree
// self-check: the repository itself must lint clean (the same gate the
// `saba_lint_check` build target and CI enforce).

#include "tools/saba_lint/lint.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/saba_lint/model.h"
#include "tools/saba_lint/project.h"

namespace saba {
namespace lint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(SABA_LINT_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<Finding> LintFixture(const std::string& fixture, const std::string& rel_path) {
  return LintFile(rel_path, ReadFixture(fixture));
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(std::count_if(findings.begin(), findings.end(),
                                        [&](const Finding& f) { return f.rule == rule; }));
}

bool HasFindingAt(const std::vector<Finding>& findings, const std::string& rule, int line) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == rule && f.line == line;
  });
}

TEST(SabaLintTest, R1FiresOnceAndIsSuppressible) {
  const auto findings = LintFixture("r1_randomness.cc", "src/fixture/r1.cc");
  EXPECT_EQ(CountRule(findings, "R1"), 1) << "exactly the unsuppressed mt19937 use";
  EXPECT_TRUE(HasFindingAt(findings, "R1", 5));
  EXPECT_EQ(findings.size(), 1u) << "no other rule fires on the fixture";
}

TEST(SabaLintTest, R1ExemptInsideRngImplementation) {
  const std::string content = ReadFixture("r1_randomness.cc");
  EXPECT_TRUE(LintFile("src/sim/rng.cc", content).empty());
  EXPECT_EQ(CountRule(LintFile("src/sim/rng.h", content), "R1"), 0)
      << "R1 exemption covers both rng files (the .h path additionally "
         "triggers the guard check on this guard-less fixture, which is fine)";
}

TEST(SabaLintTest, R2FiresOnClockReadsAndCallForms) {
  const auto findings = LintFixture("r2_wallclock.cc", "src/fixture/r2.cc");
  EXPECT_EQ(CountRule(findings, "R2"), 2);
  EXPECT_TRUE(HasFindingAt(findings, "R2", 6)) << "steady_clock::now()";
  EXPECT_TRUE(HasFindingAt(findings, "R2", 11)) << "std::time(nullptr)";
  EXPECT_EQ(findings.size(), 2u);
}

TEST(SabaLintTest, R2ExemptInsideWallclockHeader) {
  // wallclock.h itself may read steady_clock; the guard must then match its
  // real path, so lint a synthetic body.
  const std::string body =
      "#ifndef SRC_SIM_WALLCLOCK_H_\n#define SRC_SIM_WALLCLOCK_H_\n"
      "#include <chrono>\n"
      "inline auto Now() { return std::chrono::steady_clock::now(); }\n"
      "#endif  // SRC_SIM_WALLCLOCK_H_\n";
  EXPECT_TRUE(LintFile("src/sim/wallclock.h", body).empty());
  EXPECT_EQ(CountRule(LintFile("src/sim/other.h", body), "R2"), 1)
      << "same body elsewhere fires (guard mismatch also fires, R2 count is what matters)";
}

TEST(SabaLintTest, R3FiresOnTimingToStdoutInBenchOnly) {
  const auto findings = LintFixture("r3_bench_stdout.cc", "bench/fixture_r3.cc");
  EXPECT_EQ(CountRule(findings, "R3"), 2);
  EXPECT_TRUE(HasFindingAt(findings, "R3", 9)) << "cout << ElapsedSeconds";
  EXPECT_TRUE(HasFindingAt(findings, "R3", 13)) << "printf bypasses report helpers";
  EXPECT_EQ(findings.size(), 2u);

  // The same file outside bench/ is not subject to the stdout discipline.
  EXPECT_EQ(CountRule(LintFixture("r3_bench_stdout.cc", "src/fixture/r3.cc"), "R3"), 0);
}

TEST(SabaLintTest, R4RequiresAnnotationWithReason) {
  const auto findings = LintFixture("r4_unordered.cc", "src/fixture/r4.cc");
  EXPECT_EQ(CountRule(findings, "R4"), 2);
  EXPECT_TRUE(HasFindingAt(findings, "R4", 8)) << "unannotated unordered_map";
  EXPECT_TRUE(HasFindingAt(findings, "R4", 22)) << "empty reason is not an audit";
  EXPECT_EQ(findings.size(), 2u);
}

TEST(SabaLintTest, R5FiresOutsideKnobsAndIsSuppressible) {
  const auto findings = LintFixture("r5_getenv.cc", "src/fixture/r5.cc");
  EXPECT_EQ(CountRule(findings, "R5"), 1);
  EXPECT_TRUE(HasFindingAt(findings, "R5", 5));
  EXPECT_EQ(findings.size(), 1u);

  EXPECT_TRUE(LintFile("src/exp/knobs.cc", ReadFixture("r5_getenv.cc")).empty())
      << "knobs.cc is the one home for getenv";
}

TEST(SabaLintTest, R6ChecksGuardsAndRootedIncludes) {
  const auto findings = LintFixture("r6_includes.h", "src/fixture/r6.h");
  EXPECT_EQ(CountRule(findings, "R6"), 2);
  EXPECT_TRUE(HasFindingAt(findings, "R6", 3)) << "guard != SRC_FIXTURE_R6_H_";
  EXPECT_TRUE(HasFindingAt(findings, "R6", 6)) << "\"topology.h\" is not repo-rooted";
  EXPECT_EQ(findings.size(), 2u);
}

TEST(SabaLintTest, R7FiresOnRawThreadingPrimitives) {
  const auto findings = LintFixture("r7_threads.cc", "src/fixture/r7.cc");
  EXPECT_EQ(CountRule(findings, "R7"), 3);
  EXPECT_TRUE(HasFindingAt(findings, "R7", 9)) << "std::thread construction";
  EXPECT_TRUE(HasFindingAt(findings, "R7", 11)) << "raw std::mutex";
  EXPECT_TRUE(HasFindingAt(findings, "R7", 13)) << "std::async";
  EXPECT_EQ(findings.size(), 3u) << "line 14's unqualified `thread` variable and the "
                                    "allow(R7)-annotated mutex on line 16 stay legal";
}

TEST(SabaLintTest, R7ExemptInsideWorkerPool) {
  const std::string content = ReadFixture("r7_threads.cc");
  EXPECT_EQ(CountRule(LintFile("src/sim/worker_pool.cc", content), "R7"), 0)
      << "worker_pool is the one home for thread construction";
  EXPECT_EQ(CountRule(LintFile("src/sim/worker_pool.h", content), "R7"), 0)
      << "the .h path additionally fails the guard check on this fixture, which is fine";
}

TEST(SabaLintTest, R8FiresOnDoubleRatesInAllocationCore) {
  const auto findings = LintFixture("r8_double_rates.cc", "src/net/allocation_engine.cc");
  EXPECT_EQ(CountRule(findings, "R8"), 3);
  EXPECT_TRUE(HasFindingAt(findings, "R8", 8)) << "double rate field";
  EXPECT_TRUE(HasFindingAt(findings, "R8", 13)) << "double capacity_bps local";
  EXPECT_TRUE(HasFindingAt(findings, "R8", 15)) << "exact float == comparison";
  EXPECT_EQ(findings.size(), 3u) << "weights, integer comparisons and the allow(R8)-"
                                    "annotated goodput stay legal";
}

TEST(SabaLintTest, R8ScopedToAllocationCoreFiles) {
  const std::string content = ReadFixture("r8_double_rates.cc");
  EXPECT_EQ(CountRule(LintFile("src/net/allocator.h", content), "R8"), 3)
      << "allocator.h is in scope (the guard check also fires on this guard-less "
         "fixture, which is fine)";
  EXPECT_TRUE(LintFile("src/net/flow_simulator.cc", content).empty())
      << "fluid-boundary code may hold double rates";
  EXPECT_TRUE(LintFile("src/fixture/r8.cc", content).empty());
}

TEST(SabaLintTest, CleanFilePasses) {
  EXPECT_TRUE(LintFixture("clean.cc", "src/fixture/clean.cc").empty());
}

TEST(SabaLintTest, RuleTableNamesEveryRule) {
  const auto table = RuleTable();
  ASSERT_EQ(table.size(), 11u);
  for (int i = 0; i < 11; ++i) {
    EXPECT_EQ(table[static_cast<size_t>(i)].first, "R" + std::to_string(i + 1));
  }
}

TEST(SabaLintTest, RelativizePathFindsTopLevelMarker) {
  EXPECT_EQ(RelativizePath("/root/repo/src/sim/rng.cc"), "src/sim/rng.cc");
  EXPECT_EQ(RelativizePath("bench/bench_util.h"), "bench/bench_util.h");
  EXPECT_EQ(RelativizePath("/abs/without/marker.cc"), "/abs/without/marker.cc");
}

// ---------------------------------------------------------------------------
// Project rules (phase 2): R9–R11 over merged TU models.
// ---------------------------------------------------------------------------

// Builds the parallel (ScannedTu, TuModel) arrays CheckProjectRules consumes.
struct MiniProject {
  std::vector<ScannedTu> tus;
  std::vector<TuModel> models;

  void Add(const std::string& rel_path, const std::string& content) {
    tus.push_back(MakeScannedTu(rel_path, rel_path, content));
    models.push_back(BuildTuModel(tus.back()));
  }
  void AddFixture(const std::string& rel_path, const std::string& fixture) {
    Add(rel_path, ReadFixture(fixture));
  }
  std::vector<Finding> Check(const LayerMap* layers) const {
    return CheckProjectRules(tus, models, layers);
  }
};

// The classic "file:line: [R#] message" stream — the golden-output format.
std::string Render(const std::vector<Finding>& findings) {
  std::ostringstream out;
  PrintFindings(findings, OutputFormat::kText, 0, out);
  return out.str();
}

LayerMap TestLayers() {
  LayerMap layers;
  std::string error;
  EXPECT_TRUE(ParseLayerMap("src/sim\nsrc/net src/peer\nsrc/exp\n", &layers, &error)) << error;
  return layers;
}

TEST(SabaLintProjectTest, R9GoldenFindingsForEveryEdgeClass) {
  MiniProject project;
  project.AddFixture("src/net/r9_layering.cc", "r9_layering.cc");
  project.AddFixture("src/sim/r9_layering.h", "r9_layering.h");
  const LayerMap layers = TestLayers();
  const auto findings = project.Check(&layers);
  EXPECT_EQ(Render(findings),
            "src/net/r9_layering.cc:4: [R9] upward include \"src/exp/top.h\": src/net is below "
            "src/exp in the layer DAG and may depend only on lower layers "
            "(tools/saba_lint/layers.txt, DESIGN.md §9)\n"
            "src/net/r9_layering.cc:5: [R9] lateral include \"src/peer/widget.h\": src/net and "
            "src/peer are peer layers and may not include each other "
            "(tools/saba_lint/layers.txt, DESIGN.md §9)\n"
            "src/net/r9_layering.cc:6: [R9] layered code includes harness header "
            "\"tests/test_util.h\"; src/net is below the bench/tests/examples/tools rank in the "
            "layer DAG (tools/saba_lint/layers.txt, DESIGN.md §9)\n"
            "src/net/r9_layering.cc:7: [R9] include \"src/newdir/widget.h\" is not under any "
            "layer in tools/saba_lint/layers.txt; the map is the single source of truth for the "
            "§9 DAG — add the new directory to it at the right rank\n"
            "src/sim/r9_layering.h:5: [R9] upward include \"src/net/r9_helper.h\": src/sim is "
            "below src/net in the layer DAG and may depend only on lower layers "
            "(tools/saba_lint/layers.txt, DESIGN.md §9)\n")
      << "line 9's allow(R9)-suppressed upward include must stay silent";
}

TEST(SabaLintProjectTest, R9DetectsIncludeCyclesAcrossFiles) {
  MiniProject project;
  project.AddFixture("src/net/r9_cycle_a.h", "r9_cycle_a.h");
  project.AddFixture("src/net/r9_cycle_b.h", "r9_cycle_b.h");
  const LayerMap layers = TestLayers();
  EXPECT_EQ(Render(project.Check(&layers)),
            "src/net/r9_cycle_a.h:5: [R9] include cycle among {src/net/r9_cycle_a.h <-> "
            "src/net/r9_cycle_b.h}; the include graph must stay a DAG "
            "(tools/saba_lint/layers.txt, DESIGN.md §9)\n")
      << "one finding per cycle, anchored at the lexicographically smallest member";
}

TEST(SabaLintProjectTest, R10FlagsMutableStateOutsideSimOnly) {
  MiniProject project;
  project.AddFixture("src/core/r10_shared_state.cc", "r10_shared_state.cc");
  const auto findings = project.Check(nullptr);
  EXPECT_EQ(CountRule(findings, "R10"), 4);
  EXPECT_TRUE(HasFindingAt(findings, "R10", 5)) << "int mutable_counter";
  EXPECT_TRUE(HasFindingAt(findings, "R10", 8)) << "const char* with a mutable pointer";
  EXPECT_TRUE(HasFindingAt(findings, "R10", 15)) << "shared-state-ok() with empty reason";
  EXPECT_TRUE(HasFindingAt(findings, "R10", 18)) << "unannotated static local";
  EXPECT_EQ(findings.size(), 4u) << "const/constexpr/*-const, annotated and plain locals "
                                    "stay legal:\n"
                                 << Render(findings);

  MiniProject sim;
  sim.AddFixture("src/sim/r10_shared_state.cc", "r10_shared_state.cc");
  EXPECT_TRUE(sim.Check(nullptr).empty()) << "src/sim/ is the audited home for shared state";
}

TEST(SabaLintProjectTest, R11GoldenFindingsForRefCapturesIntoPool) {
  MiniProject project;
  project.AddFixture("src/exp/r11_pool_capture.cc", "r11_pool_capture.cc");
  const auto findings = project.Check(nullptr);
  EXPECT_EQ(Render(findings),
            "src/exp/r11_pool_capture.cc:9: [R11] by-reference capture flows into "
            "WorkerPool::Run; every captured reference is shared across worker threads, so the "
            "§7.3 confinement argument (slot-confined scratch, index-owned writes) must be "
            "stated explicitly — annotate the dispatch with "
            "// saba-lint: pool-capture-ok(<reason>) or capture by value\n"
            "src/exp/r11_pool_capture.cc:16: [R11] by-reference capture flows into "
            "WorkerPool::Run (via local 'task', line 15); every captured reference is shared "
            "across worker threads, so the §7.3 confinement argument (slot-confined scratch, "
            "index-owned writes) must be stated explicitly — annotate the dispatch with "
            "// saba-lint: pool-capture-ok(<reason>) or capture by value\n")
      << "capture-free, by-value, annotated-dispatch, annotated-lambda and non-pool Run() "
         "calls stay legal";
}

TEST(SabaLintProjectTest, R11ResolvesPoolTypedNamesAcrossFiles) {
  const std::string owner_h =
      "struct Owner {\n"
      "  WorkerPool* pool_member;\n"
      "};\n";
  const std::string user_cc =
      "void Use(Owner& o, int n) {\n"
      "  int acc = 0;\n"
      "  o.pool_member->Run(n, [&](size_t i, int s) { acc += s; });\n"
      "}\n";

  MiniProject merged;
  merged.Add("src/core/owner.h", owner_h);
  merged.Add("src/core/user.cc", user_cc);
  const auto findings = merged.Check(nullptr);
  EXPECT_EQ(CountRule(findings, "R11"), 1) << Render(findings);
  EXPECT_TRUE(HasFindingAt(findings, "R11", 3))
      << "the WorkerPool-typed name is declared in owner.h, the dispatch lives in user.cc — "
         "only the merged model can connect them";

  MiniProject alone;
  alone.Add("src/core/user.cc", user_cc);
  EXPECT_TRUE(alone.Check(nullptr).empty())
      << "without owner.h the receiver is not known to be a WorkerPool";
}

TEST(SabaLintProjectTest, ParseLayerMapIsStrict) {
  LayerMap layers;
  std::string error;
  EXPECT_FALSE(ParseLayerMap("src/net\nsrc/net\n", &layers, &error));
  EXPECT_NE(error.find("duplicate layer"), std::string::npos) << error;
  EXPECT_FALSE(ParseLayerMap("# comments only\n", &layers, &error));
  EXPECT_NE(error.find("declares no layers"), std::string::npos) << error;

  ASSERT_TRUE(ParseLayerMap("src/sim\nsrc/net src/peer\nsrc/exp\n", &layers, &error)) << error;
  EXPECT_EQ(layers.RankOf("src/sim/rng.h"), 0);
  EXPECT_EQ(layers.RankOf("src/net/topology.h"), 1);
  EXPECT_EQ(layers.RankOf("src/peer/widget.h"), 1);
  EXPECT_EQ(layers.RankOf("src/exp/knobs.h"), 2);
  EXPECT_EQ(layers.RankOf("tests/helper.h"), -1) << "harness dirs are unlayered";
  EXPECT_EQ(layers.DirOf("src/peer/widget.h"), "src/peer");
}

TEST(SabaLintProjectTest, LayerGraphEdgesAreSortedAndCounted) {
  MiniProject project;
  project.AddFixture("src/net/r9_layering.cc", "r9_layering.cc");
  project.AddFixture("src/sim/r9_layering.h", "r9_layering.h");
  const LayerMap layers = TestLayers();
  const std::vector<std::string> expected = {
      "src/net -> src/exp (2)",  // Suppressed includes still count as graph edges.
      "src/net -> src/peer (1)",
      "src/net -> src/sim (1)",
      "src/sim -> src/net (1)",
  };
  EXPECT_EQ(LayerGraphEdges(project.models, layers), expected);
}

// ---------------------------------------------------------------------------
// Output formats and the tree pipeline.
// ---------------------------------------------------------------------------

TEST(SabaLintOutputTest, TextJsonAndGithubFormats) {
  const std::vector<Finding> findings = {{"src/a.cc", 3, "R9", "msg \"quoted\""}};

  std::ostringstream text;
  PrintFindings(findings, OutputFormat::kText, 1, text);
  EXPECT_EQ(text.str(), "src/a.cc:3: [R9] msg \"quoted\"\n");

  std::ostringstream json;
  PrintFindings(findings, OutputFormat::kJson, 1, json);
  EXPECT_EQ(json.str(),
            "{\n"
            "  \"tool\": \"saba_lint\",\n"
            "  \"schema\": 1,\n"
            "  \"files_scanned\": 1,\n"
            "  \"findings\": [\n"
            "    {\"file\": \"src/a.cc\", \"line\": 3, \"rule\": \"R9\", "
            "\"message\": \"msg \\\"quoted\\\"\"}\n"
            "  ],\n"
            "  \"count\": 1\n"
            "}\n");

  std::ostringstream empty_json;
  PrintFindings({}, OutputFormat::kJson, 7, empty_json);
  EXPECT_EQ(empty_json.str(),
            "{\n"
            "  \"tool\": \"saba_lint\",\n"
            "  \"schema\": 1,\n"
            "  \"files_scanned\": 7,\n"
            "  \"findings\": [],\n"
            "  \"count\": 0\n"
            "}\n");

  std::ostringstream github;
  PrintFindings({{"src/a.cc", 3, "R9", "50% done\nnext"}}, OutputFormat::kGithub, 1, github);
  EXPECT_EQ(github.str(), "::error file=src/a.cc,line=3,title=saba-lint R9::50%25 done%0Anext\n");
}

TEST(SabaLintTreeTest, JsonReportIsStableAcrossRuns) {
  const std::string root = SABA_SOURCE_DIR;
  auto render = [&] {
    const TreeLintResult result = LintTree({root + "/tools"}, TreeLintOptions{});
    std::ostringstream out;
    PrintFindings(result.findings, OutputFormat::kJson, result.files_scanned, out);
    return out.str();
  };
  const std::string first = render();
  EXPECT_EQ(first, render()) << "JSON report must be byte-identical across runs";
  EXPECT_NE(first.find("\"files_scanned\""), std::string::npos);
}

TEST(SabaLintTreeTest, MissingLayerMapIsAFindingNotASilentSkip) {
  const std::string root = SABA_SOURCE_DIR;
  TreeLintOptions options;
  options.layers_path = root + "/no/such/layers.txt";
  const TreeLintResult result = LintTree({root + "/src/sim/wallclock.h"}, options);
  ASSERT_EQ(result.findings.size(), 1u) << Render(result.findings);
  EXPECT_EQ(result.findings[0].rule, "R0");
  EXPECT_NE(result.findings[0].message.find("unreadable"), std::string::npos);
}

// The gate itself: the live tree must be clean. This is the same invocation
// as `cmake --build build --target saba_lint_check`, run as a tier-1 test so
// a violating diff fails `ctest` even if nobody runs the custom target.
TEST(SabaLintTest, LiveTreeIsClean) {
  const std::string root = SABA_SOURCE_DIR;
  std::ostringstream report;
  const auto findings = LintPaths(
      {root + "/src", root + "/bench", root + "/tests", root + "/examples", root + "/tools"},
      report);
  EXPECT_TRUE(findings.empty()) << report.str();
}

}  // namespace
}  // namespace lint
}  // namespace saba
