// Phase 1 of the project-wide analysis (DESIGN.md §8): each translation unit
// is parsed — token-heuristically, never with a full C++ front end — into a
// lightweight TuModel that phase 2 (tools/saba_lint/project.h) merges and
// checks whole-program rules against. The model records exactly what R9–R11
// need: resolved src/-rooted quote-includes, mutable namespace-scope and
// static-local declarations with their audit state, lambda expressions with
// their capture lists, and call sites into the saba::WorkerPool API.

#ifndef TOOLS_SABA_LINT_MODEL_H_
#define TOOLS_SABA_LINT_MODEL_H_

#include <string>
#include <vector>

#include "tools/saba_lint/scanner.h"

namespace saba {
namespace lint {

// A quote-include directive. `target` is the include string verbatim; R6
// guarantees it is repo-rooted, which is what lets phase 2 resolve it
// against other TUs by plain string match.
struct IncludeEdge {
  std::string target;
  int line = 0;
};

// A mutable (non-const, non-constexpr) variable at namespace scope, or a
// mutable `static`/`thread_local` local in a function body. Const-qualified
// declarations are not recorded: R10 is about shared *mutable* state.
struct MutableStateDecl {
  std::string name;
  int line = 0;              // Line of the declared name.
  bool static_local = false; // Block-scope static, as opposed to a global.
  bool annotated = false;    // Carries // saba-lint: shared-state-ok(<reason>).
};

// A lambda expression. `assigned_name` is non-empty when the lambda
// initializes a named local (`auto task = [...]`), which is how R11 follows
// lambdas handed to a pool dispatch indirectly.
struct LambdaExpr {
  int line = 0;
  bool captures_by_ref = false;  // [&] default or an explicit &x capture.
  std::string assigned_name;
  bool annotated = false;  // Carries // saba-lint: pool-capture-ok(<reason>).
};

// One argument at a WorkerPool dispatch site: either a lambda written in
// place (lambda_index >= 0, into TuModel::lambdas) or a bare identifier
// (name non-empty) that may refer to a named lambda local.
struct DispatchArg {
  int lambda_index = -1;
  std::string name;
};

// A call of the form `<receiver>.Run(...)` / `<receiver>->Run(...)`. Whether
// the receiver is actually a WorkerPool is decided in phase 2, against the
// pool-typed names merged across every TU (the declaration may live in a
// different file than the call).
struct PoolDispatch {
  std::string receiver;
  int line = 0;
  std::vector<DispatchArg> args;
  bool annotated = false;  // pool-capture-ok at the dispatch site itself.
};

struct TuModel {
  std::string rel_path;
  std::string display_path;
  std::vector<IncludeEdge> includes;
  std::vector<MutableStateDecl> mutable_state;
  std::vector<LambdaExpr> lambdas;
  std::vector<PoolDispatch> dispatches;
  // Identifiers declared in this TU with type WorkerPool (value, pointer,
  // reference, or smart pointer): `WorkerPool pool`, `WorkerPool* p`,
  // `std::unique_ptr<WorkerPool> pool_`.
  std::vector<std::string> pool_typed_names;
};

TuModel BuildTuModel(const ScannedTu& tu);

}  // namespace lint
}  // namespace saba

#endif  // TOOLS_SABA_LINT_MODEL_H_
