#include "tools/saba_lint/project.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace saba {
namespace lint {
namespace {

bool StartsWith(const std::string& s, std::string_view prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool UnderDir(const std::string& rel_path, const std::string& dir) {
  return rel_path.size() > dir.size() + 1 && StartsWith(rel_path, dir) &&
         rel_path[dir.size()] == '/';
}

// Harness roots sit above every layer: they may include anything, nothing
// layered may include them.
bool IsHarnessPath(const std::string& path) {
  for (const char* root : {"bench/", "tests/", "examples/", "tools/"}) {
    if (StartsWith(path, root)) {
      return true;
    }
  }
  return false;
}

void SortFindings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
}

// ---------------------------------------------------------------------------
// R9: layer DAG + include cycles.
// ---------------------------------------------------------------------------

void CheckLayering(const std::vector<ScannedTu>& tus, const std::vector<TuModel>& models,
                   const LayerMap& layers, std::vector<Finding>* findings) {
  for (size_t t = 0; t < models.size(); ++t) {
    const TuModel& model = models[t];
    const std::string from_dir = layers.DirOf(model.rel_path);
    if (from_dir.empty()) {
      continue;  // Harness files (tests/bench/examples/tools) are unconstrained.
    }
    const int from_rank = layers.RankOf(model.rel_path);
    for (const IncludeEdge& inc : model.includes) {
      if (IsSuppressed(tus[t].scanned, inc.line, "R9")) {
        continue;
      }
      if (IsHarnessPath(inc.target)) {
        findings->push_back(
            {model.display_path, inc.line, "R9",
             "layered code includes harness header \"" + inc.target + "\"; " + from_dir +
                 " is below the bench/tests/examples/tools rank in the layer DAG "
                 "(tools/saba_lint/layers.txt, DESIGN.md §9)"});
        continue;
      }
      const std::string to_dir = layers.DirOf(inc.target);
      if (to_dir.empty()) {
        if (StartsWith(inc.target, "src/")) {
          findings->push_back(
              {model.display_path, inc.line, "R9",
               "include \"" + inc.target +
                   "\" is not under any layer in tools/saba_lint/layers.txt; the map is "
                   "the single source of truth for the §9 DAG — add the new directory "
                   "to it at the right rank"});
        }
        continue;
      }
      if (to_dir == from_dir) {
        continue;
      }
      const int to_rank = layers.RankOf(inc.target);
      if (to_rank > from_rank) {
        findings->push_back(
            {model.display_path, inc.line, "R9",
             "upward include \"" + inc.target + "\": " + from_dir + " is below " + to_dir +
                 " in the layer DAG and may depend only on lower layers "
                 "(tools/saba_lint/layers.txt, DESIGN.md §9)"});
      } else if (to_rank == from_rank) {
        findings->push_back(
            {model.display_path, inc.line, "R9",
             "lateral include \"" + inc.target + "\": " + from_dir + " and " + to_dir +
                 " are peer layers and may not include each other "
                 "(tools/saba_lint/layers.txt, DESIGN.md §9)"});
      }
    }
  }
}

// Tarjan SCC over the resolved include graph; every component with more than
// one file (or a self-include) is a cycle. One finding per cycle, anchored
// at the lexicographically-smallest member's include into the cycle, so the
// report is deterministic no matter the scan order.
void CheckIncludeCycles(const std::vector<ScannedTu>& tus, const std::vector<TuModel>& models,
                        std::vector<Finding>* findings) {
  const size_t n = models.size();
  std::map<std::string, size_t> index;
  for (size_t i = 0; i < n; ++i) {
    index[models[i].rel_path] = i;
  }
  std::vector<std::vector<size_t>> adj(n);
  for (size_t i = 0; i < n; ++i) {
    for (const IncludeEdge& inc : models[i].includes) {
      const auto it = index.find(inc.target);
      if (it != index.end()) {
        adj[i].push_back(it->second);
      }
    }
  }

  std::vector<int> disc(n, -1);
  std::vector<int> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  int timer = 0;
  std::vector<std::vector<size_t>> sccs;

  std::function<void(size_t)> strongconnect = [&](size_t v) {
    disc[v] = low[v] = timer++;
    stack.push_back(v);
    on_stack[v] = true;
    for (const size_t w : adj[v]) {
      if (disc[w] < 0) {
        strongconnect(w);
        low[v] = std::min(low[v], low[w]);
      } else if (on_stack[w]) {
        low[v] = std::min(low[v], disc[w]);
      }
    }
    if (low[v] == disc[v]) {
      std::vector<size_t> scc;
      while (true) {
        const size_t w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        scc.push_back(w);
        if (w == v) {
          break;
        }
      }
      const bool self_loop =
          scc.size() == 1 && std::count(adj[scc[0]].begin(), adj[scc[0]].end(), scc[0]) > 0;
      if (scc.size() > 1 || self_loop) {
        sccs.push_back(std::move(scc));
      }
    }
  };
  for (size_t v = 0; v < n; ++v) {
    if (disc[v] < 0) {
      strongconnect(v);
    }
  }

  for (std::vector<size_t>& scc : sccs) {
    std::sort(scc.begin(), scc.end(), [&](size_t a, size_t b) {
      return models[a].rel_path < models[b].rel_path;
    });
    const size_t anchor = scc[0];
    const std::set<size_t> members(scc.begin(), scc.end());
    int line = 1;
    for (const IncludeEdge& inc : models[anchor].includes) {
      const auto it = index.find(inc.target);
      if (it != index.end() && members.count(it->second) != 0) {
        line = inc.line;
        break;
      }
    }
    if (IsSuppressed(tus[anchor].scanned, line, "R9")) {
      continue;
    }
    std::ostringstream cycle;
    for (size_t i = 0; i < scc.size(); ++i) {
      cycle << (i > 0 ? " <-> " : "") << models[scc[i]].rel_path;
    }
    findings->push_back({models[anchor].display_path, line, "R9",
                         "include cycle among {" + cycle.str() +
                             "}; the include graph must stay a DAG "
                             "(tools/saba_lint/layers.txt, DESIGN.md §9)"});
  }
}

// ---------------------------------------------------------------------------
// R10: shared-state audit.
// ---------------------------------------------------------------------------

void CheckSharedState(const std::vector<TuModel>& models, std::vector<Finding>* findings) {
  for (const TuModel& model : models) {
    if (StartsWith(model.rel_path, "src/sim/")) {
      continue;  // The simulator substrate (pool, log) is the audited home.
    }
    for (const MutableStateDecl& decl : model.mutable_state) {
      if (decl.annotated) {
        continue;
      }
      const char* kind = decl.static_local ? "static local" : "namespace-scope variable";
      findings->push_back(
          {model.display_path, decl.line, "R10",
           std::string("mutable ") + kind + " '" + decl.name +
               "'; unsynchronized shared state reachable from pooled workers breaks "
               "determinism and the TSan bill of health — make it const/constexpr, move "
               "it behind a worker-confined structure, or annotate the audited "
               "order-independence argument with // saba-lint: shared-state-ok(<reason>) "
               "(DESIGN.md §7.3)"});
    }
  }
}

// ---------------------------------------------------------------------------
// R11: WorkerPool capture audit.
// ---------------------------------------------------------------------------

void CheckPoolCaptures(const std::vector<TuModel>& models, std::vector<Finding>* findings) {
  std::set<std::string> pool_names;
  for (const TuModel& model : models) {
    pool_names.insert(model.pool_typed_names.begin(), model.pool_typed_names.end());
  }
  for (const TuModel& model : models) {
    for (const PoolDispatch& dispatch : model.dispatches) {
      if (pool_names.count(dispatch.receiver) == 0) {
        continue;  // Run() on something that is not a WorkerPool anywhere.
      }
      if (dispatch.annotated) {
        continue;
      }
      for (const DispatchArg& arg : dispatch.args) {
        const LambdaExpr* lambda = nullptr;
        if (arg.lambda_index >= 0) {
          lambda = &model.lambdas[static_cast<size_t>(arg.lambda_index)];
        } else if (!arg.name.empty()) {
          for (const LambdaExpr& candidate : model.lambdas) {
            if (candidate.assigned_name == arg.name && candidate.line <= dispatch.line) {
              lambda = &candidate;
            }
          }
        }
        if (lambda == nullptr || !lambda->captures_by_ref || lambda->annotated) {
          continue;
        }
        const std::string how =
            arg.lambda_index >= 0 ? "" : " (via local '" + arg.name + "', line " +
                                             std::to_string(lambda->line) + ")";
        findings->push_back(
            {model.display_path, dispatch.line, "R11",
             "by-reference capture flows into WorkerPool::Run" + how +
                 "; every captured reference is shared across worker threads, so the "
                 "§7.3 confinement argument (slot-confined scratch, index-owned writes) "
                 "must be stated explicitly — annotate the dispatch with "
                 "// saba-lint: pool-capture-ok(<reason>) or capture by value"});
      }
    }
  }
}

}  // namespace

int LayerMap::RankOf(const std::string& rel_path) const {
  for (const Dir& dir : dirs) {
    if (UnderDir(rel_path, dir.prefix)) {
      return dir.rank;
    }
  }
  return -1;
}

std::string LayerMap::DirOf(const std::string& rel_path) const {
  for (const Dir& dir : dirs) {
    if (UnderDir(rel_path, dir.prefix)) {
      return dir.prefix;
    }
  }
  return "";
}

bool ParseLayerMap(std::string_view content, LayerMap* map, std::string* error) {
  map->dirs.clear();
  std::set<std::string> seen;
  int rank = 0;
  int line_no = 0;
  std::istringstream in{std::string(content)};
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::istringstream fields(line);
    std::string dir;
    bool any = false;
    while (fields >> dir) {
      while (!dir.empty() && dir.back() == '/') {
        dir.pop_back();
      }
      if (dir.empty() || dir.find("//") != std::string::npos) {
        *error = "layers.txt line " + std::to_string(line_no) + ": malformed directory";
        return false;
      }
      if (!seen.insert(dir).second) {
        *error = "layers.txt line " + std::to_string(line_no) + ": duplicate layer '" + dir + "'";
        return false;
      }
      map->dirs.push_back({dir, rank});
      any = true;
    }
    if (any) {
      ++rank;
    }
  }
  if (map->dirs.empty()) {
    *error = "layers.txt declares no layers";
    return false;
  }
  return true;
}

std::vector<Finding> CheckProjectRules(const std::vector<ScannedTu>& tus,
                                       const std::vector<TuModel>& models,
                                       const LayerMap* layers) {
  std::vector<Finding> findings;
  if (layers != nullptr) {
    CheckLayering(tus, models, *layers, &findings);
    CheckIncludeCycles(tus, models, &findings);
  }
  CheckSharedState(models, &findings);
  CheckPoolCaptures(models, &findings);
  SortFindings(&findings);
  return findings;
}

std::vector<std::string> LayerGraphEdges(const std::vector<TuModel>& models,
                                         const LayerMap& layers) {
  std::map<std::pair<std::string, std::string>, int> counts;
  for (const TuModel& model : models) {
    const std::string from_dir = layers.DirOf(model.rel_path);
    if (from_dir.empty()) {
      continue;
    }
    for (const IncludeEdge& inc : model.includes) {
      const std::string to_dir = layers.DirOf(inc.target);
      if (to_dir.empty() || to_dir == from_dir) {
        continue;
      }
      ++counts[{from_dir, to_dir}];
    }
  }
  std::vector<std::string> edges;
  edges.reserve(counts.size());
  for (const auto& [edge, count] : counts) {
    edges.push_back(edge.first + " -> " + edge.second + " (" + std::to_string(count) + ")");
  }
  return edges;
}

}  // namespace lint
}  // namespace saba
