#include "tools/saba_lint/scanner.h"

#include <algorithm>
#include <cctype>

namespace saba {
namespace lint {
namespace {

std::vector<std::string> SplitLines(std::string_view content) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= content.size()) {
    const size_t nl = content.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(content.substr(start));
      break;
    }
    lines.emplace_back(content.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

// True if `c` can end an expression — used to tell a char literal from a
// C++14 digit separator (1'000'000) or a user-defined-literal quote.
bool EndsExpression(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == ')' || c == ']';
}

}  // namespace

ScannedFile Scan(std::string_view content) {
  ScannedFile out;
  out.raw = SplitLines(content);
  out.code.emplace_back();
  out.comments.emplace_back();

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_terminator;  // For kRawString: )delim" that ends it.
  char last_code_char = '\0';  // Last significant code char (for ' disambiguation).

  size_t i = 0;
  const size_t n = content.size();
  auto code_put = [&](char c) { out.code.back().push_back(c); };
  auto comment_put = [&](char c) { out.comments.back().push_back(c); };
  auto newline = [&] {
    out.code.emplace_back();
    out.comments.emplace_back();
  };

  while (i < n) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          i += 2;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_put(' ');
          code_put(' ');
          i += 2;
        } else if (c == '"') {
          // R"..."( opens a raw string; scan back over an optional prefix.
          bool raw = false;
          const std::string& line = out.code.back();
          if (!line.empty() && line.back() == 'R') {
            const size_t len = line.size();
            // Reject identifiers ending in R (e.g. FooR"..." is not raw
            // unless R starts the identifier or follows a prefix u8/u/U/L).
            if (len == 1 || !(std::isalnum(static_cast<unsigned char>(line[len - 2])) ||
                              line[len - 2] == '_')) {
              raw = true;
            }
          }
          if (raw) {
            std::string delim;
            size_t j = i + 1;
            while (j < n && content[j] != '(' && content[j] != '\n' && delim.size() <= 16) {
              delim.push_back(content[j]);
              ++j;
            }
            if (j < n && content[j] == '(') {
              raw_terminator = ")" + delim + "\"";
              state = State::kRawString;
              code_put('"');
              i = j + 1;
              break;
            }
          }
          state = State::kString;
          code_put('"');
          ++i;
        } else if (c == '\'' && !EndsExpression(last_code_char)) {
          state = State::kChar;
          code_put('\'');
          ++i;
        } else if (c == '\n') {
          newline();
          ++i;
        } else {
          code_put(c);
          if (!std::isspace(static_cast<unsigned char>(c))) {
            last_code_char = c;
          }
          ++i;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          newline();
        } else {
          comment_put(c);
        }
        ++i;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          i += 2;
        } else if (c == '\n') {
          newline();
          ++i;
        } else {
          comment_put(c);
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < n) {
          code_put(' ');
          code_put(' ');
          i += 2;
        } else if (c == '"') {
          state = State::kCode;
          code_put('"');
          last_code_char = '"';
          ++i;
        } else if (c == '\n') {  // Unterminated; recover at the newline.
          state = State::kCode;
          newline();
          ++i;
        } else {
          code_put(' ');
          ++i;
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < n) {
          code_put(' ');
          code_put(' ');
          i += 2;
        } else if (c == '\'') {
          state = State::kCode;
          code_put('\'');
          last_code_char = '\'';
          ++i;
        } else if (c == '\n') {
          state = State::kCode;
          newline();
          ++i;
        } else {
          code_put(' ');
          ++i;
        }
        break;
      case State::kRawString:
        if (c == '\n') {
          newline();
          ++i;
        } else if (content.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          state = State::kCode;
          code_put('"');
          last_code_char = '"';
          i += raw_terminator.size();
        } else {
          code_put(' ');
          ++i;
        }
        break;
    }
  }
  return out;
}

namespace {

bool IsPreprocessorLine(const std::string& code_line) {
  for (char c : code_line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      continue;
    }
    return c == '#';
  }
  return false;
}

}  // namespace

std::vector<Token> Tokenize(const ScannedFile& scanned) {
  std::vector<Token> tokens;
  bool continuation = false;  // Previous line ended in backslash (pp-continuation).
  for (size_t li = 0; li < scanned.code.size(); ++li) {
    const std::string& line = scanned.code[li];
    const bool pp = continuation || IsPreprocessorLine(line);
    continuation = pp && !line.empty() && line.back() == '\\';
    if (pp) {
      continue;
    }
    const int line_no = static_cast<int>(li) + 1;
    size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i + 1;
        while (j < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[j])) || line[j] == '_')) {
          ++j;
        }
        tokens.push_back({line.substr(i, j - i), line_no, true});
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t j = i + 1;  // Numbers (incl. 1'000 separators and suffixes).
        while (j < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[j])) || line[j] == '\'' ||
                line[j] == '.')) {
          ++j;
        }
        tokens.push_back({line.substr(i, j - i), line_no, false});
        i = j;
      } else if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
        tokens.push_back({"::", line_no, false});
        i += 2;
      } else if (c == '-' && i + 1 < line.size() && line[i + 1] == '>') {
        tokens.push_back({"->", line_no, false});
        i += 2;
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        tokens.push_back({std::string(1, c), line_no, false});
        ++i;
      } else {
        ++i;
      }
    }
  }
  return tokens;
}

ScannedTu MakeScannedTu(const std::string& rel_path, const std::string& display_path,
                        std::string_view content) {
  ScannedTu tu;
  tu.rel_path = rel_path;
  tu.display_path = display_path;
  tu.scanned = Scan(content);
  tu.tokens = Tokenize(tu.scanned);
  return tu;
}

bool IsSuppressed(const ScannedFile& scanned, int line, const std::string& rule) {
  const std::string needle = "saba-lint: allow(" + rule + ")";
  for (int l = line - 1; l >= std::max(0, line - 2); --l) {
    if (static_cast<size_t>(l) < scanned.comments.size() &&
        scanned.comments[static_cast<size_t>(l)].find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

bool HasAuditAnnotation(const ScannedFile& scanned, int first_line, int last_line,
                        std::string_view form) {
  const std::string needle = std::string("saba-lint: ") + std::string(form) + "(";
  auto annotated = [&](int idx) {
    if (idx < 0 || static_cast<size_t>(idx) >= scanned.comments.size()) {
      return false;
    }
    const std::string& comment = scanned.comments[static_cast<size_t>(idx)];
    const size_t pos = comment.find(needle);
    if (pos == std::string::npos) {
      return false;
    }
    // Require a non-empty reason: "shared-state-ok()" is not an audit.
    const size_t open = pos + needle.size();
    return open < comment.size() && comment[open] != ')';
  };
  // A line carrying only a comment (no code) — annotations may wrap over
  // several such lines, so the whole contiguous block above counts.
  auto comment_only = [&](int idx) {
    if (idx < 0 || static_cast<size_t>(idx) >= scanned.code.size()) {
      return false;
    }
    const std::string& code = scanned.code[static_cast<size_t>(idx)];
    const bool blank_code = std::all_of(code.begin(), code.end(), [](char c) {
      return std::isspace(static_cast<unsigned char>(c)) != 0;
    });
    return blank_code && !scanned.comments[static_cast<size_t>(idx)].empty();
  };
  for (int l = first_line - 1; l <= last_line - 1; ++l) {
    if (annotated(l)) {
      return true;
    }
  }
  for (int l = first_line - 2; comment_only(l); --l) {
    if (annotated(l)) {
      return true;
    }
  }
  return false;
}

}  // namespace lint
}  // namespace saba
