// Figure 11: controller architecture and queue-count studies on the
// large-scale simulation.
//
// (a) Centralized vs distributed controller (study 7): the distributed
//     controller uses the offline mapping database, trading a little mapping
//     freshness for scalability. Paper: 1.27x vs 1.23x (4% apart).
// (b) Speedup vs queues per port: 2, 4, 8, 16, and unlimited (a dedicated
//     queue per application). Paper: 1.12x / ~1.2x / 1.27x / ~1.3x / 1.33x.
//
// SABA_FIG11_INSTANCES scales the per-workload instance count (default 48,
// half the paper's 97 — this bench runs seven full-fabric simulations).

#include <iostream>

#include "bench/sim_cluster.h"
#include "src/exp/report.h"
#include "src/numerics/stats.h"

namespace saba {
namespace {

double AverageSpeedup(const SimCluster& cluster, const CoRunResult& baseline,
                      const CoRunOptions& options) {
  const CoRunResult result = RunCoRun(cluster.topology, cluster.jobs, options);
  return GeometricMean(Speedups(baseline, result));
}

void Run() {
  const uint64_t seed = EnvSeed();
  SimClusterConfig config;
  config.seed = seed;
  config.instances_per_workload = EnvInt("SABA_FIG11_INSTANCES", 48);
  PrintBanner(std::cout, "Figure 11",
              "Centralized vs distributed controller (a) and queues-per-port sweep (b), "
              "spine-leaf simulation with " +
                  std::to_string(config.instances_per_workload) +
                  " instances per workload (SABA_FIG11_INSTANCES to change).",
              seed);

  const SimCluster cluster = BuildSimCluster(config);

  // Simulation-platform congestion calibration; see bench_fig10_simulation.
  constexpr double kSimGamma = 0.15;

  CoRunOptions baseline_options;
  baseline_options.policy = PolicyKind::kBaseline;
  baseline_options.fecn_gamma = kSimGamma;
  const CoRunResult baseline = RunCoRun(cluster.topology, cluster.jobs, baseline_options);
  std::cerr << "[fig11] baseline done\n";

  // ---- (a) centralized vs distributed ---------------------------------------
  {
    CoRunOptions central;
    central.policy = PolicyKind::kSaba;
    central.table = &cluster.table;
    central.num_pls = 16;
    central.fecn_gamma = kSimGamma;
    central.seed = seed;
    const double central_speedup = AverageSpeedup(cluster, baseline, central);
    std::cerr << "[fig11] centralized done\n";

    CoRunOptions dist = central;
    dist.policy = PolicyKind::kSabaDistributed;
    const double dist_speedup = AverageSpeedup(cluster, baseline, dist);
    std::cerr << "[fig11] distributed done\n";

    std::cout << "--- Fig 11a: average speedup, centralized vs distributed controller ---\n";
    TablePrinter table({"Controller", "Avg speedup", "Paper"});
    table.AddRow({"Centralized", Fmt(central_speedup), "1.27"});
    table.AddRow({"Distributed", Fmt(dist_speedup), "1.23"});
    table.Print(std::cout);
    std::cout << '\n';
  }

  // ---- (b) queues per port ---------------------------------------------------
  {
    std::cout << "--- Fig 11b: average speedup vs queues per port ---\n";
    TablePrinter table({"Queues", "Avg speedup", "Paper"});
    const std::map<int, const char*> paper = {{2, "1.12"}, {4, "~1.2"}, {8, "1.27"},
                                              {16, "~1.3"}};
    for (int queues : {2, 4, 8, 16}) {
      CoRunOptions options;
      options.policy = PolicyKind::kSaba;
      options.table = &cluster.table;
      options.queues_per_port = queues;
      options.num_pls = std::min(queues * 2, kNumServiceLevels);
      options.fecn_gamma = kSimGamma;
      options.seed = seed;
      table.AddRow({std::to_string(queues), Fmt(AverageSpeedup(cluster, baseline, options)),
                    paper.at(queues)});
      std::cerr << "[fig11] queues=" << queues << " done\n";
    }
    CoRunOptions unlimited;
    unlimited.policy = PolicyKind::kSabaUnlimited;
    unlimited.table = &cluster.table;
    unlimited.num_pls = kNumServiceLevels;
    unlimited.fecn_gamma = kSimGamma;
    unlimited.seed = seed;
    table.AddRow({"unlimited", Fmt(AverageSpeedup(cluster, baseline, unlimited)), "1.33"});
    table.Print(std::cout);
  }
}

}  // namespace
}  // namespace saba

int main() {
  saba::Run();
  return 0;
}
