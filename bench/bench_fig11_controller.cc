// Figure 11: controller architecture and queue-count studies on the
// large-scale simulation.
//
// (a) Centralized vs distributed controller (study 7): the distributed
//     controller uses the offline mapping database, trading a little mapping
//     freshness for scalability. Paper: 1.27x vs 1.23x (4% apart).
// (b) Speedup vs queues per port: 2, 4, 8, 16, and unlimited (a dedicated
//     queue per application). Paper: 1.12x / ~1.2x / 1.27x / ~1.3x / 1.33x.
//
// SABA_FIG11_INSTANCES scales the per-workload instance count (default 48,
// half the paper's 97 — this bench runs seven full-fabric simulations).

#include <iostream>
#include <vector>

#include "bench/sim_cluster.h"
#include "src/exp/report.h"
#include "src/numerics/stats.h"

namespace saba {
namespace {

void Run() {
  const uint64_t seed = EnvSeed();
  SimClusterConfig config;
  config.seed = seed;
  config.instances_per_workload = EnvInt("SABA_FIG11_INSTANCES", 48);
  PrintBanner(std::cout, "Figure 11",
              "Centralized vs distributed controller (a) and queues-per-port sweep (b), "
              "spine-leaf simulation with " +
                  std::to_string(config.instances_per_workload) +
                  " instances per workload (SABA_FIG11_INSTANCES to change).",
              seed);

  const SimCluster cluster = BuildSimCluster(config);

  // Simulation-platform congestion calibration; see bench_fig10_simulation.
  constexpr double kSimGamma = 0.15;

  // All eight full-fabric co-runs (baseline, the two controller variants, the
  // queue-count sweep) are independent: one sweep task each, named so the
  // stderr progress stays readable.
  struct Cell {
    const char* name;
    CoRunOptions options;
  };
  std::vector<Cell> cells;
  {
    CoRunOptions baseline_options;
    baseline_options.policy = PolicyKind::kBaseline;
    baseline_options.fecn_gamma = kSimGamma;
    cells.push_back({"baseline", baseline_options});

    CoRunOptions central;
    central.policy = PolicyKind::kSaba;
    central.table = &cluster.table;
    central.num_pls = 16;
    central.fecn_gamma = kSimGamma;
    central.seed = seed;
    cells.push_back({"centralized", central});

    CoRunOptions dist = central;
    dist.policy = PolicyKind::kSabaDistributed;
    cells.push_back({"distributed", dist});

    for (int queues : {2, 4, 8, 16}) {
      CoRunOptions options;
      options.policy = PolicyKind::kSaba;
      options.table = &cluster.table;
      options.queues_per_port = queues;
      options.num_pls = std::min(queues * 2, kNumServiceLevels);
      options.fecn_gamma = kSimGamma;
      options.seed = seed;
      cells.push_back({"queues", options});
    }

    CoRunOptions unlimited;
    unlimited.policy = PolicyKind::kSabaUnlimited;
    unlimited.table = &cluster.table;
    unlimited.num_pls = kNumServiceLevels;
    unlimited.fecn_gamma = kSimGamma;
    unlimited.seed = seed;
    cells.push_back({"unlimited", unlimited});
  }

  const std::vector<CoRunResult> runs =
      RunSweep<CoRunResult>("fig11 cells", cells.size(), [&](size_t c) {
        return RunCoRun(cluster.topology, cluster.jobs, cells[c].options);
      });
  const CoRunResult& baseline = runs[0];
  auto average_speedup = [&](size_t c) { return GeometricMean(Speedups(baseline, runs[c])); };

  // ---- (a) centralized vs distributed ---------------------------------------
  {
    std::cout << "--- Fig 11a: average speedup, centralized vs distributed controller ---\n";
    TablePrinter table({"Controller", "Avg speedup", "Paper"});
    table.AddRow({"Centralized", Fmt(average_speedup(1)), "1.27"});
    table.AddRow({"Distributed", Fmt(average_speedup(2)), "1.23"});
    table.Print(std::cout);
    std::cout << '\n';
  }

  // ---- (b) queues per port ---------------------------------------------------
  {
    std::cout << "--- Fig 11b: average speedup vs queues per port ---\n";
    TablePrinter table({"Queues", "Avg speedup", "Paper"});
    const std::map<int, const char*> paper = {{2, "1.12"}, {4, "~1.2"}, {8, "1.27"},
                                              {16, "~1.3"}};
    for (size_t c = 3; c < 7; ++c) {
      const int queues = cells[c].options.queues_per_port;
      table.AddRow({std::to_string(queues), Fmt(average_speedup(c)), paper.at(queues)});
    }
    table.AddRow({"unlimited", Fmt(average_speedup(7)), "1.33"});
    table.Print(std::cout);
  }
}

}  // namespace
}  // namespace saba

int main() {
  saba::Run();
  return 0;
}
