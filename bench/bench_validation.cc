// Model validation: the runnable evidence behind DESIGN.md's central
// substitution claim — that the fluid WFQ allocator reproduces what a
// packet-granularity WRR fabric actually delivers.
//
//   1. One shared port: fluid shares vs deficit-weighted round robin.
//   2. A multi-hop fabric with cross traffic and finite buffers
//      (credit-based flow control): fluid rates vs the packet simulator.

#include <cmath>
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "src/exp/report.h"
#include "src/net/allocator.h"
#include "src/net/packet_sim.h"
#include "src/net/units.h"
#include "src/net/wrr_reference.h"
#include "src/sim/rng.h"

namespace saba {
namespace {

void SinglePortStudy() {
  std::cout << "--- Single port: fluid WFQ vs packet-level WRR ---\n";
  TablePrinter table({"Config", "Flow", "Fluid share", "WRR share", "Delta"});

  struct Case {
    const char* name;
    std::vector<double> queue_weights;
    // (queue, intra weight) per flow.
    std::vector<std::pair<int, double>> flows;
  };
  const std::vector<Case> cases = {
      {"2 queues 3:1", {3, 1}, {{0, 1.0}, {1, 1.0}}},
      {"3 queues 4:2:1", {4, 2, 1}, {{0, 1.0}, {1, 1.0}, {2, 1.0}}},
      {"shared queue + prefetch", {1}, {{0, 1.0}, {0, 0.15}}},
      {"mixed", {2, 1}, {{0, 1.0}, {0, 1.0}, {1, 1.0}, {1, 0.15}}},
  };

  // Each case is an independent fluid-vs-WRR comparison: one sweep task each,
  // returning its table rows.
  using Rows = std::vector<std::vector<std::string>>;
  const std::vector<Rows> case_rows =
      RunSweep<Rows>("validation ports", cases.size(), [&](size_t idx) {
        const Case& c = cases[idx];
        // Fluid: all flows over one a->b link.
        Topology topo;
        const NodeId a = topo.AddNode(NodeKind::kHost);
        const NodeId b = topo.AddNode(NodeKind::kHost);
        topo.AddLink(a, b, Gbps64(1));
        Network network(std::move(topo), static_cast<int>(c.queue_weights.size()));
        network.port(0).queue_weights = c.queue_weights;

        std::vector<std::unique_ptr<ActiveFlow>> storage;
        std::vector<ActiveFlow*> fluid;
        std::vector<WrrFlowSpec> packet;
        for (size_t f = 0; f < c.flows.size(); ++f) {
          network.port(0).sl_to_queue[f] = c.flows[f].first;
          auto flow = std::make_unique<ActiveFlow>();
          flow->id = static_cast<FlowId>(f);
          flow->app = static_cast<AppId>(f);
          flow->sl = static_cast<int>(f);
          flow->intra_weight = c.flows[f].second;
          flow->remaining_bits = Gigabytes(10);
          flow->path = &network.router().Route(a, b, 0);
          storage.push_back(std::move(flow));
          fluid.push_back(storage.back().get());
          packet.push_back({c.flows[f].first, c.flows[f].second, -1});
        }
        WfqMaxMinAllocator allocator;
        allocator.Allocate(fluid, network);
        const WrrResult wrr =
            SimulateWrrPort({Gbps64(1), c.queue_weights}, packet, /*horizon=*/2.0);

        Rows rows;
        for (size_t f = 0; f < c.flows.size(); ++f) {
          const double fluid_share = fluid[f]->rate / Gbps(1);
          const double wrr_share = wrr.flow_bits[f] / wrr.total_bits;
          rows.push_back({std::string(f == 0 ? c.name : ""), std::to_string(f),
                          Fmt(fluid_share, 3), Fmt(wrr_share, 3),
                          Fmt(std::fabs(fluid_share - wrr_share), 3)});
        }
        return rows;
      });
  for (const Rows& rows : case_rows) {
    for (const std::vector<std::string>& row : rows) {
      table.AddRow(row);
    }
  }
  table.Print(std::cout);
  std::cout << '\n';
}

void MultiHopStudy(uint64_t seed) {
  std::cout << "--- Multi-hop fabric: fluid rates vs packet simulation "
               "(credit-based flow control, 2 weighted VLs) ---\n";
  Rng rng(seed);
  Network network(BuildSpineLeaf({.num_spine = 2,
                                  .num_leaf = 2,
                                  .num_tor = 2,
                                  .hosts_per_tor = 3,
                                  .num_pods = 2,
                                  .host_link_bps = Gbps64(1),
                                  .tor_leaf_bps = Gbps64(1),
                                  .leaf_spine_bps = Gbps64(1)}),
                  2);
  network.MapSlToQueueEverywhere(1, 1);
  for (size_t l = 0; l < network.topology().num_links(); ++l) {
    network.port(static_cast<LinkId>(l)).queue_weights = {2.0, 1.0};
  }

  const std::vector<NodeId> hosts = network.topology().Hosts();
  std::vector<PacketFlowSpec> packet_flows;
  std::vector<std::unique_ptr<ActiveFlow>> storage;
  std::vector<ActiveFlow*> fluid_flows;
  for (int f = 0; f < 6; ++f) {
    NodeId src = rng.Choice(hosts);
    NodeId dst = rng.Choice(hosts);
    while (dst == src) {
      dst = rng.Choice(hosts);
    }
    const int sl = static_cast<int>(rng.UniformInt(0, 1));
    packet_flows.push_back({src, dst, sl, 1.0, -1, static_cast<uint64_t>(f)});
    auto flow = std::make_unique<ActiveFlow>();
    flow->id = f;
    flow->app = f;
    flow->sl = sl;
    flow->remaining_bits = Gigabytes(10);
    flow->path = &network.router().Route(src, dst, static_cast<uint64_t>(f));
    storage.push_back(std::move(flow));
    fluid_flows.push_back(storage.back().get());
  }

  WfqMaxMinAllocator allocator;
  allocator.Allocate(fluid_flows, network);
  PacketSimConfig config;
  config.horizon_seconds = 1.0;
  config.buffer_packets = 24;
  const PacketSimResult packets = RunPacketSim(&network, packet_flows, config);

  TablePrinter table({"Flow", "Path hops", "VL", "Fluid Gb/s", "Packet Gb/s", "Delta %"});
  for (size_t f = 0; f < fluid_flows.size(); ++f) {
    const double fluid = fluid_flows[f]->rate / 1e9;
    const double packet = packets.delivered_bits[f] / config.horizon_seconds / 1e9;
    table.AddRow({std::to_string(f), std::to_string(fluid_flows[f]->path->size()),
                  std::to_string(packet_flows[f].sl), Fmt(fluid, 3), Fmt(packet, 3),
                  Fmt(fluid > 0 ? std::fabs(fluid - packet) / fluid * 100 : 0, 1)});
  }
  table.Print(std::cout);
}

void Run() {
  const uint64_t seed = EnvSeed();
  PrintBanner(std::cout, "Validation",
              "Fluid-model cross-checks against packet-granularity references.", seed);
  SinglePortStudy();
  MultiHopStudy(seed);
}

}  // namespace
}  // namespace saba

int main() {
  saba::Run();
  return 0;
}
